// Logistics: the aggregate network computations the paper names beyond
// route evaluation. A parcel company places depots on a road map and
// uses the CCAM store for three query families:
//
//   - location-allocation evaluation: which depot serves each
//     intersection, and how good is the depot configuration overall;
//   - shortest paths (Dijkstra and A*) for individual deliveries;
//   - tour evaluation: scoring a driver's closed delivery round.
//
// Each computation reads node records through the access method, so
// the printed data-page reads show what connectivity clustering buys.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ccam"
)

func main() {
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		log.Fatal(err)
	}
	store, err := ccam.Open(ccam.Options{PageSize: 2048, PoolPages: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road map: %d intersections on %d pages (CRR %.3f)\n\n",
		store.Len(), store.NumPages(), store.CRR(g))

	// --- Location-allocation: compare two depot configurations.
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(99))
	configs := map[string][]ccam.NodeID{
		"2 depots": {ids[len(ids)/4], ids[3*len(ids)/4]},
		"4 depots": {ids[len(ids)/8], ids[3*len(ids)/8], ids[5*len(ids)/8], ids[7*len(ids)/8]},
	}
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("location-allocation evaluation:")
	var depots []ccam.NodeID
	for _, name := range names {
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		allocs, total, worst, err := store.LocationAllocation(configs[name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s: %4d intersections served, mean cost %7.0f, worst %7.0f (%d page reads)\n",
			name, len(allocs), total/float64(len(allocs)), worst, store.IO().Reads)
		depots = configs[name]
	}
	fmt.Println()

	// --- Individual deliveries: Dijkstra vs A*.
	fmt.Println("deliveries (shortest paths from the first depot):")
	var dReads, aReads int64
	for i := 0; i < 5; i++ {
		dst := ids[rng.Intn(len(ids))]
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		p1, err := store.ShortestPath(depots[0], dst)
		if err != nil {
			fmt.Printf("  depot -> %4d: unreachable\n", dst)
			continue
		}
		dReads += store.IO().Reads
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		// Edge costs are >= 0.8x straight-line distance by
		// construction, making the heuristic admissible.
		p2, err := store.ShortestPathAStar(depots[0], dst, 0.8)
		if err != nil {
			log.Fatal(err)
		}
		aReads += store.IO().Reads
		fmt.Printf("  depot -> %4d: cost %7.0f over %2d hops (dijkstra expanded %3d, a* %3d)\n",
			dst, p1.Cost, len(p1.Nodes)-1, p1.Expanded, p2.Expanded)
	}
	fmt.Printf("  page reads: dijkstra %d, a* %d\n\n", dReads, aReads)

	// --- Tour evaluation: a driver's delivery round that returns to
	// the depot. Build it from consecutive shortest paths.
	stops := []ccam.NodeID{depots[0]}
	for i := 0; i < 3; i++ {
		stops = append(stops, ids[rng.Intn(len(ids))])
	}
	var tour ccam.Route
	ok := true
	for i := 0; i < len(stops); i++ {
		next := stops[(i+1)%len(stops)]
		leg, err := store.ShortestPath(stops[i], next)
		if err != nil {
			ok = false
			break
		}
		// Append without repeating the junction node.
		if i == 0 {
			tour = append(tour, leg.Nodes...)
		} else {
			tour = append(tour, leg.Nodes[1:]...)
		}
	}
	if !ok {
		fmt.Println("tour: some stop was unreachable")
		return
	}
	tour = tour[:len(tour)-1] // EvaluateTour closes back to the start
	if err := store.ResetIO(); err != nil {
		log.Fatal(err)
	}
	agg, err := store.EvaluateTour(tour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tour evaluation: %d intersections, total cost %.0f, dearest hop %.0f (%d page reads)\n",
		agg.Nodes, agg.TotalCost, agg.MaxCost, store.IO().Reads)
}
