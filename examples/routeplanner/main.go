// Routeplanner: the paper's motivating IVHS scenario. A commuter keeps
// a set of familiar routes between home and work; every morning the
// database holds fresh travel times, and the commuter's query evaluates
// all routes to pick today's best. The example builds a
// Minneapolis-scale road map, registers commuter routes, simulates
// rush-hour congestion by updating edge costs in place, and re-runs the
// route evaluation queries — reporting both the chosen route and the
// number of data pages each evaluation touched.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ccam"
)

func main() {
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road map: %d intersections, %d road segments\n", g.NumNodes(), g.NumEdges())

	// The commuter's familiar routes: random walks standing in for
	// alternate paths between home and work.
	rng := rand.New(rand.NewSource(2024))
	routes, err := ccam.RandomWalkRoutes(g, 4, 25, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Weight the network by the commuter's access pattern so the
	// clustering optimizes for these queries (WCRR), then build.
	if _, err := ccam.ApplyRouteWeights(g, routes); err != nil {
		log.Fatal(err)
	}
	store, err := ccam.Open(ccam.Options{PageSize: 2048, PoolPages: 1, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCAM file: %d pages, WCRR = %.3f (1-page buffer, as in the paper)\n\n",
		store.NumPages(), store.WCRR(g))

	evaluate := func(label string) int {
		fmt.Println(label)
		best, bestCost := -1, 0.0
		totalReads := int64(0)
		for i, r := range routes {
			if err := store.ResetIO(); err != nil {
				log.Fatal(err)
			}
			agg, err := store.EvaluateRoute(context.Background(), r)
			if err != nil {
				log.Fatal(err)
			}
			reads := store.IO().Reads
			totalReads += reads
			fmt.Printf("  route %d: travel time %7.0f  (%2d intersections, %d page reads)\n",
				i+1, agg.TotalCost, agg.Nodes, reads)
			if best == -1 || agg.TotalCost < bestCost {
				best, bestCost = i, agg.TotalCost
			}
		}
		fmt.Printf("  -> best: route %d (%.0f); evaluation cost %d page reads total\n\n",
			best+1, bestCost, totalReads)
		return best
	}

	freeFlow := evaluate("Free-flow travel times:")

	// Rush hour: congestion slows every segment of the previously best
	// route by 3x, plus random jitter elsewhere. Travel-time updates
	// are in-place record mutations (SetEdgeCost) — the frequent-update
	// workload the paper's IVHS application describes.
	congested := routes[freeFlow]
	for i := 0; i+1 < len(congested); i++ {
		e, err := g.Edge(congested[i], congested[i+1])
		if err != nil {
			log.Fatal(err)
		}
		if err := store.SetEdgeCost(e.From, e.To, float32(e.Cost*3)); err != nil {
			log.Fatal(err)
		}
	}
	ids := g.NodeIDs()
	for n := 0; n < 200; n++ {
		from := ids[rng.Intn(len(ids))]
		succs := g.Successors(from)
		if len(succs) == 0 {
			continue
		}
		to := succs[rng.Intn(len(succs))]
		e, _ := g.Edge(from, to)
		if err := store.SetEdgeCost(from, to, float32(e.Cost*(1+rng.Float64()))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("rush hour: route %d is congested (3x), 200 other segments updated\n\n", freeFlow+1)

	rushHour := evaluate("Rush-hour travel times:")
	if rushHour != freeFlow {
		fmt.Printf("the commuter switches from route %d to route %d today\n", freeFlow+1, rushHour+1)
	} else {
		fmt.Printf("route %d stays best despite congestion\n", freeFlow+1)
	}
}
