// Spatialquery: even though CCAM clusters records by connectivity, the
// secondary index is ordered by the Z-order of each node's coordinates
// (paper §2.1), so point and range queries on the embedding space
// remain supported. The example runs window queries of growing size
// over a road map — "all intersections inside this map tile" — and
// reports result sizes and data-page reads, then combines a spatial
// window with a network operation (evaluating only routes that start
// inside the window).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ccam"
)

func main() {
	ctx := context.Background()
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		log.Fatal(err)
	}
	store, err := ccam.Open(ccam.Options{PageSize: 2048, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		log.Fatal(err)
	}
	b := g.Bounds()
	fmt.Printf("map extent %.0fx%.0f, %d intersections on %d pages\n\n",
		b.Width(), b.Height(), store.Len(), store.NumPages())

	// Window queries centred on downtown, growing from 5%% to 50%% of
	// the map side.
	cx, cy := (b.Min.X+b.Max.X)/2, (b.Min.Y+b.Max.Y)/2
	fmt.Println("window queries (Z-order index scan with BIGMIN jumps):")
	for _, frac := range []float64{0.05, 0.10, 0.25, 0.50} {
		hw, hh := b.Width()*frac/2, b.Height()*frac/2
		window := ccam.NewRect(
			ccam.Point{X: cx - hw, Y: cy - hh},
			ccam.Point{X: cx + hw, Y: cy + hh},
		)
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		recs, err := store.RangeQuery(ctx, window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% window: %4d intersections, %3d page reads\n",
			frac*100, len(recs), store.IO().Reads)
	}

	// Combined spatial + network query: evaluate the commuter routes
	// that start inside the north-west quadrant.
	quadrant := ccam.NewRect(b.Min, ccam.Point{X: cx, Y: cy})
	rng := rand.New(rand.NewSource(17))
	routes, err := ccam.RandomWalkRoutes(g, 40, 15, rng)
	if err != nil {
		log.Fatal(err)
	}
	inside, err := store.RangeQuery(ctx, quadrant)
	if err != nil {
		log.Fatal(err)
	}
	insideSet := map[ccam.NodeID]bool{}
	for _, r := range inside {
		insideSet[r.ID] = true
	}
	fmt.Printf("\nroutes starting in the NW quadrant (%d of %d):\n", countStarts(routes, insideSet), len(routes))
	evaluated := 0
	var reads int64
	for i, r := range routes {
		if !insideSet[r[0]] {
			continue
		}
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		agg, err := store.EvaluateRoute(ctx, r)
		if err != nil {
			log.Fatal(err)
		}
		reads += store.IO().Reads
		evaluated++
		if evaluated <= 5 {
			fmt.Printf("  route %2d: travel time %7.0f over %d intersections\n", i+1, agg.TotalCost, agg.Nodes)
		}
	}
	if evaluated > 5 {
		fmt.Printf("  ... and %d more\n", evaluated-5)
	}
	if evaluated > 0 {
		fmt.Printf("average %.1f page reads per route evaluation\n", float64(reads)/float64(evaluated))
	}
}

func countStarts(routes []ccam.Route, inside map[ccam.NodeID]bool) int {
	n := 0
	for _, r := range routes {
		if inside[r[0]] {
			n++
		}
	}
	return n
}
