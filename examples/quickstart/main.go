// Quickstart: build a tiny road network, store it in a CCAM file, and
// run the paper's operations — Find, Get-successors, Get-A-successor,
// route evaluation — while watching the data-page I/O counters.
package main

import (
	"context"
	"fmt"
	"log"

	"ccam"
)

func main() {
	// A toy downtown: a 3x3 street grid with two-way streets. Costs are
	// travel times in seconds.
	net := ccam.NewNetwork()
	id := func(r, c int) ccam.NodeID { return ccam.NodeID(r*3 + c) }
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if err := net.AddNode(ccam.Node{
				ID:  id(r, c),
				Pos: ccam.Point{X: float64(c) * 100, Y: float64(r) * 100},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	addStreet := func(a, b ccam.NodeID, secs float64) {
		must(net.AddEdge(ccam.Edge{From: a, To: b, Cost: secs, Weight: 1}))
		must(net.AddEdge(ccam.Edge{From: b, To: a, Cost: secs, Weight: 1}))
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if c+1 < 3 {
				addStreet(id(r, c), id(r, c+1), 30+float64(r)*5)
			}
			if r+1 < 3 {
				addStreet(id(r, c), id(r+1, c), 45)
			}
		}
	}

	// Build the CCAM file: nodes are clustered into pages by
	// connectivity.
	store, err := ccam.Open(ccam.Options{PageSize: 512, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	must(store.Build(net))
	fmt.Printf("stored %d nodes on %d pages, CRR = %.2f\n\n",
		store.Len(), store.NumPages(), store.CRR(net))

	// Queries are context-first: a context carries cancellation and
	// deadlines end to end (ccam-serve passes per-request contexts
	// through the same methods).
	ctx := context.Background()

	// Find: retrieve one node record.
	rec, err := store.Find(ctx, id(1, 1)) // the central intersection
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %d at %v has %d outgoing streets and %d incoming\n",
		rec.ID, rec.Pos, len(rec.Succs), len(rec.Preds))

	// Get-successors: all intersections one hop away.
	succs, err := store.GetSuccessors(ctx, rec.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("neighbors: ")
	for _, s := range succs {
		fmt.Printf("%d ", s.ID)
	}
	fmt.Println()

	// Route evaluation: compare a commuter's two routes across town.
	must(store.ResetIO())
	routeA := ccam.Route{id(0, 0), id(0, 1), id(0, 2), id(1, 2), id(2, 2)}
	routeB := ccam.Route{id(0, 0), id(1, 0), id(2, 0), id(2, 1), id(2, 2)}
	aggA, err := store.EvaluateRoute(ctx, routeA)
	if err != nil {
		log.Fatal(err)
	}
	aggB, err := store.Plain().EvaluateRoute(routeB) // ctx-less convenience view
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute A: %.0f s over %d intersections\n", aggA.TotalCost, aggA.Nodes)
	fmt.Printf("route B: %.0f s over %d intersections\n", aggB.TotalCost, aggB.Nodes)
	if aggA.TotalCost < aggB.TotalCost {
		fmt.Println("-> take route A")
	} else {
		fmt.Println("-> take route B")
	}
	fmt.Printf("(both evaluations together cost %d data page reads)\n", store.IO().Reads)

	// Maintenance: a new cul-de-sac is built off the north-east corner.
	newID := ccam.NodeID(100)
	op := &ccam.InsertOp{
		Rec: &ccam.Record{
			ID:    newID,
			Pos:   ccam.Point{X: 250, Y: 250},
			Succs: []ccam.SuccEntry{{To: id(2, 2), Cost: 20}},
			Preds: []ccam.NodeID{id(2, 2)},
		},
		PredCosts: []float32{20},
	}
	must(store.Insert(op, ccam.SecondOrder))
	// Mirror the change in the in-memory network so CRR sees it too.
	must(net.AddNode(ccam.Node{ID: newID, Pos: ccam.Point{X: 250, Y: 250}}))
	addStreet(newID, id(2, 2), 20)
	must(store.Flush())
	fmt.Printf("\nafter construction: %d nodes, CRR = %.2f\n", store.Len(), store.CRR(net))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
