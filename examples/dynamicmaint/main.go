// Dynamicmaint: a transportation department extends the road network —
// a new subdivision of streets is built onto an existing map. The
// example compares the paper's reorganization policies (first-order,
// second-order, higher-order) while the same construction sequence is
// applied, reporting the I/O paid per update and the clustering quality
// (CRR) that remains afterwards — the trade-off of the paper's
// Figure 7.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ccam"
)

func main() {
	for _, policy := range []ccam.Policy{ccam.FirstOrder, ccam.SecondOrder, ccam.HigherOrder} {
		run(policy)
	}
}

func run(policy ccam.Policy) {
	// The existing city.
	opts := ccam.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 24, 24
	g, err := ccam.RoadMap(opts)
	if err != nil {
		log.Fatal(err)
	}
	store, err := ccam.Open(ccam.Options{PageSize: 1024, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		log.Fatal(err)
	}
	startCRR := store.CRR(g)

	// The new subdivision: a chain of cul-de-sacs attached to the
	// eastern edge of the map, built street by street.
	bounds := g.Bounds()
	rng := rand.New(rand.NewSource(11))
	ids := g.NodeIDs()
	anchor := ids[len(ids)-1] // an existing intersection to connect to
	nextID := ccam.NodeID(1 << 20)

	var totalIO int64
	updates := 0
	prev := anchor
	for street := 0; street < 60; street++ {
		pos := ccam.Point{
			X: bounds.Max.X + 100 + float64(street%10)*80,
			Y: bounds.Min.Y + float64(street/10)*700 + rng.Float64()*200,
		}
		cost := float32(60 + rng.Float64()*60)
		op := &ccam.InsertOp{
			Rec: &ccam.Record{
				ID:    nextID,
				Pos:   pos,
				Succs: []ccam.SuccEntry{{To: prev, Cost: cost}},
				Preds: []ccam.NodeID{prev},
			},
			PredCosts: []float32{cost},
		}
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		if err := store.Insert(op, policy); err != nil {
			log.Fatal(err)
		}
		io := store.IO()
		totalIO += io.Reads + io.Writes
		updates++

		// Mirror into the in-memory network for CRR measurement.
		must(g.AddNode(ccam.Node{ID: nextID, Pos: pos}))
		must(g.AddEdge(ccam.Edge{From: nextID, To: prev, Cost: float64(cost), Weight: 1}))
		must(g.AddEdge(ccam.Edge{From: prev, To: nextID, Cost: float64(cost), Weight: 1}))

		// Every few streets the chain reattaches to the city so the
		// subdivision has multiple entrances.
		if street%10 == 9 {
			prev = ids[rng.Intn(len(ids))]
		} else {
			prev = nextID
		}
		nextID++
	}

	// A couple of streets are later closed again (roadworks).
	closed := 0
	for id := ccam.NodeID(1 << 20); closed < 5; id++ {
		if !store.Contains(id) {
			continue
		}
		if err := store.ResetIO(); err != nil {
			log.Fatal(err)
		}
		if err := store.Delete(id, policy); err != nil {
			log.Fatal(err)
		}
		io := store.IO()
		totalIO += io.Reads + io.Writes
		updates++
		must(g.RemoveNode(id))
		closed++
	}

	fmt.Printf("%-13s: %2d updates, %5.2f page accesses/update, CRR %.3f -> %.3f\n",
		policy, updates, float64(totalIO)/float64(updates), startCRR, store.CRR(g))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
