package ccam

import (
	"context"
	"errors"
	"strings"

	"ccam/internal/query"
	"ccam/internal/query/exec"
	"ccam/internal/query/lang"
	"ccam/internal/query/plan"
)

// Result is the outcome of one CCAM-QL statement: the plan the
// cost-model-driven planner chose, the statement's rows / aggregate /
// path payload, and (after execution) the measured per-request I/O.
// EXPLAIN statements return the plan and its rendering only.
type Result = exec.Result

// QueryPlan is the planner's output: the chosen access path with its
// predicted data-page accesses, the costed alternatives, and the
// statistics snapshot (α, |A|, λ, γ) the choice was made against.
type QueryPlan = plan.Plan

// NodeResult is one row of a Result: a matched node with its position
// and successor ids.
type NodeResult = exec.NodeResult

// AggValue is a Result's computed aggregate.
type AggValue = exec.AggValue

// QueryActuals is a Result's measured per-request I/O account.
type QueryActuals = exec.Actuals

// Query-language sentinel errors.
var (
	// ErrQueryParse reports a CCAM-QL statement the parser rejected.
	// The concrete error is a *lang.ParseError carrying the byte
	// offset; errors.Is(err, ErrQueryParse) classifies it.
	ErrQueryParse = lang.ErrParse
	// ErrQueryUnsupported reports a statement that parses but that the
	// planner cannot execute (e.g. an aggregate attribute the
	// statement kind does not define).
	ErrQueryUnsupported = plan.ErrUnsupported
	// ErrInvalidTour reports a malformed tour passed to EvaluateTour.
	ErrInvalidTour = query.ErrInvalidTour
)

// Query parses, plans and executes one CCAM-QL statement:
//
//	FIND <id>
//	WINDOW (<x1>, <y1>, <x2>, <y2>)
//	NEIGHBORS <id> DEPTH <k> [AGG SUM|MIN|COUNT(<attr>)]
//	ROUTE <id>, <id>, ... [AGG SUM|MIN|COUNT(<attr>)]
//	PATH <src> TO <dst>
//
// optionally prefixed with EXPLAIN, which returns the chosen plan —
// access path and predicted data-page accesses from the paper's §3
// cost model fed with the file's live statistics — without executing.
// Executed statements additionally report the measured I/O deltas in
// Result.Actual, so predictions can be validated request by request.
//
// The planner consults a catalog built lazily from a pinned snapshot
// on first use and kept current incrementally: every committed batch
// folds its ops and placement moves into the catalog's mirrors and
// counters, so the statistics always describe the current placement
// without a per-mutation rescan (only Build drops the catalog).
//
// Like the other queries, an executed statement runs against an
// LSN-pinned snapshot: a concurrent Apply never blocks it and never
// tears its view (Options.ExclusiveReads restores the shared lock).
func (s *Store) Query(ctx context.Context, src string) (*Result, error) {
	q, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	f := v.f
	cat, err := s.catalog(v)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Build(cat, q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		return exec.Explain(pl), nil
	}
	var es exec.Source = f
	if v.pinned {
		es = v.view
	}
	// Snapshot the physical counters around the execution so the
	// result carries its measured I/O even on stores without Metrics.
	io0 := f.DataIO()
	pool0 := f.Pool().Stats()
	idx0 := f.IndexVisits()
	var res *Result
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.query, f)
		res, err = exec.Run(ctx, es, pl, q)
		sn.end(err)
	} else {
		res, err = exec.Run(ctx, es, pl, q)
	}
	if err != nil {
		return nil, err
	}
	io := f.DataIO().Sub(io0)
	ps := f.Pool().Stats().Sub(pool0)
	res.Actual = &exec.Actuals{
		DataReads:    io.Reads,
		IndexPages:   f.IndexVisits() - idx0,
		BufferHits:   ps.Hits,
		BufferMisses: ps.Misses,
	}
	return res, nil
}

// Query is the ctx-less convenience form of Store.Query.
func (p Plain) Query(src string) (*Result, error) {
	return p.q.Query(context.Background(), src)
}

// catalog returns the store's cached planner catalog, building it on
// first use with one sequential scan of the given read view — the
// pinned snapshot when one is open, so the build neither blocks nor is
// torn by a concurrent Apply. catMu makes concurrent first queries
// share one build; catLSN records the commit the catalog reflects, so
// Apply's incremental deltas know where to resume (lock order: mu, if
// held, always before catMu).
func (s *Store) catalog(v readView) (*plan.Catalog, error) {
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if s.cat != nil {
		return s.cat, nil
	}
	var src plan.Source = v.f
	var lsn uint64
	if v.pinned {
		src = v.view
		lsn = v.view.LSN()
	}
	cat, err := plan.NewCatalog(src)
	if err != nil {
		return nil, err
	}
	s.cat = cat
	s.catLSN = lsn
	return cat, nil
}

// invalidateCatalog drops the cached planner catalog; the next Query
// rebuilds it from scratch. Only Build calls it now — placement there
// changes wholesale — while Apply and the background reorganizer keep
// the catalog current incrementally (applyCatalogDeltas).
func (s *Store) invalidateCatalog() {
	s.catMu.Lock()
	s.cat = nil
	s.catLSN = 0
	s.catMu.Unlock()
}

// IsQueryError reports whether err belongs to the query-language error
// family (parse failure, unsupported statement, no path, invalid
// tour/route) as opposed to a storage-layer failure. The serving layer
// uses it to map such failures to client-error responses.
func IsQueryError(err error) bool {
	return errors.Is(err, ErrQueryParse) ||
		errors.Is(err, ErrQueryUnsupported) ||
		errors.Is(err, ErrNoPath) ||
		errors.Is(err, ErrInvalidTour)
}

// ExplainStatement returns src with an EXPLAIN prefix, unless one is
// already present (case-insensitively). The serving layer uses it to
// honor a request's explain flag without double prefixing.
func ExplainStatement(src string) string {
	trimmed := strings.TrimLeft(src, " \t\r\n")
	if len(trimmed) >= len("EXPLAIN") && strings.EqualFold(trimmed[:len("EXPLAIN")], "EXPLAIN") {
		rest := trimmed[len("EXPLAIN"):]
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == '\r' || rest[0] == '\n' {
			return src
		}
	}
	return "EXPLAIN " + src
}
