//go:build !race

package ccam

const raceEnabled = false
