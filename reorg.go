package ccam

import (
	"fmt"
	"sort"
	"sync"
	"time"

	iccam "ccam/internal/ccam"
	"ccam/internal/storage"
)

// This file is the background incremental reorganizer
// (Options.BackgroundReorg): the store's answer to clustering decay.
// The paper's maintenance policies (§2.4) reorganize around each
// update; under sustained churn the placement still drifts, and the
// classical fix — rebuild the file — stops the world. The reorganizer
// instead watches the live CRR gauge and, when it has decayed from its
// high-water mark, re-clusters the worst PAG neighborhoods a bounded
// number of pages at a time. Each round is a tiny write transaction:
// it runs under the store's write lock, brackets itself in the WAL
// like an Apply, and publishes through the version layer — so snapshot
// readers keep their pinned views and queries started mid-round are
// never torn, exactly as with any mutation batch.

// Reorganizer defaults (Options.ReorgInterval and friends override).
const (
	defaultReorgInterval    = 2 * time.Second
	defaultReorgMaxPages    = 16
	defaultReorgTriggerDrop = 0.02
	// reorgSeeds is how many worst pages seed a round before PAG
	// expansion fills it up to the page budget.
	reorgSeeds = 4
)

// reorganizer runs reorganization rounds on a timer until halted.
type reorganizer struct {
	s        *Store
	cm       *iccam.Method
	interval time.Duration
	maxPages int
	drop     float64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// highwater is the best CRR seen since the last Build (guarded by
	// s.mu: rounds and Build both hold it).
	highwater float64
}

// startReorganizer validates the configuration and launches the
// reorganizer goroutine. Called from Open/OpenPath before the store is
// shared.
func (s *Store) startReorganizer(opts Options) error {
	cm, ok := s.m.(*iccam.Method)
	if !ok {
		return fmt.Errorf("ccam: access method %q does not support background reorganization", s.m.Name())
	}
	r := &reorganizer{
		s:        s,
		cm:       cm,
		interval: opts.ReorgInterval,
		maxPages: opts.ReorgMaxPages,
		drop:     opts.ReorgTriggerDrop,
		stop:     make(chan struct{}),
	}
	if r.interval <= 0 {
		r.interval = defaultReorgInterval
	}
	if r.maxPages <= 0 {
		r.maxPages = defaultReorgMaxPages
	}
	if r.drop <= 0 {
		r.drop = defaultReorgTriggerDrop
	}
	s.reorg = r
	r.wg.Add(1)
	go r.loop()
	return nil
}

// halt stops the reorganizer and waits for an in-flight round;
// idempotent. Must be called without holding the store's locks.
func (r *reorganizer) halt() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// resetLocked restarts CRR high-water tracking (Build installs a fresh
// placement). Caller holds s.mu.
func (r *reorganizer) resetLocked() { r.highwater = 0 }

func (r *reorganizer) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.round()
	}
}

// Poke runs one reorganization round immediately (tests and the bench
// harness use it to avoid timing dependence). It is a no-op when the
// trigger condition does not hold.
func (s *Store) Poke() {
	if s.reorg != nil {
		s.reorg.round()
	}
}

// round checks the trigger and, if the clustering has decayed, runs
// one bounded re-clustering transaction. It takes the write lock like
// an Apply: snapshot readers are unaffected, only writers queue behind
// it — for at most maxPages of reorganization work.
func (r *reorganizer) round() {
	s := r.s
	s.mu.Lock()
	if s.closed || s.failedErr() != nil || s.obs == nil {
		s.mu.Unlock()
		return
	}
	f := s.m.File()
	if f == nil {
		s.mu.Unlock()
		return
	}
	crr := s.obs.gaugeCRR()
	if crr > r.highwater {
		r.highwater = crr
	}
	if crr >= r.highwater-r.drop {
		s.mu.Unlock()
		return
	}
	pids := r.targetsLocked()
	if len(pids) < 2 {
		s.mu.Unlock()
		return
	}
	w := f.WAL()
	if w != nil {
		if _, err := w.Append(storage.WALRecBegin, nil); err != nil {
			s.mu.Unlock()
			return
		}
	}
	f.BeginVersionBatch()
	if err := r.cm.ReclusterPages(pids); err != nil {
		// A failed re-clustering may have moved records already; like a
		// mid-batch Apply failure, the memory state no longer matches
		// the committed prefix.
		if w != nil {
			w.Append(storage.WALRecAbort, nil)
		}
		f.AbortVersionBatch()
		s.poison(fmt.Errorf("%w: background reorganization failed, reopen to recover: %v", ErrClosed, err))
		s.mu.Unlock()
		return
	}
	var commitLSN uint64
	if w != nil {
		lsn, err := w.Append(storage.WALRecCommit, nil)
		if err != nil {
			f.AbortVersionBatch()
			s.poison(fmt.Errorf("%w: reorg commit append failed, reopen to recover: %v", ErrClosed, err))
			s.mu.Unlock()
			return
		}
		commitLSN = lsn
	}
	lsn := f.PublishVersionBatch(commitLSN)
	evs := f.TakePlacementEvents()
	s.obs.applyPlaceEvents(evs)
	s.catMu.Lock()
	if s.cat != nil && lsn > s.catLSN {
		for _, ev := range evs {
			if ev.Page != storage.InvalidPageID {
				s.cat.MoveNode(ev.ID, ev.Page)
			}
		}
		s.cat.RefreshStats(f.NumPages())
		s.catLSN = lsn
	}
	s.catMu.Unlock()
	// The re-clustered pages have new contents; refresh their PAG
	// prefetch digests so connectivity-aware prefetch follows the new
	// layout.
	f.RefreshPAGHints(pids)
	s.obs.setGauges()
	s.obs.setSnapshotGauges(f)
	s.obs.reorgRounds.Inc()
	s.obs.reorgPages.Add(int64(len(pids)))
	if after := s.obs.gaugeCRR(); after <= crr+1e-9 {
		// Negligible gain: the decay is not recoverable by local
		// re-clustering. Lower the high-water mark so rounds stop until
		// the placement improves or decays further (backoff).
		r.highwater = after
	}
	if w != nil && s.checkpointBytes > 0 && w.Size() > s.checkpointBytes {
		if err := f.Checkpoint(); err != nil {
			s.poison(fmt.Errorf("%w: checkpoint failed, reopen to recover: %v", ErrClosed, err))
			s.mu.Unlock()
			return
		}
	}
	s.mu.Unlock()
	if w != nil {
		w.Commit(commitLSN)
	}
}

// targetsLocked picks the round's page set: the pages with the most
// cross-page edges (from the incremental per-page tallies), each
// expanded with its PAG neighbors, bounded by maxPages. Caller holds
// s.mu.
func (r *reorganizer) targetsLocked() []storage.PageID {
	seeds := r.s.obs.worstPages(reorgSeeds)
	set := make(map[storage.PageID]bool, r.maxPages)
	for _, pid := range seeds {
		if len(set) >= r.maxPages {
			break
		}
		set[pid] = true
		nbrs, err := r.cm.NbrPages(pid)
		if err != nil {
			continue
		}
		for _, nb := range nbrs {
			if len(set) >= r.maxPages {
				break
			}
			set[nb] = true
		}
	}
	pids := make([]storage.PageID, 0, len(set))
	for pid := range set {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
