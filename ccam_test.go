package ccam

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ccam/internal/storage"
)

func testMap(t *testing.T) *Network {
	t.Helper()
	opts := MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 16, 16
	g, err := RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStoreLifecycle(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Find(context.Background(), 1); err == nil {
		t.Fatal("Find on unbuilt store succeeded")
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	if s.Len() != g.NumNodes() {
		t.Fatalf("Len = %d, want %d", s.Len(), g.NumNodes())
	}
	if s.NumPages() == 0 {
		t.Fatal("no pages")
	}
	id := g.NodeIDs()[0]
	rec, err := s.Find(context.Background(), id)
	if err != nil || rec.ID != id {
		t.Fatalf("Find = %v, %v", rec, err)
	}
	if !s.Contains(id) || s.Contains(999999) {
		t.Fatal("Contains wrong")
	}
	if _, err := s.Find(context.Background(), 999999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing find = %v", err)
	}
	if crr := s.CRR(g); crr < 0.5 {
		t.Fatalf("CRR = %f", crr)
	}
}

func TestStoreOperations(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}

	// Get-successors and Get-A-successor.
	id := g.NodeIDs()[5]
	succs, err := s.GetSuccessors(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(succs) != len(g.Successors(id)) {
		t.Fatalf("GetSuccessors = %d records, want %d", len(succs), len(g.Successors(id)))
	}
	rec, _ := s.Find(context.Background(), id)
	if len(rec.Succs) > 0 {
		sr, err := s.GetASuccessor(context.Background(), rec, rec.Succs[0].To)
		if err != nil || sr.ID != rec.Succs[0].To {
			t.Fatalf("GetASuccessor = %v, %v", sr, err)
		}
		if _, err := s.GetASuccessor(context.Background(), rec, 999999); err == nil {
			t.Fatal("GetASuccessor accepted a non-successor")
		}
	}

	// Route evaluation.
	rng := rand.New(rand.NewSource(3))
	routes, err := RandomWalkRoutes(g, 5, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routes {
		agg, err := s.EvaluateRoute(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Nodes != 8 || agg.TotalCost <= 0 {
			t.Fatalf("aggregate = %+v", agg)
		}
	}

	// Range query.
	b := g.Bounds()
	all, err := s.RangeQuery(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumNodes() {
		t.Fatalf("RangeQuery(all) = %d, want %d", len(all), g.NumNodes())
	}

	// Maintenance: delete and re-insert a node, and an edge round trip.
	victim := g.NodeIDs()[7]
	op, err := InsertOpFromNode(g, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(victim, SecondOrder); err != nil {
		t.Fatal(err)
	}
	if s.Contains(victim) {
		t.Fatal("deleted node still present")
	}
	if err := s.Insert(op, SecondOrder); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(victim) {
		t.Fatal("re-inserted node missing")
	}
	e := g.Edges()[0]
	if err := s.DeleteEdge(e.From, e.To, FirstOrder); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertEdge(e.From, e.To, float32(e.Cost), FirstOrder); err != nil {
		t.Fatal(err)
	}

	// I/O metering is exposed.
	if err := s.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find(context.Background(), victim); err != nil {
		t.Fatal(err)
	}
	if s.IO().Reads == 0 {
		t.Fatal("Find cost no I/O after reset")
	}
}

func TestStoreFileBacked(t *testing.T) {
	g := testMap(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := Open(Options{PageSize: 1024, Seed: 4, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	id := g.NodeIDs()[3]
	if _, err := s.Find(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselines(t *testing.T) {
	g := testMap(t)
	for _, kind := range []BaselineKind{DFSAM, BFSAM, WDFSAM, GridFile} {
		m, err := NewBaseline(kind, Options{PageSize: 1024, Seed: 5})
		if err != nil {
			t.Fatalf("NewBaseline(%s): %v", kind, err)
		}
		if err := m.Build(g); err != nil {
			t.Fatalf("build %s: %v", kind, err)
		}
		id := g.NodeIDs()[0]
		rec, err := m.Find(context.Background(), id)
		if err != nil || rec.ID != id {
			t.Fatalf("%s Find = %v, %v", kind, rec, err)
		}
		if io := m.IO(); io.Reads+io.Writes == 0 {
			t.Fatalf("%s IO() reports no traffic after Build", kind)
		}
		var am AccessMethod = m
		if am.Name() == "" {
			t.Fatalf("%s has no name", kind)
		}
	}
	if _, err := NewBaseline("nope", Options{}); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestDynamicStore(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 6, Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	if s.Len() != g.NumNodes() {
		t.Fatalf("Len = %d", s.Len())
	}
	if crr := s.CRR(g); crr < 0.4 {
		t.Fatalf("CCAM-D CRR = %f", crr)
	}
}

func TestStoreReopen(t *testing.T) {
	g := testMap(t)
	path := filepath.Join(t.TempDir(), "persist.ccam")
	s, err := Open(Options{PageSize: 1024, Seed: 8, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	wantLen, wantPages := s.Len(), s.NumPages()
	wantCRR := s.CRR(g)
	// Mutate after build so the reopen covers post-build state too.
	victim := g.NodeIDs()[4]
	op, err := InsertOpFromNode(g, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(victim, SecondOrder); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(op, SecondOrder); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenPath(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), wantLen)
	}
	if r.NumPages() == 0 || r.NumPages() > wantPages+3 {
		t.Fatalf("reopened pages = %d (was %d)", r.NumPages(), wantPages)
	}
	// Every record is intact, with its full lists.
	for _, id := range g.NodeIDs() {
		rec, err := r.Find(context.Background(), id)
		if err != nil {
			t.Fatalf("reopened Find(%d): %v", id, err)
		}
		if len(rec.Succs) != len(g.Successors(id)) || len(rec.Preds) != len(g.Predecessors(id)) {
			t.Fatalf("node %d lists damaged by reopen", id)
		}
	}
	// Clustering quality survives (placement is byte-identical except
	// for the mutated node's neighborhood).
	if got := r.CRR(g); got < wantCRR-0.05 {
		t.Fatalf("reopened CRR %.4f, was %.4f", got, wantCRR)
	}
	// The reopened store is fully operational: spatial query + update.
	all, err := r.RangeQuery(context.Background(), g.Bounds())
	if err != nil || len(all) != g.NumNodes() {
		t.Fatalf("reopened range query: %d records, %v", len(all), err)
	}
	if err := r.Delete(victim, FirstOrder); err != nil {
		t.Fatalf("reopened delete: %v", err)
	}
	if err := r.Insert(op, FirstOrder); err != nil {
		t.Fatalf("reopened insert: %v", err)
	}
}

func TestOpenPathRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a page file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPath(path, Options{}); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, err := OpenPath(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	ids := g.NodeIDs()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				id := ids[rng.Intn(len(ids))]
				switch i % 4 {
				case 0:
					if _, err := s.Find(context.Background(), id); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := s.GetSuccessors(context.Background(), id); err != nil {
						errCh <- err
						return
					}
				case 2:
					s.Contains(id)
					s.Len()
				case 3:
					e := g.Edges()[rng.Intn(g.NumEdges())]
					if err := s.SetEdgeCost(e.From, e.To, float32(e.Cost)); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestStoreWithRTreeIndex(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 19, Spatial: SpatialRTree})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	all, err := s.RangeQuery(context.Background(), g.Bounds())
	if err != nil || len(all) != g.NumNodes() {
		t.Fatalf("r-tree range query = %d, %v", len(all), err)
	}
	// Nearest through the facade.
	n, _ := g.Node(g.NodeIDs()[0])
	nn, err := s.Nearest(n.Pos, 3)
	if err != nil || len(nn) != 3 || nn[0].ID != g.NodeIDs()[0] {
		t.Fatalf("Nearest = %v, %v", nn, err)
	}
	// Updates keep the r-tree consistent.
	op, err := InsertOpFromNode(g, nn[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(nn[0].ID, SecondOrder); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(op, SecondOrder); err != nil {
		t.Fatal(err)
	}
	nn2, err := s.Nearest(n.Pos, 1)
	if err != nil || len(nn2) != 1 || nn2[0].ID != nn[0].ID {
		t.Fatalf("Nearest after update = %v, %v", nn2, err)
	}
}

// TestOpenPathDetectsCorruption pins the durability contract of the
// public facade: on-disk corruption surfaces as the re-exported
// ErrChecksum sentinel, and after an fsck repair the file opens again
// with the damaged page's records quarantined — not with silent
// garbage.
func TestOpenPathDetectsCorruption(t *testing.T) {
	g := testMap(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := Open(Options{PageSize: 1024, Seed: 9, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	total := s.Len()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the middle of a data page, beneath every
	// integrity layer.
	if err := storage.CorruptPage(path, 1, 500*8); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPath(path, Options{}); !errors.Is(err, ErrChecksum) {
		t.Fatalf("OpenPath on corrupted file = %v, want wrapped ErrChecksum", err)
	}

	// Repair quarantines the page; the survivors open and serve.
	rep, err := storage.RepairFile(path, storage.FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repair left damage: %v", rep.Damaged)
	}
	r, err := OpenPath(path, Options{})
	if err != nil {
		t.Fatalf("OpenPath after repair: %v", err)
	}
	defer r.Close()
	if got := r.Len(); got == 0 || got >= total {
		t.Fatalf("after quarantine Len = %d, want 0 < n < %d", got, total)
	}
	for _, id := range g.NodeIDs() {
		rec, err := r.Find(context.Background(), id)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // quarantined with its page
			}
			t.Fatalf("Find(%d) after repair: %v", id, err)
		}
		if rec.ID != id {
			t.Fatalf("Find(%d) returned %d after repair", id, rec.ID)
		}
	}
}
