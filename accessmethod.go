package ccam

import "context"

// AccessMethod is the public contract shared by CCAM stores and the
// paper's baseline file organizations: Open/OpenWith and NewBaseline
// both hand back a *Store, so every access method exposes the same
// query, batch-query, transactional-mutation and I/O-metering surface
// and comparison code (cmd/ccam-bench, the paper's experiments) never
// branches on the concrete method.
//
// The interface covers the shared core; *Store carries additional
// CCAM-specific conveniences (graph searches, spatial queries,
// metrics) beyond it.
type AccessMethod interface {
	// Name identifies the method in reports ("ccam-s", "dfs-am", ...).
	Name() string
	// Build creates the file contents from a network (the paper's
	// Create()).
	Build(g *Network) error

	// Find retrieves the record of a node.
	Find(id NodeID) (*Record, error)
	// FindCtx is Find with cooperative cancellation.
	FindCtx(ctx context.Context, id NodeID) (*Record, error)
	// GetASuccessor retrieves the record of succ, a successor of cur.
	GetASuccessor(cur *Record, succ NodeID) (*Record, error)
	// GetSuccessors retrieves the records of all successors of a node.
	GetSuccessors(id NodeID) ([]*Record, error)
	// GetSuccessorsCtx is GetSuccessors with cooperative cancellation.
	GetSuccessorsCtx(ctx context.Context, id NodeID) ([]*Record, error)
	// EvaluateRoute computes the aggregate property of a route.
	EvaluateRoute(route Route) (RouteAggregate, error)
	// EvaluateRouteCtx is EvaluateRoute with cooperative cancellation.
	EvaluateRouteCtx(ctx context.Context, route Route) (RouteAggregate, error)
	// FindBatch retrieves many records through a bounded worker pool.
	FindBatch(ctx context.Context, ids []NodeID) ([]*Record, error)
	// EvaluateRoutes evaluates many routes through a bounded worker
	// pool.
	EvaluateRoutes(ctx context.Context, routes []Route) ([]RouteAggregate, error)

	// Apply commits a batch of mutations atomically.
	Apply(ctx context.Context, b *Batch) error
	// Insert adds a new node with its edges (a one-op batch).
	Insert(op *InsertOp, policy Policy) error
	// Delete removes a node and its incident edges (a one-op batch).
	Delete(id NodeID, policy Policy) error
	// InsertEdge adds a directed edge (a one-op batch).
	InsertEdge(from, to NodeID, cost float32, policy Policy) error
	// DeleteEdge removes a directed edge (a one-op batch).
	DeleteEdge(from, to NodeID, policy Policy) error
	// SetEdgeCost updates an edge's cost in place (a one-op batch).
	SetEdgeCost(from, to NodeID, cost float32) error

	// Len returns the number of stored node records.
	Len() int
	// NumPages returns the number of data pages in the file.
	NumPages() int
	// Placement returns the node → data page assignment.
	Placement() Placement
	// IO returns the physical data-page I/O counters.
	IO() IOStats
	// ResetIO empties the buffer pool and zeroes the I/O counters.
	ResetIO() error
	// Flush persists buffered state (a checkpoint, with a WAL).
	Flush() error
	// Close releases the store.
	Close() error
}

// Every store — CCAM and the baselines — implements the shared
// contract.
var _ AccessMethod = (*Store)(nil)
