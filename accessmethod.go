package ccam

import "context"

// This file is the public contract shared by CCAM stores and the
// paper's baseline file organizations: Open/OpenWith and NewBaseline
// both hand back a *Store, so every access method exposes the same
// query, batch-query, transactional-mutation and admin surface and
// comparison code (cmd/ccam-bench, the paper's experiments, the
// ccam-serve daemon) never branches on the concrete method.
//
// The contract is split into three composable interfaces — Querier,
// Mutator, Admin — so a consumer can ask for exactly the capability it
// needs: a read-only query service takes a Querier, a replication sink
// takes a Mutator, an operations dashboard takes an Admin. AccessMethod
// embeds all three and is what *Store implements in full.
//
// Every query method is context-first and singly named: Find(ctx, id)
// is the one canonical spelling (the pre-redesign Find(id)/FindCtx(ctx,
// id) pairs collapsed into it). Callers without a context in hand can
// use the thin ctx-less convenience wrappers on Plain (see
// Store.Plain), which delegate with context.Background().

// Querier is the read-only query surface: the paper's operations
// (Find, Get-A-successor, Get-successors, route evaluation), the
// spatial range query and the batch forms. All methods take a leading
// context for cooperative cancellation and deadlines, are safe for
// concurrent use, and leave the stored contents untouched.
type Querier interface {
	// Find retrieves the record of a node.
	Find(ctx context.Context, id NodeID) (*Record, error)
	// GetASuccessor retrieves the record of succ, a successor of cur;
	// the buffered page containing cur is searched first.
	GetASuccessor(ctx context.Context, cur *Record, succ NodeID) (*Record, error)
	// GetSuccessors retrieves the records of all successors of a node.
	GetSuccessors(ctx context.Context, id NodeID) ([]*Record, error)
	// EvaluateRoute computes the aggregate property of a route.
	EvaluateRoute(ctx context.Context, route Route) (RouteAggregate, error)
	// RangeQuery returns all records whose positions lie inside rect,
	// via the secondary spatial index.
	RangeQuery(ctx context.Context, rect Rect) ([]*Record, error)
	// Has reports whether a node is stored, surfacing real failures
	// (an unbuilt store, an index error) as a non-nil error.
	Has(ctx context.Context, id NodeID) (bool, error)
	// FindBatch retrieves many records through a bounded worker pool.
	FindBatch(ctx context.Context, ids []NodeID) ([]*Record, error)
	// EvaluateRoutes evaluates many routes through a bounded worker
	// pool.
	EvaluateRoutes(ctx context.Context, routes []Route) ([]RouteAggregate, error)
	// Query parses, plans and executes one CCAM-QL statement (FIND,
	// WINDOW, NEIGHBORS, ROUTE, PATH, optionally EXPLAIN-prefixed),
	// choosing the access path by predicted data-page accesses.
	Query(ctx context.Context, src string) (*Result, error)
}

// Mutator is the write surface. Apply is the canonical mutation entry
// point — an atomic, WAL-logged batch — and the single-operation
// methods are documented one-op batches over it. Build replaces the
// whole file contents (the paper's Create()).
type Mutator interface {
	// Build creates the file contents from a network (the paper's
	// Create()), replacing any previous contents.
	Build(g *Network) error
	// Apply commits a batch of mutations atomically.
	Apply(ctx context.Context, b *Batch) error
	// Insert adds a new node with its edges (a one-op batch).
	Insert(op *InsertOp, policy Policy) error
	// Delete removes a node and its incident edges (a one-op batch).
	Delete(id NodeID, policy Policy) error
	// InsertEdge adds a directed edge (a one-op batch).
	InsertEdge(from, to NodeID, cost float32, policy Policy) error
	// DeleteEdge removes a directed edge (a one-op batch).
	DeleteEdge(from, to NodeID, policy Policy) error
	// SetEdgeCost updates an edge's cost in place (a one-op batch).
	SetEdgeCost(from, to NodeID, cost float32) error
}

// Admin is the operational surface: identification, size accounting,
// placement introspection, I/O metering and lifecycle.
type Admin interface {
	// Name identifies the method in reports ("ccam-s", "dfs-am", ...).
	Name() string
	// Len returns the number of stored node records.
	Len() int
	// NumPages returns the number of data pages in the file.
	NumPages() int
	// Placement returns the node → data page assignment.
	Placement() Placement
	// IO returns the physical data-page I/O counters.
	IO() IOStats
	// ResetIO empties the buffer pool and zeroes the I/O counters.
	ResetIO() error
	// Flush persists buffered state (a checkpoint, with a WAL).
	Flush() error
	// Close releases the store.
	Close() error
}

// AccessMethod is the full contract: queries, mutations and admin in
// one bundle. The interface covers the shared core; *Store carries
// additional CCAM-specific conveniences (graph searches, spatial
// nearest-neighbor, metrics) beyond it.
type AccessMethod interface {
	Querier
	Mutator
	Admin
}

// Every store — CCAM and the baselines — implements the shared
// contract, and each of its facets.
var (
	_ AccessMethod = (*Store)(nil)
	_ Querier      = (*Store)(nil)
	_ Mutator      = (*Store)(nil)
	_ Admin        = (*Store)(nil)
)
