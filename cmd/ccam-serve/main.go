// Command ccam-serve puts a CCAM store in front of network traffic:
// the full query surface (find, successors, range query, route and
// batch evaluation, transactional apply) over JSON/HTTP and over the
// compact binary protocol of internal/wire, with per-request
// deadlines, admission control that sheds excess load, and a graceful
// drain on SIGTERM/SIGINT (stop accepting, finish in-flight requests,
// checkpoint, close — so the next start replays no WAL).
//
// Usage:
//
//	ccam-serve -path city.ccam                       # serve an existing store
//	ccam-serve -path city.ccam -create -nodes 262144 # build one first
//
// Endpoints: POST /v1/{find,has,successors,route,range,find-batch,
// routes,apply}, GET /v1/info, plus /metrics, /metrics.json, /traces
// and /debug/pprof. The binary protocol listens on -tcp.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccam"
	"ccam/internal/graph"
	"ccam/internal/server"
)

func main() {
	var (
		path        = flag.String("path", "", "store data file (required)")
		httpAddr    = flag.String("http", "127.0.0.1:7070", "JSON/HTTP listen address (empty disables)")
		tcpAddr     = flag.String("tcp", "127.0.0.1:7071", "binary-protocol listen address (empty disables)")
		maxInFlight = flag.Int("max-inflight", server.DefaultMaxInFlight, "admission cap: concurrently executing requests before shedding")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline for requests that carry none (0 = unbounded)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		create      = flag.Bool("create", false, "if the store is missing, build one from a synthetic road map")
		nodes       = flag.Int("nodes", 1079, "with -create: approximate node count of the generated map")
		seed        = flag.Int64("seed", 42, "with -create: map generator and partitioner seed")
		pageSize    = flag.Int("pagesize", 2048, "with -create: page size in bytes")
		poolPages   = flag.Int("pool", 256, "buffer pool capacity in pages")
		poolShards  = flag.Int("pool-shards", 0, "buffer pool shard count (0 = auto-size to the machine, 1 = single latch)")
		prefetch    = flag.Bool("prefetch", true, "prefetch PAG-adjacent data pages on buffer misses")
		noWAL       = flag.Bool("no-wal", false, "with -create: disable the write-ahead log")
		logLevel    = flag.String("log", "info", "structured-log level on stderr: debug, info, warn, error, or off")
		slowQuery   = flag.Duration("slow-query", 0, "log any request slower than this with its span breakdown and resource account (0 = off)")
		traceCap    = flag.Int("trace", 256, "operation-trace ring capacity for /traces (0 disables tracing)")
	)
	flag.Parse()
	if err := run(runConfig{
		path: *path, httpAddr: *httpAddr, tcpAddr: *tcpAddr,
		maxInFlight: *maxInFlight, deadline: *deadline, drain: *drain,
		create: *create, nodes: *nodes, seed: *seed,
		pageSize: *pageSize, poolPages: *poolPages,
		poolShards: *poolShards, prefetch: *prefetch, wal: !*noWAL,
		logLevel: *logLevel, slowQuery: *slowQuery, traceCap: *traceCap,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ccam-serve:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	path, httpAddr, tcpAddr string
	maxInFlight             int
	deadline, drain         time.Duration
	create                  bool
	nodes                   int
	seed                    int64
	pageSize, poolPages     int
	poolShards              int
	prefetch                bool
	wal                     bool
	logLevel                string
	slowQuery               time.Duration
	traceCap                int
}

// newLogger builds the stderr slog logger, or nil for -log off.
func newLogger(level string) (*slog.Logger, error) {
	if level == "off" {
		return nil, nil
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func run(cfg runConfig) error {
	if cfg.path == "" {
		return errors.New("-path is required")
	}
	logger, err := newLogger(cfg.logLevel)
	if err != nil {
		return err
	}
	st, err := openStore(cfg)
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Printf("store: %s (%s, %d nodes, %d pages)\n", cfg.path, st.Name(), st.Len(), st.NumPages())
	if logger != nil {
		// Recovery summary: what the open just did to get consistent.
		ws := st.WALStats()
		if ws.Enabled && ws.ReplayedBatches > 0 {
			logger.Warn("wal recovery: previous shutdown was not clean",
				"replayed_batches", ws.ReplayedBatches, "replayed_mutations", ws.ReplayedMutations)
		} else {
			logger.Info("store open", "name", st.Name(), "nodes", st.Len(),
				"pages", st.NumPages(), "wal", ws.Enabled)
		}
	}

	srv := server.New(server.Options{
		Store:           st,
		MaxInFlight:     cfg.maxInFlight,
		DefaultDeadline: cfg.deadline,
		Logger:          logger,
		SlowQuery:       cfg.slowQuery,
	})

	errc := make(chan error, 2)
	var httpSrv *http.Server
	if cfg.httpAddr != "" {
		l, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: srv.Handler()}
		fmt.Printf("http: listening on %s\n", l.Addr())
		go func() {
			if err := httpSrv.Serve(l); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}
	if cfg.tcpAddr != "" {
		l, err := net.Listen("tcp", cfg.tcpAddr)
		if err != nil {
			return err
		}
		fmt.Printf("tcp: listening on %s (binary protocol)\n", l.Addr())
		go func() {
			if err := srv.ServeBinary(l); err != nil {
				errc <- err
			}
		}()
	}
	if httpSrv == nil && cfg.tcpAddr == "" {
		return errors.New("nothing to serve: both -http and -tcp are empty")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Printf("%s: draining (budget %s)\n", s, cfg.drain)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if httpSrv != nil {
		httpSrv.SetKeepAlivesEnabled(false)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "ccam-serve: http shutdown:", err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := st.Close(); err != nil {
		return err
	}
	fmt.Println("drained: in-flight finished, checkpointed, closed")
	return nil
}

// openStore opens the store at cfg.path, or builds it from a
// synthetic road map when -create is set and the file is missing.
func openStore(cfg runConfig) (*ccam.Store, error) {
	shards := cfg.poolShards
	if shards == 0 {
		shards = ccam.AutoPoolShards(cfg.poolPages)
	}
	opts := ccam.Options{
		PoolPages:     cfg.poolPages,
		PoolShards:    shards,
		Prefetch:      cfg.prefetch,
		Seed:          cfg.seed,
		Metrics:       true,
		WAL:           cfg.wal,
		TraceCapacity: cfg.traceCap,
	}
	if _, err := os.Stat(cfg.path); err == nil {
		return ccam.OpenPath(cfg.path, opts)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	if !cfg.create {
		return nil, fmt.Errorf("store %s does not exist (pass -create to build one)", cfg.path)
	}
	mapOpts := graph.MinneapolisLikeOpts()
	mapOpts.Seed = cfg.seed
	side := 1
	for side*side < cfg.nodes {
		side++
	}
	mapOpts.Rows, mapOpts.Cols = side, side
	g, err := graph.RoadMap(mapOpts)
	if err != nil {
		return nil, err
	}
	opts.Path = cfg.path
	opts.PageSize = cfg.pageSize
	st, err := ccam.Open(opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("building %d-node store (this partitions the whole network)...\n", g.NumNodes())
	if err := st.Build(g); err != nil {
		st.Close()
		return nil, err
	}
	if err := st.Flush(); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}
