package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccam"
	"ccam/internal/storage"
)

// buildTestFile creates a small file-backed store and returns its path.
func buildTestFile(t *testing.T) string {
	t.Helper()
	opts := ccam.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 10, 10
	g, err := ccam.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := ccam.Open(ccam.Options{PageSize: 1024, Path: path, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		s.Close()
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// fsck runs the command's entry point and returns (exit code, stdout).
func fsck(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String() + errw.String()
}

func TestRunCleanCorruptRepairCycle(t *testing.T) {
	path := buildTestFile(t)

	// A pristine file verifies clean with exit 0.
	code, out := fsck(t, path)
	if code != 0 {
		t.Fatalf("clean file: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "clean") {
		t.Fatalf("no clean verdict in output:\n%s", out)
	}

	// -flip corrupts exactly one page...
	code, out = fsck(t, "-flip", "2:801", path)
	if code != 0 {
		t.Fatalf("-flip: exit %d\n%s", code, out)
	}

	// ...which verification then locates, with exit 1.
	code, out = fsck(t, path)
	if code != 1 {
		t.Fatalf("corrupted file: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "page 2") || !strings.Contains(out, "DAMAGED") {
		t.Fatalf("damage not located in output:\n%s", out)
	}

	// -repair quarantines it and re-verifies clean (exit 0), and a
	// following plain check agrees.
	code, out = fsck(t, "-repair", path)
	if code != 0 {
		t.Fatalf("-repair: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "quarantined page 2") {
		t.Fatalf("no quarantine action reported:\n%s", out)
	}
	if code, out = fsck(t, path); code != 0 {
		t.Fatalf("post-repair check: exit %d\n%s", code, out)
	}
	if _, err := ccam.OpenPath(path, ccam.Options{}); err != nil {
		t.Fatalf("OpenPath after repair: %v", err)
	}
}

func TestRunQuiet(t *testing.T) {
	path := buildTestFile(t)
	code, out := fsck(t, "-q", path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	if strings.Contains(out, "page size") {
		t.Fatalf("-q still printed the report:\n%s", out)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no file
		{"a.ccam", "b.ccam"},        // too many files
		{"-flip", "nope", "a.ccam"}, // malformed flip spec
		{filepath.Join(t.TempDir(), "missing.ccam")}, // unreadable file
	}
	for _, args := range cases {
		if code, _ := fsck(t, args...); code != 2 {
			t.Fatalf("run(%v) exit = %d, want 2", args, code)
		}
	}
}

// buildWALTestFile creates a WAL-backed store, logs a mutation, closes
// cleanly (checkpointed, pruned log) and returns the data file path.
func buildWALTestFile(t *testing.T) string {
	t.Helper()
	opts := ccam.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 8, 8
	g, err := ccam.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := ccam.Open(ccam.Options{PageSize: 1024, Path: path, Seed: 11, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		s.Close()
		t.Fatal(err)
	}
	e := g.Edges()[0]
	if err := s.SetEdgeCost(e.From, e.To, 42); err != nil {
		s.Close()
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWALAware(t *testing.T) {
	path := buildWALTestFile(t)
	code, out := fsck(t, path)
	if code != 0 {
		t.Fatalf("clean WAL-backed file: exit %d\n%s", code, out)
	}
	for _, want := range []string{"wal:", "segments", "checkpoint", "clean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Removing the log from under a WAL-flagged file is damage.
	if err := os.RemoveAll(storage.WALDir(path)); err != nil {
		t.Fatal(err)
	}
	code, out = fsck(t, path)
	if code != 1 {
		t.Fatalf("missing WAL dir: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "missing") {
		t.Fatalf("missing-log damage not reported:\n%s", out)
	}
}

func TestRunWALDirWithoutFlag(t *testing.T) {
	// A WAL directory beside a non-WAL file is flagged: its commits
	// would never be replayed.
	path := buildTestFile(t)
	dir := storage.WALDir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := storage.CreateWAL(dir, storage.SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(storage.WALRecBegin, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	code, out := fsck(t, path)
	if code != 1 {
		t.Fatalf("unflagged WAL dir: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "does not flag a WAL") {
		t.Fatalf("mismatch not reported:\n%s", out)
	}
}

func TestRunDrill(t *testing.T) {
	code, out := fsck(t, "-drill", "-seed", "5", "-ops", "8", "-q")
	if code != 0 {
		t.Fatalf("drill: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "drill PASS") {
		t.Fatalf("drill output:\n%s", out)
	}
}

func TestRunSelftest(t *testing.T) {
	code, out := fsck(t, "-selftest")
	if code != 0 {
		t.Fatalf("selftest: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "selftest PASS") {
		t.Fatalf("selftest output:\n%s", out)
	}
}
