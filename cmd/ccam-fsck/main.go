// Command ccam-fsck verifies and repairs CCAM page files.
//
// It checks, offline, every durable invariant of a file created with
// ccam.Open(Options{Path: ...}): the checksummed header (magic, page
// size, generation, CRC), the durable free-page chain, per-page CRC32
// trailers, slotted-page structure, and the agreement between records
// and the (rebuilt) node index — each node id stored exactly once.
// Damage is reported per page; with -repair, damaged pages are
// quarantined onto the free list so ccam.OpenPath opens the surviving
// records instead of failing the whole file.
//
// WAL-backed files (Options.WAL) are checked end to end: the sibling
// <file>.wal directory's segments are scanned for structural damage,
// the last complete checkpoint is located, and the committed batches a
// reopen would replay are counted. A torn log tail is reported as the
// (benign) crash signature it is, not as damage; a header that flags a
// WAL whose directory is missing is damage — the committed tail is
// gone.
//
// Usage:
//
//	ccam-fsck file.ccam              # verify file + WAL, report damage
//	ccam-fsck -repair file.ccam      # verify, quarantine damage, re-verify
//	ccam-fsck -flip 3:17 file.ccam   # test helper: flip bit 17 of page 3
//	ccam-fsck -selftest              # end-to-end smoke test (used by CI)
//	ccam-fsck -drill -seed 11        # WAL crash drill: crash at every log
//	                                 # record boundary, verify recovery
//
// Exit status: 0 clean, 1 damage found (or left) or drill failure, 2
// usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ccam"
	"ccam/internal/netfile"
	"ccam/internal/storage"
	"ccam/internal/waldrill"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ccam-fsck", flag.ContinueOnError)
	fs.SetOutput(errw)
	repair := fs.Bool("repair", false, "quarantine damaged pages so the file opens cleanly")
	flip := fs.String("flip", "", "test helper: flip one bit, as page:bit (e.g. 3:17), then exit")
	selftest := fs.Bool("selftest", false, "run an end-to-end create/corrupt/detect/repair cycle in a temp dir")
	drill := fs.Bool("drill", false, "run the WAL crash drill in a temp dir: crash at every log record boundary (and torn mid-record), verify exact recovery")
	seed := fs.Int64("seed", 11, "with -drill: seed for the road map and mutation stream")
	ops := fs.Int("ops", 60, "with -drill: minimum mutation ops in the drilled batch stream")
	quiet := fs.Bool("q", false, "print only the verdict line")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *selftest {
		if err := runSelftest(out); err != nil {
			fmt.Fprintln(errw, "ccam-fsck: selftest FAILED:", err)
			return 2
		}
		fmt.Fprintln(out, "selftest PASS")
		return 0
	}

	if *drill {
		return runDrill(out, errw, *seed, *ops, *quiet)
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(errw, "usage: ccam-fsck [-repair] [-q] file.ccam")
		fmt.Fprintln(errw, "       ccam-fsck -flip page:bit file.ccam")
		fmt.Fprintln(errw, "       ccam-fsck -selftest")
		fmt.Fprintln(errw, "       ccam-fsck -drill [-seed n] [-ops n]")
		return 2
	}
	path := fs.Arg(0)

	if *flip != "" {
		var page, bit int
		if _, err := fmt.Sscanf(*flip, "%d:%d", &page, &bit); err != nil {
			fmt.Fprintf(errw, "ccam-fsck: bad -flip %q (want page:bit): %v\n", *flip, err)
			return 2
		}
		if err := storage.CorruptPage(path, storage.PageID(page), bit); err != nil {
			fmt.Fprintln(errw, "ccam-fsck:", err)
			return 2
		}
		fmt.Fprintf(out, "flipped bit %d of page %d in %s\n", bit, page, path)
		return 0
	}

	var rep *storage.FsckReport
	var err error
	if *repair {
		rep, err = storage.RepairFile(path, storage.FsckOptions{})
	} else {
		rep, err = storage.CheckFile(path, storage.FsckOptions{})
	}
	if err != nil {
		fmt.Fprintln(errw, "ccam-fsck:", err)
		return 2
	}
	printReport(out, rep, *quiet)

	// WAL pass: scan the sibling log directory for structural damage
	// and report what a reopen would replay. Independent of the data
	// file's physical state — a damaged file with a healthy log is
	// recoverable, and vice versa is worth shouting about.
	walProblems, werr := checkWAL(path, rep.WAL, out, *quiet)
	if werr != nil {
		fmt.Fprintln(errw, "ccam-fsck:", werr)
		return 2
	}

	// Logical pass: records must decode and each node id must be
	// stored exactly once (the invariant the rebuilt B+-tree node
	// index relies on). Only meaningful once the physical layer is
	// clean.
	clean := rep.OK() && walProblems == 0
	if clean {
		dups, derr := checkRecordAgreement(path, out, *quiet)
		if derr != nil {
			fmt.Fprintln(errw, "ccam-fsck:", derr)
			return 2
		}
		clean = dups == 0
	}
	if clean {
		fmt.Fprintf(out, "%s: clean (generation %d, %d live pages, %d free)\n",
			path, rep.Generation, rep.LivePages, len(rep.FreePages))
		return 0
	}
	fmt.Fprintf(out, "%s: DAMAGED\n", path)
	return 1
}

func printReport(out io.Writer, rep *storage.FsckReport, quiet bool) {
	for _, act := range rep.Repaired {
		fmt.Fprintf(out, "repair: %s\n", act)
	}
	if quiet {
		return
	}
	checked := "plain pages"
	if rep.Checked {
		checked = "checksummed pages"
	}
	fmt.Fprintf(out, "%s: page size %d, %s, generation %d, %d allocated (%d free)\n",
		rep.Path, rep.PageSize, checked, rep.Generation, rep.NextPage, len(rep.FreePages))
	if rep.HeaderErr != nil {
		fmt.Fprintf(out, "header: %v\n", rep.HeaderErr)
	}
	if rep.FreeListErr != nil {
		fmt.Fprintf(out, "free list: %v\n", rep.FreeListErr)
	}
	for _, d := range rep.Damaged {
		fmt.Fprintf(out, "damaged: %s\n", d)
	}
}

// checkWAL inspects the data file's sibling WAL directory and returns
// the number of problems found (0 when the log is healthy or there is
// legitimately no log). hdrWAL reports whether the data file's header
// carries FlagWAL.
func checkWAL(path string, hdrWAL bool, out io.Writer, quiet bool) (problems int, err error) {
	dir := storage.WALDir(path)
	if _, statErr := os.Stat(dir); statErr != nil {
		if !os.IsNotExist(statErr) {
			return 0, statErr
		}
		if hdrWAL {
			fmt.Fprintf(out, "wal: header flags a WAL but %s is missing — the committed tail is unrecoverable\n", dir)
			return 1, nil
		}
		return 0, nil
	}
	rep, err := storage.CheckWALDir(dir)
	if err != nil {
		return 0, err
	}
	if !quiet {
		fmt.Fprintf(out, "wal: %d segments, %d records, last lsn %d\n",
			rep.Segments, rep.Records, rep.LastLSN)
		if rep.CheckpointLSN != 0 {
			fmt.Fprintf(out, "wal: last complete checkpoint at lsn %d, %d committed batches to replay\n",
				rep.CheckpointLSN, rep.Committed)
		} else {
			fmt.Fprintf(out, "wal: no complete checkpoint, %d committed batches to replay\n", rep.Committed)
		}
	}
	if rep.Torn {
		// The normal signature of a crash: the next open truncates it.
		fmt.Fprintln(out, "wal: torn tail (benign; truncated on next open)")
	}
	if !hdrWAL {
		fmt.Fprintf(out, "wal: %s exists but the data file header does not flag a WAL\n", dir)
		problems++
	}
	if rep.Err != nil {
		fmt.Fprintf(out, "wal: STRUCTURAL DAMAGE: %v\n", rep.Err)
		problems++
	}
	return problems, nil
}

// runDrill executes the WAL crash drill (internal/waldrill) in a temp
// dir: a seeded batch stream, a simulated crash at every log record
// boundary plus torn mid-record cuts, and recovery verified against
// the exact committed prefix at each.
func runDrill(out, errw io.Writer, seed int64, ops int, quiet bool) int {
	dir, err := os.MkdirTemp("", "ccam-waldrill")
	if err != nil {
		fmt.Fprintln(errw, "ccam-fsck:", err)
		return 2
	}
	defer os.RemoveAll(dir)
	cfg := waldrill.Config{Seed: seed, Ops: ops, Torn: true}
	if !quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	res, err := waldrill.Run(dir, cfg)
	if err != nil {
		fmt.Fprintln(errw, "ccam-fsck: drill FAILED:", err)
		return 1
	}
	fmt.Fprintf(out, "drill PASS: %d ops in %d batches, %d log records, %d crash points recovered exactly\n",
		res.Ops, res.Batches, res.Records, res.CrashPoints)
	return 0
}

// checkRecordAgreement scans every record of a physically clean file
// and reports node ids stored more than once (index↔record
// disagreement) or records that fail to decode.
func checkRecordAgreement(path string, out io.Writer, quiet bool) (problems int, err error) {
	st, fileStore, err := storage.OpenPageFile(path)
	if err != nil {
		return 0, fmt.Errorf("open for record check: %w", err)
	}
	defer fileStore.Close()

	seen := make(map[ccam.NodeID]storage.PageID)
	buf := make([]byte, st.PageSize())
	for _, pid := range st.PageIDs() {
		if err := st.ReadPage(pid, buf); err != nil {
			return 0, fmt.Errorf("page %d: %w", pid, err)
		}
		sp, err := storage.LoadSlottedPage(buf)
		if err != nil {
			return 0, fmt.Errorf("page %d: %w", pid, err)
		}
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				problems++
				fmt.Fprintf(out, "damaged: page %d slot %d: %v\n", pid, slot, err)
				continue
			}
			rec, err := netfile.DecodeRecord(raw)
			if err != nil {
				problems++
				fmt.Fprintf(out, "damaged: page %d slot %d: undecodable record: %v\n", pid, slot, err)
				continue
			}
			if prev, dup := seen[rec.ID]; dup {
				problems++
				fmt.Fprintf(out, "damaged: node %d stored on both page %d and page %d\n", rec.ID, prev, pid)
				continue
			}
			seen[rec.ID] = pid
		}
	}
	if !quiet {
		fmt.Fprintf(out, "records: %d nodes, each stored once\n", len(seen))
	}
	return problems, nil
}

// runSelftest exercises the whole durability story end to end in a
// temp dir: build a file-backed store, corrupt one page, verify fsck
// locates exactly that page, repair, and confirm OpenPath degrades
// gracefully to the surviving records.
func runSelftest(out io.Writer) error {
	dir, err := os.MkdirTemp("", "ccam-fsck-selftest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "net.ccam")

	opts := ccam.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 12, 12 // small map keeps the smoke test fast
	g, err := ccam.RoadMap(opts)
	if err != nil {
		return err
	}
	store, err := ccam.Open(ccam.Options{PageSize: 1024, Path: path, Seed: 7})
	if err != nil {
		return err
	}
	if err := store.Build(g); err != nil {
		store.Close()
		return err
	}
	total := store.Len()
	pages := store.NumPages()
	if err := store.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "selftest: built %s (%d nodes on %d pages)\n", path, total, pages)

	// A pristine file must verify clean.
	rep, err := storage.CheckFile(path, storage.FsckOptions{})
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("pristine file reported damaged: header=%v freelist=%v damaged=%v",
			rep.HeaderErr, rep.FreeListErr, rep.Damaged)
	}

	// Flip one bit in the middle of page 1 and expect exactly that
	// page flagged.
	const victim = storage.PageID(1)
	if err := storage.CorruptPage(path, victim, 1024*4+3); err != nil {
		return err
	}
	rep, err = storage.CheckFile(path, storage.FsckOptions{})
	if err != nil {
		return err
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0].ID != victim {
		return fmt.Errorf("after corrupting page %d, fsck flagged %v", victim, rep.Damaged)
	}
	if !errors.Is(rep.Damaged[0].Err, storage.ErrChecksum) {
		return fmt.Errorf("damage not classified as checksum failure: %v", rep.Damaged[0].Err)
	}
	fmt.Fprintf(out, "selftest: corruption located on page %d (%v)\n", victim, rep.Damaged[0].Err)

	// The store itself must refuse the damaged page...
	if _, err := ccam.OpenPath(path, ccam.Options{}); err == nil {
		return fmt.Errorf("OpenPath succeeded on a corrupted file")
	}

	// ...and open again after repair, minus the quarantined page.
	rep, err = storage.RepairFile(path, storage.FsckOptions{})
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("file still damaged after repair: %v", rep.Damaged)
	}
	reopened, err := ccam.OpenPath(path, ccam.Options{})
	if err != nil {
		return fmt.Errorf("OpenPath after repair: %w", err)
	}
	defer reopened.Close()
	if got := reopened.Len(); got >= total || got == 0 {
		return fmt.Errorf("after quarantine expected 0 < nodes < %d, got %d", total, got)
	}
	fmt.Fprintf(out, "selftest: repaired; %d of %d nodes survive quarantine\n", reopened.Len(), total)
	return nil
}
