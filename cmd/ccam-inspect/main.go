// Command ccam-inspect builds a CCAM file over a synthetic road map and
// prints its physical organization: pages, fill factors, the CRR, and
// optionally the page access graph and a per-page node listing.
//
// Usage:
//
//	ccam-inspect                       # paper-scale map, 2k pages
//	ccam-inspect -block 1024 -pag      # show PAG degrees
//	ccam-inspect -pages                # list nodes per page
//	ccam-inspect -query "EXPLAIN FIND 7"
//	ccam-inspect -query -              # CCAM-QL REPL on stdin
//
// With -query the file summary is skipped and the CCAM-QL statement
// runs against the built store instead; "-" reads statements from
// stdin one per line (an interactive EXPLAIN workbench).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ccam"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

func main() {
	block := flag.Int("block", 2048, "disk block size")
	seed := flag.Int64("seed", 42, "partitioner seed")
	dynamic := flag.Bool("dynamic", false, "use the incremental create (CCAM-D)")
	showPAG := flag.Bool("pag", false, "print page access graph degrees")
	showPages := flag.Bool("pages", false, "list the nodes on each page")
	query := flag.String("query", "", "run one CCAM-QL statement instead of the file summary; \"-\" reads statements from stdin")
	flag.Parse()

	if err := run(os.Stdout, *block, *seed, *dynamic, *showPAG, *showPages, *query); err != nil {
		fmt.Fprintln(os.Stderr, "ccam-inspect:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, block int, seed int64, dynamic, showPAG, showPages bool, query string) error {
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		return err
	}
	store, err := ccam.Open(ccam.Options{PageSize: block, Seed: seed, Dynamic: dynamic, Metrics: true})
	if err != nil {
		return err
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		return err
	}

	if query == "-" {
		return runREPL(w, os.Stdin, store)
	}
	if query != "" {
		return runQuery(w, store, query)
	}

	kind := "CCAM-S (static create)"
	if dynamic {
		kind = "CCAM-D (incremental create)"
	}
	fmt.Fprintf(w, "%s, block size %d\n", kind, block)
	fmt.Fprintf(w, "network: %d nodes, %d directed edges\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "file: %d records on %d pages (blocking factor %.2f)\n",
		store.Len(), store.NumPages(), float64(store.Len())/float64(store.NumPages()))
	// The registry keeps these gauges current across Build and every
	// mutation, so there is nothing to recompute here.
	reg := store.Metrics()
	fmt.Fprintf(w, "CRR: %.4f   WCRR: %.4f\n",
		reg.Gauge("ccam_crr").Value(), reg.Gauge("ccam_wcrr").Value())

	placement := store.Placement()
	perPage := map[storage.PageID][]graph.NodeID{}
	for id, pid := range placement {
		perPage[pid] = append(perPage[pid], id)
	}
	var pids []storage.PageID
	for pid := range perPage {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	sizer := netfile.RecordSizer(g)
	var fills []float64
	for _, pid := range pids {
		used := 0
		for _, id := range perPage[pid] {
			used += sizer(id) + storage.PerRecordOverhead
		}
		fills = append(fills, float64(used)/float64(block))
	}
	sort.Float64s(fills)
	fmt.Fprintf(w, "page fill: min %.2f  median %.2f  max %.2f\n",
		fills[0], fills[len(fills)/2], fills[len(fills)-1])

	if showPAG {
		pag := graph.BuildPAG(g, placement)
		degs := make([]int, 0, len(pids))
		for _, pid := range pids {
			degs = append(degs, len(pag.NbrPages(pid)))
		}
		sort.Ints(degs)
		fmt.Fprintf(w, "PAG: %d pages, degree min %d median %d max %d\n",
			pag.NumPages(), degs[0], degs[len(degs)/2], degs[len(degs)-1])
	}
	if showPages {
		for _, pid := range pids {
			ids := perPage[pid]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Fprintf(w, "page %4d (%2d records): %v\n", pid, len(ids), ids)
		}
	}
	return nil
}

// runQuery executes one CCAM-QL statement and renders the result.
func runQuery(w io.Writer, store *ccam.Store, stmt string) error {
	res, err := store.Plain().Query(stmt)
	if err != nil {
		return err
	}
	printResult(w, res)
	return nil
}

// runREPL reads statements from r one per line, printing each result;
// a failed statement reports its error and the loop continues.
func runREPL(w io.Writer, r io.Reader, store *ccam.Store) error {
	fmt.Fprintln(w, "CCAM-QL: FIND, WINDOW, NEIGHBORS, ROUTE, PATH; prefix with EXPLAIN for the plan; exit to quit")
	sc := bufio.NewScanner(r)
	for {
		fmt.Fprint(w, "ccam> ")
		if !sc.Scan() {
			fmt.Fprintln(w)
			return sc.Err()
		}
		stmt := strings.TrimSpace(sc.Text())
		switch stmt {
		case "":
			continue
		case "exit", "quit":
			return nil
		}
		if err := runQuery(w, store, stmt); err != nil {
			fmt.Fprintln(w, "error:", err)
		}
	}
}

// maxREPLRows caps the node listing a single statement prints.
const maxREPLRows = 20

// printResult renders one query result: the plan rendering for
// EXPLAIN, otherwise the rows/aggregate with the predicted vs
// measured page accesses.
func printResult(w io.Writer, res *ccam.Result) {
	if res.Explain {
		fmt.Fprint(w, res.Text)
		return
	}
	if res.Plan != nil {
		fmt.Fprintf(w, "access path %s, predicted %d data page(s)",
			res.Plan.Chosen.Path, res.Plan.Chosen.Pages)
		if res.Actual != nil {
			fmt.Fprintf(w, ", measured %d read(s)", res.Actual.DataReads)
		}
		fmt.Fprintln(w)
	}
	for i, n := range res.Nodes {
		if i == maxREPLRows {
			fmt.Fprintf(w, "  ... %d more\n", len(res.Nodes)-maxREPLRows)
			break
		}
		fmt.Fprintf(w, "  node %d at (%g, %g), %d successor(s)\n", n.ID, n.X, n.Y, n.Succs)
	}
	switch res.Kind {
	case "window", "neighbors":
		extra := ""
		if res.Truncated {
			extra = " (truncated)"
		}
		fmt.Fprintf(w, "%d node(s)%s\n", res.Count, extra)
	case "route", "path":
		fmt.Fprintf(w, "%d node(s), total cost %g\n", res.Count, res.Cost)
		if len(res.Path) > 0 {
			fmt.Fprintf(w, "path: %v\n", res.Path)
		}
	}
	if res.Agg != nil {
		fmt.Fprintf(w, "%s(%s) = %g over %d value(s)\n",
			res.Agg.Fn, res.Agg.Attr, res.Agg.Value, res.Agg.Count)
	}
}
