// Command ccam-inspect builds a CCAM file over a synthetic road map and
// prints its physical organization: pages, fill factors, the CRR, and
// optionally the page access graph and a per-page node listing.
//
// Usage:
//
//	ccam-inspect                       # paper-scale map, 2k pages
//	ccam-inspect -block 1024 -pag      # show PAG degrees
//	ccam-inspect -pages                # list nodes per page
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ccam"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

func main() {
	block := flag.Int("block", 2048, "disk block size")
	seed := flag.Int64("seed", 42, "partitioner seed")
	dynamic := flag.Bool("dynamic", false, "use the incremental create (CCAM-D)")
	showPAG := flag.Bool("pag", false, "print page access graph degrees")
	showPages := flag.Bool("pages", false, "list the nodes on each page")
	flag.Parse()

	if err := run(os.Stdout, *block, *seed, *dynamic, *showPAG, *showPages); err != nil {
		fmt.Fprintln(os.Stderr, "ccam-inspect:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, block int, seed int64, dynamic, showPAG, showPages bool) error {
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		return err
	}
	store, err := ccam.Open(ccam.Options{PageSize: block, Seed: seed, Dynamic: dynamic, Metrics: true})
	if err != nil {
		return err
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		return err
	}

	kind := "CCAM-S (static create)"
	if dynamic {
		kind = "CCAM-D (incremental create)"
	}
	fmt.Fprintf(w, "%s, block size %d\n", kind, block)
	fmt.Fprintf(w, "network: %d nodes, %d directed edges\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "file: %d records on %d pages (blocking factor %.2f)\n",
		store.Len(), store.NumPages(), float64(store.Len())/float64(store.NumPages()))
	// The registry keeps these gauges current across Build and every
	// mutation, so there is nothing to recompute here.
	reg := store.Metrics()
	fmt.Fprintf(w, "CRR: %.4f   WCRR: %.4f\n",
		reg.Gauge("ccam_crr").Value(), reg.Gauge("ccam_wcrr").Value())

	placement := store.Placement()
	perPage := map[storage.PageID][]graph.NodeID{}
	for id, pid := range placement {
		perPage[pid] = append(perPage[pid], id)
	}
	var pids []storage.PageID
	for pid := range perPage {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

	sizer := netfile.RecordSizer(g)
	var fills []float64
	for _, pid := range pids {
		used := 0
		for _, id := range perPage[pid] {
			used += sizer(id) + storage.PerRecordOverhead
		}
		fills = append(fills, float64(used)/float64(block))
	}
	sort.Float64s(fills)
	fmt.Fprintf(w, "page fill: min %.2f  median %.2f  max %.2f\n",
		fills[0], fills[len(fills)/2], fills[len(fills)-1])

	if showPAG {
		pag := graph.BuildPAG(g, placement)
		degs := make([]int, 0, len(pids))
		for _, pid := range pids {
			degs = append(degs, len(pag.NbrPages(pid)))
		}
		sort.Ints(degs)
		fmt.Fprintf(w, "PAG: %d pages, degree min %d median %d max %d\n",
			pag.NumPages(), degs[0], degs[len(degs)/2], degs[len(degs)-1])
	}
	if showPages {
		for _, pid := range pids {
			ids := perPage[pid]
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Fprintf(w, "page %4d (%2d records): %v\n", pid, len(ids), ids)
		}
	}
	return nil
}
