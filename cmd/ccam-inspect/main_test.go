package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStatic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2048, 1, false, true, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CCAM-S (static create)", "network:", "CRR:", "page fill:", "PAG:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDynamicWithPages(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 4096, 2, true, false, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CCAM-D (incremental create)") {
		t.Fatalf("missing dynamic banner:\n%s", out[:200])
	}
	if !strings.Contains(out, "page ") {
		t.Fatal("missing per-page listing")
	}
}

func TestRunRejectsTinyBlock(t *testing.T) {
	if err := run(&bytes.Buffer{}, 16, 1, false, false, false); err == nil {
		t.Fatal("tiny block accepted")
	}
}
