package main

import (
	"bytes"
	"strings"
	"testing"

	"ccam"
)

func TestRunStatic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2048, 1, false, true, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CCAM-S (static create)", "network:", "CRR:", "page fill:", "PAG:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDynamicWithPages(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 4096, 2, true, false, true, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CCAM-D (incremental create)") {
		t.Fatalf("missing dynamic banner:\n%s", out[:200])
	}
	if !strings.Contains(out, "page ") {
		t.Fatal("missing per-page listing")
	}
}

func TestRunRejectsTinyBlock(t *testing.T) {
	if err := run(&bytes.Buffer{}, 16, 1, false, false, false, ""); err == nil {
		t.Fatal("tiny block accepted")
	}
}

func TestRunQueryOneShot(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 2048, 1, false, false, false, "EXPLAIN FIND 1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan: FIND 1", "access path: btree-point", "predicted data pages:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// -query replaces the file summary entirely.
	if strings.Contains(out, "page fill:") {
		t.Fatalf("one-shot query printed the file summary:\n%s", out)
	}

	buf.Reset()
	if err := run(&buf, 2048, 1, false, false, false, "FIND 1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "measured") || !strings.Contains(buf.String(), "node 1 at") {
		t.Fatalf("executed query output:\n%s", buf.String())
	}

	if err := run(&bytes.Buffer{}, 2048, 1, false, false, false, "SELECT 1"); err == nil {
		t.Fatal("bad statement accepted")
	}
}

func TestRunQueryREPL(t *testing.T) {
	g, err := ccam.RoadMap(ccam.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	store, err := ccam.Open(ccam.Options{PageSize: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(g); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in := strings.NewReader("FIND 1\n\nbogus\nexit\n")
	if err := runREPL(&buf, in, store); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node 1 at") {
		t.Fatalf("REPL missing query output:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("REPL missing error report:\n%s", out)
	}
}
