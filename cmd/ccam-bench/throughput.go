package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"ccam"
	"ccam/internal/graph"
)

// throughputConfig parameterizes the concurrent-throughput experiment.
type throughputConfig struct {
	// MaxWorkers is the largest worker-pool size swept (the -parallel
	// flag); the sweep doubles from 1.
	MaxWorkers int
	// ReadLatency is the simulated seek+transfer time per physical
	// data-page read.
	ReadLatency time.Duration
	// Finds is the number of point lookups per batch.
	Finds int
	// Routes and RouteLen shape the route-evaluation batch.
	Routes, RouteLen int
	// Seed drives the workload generator.
	Seed int64
}

// runThroughput measures batch-query throughput against the simulated
// disk while sweeping the worker pool. The store's read path is
// latched shared and buffer-pool misses release the latch during the
// physical read, so workers overlap their I/O waits; on a disk-bound
// workload the speedup approaches the worker count without needing
// that many CPUs.
func runThroughput(w io.Writer, g *graph.Network, cfg throughputConfig) error {
	if cfg.MaxWorkers < 1 {
		cfg.MaxWorkers = 8
	}
	if cfg.ReadLatency <= 0 {
		cfg.ReadLatency = 200 * time.Microsecond
	}
	if cfg.Finds <= 0 {
		cfg.Finds = 2000
	}
	if cfg.Routes <= 0 {
		cfg.Routes = 128
	}
	if cfg.RouteLen <= 0 {
		cfg.RouteLen = 20
	}

	fmt.Fprintln(w, "Concurrent throughput: batch queries over the simulated disk")
	fmt.Fprintf(w, "read latency %v/page; batches of %d finds and %d routes of length %d\n",
		cfg.ReadLatency, cfg.Finds, cfg.Routes, cfg.RouteLen)
	fmt.Fprintf(w, "%-8s  %12s  %8s  %12s  %8s\n",
		"workers", "finds/sec", "speedup", "routes/sec", "speedup")

	rng := rand.New(rand.NewSource(cfg.Seed))
	nodeIDs := g.NodeIDs()
	ids := make([]ccam.NodeID, cfg.Finds)
	for i := range ids {
		ids[i] = nodeIDs[rng.Intn(len(nodeIDs))]
	}
	routes, err := ccam.RandomWalkRoutes(g, cfg.Routes, cfg.RouteLen, rng)
	if err != nil {
		return err
	}

	ctx := context.Background()
	var findBase, routeBase float64
	for workers := 1; workers <= cfg.MaxWorkers; workers *= 2 {
		s, err := ccam.OpenWith(
			ccam.WithPageSize(2048),
			ccam.WithPoolPages(32),
			ccam.WithSeed(1),
			ccam.WithParallelism(workers),
			ccam.WithReadLatency(cfg.ReadLatency),
		)
		if err != nil {
			return err
		}
		if err := s.Build(g); err != nil {
			s.Close()
			return err
		}

		start := time.Now()
		if _, err := s.FindBatch(ctx, ids); err != nil {
			s.Close()
			return err
		}
		findsPerSec := float64(cfg.Finds) / time.Since(start).Seconds()

		start = time.Now()
		if _, err := s.EvaluateRoutes(ctx, routes); err != nil {
			s.Close()
			return err
		}
		routesPerSec := float64(cfg.Routes) / time.Since(start).Seconds()
		s.Close()

		if workers == 1 {
			findBase, routeBase = findsPerSec, routesPerSec
		}
		fmt.Fprintf(w, "%-8d  %12.0f  %7.2fx  %12.0f  %7.2fx\n",
			workers, findsPerSec, findsPerSec/findBase, routesPerSec, routesPerSec/routeBase)
	}
	return nil
}
