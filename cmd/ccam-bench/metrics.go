package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"time"

	"ccam"
	"ccam/internal/graph"
)

// metricsOps lists the operations the metrics experiment drives and
// reports, in print order. Names match the registry's ccam_op_<name>_*
// instrument families.
var metricsOps = []string{
	"find",
	"get_successors",
	"evaluate_route",
	"range_query",
	"insert",
	"delete",
	"set_edge_cost",
	"find_batch",
}

// runMetrics builds an instrumented store, drives a mixed workload
// through it and prints the per-operation view of the metrics registry:
// operation counts, latency quantiles, page accesses per operation by
// class (B+-tree index vs CCAM data pages) and the buffer hit rate,
// plus the CRR/WCRR gauges and a sample of recorded traces.
func runMetrics(w io.Writer, g *graph.Network, seed int64, httpAddr string) error {
	st, err := ccam.OpenWith(
		ccam.WithPageSize(2048),
		ccam.WithPoolPages(4),
		ccam.WithSeed(seed),
		ccam.WithMetrics(),
		ccam.WithTracing(128),
	)
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.Build(g); err != nil {
		return err
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	ids := g.NodeIDs()
	pick := func() ccam.NodeID { return ids[rng.Intn(len(ids))] }

	// Point lookups and successor expansions.
	for i := 0; i < 400; i++ {
		if _, err := st.Find(ctx, pick()); err != nil {
			return err
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := st.GetSuccessors(ctx, pick()); err != nil {
			return err
		}
	}
	// Route evaluations over random walks.
	routes, err := ccam.RandomWalkRoutes(g, 64, 20, rng)
	if err != nil {
		return err
	}
	for _, r := range routes {
		if _, err := st.EvaluateRoute(ctx, r); err != nil {
			return err
		}
	}
	// Range queries over random windows.
	b := g.Bounds()
	for i := 0; i < 32; i++ {
		cx := b.Min.X + rng.Float64()*b.Width()
		cy := b.Min.Y + rng.Float64()*b.Height()
		win := ccam.NewRect(
			ccam.Point{X: cx - b.Width()/8, Y: cy - b.Height()/8},
			ccam.Point{X: cx + b.Width()/8, Y: cy + b.Height()/8},
		)
		if _, err := st.RangeQuery(ctx, win); err != nil {
			return err
		}
	}
	// Maintenance: delete and re-insert a handful of nodes, refresh
	// some edge costs, and run one parallel batch.
	for i := 0; i < 16; i++ {
		id := pick()
		op, err := ccam.InsertOpFromNode(g, id)
		if err != nil {
			return err
		}
		if err := st.Delete(id, ccam.SecondOrder); err != nil {
			return err
		}
		if err := st.Insert(op, ccam.SecondOrder); err != nil {
			return err
		}
	}
	for i := 0; i < 32; i++ {
		es := g.SuccessorEdges(pick())
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		if err := st.SetEdgeCost(e.From, e.To, float32(e.Cost)*1.1); err != nil {
			return err
		}
	}
	batch := make([]ccam.NodeID, 256)
	for i := range batch {
		batch[i] = pick()
	}
	if _, err := st.FindBatch(context.Background(), batch); err != nil {
		return err
	}

	printMetricsTable(w, st)

	if httpAddr != "" {
		ccam.ServeMetrics(nil, st)
		fmt.Fprintf(w, "\nserving /metrics, /metrics.json, /traces and /debug/pprof on %s (ctrl-c to stop)\n", httpAddr)
		return http.ListenAndServe(httpAddr, nil)
	}
	return nil
}

func printMetricsTable(w io.Writer, st *ccam.Store) {
	reg := st.Metrics()
	fmt.Fprintln(w, "Per-operation metrics (instrumented store, pool of 4 pages)")
	fmt.Fprintf(w, "%-14s %7s %7s %9s %9s %9s %9s %9s %8s\n",
		"op", "ops", "errs", "p50", "p95", "p99", "data/op", "idx/op", "hitrate")
	for _, op := range metricsOps {
		p := "ccam_op_" + op + "_"
		n := reg.Counter(p + "total").Value()
		if n == 0 {
			continue
		}
		errs := reg.Counter(p + "errors_total").Value()
		lat := reg.Histogram(p + "ns").Snapshot()
		data := reg.Counter(p+"data_reads_total").Value() + reg.Counter(p+"data_writes_total").Value()
		idx := reg.Counter(p + "index_pages_total").Value()
		hits := reg.Counter(p + "buffer_hits_total").Value()
		misses := reg.Counter(p + "buffer_misses_total").Value()
		rate := "idle"
		if hits+misses > 0 {
			rate = fmt.Sprintf("%.3f", float64(hits)/float64(hits+misses))
		}
		fmt.Fprintf(w, "%-14s %7d %7d %9s %9s %9s %9.2f %9.2f %8s\n",
			op, n, errs,
			fmtNanos(lat.P50()), fmtNanos(lat.P95()), fmtNanos(lat.P99()),
			float64(data)/float64(n), float64(idx)/float64(n), rate)
	}
	fmt.Fprintf(w, "\nclustering gauges: CRR=%.3f WCRR=%.3f\n",
		reg.Gauge("ccam_crr").Value(), reg.Gauge("ccam_wcrr").Value())

	traces := st.Traces(3)
	if len(traces) > 0 {
		fmt.Fprintln(w, "\nsample traces (newest first):")
		for _, tr := range traces {
			fmt.Fprintf(w, "  #%d %s %v (%d spans", tr.Seq, tr.Op, tr.Dur, len(tr.Spans))
			if tr.Dropped > 0 {
				fmt.Fprintf(w, ", %d dropped", tr.Dropped)
			}
			fmt.Fprintln(w, ")")
		}
	}
}

// fmtNanos renders a nanosecond bucket midpoint as a short duration.
func fmtNanos(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond / 4).String()
}
