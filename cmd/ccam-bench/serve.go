package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ccam"
	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/server"
	"ccam/internal/wire"
)

// serveConfig carries the -exp serve flags.
type serveConfig struct {
	// Nodes sizes the generated road map (smallest side² lattice
	// covering it, largest component kept). Ignored with Addr.
	Nodes int
	// Conns is the number of concurrent binary-protocol connections.
	Conns int
	// Duration is the measured load window.
	Duration time.Duration
	// Rate, when positive, runs an open loop targeting this many
	// requests/s across all connections (each connection fires on its
	// own schedule regardless of completions). Zero runs a closed loop:
	// every connection keeps exactly one request in flight.
	Rate int
	// Addr, when set, loads an external server's binary port instead of
	// managing one (then the drain check is skipped).
	Addr string
	// ServeBin, when set, runs the server as a child ccam-serve process
	// at this binary path instead of in-process. Two processes double
	// the file-descriptor budget — one end of each loopback connection
	// per process — which is what lets a 20000-fd rlimit carry 10000+
	// connections; the drain check then exercises the daemon's real
	// SIGTERM path.
	ServeBin string
	// MaxInFlight is the managed server's admission cap.
	MaxInFlight int
	// JSONPath, when set, also writes the result as JSON there.
	JSONPath string
	// TraceSample, when positive, sends trace context and a stats
	// request on 1-in-N requests; the server-attributed resource
	// accounts come back in the response trailer and are reported as
	// p50/p99 breakdowns.
	TraceSample int
	// SlowQuery, when positive, is the managed server's slow-query log
	// threshold (passed through to a child ccam-serve).
	SlowQuery time.Duration
	// Check enforces the acceptance gates (non-zero throughput, zero
	// protocol errors, clean drain).
	Check bool
	// Seed drives the workload and the generated map.
	Seed int64
}

// serveResult is the machine-readable outcome (BENCH_serve.json).
type serveResult struct {
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges,omitempty"`
	Conns       int     `json:"conns"`
	Rate        int     `json:"rate,omitempty"`
	DurationS   float64 `json:"duration_s"`
	MaxInFlight int     `json:"max_in_flight"`

	Requests   int64   `json:"requests"`
	Throughput float64 `json:"throughput_rps"`
	Sheds      int64   `json:"sheds"`
	ProtoErrs  int64   `json:"protocol_errors"`

	// Client-observed latency of completed (non-shed) requests.
	ClientP50Ms float64 `json:"client_p50_ms"`
	ClientP95Ms float64 `json:"client_p95_ms"`
	ClientP99Ms float64 `json:"client_p99_ms"`
	// Server-side request latency from the server's own histogram
	// (in-process server only; a child process keeps its own registry).
	ServerP50Ms float64 `json:"server_p50_ms,omitempty"`
	ServerP95Ms float64 `json:"server_p95_ms,omitempty"`
	ServerP99Ms float64 `json:"server_p99_ms,omitempty"`

	// Server-attributed per-request breakdowns from sampled requests
	// (-trace-sample): index pages descended, buffer misses and WAL
	// commit wait as the server's ReqStats trailer reported them. These
	// work against a child or external server too — the account rides
	// the response, not a shared registry.
	Sampled             int64   `json:"sampled,omitempty"`
	SampledIdxPagesP50  float64 `json:"sampled_index_pages_p50,omitempty"`
	SampledIdxPagesP99  float64 `json:"sampled_index_pages_p99,omitempty"`
	SampledBufMissP50   float64 `json:"sampled_buffer_misses_p50,omitempty"`
	SampledBufMissP99   float64 `json:"sampled_buffer_misses_p99,omitempty"`
	SampledWALWaitP99Ms float64 `json:"sampled_wal_wait_p99_ms,omitempty"`

	DrainClean      bool `json:"drain_clean"`
	ReplayedBatches int  `json:"replayed_batches"`
}

// raiseFDLimit lifts RLIMIT_NOFILE toward want. Best-effort — raising
// the hard limit needs privileges and may be refused — so the caller
// re-reads the limit and budgets connections against what it got.
func raiseFDLimit(want uint64) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= want {
		return
	}
	lim.Cur = want
	if lim.Max < want {
		lim.Max = want
	}
	syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}

func fdLimit() uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 1024
	}
	return lim.Cur
}

// serveTarget is the server under load, however it is hosted.
type serveTarget struct {
	addr string         // binary-protocol address
	g    *graph.Network // road map behind the store; nil when unknown
	ids  []ccam.NodeID  // workload id population
	// blind marks an id population the target may not fully hold
	// (external server): ErrNotFound counts as a served request there.
	blind bool
	// drain gracefully stops the managed server and returns how many
	// WAL batches a reopen replays (0 = the drain checkpointed
	// cleanly). Nil for an external server.
	drain func(io.Writer) (int, error)
	// stop releases whatever drain did not (temp dirs, processes).
	stop func()

	srv *server.Server // in-process only, for server-side stats
}

// runServe is the -exp serve experiment: a load generator for the
// ccam-serve query service. It brings up the server (in-process, or a
// child ccam-serve when -serve-bin is given), opens -conns
// binary-protocol connections, drives a mixed read workload for
// -duration, reports client/server p50/p95/p99 with shed counts, then
// drains the server and verifies a reopen replays no WAL.
func runServe(w io.Writer, cfg serveConfig) error {
	if cfg.Conns <= 0 {
		cfg.Conns = 10000
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 262144
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = server.DefaultMaxInFlight
	}

	// Budget file descriptors: each connection costs one fd here, plus
	// a second one in this process when the server is in-process too.
	perConn := uint64(2)
	if cfg.Addr != "" || cfg.ServeBin != "" {
		perConn = 1
	}
	raiseFDLimit(perConn*uint64(cfg.Conns) + 4096)
	if max := int((fdLimit() - 2048) / perConn); cfg.Conns > max {
		fmt.Fprintf(w, "serve: fd limit %d caps connections at %d (wanted %d; -serve-bin doubles the budget)\n",
			fdLimit(), max, cfg.Conns)
		cfg.Conns = max
	}

	res := serveResult{Conns: cfg.Conns, Rate: cfg.Rate, MaxInFlight: cfg.MaxInFlight}

	var (
		tgt *serveTarget
		err error
	)
	switch {
	case cfg.Addr != "":
		tgt, err = dialExternal(cfg)
	case cfg.ServeBin != "":
		tgt, err = startChild(w, cfg)
	default:
		tgt, err = startInProcess(w, cfg)
	}
	if err != nil {
		return err
	}
	defer tgt.stop()
	if tgt.g != nil {
		res.Nodes, res.Edges = tgt.g.NumNodes(), tgt.g.NumEdges()
	} else {
		res.Nodes = len(tgt.ids)
	}

	// Dial the fleet in parallel batches.
	fmt.Fprintf(w, "serve: opening %d connections to %s...\n", cfg.Conns, tgt.addr)
	clients := make([]*wire.Client, cfg.Conns)
	var dialErrs atomic.Int64
	var dialWG sync.WaitGroup
	dialSem := make(chan struct{}, 256)
	for i := range clients {
		dialWG.Add(1)
		dialSem <- struct{}{}
		go func(i int) {
			defer dialWG.Done()
			defer func() { <-dialSem }()
			c, err := wire.Dial(tgt.addr)
			if err != nil {
				dialErrs.Add(1)
				return
			}
			clients[i] = c
		}(i)
	}
	dialWG.Wait()
	closeClients := func() {
		for i, c := range clients {
			if c != nil {
				c.Close()
				clients[i] = nil
			}
		}
	}
	defer closeClients()
	if n := dialErrs.Load(); n > 0 {
		return fmt.Errorf("serve: %d of %d connections failed to open", n, cfg.Conns)
	}

	// Commit one mutation up front so the WAL holds real bytes: the
	// drain check below then proves Shutdown checkpointed (a reopen
	// after an unclean stop would have to replay this batch).
	if tgt.drain != nil {
		if err := commitMarkerMutation(clients[0], tgt); err != nil {
			return fmt.Errorf("serve: marker mutation: %w", err)
		}
	}

	reg := metrics.NewRegistry()
	lat := reg.Histogram("client_request_ns")
	sampledIdx := reg.Histogram("sampled_index_pages")
	sampledMiss := reg.Histogram("sampled_buffer_misses")
	sampledWait := reg.Histogram("sampled_wal_wait_ns")
	var requests, sheds, protoErrs, sampled atomic.Int64
	deadlineAt := time.Now().Add(cfg.Duration)
	perConnInterval := time.Duration(0)
	if cfg.Rate > 0 {
		perConnInterval = time.Duration(float64(time.Second) * float64(cfg.Conns) / float64(cfg.Rate))
	}

	var wg sync.WaitGroup
	loadStart := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *wire.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			ctx := context.Background()
			next := time.Now()
			for {
				if cfg.Rate > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(perConnInterval)
				}
				if !time.Now().Before(deadlineAt) {
					return
				}
				// 1-in-N requests carry trace context and ask for the
				// server's resource account in the response trailer.
				rctx := ctx
				var rs *ccam.ReqStats
				if cfg.TraceSample > 0 && rng.Intn(cfg.TraceSample) == 0 {
					rs = new(ccam.ReqStats)
					rctx = ccam.WithReqStats(ccam.WithTraceID(ctx, rng.Uint64()|1), rs)
				}
				start := time.Now()
				err := oneRequest(rctx, c, tgt, rng)
				switch {
				case err == nil:
					requests.Add(1)
					lat.ObserveSince(start)
					if rs != nil && rs.Ops > 0 {
						sampled.Add(1)
						sampledIdx.Observe(rs.IndexPages)
						sampledMiss.Observe(rs.BufferMisses)
						sampledWait.Observe(rs.WALWaitNs)
					}
				case errors.Is(err, ccam.ErrOverloaded):
					sheds.Add(1)
					// Back off briefly so shed retries don't spin.
					time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
				default:
					protoErrs.Add(1)
					return // a broken connection stops its worker
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(loadStart).Seconds()

	res.Requests = requests.Load()
	res.Sheds = sheds.Load()
	res.ProtoErrs = protoErrs.Load()
	res.DurationS = elapsed
	res.Throughput = float64(res.Requests) / elapsed
	snap := lat.Snapshot()
	res.ClientP50Ms = float64(snap.P50()) / 1e6
	res.ClientP95Ms = float64(snap.P95()) / 1e6
	res.ClientP99Ms = float64(snap.P99()) / 1e6
	if tgt.srv != nil {
		stats := tgt.srv.Stats()
		res.ServerP50Ms = float64(stats.Latency.P50()) / 1e6
		res.ServerP95Ms = float64(stats.Latency.P95()) / 1e6
		res.ServerP99Ms = float64(stats.Latency.P99()) / 1e6
	}
	if res.Sampled = sampled.Load(); res.Sampled > 0 {
		idx, miss, wait := sampledIdx.Snapshot(), sampledMiss.Snapshot(), sampledWait.Snapshot()
		res.SampledIdxPagesP50 = float64(idx.P50())
		res.SampledIdxPagesP99 = float64(idx.P99())
		res.SampledBufMissP50 = float64(miss.P50())
		res.SampledBufMissP99 = float64(miss.P99())
		res.SampledWALWaitP99Ms = float64(wait.P99()) / 1e6
	}

	if tgt.drain != nil {
		closeClients()
		replayed, err := tgt.drain(w)
		if err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		res.ReplayedBatches = replayed
		res.DrainClean = replayed == 0
	}

	printServeResult(w, cfg, &res, tgt)

	if cfg.JSONPath != "" {
		buf, err := json.MarshalIndent(&res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	if cfg.Check {
		if res.Requests == 0 || res.Throughput <= 0 {
			return errors.New("serve: check failed: zero throughput")
		}
		if res.ProtoErrs != 0 {
			return fmt.Errorf("serve: check failed: %d protocol errors", res.ProtoErrs)
		}
		if tgt.drain != nil && !res.DrainClean {
			return fmt.Errorf("serve: check failed: reopen replayed %d batches", res.ReplayedBatches)
		}
	}
	return nil
}

// oneRequest issues one workload operation: 60% point find, 20%
// successor fetch, 15% route evaluation (short random walks), 5%
// window query — the paper's read operations in rough route-planning
// proportions.
func oneRequest(ctx context.Context, c *wire.Client, tgt *serveTarget, rng *rand.Rand) error {
	id := tgt.ids[rng.Intn(len(tgt.ids))]
	var err error
	switch p := rng.Intn(100); {
	case p < 60:
		_, err = c.Find(ctx, id)
	case p < 80:
		_, err = c.GetSuccessors(ctx, id)
	case p < 95:
		route := ccam.Route{id}
		if tgt.g != nil {
			cur := id
			for hop := 0; hop < 3; hop++ {
				succs := tgt.g.SuccessorEdges(cur)
				if len(succs) == 0 {
					break
				}
				cur = succs[rng.Intn(len(succs))].To
				route = append(route, cur)
			}
		}
		_, err = c.EvaluateRoute(ctx, route)
	default:
		var rec *ccam.Record
		rec, err = c.Find(ctx, id)
		if err == nil {
			win := ccam.NewRect(rec.Pos, ccam.Point{X: rec.Pos.X + 300, Y: rec.Pos.Y + 300})
			_, err = c.RangeQuery(ctx, win)
		}
	}
	if err != nil && tgt.blind && errors.Is(err, ccam.ErrNotFound) {
		return nil // sampling ids the external server may not hold
	}
	return err
}

// commitMarkerMutation applies one durable set-edge-cost batch (same
// cost value, so query results are unchanged) purely to put committed
// bytes in the WAL before the drain check.
func commitMarkerMutation(c *wire.Client, tgt *serveTarget) error {
	for _, id := range tgt.ids {
		succs := tgt.g.SuccessorEdges(id)
		if len(succs) == 0 {
			continue
		}
		_, err := c.Apply(context.Background(), []wire.ApplyOp{{
			Kind: wire.OpSetEdgeCost,
			From: succs[0].From, To: succs[0].To, Cost: float32(succs[0].Cost),
		}})
		return err
	}
	return errors.New("no edge to mutate")
}

// buildRoadMap generates the experiment's network: the smallest side²
// lattice covering cfg.Nodes, pruned to its largest component.
func buildRoadMap(cfg serveConfig) (*graph.Network, error) {
	mapOpts := graph.MinneapolisLikeOpts()
	mapOpts.Seed = cfg.Seed
	side := 1
	for side*side < cfg.Nodes {
		side++
	}
	mapOpts.Rows, mapOpts.Cols = side, side
	return graph.RoadMap(mapOpts)
}

// dialExternal probes an already-running server. Its id space is
// unknown, so the workload samples a low id range blind and the drain
// check is skipped.
func dialExternal(cfg serveConfig) (*serveTarget, error) {
	c, err := wire.Dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", cfg.Addr, err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		return nil, fmt.Errorf("serve: ping %s: %w", cfg.Addr, err)
	}
	ids := make([]ccam.NodeID, 1<<16)
	for i := range ids {
		ids[i] = ccam.NodeID(i)
	}
	return &serveTarget{addr: cfg.Addr, ids: ids, blind: true, stop: func() {}}, nil
}

// startInProcess builds the store and serves it from this process.
func startInProcess(w io.Writer, cfg serveConfig) (*serveTarget, error) {
	g, err := buildRoadMap(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "serve: road map %d nodes, %d edges; building store...\n", g.NumNodes(), g.NumEdges())

	dir, err := os.MkdirTemp("", "ccam-serve-bench-")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "net.ccam")
	buildStart := time.Now()
	st, err := ccam.Open(ccam.Options{
		Path: path, PageSize: 2048, PoolPages: 8192,
		Seed: cfg.Seed, WAL: true, Metrics: true,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	fail := func(err error) (*serveTarget, error) {
		st.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	if err := st.Build(g); err != nil {
		return fail(err)
	}
	if err := st.Flush(); err != nil {
		return fail(err)
	}
	fmt.Fprintf(w, "serve: built in %.1fs (%d pages)\n", time.Since(buildStart).Seconds(), st.NumPages())

	srvOpts := server.Options{Store: st, MaxInFlight: cfg.MaxInFlight, SlowQuery: cfg.SlowQuery}
	if cfg.SlowQuery > 0 {
		srvOpts.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := server.New(srvOpts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	go srv.ServeBinary(l)

	return &serveTarget{
		addr: l.Addr().String(),
		g:    g,
		ids:  g.NodeIDs(),
		srv:  srv,
		drain: func(io.Writer) (int, error) {
			sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				return 0, err
			}
			if err := st.Close(); err != nil {
				return 0, err
			}
			return replayedBatches(path)
		},
		stop: func() { st.Close(); os.RemoveAll(dir) },
	}, nil
}

// startChild builds the store inside a child ccam-serve process (the
// real daemon) and waits for its binary port to answer. Draining sends
// SIGTERM — the daemon's own graceful-drain path — waits for a clean
// exit, and reopens the store file here to count replayed WAL batches.
func startChild(w io.Writer, cfg serveConfig) (*serveTarget, error) {
	// The daemon generates its map from (-nodes, -seed) exactly as
	// buildRoadMap does, so generating it here too yields the daemon's
	// id space without asking it.
	g, err := buildRoadMap(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "serve: road map %d nodes, %d edges; building store in child %s...\n",
		g.NumNodes(), g.NumEdges(), cfg.ServeBin)

	dir, err := os.MkdirTemp("", "ccam-serve-bench-")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "net.ccam")
	tcpAddr, err := freePort()
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	args := []string{
		"-path", path, "-create",
		"-nodes", fmt.Sprint(cfg.Nodes), "-seed", fmt.Sprint(cfg.Seed),
		"-pool", "8192", "-max-inflight", fmt.Sprint(cfg.MaxInFlight),
		"-http", "", "-tcp", tcpAddr}
	if cfg.SlowQuery > 0 {
		args = append(args, "-slow-query", cfg.SlowQuery.String())
	}
	cmd := exec.Command(cfg.ServeBin, args...)
	cmd.Stdout = w
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	var exitErr error
	exited := make(chan struct{})
	go func() { exitErr = cmd.Wait(); close(exited) }()
	stop := func() {
		select {
		case <-exited:
		default:
			cmd.Process.Kill()
			<-exited
		}
		os.RemoveAll(dir)
	}

	// Building a quarter-million-node store takes tens of seconds;
	// poll the binary port until the daemon answers.
	ready := false
	for deadline := time.Now().Add(5 * time.Minute); time.Now().Before(deadline); {
		select {
		case <-exited:
			os.RemoveAll(dir)
			return nil, fmt.Errorf("serve: child exited during startup: %v", exitErr)
		default:
		}
		if c, err := wire.Dial(tcpAddr); err == nil {
			err = c.Ping(context.Background())
			c.Close()
			if err == nil {
				ready = true
			}
		}
		if ready {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !ready {
		stop()
		return nil, errors.New("serve: child never became ready")
	}

	return &serveTarget{
		addr: tcpAddr,
		g:    g,
		ids:  g.NodeIDs(),
		drain: func(w io.Writer) (int, error) {
			fmt.Fprintln(w, "serve: SIGTERM to child, waiting for drain...")
			if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
				return 0, err
			}
			select {
			case <-exited:
				if exitErr != nil {
					return 0, fmt.Errorf("child exit: %w", exitErr)
				}
			case <-time.After(60 * time.Second):
				return 0, errors.New("child did not exit within 60s of SIGTERM")
			}
			return replayedBatches(path)
		},
		stop: stop,
	}, nil
}

// replayedBatches reopens the store file and reports how many WAL
// batches the reopen had to replay (0 after a clean drain).
func replayedBatches(path string) (int, error) {
	st, err := ccam.OpenPath(path, ccam.Options{PoolPages: 256})
	if err != nil {
		return 0, fmt.Errorf("reopen after drain: %w", err)
	}
	defer st.Close()
	return st.WALStats().ReplayedBatches, nil
}

// freePort reserves an ephemeral loopback port and releases it for the
// child to bind. The tiny reuse race is acceptable for a benchmark.
func freePort() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func printServeResult(w io.Writer, cfg serveConfig, res *serveResult, tgt *serveTarget) {
	fmt.Fprintf(w, "\nccam-serve load (%d conns, %s", res.Conns, cfg.Duration)
	if cfg.Rate > 0 {
		fmt.Fprintf(w, ", open loop %d req/s", cfg.Rate)
	} else {
		fmt.Fprintf(w, ", closed loop")
	}
	fmt.Fprintf(w, ", cap %d)\n", res.MaxInFlight)
	fmt.Fprintf(w, "%-12s %12s\n", "metric", "value")
	fmt.Fprintf(w, "%-12s %12d\n", "requests", res.Requests)
	fmt.Fprintf(w, "%-12s %12.0f\n", "req/s", res.Throughput)
	fmt.Fprintf(w, "%-12s %12d\n", "sheds", res.Sheds)
	fmt.Fprintf(w, "%-12s %12d\n", "proto errs", res.ProtoErrs)
	fmt.Fprintf(w, "%-12s %9.2f ms\n", "client p50", res.ClientP50Ms)
	fmt.Fprintf(w, "%-12s %9.2f ms\n", "client p95", res.ClientP95Ms)
	fmt.Fprintf(w, "%-12s %9.2f ms\n", "client p99", res.ClientP99Ms)
	if tgt.srv != nil {
		fmt.Fprintf(w, "%-12s %9.2f ms\n", "server p50", res.ServerP50Ms)
		fmt.Fprintf(w, "%-12s %9.2f ms\n", "server p95", res.ServerP95Ms)
		fmt.Fprintf(w, "%-12s %9.2f ms\n", "server p99", res.ServerP99Ms)
	}
	if res.Sampled > 0 {
		fmt.Fprintf(w, "%-12s %12d\n", "sampled", res.Sampled)
		fmt.Fprintf(w, "%-12s %6.0f / %.0f\n", "idx pg 50/99", res.SampledIdxPagesP50, res.SampledIdxPagesP99)
		fmt.Fprintf(w, "%-12s %6.0f / %.0f\n", "miss 50/99", res.SampledBufMissP50, res.SampledBufMissP99)
		if res.SampledWALWaitP99Ms > 0 {
			fmt.Fprintf(w, "%-12s %9.2f ms\n", "wal p99", res.SampledWALWaitP99Ms)
		}
	}
	if tgt.drain != nil {
		fmt.Fprintf(w, "%-12s %12v\n", "drain clean", res.DrainClean)
	}
}
