package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ccam/internal/bench"
	"ccam/internal/graph"
)

func tinySetup() bench.Setup {
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 12, 12
	return bench.Setup{MapOpts: opts, Seed: 3}
}

func TestRunEachExperiment(t *testing.T) {
	cases := map[string]string{
		"fig5":                 "Figure 5",
		"table5":               "Table 5",
		"fig6":                 "Figure 6",
		"fig7":                 "Figure 7",
		"ablation-partitioner": "Ablation A1",
		"ablation-buffer":      "Ablation A2",
		"ablation-search":      "Ablation A4",
		"ablation-lazy":        "Ablation A5",
		"ablation-topology":    "Ablation A6",
		"ablation-mixed":       "Ablation A7",
		"ablation-spatial":     "Ablation A8",
	}
	for exp, marker := range cases {
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(&buf, exp, tinySetup(), 2, "", buildScaleOpts{}, poolScaleOpts{}, serveConfig{}, mixedConfig{}); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
			out := buf.String()
			if !strings.Contains(out, "road map:") {
				t.Fatal("missing workload banner")
			}
			if !strings.Contains(out, marker) {
				t.Fatalf("output missing %q:\n%s", marker, out)
			}
		})
	}
}

func TestRunScaleExperiment(t *testing.T) {
	// ablation-scale builds its own maps; keep the sizes tiny.
	var buf bytes.Buffer
	res, err := bench.RunAblationScale(tinySetup(), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Ablation A3") {
		t.Fatal("scale output missing marker")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", tinySetup(), 2, "", buildScaleOpts{}, poolScaleOpts{}, serveConfig{}, mixedConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMetricsExperiment(t *testing.T) {
	var buf bytes.Buffer
	g, err := tinySetup().Network()
	if err != nil {
		t.Fatal(err)
	}
	if err := runMetrics(&buf, g, 3, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Per-operation metrics", "find", "evaluate_route", "hitrate",
		"CRR=", "WCRR=", "sample traces",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMutationExperiment(t *testing.T) {
	// A tiny sweep keeps the fsync count low; the point here is the
	// plumbing (WAL store, Apply path, metrics), not the speedup.
	var buf bytes.Buffer
	g, err := tinySetup().Network()
	if err != nil {
		t.Fatal(err)
	}
	cfg := mutationConfig{MaxWriters: 2, OpsPerWriter: 8, Seed: 3}
	if err := runMutation(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Durable mutation throughput") {
		t.Fatalf("missing marker:\n%s", out)
	}
	if !strings.Contains(out, "writers") || !strings.Contains(out, "fsyncs") {
		t.Fatalf("missing sweep table:\n%s", out)
	}
}

func TestRunThroughputExperiment(t *testing.T) {
	// Tiny batches keep the simulated-disk sleeps short; the point here
	// is the plumbing, not the speedup numbers.
	var buf bytes.Buffer
	g, err := tinySetup().Network()
	if err != nil {
		t.Fatal(err)
	}
	cfg := throughputConfig{MaxWorkers: 2, ReadLatency: 20 * time.Microsecond,
		Finds: 64, Routes: 8, RouteLen: 6, Seed: 3}
	if err := runThroughput(&buf, g, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Concurrent throughput") {
		t.Fatalf("missing marker:\n%s", out)
	}
	if !strings.Contains(out, "workers") || !strings.Contains(out, "1.00x") {
		t.Fatalf("missing sweep table:\n%s", out)
	}
}

func TestRunQueryExperiment(t *testing.T) {
	var buf bytes.Buffer
	g, err := tinySetup().Network()
	if err != nil {
		t.Fatal(err)
	}
	// check enforces the 30% prediction gate and the distinct-path
	// floor, so a pass here is the acceptance assertion itself.
	if err := runQueryExp(&buf, g, 3, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"CCAM-QL planner", "btree-point", "pag-scan", "successor-chain", "check: ok",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
