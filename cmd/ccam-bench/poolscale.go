package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"ccam/internal/bench"
)

// poolScaleOpts carries the pool-scale-only flags into run.
type poolScaleOpts struct {
	nodes      int
	workers    string // -sizes reused as the worker sweep, e.g. "1,2,4,8,16"
	duration   time.Duration
	jsonPath   string
	check      bool
	minSpeedup float64
}

// runPoolScale runs the buffer-pool concurrency sweep, prints the
// table, and optionally writes the machine-readable JSON (-json) and
// enforces the regression gate (-check): at the largest worker count
// the sharded pool with PAG prefetch must reach -min-speedup times the
// single-latch pool's read throughput.
func runPoolScale(w io.Writer, setup bench.Setup, ps poolScaleOpts) error {
	workers, err := parseSizes(ps.workers)
	if err != nil {
		return err
	}
	res, err := bench.RunPoolScale(bench.PoolScaleConfig{
		Setup:    setup,
		Nodes:    ps.nodes,
		Workers:  workers,
		Duration: ps.duration,
	})
	if err != nil {
		return err
	}
	res.Print(w)
	if ps.jsonPath != "" {
		f, err := os.Create(ps.jsonPath)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", ps.jsonPath)
	}
	if ps.check {
		if err := res.Check(ps.minSpeedup); err != nil {
			return err
		}
		fmt.Fprintf(w, "check passed: sharded-prefetch >= %.1fx single-latch throughput at peak workers\n", ps.minSpeedup)
	}
	return nil
}
