package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ccam/internal/bench"
)

// parseSizes turns the -sizes flag ("4096,16384,65536") into node
// counts; an empty flag selects the experiment's defaults.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// runBuildScale runs the build-scale sweep, prints the table, and
// optionally writes the machine-readable JSON (-json) and enforces the
// regression gates (-check): parallel-ratiocut must reproduce the
// serial placement, multilevel CRR must stay within 0.02 of serial at
// every size, and multilevel must not be slower than serial at the
// largest size.
func runBuildScale(w io.Writer, setup bench.Setup, sizesFlag, jsonPath string, workers int, check bool) error {
	sizes, err := parseSizes(sizesFlag)
	if err != nil {
		return err
	}
	res, err := bench.RunBuildScale(bench.BuildScaleConfig{
		Setup:   setup,
		Sizes:   sizes,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	res.Print(w)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := res.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	if check {
		if err := res.Check(1.0, 0.02); err != nil {
			return err
		}
		fmt.Fprintln(w, "check passed: deterministic placement, CRR within 0.02, multilevel no slower than serial")
	}
	return nil
}
