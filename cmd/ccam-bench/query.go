package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"ccam"
	"ccam/internal/graph"
)

// runQueryExp exercises the CCAM-QL planner across every statement
// shape and reports predicted vs measured data-page accesses. Each
// statement is EXPLAINed first, then executed against a cold buffer
// pool with a per-request stats account, so the measured reads are
// exactly the distinct data pages the access path touched. With check
// the run fails unless every prediction lands within 30% of the
// measurement and the planner used at least three distinct access
// paths across the workload.
func runQueryExp(w io.Writer, g *graph.Network, seed int64, check bool) error {
	st, err := ccam.Open(ccam.Options{PageSize: 1024, PoolPages: 512, Seed: seed})
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.Build(g); err != nil {
		return err
	}
	ctx := context.Background()

	ids := g.NodeIDs()
	mid := ids[len(ids)/2]
	rec, err := st.Find(ctx, mid)
	if err != nil {
		return err
	}
	route, err := sampleRoute(ctx, st, ids[0], 6)
	if err != nil {
		return err
	}
	parts := make([]string, len(route))
	for i, id := range route {
		parts[i] = fmt.Sprint(id)
	}
	stmts := []string{
		fmt.Sprintf("FIND %d", mid),
		fmt.Sprintf("WINDOW (%g, %g, %g, %g)",
			rec.Pos.X-200, rec.Pos.Y-200, rec.Pos.X+200, rec.Pos.Y+200),
		"WINDOW (-1e12, -1e12, 1e12, 1e12)",
		fmt.Sprintf("NEIGHBORS %d DEPTH 1", mid),
		fmt.Sprintf("NEIGHBORS %d DEPTH 2 AGG SUM(cost)", mid),
		"ROUTE " + strings.Join(parts, ", ") + " AGG SUM(cost)",
		fmt.Sprintf("PATH %d TO %d", route[0], route[len(route)-1]),
	}

	fmt.Fprintln(w, "CCAM-QL planner: predicted vs measured data-page accesses")
	fmt.Fprintf(w, "%-44s %-20s %9s %9s %7s\n",
		"statement", "access path", "predicted", "measured", "error")
	paths := map[string]bool{}
	worst := 0.0
	for _, stmt := range stmts {
		exp, err := st.Query(ctx, ccam.ExplainStatement(stmt))
		if err != nil {
			return fmt.Errorf("explain %q: %w", stmt, err)
		}
		if err := st.ResetIO(); err != nil {
			return err
		}
		res, err := st.Query(ctx, stmt)
		if err != nil {
			return fmt.Errorf("query %q: %w", stmt, err)
		}
		path := string(exp.Plan.Chosen.Path)
		paths[path] = true
		predicted, measured := exp.Plan.Chosen.Pages, res.Actual.DataReads
		rel := 0.0
		if measured > 0 {
			rel = math.Abs(float64(predicted)-float64(measured)) / float64(measured)
		} else if predicted != 0 {
			rel = 1
		}
		if rel > worst {
			worst = rel
		}
		fmt.Fprintf(w, "%-44s %-20s %9d %9d %6.1f%%\n",
			stmt, path, predicted, measured, rel*100)
	}
	fmt.Fprintf(w, "distinct access paths chosen: %d, worst prediction error: %.1f%%\n",
		len(paths), worst*100)

	if check {
		if worst > 0.30 {
			return fmt.Errorf("query check failed: worst prediction error %.1f%% > 30%%", worst*100)
		}
		if len(paths) < 3 {
			return fmt.Errorf("query check failed: only %d distinct access paths chosen", len(paths))
		}
		fmt.Fprintln(w, "check: ok")
	}
	return nil
}

// sampleRoute follows successor edges from start without revisiting a
// node, producing a genuine route of up to n nodes.
func sampleRoute(ctx context.Context, st *ccam.Store, start ccam.NodeID, n int) ([]ccam.NodeID, error) {
	route := []ccam.NodeID{start}
	seen := map[ccam.NodeID]bool{start: true}
	cur := start
	for len(route) < n {
		rec, err := st.Find(ctx, cur)
		if err != nil {
			return nil, err
		}
		advanced := false
		for _, sc := range rec.Succs {
			if !seen[sc.To] {
				route = append(route, sc.To)
				seen[sc.To] = true
				cur = sc.To
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	if len(route) < 2 {
		return nil, fmt.Errorf("could not sample a route from node %d", start)
	}
	return route, nil
}
