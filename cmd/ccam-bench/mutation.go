package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"ccam"
	"ccam/internal/graph"
)

// mutationConfig parameterizes the durable-mutation-throughput
// experiment.
type mutationConfig struct {
	// MaxWriters is the largest concurrent-writer count swept (the
	// -parallel flag); the sweep doubles from 1.
	MaxWriters int
	// OpsPerWriter is the number of committed one-op batches each
	// writer issues per cell.
	OpsPerWriter int
	// Seed drives the workload generator.
	Seed int64
}

// mutationCell is one measured (writers, sync policy) cell.
type mutationCell struct {
	opsPerSec float64
	// commits and fsyncs cover the timed mutation window only (the
	// Build-time checkpoint is subtracted out).
	commits, fsyncs int64
}

// runMutation measures durable commit throughput on the file-backed
// WAL store while sweeping concurrent writers across the three sync
// policies. Apply releases the store latch before forcing the log, so
// under SyncGroupCommit concurrent committers coalesce into one fsync;
// the experiment's acceptance bar is group commit at 8 writers beating
// the single-writer fsync-per-commit baseline by >= 2x.
func runMutation(w io.Writer, g *graph.Network, cfg mutationConfig) error {
	if cfg.MaxWriters < 1 {
		cfg.MaxWriters = 8
	}
	if cfg.OpsPerWriter <= 0 {
		cfg.OpsPerWriter = 250
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return fmt.Errorf("mutation: road map has no edges")
	}

	dir, err := os.MkdirTemp("", "ccam-mutation-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintln(w, "Durable mutation throughput: concurrent one-op batches (SetEdgeCost) on the file-backed WAL store")
	fmt.Fprintf(w, "%d commits per writer; every = fsync per commit, group = group commit, none = no fsync on commit\n",
		cfg.OpsPerWriter)
	fmt.Fprintf(w, "%-8s  %12s  %12s  %12s  %10s  %8s  %10s\n",
		"writers", "every ops/s", "group ops/s", "none ops/s", "grp/evry1", "fsyncs", "avg group")

	policies := []ccam.SyncPolicy{ccam.SyncEveryCommit, ccam.SyncGroupCommit, ccam.SyncNone}
	var base float64 // single-writer fsync-per-commit baseline
	for writers := 1; writers <= cfg.MaxWriters; writers *= 2 {
		var ops [3]float64
		var commits, fsyncs int64
		for i, pol := range policies {
			cell, err := runMutationCell(dir, g, edges, writers, cfg, pol)
			if err != nil {
				return err
			}
			ops[i] = cell.opsPerSec
			if pol == ccam.SyncGroupCommit {
				commits, fsyncs = cell.commits, cell.fsyncs
			}
		}
		if writers == 1 {
			base = ops[0]
		}
		group := "-"
		if fsyncs > 0 {
			group = fmt.Sprintf("%.1f", float64(commits)/float64(fsyncs))
		}
		fmt.Fprintf(w, "%-8d  %12.0f  %12.0f  %12.0f  %9.2fx  %8d  %10s\n",
			writers, ops[0], ops[1], ops[2], ops[1]/base, fsyncs, group)
	}
	return nil
}

// runMutationCell builds a fresh WAL-backed store on disk and drives
// `writers` goroutines, each committing one-op batches through the
// shared AccessMethod surface. It returns the committed throughput and
// the fsync count of the timed window.
func runMutationCell(dir string, g *graph.Network, edges []graph.Edge, writers int, cfg mutationConfig, pol ccam.SyncPolicy) (mutationCell, error) {
	s, err := ccam.Open(ccam.Options{
		PageSize:   2048,
		PoolPages:  64,
		Seed:       1,
		Path:       filepath.Join(dir, fmt.Sprintf("w%d-p%d.ccam", writers, pol)),
		WAL:        true,
		SyncPolicy: pol,
		// Metrics stay off: the registry refreshes the CRR/WCRR gauges
		// (an O(edges) scan) under the store latch after every commit,
		// which would swamp the fsync cost this experiment isolates.
		// WALStats counts fsyncs regardless.
		// Keep checkpoints out of the timed window too: the sweep
		// measures commit latency, not checkpoint cost.
		CheckpointBytes: 1 << 30,
	})
	if err != nil {
		return mutationCell{}, err
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		return mutationCell{}, err
	}
	setupFsyncs := s.WALStats().Fsyncs

	// The writer loop sees only the shared access-method contract; the
	// same harness would drive a baseline file organization unchanged.
	var m ccam.AccessMethod = s
	ctx := context.Background()
	errc := make(chan error, writers)
	start := time.Now()
	for id := 0; id < writers; id++ {
		go func(id int) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			for i := 0; i < cfg.OpsPerWriter; i++ {
				e := edges[rng.Intn(len(edges))]
				b := new(ccam.Batch).SetEdgeCost(e.From, e.To, 1+99*rng.Float32())
				if err := m.Apply(ctx, b); err != nil {
					errc <- fmt.Errorf("writer %d: %w", id, err)
					return
				}
			}
			errc <- nil
		}(id)
	}
	var firstErr error
	for i := 0; i < writers; i++ {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	elapsed := time.Since(start)
	if firstErr != nil {
		return mutationCell{}, firstErr
	}

	commits := int64(writers * cfg.OpsPerWriter)
	cell := mutationCell{
		opsPerSec: float64(commits) / elapsed.Seconds(),
		commits:   commits,
		fsyncs:    s.WALStats().Fsyncs - setupFsyncs,
	}
	return cell, s.Close()
}
