package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccam"
	"ccam/internal/graph"
)

// mixedConfig parameterizes the mixed read/write experiment.
type mixedConfig struct {
	// Duration is the measured window per latching-mode cell.
	Duration time.Duration
	// Readers and Writers are the concurrent goroutine counts shared
	// by both cells.
	Readers, Writers int
	// Seed drives the workloads.
	Seed int64
	// JSONPath, when set, receives the machine-readable result.
	JSONPath string
	// Check enforces the regression gates.
	Check bool
}

// mixedCell is one measured latching mode: reader latency quantiles
// and throughput alongside the concurrent writers' commit rate.
type mixedCell struct {
	Mode           string  `json:"mode"`
	ReadOps        int64   `json:"read_ops"`
	ReadOpsPerSec  float64 `json:"read_ops_per_sec"`
	ReadP50Micros  float64 `json:"read_p50_us"`
	ReadP95Micros  float64 `json:"read_p95_us"`
	ReadP99Micros  float64 `json:"read_p99_us"`
	ReadMaxMicros  float64 `json:"read_max_us"`
	WriteOps       int64   `json:"write_ops"`
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`
	// ReadsPerOp is physical data-page reads per read operation — the
	// (inverse) buffer hit rate, which must match across cells for the
	// latency comparison to be apples-to-apples.
	ReadsPerOp float64 `json:"reads_per_op"`
	// FlushedPages counts physical page writes during the window: the
	// in-latch checkpoint volume the writers generated.
	FlushedPages int64 `json:"flushed_pages"`
}

// mixedReorg is the result of the churn-and-recover phase: the
// background incremental reorganizer must win back at least half of
// the CRR the churn destroyed while concurrent readers keep running.
type mixedReorg struct {
	CRRBuild     float64 `json:"crr_build"`
	CRRDecayed   float64 `json:"crr_decayed"`
	CRRRecovered float64 `json:"crr_recovered"`
	Rounds       int64   `json:"rounds"`
	Pages        int64   `json:"pages"`
	ReaderOps    int64   `json:"reader_ops"`
	ReaderErrors int64   `json:"reader_errors"`
}

// mixedResult is the experiment's machine-readable artifact.
type mixedResult struct {
	Nodes     int       `json:"nodes"`
	Edges     int       `json:"edges"`
	Readers   int       `json:"readers"`
	Writers   int       `json:"writers"`
	Duration  string    `json:"duration"`
	Exclusive mixedCell `json:"exclusive"`
	MVCC      mixedCell `json:"mvcc"`
	// P99Ratio and ThroughputRatio compare MVCC snapshot reads to the
	// exclusive-latch baseline (higher is better for MVCC).
	P99Ratio        float64    `json:"p99_ratio"`
	ThroughputRatio float64    `json:"throughput_ratio"`
	Reorg           mixedReorg `json:"reorg"`
}

// runMixed measures the reader-side cost of writer traffic under the
// two latching modes — ExclusiveReads (readers share the store latch
// with Apply, so they queue behind in-latch checkpoints) and the
// default MVCC snapshot reads (readers pin an LSN and never wait on
// writer I/O) — then drives the decay-and-recover reorganizer phase.
// The store runs on a simulated disk (Options.SyncLatency) so the
// writers' in-latch checkpoint I/O costs milliseconds, the paper's
// disk-resident regime: that I/O is the stall MVCC deletes.
func runMixed(w io.Writer, g *graph.Network, cfg mixedConfig) error {
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 4
	}
	if cfg.Writers <= 0 {
		cfg.Writers = 4
	}
	dir, err := os.MkdirTemp("", "ccam-mixed-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	res := mixedResult{
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Readers: cfg.Readers, Writers: cfg.Writers,
		Duration: cfg.Duration.String(),
	}
	fmt.Fprintf(w, "Mixed workload: %d paced readers (16-hop walks) vs %d writers (durable 128-op batches + checkpoint, 2ms simulated sync), %s per cell\n",
		cfg.Readers, cfg.Writers, cfg.Duration)
	fmt.Fprintf(w, "%-10s  %12s  %10s  %10s  %10s  %10s  %12s  %9s\n",
		"mode", "read ops/s", "p50 us", "p95 us", "p99 us", "max us", "write ops/s", "reads/op")
	for _, mode := range []bool{true, false} {
		cell, err := runMixedCell(dir, g, mode, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s  %12.0f  %10.1f  %10.1f  %10.1f  %10.1f  %12.0f  %9.4f\n",
			cell.Mode, cell.ReadOpsPerSec, cell.ReadP50Micros, cell.ReadP95Micros,
			cell.ReadP99Micros, cell.ReadMaxMicros, cell.WriteOpsPerSec, cell.ReadsPerOp)
		if mode {
			res.Exclusive = cell
		} else {
			res.MVCC = cell
		}
	}
	if res.MVCC.ReadP99Micros > 0 {
		res.P99Ratio = res.Exclusive.ReadP99Micros / res.MVCC.ReadP99Micros
	}
	if res.Exclusive.ReadOpsPerSec > 0 {
		res.ThroughputRatio = res.MVCC.ReadOpsPerSec / res.Exclusive.ReadOpsPerSec
	}
	fmt.Fprintf(w, "MVCC vs exclusive: reader p99 %.1fx better, read throughput %.1fx\n",
		res.P99Ratio, res.ThroughputRatio)

	reorg, err := runMixedReorg(g, cfg)
	if err != nil {
		return err
	}
	res.Reorg = reorg
	fmt.Fprintf(w, "reorganizer: CRR %.4f -> %.4f (churn) -> %.4f after %d rounds / %d pages; %d concurrent reads, %d errors\n",
		reorg.CRRBuild, reorg.CRRDecayed, reorg.CRRRecovered,
		reorg.Rounds, reorg.Pages, reorg.ReaderOps, reorg.ReaderErrors)

	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	if cfg.Check {
		if err := res.Check(); err != nil {
			return err
		}
		fmt.Fprintln(w, "check passed: snapshot reads >= 5x better p99 and >= 3x read throughput at equal hit rate; reorganizer recovered >= half the CRR decay under live readers")
	}
	return nil
}

// Check enforces the experiment's regression gates.
func (r *mixedResult) Check() error {
	if r.P99Ratio < 5 {
		return fmt.Errorf("mixed: reader p99 under MVCC only %.2fx better than exclusive latching, want >= 5x", r.P99Ratio)
	}
	if r.ThroughputRatio < 3 {
		return fmt.Errorf("mixed: read throughput under MVCC only %.2fx the exclusive baseline, want >= 3x", r.ThroughputRatio)
	}
	// The comparison only stands at equal buffer hit rates: both cells
	// must serve essentially every read from the pool.
	if r.Exclusive.ReadsPerOp > 0.05 || r.MVCC.ReadsPerOp > 0.05 {
		return fmt.Errorf("mixed: hit rates differ (%.4f vs %.4f physical reads/op), cells are not comparable",
			r.Exclusive.ReadsPerOp, r.MVCC.ReadsPerOp)
	}
	decay := r.Reorg.CRRBuild - r.Reorg.CRRDecayed
	if decay < 0.03 {
		return fmt.Errorf("mixed: churn decayed CRR only %.4f -> %.4f; phase inconclusive",
			r.Reorg.CRRBuild, r.Reorg.CRRDecayed)
	}
	if target := r.Reorg.CRRDecayed + 0.5*decay; r.Reorg.CRRRecovered < target {
		return fmt.Errorf("mixed: reorganizer recovered CRR %.4f -> %.4f, want >= %.4f",
			r.Reorg.CRRDecayed, r.Reorg.CRRRecovered, target)
	}
	if r.Reorg.Rounds == 0 {
		return fmt.Errorf("mixed: recovery asserted but no reorganization rounds ran")
	}
	if r.Reorg.ReaderErrors > 0 {
		return fmt.Errorf("mixed: %d concurrent reads failed during reorganization", r.Reorg.ReaderErrors)
	}
	if r.Reorg.ReaderOps == 0 {
		return fmt.Errorf("mixed: no concurrent reads ran during reorganization")
	}
	return nil
}

// runMixedCell builds a fresh WAL-backed store and drives the mixed
// workload for one latching mode.
func runMixedCell(dir string, g *graph.Network, exclusive bool, cfg mixedConfig) (mixedCell, error) {
	mode := "mvcc"
	if exclusive {
		mode = "exclusive"
	}
	s, err := ccam.Open(ccam.Options{
		PageSize:  2048,
		PoolPages: 512,
		Seed:      1,
		Path:      filepath.Join(dir, mode+".ccam"),
		WAL:       true,
		// Group commit keeps the commit fsync outside the store latch
		// in both modes; the in-latch I/O the cells compare is the
		// checkpoint (WAL sync + data-file sync) behind every batch.
		SyncPolicy: ccam.SyncGroupCommit,
		// The paper's regime is disk-resident: an fsync costs
		// milliseconds, not the tens of microseconds a modern local
		// ext4 charges. The simulated sync latency restores that
		// regime (the throughput experiment does the same for reads
		// via ReadLatency) — without it, both cells' tails drown in
		// single-core scheduler noise and the comparison measures
		// nothing.
		SyncLatency:    2 * time.Millisecond,
		ExclusiveReads: exclusive,
	})
	if err != nil {
		return mixedCell{}, err
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		return mixedCell{}, err
	}
	ids := g.NodeIDs()
	edges := g.Edges()
	if len(edges) == 0 {
		return mixedCell{}, fmt.Errorf("mixed: road map has no edges")
	}

	ctx := context.Background()
	ioBefore := s.IO()
	var stop atomic.Bool
	var writeOps int64
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Readers+cfg.Writers)
	lats := make([][]int64, cfg.Readers)

	for i := 0; i < cfg.Writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			for !stop.Load() {
				// 128 updates per commit: the batch dirties pages across
				// the whole file and pushes the log over the checkpoint
				// bound every commit, so every Apply carries an in-latch
				// pool flush (the stall exclusive-mode readers queue on).
				b := new(ccam.Batch)
				for k := 0; k < 128; k++ {
					e := edges[rng.Intn(len(edges))]
					b.SetEdgeCost(e.From, e.To, float32(1+rng.Intn(1000)))
				}
				if err := s.Apply(ctx, b); err != nil {
					errc <- fmt.Errorf("mixed writer: %w", err)
					return
				}
				// Checkpoint behind every batch: aggressive
				// checkpointing keeps the log short (instant recovery)
				// and its flush+prune runs under the store latch — the
				// writer I/O that exclusive-mode readers queue behind
				// and snapshot readers never see.
				if err := s.Checkpoint(); err != nil {
					errc <- fmt.Errorf("mixed checkpoint: %w", err)
					return
				}
				atomic.AddInt64(&writeOps, 128)
			}
		}(i)
	}
	for i := 0; i < cfg.Readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(i)))
			samples := make([]int64, 0, 1<<18)
			for !stop.Load() {
				// One sample is a 16-hop network walk — the shape of an
				// aggregate route evaluation — so each op crosses the
				// read path 16 times and feels a writer stall anywhere
				// along it.
				id := ids[rng.Intn(len(ids))]
				t0 := time.Now()
				for hop := 0; hop < 16; hop++ {
					rec, err := s.Find(ctx, id)
					if err != nil {
						errc <- fmt.Errorf("mixed reader: %w", err)
						return
					}
					if len(rec.Succs) == 0 {
						id = ids[rng.Intn(len(ids))]
						continue
					}
					id = rec.Succs[rng.Intn(len(rec.Succs))].To
				}
				samples = append(samples, int64(time.Since(t0)))
				// Closed-loop pacing: think time between walks bounds
				// each reader's arrival rate. Without it the readers
				// spin, and the millions of samples they bank during
				// uncontended gaps bury the stalled walks far below the
				// p99 mark no matter how long the stalls are — the
				// spin also monopolizes the CPU, starving the writers
				// whose latch holds the experiment wants to measure.
				time.Sleep(time.Millisecond)
			}
			lats[i] = samples
		}(i)
	}

	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return mixedCell{}, err
	default:
	}

	var all []int64
	for _, s := range lats {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}
	cell := mixedCell{
		Mode:           mode,
		ReadOps:        int64(len(all)),
		ReadOpsPerSec:  float64(len(all)) / elapsed,
		ReadP50Micros:  q(0.50),
		ReadP95Micros:  q(0.95),
		ReadP99Micros:  q(0.99),
		ReadMaxMicros:  q(1.0),
		WriteOps:       writeOps,
		WriteOpsPerSec: float64(writeOps) / elapsed,
		FlushedPages:   s.IO().Writes - ioBefore.Writes,
	}
	if cell.ReadOps > 0 {
		cell.ReadsPerOp = float64(s.IO().Reads-ioBefore.Reads) / float64(cell.ReadOps)
	}
	return cell, nil
}

// runMixedReorg decays the clustering with foreign-node churn (page
// splits scatter the original records; the map's own edges never
// change) and then drives the background reorganizer by hand while
// reader goroutines keep traversing: recovery must reach at least half
// of the lost CRR without a single failed read.
func runMixedReorg(g *graph.Network, cfg mixedConfig) (mixedReorg, error) {
	s, err := ccam.Open(ccam.Options{
		PageSize:        1024,
		Seed:            7,
		Metrics:         true,
		BackgroundReorg: true,
		// The timer must not race the measurement; every round comes
		// from an explicit Poke below.
		ReorgInterval:    time.Hour,
		ReorgMaxPages:    64,
		ReorgTriggerDrop: 0.005,
	})
	if err != nil {
		return mixedReorg{}, err
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		return mixedReorg{}, err
	}
	var r mixedReorg
	r.CRRBuild = s.CRR(g)
	s.Poke() // records the post-Build CRR as the trigger's high-water mark

	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(cfg.Seed))
	foreign := ccam.NodeID(1 << 20)
	churn := func(k int) error {
		start := foreign
		for i := 0; i < k; i++ {
			id := foreign
			foreign++
			anchor := ids[rng.Intn(len(ids))]
			node, err := g.Node(anchor)
			if err != nil {
				return err
			}
			rec := &ccam.Record{
				ID:    id,
				Pos:   node.Pos,
				Succs: []ccam.SuccEntry{{To: anchor, Cost: 1}},
				Preds: []ccam.NodeID{ids[rng.Intn(len(ids))]},
			}
			if err := s.Insert(&ccam.InsertOp{Rec: rec, PredCosts: []float32{1}}, ccam.FirstOrder); err != nil {
				return err
			}
		}
		for id := start; id < foreign; id++ {
			if err := s.Delete(id, ccam.FirstOrder); err != nil {
				return err
			}
		}
		return nil
	}
	if err := churn(len(ids)); err != nil {
		return mixedReorg{}, err
	}
	for tries := 0; s.CRR(g) > r.CRRBuild-0.05 && tries < 6; tries++ {
		if err := churn(len(ids) / 2); err != nil {
			return mixedReorg{}, err
		}
	}
	r.CRRDecayed = s.CRR(g)

	// Readers traverse while the reorganizer runs; any error or torn
	// read would surface here.
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(cfg.Seed + 200 + int64(i)))
			for !stop.Load() {
				id := ids[rrng.Intn(len(ids))]
				if _, err := s.GetSuccessors(ctx, id); err != nil {
					atomic.AddInt64(&r.ReaderErrors, 1)
				}
				atomic.AddInt64(&r.ReaderOps, 1)
			}
		}(i)
	}
	target := r.CRRDecayed + 0.5*(r.CRRBuild-r.CRRDecayed)
	for i := 0; i < 80 && s.CRR(g) < target; i++ {
		s.Poke()
	}
	stop.Store(true)
	wg.Wait()
	r.CRRRecovered = s.CRR(g)
	reg := s.Metrics()
	r.Rounds = reg.Counter("ccam_reorg_rounds_total").Value()
	r.Pages = reg.Counter("ccam_reorg_pages_total").Value()
	return r, nil
}
