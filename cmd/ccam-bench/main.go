// Command ccam-bench regenerates the paper's tables and figures
// (Section 4) and the repository's ablation studies, printing each as a
// plain-text table.
//
// Usage:
//
//	ccam-bench -exp all
//	ccam-bench -exp fig5
//	ccam-bench -exp table5
//	ccam-bench -exp fig6
//	ccam-bench -exp fig7
//	ccam-bench -exp ablation-partitioner
//	ccam-bench -exp ablation-buffer
//	ccam-bench -exp ablation-scale
//	ccam-bench -exp throughput -parallel 8
//	ccam-bench -exp mutation -parallel 8
//	ccam-bench -exp metrics
//	ccam-bench -exp metrics -http :8080
//	ccam-bench -exp build-scale -sizes 4096,65536 -workers 4 -json out.json -check
//	ccam-bench -exp serve -conns 10000 -duration 10s -json out.json -check
//	ccam-bench -exp query -check
//
// Flags -seed, -rows and -cols change the synthetic road map; the
// defaults reproduce the paper-scale Minneapolis map (1079 nodes,
// ~3057 edges). The throughput experiment sweeps the batch-query
// worker pool up to -parallel workers against a simulated disk and is
// not part of -exp all, because it reports wall-clock scaling rather
// than the paper's page-access counts. The mutation experiment (also
// excluded from all) sweeps concurrent writers committing one-op
// batches against the file-backed WAL store under each sync policy,
// showing group commit's fsync coalescing. The metrics experiment drives a
// mixed workload through an instrumented store and prints the
// per-operation registry view (latency quantiles, pages per operation
// by class, buffer hit rate, CRR/WCRR gauges); with -http it then
// keeps serving /metrics, /metrics.json, /traces and /debug/pprof.
// The build-scale experiment (also wall-clock, also excluded from all)
// sweeps network sizes from -sizes and times the Fig. 2 clustering
// under serial ratio-cut, parallel ratio-cut and parallel multilevel;
// -json writes the machine-readable result and -check enforces the
// determinism/quality/speedup regression gates. The serve experiment
// (wall-clock, excluded from all) load-tests the ccam-serve query
// service: it spawns the server in-process over a file-backed store,
// opens -conns binary-protocol connections, drives a mixed read
// workload closed-loop (or open-loop with -rate), reports client and
// server p50/p95/p99 with shed counts, then drains the server and
// verifies the reopen replays no WAL; -addr points it at an external
// server instead. The query experiment (excluded from all) runs one
// CCAM-QL statement per shape, printing the planner's chosen access
// path and predicted data-page accesses next to the cold-pool
// measurement; -check fails the run when any prediction misses by more
// than 30% or the planner collapses onto fewer than three access
// paths.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccam/internal/bench"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig5, table5, fig6, fig7, ablation-partitioner, ablation-buffer, ablation-scale, ablation-search, ablation-lazy, ablation-topology, ablation-mixed, ablation-spatial, throughput, mutation, metrics, query, mixed, build-scale, pool-scale, serve (the last eight are not part of all)")
	seed := flag.Int64("seed", 42, "workload seed")
	mapSeed := flag.Int64("mapseed", 169, "road map generator seed")
	rows := flag.Int("rows", 0, "override road map lattice rows")
	cols := flag.Int("cols", 0, "override road map lattice cols")
	parallel := flag.Int("parallel", 8, "largest worker-pool size the throughput experiment sweeps")
	httpAddr := flag.String("http", "", "with -exp metrics: keep serving /metrics, /metrics.json, /traces and /debug/pprof on this address after the run")
	sizes := flag.String("sizes", "", "with -exp build-scale: comma-separated node counts to sweep (default 4096,16384,65536,262144); with -exp pool-scale: worker counts (default 1,2,4,8,16)")
	jsonPath := flag.String("json", "", "with -exp build-scale, pool-scale, serve or mixed: also write the result as JSON to this path")
	check := flag.Bool("check", false, "with -exp build-scale, pool-scale, serve, query or mixed: fail unless the experiment's regression gates hold")
	minSpeedup := flag.Float64("min-speedup", 2.0, "with -exp pool-scale -check: required sharded-prefetch over single-latch throughput ratio at peak workers")
	workers := flag.Int("workers", 0, "with -exp build-scale: clustering worker pool for the parallel variants (0 = GOMAXPROCS)")
	conns := flag.Int("conns", 10000, "with -exp serve: concurrent binary-protocol connections")
	duration := flag.Duration("duration", 10e9, "with -exp serve: measured load window; with -exp pool-scale: window per (variant, workers) point; with -exp mixed: window per latching mode")
	rate := flag.Int("rate", 0, "with -exp serve: open-loop target req/s across all connections (0 = closed loop)")
	addr := flag.String("addr", "", "with -exp serve: load an external ccam-serve binary port instead of an in-process server")
	serveBin := flag.String("serve-bin", "", "with -exp serve: run this ccam-serve binary as a child process instead of serving in-process (doubles the per-process fd budget and exercises the real SIGTERM drain)")
	nodes := flag.Int("nodes", 262144, "with -exp serve or pool-scale: road-map size")
	inflight := flag.Int("max-inflight", 0, "with -exp serve: in-process server admission cap (0 = server default)")
	traceSample := flag.Int("trace-sample", 0, "with -exp serve: send trace context + stats request on 1-in-N requests and report server-attributed breakdowns (0 = off)")
	slowQuery := flag.Duration("slow-query", 0, "with -exp serve: managed server's slow-query log threshold (0 = off)")
	flag.Parse()

	opts := graph.MinneapolisLikeOpts()
	opts.Seed = *mapSeed
	if *rows > 0 {
		opts.Rows = *rows
	}
	if *cols > 0 {
		opts.Cols = *cols
	}
	setup := bench.Setup{MapOpts: opts, Seed: *seed}

	if err := run(os.Stdout, *exp, setup, *parallel, *httpAddr, buildScaleOpts{
		sizes: *sizes, jsonPath: *jsonPath, workers: *workers, check: *check,
	}, poolScaleOpts{
		nodes: *nodes, workers: *sizes, duration: *duration,
		jsonPath: *jsonPath, check: *check, minSpeedup: *minSpeedup,
	}, serveConfig{
		Nodes: *nodes, Conns: *conns, Duration: *duration, Rate: *rate,
		Addr: *addr, ServeBin: *serveBin, MaxInFlight: *inflight,
		TraceSample: *traceSample, SlowQuery: *slowQuery,
		JSONPath: *jsonPath, Check: *check, Seed: *seed,
	}, mixedConfig{
		Duration: *duration, JSONPath: *jsonPath, Check: *check,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ccam-bench:", err)
		os.Exit(1)
	}
}

// buildScaleOpts carries the build-scale-only flags into run.
type buildScaleOpts struct {
	sizes    string
	jsonPath string
	workers  int
	check    bool
}

func run(w io.Writer, exp string, setup bench.Setup, parallel int, httpAddr string, bs buildScaleOpts, ps poolScaleOpts, sc serveConfig, mx mixedConfig) error {
	// The build-scale, pool-scale and serve experiments generate their
	// own (much larger) networks, so skip building the default map.
	if exp == "build-scale" {
		return runBuildScale(w, setup, bs.sizes, bs.jsonPath, bs.workers, bs.check)
	}
	if exp == "pool-scale" {
		return runPoolScale(w, setup, ps)
	}
	if exp == "serve" {
		return runServe(w, sc)
	}
	g, err := setup.Network()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "road map: %d nodes, %d directed edges, |A| = %.3f, lambda = %.2f\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgSuccessors(), g.AvgNeighbors())

	all := exp == "all"
	ran := false
	if all || exp == "fig5" {
		res, err := bench.RunFig5(bench.Fig5Config{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "table5" {
		res, err := bench.RunTable5(bench.Table5Config{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "fig6" {
		res, err := bench.RunFig6(bench.Fig6Config{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "fig7" {
		res, err := bench.RunFig7(bench.Fig7Config{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-partitioner" {
		res, err := bench.RunAblationPartitioners(setup, 1024)
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-buffer" {
		res, err := bench.RunAblationBufferSweep(setup)
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-search" {
		res, err := bench.RunSearchPaths(bench.SearchPathsConfig{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-lazy" {
		res, err := bench.RunFig7(bench.Fig7Config{
			Setup:     setup,
			Policies:  []netfile.Policy{netfile.FirstOrder, netfile.Lazy, netfile.SecondOrder, netfile.HigherOrder},
			LazyEvery: 4,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Ablation A5: delayed (lazy) reorganization vs the paper's policies")
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-topology" {
		res, err := bench.RunAblationTopology(setup)
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-mixed" {
		res, err := bench.RunMixedWorkload(bench.MixedConfig{Setup: setup})
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-spatial" {
		res, err := bench.RunAblationSpatialOrder(setup)
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	// The throughput experiment measures wall-clock scaling of the
	// concurrent read path, not page-access counts, and sleeps to
	// simulate disk latency — so it runs only when asked for by name.
	if exp == "throughput" {
		if err := runThroughput(w, g, throughputConfig{
			MaxWorkers: parallel,
			Seed:       setup.Seed,
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	// The mixed experiment compares reader latency under the two
	// latching modes while durable writers churn, then exercises the
	// background reorganizer; wall-clock, so it runs only by name.
	if exp == "mixed" {
		mx.Seed = setup.Seed
		if err := runMixed(w, g, mx); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	// The mutation experiment measures wall-clock durable-commit
	// throughput (fsync-bound by design), so it too runs only when
	// asked for by name.
	if exp == "mutation" {
		if err := runMutation(w, g, mutationConfig{
			MaxWriters: parallel,
			Seed:       setup.Seed,
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	// The metrics experiment reports latency quantiles (wall-clock, not
	// page counts) and can block serving HTTP, so it also runs only when
	// asked for by name.
	if exp == "metrics" {
		if err := runMetrics(w, g, setup.Seed, httpAddr); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	// The query experiment validates the CCAM-QL planner: predicted vs
	// measured data-page accesses per statement shape. Excluded from all
	// because it reports a prediction-accuracy gate, not the paper's
	// comparison tables.
	if exp == "query" {
		if err := runQueryExp(w, g, setup.Seed, bs.check); err != nil {
			return err
		}
		fmt.Fprintln(w)
		ran = true
	}
	if all || exp == "ablation-scale" {
		res, err := bench.RunAblationScale(setup, nil)
		if err != nil {
			return err
		}
		res.Print(w)
		fmt.Fprintln(w)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
