package main

import (
	"bytes"
	"strings"
	"testing"

	"ccam"
)

func tinyOpts() ccam.RoadMapOpts {
	opts := ccam.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 8, 8
	return opts
}

func TestRunStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyOpts(), true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:", "directed edges:", "avg successors", "extent:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, tinyOpts(), false); err != nil {
		t.Fatal(err)
	}
	g, err := ccam.ReadNetworkJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ccam.RoadMap(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != want.NumNodes() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("round trip %d/%d, want %d/%d",
			g.NumNodes(), g.NumEdges(), want.NumNodes(), want.NumEdges())
	}
}

func TestRunRejectsBadOpts(t *testing.T) {
	opts := tinyOpts()
	opts.Rows = 1
	if err := run(&bytes.Buffer{}, opts, true); err == nil {
		t.Fatal("bad opts accepted")
	}
}
