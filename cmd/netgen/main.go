// Command netgen generates synthetic road networks and writes them as
// JSON (the schema of graph.WriteJSON), for use by the examples and by
// external tools.
//
// Usage:
//
//	netgen -o map.json                  # Minneapolis-scale default
//	netgen -rows 50 -cols 50 -seed 7 -o big.json
//	netgen -stats                       # print statistics only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ccam"
)

func main() {
	out := flag.String("o", "", "output JSON path (default stdout)")
	rows := flag.Int("rows", 0, "lattice rows (default paper-scale)")
	cols := flag.Int("cols", 0, "lattice cols (default paper-scale)")
	seed := flag.Int64("seed", 0, "generator seed (default paper-scale)")
	deleteFrac := flag.Float64("delete", -1, "fraction of street segments removed")
	statsOnly := flag.Bool("stats", false, "print statistics instead of JSON")
	flag.Parse()

	opts := ccam.MinneapolisLikeOpts()
	if *rows > 0 {
		opts.Rows = *rows
	}
	if *cols > 0 {
		opts.Cols = *cols
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *deleteFrac >= 0 {
		opts.DeleteFrac = *deleteFrac
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, opts, *statsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

// run generates the network and writes statistics or JSON to w.
func run(w io.Writer, opts ccam.RoadMapOpts, statsOnly bool) error {
	g, err := ccam.RoadMap(opts)
	if err != nil {
		return err
	}
	if statsOnly {
		fmt.Fprintf(w, "nodes: %d\n", g.NumNodes())
		fmt.Fprintf(w, "directed edges: %d\n", g.NumEdges())
		fmt.Fprintf(w, "avg successors |A|: %.3f\n", g.AvgSuccessors())
		fmt.Fprintf(w, "avg neighbors lambda: %.3f\n", g.AvgNeighbors())
		b := g.Bounds()
		fmt.Fprintf(w, "extent: (%.0f,%.0f)-(%.0f,%.0f)\n", b.Min.X, b.Min.Y, b.Max.X, b.Max.Y)
		return nil
	}
	return g.WriteJSON(w)
}
