package ccam

import "context"

// ReqStats is the per-request resource account: what one network
// request cost in the units of the paper's cost model (data-page and
// index-page accesses, CCAM §4) plus the modern overheads layered on
// top of it (buffer pool hits/misses, WAL group-commit wait). The
// server allocates one per request, carries it through the store via
// the context, and echoes it back to the client in the response
// trailer, so a slow request explains itself without a server-side
// log dive.
//
// A ReqStats is owned by a single request goroutine; the facade's
// operation instrumentation adds the per-op deltas synchronously, so
// no locking is needed.
type ReqStats struct {
	// DataReads / DataWrites count data-page accesses — the quantity
	// the paper's evaluation minimizes by connectivity clustering.
	DataReads  int64 `json:"data_reads"`
	DataWrites int64 `json:"data_writes,omitempty"`
	// IndexPages counts B+-tree index node visits (paper §4 charges
	// these separately from data pages).
	IndexPages int64 `json:"index_pages"`
	// BufferHits / BufferMisses split DataReads by whether the buffer
	// pool absorbed them; only misses reach the disk.
	BufferHits   int64 `json:"buffer_hits"`
	BufferMisses int64 `json:"buffer_misses"`
	// Prefetches counts PAG prefetch reads issued while this request's
	// operations ran. The count is a delta of the pool-global prefetch
	// counter, so when requests overlap, speculative reads triggered by
	// an overlapping request's misses are attributed here too — treat
	// it as an upper bound on this request's own prefetch I/O, exact
	// only when operations run one at a time. Speculative I/O is
	// accounted here, never in DataReads or BufferMisses, so the
	// paper's demand counts stay comparable.
	Prefetches int64 `json:"prefetches,omitempty"`
	// WALWaitNs is the time this request spent waiting for its batch's
	// WAL commit record to become durable, including group-formation
	// wait (attributed to the request, not the fsync leader — see
	// DESIGN.md).
	WALWaitNs int64 `json:"wal_wait_ns,omitempty"`
	// Shed marks a request refused by admission control; all other
	// fields are zero on a shed request.
	Shed bool `json:"shed,omitempty"`
	// Ops counts the facade operations that contributed to this
	// account (batch endpoints contribute one per request, not one per
	// element).
	Ops int64 `json:"ops,omitempty"`
}

// Add accumulates other into s.
func (s *ReqStats) Add(other ReqStats) {
	s.DataReads += other.DataReads
	s.DataWrites += other.DataWrites
	s.IndexPages += other.IndexPages
	s.BufferHits += other.BufferHits
	s.BufferMisses += other.BufferMisses
	s.Prefetches += other.Prefetches
	s.WALWaitNs += other.WALWaitNs
	s.Shed = s.Shed || other.Shed
	s.Ops += other.Ops
}

// reqStatsKey carries a *ReqStats through a context.Context.
type reqStatsKey struct{}

// WithReqStats returns a context carrying rs, so store operations run
// with that context charge their page/buffer/WAL costs to it. A nil
// rs returns ctx unchanged.
func WithReqStats(ctx context.Context, rs *ReqStats) context.Context {
	if rs == nil {
		return ctx
	}
	return context.WithValue(ctx, reqStatsKey{}, rs)
}

// ReqStatsFrom extracts the per-request account carried by ctx (nil
// when none). The instrumented facade path calls this once per
// operation; the disabled path (metrics off) never does.
func ReqStatsFrom(ctx context.Context) *ReqStats {
	rs, _ := ctx.Value(reqStatsKey{}).(*ReqStats)
	return rs
}
