package ccam

// Tests of the facade's MVCC surface: snapshot isolation across
// concurrent durable Apply traffic (checkpoints and WAL prunes
// included), the background incremental reorganizer's CRR recovery,
// and the planner catalog's incremental upkeep. Run with -race.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type edgeKey struct{ from, to NodeID }

// snapCosts reads the cost of each edge through the pinned snapshot.
func snapCosts(t *testing.T, snap *Snapshot, edges []Edge) map[edgeKey]float32 {
	t.Helper()
	out := make(map[edgeKey]float32, len(edges))
	for _, e := range edges {
		rec, err := snap.Find(e.From)
		if err != nil {
			t.Fatalf("snapshot Find(%d): %v", e.From, err)
		}
		found := false
		for _, sc := range rec.Succs {
			if sc.To == e.To {
				out[edgeKey{e.From, e.To}] = sc.Cost
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %d->%d missing from snapshot", e.From, e.To)
		}
	}
	return out
}

// TestSnapshotIsolationUnderConcurrentApply pins a snapshot, then runs
// four writers committing SetEdgeCost batches through the WAL with a
// checkpoint bound small enough that several checkpoints (and WAL
// prunes) fire inside the writers' Apply calls. The pinned reader must
// see its LSN-consistent view to completion: every re-read returns the
// pre-churn costs, a fresh snapshot sees the post-churn ones, and the
// version store drains once the pin is released.
func TestSnapshotIsolationUnderConcurrentApply(t *testing.T) {
	g := smallTestMap(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := Open(Options{
		PageSize: 1024, Path: path, WAL: true, Seed: 3,
		SyncPolicy: SyncGroupCommit, CheckpointBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()[:16]

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	baseline := snapCosts(t, snap, edges)
	pinnedLSN := snap.LSN()

	const writers, rounds = 4, 30
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + w)))
			for i := 0; i < rounds; i++ {
				b := new(Batch)
				for k := 0; k < 3; k++ {
					e := edges[rng.Intn(len(edges))]
					b.SetEdgeCost(e.From, e.To, baseline[edgeKey{e.From, e.To}]+float32(1+rng.Intn(500)))
				}
				if err := s.Apply(context.Background(), b); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	// The pinned reader races the writers: every re-read must return
	// the baseline, no matter how many batches commit, checkpoint and
	// prune the log underneath it.
	for i := 0; i < 100; i++ {
		for k, want := range snapCosts(t, snap, edges) {
			if want != baseline[k] {
				t.Fatalf("iteration %d: pinned snapshot sees edge %d->%d cost %v, want %v",
					i, k.from, k.to, want, baseline[k])
			}
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// An explicit checkpoint (flush + WAL prune) with the pin still
	// held must not free the pinned pre-images either.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for k, want := range snapCosts(t, snap, edges) {
		if want != baseline[k] {
			t.Fatalf("after checkpoint: pinned snapshot sees edge %d->%d cost %v, want %v",
				k.from, k.to, want, baseline[k])
		}
	}

	// A final deterministic batch pins down what a fresh snapshot must
	// see; the old pin keeps its view regardless.
	final := new(Batch)
	for _, e := range edges {
		final.SetEdgeCost(e.From, e.To, baseline[edgeKey{e.From, e.To}]+1000)
	}
	if err := s.Apply(context.Background(), final); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.LSN() <= pinnedLSN {
		t.Fatalf("fresh snapshot LSN %d not above pinned %d", fresh.LSN(), pinnedLSN)
	}
	for k, got := range snapCosts(t, fresh, edges) {
		if want := baseline[k] + 1000; got != want {
			t.Fatalf("fresh snapshot sees edge %d->%d cost %v, want %v", k.from, k.to, got, want)
		}
	}
	for k, got := range snapCosts(t, snap, edges) {
		if got != baseline[k] {
			t.Fatalf("pinned snapshot drifted on edge %d->%d: %v, want %v", k.from, k.to, got, baseline[k])
		}
	}

	// Releasing the pins advances the version floor to the newest
	// commit; every retained pre-image must be collected.
	snap.Close()
	fresh.Close()
	f := s.m.File()
	if entries, bytes := f.Pool().VersionStats(); entries != 0 || bytes != 0 {
		t.Fatalf("version store not drained after release: %d entries, %d bytes", entries, bytes)
	}
}

// TestReorganizerRecoversCRR decays the clustering with delete/reinsert
// churn and drives the background reorganizer by hand (Poke): it must
// recover at least half of the CRR the churn destroyed, through
// bounded incremental rounds only.
func TestReorganizerRecoversCRR(t *testing.T) {
	g := testMap(t)
	s, err := Open(Options{
		PageSize: 1024, Seed: 7, Metrics: true,
		BackgroundReorg: true,
		// The timer must not fire mid-test; every round comes from Poke.
		ReorgInterval:    time.Hour,
		ReorgMaxPages:    64,
		ReorgTriggerDrop: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	crr0 := s.CRR(g)
	// The first poke records the post-Build CRR as the high-water mark
	// (and is otherwise a no-op: nothing has decayed yet).
	s.Poke()
	if rounds := s.Metrics().Counter("ccam_reorg_rounds_total").Value(); rounds != 0 {
		t.Fatalf("reorganizer ran %d rounds on an undamaged placement", rounds)
	}

	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(13))
	// Each churn wave inserts foreign nodes wired to random existing
	// nodes — the growth overflows pages, and every split scatters
	// original records — then deletes them again. The map's own edges
	// are untouched, so CRR(g) measures pure placement decay. (Plain
	// delete/reinsert churn would not work: CCAM's connectivity-based
	// insert placement is itself an incremental re-clustering.)
	foreign := NodeID(1 << 20)
	churn := func(k int) {
		start := foreign
		for i := 0; i < k; i++ {
			id := foreign
			foreign++
			anchor := ids[rng.Intn(len(ids))]
			node, err := g.Node(anchor)
			if err != nil {
				t.Fatal(err)
			}
			rec := &Record{
				ID:    id,
				Pos:   node.Pos,
				Succs: []SuccEntry{{To: anchor, Cost: 1}},
				Preds: []NodeID{ids[rng.Intn(len(ids))]},
			}
			if err := s.Insert(&InsertOp{Rec: rec, PredCosts: []float32{1}}, FirstOrder); err != nil {
				t.Fatal(err)
			}
		}
		for id := start; id < foreign; id++ {
			if err := s.Delete(id, FirstOrder); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(len(ids))
	for tries := 0; s.CRR(g) > crr0-0.05 && tries < 6; tries++ {
		churn(len(ids) / 2)
	}
	crr1 := s.CRR(g)
	if crr1 > crr0-0.03 {
		t.Skipf("churn decayed CRR only %.4f -> %.4f; recovery margin too thin to assert", crr0, crr1)
	}

	target := crr1 + 0.5*(crr0-crr1)
	for i := 0; i < 80 && s.CRR(g) < target; i++ {
		s.Poke()
	}
	crr2 := s.CRR(g)
	if crr2 < target {
		t.Fatalf("reorganizer recovered CRR %.4f -> %.4f, want >= %.4f (build %.4f)", crr1, crr2, target, crr0)
	}
	reg := s.Metrics()
	if rounds := reg.Counter("ccam_reorg_rounds_total").Value(); rounds == 0 {
		t.Fatal("recovery asserted but no reorganization rounds ran")
	}
	if pages := reg.Counter("ccam_reorg_pages_total").Value(); pages == 0 {
		t.Fatal("reorganization rounds ran but touched no pages")
	}
	// The store must still hold the exact network after all the churn
	// and re-clustering.
	if s.Len() != g.NumNodes() {
		t.Fatalf("store has %d nodes after reorganization, want %d", s.Len(), g.NumNodes())
	}
}

// TestCatalogIncrementalMatchesRebuild churns the file through Apply —
// which folds each batch's deltas into the cached planner catalog —
// and checks the incrementally maintained statistics equal a from-
// scratch rebuild's.
func TestCatalogIncrementalMatchesRebuild(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 9})
	ids := g.NodeIDs()
	ctx := context.Background()
	// Build the catalog (first Query), then churn.
	if _, err := s.Query(ctx, fmt.Sprintf("FIND %d", ids[0])); err != nil {
		t.Fatal(err)
	}

	model := modelFromNetwork(g)
	rng := rand.New(rand.NewSource(17))
	nextID := NodeID(500000)
	for i := 0; i < 40; i++ {
		b, _ := genBatch(rng, model, &nextID)
		if b.Len() == 0 {
			continue
		}
		if err := s.Apply(ctx, b); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}

	s.catMu.Lock()
	incCat := s.cat
	s.catMu.Unlock()
	if incCat == nil {
		t.Fatal("catalog was dropped by Apply; incremental upkeep should keep it")
	}
	inc := incCat.Stats
	// The mirrors must match the file edge for edge, not just in the
	// aggregate: a relocation mis-folded as a deletion can leave the
	// totals right while the adjacency lists rot.
	if diffs := incCat.DebugDiff(s.m.File()); len(diffs) > 0 {
		t.Fatalf("incremental mirrors diverged from the file:\n%v", diffs)
	}

	s.invalidateCatalog()
	if _, err := s.Query(ctx, fmt.Sprintf("FIND %d", ids[1])); err != nil {
		t.Fatal(err)
	}
	s.catMu.Lock()
	full := s.cat.Stats
	s.catMu.Unlock()

	if inc.Nodes != full.Nodes || inc.Pages != full.Pages || inc.Spatial != full.Spatial {
		t.Fatalf("incremental catalog shape %+v != rebuilt %+v", inc, full)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"alpha", inc.Alpha, full.Alpha},
		{"avg_a", inc.AvgA, full.AvgA},
		{"lambda", inc.Lambda, full.Lambda},
		{"gamma", inc.Gamma, full.Gamma},
	} {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Fatalf("incremental %s = %v, rebuilt = %v", c.name, c.got, c.want)
		}
	}
}
