package ccam

import (
	"fmt"

	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// This file holds the facade side of the write-ahead log: replay of
// the committed tail at OpenPath time, and the read-only accessors
// that expose recovery results. The log format and the checkpoint
// protocol live in internal/storage; the logical mutation codec in
// internal/netfile.

// WALStats is a point-in-time view of the store's write-ahead log.
type WALStats struct {
	// Enabled reports whether the store logs its mutations.
	Enabled bool
	// AppendedLSN is the highest LSN written to the OS.
	AppendedLSN uint64
	// DurableLSN is the highest LSN known fsynced.
	DurableLSN uint64
	// SizeBytes is the current on-disk size of the log segments.
	SizeBytes int64
	// Fsyncs is the number of fsyncs the log has issued and
	// GroupedCommits the number of commits those fsyncs acknowledged;
	// their ratio is the mean group-commit size. Counted even when the
	// metrics registry is disabled.
	Fsyncs         int64
	GroupedCommits int64
	// ReplayedBatches and ReplayedMutations count what OpenPath
	// recovered from the log tail when this store was opened.
	ReplayedBatches   int
	ReplayedMutations int
}

// WALStats returns the current state of the store's write-ahead log;
// Enabled is false (and everything zero) without one.
func (s *Store) WALStats() WALStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := WALStats{
		ReplayedBatches:   s.replayedBatches,
		ReplayedMutations: s.replayedMutations,
	}
	if s.wal == nil {
		return st
	}
	st.Enabled = true
	st.AppendedLSN = s.wal.AppendedLSN()
	st.DurableLSN = s.wal.DurableLSN()
	st.SizeBytes = s.wal.Size()
	st.Fsyncs, st.GroupedCommits = s.wal.FsyncStats()
	return st
}

// replayWAL re-executes every committed batch whose commit record has
// an LSN past `after` (the end of the checkpoint the data file was
// restored to). Batches are re-applied in log order through the access
// method, so the logical state — nodes, successor lists, edge costs —
// converges to exactly the committed prefix; physical placement may
// differ from the pre-crash file (reorganization re-runs), which the
// paper's cost model is indifferent to. Unterminated batches (a torn
// tail) and aborted batches are discarded; split/merge records are
// skipped because replaying the surrounding logical mutations
// re-triggers the reorganization policies.
func replayWAL(m netfile.AccessMethod, f *netfile.File, recs []storage.WALRecord, after uint64) (batches, mutations int, err error) {
	var pending []*netfile.Mutation
	inBatch := false
	for _, r := range recs {
		if r.LSN <= after {
			continue
		}
		switch r.Type {
		case storage.WALRecBegin:
			pending = pending[:0]
			inBatch = true
		case storage.WALRecMutation:
			if !inBatch {
				continue
			}
			mut, derr := netfile.DecodeMutation(r.Payload)
			if derr != nil {
				return batches, mutations, fmt.Errorf("lsn %d: %w", r.LSN, derr)
			}
			pending = append(pending, mut)
		case storage.WALRecAbort:
			pending = pending[:0]
			inBatch = false
		case storage.WALRecCommit:
			if !inBatch {
				continue
			}
			for _, mut := range pending {
				if aerr := replayMutation(m, f, mut); aerr != nil {
					return batches, mutations, fmt.Errorf("commit lsn %d, %s: %w", r.LSN, mut.Kind, aerr)
				}
				mutations++
			}
			batches++
			pending = pending[:0]
			inBatch = false
		default:
			// Checkpoint records (page images, alloc state, end marker)
			// only occur at or before `after`; tolerate strays.
		}
	}
	return batches, mutations, nil
}

// replayMutation re-executes one logical mutation. Replay uses the
// FirstOrder policy: the reorganization policy affects placement
// quality, never logical contents, and the cheapest policy keeps
// recovery fast.
func replayMutation(m netfile.AccessMethod, f *netfile.File, mut *netfile.Mutation) error {
	switch mut.Kind {
	case netfile.MutInsertNode:
		return m.Insert(&netfile.InsertOp{Rec: mut.Rec, PredCosts: mut.PredCosts}, netfile.FirstOrder)
	case netfile.MutDeleteNode:
		return m.Delete(mut.ID, netfile.FirstOrder)
	case netfile.MutInsertEdge:
		return m.InsertEdge(mut.From, mut.To, mut.Cost, netfile.FirstOrder)
	case netfile.MutDeleteEdge:
		return m.DeleteEdge(mut.From, mut.To, netfile.FirstOrder)
	case netfile.MutSetEdgeCost:
		return f.SetEdgeCost(mut.From, mut.To, mut.Cost)
	case netfile.MutSplitPage, netfile.MutMergePages:
		return nil
	default:
		return fmt.Errorf("ccam: unknown mutation kind %d", mut.Kind)
	}
}
