package ccam

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachLimit runs fn(0..n-1) on up to `workers` goroutines, stopping
// at the first error or context cancellation and returning it. Work is
// handed out through an atomic cursor, so cheap items don't wait on
// expensive ones.
func forEachLimit(ctx context.Context, n, workers int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// FindBatch retrieves the records of every id, fanning the lookups
// across a worker pool bounded by Options.Parallelism (default
// runtime.GOMAXPROCS(0)). Results are positional: out[i] is the record
// of ids[i]. The first lookup error, or a context cancellation, stops
// the remaining work and is returned; partial results are discarded.
func (s *Store) FindBatch(ctx context.Context, ids []NodeID) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	run := func() ([]*Record, error) {
		out := make([]*Record, len(ids))
		err := forEachLimit(ctx, len(ids), s.parallelism, func(i int) error {
			rec, err := f.Find(ids[i])
			if err != nil {
				return err
			}
			out[i] = rec
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.findBatch, f)
		out, err := run()
		sn.end(err)
		return out, err
	}
	return run()
}

// EvaluateRoutes evaluates every route, fanning the evaluations across
// a worker pool bounded by Options.Parallelism (default
// runtime.GOMAXPROCS(0)). Results are positional: out[i] is the
// aggregate of routes[i]. The first evaluation error, or a context
// cancellation, stops the remaining work and is returned.
func (s *Store) EvaluateRoutes(ctx context.Context, routes []Route) ([]RouteAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	run := func() ([]RouteAggregate, error) {
		out := make([]RouteAggregate, len(routes))
		err := forEachLimit(ctx, len(routes), s.parallelism, func(i int) error {
			agg, err := f.EvaluateRoute(routes[i])
			if err != nil {
				return err
			}
			out[i] = agg
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateRoutes, f)
		out, err := run()
		sn.end(err)
		return out, err
	}
	return run()
}

// RangeQueryCtx is RangeQuery with cooperative cancellation: the
// context is checked before each candidate record fetch, so canceling
// it stops the index scan without paying for the remaining page reads.
func (s *Store) RangeQueryCtx(ctx context.Context, rect Rect) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	return f.RangeQueryCtx(ctx, rect)
}
