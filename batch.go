package ccam

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// forEachLimit runs fn(0..n-1) on up to `workers` goroutines, stopping
// at the first error or context cancellation and returning it. Work is
// handed out through an atomic cursor, so cheap items don't wait on
// expensive ones.
func forEachLimit(ctx context.Context, n, workers int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// FindBatch retrieves the records of every id, fanning the lookups
// across a worker pool bounded by Options.Parallelism (default
// runtime.GOMAXPROCS(0)). Results are positional: out[i] is the record
// of ids[i]. The first lookup error, or a context cancellation, stops
// the remaining work and is returned; partial results are discarded.
func (s *Store) FindBatch(ctx context.Context, ids []NodeID) ([]*Record, error) {
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	run := func() ([]*Record, error) {
		out := make([]*Record, len(ids))
		err := forEachLimit(ctx, len(ids), s.parallelism, func(i int) error {
			rec, err := v.find(ids[i])
			if err != nil {
				return err
			}
			out[i] = rec
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.findBatch, v.f)
		out, err := run()
		sn.end(err)
		return out, err
	}
	return run()
}

// EvaluateRoutes evaluates every route, fanning the evaluations across
// a worker pool bounded by Options.Parallelism (default
// runtime.GOMAXPROCS(0)). Results are positional: out[i] is the
// aggregate of routes[i]. The first evaluation error, or a context
// cancellation, stops the remaining work and is returned.
func (s *Store) EvaluateRoutes(ctx context.Context, routes []Route) ([]RouteAggregate, error) {
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	run := func() ([]RouteAggregate, error) {
		out := make([]RouteAggregate, len(routes))
		err := forEachLimit(ctx, len(routes), s.parallelism, func(i int) error {
			agg, err := v.evaluateRoute(routes[i])
			if err != nil {
				return err
			}
			out[i] = agg
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.evaluateRoutes, v.f)
		out, err := run()
		sn.end(err)
		return out, err
	}
	return run()
}

// defaultCheckpointBytes bounds the WAL between automatic checkpoints
// (Options.CheckpointBytes overrides it).
const defaultCheckpointBytes = 4 << 20

// Batch accumulates mutations for one atomic Apply. The builder
// methods return the batch, so one-op batches read as
// new(Batch).Insert(op, policy). A Batch is not safe for concurrent
// mutation and must not be reused across Apply calls that failed.
type Batch struct {
	ops []batchOp
}

// batchOp is one queued mutation; kind selects which fields matter.
type batchOp struct {
	kind     netfile.MutKind
	insert   *InsertOp
	id       NodeID
	from, to NodeID
	cost     float32
	policy   Policy
}

// Insert queues a node insertion under the given policy.
func (b *Batch) Insert(op *InsertOp, policy Policy) *Batch {
	b.ops = append(b.ops, batchOp{kind: netfile.MutInsertNode, insert: op, policy: policy})
	return b
}

// Delete queues a node deletion under the given policy.
func (b *Batch) Delete(id NodeID, policy Policy) *Batch {
	b.ops = append(b.ops, batchOp{kind: netfile.MutDeleteNode, id: id, policy: policy})
	return b
}

// InsertEdge queues a directed-edge insertion under the given policy.
func (b *Batch) InsertEdge(from, to NodeID, cost float32, policy Policy) *Batch {
	b.ops = append(b.ops, batchOp{kind: netfile.MutInsertEdge, from: from, to: to, cost: cost, policy: policy})
	return b
}

// DeleteEdge queues a directed-edge deletion under the given policy.
func (b *Batch) DeleteEdge(from, to NodeID, policy Policy) *Batch {
	b.ops = append(b.ops, batchOp{kind: netfile.MutDeleteEdge, from: from, to: to, policy: policy})
	return b
}

// SetEdgeCost queues an in-place edge cost update.
func (b *Batch) SetEdgeCost(from, to NodeID, cost float32) *Batch {
	b.ops = append(b.ops, batchOp{kind: netfile.MutSetEdgeCost, from: from, to: to, cost: cost})
	return b
}

// Len returns the number of queued operations.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.ops)
}

// mutation returns the WAL form of the op.
func (op *batchOp) mutation() *netfile.Mutation {
	m := &netfile.Mutation{Kind: op.kind, ID: op.id, From: op.from, To: op.to, Cost: op.cost}
	if op.kind == netfile.MutInsertNode {
		m.Rec = op.insert.Rec
		m.PredCosts = op.insert.PredCosts
	}
	return m
}

// Apply commits every operation of the batch atomically: either all of
// them take effect or none do. The batch is validated against the
// current contents first (duplicate nodes, missing endpoints, absent
// edges are rejected with ErrNodeExists / ErrNotFound / ErrEdgeExists
// / ErrEdgeMissing before anything is logged or modified). With a WAL
// the batch is bracketed by begin/commit records and acknowledged only
// once its commit record is durable under the store's sync policy;
// concurrent Apply calls coalesce their fsyncs (group commit).
//
// A post-validation failure mid-batch (an I/O error, or a fault
// injected by tests) aborts the batch in the log and poisons the
// store: every later call fails until the store is reopened, and
// recovery restores exactly the previously committed state. Readers
// may observe a committed-in-memory batch shortly before its commit
// record is durable (read uncommitted durability, the standard group
// commit trade).
//
// Apply takes only the store's writer lock, which snapshot queries do
// not share: a reader that pinned its snapshot before the commit keeps
// resolving the pre-batch page versions and placements for as long as
// it runs, and a reader arriving mid-batch pins the previous commit —
// neither waits on the batch's page I/O, its in-lock checkpoint or its
// group-commit fsync. The batch's pre-images are captured into the
// buffer pool's version chains (BeginVersionBatch) and published
// atomically at the commit LSN (PublishVersionBatch).
func (s *Store) Apply(ctx context.Context, b *Batch) error {
	if b.Len() == 0 {
		return ctx.Err()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if err := s.failedErr(); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return err
	}
	f := s.m.File()
	if f == nil {
		// Pre-Build there is no file and no WAL; dispatch directly so
		// each access method's own "before Build" error surfaces.
		err := s.applyUnbuilt(b)
		s.mu.Unlock()
		return err
	}
	if err := s.validateBatch(f, b); err != nil {
		s.mu.Unlock()
		return err
	}
	var applySnap opSnap
	if s.obs != nil {
		applySnap = s.obs.beginOpCtx(ctx, s.obs.apply, f)
	}
	w := f.WAL()
	if w != nil {
		if _, err := w.Append(storage.WALRecBegin, nil); err != nil {
			if s.obs != nil {
				applySnap.end(err)
			}
			s.mu.Unlock()
			return err
		}
	}
	// From here on the batch mutates pages: capture pre-images and
	// placement changes so snapshot readers keep the pre-batch view
	// until the commit publishes.
	f.BeginVersionBatch()
	var applyErr error
	catOps := make([]catDelta, 0, len(b.ops))
	for i := range b.ops {
		op := &b.ops[i]
		if s.applyFaultHook != nil {
			if err := s.applyFaultHook(i); err != nil {
				applyErr = fmt.Errorf("ccam: apply op %d: %w", i, err)
				break
			}
		}
		if w != nil {
			// Log the logical mutation before touching any page
			// (WAL-before-data); reorganizations triggered by the op log
			// their own split/merge records after it.
			if err := f.LogMutation(op.mutation()); err != nil {
				applyErr = err
				break
			}
		}
		if err := s.applyOp(f, op); err != nil {
			applyErr = fmt.Errorf("ccam: apply op %d: %w", i, err)
			break
		}
		// Drain the op's placement events: the CRR/WCRR gauges update
		// incrementally here, and the planner-catalog delta is buffered
		// until the commit LSN is known.
		evs := f.TakePlacementEvents()
		if s.obs != nil {
			s.obs.applyPlaceEvents(evs)
		}
		catOps = append(catOps, catDelta{op: op, evs: evs})
	}
	if applyErr != nil {
		if w != nil {
			w.Append(storage.WALRecAbort, nil) // best effort; recovery ignores unterminated batches too
		}
		// The aborted batch's pre-images stay pending in the version
		// chains, so any still-pinned reader keeps a committed view of
		// the half-mutated pages; the poison below makes the torn live
		// state unreachable until reopen.
		f.AbortVersionBatch()
		s.poison(fmt.Errorf("%w: mid-batch apply failure, reopen to recover: %v", ErrClosed, applyErr))
		if s.obs != nil {
			applySnap.end(applyErr)
		}
		s.mu.Unlock()
		return applyErr
	}
	var commitLSN uint64
	if w != nil {
		lsn, err := w.Append(storage.WALRecCommit, nil)
		if err != nil {
			f.AbortVersionBatch()
			s.poison(fmt.Errorf("%w: wal commit append failed, reopen to recover: %v", ErrClosed, err))
			if s.obs != nil {
				applySnap.end(err)
			}
			s.mu.Unlock()
			return err
		}
		commitLSN = lsn
	}
	// Publish before the checkpoint: the checkpoint executes deferred
	// page frees, which must find the freed pages' committed images
	// already stamped in the version chains.
	lsn := f.PublishVersionBatch(commitLSN)
	if w != nil && s.checkpointBytes > 0 && w.Size() > s.checkpointBytes {
		if err := f.Checkpoint(); err != nil {
			s.poison(fmt.Errorf("%w: checkpoint failed, reopen to recover: %v", ErrClosed, err))
			if s.obs != nil {
				applySnap.end(err)
			}
			s.mu.Unlock()
			return err
		}
	}
	// Fold the batch into the planner's catalog (if one is built) and
	// publish the refreshed gauges; both are O(batch), not a rescan.
	s.applyCatalogDeltas(f, lsn, catOps)
	if s.obs != nil {
		applySnap.end(nil)
		s.obs.setGauges()
		s.obs.setSnapshotGauges(f)
	}
	s.mu.Unlock()
	if w != nil {
		// The commit fsync runs outside the store lock so concurrent
		// committers coalesce into one fsync (group commit). The wait is
		// measured from the committing request's perspective — group
		// formation plus fsync — and charged to the request's ReqStats
		// and the ccam_wal_commit_wait_ns histogram (see DESIGN.md on why
		// the request, not the fsync leader, owns this time).
		var commitStart time.Time
		if s.obs != nil {
			commitStart = time.Now()
		}
		err := w.Commit(commitLSN)
		if s.obs != nil {
			waitNs := time.Since(commitStart).Nanoseconds()
			s.obs.walCommitWait.Observe(waitNs)
			if applySnap.rs != nil {
				applySnap.rs.WALWaitNs += waitNs
			}
		}
		if err != nil {
			s.poison(fmt.Errorf("%w: wal commit failed, reopen to recover: %v", ErrClosed, err))
			return err
		}
	}
	return nil
}

// applyUnbuilt dispatches a batch on a store whose file does not exist
// yet; the first op returns the access method's pre-Build error.
func (s *Store) applyUnbuilt(b *Batch) error {
	for i := range b.ops {
		op := &b.ops[i]
		var err error
		switch op.kind {
		case netfile.MutInsertNode:
			err = s.m.Insert(op.insert, op.policy)
		case netfile.MutDeleteNode:
			err = s.m.Delete(op.id, op.policy)
		case netfile.MutInsertEdge:
			err = s.m.InsertEdge(op.from, op.to, op.cost, op.policy)
		case netfile.MutDeleteEdge:
			err = s.m.DeleteEdge(op.from, op.to, op.policy)
		case netfile.MutSetEdgeCost:
			err = fmt.Errorf("ccam: store is empty; call Build first")
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// applyOp applies one validated op to the in-memory/file state, with
// per-operation metric attribution and topology-mirror upkeep.
func (s *Store) applyOp(f *netfile.File, op *batchOp) error {
	var sn opSnap
	if s.obs != nil {
		sn = s.obs.beginOp(s.obs.opFor(op.kind), f)
	}
	var err error
	switch op.kind {
	case netfile.MutInsertNode:
		err = s.m.Insert(op.insert, op.policy)
	case netfile.MutDeleteNode:
		err = s.m.Delete(op.id, op.policy)
	case netfile.MutInsertEdge:
		err = s.m.InsertEdge(op.from, op.to, op.cost, op.policy)
	case netfile.MutDeleteEdge:
		err = s.m.DeleteEdge(op.from, op.to, op.policy)
	case netfile.MutSetEdgeCost:
		err = f.SetEdgeCost(op.from, op.to, op.cost)
	default:
		err = fmt.Errorf("ccam: unknown batch op kind %d", op.kind)
	}
	if s.obs != nil {
		sn.end(err)
		if err == nil {
			switch op.kind {
			case netfile.MutInsertNode:
				s.obs.noteInsert(op.insert)
			case netfile.MutDeleteNode:
				s.obs.noteDelete(op.id)
			case netfile.MutInsertEdge:
				s.obs.addMirrorEdge(op.from, op.to, 1)
			case netfile.MutDeleteEdge:
				s.obs.removeMirrorEdge(op.from, op.to)
			}
		}
	}
	return err
}

// catDelta is one applied batch op together with the placement events
// it produced, buffered so the planner catalog can be updated after
// the commit LSN is known (the catalog may also not exist yet — it is
// built lazily by Query — in which case the buffered deltas are simply
// dropped; a catalog built later, from a snapshot at a newer LSN,
// already includes them).
type catDelta struct {
	op  *batchOp
	evs []netfile.PlaceEvent
}

// applyCatalogDeltas folds a committed batch into the planner catalog:
// placement moves first (so edge sameness recomputes against the new
// pages), then the op's logical change. The catLSN guard skips batches
// the catalog's build snapshot already contained.
func (s *Store) applyCatalogDeltas(f *netfile.File, lsn uint64, ds []catDelta) {
	s.catMu.Lock()
	defer s.catMu.Unlock()
	if s.cat == nil || lsn <= s.catLSN {
		return
	}
	for i := range ds {
		d := &ds[i]
		if d.op.kind == netfile.MutDeleteNode {
			// Delete first, while the node's placement is still mirrored,
			// so the incident edges unwind exactly; the tombstone event
			// below is then a no-op.
			s.cat.DeleteNode(d.op.id)
		}
		// A record relocated by the op (page split, shrink compaction)
		// surfaces as a tombstone followed by a fresh placement, so
		// only each node's final event is real: acting on the interim
		// tombstone would drop the node's mirrored adjacency for good.
		final := make(map[NodeID]storage.PageID, len(d.evs))
		order := make([]NodeID, 0, len(d.evs))
		for _, ev := range d.evs {
			if _, ok := final[ev.ID]; !ok {
				order = append(order, ev.ID)
			}
			final[ev.ID] = ev.Page
		}
		for _, id := range order {
			if pid := final[id]; pid == storage.InvalidPageID {
				if s.cat.Has(id) {
					s.cat.DeleteNode(id)
				}
			} else {
				s.cat.MoveNode(id, pid)
			}
		}
		switch d.op.kind {
		case netfile.MutInsertNode:
			s.cat.InsertNode(d.op.insert)
		case netfile.MutInsertEdge:
			s.cat.AddEdge(d.op.from, d.op.to, d.op.cost)
		case netfile.MutDeleteEdge:
			s.cat.RemoveEdge(d.op.from, d.op.to)
		case netfile.MutSetEdgeCost:
			s.cat.SetEdgeCost(d.op.from, d.op.to, d.op.cost)
		}
	}
	s.cat.RefreshStats(f.NumPages())
	s.catLSN = lsn
}

// batchValidator checks a batch against the stored contents plus the
// effects of the batch's earlier ops, so validation errors surface
// before anything is logged or modified (that is what makes Apply
// all-or-nothing without an undo log: a validated op can only fail for
// environmental reasons, which poison the store instead).
type batchValidator struct {
	f *netfile.File
	// nodes caches node existence; entries are overwritten by the
	// batch's own inserts/deletes.
	nodes map[NodeID]bool
	// fresh marks nodes created by this batch: every edge they have is
	// in edges, so missing entries mean "no such edge" without a file
	// read.
	fresh map[NodeID]bool
	// edges caches directed-edge existence, batch effects included.
	edges map[[2]NodeID]bool
}

func (v *batchValidator) nodeExists(id NodeID) (bool, error) {
	if e, ok := v.nodes[id]; ok {
		return e, nil
	}
	ok, err := v.f.HasRecord(id)
	if err != nil {
		return false, err
	}
	v.nodes[id] = ok
	return ok, nil
}

func (v *batchValidator) edgeExists(from, to NodeID) (bool, error) {
	key := [2]NodeID{from, to}
	if e, ok := v.edges[key]; ok {
		return e, nil
	}
	if v.fresh[from] {
		return false, nil
	}
	rec, err := v.f.Find(from)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	ok := rec.HasSucc(to)
	v.edges[key] = ok
	return ok, nil
}

func (s *Store) validateBatch(f *netfile.File, b *Batch) error {
	v := &batchValidator{
		f:     f,
		nodes: make(map[NodeID]bool),
		fresh: make(map[NodeID]bool),
		edges: make(map[[2]NodeID]bool),
	}
	for i := range b.ops {
		op := &b.ops[i]
		if err := v.validateOp(op); err != nil {
			return fmt.Errorf("ccam: batch op %d: %w", i, err)
		}
	}
	return nil
}

func (v *batchValidator) validateOp(op *batchOp) error {
	switch op.kind {
	case netfile.MutInsertNode:
		if op.insert == nil {
			return fmt.Errorf("nil insert op")
		}
		if err := op.insert.Validate(); err != nil {
			return err
		}
		rec := op.insert.Rec
		if ok, err := v.nodeExists(rec.ID); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("insert node %d: %w", rec.ID, ErrNodeExists)
		}
		for _, sc := range rec.Succs {
			if ok, err := v.nodeExists(sc.To); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("insert node %d: successor %d: %w", rec.ID, sc.To, ErrNotFound)
			}
		}
		for _, p := range rec.Preds {
			if ok, err := v.nodeExists(p); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("insert node %d: predecessor %d: %w", rec.ID, p, ErrNotFound)
			}
		}
		v.nodes[rec.ID] = true
		v.fresh[rec.ID] = true
		for _, sc := range rec.Succs {
			v.edges[[2]NodeID{rec.ID, sc.To}] = true
		}
		for _, p := range rec.Preds {
			v.edges[[2]NodeID{p, rec.ID}] = true
		}
		return nil
	case netfile.MutDeleteNode:
		if ok, err := v.nodeExists(op.id); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("delete node %d: %w", op.id, ErrNotFound)
		}
		// Record the incident edges the delete removes, so later edge
		// ops in the batch see them gone.
		if !v.fresh[op.id] {
			rec, err := v.f.Find(op.id)
			if err != nil {
				return err
			}
			for _, sc := range rec.Succs {
				v.edges[[2]NodeID{op.id, sc.To}] = false
			}
			for _, p := range rec.Preds {
				v.edges[[2]NodeID{p, op.id}] = false
			}
		} else {
			for key := range v.edges {
				if key[0] == op.id || key[1] == op.id {
					v.edges[key] = false
				}
			}
		}
		v.nodes[op.id] = false
		delete(v.fresh, op.id)
		return nil
	case netfile.MutInsertEdge:
		if err := v.requireNodes(op.from, op.to); err != nil {
			return err
		}
		if ok, err := v.edgeExists(op.from, op.to); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("insert edge %d->%d: %w", op.from, op.to, ErrEdgeExists)
		}
		v.edges[[2]NodeID{op.from, op.to}] = true
		return nil
	case netfile.MutDeleteEdge:
		if err := v.requireNodes(op.from, op.to); err != nil {
			return err
		}
		if ok, err := v.edgeExists(op.from, op.to); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("delete edge %d->%d: %w", op.from, op.to, ErrEdgeMissing)
		}
		v.edges[[2]NodeID{op.from, op.to}] = false
		return nil
	case netfile.MutSetEdgeCost:
		if err := v.requireNodes(op.from, op.to); err != nil {
			return err
		}
		if ok, err := v.edgeExists(op.from, op.to); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("set edge cost %d->%d: %w", op.from, op.to, ErrEdgeMissing)
		}
		return nil
	default:
		return fmt.Errorf("unknown batch op kind %d", op.kind)
	}
}

func (v *batchValidator) requireNodes(from, to NodeID) error {
	if ok, err := v.nodeExists(from); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("node %d: %w", from, ErrNotFound)
	}
	if ok, err := v.nodeExists(to); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("node %d: %w", to, ErrNotFound)
	}
	return nil
}
