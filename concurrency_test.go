package ccam

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// builtStore opens a store over the small test map and loads it.
func builtStore(t *testing.T, opts Options) (*Store, *Network) {
	t.Helper()
	g := testMap(t)
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	return s, g
}

// TestConcurrentReaders races the full query surface — Find,
// GetSuccessors, EvaluateRoute, RangeQuery, Nearest, Has — across 8
// goroutines and checks every result for correctness, not just the
// absence of errors. Run with -race to verify the read path shares the
// store without data races.
func TestConcurrentReaders(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 5})
	ids := g.NodeIDs()
	routes, err := RandomWalkRoutes(g, 32, 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	bb := g.Bounds()
	window := NewRect(
		Point{X: bb.Min.X + bb.Width()*0.3, Y: bb.Min.Y + bb.Height()*0.3},
		Point{X: bb.Min.X + bb.Width()*0.7, Y: bb.Min.Y + bb.Height()*0.7},
	)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 150; i++ {
				switch i % 5 {
				case 0:
					id := ids[rng.Intn(len(ids))]
					rec, err := s.Find(context.Background(), id)
					if err != nil {
						errCh <- err
						return
					}
					if rec.ID != id {
						errCh <- errors.New("Find returned wrong record")
						return
					}
				case 1:
					id := ids[rng.Intn(len(ids))]
					succs, err := s.GetSuccessors(context.Background(), id)
					if err != nil {
						errCh <- err
						return
					}
					if len(succs) != len(g.SuccessorEdges(id)) {
						errCh <- errors.New("GetSuccessors returned wrong count")
						return
					}
				case 2:
					r := routes[rng.Intn(len(routes))]
					agg, err := s.EvaluateRoute(context.Background(), r)
					if err != nil {
						errCh <- err
						return
					}
					if agg.Nodes != len(r) {
						errCh <- errors.New("EvaluateRoute returned wrong node count")
						return
					}
				case 3:
					recs, err := s.RangeQuery(context.Background(), window)
					if err != nil {
						errCh <- err
						return
					}
					for _, rec := range recs {
						if !window.Contains(rec.Pos) {
							errCh <- errors.New("RangeQuery returned record outside window")
							return
						}
					}
				case 4:
					id := ids[rng.Intn(len(ids))]
					ok, err := s.Has(context.Background(), id)
					if err != nil {
						errCh <- err
						return
					}
					if !ok {
						errCh <- errors.New("Has reported a stored node absent")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestReadersWithWriter races parallel readers against a writer that
// churns one node (Delete + Insert under the second-order policy) and
// refreshes edge costs. Readers avoid the churned node, so every read
// must succeed even while pages reorganize underneath them.
func TestReadersWithWriter(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 6})
	ids := g.NodeIDs()
	churn := ids[len(ids)/2]
	stable := make([]NodeID, 0, len(ids)-1)
	for _, id := range ids {
		if id != churn {
			stable = append(stable, id)
		}
	}
	all, err := RandomWalkRoutes(g, 64, 6, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var routes []Route
	for _, r := range all {
		hitsChurn := false
		for _, id := range r {
			if id == churn {
				hitsChurn = true
				break
			}
		}
		if !hitsChurn {
			routes = append(routes, r)
		}
	}
	if len(routes) == 0 {
		t.Fatal("no routes avoid the churned node; enlarge the map")
	}
	var safeEdge Edge
	found := false
	for _, e := range g.Edges() {
		if e.From != churn && e.To != churn {
			safeEdge, found = e, true
			break
		}
	}
	if !found {
		t.Fatal("no edge avoids the churned node")
	}
	bb := g.Bounds()
	window := NewRect(
		Point{X: bb.Min.X, Y: bb.Min.Y},
		Point{X: bb.Min.X + bb.Width()*0.5, Y: bb.Min.Y + bb.Height()*0.5},
	)

	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	// Writer: churn one node and refresh a travel time, 40 rounds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			op, err := InsertOpFromNode(g, churn)
			if err != nil {
				errCh <- err
				return
			}
			if err := s.Delete(churn, SecondOrder); err != nil {
				errCh <- err
				return
			}
			if err := s.Insert(op, SecondOrder); err != nil {
				errCh <- err
				return
			}
			if err := s.SetEdgeCost(safeEdge.From, safeEdge.To, float32(safeEdge.Cost)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < 120; i++ {
				switch i % 3 {
				case 0:
					id := stable[rng.Intn(len(stable))]
					rec, err := s.Find(context.Background(), id)
					if err != nil {
						errCh <- err
						return
					}
					if rec.ID != id {
						errCh <- errors.New("Find returned wrong record during churn")
						return
					}
				case 1:
					r := routes[rng.Intn(len(routes))]
					if _, err := s.EvaluateRoute(context.Background(), r); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, err := s.RangeQuery(context.Background(), window); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The file must still be exact after the churn.
	if s.Len() != g.NumNodes() {
		t.Fatalf("store has %d nodes, want %d", s.Len(), g.NumNodes())
	}
}

func TestFindBatch(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 3, Parallelism: 4})
	ids := g.NodeIDs()
	recs, err := s.FindBatch(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ids) {
		t.Fatalf("got %d records, want %d", len(recs), len(ids))
	}
	for i, rec := range recs {
		if rec == nil || rec.ID != ids[i] {
			t.Fatalf("recs[%d] is not the record of node %d", i, ids[i])
		}
	}
	// An unknown id stops the batch with ErrNotFound.
	bad := append([]NodeID{}, ids[:4]...)
	bad = append(bad, 1<<30)
	if _, err := s.FindBatch(context.Background(), bad); !errors.Is(err, ErrNotFound) {
		t.Fatalf("batch with unknown id: got %v, want ErrNotFound", err)
	}
	// The empty batch is a no-op.
	empty, err := s.FindBatch(context.Background(), nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: got %v, %v", empty, err)
	}
}

func TestFindBatchCancellation(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 3})
	ids := g.NodeIDs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.FindBatch(ctx, ids); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled FindBatch: got %v, want context.Canceled", err)
	}
	if _, err := s.EvaluateRoutes(ctx, []Route{{ids[0]}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled EvaluateRoutes: got %v, want context.Canceled", err)
	}
}

func TestEvaluateRoutesMatchesSerial(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 4, Parallelism: 8})
	routes, err := RandomWalkRoutes(g, 24, 10, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.EvaluateRoutes(context.Background(), routes)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range routes {
		want, err := s.EvaluateRoute(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("route %d: batch %+v != serial %+v", i, batch[i], want)
		}
	}
}

func TestRangeQueryCtx(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 4})
	bb := g.Bounds()
	window := NewRect(bb.Min, Point{X: bb.Min.X + bb.Width()*0.6, Y: bb.Min.Y + bb.Height()*0.6})
	want, err := s.RangeQuery(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RangeQuery(context.Background(), window)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RangeQueryCtx returned %d records, RangeQuery %d", len(got), len(want))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RangeQuery(ctx, window); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RangeQueryCtx: got %v, want context.Canceled", err)
	}
}

// TestOpenWithMatchesOpen verifies the functional options produce a
// store identical to the equivalent Options struct: same placement,
// page count and record count.
func TestOpenWithMatchesOpen(t *testing.T) {
	g := testMap(t)
	a, err := Open(Options{PageSize: 1024, PoolPages: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenWith(WithPageSize(1024), WithPoolPages(8), WithSeed(21), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Build(g); err != nil {
		t.Fatal(err)
	}
	if err := b.Build(g); err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.NumPages() != b.NumPages() {
		t.Fatalf("stores differ: %d/%d nodes, %d/%d pages", a.Len(), b.Len(), a.NumPages(), b.NumPages())
	}
	pa, pb := a.Placement(), b.Placement()
	if len(pa) != len(pb) {
		t.Fatalf("placements differ in size: %d vs %d", len(pa), len(pb))
	}
	for id, pid := range pa {
		if pb[id] != pid {
			t.Fatalf("node %d placed on page %d vs %d", id, pid, pb[id])
		}
	}
}

func TestHasSurfacesErrors(t *testing.T) {
	s, err := Open(Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Unbuilt store: Has errors, Contains stays a quiet false.
	if _, err := s.Has(context.Background(), 1); err == nil {
		t.Fatal("Has on unbuilt store returned nil error")
	}
	if s.Contains(1) {
		t.Fatal("Contains on unbuilt store returned true")
	}
	g := testMap(t)
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	id := g.NodeIDs()[0]
	if ok, err := s.Has(context.Background(), id); err != nil || !ok {
		t.Fatalf("Has(%d) = %v, %v; want true, nil", id, ok, err)
	}
	if ok, err := s.Has(context.Background(), 1<<30); err != nil || ok {
		t.Fatalf("Has(missing) = %v, %v; want false, nil", ok, err)
	}
}

func TestIOStatsString(t *testing.T) {
	s, g := builtStore(t, Options{PageSize: 1024, Seed: 2})
	if _, err := s.Find(context.Background(), g.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}
	got := s.IO().String()
	for _, want := range []string{"reads=", "writes=", "allocs=", "frees=", "total="} {
		if !strings.Contains(got, want) {
			t.Fatalf("IOStats.String() = %q, missing %q", got, want)
		}
	}
}
