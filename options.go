package ccam

import "time"

// Option is a functional configuration knob for OpenWith. Each With*
// function edits one field of an Options value, so new knobs can be
// added without growing call sites. Open(Options) remains the stable,
// fully-spelled-out form; OpenWith(opts...) is sugar over it and the
// two produce identical stores for equivalent settings.
type Option func(*Options)

// WithPageSize sets the disk block size in bytes (default 2048).
func WithPageSize(n int) Option { return func(o *Options) { o.PageSize = n } }

// WithPoolPages sets the buffer pool capacity in pages (default 32).
func WithPoolPages(n int) Option { return func(o *Options) { o.PoolPages = n } }

// WithPoolShards splits the buffer pool into n independently latched
// shards (0 or 1 keeps the single-latch pool). AutoPoolShards picks a
// value from the machine's parallelism.
func WithPoolShards(n int) Option { return func(o *Options) { o.PoolShards = n } }

// WithPrefetch enables connectivity-aware prefetching of PAG-adjacent
// data pages with the given worker count (0 selects the default).
func WithPrefetch(workers int) Option {
	return func(o *Options) {
		o.Prefetch = true
		o.PrefetchWorkers = workers
	}
}

// WithDynamic selects the incremental create (CCAM-D).
func WithDynamic() Option { return func(o *Options) { o.Dynamic = true } }

// WithSeed sets the partitioner seed; equal seeds give identical files.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithPath stores data pages in an os.File-backed page store at path
// instead of in memory.
func WithPath(path string) Option { return func(o *Options) { o.Path = path } }

// WithSpatial selects the secondary spatial index structure.
func WithSpatial(kind SpatialIndexKind) Option {
	return func(o *Options) { o.Spatial = kind }
}

// WithParallelism bounds the worker pool of the batch queries
// (FindBatch, EvaluateRoutes). Zero means runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithBuildWorkers bounds the worker pool of the static create's
// clustering recursion. Zero means runtime.GOMAXPROCS(0); one runs
// serially. For a fixed seed the built file is identical at any worker
// count.
func WithBuildWorkers(n int) Option { return func(o *Options) { o.BuildWorkers = n } }

// WithReadLatency charges d of simulated wall-clock time per physical
// data-page read of the in-memory store (the paper's disk-resident
// regime for throughput experiments). Ignored with WithPath.
func WithReadLatency(d time.Duration) Option {
	return func(o *Options) { o.ReadLatency = d }
}

// WithMetrics enables the observability registry: per-operation
// counters and latency histograms, per-class page-access counters and
// CRR/WCRR gauges, exported via Store.Metrics, Store.MetricsHandler and
// ServeMetrics.
func WithMetrics() Option { return func(o *Options) { o.Metrics = true } }

// WithTracing enables operation tracing with a ring buffer of capacity
// recent traces (see Store.Traces). Zero or negative capacities select
// the default ring size.
func WithTracing(capacity int) Option {
	return func(o *Options) {
		if capacity <= 0 {
			capacity = 128
		}
		o.TraceCapacity = capacity
	}
}

// WithWAL enables the write-ahead log: every mutation is logged and
// group-committed before it is acknowledged, and OpenPath replays the
// committed tail after a crash. Requires WithPath.
func WithWAL() Option { return func(o *Options) { o.WAL = true } }

// WithSyncPolicy selects when WAL commits are forced to stable
// storage (SyncGroupCommit, SyncEveryCommit or SyncNone). Ignored
// without WithWAL.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *Options) { o.SyncPolicy = p }
}

// WithCheckpointBytes bounds the WAL between automatic checkpoints
// (default 4 MiB). Ignored without WithWAL.
func WithCheckpointBytes(n int64) Option {
	return func(o *Options) { o.CheckpointBytes = n }
}

// WithExclusiveReads restores the pre-MVCC concurrency regime: every
// query waits behind a running Apply on the store's reader-writer lock
// instead of reading an LSN-pinned snapshot. For A/B measurement
// (cmd/ccam-bench -exp mixed) and as an escape hatch.
func WithExclusiveReads() Option { return func(o *Options) { o.ExclusiveReads = true } }

// WithBackgroundReorg starts the background incremental reorganizer:
// when the CRR gauge decays from its high-water mark, the worst PAG
// neighborhoods are re-clustered a bounded number of pages per round,
// through the WAL and the version layer, without blocking snapshot
// readers. interval 0 selects the 2s default. Requires WithMetrics.
func WithBackgroundReorg(interval time.Duration) Option {
	return func(o *Options) {
		o.BackgroundReorg = true
		o.ReorgInterval = interval
	}
}

// WithReorgMaxPages bounds the pages one reorganization round may
// re-cluster (default 16). Ignored without WithBackgroundReorg.
func WithReorgMaxPages(n int) Option { return func(o *Options) { o.ReorgMaxPages = n } }

// WithReorgTriggerDrop sets the CRR decay from its high-water mark
// that triggers a reorganization round (default 0.02). Ignored without
// WithBackgroundReorg.
func WithReorgTriggerDrop(d float64) Option {
	return func(o *Options) { o.ReorgTriggerDrop = d }
}

// OpenWith creates a new, empty CCAM store from functional options,
// applied over the zero Options value (so defaults match Open exactly).
func OpenWith(opts ...Option) (*Store, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return Open(o)
}
