package ccam

// Tests of the durable write path: WAL-backed stores, transactional
// Apply, group commit, and the crash drill that truncates the log at
// every record boundary and asserts recovery lands on exactly the
// committed prefix.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"ccam/internal/storage"
)

// walModel mirrors the logical contents of a store: node -> successor
// -> cost.
type walModel map[NodeID]map[NodeID]float32

func (m walModel) clone() walModel {
	out := make(walModel, len(m))
	for id, succs := range m {
		cp := make(map[NodeID]float32, len(succs))
		for to, c := range succs {
			cp[to] = c
		}
		out[id] = cp
	}
	return out
}

func modelFromNetwork(g *Network) walModel {
	m := make(walModel)
	for _, id := range g.NodeIDs() {
		m[id] = make(map[NodeID]float32)
	}
	for _, e := range g.Edges() {
		m[e.From][e.To] = float32(e.Cost)
	}
	return m
}

// applyBatch replays generated ops onto the model.
func (m walModel) applyBatch(ops []batchOp) {
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case mutInsertNode:
			rec := op.insert.Rec
			m[rec.ID] = make(map[NodeID]float32)
			for _, sc := range rec.Succs {
				m[rec.ID][sc.To] = sc.Cost
			}
			for j, p := range rec.Preds {
				m[p][rec.ID] = op.insert.PredCosts[j]
			}
		case mutDeleteNode:
			delete(m, op.id)
			for _, succs := range m {
				delete(succs, op.id)
			}
		case mutInsertEdge, mutSetEdgeCost:
			m[op.from][op.to] = op.cost
		case mutDeleteEdge:
			delete(m[op.from], op.to)
		}
	}
}

// storeModel reads the store's logical contents through Scan.
func storeModel(t *testing.T, s *Store) walModel {
	t.Helper()
	m := make(walModel)
	err := s.Scan(func(rec *Record) bool {
		succs := make(map[NodeID]float32, len(rec.Succs))
		for _, sc := range rec.Succs {
			succs[sc.To] = sc.Cost
		}
		m[rec.ID] = succs
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return m
}

func diffModels(want, got walModel) error {
	for id, wsucc := range want {
		gsucc, ok := got[id]
		if !ok {
			return fmt.Errorf("node %d lost", id)
		}
		if len(gsucc) != len(wsucc) {
			return fmt.Errorf("node %d: %d successors, want %d", id, len(gsucc), len(wsucc))
		}
		for to, wc := range wsucc {
			gc, ok := gsucc[to]
			if !ok {
				return fmt.Errorf("edge %d->%d lost", id, to)
			}
			if gc != wc {
				return fmt.Errorf("edge %d->%d cost %g, want %g", id, to, gc, wc)
			}
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			return fmt.Errorf("phantom node %d", id)
		}
	}
	return nil
}

// mut kinds re-spelled locally to keep the test generator readable.
const (
	mutInsertNode  = 1
	mutDeleteNode  = 2
	mutInsertEdge  = 3
	mutDeleteEdge  = 4
	mutSetEdgeCost = 5
)

// genBatch produces one consistent batch of 1..3 ops against the
// model, updating the model as it goes.
func genBatch(rng *rand.Rand, m walModel, nextID *NodeID) (*Batch, []batchOp) {
	ids := func() []NodeID {
		out := make([]NodeID, 0, len(m))
		for id := range m {
			out = append(out, id)
		}
		// Deterministic order for the rng picks.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	b := new(Batch)
	var ops []batchOp
	n := 1 + rng.Intn(3)
	for len(ops) < n {
		all := ids()
		if len(all) < 4 {
			break
		}
		var op batchOp
		switch k := rng.Intn(10); {
		case k < 5: // set-edge-cost
			from := all[rng.Intn(len(all))]
			if len(m[from]) == 0 {
				continue
			}
			var to NodeID
			pick, i := rng.Intn(len(m[from])), 0
			for t := range m[from] {
				if i == pick {
					to = t
					break
				}
				i++
			}
			cost := float32(1 + rng.Intn(100))
			b.SetEdgeCost(from, to, cost)
			op = batchOp{kind: mutSetEdgeCost, from: from, to: to, cost: cost}
		case k < 7: // insert-edge
			from := all[rng.Intn(len(all))]
			to := all[rng.Intn(len(all))]
			if from == to {
				continue
			}
			if _, dup := m[from][to]; dup {
				continue
			}
			cost := float32(1 + rng.Intn(100))
			b.InsertEdge(from, to, cost, FirstOrder)
			op = batchOp{kind: mutInsertEdge, from: from, to: to, cost: cost}
		case k < 8: // delete-edge
			from := all[rng.Intn(len(all))]
			if len(m[from]) == 0 {
				continue
			}
			var to NodeID
			pick, i := rng.Intn(len(m[from])), 0
			for t := range m[from] {
				if i == pick {
					to = t
					break
				}
				i++
			}
			b.DeleteEdge(from, to, FirstOrder)
			op = batchOp{kind: mutDeleteEdge, from: from, to: to}
		case k < 9: // insert-node with one succ and one pred
			succ := all[rng.Intn(len(all))]
			pred := all[rng.Intn(len(all))]
			id := *nextID
			*nextID++
			rec := &Record{
				ID:    id,
				Pos:   Point{X: float64(rng.Intn(100)), Y: float64(rng.Intn(100))},
				Succs: []SuccEntry{{To: succ, Cost: float32(1 + rng.Intn(50))}},
				Preds: []NodeID{pred},
			}
			iop := &InsertOp{Rec: rec, PredCosts: []float32{float32(1 + rng.Intn(50))}}
			b.Insert(iop, FirstOrder)
			op = batchOp{kind: mutInsertNode, insert: iop}
		default: // delete-node
			id := all[rng.Intn(len(all))]
			b.Delete(id, FirstOrder)
			op = batchOp{kind: mutDeleteNode, id: id}
		}
		ops = append(ops, op)
		one := []batchOp{op}
		m.applyBatch(one)
	}
	return b, ops
}

func copyFile(t *testing.T, dst, src string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func smallTestMap(t *testing.T) *Network {
	t.Helper()
	opts := MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 8, 8
	g, err := RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWALStoreBuildCloseReopen(t *testing.T) {
	g := smallTestMap(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	s, err := Open(Options{PageSize: 1024, Path: path, WAL: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	want := storeModel(t, s)
	st := s.WALStats()
	if !st.Enabled || st.AppendedLSN == 0 {
		t.Fatalf("wal stats after build = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenPath(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.WALStats().Enabled {
		t.Fatal("WAL not auto-detected on reopen")
	}
	if err := diffModels(want, storeModel(t, r)); err != nil {
		t.Fatal(err)
	}
	// Mutations still work and log after the reopen.
	if err := r.SetEdgeCost(g.Edges()[0].From, g.Edges()[0].To, 123); err != nil {
		t.Fatal(err)
	}
}

func TestWALReplayAfterSimulatedCrash(t *testing.T) {
	g := smallTestMap(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ccam")
	s, err := Open(Options{
		PageSize: 1024, Path: path, WAL: true, Seed: 3,
		SyncPolicy: SyncEveryCommit, CheckpointBytes: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	model := modelFromNetwork(g)
	rng := rand.New(rand.NewSource(7))
	nextID := NodeID(100000)
	for i := 0; i < 40; i++ {
		b, _ := genBatch(rng, model, &nextID)
		if b.Len() == 0 {
			continue
		}
		if err := s.Apply(context.Background(), b); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}

	// Crash simulation: copy the data file and the log while the store
	// is still open (nothing was checkpointed since Build, so the data
	// file is exactly the post-Build image and all mutations live only
	// in the log).
	crash := filepath.Join(dir, "crash")
	if err := os.MkdirAll(storage.WALDir(filepath.Join(crash, "net.ccam")), 0o755); err != nil {
		t.Fatal(err)
	}
	copyFile(t, filepath.Join(crash, "net.ccam"), path)
	segs, err := os.ReadDir(storage.WALDir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range segs {
		copyFile(t,
			filepath.Join(storage.WALDir(filepath.Join(crash, "net.ccam")), e.Name()),
			filepath.Join(storage.WALDir(path), e.Name()))
	}
	s.Close()

	r, err := OpenPath(filepath.Join(crash, "net.ccam"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.WALStats().ReplayedBatches == 0 {
		t.Fatal("no batches replayed after simulated crash")
	}
	if err := diffModels(model, storeModel(t, r)); err != nil {
		t.Fatalf("recovered state diverges: %v", err)
	}
}

// TestWALCrashDrill truncates the log at every record boundary of an
// op stream — and torn mid-record between boundaries — and asserts
// each crash point recovers to exactly the committed prefix — no lost
// and no phantom mutations — and that ccam-fsck finds the recovered
// file clean. (internal/waldrill runs the same drill over a 500-op
// stream; this variant diffs full models rather than fingerprints.)
func TestWALCrashDrill(t *testing.T) {
	nops := 30
	if testing.Short() {
		nops = 8
	}
	g := smallTestMap(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ccam")
	s, err := Open(Options{
		PageSize: 1024, Path: path, WAL: true, Seed: 3,
		SyncPolicy: SyncEveryCommit, CheckpointBytes: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	base := modelFromNetwork(g)
	model := base.clone()
	rng := rand.New(rand.NewSource(11))
	nextID := NodeID(100000)
	var batches [][]batchOp
	for len(batches) < nops {
		b, ops := genBatch(rng, model, &nextID)
		if b.Len() == 0 {
			continue
		}
		if err := s.Apply(context.Background(), b); err != nil {
			t.Fatalf("apply: %v", err)
		}
		batches = append(batches, ops)
	}

	// Snapshot the crash image once: under no-steal with no
	// intervening checkpoint, the data file is byte-identical at every
	// crash point of the stream.
	walDir := storage.WALDir(path)
	segs, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("drill expects a single WAL segment, got %d", len(segs))
	}
	segName := segs[0].Name()
	segData, err := os.ReadFile(filepath.Join(walDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	dataImage, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := storage.ScanWALDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	ends := storage.WALRecordEnds(segData)
	if len(ends) != len(recs) {
		t.Fatalf("%d record ends vs %d records", len(ends), len(recs))
	}
	s.Close()

	// modelAt(k) = expected logical state with the first k records of
	// the log surviving: the base state plus every batch whose commit
	// record is among those k.
	modelAt := func(k int) walModel {
		commits := 0
		for _, r := range recs[:k] {
			if r.Type == storage.WALRecCommit {
				commits++
			}
		}
		m := base.clone()
		for _, ops := range batches[:commits] {
			m.applyBatch(ops)
		}
		return m
	}

	// Crash points below the Build checkpoint are unreachable (its end
	// record was fsynced before the first batch ran, and the data image
	// may hold allocator noise only checkpoint recovery erases), so the
	// cuts start at the checkpoint-end record.
	first := -1
	for i, r := range recs {
		if r.Type == storage.WALRecCheckpointEnd {
			first = i + 1
			break
		}
	}
	if first < 0 {
		t.Fatal("log holds no Build checkpoint")
	}

	boundary := func(k int) int64 {
		if k == 0 {
			return storage.WALSegmentHeaderLen
		}
		return ends[k-1]
	}
	// crashAt cuts the log copy at cut bytes, expecting the state after
	// the first k whole records.
	crashAt := func(cut int64, k int, label string) {
		cdir := filepath.Join(dir, "cut")
		cpath := filepath.Join(cdir, "net.ccam")
		if err := os.MkdirAll(storage.WALDir(cpath), 0o755); err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(cdir)
		if err := os.WriteFile(cpath, dataImage, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(storage.WALDir(cpath), segName), segData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenPath(cpath, Options{})
		if err != nil {
			t.Fatalf("%s: open: %v", label, err)
		}
		if err := diffModels(modelAt(k), storeModel(t, r)); err != nil {
			r.Close()
			t.Fatalf("%s (of %d): %v", label, len(ends), err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}
		rep, err := storage.CheckFile(cpath, storage.FsckOptions{})
		if err != nil {
			t.Fatalf("%s: fsck: %v", label, err)
		}
		if rep.HeaderErr != nil || rep.FreeListErr != nil || len(rep.Damaged) != 0 {
			t.Fatalf("%s: fsck not clean: %+v", label, rep)
		}
	}
	for k := first; k <= len(ends); k++ {
		crashAt(boundary(k), k, fmt.Sprintf("boundary %d", k))
		if k < len(ends) {
			if lo, hi := boundary(k), boundary(k+1); hi-lo > 1 {
				// Torn write: a cut inside record k+1 must truncate to
				// the same committed prefix as boundary k.
				crashAt(lo+(hi-lo)/2, k, fmt.Sprintf("torn %d", k+1))
			}
		}
	}
}

func TestApplyAtomicUnderMidBatchFault(t *testing.T) {
	g := smallTestMap(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ccam")
	opts := Options{
		PageSize: 1024, Path: path, WAL: true, Seed: 3,
		SyncPolicy: SyncEveryCommit, CheckpointBytes: 1 << 40,
	}
	boom := errors.New("boom")
	opts.applyFaultHook = func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	want := storeModel(t, s)
	e0, e1 := g.Edges()[0], g.Edges()[1]
	b := new(Batch).
		SetEdgeCost(e0.From, e0.To, 999).
		SetEdgeCost(e1.From, e1.To, 888)
	err = s.Apply(context.Background(), b)
	if !errors.Is(err, boom) {
		t.Fatalf("apply error = %v, want injected fault", err)
	}
	// The store is poisoned: every call fails with ErrClosed until
	// reopen.
	if _, err := s.Find(context.Background(), e0.From); !errors.Is(err, ErrClosed) {
		t.Fatalf("poisoned store Find error = %v", err)
	}
	if err := s.SetEdgeCost(e0.From, e0.To, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("poisoned store mutation error = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery lands on the pre-batch state: op 0 of the aborted batch
	// must not survive.
	r, err := OpenPath(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := diffModels(want, storeModel(t, r)); err != nil {
		t.Fatalf("aborted batch leaked into recovered state: %v", err)
	}
}

func TestApplyValidationLeavesStateUntouched(t *testing.T) {
	g := smallTestMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	want := storeModel(t, s)
	e0 := g.Edges()[0]
	dup := g.NodeIDs()[0]

	// Duplicate node insert: rejected with ErrNodeExists, and the valid
	// first op must not have been applied.
	b := new(Batch).
		SetEdgeCost(e0.From, e0.To, 777).
		Insert(&InsertOp{Rec: &Record{ID: dup, Pos: Point{}}}, FirstOrder)
	err = s.Apply(context.Background(), b)
	if !errors.Is(err, ErrNodeExists) || !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert error = %v", err)
	}
	if err := diffModels(want, storeModel(t, s)); err != nil {
		t.Fatalf("rejected batch modified state: %v", err)
	}

	// Missing edge.
	if err := s.Apply(context.Background(), new(Batch).SetEdgeCost(dup, dup, 1)); !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("missing edge error = %v", err)
	}
	// Duplicate edge.
	if err := s.Apply(context.Background(), new(Batch).InsertEdge(e0.From, e0.To, 1, FirstOrder)); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("duplicate edge error = %v", err)
	}
	// Missing endpoint.
	if err := s.Apply(context.Background(), new(Batch).InsertEdge(999999, e0.To, 1, FirstOrder)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing endpoint error = %v", err)
	}
	// Cross-op validation: an edge inserted earlier in the batch is
	// visible to a later SetEdgeCost; a second insert of it is a dup.
	var free NodeID
	for to := free; ; to++ {
		if _, ok := want[e0.From][to]; !ok && to != e0.From {
			if _, exists := want[to]; exists {
				free = to
				break
			}
		}
	}
	ok := new(Batch).
		InsertEdge(e0.From, free, 5, FirstOrder).
		SetEdgeCost(e0.From, free, 6)
	if err := s.Apply(context.Background(), ok); err != nil {
		t.Fatalf("cross-op batch rejected: %v", err)
	}
	rec, err := s.Find(context.Background(), e0.From)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sc := range rec.Succs {
		if sc.To == free && sc.Cost == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("cross-op batch not applied")
	}
	bad := new(Batch).
		DeleteEdge(e0.From, free, FirstOrder).
		SetEdgeCost(e0.From, free, 7)
	if err := s.Apply(context.Background(), bad); !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("set-cost after in-batch delete error = %v", err)
	}
}

func TestWALGroupCommitCoalesces(t *testing.T) {
	g := smallTestMap(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	// Metrics stay off: refreshGauges rescans every edge under the
	// exclusive latch after each mutation, which makes the latched
	// section longer than an fsync — serial arrivals by construction,
	// so coalescing would never be observable. WALStats counts fsyncs
	// regardless.
	s, err := Open(Options{
		PageSize: 1024, Path: path, WAL: true, Seed: 3,
		SyncPolicy: SyncGroupCommit, CheckpointBytes: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	const workers, perWorker = 8, 20
	// Commit in synchronized waves: a barrier per iteration guarantees
	// the 8 commits of a wave are genuinely concurrent even when a
	// loaded scheduler would otherwise serialize free-running workers
	// (serial arrivals cannot coalesce, by construction).
	var wave sync.WaitGroup
	errc := make(chan error, workers)
	for i := 0; i < perWorker; i++ {
		wave.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w, i int) {
				defer wave.Done()
				e := edges[(w*perWorker+i)%len(edges)]
				if err := s.SetEdgeCost(e.From, e.To, float32(i+1)); err != nil {
					select {
					case errc <- err:
					default:
					}
				}
			}(w, i)
		}
		wave.Wait()
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	fsyncs := s.WALStats().Fsyncs
	commits := int64(workers * perWorker)
	if fsyncs == 0 {
		t.Fatal("no fsyncs recorded")
	}
	if fsyncs >= commits {
		if raceEnabled {
			// Race instrumentation makes the latched apply section
			// slower than an fsync, so a wave's commits arrive
			// serially — and serial arrivals cannot coalesce.
			t.Skipf("race build: latch slower than fsync, coalescing not observable (%d fsyncs / %d commits)", fsyncs, commits)
		}
		if runtime.GOMAXPROCS(0) == 1 {
			// On a single P a committer blocked in the fsync syscall
			// keeps the processor until sysmon retakes it, so the next
			// wave member often cannot even start its append until the
			// previous commit's fsync has finished — serial arrivals by
			// scheduling, and serial arrivals cannot coalesce. Whether
			// the adaptive group delay rescues a run depends on
			// scheduler history, so the outcome is not deterministic
			// enough to assert on.
			t.Skipf("GOMAXPROCS=1: commits arrive serially, coalescing not observable (%d fsyncs / %d commits)", fsyncs, commits)
		}
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d commits", fsyncs, commits)
	}
	t.Logf("group commit: %d commits, %d fsyncs (%.1fx coalescing)",
		commits, fsyncs, float64(commits)/float64(fsyncs))
}

func TestErrClosedAndCtxCancel(t *testing.T) {
	g := smallTestMap(t)
	s, err := Open(Options{PageSize: 1024, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Find(ctx, g.NodeIDs()[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindCtx on canceled ctx = %v", err)
	}
	if _, err := s.GetSuccessors(ctx, g.NodeIDs()[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("GetSuccessorsCtx on canceled ctx = %v", err)
	}
	if _, err := s.EvaluateRoute(ctx, Route{g.NodeIDs()[0]}); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateRouteCtx on canceled ctx = %v", err)
	}
	if err := s.Apply(ctx, new(Batch).SetEdgeCost(1, 2, 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Apply on canceled ctx = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Find(context.Background(), g.NodeIDs()[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Find after Close = %v", err)
	}
	if err := s.Insert(&InsertOp{Rec: &Record{ID: 1}}, FirstOrder); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v", err)
	}
	if err := s.Build(g); !errors.Is(err, ErrClosed) {
		t.Fatalf("Build after Close = %v", err)
	}
}

// TestSyncLatencySimulatedDevice checks the simulated-disk option on
// the durable path: with Options.SyncLatency set, a checkpoint (one
// WAL fsync plus one data-file fsync) must cost at least twice the
// configured latency of wall-clock time, and snapshot readers must
// keep answering from the pinned view while a writer sleeps in it.
// Only lower bounds are asserted — time.Sleep guarantees them — so the
// test cannot flake on a slow machine.
func TestSyncLatencySimulatedDevice(t *testing.T) {
	g := smallTestMap(t)
	const lat = 5 * time.Millisecond
	s, err := Open(Options{
		PageSize: 1024, Path: filepath.Join(t.TempDir(), "net.ccam"),
		WAL: true, SyncPolicy: SyncGroupCommit, SyncLatency: lat, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[0]
	if err := s.Apply(context.Background(), new(Batch).SetEdgeCost(e.From, e.To, 9)); err != nil {
		t.Fatal(err)
	}

	done := make(chan time.Duration, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		t0 := time.Now()
		if err := s.Checkpoint(); err != nil {
			t.Error(err)
		}
		done <- time.Since(t0)
	}()
	<-started
	// Snapshot reads proceed while the checkpoint sleeps in its
	// simulated device syncs under the store latch.
	reads := 0
	for {
		select {
		case d := <-done:
			if d < 2*lat {
				t.Fatalf("checkpoint took %v, want >= %v (two simulated syncs)", d, 2*lat)
			}
			if reads == 0 {
				t.Fatal("no snapshot reads completed during the checkpoint")
			}
			return
		default:
			if _, err := s.Find(context.Background(), e.From); err != nil {
				t.Fatal(err)
			}
			reads++
		}
	}
}
