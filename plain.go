package ccam

import "context"

// Plain is the ctx-less convenience view over a Querier: every wrapper
// delegates to the canonical context-first query with
// context.Background(). It exists for callers without a context in
// hand — quick scripts, tests, REPL-style exploration — so the
// canonical API can stay singly named and context-first without
// forcing ceremony on them:
//
//	rec, err := store.Plain().Find(1)
//
// Plain is a value; it is safe to copy and to use concurrently
// whenever the underlying Querier is.
type Plain struct {
	q Querier
}

// PlainOf wraps any Querier in the ctx-less convenience view.
func PlainOf(q Querier) Plain { return Plain{q: q} }

// Plain returns the store's ctx-less convenience view.
func (s *Store) Plain() Plain { return PlainOf(s) }

// Find retrieves the record of a node.
func (p Plain) Find(id NodeID) (*Record, error) {
	return p.q.Find(context.Background(), id)
}

// GetASuccessor retrieves the record of succ, a successor of cur.
func (p Plain) GetASuccessor(cur *Record, succ NodeID) (*Record, error) {
	return p.q.GetASuccessor(context.Background(), cur, succ)
}

// GetSuccessors retrieves the records of all successors of a node.
func (p Plain) GetSuccessors(id NodeID) ([]*Record, error) {
	return p.q.GetSuccessors(context.Background(), id)
}

// EvaluateRoute computes the aggregate property of a route.
func (p Plain) EvaluateRoute(route Route) (RouteAggregate, error) {
	return p.q.EvaluateRoute(context.Background(), route)
}

// RangeQuery returns all records whose positions lie inside rect.
func (p Plain) RangeQuery(rect Rect) ([]*Record, error) {
	return p.q.RangeQuery(context.Background(), rect)
}

// Has reports whether a node is stored.
func (p Plain) Has(id NodeID) (bool, error) {
	return p.q.Has(context.Background(), id)
}
