// Package btree implements a page-based B+-tree mapping uint64 keys to
// uint64 values. CCAM keeps a secondary index above its data file: the
// key is the Z-order value of the node's (x, y) coordinates combined
// with the node id, and the value is the data page holding the record.
//
// The tree is built on the same storage/buffer substrate as data files,
// so index I/O can be metered separately (the paper assumes index pages
// are memory resident and excludes them from its headline counts; the
// harness follows suit but the numbers remain observable).
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ccam/internal/buffer"
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// Errors returned by tree operations.
var (
	ErrKeyNotFound = errors.New("btree: key not found")
	ErrDuplicate   = errors.New("btree: duplicate key")
)

// Page layout.
//
// Common header (8 bytes):
//
//	[0]    node kind: 1 = leaf, 2 = internal
//	[1:3)  entry count
//	[4:8)  leaf: next-leaf page id; internal: leftmost child page id
//
// Leaf entries, 16 bytes each: key(8) value(8).
// Internal entries, 12 bytes each: key(8) child(4); entry i's child
// holds keys >= key(i) (and < key(i+1)).
const (
	hdrSize       = 8
	leafEntrySize = 16
	intEntrySize  = 12

	kindLeaf     = 1
	kindInternal = 2
)

// Tree is a B+-tree. Not safe for concurrent use.
type Tree struct {
	pool    *buffer.Pool
	root    storage.PageID
	height  int
	size    int
	leafCap int // max entries per leaf
	intCap  int // max entries per internal node
	// visits counts index pages touched by descents (nil = disabled).
	visits *metrics.Counter
}

// Instrument makes every descent add the pages it touches to visits.
// Each point descent (Get, Seek, Put, Delete) touches exactly height
// pages; structural maintenance (splits, merges, borrows) is not
// charged, matching the paper's convention that the index is memory
// resident and its upkeep is not part of an operation's page-access
// count.
func (t *Tree) Instrument(visits *metrics.Counter) { t.visits = visits }

// New creates an empty tree with its own pages allocated from pool's
// store.
func New(pool *buffer.Pool) (*Tree, error) {
	ps := pool.Store().PageSize()
	t := &Tree{
		pool:    pool,
		leafCap: (ps - hdrSize) / leafEntrySize,
		intCap:  (ps - hdrSize) / intEntrySize,
	}
	if t.leafCap < 3 || t.intCap < 3 {
		return nil, fmt.Errorf("btree: page size %d too small", ps)
	}
	id, b, err := pool.FetchNew()
	if err != nil {
		return nil, fmt.Errorf("btree: allocate root: %w", err)
	}
	initNode(b, kindLeaf)
	setNext(b, storage.InvalidPageID)
	if err := pool.Unpin(id, true); err != nil {
		return nil, err
	}
	t.root = id
	t.height = 1
	return t, nil
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Root returns the root page id (for persistence headers).
func (t *Tree) Root() storage.PageID { return t.root }

// --- node field accessors over raw page bytes ---

func initNode(b []byte, kind byte) {
	for i := range b[:hdrSize] {
		b[i] = 0
	}
	b[0] = kind
}

func nodeKind(b []byte) byte { return b[0] }
func count(b []byte) int     { return int(binary.LittleEndian.Uint16(b[1:3])) }
func setCount(b []byte, n int) {
	binary.LittleEndian.PutUint16(b[1:3], uint16(n))
}
func next(b []byte) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(b[4:8]))
}
func setNext(b []byte, id storage.PageID) {
	binary.LittleEndian.PutUint32(b[4:8], uint32(id))
}

// leaf accessors
func leafKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[hdrSize+i*leafEntrySize:])
}
func leafVal(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[hdrSize+i*leafEntrySize+8:])
}
func setLeafEntry(b []byte, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(b[hdrSize+i*leafEntrySize:], k)
	binary.LittleEndian.PutUint64(b[hdrSize+i*leafEntrySize+8:], v)
}
func setLeafVal(b []byte, i int, v uint64) {
	binary.LittleEndian.PutUint64(b[hdrSize+i*leafEntrySize+8:], v)
}

// internal accessors; child(-1) is the leftmost pointer in the header.
func intKey(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[hdrSize+i*intEntrySize:])
}
func intChild(b []byte, i int) storage.PageID {
	if i < 0 {
		return next(b)
	}
	return storage.PageID(binary.LittleEndian.Uint32(b[hdrSize+i*intEntrySize+8:]))
}
func setIntEntry(b []byte, i int, k uint64, c storage.PageID) {
	binary.LittleEndian.PutUint64(b[hdrSize+i*intEntrySize:], k)
	binary.LittleEndian.PutUint32(b[hdrSize+i*intEntrySize+8:], uint32(c))
}

func copyLeafEntries(dst []byte, di int, src []byte, si, n int) {
	copy(dst[hdrSize+di*leafEntrySize:hdrSize+(di+n)*leafEntrySize],
		src[hdrSize+si*leafEntrySize:hdrSize+(si+n)*leafEntrySize])
}

func copyIntEntries(dst []byte, di int, src []byte, si, n int) {
	copy(dst[hdrSize+di*intEntrySize:hdrSize+(di+n)*intEntrySize],
		src[hdrSize+si*intEntrySize:hdrSize+(si+n)*intEntrySize])
}

// leafSearch returns the smallest index with key >= k.
func leafSearch(b []byte, k uint64) int {
	lo, hi := 0, count(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(b, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intSearch returns the index of the child to descend into for key k:
// the largest entry index i with key(i) <= k, or -1 for the leftmost
// child.
func intSearch(b []byte, k uint64) int {
	lo, hi := 0, count(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(b, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Get returns the value for key k.
func (t *Tree) Get(k uint64) (uint64, error) {
	t.visits.Add(int64(t.height))
	id := t.root
	for level := t.height; level > 1; level-- {
		b, err := t.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		child := intChild(b, intSearch(b, k))
		t.pool.Unpin(id, false)
		id = child
	}
	b, err := t.pool.Fetch(id)
	if err != nil {
		return 0, err
	}
	defer t.pool.Unpin(id, false)
	i := leafSearch(b, k)
	if i < count(b) && leafKey(b, i) == k {
		return leafVal(b, i), nil
	}
	return 0, fmt.Errorf("%w: %d", ErrKeyNotFound, k)
}

// Has reports whether key k is present.
func (t *Tree) Has(k uint64) bool {
	_, err := t.Get(k)
	return err == nil
}

// Put inserts key k with value v, replacing any existing value.
func (t *Tree) Put(k, v uint64) error {
	_, err := t.put(k, v, true)
	return err
}

// Insert inserts key k with value v; it fails with ErrDuplicate when
// the key is already present.
func (t *Tree) Insert(k, v uint64) error {
	replaced, err := t.put(k, v, false)
	if err != nil {
		return err
	}
	if replaced {
		return fmt.Errorf("%w: %d", ErrDuplicate, k)
	}
	return nil
}

// splitResult propagates a split to the parent: a new right sibling
// whose subtree holds keys >= key.
type splitResult struct {
	key   uint64
	right storage.PageID
}

func (t *Tree) put(k, v uint64, replace bool) (replaced bool, err error) {
	t.visits.Add(int64(t.height))
	replaced, split, err := t.insertInto(t.root, t.height, k, v, replace)
	if err != nil {
		return false, err
	}
	if split != nil {
		// Grow a new root.
		id, b, err := t.pool.FetchNew()
		if err != nil {
			return false, fmt.Errorf("btree: grow root: %w", err)
		}
		initNode(b, kindInternal)
		setNext(b, t.root) // leftmost child
		setIntEntry(b, 0, split.key, split.right)
		setCount(b, 1)
		if err := t.pool.Unpin(id, true); err != nil {
			return false, err
		}
		t.root = id
		t.height++
	}
	if !replaced {
		t.size++
	}
	return replaced, nil
}

func (t *Tree) insertInto(id storage.PageID, level int, k, v uint64, replace bool) (replaced bool, split *splitResult, err error) {
	b, err := t.pool.Fetch(id)
	if err != nil {
		return false, nil, err
	}
	dirty := false
	defer func() {
		if uerr := t.pool.Unpin(id, dirty); uerr != nil && err == nil {
			err = uerr
		}
	}()

	if level == 1 { // leaf
		i := leafSearch(b, k)
		n := count(b)
		if i < n && leafKey(b, i) == k {
			if !replace {
				return true, nil, fmt.Errorf("%w: %d", ErrDuplicate, k)
			}
			setLeafVal(b, i, v)
			dirty = true
			return true, nil, nil
		}
		if n < t.leafCap {
			copyLeafEntries(b, i+1, b, i, n-i)
			setLeafEntry(b, i, k, v)
			setCount(b, n+1)
			dirty = true
			return false, nil, nil
		}
		// Split leaf.
		rid, rb, err2 := t.pool.FetchNew()
		if err2 != nil {
			return false, nil, fmt.Errorf("btree: split leaf: %w", err2)
		}
		initNode(rb, kindLeaf)
		mid := (n + 1) / 2
		copyLeafEntries(rb, 0, b, mid, n-mid)
		setCount(rb, n-mid)
		setCount(b, mid)
		setNext(rb, next(b))
		setNext(b, rid)
		if k >= leafKey(rb, 0) {
			j := leafSearch(rb, k)
			rn := count(rb)
			copyLeafEntries(rb, j+1, rb, j, rn-j)
			setLeafEntry(rb, j, k, v)
			setCount(rb, rn+1)
		} else {
			j := leafSearch(b, k)
			ln := count(b)
			copyLeafEntries(b, j+1, b, j, ln-j)
			setLeafEntry(b, j, k, v)
			setCount(b, ln+1)
		}
		sep := leafKey(rb, 0)
		if err2 := t.pool.Unpin(rid, true); err2 != nil {
			return false, nil, err2
		}
		dirty = true
		return false, &splitResult{key: sep, right: rid}, nil
	}

	// Internal node.
	ci := intSearch(b, k)
	child := intChild(b, ci)
	replaced, childSplit, err2 := t.insertInto(child, level-1, k, v, replace)
	if err2 != nil {
		return replaced, nil, err2
	}
	if childSplit == nil {
		return replaced, nil, nil
	}
	n := count(b)
	at := ci + 1 // new entry position
	if n < t.intCap {
		copyIntEntries(b, at+1, b, at, n-at)
		setIntEntry(b, at, childSplit.key, childSplit.right)
		setCount(b, n+1)
		dirty = true
		return replaced, nil, nil
	}
	// Split internal node. Assemble n+1 entries logically, push up the
	// median.
	rid, rb, err2 := t.pool.FetchNew()
	if err2 != nil {
		return replaced, nil, fmt.Errorf("btree: split internal: %w", err2)
	}
	initNode(rb, kindInternal)

	// Temporarily materialize the entry list.
	type entry struct {
		key   uint64
		child storage.PageID
	}
	entries := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		entries = append(entries, entry{intKey(b, i), intChild(b, i)})
	}
	entries = append(entries[:at], append([]entry{{childSplit.key, childSplit.right}}, entries[at:]...)...)

	mid := len(entries) / 2
	sep := entries[mid].key
	// Left keeps entries[:mid]; right takes entries[mid+1:], with
	// entries[mid].child as its leftmost pointer.
	setNext(rb, entries[mid].child)
	for i, e := range entries[mid+1:] {
		setIntEntry(rb, i, e.key, e.child)
	}
	setCount(rb, len(entries)-mid-1)
	for i, e := range entries[:mid] {
		setIntEntry(b, i, e.key, e.child)
	}
	setCount(b, mid)
	if err2 := t.pool.Unpin(rid, true); err2 != nil {
		return replaced, nil, err2
	}
	dirty = true
	return replaced, &splitResult{key: sep, right: rid}, nil
}

// Delete removes key k, rebalancing pages that underflow.
func (t *Tree) Delete(k uint64) error {
	t.visits.Add(int64(t.height))
	found, _, err := t.deleteFrom(t.root, t.height, k)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %d", ErrKeyNotFound, k)
	}
	t.size--
	// Shrink root: an internal root with zero entries has one child.
	for t.height > 1 {
		b, err := t.pool.Fetch(t.root)
		if err != nil {
			return err
		}
		if count(b) > 0 {
			t.pool.Unpin(t.root, false)
			break
		}
		old := t.root
		t.root = intChild(b, -1)
		t.pool.Unpin(old, false)
		t.pool.Discard(old)
		if err := t.pool.Store().Free(old); err != nil {
			return fmt.Errorf("btree: free old root: %w", err)
		}
		t.height--
	}
	return nil
}

func (t *Tree) minEntries(level int) int {
	if level == 1 {
		return t.leafCap / 2
	}
	return t.intCap / 2
}

// deleteFrom removes k from the subtree rooted at id. underflow reports
// whether the node dropped below its minimum occupancy.
func (t *Tree) deleteFrom(id storage.PageID, level int, k uint64) (found, underflow bool, err error) {
	b, err := t.pool.Fetch(id)
	if err != nil {
		return false, false, err
	}
	dirty := false
	defer func() {
		if uerr := t.pool.Unpin(id, dirty); uerr != nil && err == nil {
			err = uerr
		}
	}()

	if level == 1 {
		i := leafSearch(b, k)
		n := count(b)
		if i >= n || leafKey(b, i) != k {
			return false, false, nil
		}
		copyLeafEntries(b, i, b, i+1, n-i-1)
		setCount(b, n-1)
		dirty = true
		return true, n-1 < t.minEntries(1) && id != t.root, nil
	}

	ci := intSearch(b, k)
	child := intChild(b, ci)
	found, childUnder, err2 := t.deleteFrom(child, level-1, k)
	if err2 != nil {
		return found, false, err2
	}
	if !found || !childUnder {
		return found, false, nil
	}
	// Rebalance child against a sibling.
	if err2 := t.rebalanceChild(b, ci, level); err2 != nil {
		return found, false, err2
	}
	dirty = true
	return true, count(b) < t.minEntries(level) && id != t.root, nil
}

// rebalanceChild restores minimum occupancy of the child at position ci
// of internal node b (level is b's level). It borrows from or merges
// with an adjacent sibling.
func (t *Tree) rebalanceChild(b []byte, ci, level int) error {
	n := count(b)
	childLevel := level - 1
	// Prefer the left sibling; the leftmost child uses its right one.
	li, ri := ci-1, ci
	if ci == -1 {
		li, ri = -1, 0
	}
	if ri >= n {
		// b has a single child and no siblings; can only happen at a
		// root with count 0, handled by the caller's root shrink.
		return nil
	}
	leftID, rightID := intChild(b, li), intChild(b, ri)
	lb, err := t.pool.Fetch(leftID)
	if err != nil {
		return err
	}
	rb, err := t.pool.Fetch(rightID)
	if err != nil {
		t.pool.Unpin(leftID, false)
		return err
	}
	ln, rn := count(lb), count(rb)
	min := t.minEntries(childLevel)
	sepIdx := ri // separator key index in b between left and right

	if childLevel == 1 {
		switch {
		case ln+rn <= t.leafCap:
			// Merge right into left.
			copyLeafEntries(lb, ln, rb, 0, rn)
			setCount(lb, ln+rn)
			setNext(lb, next(rb))
			t.pool.Unpin(leftID, true)
			t.pool.Unpin(rightID, false)
			t.pool.Discard(rightID)
			if err := t.pool.Store().Free(rightID); err != nil {
				return fmt.Errorf("btree: free merged leaf: %w", err)
			}
			removeIntEntry(b, sepIdx)
			return nil
		case ln < min:
			// Borrow first entry of right.
			setLeafEntry(lb, ln, leafKey(rb, 0), leafVal(rb, 0))
			setCount(lb, ln+1)
			copyLeafEntries(rb, 0, rb, 1, rn-1)
			setCount(rb, rn-1)
			setIntKey(b, sepIdx, leafKey(rb, 0))
		default:
			// Borrow last entry of left.
			copyLeafEntries(rb, 1, rb, 0, rn)
			setLeafEntry(rb, 0, leafKey(lb, ln-1), leafVal(lb, ln-1))
			setCount(rb, rn+1)
			setCount(lb, ln-1)
			setIntKey(b, sepIdx, leafKey(rb, 0))
		}
	} else {
		sep := intKey(b, sepIdx)
		switch {
		case ln+rn+1 <= t.intCap:
			// Merge: left + sep(pointing at right's leftmost) + right.
			setIntEntry(lb, ln, sep, intChild(rb, -1))
			copyIntEntries(lb, ln+1, rb, 0, rn)
			setCount(lb, ln+1+rn)
			t.pool.Unpin(leftID, true)
			t.pool.Unpin(rightID, false)
			t.pool.Discard(rightID)
			if err := t.pool.Store().Free(rightID); err != nil {
				return fmt.Errorf("btree: free merged internal: %w", err)
			}
			removeIntEntry(b, sepIdx)
			return nil
		case ln < min:
			// Rotate left: sep moves down to left, right's first key up.
			setIntEntry(lb, ln, sep, intChild(rb, -1))
			setCount(lb, ln+1)
			setIntKey(b, sepIdx, intKey(rb, 0))
			setNext(rb, intChild(rb, 0))
			copyIntEntries(rb, 0, rb, 1, rn-1)
			setCount(rb, rn-1)
		default:
			// Rotate right: left's last key up, sep moves down to right.
			copyIntEntries(rb, 1, rb, 0, rn)
			setIntEntry(rb, 0, sep, intChild(rb, -1))
			setCount(rb, rn+1)
			setNext(rb, intChild(lb, ln-1))
			setIntKey(b, sepIdx, intKey(lb, ln-1))
			setCount(lb, ln-1)
		}
	}
	t.pool.Unpin(leftID, true)
	t.pool.Unpin(rightID, true)
	return nil
}

func setIntKey(b []byte, i int, k uint64) {
	binary.LittleEndian.PutUint64(b[hdrSize+i*intEntrySize:], k)
}

// removeIntEntry deletes entry i from internal node b.
func removeIntEntry(b []byte, i int) {
	n := count(b)
	copyIntEntries(b, i, b, i+1, n-i-1)
	setCount(b, n-1)
}

// Iter is a forward scanner over the tree's leaves.
type Iter struct {
	t    *Tree
	page storage.PageID
	idx  int
	key  uint64
	val  uint64
	err  error
	done bool
}

// Seek returns an iterator positioned at the smallest key >= k.
func (t *Tree) Seek(k uint64) *Iter {
	t.visits.Add(int64(t.height))
	it := &Iter{t: t}
	id := t.root
	for level := t.height; level > 1; level-- {
		b, err := t.pool.Fetch(id)
		if err != nil {
			it.err = err
			it.done = true
			return it
		}
		child := intChild(b, intSearch(b, k))
		t.pool.Unpin(id, false)
		id = child
	}
	b, err := t.pool.Fetch(id)
	if err != nil {
		it.err = err
		it.done = true
		return it
	}
	it.page = id
	it.idx = leafSearch(b, k) - 1 // Next advances first
	t.pool.Unpin(id, false)
	return it
}

// Min returns an iterator at the smallest key.
func (t *Tree) Min() *Iter { return t.Seek(0) }

// Next advances the iterator; it returns false at the end or on error.
func (it *Iter) Next() bool {
	if it.done {
		return false
	}
	for {
		b, err := it.t.pool.Fetch(it.page)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		it.idx++
		if it.idx < count(b) {
			it.key = leafKey(b, it.idx)
			it.val = leafVal(b, it.idx)
			it.t.pool.Unpin(it.page, false)
			return true
		}
		nx := next(b)
		it.t.pool.Unpin(it.page, false)
		if nx == storage.InvalidPageID {
			it.done = true
			return false
		}
		it.page = nx
		it.idx = -1
	}
}

// Key returns the current key; valid after Next reports true.
func (it *Iter) Key() uint64 { return it.key }

// Value returns the current value; valid after Next reports true.
func (it *Iter) Value() uint64 { return it.val }

// Err returns the first error the iterator encountered.
func (it *Iter) Err() error { return it.err }

// SeekIter re-positions a fresh scan at key k; convenience for Z-order
// range scans that jump with BIGMIN.
func (t *Tree) SeekIter(k uint64) *Iter { return t.Seek(k) }

// Validate checks structural invariants (ordering, occupancy, leaf
// chain, separator correctness). Intended for tests.
func (t *Tree) Validate() error {
	n, _, _, err := t.validate(t.root, t.height, 0, ^uint64(0), true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("btree: size %d but %d keys reachable", t.size, n)
	}
	return nil
}

func (t *Tree) validate(id storage.PageID, level int, lo, hi uint64, isRoot bool) (n int, minKey, maxKey uint64, err error) {
	b, err := t.pool.Fetch(id)
	if err != nil {
		return 0, 0, 0, err
	}
	defer t.pool.Unpin(id, false)
	c := count(b)
	if level == 1 {
		if nodeKind(b) != kindLeaf {
			return 0, 0, 0, fmt.Errorf("btree: page %d: expected leaf", id)
		}
		if !isRoot && c < t.minEntries(1) {
			return 0, 0, 0, fmt.Errorf("btree: leaf %d underflow: %d", id, c)
		}
		var prev uint64
		for i := 0; i < c; i++ {
			k := leafKey(b, i)
			if i > 0 && k <= prev {
				return 0, 0, 0, fmt.Errorf("btree: leaf %d keys out of order", id)
			}
			if k < lo || k > hi {
				return 0, 0, 0, fmt.Errorf("btree: leaf %d key %d outside [%d,%d]", id, k, lo, hi)
			}
			prev = k
		}
		if c == 0 {
			return 0, 0, 0, nil
		}
		return c, leafKey(b, 0), leafKey(b, c-1), nil
	}
	if nodeKind(b) != kindInternal {
		return 0, 0, 0, fmt.Errorf("btree: page %d: expected internal", id)
	}
	if !isRoot && c < t.minEntries(level) {
		return 0, 0, 0, fmt.Errorf("btree: internal %d underflow: %d", id, c)
	}
	total := 0
	childLo := lo
	for i := -1; i < c; i++ {
		childHi := hi
		if i+1 < c {
			childHi = intKey(b, i+1) - 1
		}
		if i >= 0 {
			childLo = intKey(b, i)
		}
		cn, _, _, err := t.validate(intChild(b, i), level-1, childLo, childHi, false)
		if err != nil {
			return 0, 0, 0, err
		}
		total += cn
	}
	return total, lo, hi, nil
}
