package btree

import (
	"errors"
	"math/rand"
	"testing"
)

func bulkEntries(n int, stride uint64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{Key: uint64(i) * stride, Val: uint64(i) * 31}
	}
	return es
}

// TestBulkLoadEqualsInsertBuilt is the satellite coverage: a bulk-loaded
// tree must answer point lookups and range scans exactly like an
// insert-built tree over the same key set, across sizes that exercise
// single-leaf, multi-leaf and multi-internal-level shapes (page size
// 256 packs 15 leaf entries / 20 internal entries).
func TestBulkLoadEqualsInsertBuilt(t *testing.T) {
	for _, n := range []int{0, 1, 7, 15, 16, 29, 30, 31, 300, 5000} {
		entries := bulkEntries(n, 3)
		bulk := newTree(t, 256)
		if err := bulk.BulkLoad(entries); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref := newTree(t, 256)
		for _, e := range entries {
			if err := ref.Insert(e.Key, e.Val); err != nil {
				t.Fatal(err)
			}
		}
		if err := bulk.Validate(); err != nil {
			t.Fatalf("n=%d: bulk tree invalid: %v", n, err)
		}
		if bulk.Len() != ref.Len() {
			t.Fatalf("n=%d: len %d want %d", n, bulk.Len(), ref.Len())
		}
		// Point lookups: every key present, straddling keys absent.
		for _, e := range entries {
			v, err := bulk.Get(e.Key)
			if err != nil || v != e.Val {
				t.Fatalf("n=%d: Get(%d) = %d, %v", n, e.Key, v, err)
			}
			if bulk.Has(e.Key + 1) {
				t.Fatalf("n=%d: phantom key %d", n, e.Key+1)
			}
		}
		// Full scan matches the reference scan pair for pair.
		bi, ri := bulk.Min(), ref.Min()
		for ri.Next() {
			if !bi.Next() {
				t.Fatalf("n=%d: bulk scan ended early", n)
			}
			if bi.Key() != ri.Key() || bi.Value() != ri.Value() {
				t.Fatalf("n=%d: scan mismatch %d/%d vs %d/%d", n, bi.Key(), bi.Value(), ri.Key(), ri.Value())
			}
		}
		if bi.Next() {
			t.Fatalf("n=%d: bulk scan has extra entries", n)
		}
		if bi.Err() != nil || ri.Err() != nil {
			t.Fatalf("n=%d: scan errors %v / %v", n, bi.Err(), ri.Err())
		}
		// Seeks from random keys agree too (range-scan entry points).
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 50; trial++ {
			k := uint64(rng.Intn(3*n + 10))
			bs, rs := bulk.Seek(k), ref.Seek(k)
			bn, rn := bs.Next(), rs.Next()
			if bn != rn {
				t.Fatalf("n=%d: Seek(%d) presence %v vs %v", n, k, bn, rn)
			}
			if bn && (bs.Key() != rs.Key() || bs.Value() != rs.Value()) {
				t.Fatalf("n=%d: Seek(%d) landed on %d vs %d", n, k, bs.Key(), rs.Key())
			}
		}
	}
}

func TestBulkLoadTailRebalance(t *testing.T) {
	// Page size 256: leafCap 15, min 7. 16 entries would leave a 1-entry
	// tail leaf; the loader must rebalance the last two leaves. Sweep all
	// tail residues across a couple of full rows.
	for n := 15; n <= 65; n++ {
		tr := newTree(t, 256)
		if err := tr.BulkLoad(bulkEntries(n, 1)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadMutableAfterwards(t *testing.T) {
	// The bulk-built tree must accept ordinary inserts and deletes.
	tr := newTree(t, 256)
	if err := tr.BulkLoad(bulkEntries(500, 2)); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := tr.Insert(2*i+1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if err := tr.Delete(2 * i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 600 {
		t.Fatalf("len = %d, want 600", tr.Len())
	}
}

func TestBulkLoadErrors(t *testing.T) {
	tr := newTree(t, 256)
	if err := tr.BulkLoad([]Entry{{1, 1}, {1, 2}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate keys = %v", err)
	}
	if err := tr.BulkLoad([]Entry{{5, 1}, {3, 2}}); err == nil {
		t.Fatal("unsorted entries accepted")
	}
	if err := tr.BulkLoad(bulkEntries(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(bulkEntries(10, 1)); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("second bulk load = %v", err)
	}
}

func TestPackCounts(t *testing.T) {
	for _, tc := range []struct {
		n, capacity, minN int
		want              []int
	}{
		{5, 15, 7, []int{5}},
		{15, 15, 7, []int{15}},
		{16, 15, 7, []int{8, 8}},
		{30, 15, 7, []int{15, 15}},
		{31, 15, 7, []int{15, 8, 8}},
		{37, 15, 7, []int{15, 15, 7}},
		{36, 15, 7, []int{15, 11, 10}},
	} {
		got := packCounts(tc.n, tc.capacity, tc.minN)
		sum := 0
		for _, c := range got {
			sum += c
		}
		if sum != tc.n {
			t.Fatalf("packCounts(%d,%d,%d) loses items: %v", tc.n, tc.capacity, tc.minN, got)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("packCounts(%d,%d,%d) = %v, want %v", tc.n, tc.capacity, tc.minN, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("packCounts(%d,%d,%d) = %v, want %v", tc.n, tc.capacity, tc.minN, got, tc.want)
			}
		}
	}
}
