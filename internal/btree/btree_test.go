package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"ccam/internal/buffer"
	"ccam/internal/storage"
)

func newTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	st := storage.NewMemStore(pageSize)
	pool := buffer.NewPool(st, 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, 256)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, err := tr.Get(42); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get on empty = %v", err)
	}
	if err := tr.Delete(42); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Delete on empty = %v", err)
	}
	it := tr.Min()
	if it.Next() {
		t.Fatal("iterator on empty tree yields entries")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTree(t, 256)
	for i := uint64(0); i < 10; i++ {
		if err := tr.Insert(i*7, i*100); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		v, err := tr.Get(i * 7)
		if err != nil || v != i*100 {
			t.Fatalf("Get(%d) = %d, %v", i*7, v, err)
		}
	}
	if err := tr.Insert(7, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert = %v", err)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	tr := newTree(t, 256)
	if err := tr.Put(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Put(5, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Get(5); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	tr := newTree(t, 256) // small pages force splits quickly
	n := uint64(2000)
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, i+1); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d, expected deep tree", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		v, err := tr.Get(i)
		if err != nil || v != i+1 {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestInsertDescendingAndRandom(t *testing.T) {
	for _, name := range []string{"descending", "random"} {
		t.Run(name, func(t *testing.T) {
			tr := newTree(t, 256)
			keys := make([]uint64, 1500)
			for i := range keys {
				keys[i] = uint64(i) * 3
			}
			if name == "descending" {
				for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
					keys[i], keys[j] = keys[j], keys[i]
				}
			} else {
				rng := rand.New(rand.NewSource(5))
				rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			}
			for _, k := range keys {
				if err := tr.Insert(k, k^0xFF); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if v, err := tr.Get(k); err != nil || v != k^0xFF {
					t.Fatalf("Get(%d) = %d, %v", k, v, err)
				}
			}
		})
	}
}

func TestIteratorFullScan(t *testing.T) {
	tr := newTree(t, 256)
	var keys []uint64
	rng := rand.New(rand.NewSource(11))
	seen := map[uint64]bool{}
	for len(keys) < 800 {
		k := uint64(rng.Intn(100000))
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		if err := tr.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	it := tr.Min()
	i := 0
	for it.Next() {
		if it.Key() != keys[i] || it.Value() != keys[i]*2 {
			t.Fatalf("scan[%d] = (%d,%d), want (%d,%d)", i, it.Key(), it.Value(), keys[i], keys[i]*2)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(keys) {
		t.Fatalf("scan visited %d keys, want %d", i, len(keys))
	}
}

func TestSeek(t *testing.T) {
	tr := newTree(t, 256)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(i*10, i)
	}
	it := tr.Seek(55)
	if !it.Next() || it.Key() != 60 {
		t.Fatalf("Seek(55) first key = %d, want 60", it.Key())
	}
	it = tr.Seek(60)
	if !it.Next() || it.Key() != 60 {
		t.Fatalf("Seek(60) first key = %d, want 60", it.Key())
	}
	it = tr.Seek(991)
	if it.Next() {
		t.Fatal("Seek past max yields entries")
	}
}

func TestDeleteSimple(t *testing.T) {
	tr := newTree(t, 256)
	for i := uint64(0); i < 20; i++ {
		tr.Insert(i, i)
	}
	for i := uint64(0); i < 20; i += 2 {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 20; i++ {
		_, err := tr.Get(i)
		if i%2 == 0 && !errors.Is(err, ErrKeyNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("kept key %d lost: %v", i, err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllShrinksTree(t *testing.T) {
	tr := newTree(t, 256)
	n := uint64(1200)
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	grown := tr.Height()
	if grown < 3 {
		t.Fatalf("setup: height %d", grown)
	}
	for i := uint64(0); i < n; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Fatalf("height after deleting all = %d, want 1", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tree is reusable after emptying.
	if err := tr.Insert(42, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Get(42); err != nil || v != 1 {
		t.Fatalf("reuse Get = %d, %v", v, err)
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	tr := newTree(t, 256)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0: // put
			v := uint64(rng.Intn(1 << 30))
			if err := tr.Put(k, v); err != nil {
				t.Fatalf("op %d Put: %v", op, err)
			}
			ref[k] = v
		case 1: // delete
			err := tr.Delete(k)
			if _, ok := ref[k]; ok {
				if err != nil {
					t.Fatalf("op %d Delete(%d): %v", op, k, err)
				}
				delete(ref, k)
			} else if !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("op %d Delete missing = %v", op, err)
			}
		case 2: // get
			v, err := tr.Get(k)
			want, ok := ref[k]
			if ok && (err != nil || v != want) {
				t.Fatalf("op %d Get(%d) = %d,%v want %d", op, k, v, err, want)
			}
			if !ok && !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("op %d Get missing = %v", op, err)
			}
		}
		if op%2500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full scan matches sorted reference.
	var keys []uint64
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	it := tr.Min()
	i := 0
	for it.Next() {
		if it.Key() != keys[i] || it.Value() != ref[keys[i]] {
			t.Fatalf("scan[%d] mismatch", i)
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("scan count %d want %d", i, len(keys))
	}
}

func TestPageReuseAfterMerges(t *testing.T) {
	st := storage.NewMemStore(256)
	pool := buffer.NewPool(st, 64)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(i, i)
	}
	peak := st.NumPages()
	for i := uint64(0); i < 2000; i++ {
		tr.Delete(i)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	after := st.NumPages()
	if after >= peak/2 {
		t.Fatalf("pages not reclaimed: peak %d, after %d", peak, after)
	}
}

func TestTooSmallPage(t *testing.T) {
	st := storage.NewMemStore(32)
	pool := buffer.NewPool(st, 4)
	if _, err := New(pool); err == nil {
		t.Fatal("New accepted unusably small page size")
	}
}

func TestSeekBoundaries(t *testing.T) {
	tr := newTree(t, 256)
	// Keys at the extremes.
	tr.Insert(0, 100)
	tr.Insert(^uint64(0), 200)
	it := tr.Seek(0)
	if !it.Next() || it.Key() != 0 {
		t.Fatalf("Seek(0) = %d", it.Key())
	}
	it = tr.Seek(^uint64(0))
	if !it.Next() || it.Key() != ^uint64(0) {
		t.Fatalf("Seek(max) = %d", it.Key())
	}
	if it.Next() {
		t.Fatal("iterator past max yields entries")
	}
}

func TestIteratorSurvivesInterleavedReads(t *testing.T) {
	// The iterator re-fetches pages per step, so concurrent Get calls
	// (same tree, same pool) must not derail an in-flight scan.
	tr := newTree(t, 256)
	for i := uint64(0); i < 500; i++ {
		tr.Insert(i, i)
	}
	it := tr.Min()
	count := uint64(0)
	for it.Next() {
		if it.Key() != count {
			t.Fatalf("scan[%d] = %d", count, it.Key())
		}
		// Interleave random point reads.
		if _, err := tr.Get((count * 37) % 500); err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 500 {
		t.Fatalf("scanned %d", count)
	}
}
