package btree

import (
	"errors"
	"fmt"

	"ccam/internal/storage"
)

// ErrNotEmpty is returned by BulkLoad on a tree that already has keys.
var ErrNotEmpty = errors.New("btree: bulk load requires an empty tree")

// Entry is one key/value pair for BulkLoad.
type Entry struct {
	Key uint64
	Val uint64
}

// BulkLoad builds the tree bottom-up from a strictly-ascending run of
// entries: leaves are packed full in one sequential pass, then each
// internal level is derived from the (minimum key, child) pairs of the
// level below — no per-key root-to-leaf descent, no splits. The last
// two nodes of every level are rebalanced when the tail would underflow
// Validate's minimum-occupancy invariant, so a bulk-loaded tree is
// structurally indistinguishable from (and searches identically to) an
// insert-built one. The tree must be empty; entries must be strictly
// ascending (equal keys are rejected with ErrDuplicate). On error
// mid-build the tree keeps its previous (empty) shape, though already
// allocated pages are not reclaimed.
func (t *Tree) BulkLoad(entries []Entry) error {
	if t.size != 0 || t.height != 1 {
		return ErrNotEmpty
	}
	if len(entries) == 0 {
		return nil
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key == entries[i-1].Key {
			return fmt.Errorf("%w: %d", ErrDuplicate, entries[i].Key)
		}
		if entries[i].Key < entries[i-1].Key {
			return fmt.Errorf("btree: bulk load entries not sorted at %d", i)
		}
	}

	// Level 0: pack leaves and chain them left to right.
	counts := packCounts(len(entries), t.leafCap, t.minEntries(1))
	keys := make([]uint64, 0, len(counts))
	children := make([]storage.PageID, 0, len(counts))
	pos := 0
	prev := storage.InvalidPageID
	for _, n := range counts {
		id, b, err := t.pool.FetchNew()
		if err != nil {
			return fmt.Errorf("btree: bulk leaf: %w", err)
		}
		initNode(b, kindLeaf)
		for i := 0; i < n; i++ {
			setLeafEntry(b, i, entries[pos+i].Key, entries[pos+i].Val)
		}
		setCount(b, n)
		setNext(b, storage.InvalidPageID)
		if err := t.pool.Unpin(id, true); err != nil {
			return err
		}
		if prev != storage.InvalidPageID {
			pb, err := t.pool.Fetch(prev)
			if err != nil {
				return fmt.Errorf("btree: chain leaves: %w", err)
			}
			setNext(pb, id)
			if err := t.pool.Unpin(prev, true); err != nil {
				return err
			}
		}
		keys = append(keys, entries[pos].Key)
		children = append(children, id)
		pos += n
		prev = id
	}

	// Internal levels: group (minKey, child) pairs until one node is
	// left. A node with c children stores c-1 separator keys, so the
	// fanout is intCap+1 and the occupancy floor is minEntries+1
	// children.
	height := 1
	for len(children) > 1 {
		counts = packCounts(len(children), t.intCap+1, t.minEntries(2)+1)
		upKeys := make([]uint64, 0, len(counts))
		upChildren := make([]storage.PageID, 0, len(counts))
		pos = 0
		for _, n := range counts {
			id, b, err := t.pool.FetchNew()
			if err != nil {
				return fmt.Errorf("btree: bulk internal: %w", err)
			}
			initNode(b, kindInternal)
			setNext(b, children[pos]) // leftmost child
			for i := 1; i < n; i++ {
				setIntEntry(b, i-1, keys[pos+i], children[pos+i])
			}
			setCount(b, n-1)
			if err := t.pool.Unpin(id, true); err != nil {
				return err
			}
			upKeys = append(upKeys, keys[pos])
			upChildren = append(upChildren, id)
			pos += n
		}
		keys, children = upKeys, upChildren
		height++
	}

	// Retire the empty seed root and install the built tree.
	old := t.root
	t.pool.Discard(old)
	if err := t.pool.Store().Free(old); err != nil {
		return fmt.Errorf("btree: free seed root: %w", err)
	}
	t.root = children[0]
	t.height = height
	t.size = len(entries)
	return nil
}

// packCounts splits n items into runs of at most capacity, each of at
// least minN (given n >= minN or a single run), by filling runs left to
// right and rebalancing the last two when the tail falls short.
// Requires capacity >= 2*minN - 1 so a rebalanced pair is always
// feasible.
func packCounts(n, capacity, minN int) []int {
	if n <= capacity {
		return []int{n}
	}
	full := n / capacity
	rem := n - full*capacity
	counts := make([]int, 0, full+1)
	for i := 0; i < full; i++ {
		counts = append(counts, capacity)
	}
	if rem > 0 {
		counts = append(counts, rem)
		if rem < minN {
			// Steal from the previous full node; capacity + rem >= 2*minN.
			total := capacity + rem
			counts[len(counts)-2] = total - total/2
			counts[len(counts)-1] = total / 2
		}
	}
	return counts
}
