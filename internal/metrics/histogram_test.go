package metrics

import (
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Sum != 111 {
		t.Fatalf("sum = %d, want 111", s.Sum)
	}
	// -7 clamps to 0, so bucket 0 holds {0, -7}; bucket 1 holds {1, 1};
	// bucket 2 holds {2, 3}; bucket 3 holds {4}; bucket 7 holds {100}.
	want := map[int]int64{0: 2, 1: 2, 2: 2, 3: 1, 7: 1}
	for i, c := range s.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations (~1µs) and 10 slow ones (~1ms).
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	p50, p99 := s.P50(), s.P99()
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %d, want within the 1µs bucket", p50)
	}
	if p99 < 512*1024 || p99 > 2*1024*1024 {
		t.Fatalf("p99 = %d, want within the 1ms bucket", p99)
	}
	if m := s.Mean(); m < 90_000 || m > 120_000 {
		t.Fatalf("mean = %g, want ~100900", m)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile != 0")
	}
}

// TestHistogramConcurrentObserveSnapshot exercises parallel Observe
// against Snapshot under the race detector: the histogram must stay
// lock-free-consistent (no torn counters, final totals exact).
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var cum int64
			for _, c := range s.Buckets {
				if c < 0 {
					t.Error("negative bucket count")
					return
				}
				cum += c
			}
			_ = s.P99()
		}
	}()
	var og sync.WaitGroup
	for w := 0; w < workers; w++ {
		og.Add(1)
		go func(w int) {
			defer og.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	og.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var cum int64
	for _, c := range s.Buckets {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
