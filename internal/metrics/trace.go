package metrics

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// traceIDKey carries a request's trace id through a context.Context,
// so operations deep in the store can tag the traces they record with
// the network request that caused them.
type traceIDKey struct{}

// WithTraceID returns a context carrying the given trace id. A zero id
// returns ctx unchanged (zero means "untraced" on the wire).
func WithTraceID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace id carried by ctx (0 when none).
func TraceIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(traceIDKey{}).(uint64)
	return id
}

// maxSpans bounds the spans recorded per trace; operations that touch
// more sub-steps (a long route evaluation, a broad range query) keep
// their first maxSpans spans and count the rest in Trace.Dropped.
const maxSpans = 64

// Span is one timed sub-step of a traced operation: the interval
// [Offset, Offset+Dur) relative to the trace's start.
type Span struct {
	Name   string
	Offset time.Duration
	Dur    time.Duration
}

// Trace is one completed operation recorded by a Tracer: the operation
// name, wall-clock timing, its spans, and the error (if any) it
// returned.
type Trace struct {
	Seq     uint64 // monotonically increasing per tracer
	Op      string
	TraceID uint64 // wire trace id when the op ran on behalf of a traced request; 0 otherwise
	Start   time.Time
	Dur     time.Duration
	Spans   []Span
	Dropped int    // spans beyond maxSpans
	Err     string // empty on success
}

// Tracer records recent operation traces in a fixed-capacity ring
// buffer: cheap enough to leave on, detailed enough to explain why one
// Find was slow (index descent vs. buffer fetch vs. physical read). A
// nil *Tracer disables tracing: Start returns a nil *ActiveTrace whose
// methods all no-op.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next int
	seq  uint64
}

// NewTracer returns a tracer keeping the most recent capacity traces
// (default 128 when capacity ≤ 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 128
	}
	return &Tracer{ring: make([]Trace, 0, capacity)}
}

// Start begins a trace of operation op. Returns nil (a valid,
// do-nothing handle) on a nil tracer.
func (t *Tracer) Start(op string) *ActiveTrace {
	if t == nil {
		return nil
	}
	return &ActiveTrace{tracer: t, op: op, start: time.Now()}
}

// StartCtx is Start tagging the trace with the trace id carried by ctx
// (see WithTraceID), so /traces can answer "what did request X do". On
// a nil tracer it returns nil without touching the context, keeping
// the disabled path free of ctx.Value lookups.
func (t *Tracer) StartCtx(ctx context.Context, op string) *ActiveTrace {
	if t == nil {
		return nil
	}
	return &ActiveTrace{tracer: t, op: op, start: time.Now(), traceID: TraceIDFrom(ctx)}
}

// record appends a finished trace to the ring.
func (t *Tracer) record(tr Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	tr.Seq = t.seq
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		t.next = len(t.ring) % cap(t.ring)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % cap(t.ring)
}

// Recent returns up to n of the most recent traces, newest first. It
// returns nil on a nil tracer.
func (t *Tracer) Recent(n int) []Trace {
	return t.Select(n, TraceFilter{})
}

// TraceFilter narrows a Select: zero fields match everything.
type TraceFilter struct {
	// TraceID, when non-zero, keeps only traces tagged with this wire
	// trace id.
	TraceID uint64
	// Op, when non-empty, keeps only traces of this operation.
	Op string
}

func (f TraceFilter) match(tr *Trace) bool {
	if f.TraceID != 0 && tr.TraceID != f.TraceID {
		return false
	}
	if f.Op != "" && tr.Op != f.Op {
		return false
	}
	return true
}

// Select returns up to n of the most recent traces matching the
// filter, newest first. It returns nil on a nil tracer.
func (t *Tracer) Select(n int, f TraceFilter) []Trace {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Newest element sits just before next (mod length) once the ring
	// is full; before that, at the end of the slice.
	idx := t.next - 1
	if len(t.ring) < cap(t.ring) {
		idx = len(t.ring) - 1
	}
	var out []Trace
	for i := 0; i < len(t.ring) && len(out) < n; i++ {
		j := (idx - i + len(t.ring)) % len(t.ring)
		tr := t.ring[j]
		if !f.match(&tr) {
			continue
		}
		tr.Spans = append([]Span(nil), tr.Spans...)
		out = append(out, tr)
	}
	return out
}

// Capacity returns the ring size (0 on a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// WriteTo dumps the recent traces newest-first in a human-readable
// form, implementing io.WriterTo.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	return WriteTraces(w, t.Recent(t.Capacity()))
}

// WriteTraces renders traces (one line each) in the /traces dump
// format: sequence number, op, duration, the wire trace id when the op
// ran on behalf of a traced request, the error if any, and every span.
func WriteTraces(w io.Writer, traces []Trace) (int64, error) {
	var n int64
	for _, tr := range traces {
		line := fmt.Sprintf("#%d %s %v", tr.Seq, tr.Op, tr.Dur)
		if tr.TraceID != 0 {
			line += fmt.Sprintf(" trace=%016x", tr.TraceID)
		}
		if tr.Err != "" {
			line += " err=" + tr.Err
		}
		if tr.Dropped > 0 {
			line += fmt.Sprintf(" dropped=%d", tr.Dropped)
		}
		for _, sp := range tr.Spans {
			line += fmt.Sprintf(" [%s +%v %v]", sp.Name, sp.Offset, sp.Dur)
		}
		m, err := fmt.Fprintln(w, line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ActiveTrace is an in-flight trace. It is owned by one goroutine (the
// operation being traced); all methods are safe on a nil receiver, so
// call sites need no enabled-checks.
type ActiveTrace struct {
	tracer  *Tracer
	op      string
	traceID uint64
	start   time.Time
	spans   []Span
	dropped int
}

// SetTraceID tags the trace with a wire trace id. No-op on a nil
// trace.
func (a *ActiveTrace) SetTraceID(id uint64) {
	if a != nil {
		a.traceID = id
	}
}

// SpanToken marks an open span; close it with End. The zero token
// (from a nil trace) is valid and inert.
type SpanToken struct {
	at    *ActiveTrace
	idx   int
	start time.Time
}

// BeginSpan opens a named span. On a nil trace it returns an inert
// token.
func (a *ActiveTrace) BeginSpan(name string) SpanToken {
	if a == nil {
		return SpanToken{}
	}
	if len(a.spans) >= maxSpans {
		a.dropped++
		return SpanToken{}
	}
	a.spans = append(a.spans, Span{Name: name, Offset: time.Since(a.start)})
	return SpanToken{at: a, idx: len(a.spans) - 1, start: time.Now()}
}

// End closes the span. No-op on an inert token.
func (s SpanToken) End() {
	if s.at == nil {
		return
	}
	s.at.spans[s.idx].Dur = time.Since(s.start)
}

// Finish completes the trace and records it with the tracer. No-op on
// a nil trace.
func (a *ActiveTrace) Finish(err error) {
	if a == nil {
		return
	}
	tr := Trace{
		Op:      a.op,
		TraceID: a.traceID,
		Start:   a.start,
		Dur:     time.Since(a.start),
		Spans:   a.spans,
		Dropped: a.dropped,
	}
	if err != nil {
		tr.Err = err.Error()
	}
	a.tracer.record(tr)
}
