package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry returned non-nil instruments: %v %v %v", c, g, h)
	}
	// None of these may panic.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	h.Observe(7)
	h.ObserveSince(time.Now())
	r.GaugeFunc("f", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v)", n, err)
	}
	if s := r.String(); s != "{}" {
		t.Fatalf("nil registry String() = %q", s)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("two lookups of one counter differ")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("two lookups of one gauge differ")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("two lookups of one histogram differ")
	}
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("g").Set(0.25)
	if got := r.Gauge("g").Value(); got != 0.25 {
		t.Fatalf("gauge = %g, want 0.25", got)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestTracerRingAndSpans(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		at := tr.Start("op")
		tok := at.BeginSpan("step")
		tok.End()
		at.Finish(nil)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(recent))
	}
	if recent[0].Seq != 6 || recent[3].Seq != 3 {
		t.Fatalf("newest-first order broken: seqs %d..%d", recent[0].Seq, recent[3].Seq)
	}
	if len(recent[0].Spans) != 1 || recent[0].Spans[0].Name != "step" {
		t.Fatalf("spans not recorded: %+v", recent[0].Spans)
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "op") || !strings.Contains(sb.String(), "[step") {
		t.Fatalf("trace dump missing fields: %q", sb.String())
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	at := tr.Start("op")
	tok := at.BeginSpan("s")
	tok.End()
	at.Finish(nil)
	if got := tr.Recent(5); got != nil {
		t.Fatalf("nil tracer Recent = %v", got)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(1)
	at := tr.Start("wide")
	for i := 0; i < maxSpans+5; i++ {
		at.BeginSpan("s").End()
	}
	at.Finish(nil)
	got := tr.Recent(1)[0]
	if len(got.Spans) != maxSpans || got.Dropped != 5 {
		t.Fatalf("spans=%d dropped=%d, want %d and 5", len(got.Spans), got.Dropped, maxSpans)
	}
}
