package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers the full int64 range with power-of-two boundaries:
// bucket 0 holds the value 0, bucket i (1 ≤ i ≤ 63) holds values v
// with 2^(i-1) ≤ v < 2^i. For nanosecond latencies that spans sub-ns
// to ~292 years, so no observation is ever clipped.
const numBuckets = 64

// Histogram is a fixed-bucket latency histogram with power-of-two
// boundaries. Observe is lock-free (one atomic add per bucket plus the
// count and sum), so parallel readers can record latencies while a
// scraper snapshots. The zero value is ready to use; a nil *Histogram
// ignores all updates.
//
// Quantile estimates come from the bucket counts: the reported value
// is the midpoint of the bucket holding the requested rank, so the
// estimate is within 2x of the true quantile — ample for the
// order-of-magnitude questions ("is p99 a disk read or a seek storm?")
// this repository asks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex returns the bucket of value v (negatives clamp to 0).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive lower and exclusive upper bound
// of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i == 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1) << i
}

// Observe records one value (typically nanoseconds). No-op on a nil
// receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since start. No-op on a
// nil receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a consistent-enough copy of the histogram: each
// field is loaded atomically, so no value is torn, though buckets
// racing with Observe may be off by in-flight observations.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [numBuckets]int64
}

// Mean returns the average observed value, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) as the midpoint of the
// bucket containing the rank, or 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	lo, hi := bucketBounds(numBuckets - 1)
	return lo + (hi-lo)/2
}

// P50 returns the estimated median.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P95 returns the estimated 95th percentile.
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }

// P99 returns the estimated 99th percentile.
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }
