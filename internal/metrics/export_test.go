package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteToGolden locks the Prometheus text rendering: deterministic
// ordering, counter/gauge/histogram shapes, name sanitization.
func TestWriteToGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ccam_op_find_total").Add(3)
	r.Counter("a_first").Add(1)
	r.Gauge("ccam_crr").Set(0.875)
	r.GaugeFunc("derived.value", func() float64 { return 2 })
	h := r.Histogram("ccam_op_find_ns")
	h.Observe(3) // bucket le=4
	h.Observe(5) // bucket le=8
	h.Observe(5)

	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if int64(len(got)) != n {
		t.Fatalf("WriteTo returned %d, wrote %d bytes", n, len(got))
	}
	const want = `# TYPE a_first counter
a_first 1
# TYPE ccam_op_find_total counter
ccam_op_find_total 3
# TYPE ccam_crr gauge
ccam_crr 0.875
# TYPE derived_value gauge
derived_value 2
# TYPE ccam_op_find_ns histogram
ccam_op_find_ns_bucket{le="4"} 1
ccam_op_find_ns_bucket{le="8"} 3
ccam_op_find_ns_bucket{le="+Inf"} 3
ccam_op_find_ns_sum 13
ccam_op_find_ns_count 3
`
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpvarJSONView(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(7)
	r.Gauge("crr").Set(0.5)
	r.Histogram("lat").Observe(1024)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.String()), &m); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}
	if m["ops"].(float64) != 7 {
		t.Fatalf("ops = %v, want 7", m["ops"])
	}
	if m["crr"].(float64) != 0.5 {
		t.Fatalf("crr = %v, want 0.5", m["crr"])
	}
	lat := m["lat"].(map[string]any)
	if lat["count"].(float64) != 1 {
		t.Fatalf("lat.count = %v, want 1", lat["count"])
	}
	if lat["p50"].(float64) <= 0 {
		t.Fatalf("lat.p50 = %v, want > 0", lat["p50"])
	}
}
