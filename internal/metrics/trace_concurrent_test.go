package metrics

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestTracerConcurrentWraparound drives the trace ring far past its
// capacity from 8 goroutines at once and then checks the invariants a
// consumer of /traces relies on: the ring holds exactly its capacity,
// Recent returns traces newest-first with strictly consecutive
// sequence numbers (ring order == record order), and every trace
// carries its own spans with the correct Dropped count. Run under
// -race this also pins the locking of Start/BeginSpan/Finish/Recent.
func TestTracerConcurrentWraparound(t *testing.T) {
	const (
		capacity   = 16
		goroutines = 8
		perG       = 100
		spansPer   = maxSpans + 10
	)
	tr := NewTracer(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", g)
			for i := 0; i < perG; i++ {
				at := tr.Start(op)
				for s := 0; s < spansPer; s++ {
					sp := at.BeginSpan("step")
					sp.End()
				}
				// Readers race the writers on purpose.
				if i%10 == 0 {
					tr.Recent(4)
				}
				at.Finish(nil)
			}
		}(g)
	}
	wg.Wait()

	got := tr.Recent(10 * capacity)
	if len(got) != capacity {
		t.Fatalf("ring holds %d traces, want %d", len(got), capacity)
	}
	if got[0].Seq != goroutines*perG {
		t.Fatalf("newest Seq = %d, want %d (every Finish must be recorded exactly once)",
			got[0].Seq, goroutines*perG)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq-1 {
			t.Fatalf("ring order broken at %d: Seq %d follows %d (want strictly consecutive newest-first)",
				i, got[i].Seq, got[i-1].Seq)
		}
	}
	for _, rec := range got {
		if len(rec.Spans) != maxSpans {
			t.Fatalf("trace #%d kept %d spans, want %d", rec.Seq, len(rec.Spans), maxSpans)
		}
		if rec.Dropped != spansPer-maxSpans {
			t.Fatalf("trace #%d Dropped = %d, want %d", rec.Seq, rec.Dropped, spansPer-maxSpans)
		}
	}
}

// TestTracerSelectFiltering covers the /traces?trace=&op= path: traces
// tagged with a context trace id are retrievable by that id, and op
// filtering composes with the limit.
func TestTracerSelectFiltering(t *testing.T) {
	tr := NewTracer(32)
	ctx := WithTraceID(context.Background(), 0xABCD)
	if got := TraceIDFrom(ctx); got != 0xABCD {
		t.Fatalf("TraceIDFrom = %#x, want 0xabcd", got)
	}
	if got := TraceIDFrom(context.Background()); got != 0 {
		t.Fatalf("TraceIDFrom(background) = %#x, want 0", got)
	}

	for i := 0; i < 5; i++ {
		at := tr.StartCtx(context.Background(), "find")
		at.Finish(nil)
	}
	at := tr.StartCtx(ctx, "find")
	at.Finish(nil)
	at = tr.StartCtx(ctx, "apply")
	at.Finish(nil)

	byID := tr.Select(100, TraceFilter{TraceID: 0xABCD})
	if len(byID) != 2 {
		t.Fatalf("Select by trace id returned %d traces, want 2", len(byID))
	}
	if byID[0].Op != "apply" || byID[1].Op != "find" {
		t.Fatalf("Select order = %s,%s, want apply,find (newest first)", byID[0].Op, byID[1].Op)
	}
	both := tr.Select(100, TraceFilter{TraceID: 0xABCD, Op: "find"})
	if len(both) != 1 || both[0].TraceID != 0xABCD {
		t.Fatalf("Select by id+op = %+v, want one find tagged 0xabcd", both)
	}
	limited := tr.Select(3, TraceFilter{Op: "find"})
	if len(limited) != 3 {
		t.Fatalf("Select limit returned %d, want 3", len(limited))
	}
	// A nil tracer stays inert through the new paths too.
	var nilT *Tracer
	if nilT.Select(5, TraceFilter{}) != nil || nilT.Capacity() != 0 {
		t.Fatal("nil tracer Select/Capacity not inert")
	}
	nilT.StartCtx(ctx, "x").SetTraceID(1) // must not panic
}
