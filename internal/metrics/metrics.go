// Package metrics is the observability substrate of the repository: a
// lock-free registry of named counters, gauges and latency histograms,
// a lightweight operation tracer, and exporters in Prometheus text and
// expvar-style JSON formats. It depends only on the standard library.
//
// The package is built around a disabled-by-default fast path: every
// instrument method is safe to call on a nil receiver and does nothing,
// so instrumented code holds a possibly-nil *Counter (or *Histogram,
// *Gauge, *Tracer) and calls it unconditionally — no branches, no
// allocations, near-zero cost when metrics are off. When metrics are
// on, the hot paths (Counter.Add, Gauge.Set, Histogram.Observe) are a
// handful of atomic operations and never take a lock; the registry's
// mutex guards only instrument registration and snapshotting.
//
// Naming follows the Prometheus convention (snake_case, a _total
// suffix for counters, a unit suffix such as _ns for histograms); the
// exporters sanitize any stray characters.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; a nil *Counter ignores all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. The zero value is ready to
// use; a nil *Gauge ignores all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a namespace of instruments. Instruments are created on
// first use and live for the registry's lifetime; looking one up again
// returns the same instance. All methods are safe for concurrent use,
// and every method is safe on a nil *Registry (returning nil
// instruments, which in turn ignore updates) — a disabled metrics
// configuration is simply a nil registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the counter registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if
// needed. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// if needed. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// GaugeFunc registers fn as a derived gauge: exporters call it at
// collection time, so an existing atomic counter elsewhere can be
// exported without double-counting in its hot path. Re-registering a
// name replaces the function. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// names returns the sorted names of one instrument map.
func sortedNames[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
