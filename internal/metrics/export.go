package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// sanitizeName maps a metric name onto the Prometheus charset
// [a-zA-Z0-9_:], replacing every other rune with '_'.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteTo renders every instrument in the Prometheus text exposition
// format (version 0.0.4), implementing io.WriterTo: counters and
// gauges as single samples, histograms as cumulative _bucket series
// with power-of-two le boundaries plus _sum and _count. Output is
// sorted by name, so equal registries produce byte-equal dumps. A nil
// registry writes nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	cw := &countingWriter{w: w}

	for _, name := range sortedNames(r.counters) {
		n := sanitizeName(name)
		fmt.Fprintf(cw, "# TYPE %s counter\n%s %d\n", n, n, r.counters[name].Value())
	}
	for _, name := range sortedNames(r.gauges) {
		n := sanitizeName(name)
		fmt.Fprintf(cw, "# TYPE %s gauge\n%s %g\n", n, n, r.gauges[name].Value())
	}
	for _, name := range sortedNames(r.funcs) {
		n := sanitizeName(name)
		fmt.Fprintf(cw, "# TYPE %s gauge\n%s %g\n", n, n, r.funcs[name]())
	}
	for _, name := range sortedNames(r.hists) {
		n := sanitizeName(name)
		s := r.hists[name].Snapshot()
		fmt.Fprintf(cw, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range s.Buckets {
			if c == 0 {
				continue
			}
			cum += c
			_, hi := bucketBounds(i)
			fmt.Fprintf(cw, "%s_bucket{le=\"%d\"} %d\n", n, hi, cum)
		}
		fmt.Fprintf(cw, "%s_bucket{le=\"+Inf\"} %d\n", n, s.Count)
		fmt.Fprintf(cw, "%s_sum %d\n", n, s.Sum)
		fmt.Fprintf(cw, "%s_count %d\n", n, s.Count)
	}
	return cw.n, cw.err
}

// countingWriter tracks bytes written and the first error, so WriteTo
// can use fmt.Fprintf freely.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// histJSON is the JSON shape of one histogram summary.
type histJSON struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// String renders the registry as a JSON object — counters and gauges
// as numbers, histograms as {count, sum, mean, p50, p95, p99}
// summaries — which makes *Registry an expvar.Var: publish it with
// expvar.Publish("ccam", reg) and it appears under /debug/vars.
// A nil registry renders as {}.
func (r *Registry) String() string {
	m := r.exportMap()
	b, err := json.Marshal(m)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// exportMap builds the name → value view behind String.
func (r *Registry) exportMap() map[string]any {
	m := map[string]any{}
	if r == nil {
		return m
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m[name] = c.Value()
	}
	for name, g := range r.gauges {
		m[name] = g.Value()
	}
	for name, fn := range r.funcs {
		m[name] = fn()
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		m[name] = histJSON{
			Count: s.Count, Sum: s.Sum, Mean: s.Mean(),
			P50: s.P50(), P95: s.P95(), P99: s.P99(),
		}
	}
	return m
}
