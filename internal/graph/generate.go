package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ccam/internal/geom"
)

// RoadMapOpts configures the synthetic road-network generator that
// stands in for the paper's Minneapolis road map (see DESIGN.md §4).
type RoadMapOpts struct {
	// Rows, Cols size the underlying street lattice (intersections).
	Rows, Cols int
	// Extent is the geographic bounding box of the map.
	Extent geom.Rect
	// Jitter perturbs intersection positions by up to this fraction of
	// the cell spacing, so the map is not a perfect lattice.
	Jitter float64
	// DeleteFrac is the fraction of lattice street segments removed
	// (parks, rivers, missing links). Real road networks average an
	// undirected degree near 2.8-3.0, versus 4.0 for a full lattice.
	DeleteFrac float64
	// OneWayFrac is the fraction of surviving segments that become
	// one-way streets (a single directed edge) instead of two-way.
	OneWayFrac float64
	// DiagFrac adds diagonal shortcuts (highways) on this fraction of
	// lattice cells.
	DiagFrac float64
	// AttrBytes is the size of the opaque attribute payload stored in
	// each node record; it determines the blocking factor γ.
	AttrBytes int
	// Seed drives all randomness; equal seeds give identical maps.
	Seed int64
}

// MinneapolisLikeOpts returns generator options tuned so that the
// resulting map matches the scale of the paper's test data: 1079 nodes
// and 3057 directed edges over a 20-square-mile section, with a mean
// successor-list length near the paper's |A| = 2.833.
func MinneapolisLikeOpts() RoadMapOpts {
	return RoadMapOpts{
		Rows: 34, Cols: 33,
		Extent:     geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 8000, Y: 8000}),
		Jitter:     0.30,
		DeleteFrac: 0.245,
		OneWayFrac: 0.10,
		DiagFrac:   0.02,
		AttrBytes:  24,
		// Seed 169 lands the generator closest to the paper's data set:
		// 1077 nodes, 3045 directed edges, |A| = 2.827 (paper: 1079
		// nodes, 3057 edges, |A| = 2.833).
		Seed: 169,
	}
}

// RoadMap generates a synthetic planar road network. The construction:
// jittered lattice of intersections, random deletion of street
// segments, occasional one-way streets and diagonal shortcuts, then
// restriction to the largest weakly connected component (so every
// experiment runs on a single connected road system).
func RoadMap(opts RoadMapOpts) (*Network, error) {
	if opts.Rows < 2 || opts.Cols < 2 {
		return nil, fmt.Errorf("graph: road map needs at least a 2x2 lattice, got %dx%d", opts.Rows, opts.Cols)
	}
	if opts.DeleteFrac < 0 || opts.DeleteFrac >= 1 {
		return nil, fmt.Errorf("graph: DeleteFrac %f out of [0,1)", opts.DeleteFrac)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := NewNetwork()

	cellW := opts.Extent.Width() / float64(opts.Cols-1)
	cellH := opts.Extent.Height() / float64(opts.Rows-1)
	nodeAt := func(r, c int) NodeID { return NodeID(r*opts.Cols + c) }

	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			jx := (rng.Float64()*2 - 1) * opts.Jitter * cellW
			jy := (rng.Float64()*2 - 1) * opts.Jitter * cellH
			attrs := make([]byte, opts.AttrBytes)
			rng.Read(attrs)
			if err := g.AddNode(Node{
				ID:    nodeAt(r, c),
				Pos:   geom.Point{X: opts.Extent.Min.X + float64(c)*cellW + jx, Y: opts.Extent.Min.Y + float64(r)*cellH + jy},
				Attrs: attrs,
			}); err != nil {
				return nil, err
			}
		}
	}

	addSegment := func(a, b NodeID) {
		if rng.Float64() < opts.DeleteFrac {
			return
		}
		na, _ := g.Node(a)
		nb, _ := g.Node(b)
		dist := math.Hypot(na.Pos.X-nb.Pos.X, na.Pos.Y-nb.Pos.Y)
		cost := dist * (0.8 + 0.4*rng.Float64()) // travel time varies
		if rng.Float64() < opts.OneWayFrac {
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			g.AddEdge(Edge{From: a, To: b, Cost: cost, Weight: 1})
			return
		}
		g.AddEdge(Edge{From: a, To: b, Cost: cost, Weight: 1})
		g.AddEdge(Edge{From: b, To: a, Cost: cost * (0.9 + 0.2*rng.Float64()), Weight: 1})
	}

	for r := 0; r < opts.Rows; r++ {
		for c := 0; c < opts.Cols; c++ {
			if c+1 < opts.Cols {
				addSegment(nodeAt(r, c), nodeAt(r, c+1))
			}
			if r+1 < opts.Rows {
				addSegment(nodeAt(r, c), nodeAt(r+1, c))
			}
			if r+1 < opts.Rows && c+1 < opts.Cols && rng.Float64() < opts.DiagFrac {
				if rng.Intn(2) == 0 {
					addSegment(nodeAt(r, c), nodeAt(r+1, c+1))
				} else {
					addSegment(nodeAt(r, c+1), nodeAt(r+1, c))
				}
			}
		}
	}

	keepLargestComponent(g)
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("graph: road map generation produced an empty network")
	}
	return g, nil
}

// keepLargestComponent removes every node outside the largest weakly
// connected component.
func keepLargestComponent(g *Network) {
	visited := map[NodeID]int{} // node -> component index
	comp := 0
	var compSize []int
	for id := range g.nodes {
		if _, ok := visited[id]; ok {
			continue
		}
		size := 0
		stack := []NodeID{id}
		visited[id] = comp
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, nb := range g.Neighbors(cur) {
				if _, ok := visited[nb]; !ok {
					visited[nb] = comp
					stack = append(stack, nb)
				}
			}
		}
		compSize = append(compSize, size)
		comp++
	}
	best := 0
	for i, s := range compSize {
		if s > compSize[best] {
			best = i
		}
	}
	for id, c := range visited {
		if c != best {
			g.RemoveNode(id)
		}
	}
}

// Grid generates a plain rows×cols lattice with two-way unit-cost
// streets and no deletions; useful for tests with known structure.
func Grid(rows, cols int) *Network {
	g := NewNetwork()
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(Node{ID: id(r, c), Pos: geom.Point{X: float64(c), Y: float64(r)}})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(Edge{From: id(r, c), To: id(r, c+1), Cost: 1, Weight: 1})
				g.AddEdge(Edge{From: id(r, c+1), To: id(r, c), Cost: 1, Weight: 1})
			}
			if r+1 < rows {
				g.AddEdge(Edge{From: id(r, c), To: id(r+1, c), Cost: 1, Weight: 1})
				g.AddEdge(Edge{From: id(r+1, c), To: id(r, c), Cost: 1, Weight: 1})
			}
		}
	}
	return g
}

// RandomGeometric generates n nodes uniformly in extent, connecting
// pairs within radius by two-way edges; the classic random geometric
// graph, restricted to its largest component.
func RandomGeometric(n int, radius float64, extent geom.Rect, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	g := NewNetwork()
	for i := 0; i < n; i++ {
		g.AddNode(Node{
			ID: NodeID(i),
			Pos: geom.Point{
				X: extent.Min.X + rng.Float64()*extent.Width(),
				Y: extent.Min.Y + rng.Float64()*extent.Height(),
			},
		})
	}
	ids := g.NodeIDs()
	for i, a := range ids {
		na, _ := g.Node(a)
		for _, b := range ids[i+1:] {
			nb, _ := g.Node(b)
			d := math.Hypot(na.Pos.X-nb.Pos.X, na.Pos.Y-nb.Pos.Y)
			if d <= radius {
				g.AddEdge(Edge{From: a, To: b, Cost: d, Weight: 1})
				g.AddEdge(Edge{From: b, To: a, Cost: d, Weight: 1})
			}
		}
	}
	keepLargestComponent(g)
	return g
}

// Route is a node sequence n1..nk connected by directed edges, the unit
// of the paper's route evaluation queries.
type Route []NodeID

// Validate checks that every consecutive pair is a directed edge of g.
func (r Route) Validate(g *Network) error {
	if len(r) == 0 {
		return fmt.Errorf("%w: empty", ErrInvalidRoute)
	}
	for i := 0; i+1 < len(r); i++ {
		if _, err := g.Edge(r[i], r[i+1]); err != nil {
			return fmt.Errorf("%w: hop %d: %v", ErrInvalidRoute, i, err)
		}
	}
	return nil
}

// RandomWalkRoutes generates count routes of exactly length nodes each
// by random walks on g, as in the paper's route-evaluation experiment
// (a route of length L has L nodes and L-1 edges). Walks avoid
// immediately backtracking when another choice exists. Starting nodes
// are sampled uniformly; walks that dead-end restart from a fresh node.
func RandomWalkRoutes(g *Network, count, length int, rng *rand.Rand) ([]Route, error) {
	if length < 2 {
		return nil, fmt.Errorf("graph: route length %d < 2", length)
	}
	ids := g.NodeIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("graph: empty network")
	}
	routes := make([]Route, 0, count)
	const maxAttemptsPerRoute = 1000
	for len(routes) < count {
		var route Route
		ok := false
		for attempt := 0; attempt < maxAttemptsPerRoute; attempt++ {
			route = route[:0]
			cur := ids[rng.Intn(len(ids))]
			route = append(route, cur)
			prev := InvalidNodeID
			for len(route) < length {
				succs := g.Successors(cur)
				if len(succs) == 0 {
					break
				}
				// Prefer not to bounce straight back.
				cand := succs
				if len(succs) > 1 && prev != InvalidNodeID {
					cand = cand[:0:0]
					for _, s := range succs {
						if s != prev {
							cand = append(cand, s)
						}
					}
					if len(cand) == 0 {
						cand = succs
					}
				}
				nxt := cand[rng.Intn(len(cand))]
				route = append(route, nxt)
				prev, cur = cur, nxt
			}
			if len(route) == length {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("graph: could not generate route of length %d (network too constrained)", length)
		}
		routes = append(routes, append(Route(nil), route...))
	}
	return routes, nil
}

// ApplyRouteWeights sets each edge's access weight to the number of
// times the routes traverse it (the paper's non-uniform weight
// derivation for the WCRR experiments). Edges not on any route get
// weight 0. Returns the number of traversals counted.
func ApplyRouteWeights(g *Network, routes []Route) (int, error) {
	counts := map[[2]NodeID]float64{}
	total := 0
	for _, r := range routes {
		if err := r.Validate(g); err != nil {
			return 0, err
		}
		for i := 0; i+1 < len(r); i++ {
			counts[[2]NodeID{r[i], r[i+1]}]++
			total++
		}
	}
	for from, hes := range g.succ {
		for i := range hes {
			g.succ[from][i].weight = counts[[2]NodeID{from, hes[i].to}]
		}
	}
	return total, nil
}

// UniformWeights resets every edge's access weight to 1.
func UniformWeights(g *Network) {
	for from := range g.succ {
		for i := range g.succ[from] {
			g.succ[from][i].weight = 1
		}
	}
}

// DegreeHistogram returns out-degree -> node count, for reporting.
func DegreeHistogram(g *Network) map[int]int {
	h := map[int]int{}
	for id := range g.nodes {
		h[len(g.succ[id])]++
	}
	return h
}

// SortedRouteNodes returns the distinct nodes appearing in routes, in
// ascending order; used by experiments that touch only route nodes.
func SortedRouteNodes(routes []Route) []NodeID {
	seen := map[NodeID]bool{}
	for _, r := range routes {
		for _, id := range r {
			seen[id] = true
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RadialCityOpts configures the ring-and-spoke generator.
type RadialCityOpts struct {
	// Rings is the number of concentric ring roads; Spokes the number
	// of radial arterials.
	Rings, Spokes int
	// Radius is the outermost ring's radius; rings are spaced evenly.
	Radius float64
	// Center is the city centre (also a node, connected to ring 1).
	Center geom.Point
	// Jitter perturbs node positions by up to this fraction of the ring
	// spacing.
	Jitter float64
	// DeleteFrac removes this fraction of road segments.
	DeleteFrac float64
	// AttrBytes sizes the per-node attribute payload.
	AttrBytes int
	// Seed drives all randomness.
	Seed int64
}

// RadialCity generates a ring-and-spoke road network — the older
// European-city topology, as opposed to RoadMap's American grid. Nodes
// sit at ring/spoke intersections; edges follow rings and spokes, all
// two-way. The generator exercises clustering on a topology whose
// connectivity/proximity correlation differs from a grid (rings are
// long thin loops).
func RadialCity(opts RadialCityOpts) (*Network, error) {
	if opts.Rings < 1 || opts.Spokes < 3 {
		return nil, fmt.Errorf("graph: radial city needs >=1 ring and >=3 spokes, got %d/%d", opts.Rings, opts.Spokes)
	}
	if opts.Radius <= 0 {
		opts.Radius = 1000
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := NewNetwork()
	spacing := opts.Radius / float64(opts.Rings)

	id := func(ring, spoke int) NodeID { return NodeID(ring*opts.Spokes + spoke) }
	centerID := NodeID(opts.Rings * opts.Spokes)

	attrs := func() []byte {
		if opts.AttrBytes <= 0 {
			return nil
		}
		b := make([]byte, opts.AttrBytes)
		rng.Read(b)
		return b
	}
	for ring := 0; ring < opts.Rings; ring++ {
		r := spacing * float64(ring+1)
		for spoke := 0; spoke < opts.Spokes; spoke++ {
			angle := 2 * math.Pi * float64(spoke) / float64(opts.Spokes)
			jx := (rng.Float64()*2 - 1) * opts.Jitter * spacing
			jy := (rng.Float64()*2 - 1) * opts.Jitter * spacing
			if err := g.AddNode(Node{
				ID: id(ring, spoke),
				Pos: geom.Point{
					X: opts.Center.X + r*math.Cos(angle) + jx,
					Y: opts.Center.Y + r*math.Sin(angle) + jy,
				},
				Attrs: attrs(),
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := g.AddNode(Node{ID: centerID, Pos: opts.Center, Attrs: attrs()}); err != nil {
		return nil, err
	}

	addSegment := func(a, b NodeID) {
		if rng.Float64() < opts.DeleteFrac {
			return
		}
		na, _ := g.Node(a)
		nb, _ := g.Node(b)
		dist := math.Hypot(na.Pos.X-nb.Pos.X, na.Pos.Y-nb.Pos.Y)
		cost := dist * (0.8 + 0.4*rng.Float64())
		g.AddEdge(Edge{From: a, To: b, Cost: cost, Weight: 1})
		g.AddEdge(Edge{From: b, To: a, Cost: cost * (0.9 + 0.2*rng.Float64()), Weight: 1})
	}
	// Ring roads.
	for ring := 0; ring < opts.Rings; ring++ {
		for spoke := 0; spoke < opts.Spokes; spoke++ {
			addSegment(id(ring, spoke), id(ring, (spoke+1)%opts.Spokes))
		}
	}
	// Spoke roads, including centre connections.
	for spoke := 0; spoke < opts.Spokes; spoke++ {
		addSegment(centerID, id(0, spoke))
		for ring := 0; ring+1 < opts.Rings; ring++ {
			addSegment(id(ring, spoke), id(ring+1, spoke))
		}
	}
	keepLargestComponent(g)
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("graph: radial city generation produced an empty network")
	}
	return g, nil
}
