// Package graph models the networks CCAM stores: directed graphs whose
// nodes carry planar coordinates and whose node records keep both a
// successor-list (outgoing edges with costs) and a predecessor-list
// (incoming edges), exactly as in the paper's adjacency-list
// representation. It also provides the clustering-quality metrics CRR
// and WCRR, synthetic road-map generators standing in for the
// Minneapolis data set, and random-walk route generation for the route
// evaluation experiments.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"ccam/internal/geom"
)

// NodeID identifies a network node.
type NodeID uint32

// InvalidNodeID is a sentinel for "no node".
const InvalidNodeID = NodeID(^uint32(0))

// Errors returned by network mutations.
var (
	ErrNodeExists   = errors.New("graph: node already exists")
	ErrNodeMissing  = errors.New("graph: node not found")
	ErrEdgeExists   = errors.New("graph: edge already exists")
	ErrEdgeMissing  = errors.New("graph: edge not found")
	ErrSelfLoop     = errors.New("graph: self loops not supported")
	ErrInvalidRoute = errors.New("graph: invalid route")
)

// Edge is a directed edge with a traversal cost (e.g. travel time) and
// an access weight w(u,v): the relative frequency with which queries
// access u and v together. Uniform-weight experiments set Weight = 1.
type Edge struct {
	From, To NodeID
	Cost     float64
	Weight   float64
}

// Node is a network node: identity, embedding coordinates, and an
// application payload (opaque attribute bytes sized like real road
// attributes so that blocking factors are realistic).
type Node struct {
	ID    NodeID
	Pos   geom.Point
	Attrs []byte
}

// halfEdge is the adjacency-list entry stored per direction.
type halfEdge struct {
	to     NodeID
	cost   float64
	weight float64
}

// Network is a mutable directed graph with successor- and
// predecessor-lists per node.
type Network struct {
	nodes map[NodeID]*Node
	succ  map[NodeID][]halfEdge // outgoing
	pred  map[NodeID][]NodeID   // incoming (origin ids)
	edges int
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		nodes: make(map[NodeID]*Node),
		succ:  make(map[NodeID][]halfEdge),
		pred:  make(map[NodeID][]NodeID),
	}
}

// NumNodes returns the number of nodes.
func (g *Network) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges.
func (g *Network) NumEdges() int { return g.edges }

// HasNode reports whether id exists.
func (g *Network) HasNode(id NodeID) bool {
	_, ok := g.nodes[id]
	return ok
}

// Node returns the node with the given id.
func (g *Network) Node(id NodeID) (*Node, error) {
	n, ok := g.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNodeMissing, id)
	}
	return n, nil
}

// AddNode inserts a node.
func (g *Network) AddNode(n Node) error {
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %d", ErrNodeExists, n.ID)
	}
	cp := n
	if n.Attrs != nil {
		cp.Attrs = append([]byte(nil), n.Attrs...)
	}
	g.nodes[n.ID] = &cp
	return nil
}

// RemoveNode deletes a node and all incident edges.
func (g *Network) RemoveNode(id NodeID) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNodeMissing, id)
	}
	for _, he := range g.succ[id] {
		g.pred[he.to] = removeID(g.pred[he.to], id)
		g.edges--
	}
	for _, from := range g.pred[id] {
		g.succ[from] = removeHalfEdge(g.succ[from], id)
		g.edges--
	}
	delete(g.succ, id)
	delete(g.pred, id)
	delete(g.nodes, id)
	return nil
}

// AddEdge inserts a directed edge.
func (g *Network) AddEdge(e Edge) error {
	if e.From == e.To {
		return fmt.Errorf("%w: %d", ErrSelfLoop, e.From)
	}
	if !g.HasNode(e.From) {
		return fmt.Errorf("%w: from %d", ErrNodeMissing, e.From)
	}
	if !g.HasNode(e.To) {
		return fmt.Errorf("%w: to %d", ErrNodeMissing, e.To)
	}
	for _, he := range g.succ[e.From] {
		if he.to == e.To {
			return fmt.Errorf("%w: %d->%d", ErrEdgeExists, e.From, e.To)
		}
	}
	g.succ[e.From] = append(g.succ[e.From], halfEdge{to: e.To, cost: e.Cost, weight: e.Weight})
	g.pred[e.To] = append(g.pred[e.To], e.From)
	g.edges++
	return nil
}

// RemoveEdge deletes the directed edge from->to.
func (g *Network) RemoveEdge(from, to NodeID) error {
	hes := g.succ[from]
	found := false
	for _, he := range hes {
		if he.to == to {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: %d->%d", ErrEdgeMissing, from, to)
	}
	g.succ[from] = removeHalfEdge(hes, to)
	g.pred[to] = removeID(g.pred[to], from)
	g.edges--
	return nil
}

// Edge returns the directed edge from->to.
func (g *Network) Edge(from, to NodeID) (Edge, error) {
	for _, he := range g.succ[from] {
		if he.to == to {
			return Edge{From: from, To: to, Cost: he.cost, Weight: he.weight}, nil
		}
	}
	return Edge{}, fmt.Errorf("%w: %d->%d", ErrEdgeMissing, from, to)
}

// SetEdgeWeight updates the access weight of edge from->to.
func (g *Network) SetEdgeWeight(from, to NodeID, w float64) error {
	for i, he := range g.succ[from] {
		if he.to == to {
			g.succ[from][i].weight = w
			return nil
		}
	}
	return fmt.Errorf("%w: %d->%d", ErrEdgeMissing, from, to)
}

// Successors returns the successor node ids of id (the adjacency list).
func (g *Network) Successors(id NodeID) []NodeID {
	hes := g.succ[id]
	out := make([]NodeID, len(hes))
	for i, he := range hes {
		out[i] = he.to
	}
	return out
}

// SuccessorEdges returns the outgoing edges of id.
func (g *Network) SuccessorEdges(id NodeID) []Edge {
	hes := g.succ[id]
	out := make([]Edge, len(hes))
	for i, he := range hes {
		out[i] = Edge{From: id, To: he.to, Cost: he.cost, Weight: he.weight}
	}
	return out
}

// Predecessors returns the predecessor node ids of id.
func (g *Network) Predecessors(id NodeID) []NodeID {
	return append([]NodeID(nil), g.pred[id]...)
}

// Neighbors returns the neighbor-list of id: every node appearing in
// its successor- or predecessor-list, deduplicated, order unspecified.
func (g *Network) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(g.succ[id])+len(g.pred[id]))
	var out []NodeID
	for _, he := range g.succ[id] {
		if !seen[he.to] {
			seen[he.to] = true
			out = append(out, he.to)
		}
	}
	for _, from := range g.pred[id] {
		if !seen[from] {
			seen[from] = true
			out = append(out, from)
		}
	}
	return out
}

// NodeIDs returns all node ids in ascending order.
func (g *Network) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all directed edges, ordered by (From, To).
func (g *Network) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for _, id := range g.NodeIDs() {
		hes := g.succ[id]
		es := make([]Edge, len(hes))
		for i, he := range hes {
			es[i] = Edge{From: id, To: he.to, Cost: he.cost, Weight: he.weight}
		}
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
		out = append(out, es...)
	}
	return out
}

// Clone returns a deep copy of the network.
func (g *Network) Clone() *Network {
	c := NewNetwork()
	for id, n := range g.nodes {
		cp := *n
		if n.Attrs != nil {
			cp.Attrs = append([]byte(nil), n.Attrs...)
		}
		c.nodes[id] = &cp
	}
	for id, hes := range g.succ {
		c.succ[id] = append([]halfEdge(nil), hes...)
	}
	for id, ps := range g.pred {
		c.pred[id] = append([]NodeID(nil), ps...)
	}
	c.edges = g.edges
	return c
}

// Subnetwork returns the subgraph induced by keep: the kept nodes and
// every edge with both endpoints kept.
func (g *Network) Subnetwork(keep map[NodeID]bool) *Network {
	s := NewNetwork()
	for id := range keep {
		if n, ok := g.nodes[id]; ok {
			s.AddNode(*n)
		}
	}
	for id := range keep {
		for _, he := range g.succ[id] {
			if keep[he.to] {
				s.AddEdge(Edge{From: id, To: he.to, Cost: he.cost, Weight: he.weight})
			}
		}
	}
	return s
}

// Bounds returns the bounding rectangle of all node positions.
func (g *Network) Bounds() geom.Rect {
	first := true
	var r geom.Rect
	for _, n := range g.nodes {
		if first {
			r = geom.Rect{Min: n.Pos, Max: n.Pos}
			first = false
			continue
		}
		if n.Pos.X < r.Min.X {
			r.Min.X = n.Pos.X
		}
		if n.Pos.Y < r.Min.Y {
			r.Min.Y = n.Pos.Y
		}
		if n.Pos.X > r.Max.X {
			r.Max.X = n.Pos.X
		}
		if n.Pos.Y > r.Max.Y {
			r.Max.Y = n.Pos.Y
		}
	}
	return r
}

// AvgSuccessors returns |A|: the mean length of the successor-list.
func (g *Network) AvgSuccessors() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	return float64(g.edges) / float64(len(g.nodes))
}

// AvgNeighbors returns λ: the mean length of the neighbor-list.
func (g *Network) AvgNeighbors() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	total := 0
	for id := range g.nodes {
		total += len(g.Neighbors(id))
	}
	return float64(total) / float64(len(g.nodes))
}

// Validate checks structural invariants: successor/predecessor
// symmetry, no dangling endpoints, and an accurate edge counter.
func (g *Network) Validate() error {
	n := 0
	for id, hes := range g.succ {
		if _, ok := g.nodes[id]; !ok {
			return fmt.Errorf("graph: succ list for missing node %d", id)
		}
		for _, he := range hes {
			if _, ok := g.nodes[he.to]; !ok {
				return fmt.Errorf("graph: edge %d->%d to missing node", id, he.to)
			}
			if !containsID(g.pred[he.to], id) {
				return fmt.Errorf("graph: edge %d->%d missing from pred list", id, he.to)
			}
			n++
		}
	}
	for id, ps := range g.pred {
		if _, ok := g.nodes[id]; !ok {
			return fmt.Errorf("graph: pred list for missing node %d", id)
		}
		for _, from := range ps {
			found := false
			for _, he := range g.succ[from] {
				if he.to == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: pred entry %d<-%d missing from succ list", id, from)
			}
		}
	}
	if n != g.edges {
		return fmt.Errorf("graph: edge count %d, counted %d", g.edges, n)
	}
	return nil
}

func removeID(s []NodeID, id NodeID) []NodeID {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeHalfEdge(s []halfEdge, to NodeID) []halfEdge {
	for i, he := range s {
		if he.to == to {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func containsID(s []NodeID, id NodeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}
