package graph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/storage"
)

func TestAddRemoveNodeEdge(t *testing.T) {
	g := NewNetwork()
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(Node{ID: 1}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("dup node = %v", err)
	}
	if err := g.AddEdge(Edge{From: 1, To: 2, Cost: 5, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{From: 1, To: 2}); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("dup edge = %v", err)
	}
	if err := g.AddEdge(Edge{From: 1, To: 1}); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop = %v", err)
	}
	if err := g.AddEdge(Edge{From: 1, To: 99}); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("dangling edge = %v", err)
	}
	e, err := g.Edge(1, 2)
	if err != nil || e.Cost != 5 {
		t.Fatalf("Edge = %+v, %v", e, err)
	}
	if _, err := g.Edge(2, 1); !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("reverse edge = %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(1, 2); !errors.Is(err, ErrEdgeMissing) {
		t.Fatalf("double remove = %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeCleansIncidentEdges(t *testing.T) {
	g := NewNetwork()
	for i := NodeID(1); i <= 4; i++ {
		g.AddNode(Node{ID: i})
	}
	g.AddEdge(Edge{From: 1, To: 2})
	g.AddEdge(Edge{From: 2, To: 3})
	g.AddEdge(Edge{From: 3, To: 2})
	g.AddEdge(Edge{From: 4, To: 2})
	if err := g.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(2); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("double remove node = %v", err)
	}
}

func TestNeighborsDedup(t *testing.T) {
	g := NewNetwork()
	g.AddNode(Node{ID: 1})
	g.AddNode(Node{ID: 2})
	g.AddEdge(Edge{From: 1, To: 2})
	g.AddEdge(Edge{From: 2, To: 1})
	nb := g.Neighbors(1)
	if len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("Neighbors = %v, want [2]", nb)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := NewNetwork()
	for i := NodeID(1); i <= 3; i++ {
		g.AddNode(Node{ID: i})
	}
	g.AddEdge(Edge{From: 1, To: 2, Cost: 1})
	g.AddEdge(Edge{From: 1, To: 3, Cost: 2})
	g.AddEdge(Edge{From: 3, To: 1, Cost: 3})
	if s := g.Successors(1); len(s) != 2 {
		t.Fatalf("Successors(1) = %v", s)
	}
	if p := g.Predecessors(1); len(p) != 1 || p[0] != 3 {
		t.Fatalf("Predecessors(1) = %v", p)
	}
	es := g.SuccessorEdges(1)
	if len(es) != 2 || es[0].From != 1 {
		t.Fatalf("SuccessorEdges = %v", es)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewNetwork()
	g.AddNode(Node{ID: 1, Attrs: []byte{1, 2}})
	g.AddNode(Node{ID: 2})
	g.AddEdge(Edge{From: 1, To: 2, Weight: 1})
	c := g.Clone()
	c.RemoveNode(2)
	c1, _ := c.Node(1)
	c1.Attrs[0] = 9
	if !g.HasNode(2) || g.NumEdges() != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	g1, _ := g.Node(1)
	if g1.Attrs[0] != 1 {
		t.Fatal("attr mutation leaked into original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubnetwork(t *testing.T) {
	g := Grid(3, 3)
	keep := map[NodeID]bool{0: true, 1: true, 3: true}
	s := g.Subnetwork(keep)
	if s.NumNodes() != 3 {
		t.Fatalf("nodes = %d", s.NumNodes())
	}
	// Edges 0<->1 and 0<->3 survive; 1<->4, 3<->4 etc. do not.
	if s.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", s.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCRRAndWCRR(t *testing.T) {
	g := NewNetwork()
	for i := NodeID(1); i <= 4; i++ {
		g.AddNode(Node{ID: i})
	}
	g.AddEdge(Edge{From: 1, To: 2, Weight: 1})
	g.AddEdge(Edge{From: 2, To: 3, Weight: 3})
	g.AddEdge(Edge{From: 3, To: 4, Weight: 1})
	g.AddEdge(Edge{From: 4, To: 1, Weight: 3})
	p := Placement{1: 0, 2: 0, 3: 1, 4: 1}
	// Unsplit: 1->2 (page 0), 3->4 (page 1). CRR = 2/4.
	if got := CRR(g, p); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CRR = %f, want 0.5", got)
	}
	// WCRR = (1+1)/(1+3+1+3) = 0.25.
	if got := WCRR(g, p); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("WCRR = %f, want 0.25", got)
	}
	// All on one page: CRR = 1.
	p1 := Placement{1: 0, 2: 0, 3: 0, 4: 0}
	if got := CRR(g, p1); got != 1 {
		t.Fatalf("CRR single page = %f", got)
	}
	// Every node alone: CRR = 0.
	p2 := Placement{1: 0, 2: 1, 3: 2, 4: 3}
	if got := CRR(g, p2); got != 0 {
		t.Fatalf("CRR all split = %f", got)
	}
	// Uniform weights make WCRR == CRR.
	UniformWeights(g)
	if CRR(g, p) != WCRR(g, p) {
		t.Fatal("uniform weights: WCRR != CRR")
	}
}

func TestCRREmptyNetwork(t *testing.T) {
	g := NewNetwork()
	if CRR(g, Placement{}) != 0 || WCRR(g, Placement{}) != 0 {
		t.Fatal("CRR/WCRR of empty network should be 0")
	}
}

func TestPAG(t *testing.T) {
	g := NewNetwork()
	for i := NodeID(1); i <= 6; i++ {
		g.AddNode(Node{ID: i})
	}
	g.AddEdge(Edge{From: 1, To: 2})
	g.AddEdge(Edge{From: 2, To: 3}) // crosses page 0 -> 1
	g.AddEdge(Edge{From: 4, To: 5}) // within page 1
	g.AddEdge(Edge{From: 5, To: 6}) // crosses page 1 -> 2
	p := Placement{1: 10, 2: 10, 3: 11, 4: 11, 5: 11, 6: 12}
	pag := BuildPAG(g, p)
	if pag.NumPages() != 3 {
		t.Fatalf("PAG pages = %d", pag.NumPages())
	}
	if !pag.IsNeighborPage(10, 11) || !pag.IsNeighborPage(11, 10) {
		t.Fatal("10-11 adjacency missing")
	}
	if !pag.IsNeighborPage(11, 12) {
		t.Fatal("11-12 adjacency missing")
	}
	if pag.IsNeighborPage(10, 12) {
		t.Fatal("10-12 should not be adjacent")
	}
	if nb := pag.NbrPages(11); len(nb) != 2 {
		t.Fatalf("NbrPages(11) = %v", nb)
	}
}

func TestPagesOfNbrs(t *testing.T) {
	g := NewNetwork()
	for i := NodeID(1); i <= 4; i++ {
		g.AddNode(Node{ID: i})
	}
	g.AddEdge(Edge{From: 1, To: 2})
	g.AddEdge(Edge{From: 3, To: 1})
	g.AddEdge(Edge{From: 1, To: 4})
	p := Placement{1: 0, 2: 5, 3: 5, 4: 6}
	pages := PagesOfNbrs(g, p, 1)
	if len(pages) != 2 {
		t.Fatalf("PagesOfNbrs = %v, want two distinct pages", pages)
	}
}

func TestValidatePlacement(t *testing.T) {
	g := Grid(2, 2)
	p := Placement{0: 0, 1: 0, 2: 1, 3: 1}
	if err := ValidatePlacement(g, p); err != nil {
		t.Fatal(err)
	}
	delete(p, 3)
	if err := ValidatePlacement(g, p); err == nil {
		t.Fatal("missing node not detected")
	}
	p[3] = 1
	p[99] = 2
	if err := ValidatePlacement(g, p); err == nil {
		t.Fatal("unknown node not detected")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Undirected segments: 3*3 horizontal + 2*4 vertical = 17; directed = 34.
	if g.NumEdges() != 34 {
		t.Fatalf("edges = %d, want 34", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoadMapMinneapolisScale(t *testing.T) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n, e := g.NumNodes(), g.NumEdges()
	if n < 950 || n > 1150 {
		t.Errorf("nodes = %d, want ~1079", n)
	}
	if e < 2700 || e > 3400 {
		t.Errorf("edges = %d, want ~3057", e)
	}
	if a := g.AvgSuccessors(); a < 2.5 || a > 3.2 {
		t.Errorf("|A| = %f, want ~2.83", a)
	}
	// Connected (single weak component) by construction.
	start := g.NodeIDs()[0]
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	if len(seen) != n {
		t.Errorf("network not connected: reached %d of %d", len(seen), n)
	}
}

func TestRoadMapDeterministic(t *testing.T) {
	a, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different maps")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestRoadMapRejectsBadOpts(t *testing.T) {
	if _, err := RoadMap(RoadMapOpts{Rows: 1, Cols: 5}); err == nil {
		t.Fatal("1-row lattice accepted")
	}
	o := MinneapolisLikeOpts()
	o.DeleteFrac = 1.0
	if _, err := RoadMap(o); err == nil {
		t.Fatal("DeleteFrac=1 accepted")
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	g := RandomGeometric(200, 2.0, geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 10}), 3)
	if g.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkRoutes(t *testing.T) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	routes, err := RandomWalkRoutes(g, 50, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 50 {
		t.Fatalf("routes = %d", len(routes))
	}
	for i, r := range routes {
		if len(r) != 20 {
			t.Fatalf("route %d length = %d", i, len(r))
		}
		if err := r.Validate(g); err != nil {
			t.Fatalf("route %d: %v", i, err)
		}
	}
}

func TestRandomWalkRoutesErrors(t *testing.T) {
	g := Grid(2, 2)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomWalkRoutes(g, 1, 1, rng); err == nil {
		t.Fatal("length 1 accepted")
	}
	if _, err := RandomWalkRoutes(NewNetwork(), 1, 5, rng); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestApplyRouteWeights(t *testing.T) {
	g := Grid(2, 2) // nodes 0,1,2,3; edges both ways between lattice nbrs
	routes := []Route{{0, 1, 0}, {0, 1, 3}}
	n, err := ApplyRouteWeights(g, routes)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("traversals = %d, want 4", n)
	}
	e, _ := g.Edge(0, 1)
	if e.Weight != 2 {
		t.Fatalf("w(0->1) = %f, want 2", e.Weight)
	}
	e, _ = g.Edge(1, 0)
	if e.Weight != 1 {
		t.Fatalf("w(1->0) = %f, want 1", e.Weight)
	}
	e, _ = g.Edge(2, 0)
	if e.Weight != 0 {
		t.Fatalf("w(2->0) = %f, want 0 (unaccessed)", e.Weight)
	}
	// Invalid route rejected.
	if _, err := ApplyRouteWeights(g, []Route{{0, 3}}); !errors.Is(err, ErrInvalidRoute) {
		t.Fatalf("diagonal route = %v", err)
	}
	UniformWeights(g)
	e, _ = g.Edge(0, 1)
	if e.Weight != 1 {
		t.Fatal("UniformWeights failed")
	}
}

func TestAvgStats(t *testing.T) {
	g := Grid(3, 3)
	// 12 undirected segments, 24 directed edges over 9 nodes.
	if got := g.AvgSuccessors(); math.Abs(got-24.0/9.0) > 1e-12 {
		t.Fatalf("AvgSuccessors = %f", got)
	}
	if got := g.AvgNeighbors(); math.Abs(got-24.0/9.0) > 1e-12 {
		t.Fatalf("AvgNeighbors = %f", got)
	}
	h := DegreeHistogram(g)
	if h[2] != 4 || h[3] != 4 || h[4] != 1 {
		t.Fatalf("degree histogram = %v", h)
	}
}

func TestBounds(t *testing.T) {
	g := NewNetwork()
	g.AddNode(Node{ID: 1, Pos: geom.Point{X: -5, Y: 3}})
	g.AddNode(Node{ID: 2, Pos: geom.Point{X: 7, Y: -2}})
	b := g.Bounds()
	if b.Min.X != -5 || b.Min.Y != -2 || b.Max.X != 7 || b.Max.Y != 3 {
		t.Fatalf("Bounds = %+v", b)
	}
}

func TestSortedRouteNodes(t *testing.T) {
	routes := []Route{{3, 1}, {1, 2}}
	got := SortedRouteNodes(routes)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("SortedRouteNodes = %v", got)
	}
}

var _ = storage.PageID(0) // placement values are storage page ids

func TestJSONRoundTrip(t *testing.T) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	ea, eb := g.Edges(), got.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	na, _ := g.Node(g.NodeIDs()[0])
	nb, _ := got.Node(g.NodeIDs()[0])
	if na.Pos != nb.Pos || !bytes.Equal(na.Attrs, nb.Attrs) {
		t.Fatal("node payload lost in round trip")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Edge to unknown node.
	bad := `{"nodes":[{"id":1,"x":0,"y":0}],"edges":[{"from":1,"to":2,"cost":1,"weight":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("dangling edge accepted")
	}
	// Duplicate node.
	dup := `{"nodes":[{"id":1,"x":0,"y":0},{"id":1,"x":1,"y":1}],"edges":[]}`
	if _, err := ReadJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestRadialCity(t *testing.T) {
	g, err := RadialCity(RadialCityOpts{
		Rings: 6, Spokes: 24, Radius: 1000,
		Center: geom.Point{X: 500, Y: 500},
		Jitter: 0.2, DeleteFrac: 0.1, AttrBytes: 16, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	if n < 100 || n > 6*24+1 {
		t.Fatalf("nodes = %d", n)
	}
	// Connected by construction.
	start := g.NodeIDs()[0]
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("disconnected: %d of %d", len(seen), n)
	}
	// Average degree sits in road-network range.
	if a := g.AvgSuccessors(); a < 2.0 || a > 4.5 {
		t.Errorf("|A| = %f", a)
	}
	// Deterministic.
	g2, _ := RadialCity(RadialCityOpts{
		Rings: 6, Spokes: 24, Radius: 1000,
		Center: geom.Point{X: 500, Y: 500},
		Jitter: 0.2, DeleteFrac: 0.1, AttrBytes: 16, Seed: 4,
	})
	if g2.NumNodes() != n || g2.NumEdges() != g.NumEdges() {
		t.Fatal("not deterministic")
	}
	// Bad options rejected.
	if _, err := RadialCity(RadialCityOpts{Rings: 0, Spokes: 8}); err == nil {
		t.Fatal("0 rings accepted")
	}
	if _, err := RadialCity(RadialCityOpts{Rings: 3, Spokes: 2}); err == nil {
		t.Fatal("2 spokes accepted")
	}
}
