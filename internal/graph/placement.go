package graph

import (
	"fmt"

	"ccam/internal/storage"
)

// Placement maps nodes to the data pages holding their records. The
// clustering quality of a placement is what CRR/WCRR measure.
type Placement map[NodeID]storage.PageID

// CRR returns the Connectivity Residue Ratio of the placement over
// network g:
//
//	CRR = (number of unsplit edges) / (total number of edges)
//
// where edge (u, v) is unsplit iff Page(u) == Page(v). Nodes missing
// from the placement never match. Returns 0 for an edgeless network.
func CRR(g *Network, p Placement) float64 {
	total, unsplit := 0, 0
	for from, hes := range g.succ {
		pf, okf := p[from]
		for _, he := range hes {
			total++
			if !okf {
				continue
			}
			if pt, okt := p[he.to]; okt && pt == pf {
				unsplit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(unsplit) / float64(total)
}

// WCRR returns the Weighted Connectivity Residue Ratio:
//
//	WCRR = Σ w(u,v) over unsplit edges / Σ w(u,v) over all edges.
//
// With all weights equal it coincides with CRR. Returns 0 when the
// total weight is zero.
func WCRR(g *Network, p Placement) float64 {
	var total, unsplit float64
	for from, hes := range g.succ {
		pf, okf := p[from]
		for _, he := range hes {
			total += he.weight
			if !okf {
				continue
			}
			if pt, okt := p[he.to]; okt && pt == pf {
				unsplit += he.weight
			}
		}
	}
	if total == 0 {
		return 0
	}
	return unsplit / total
}

// PageAccessGraph is the paper's PAG: pages are vertices; two pages are
// adjacent when some network edge crosses between them (Definition 1).
type PageAccessGraph struct {
	adj map[storage.PageID]map[storage.PageID]bool
}

// BuildPAG constructs the page access graph of placement p over g.
func BuildPAG(g *Network, p Placement) *PageAccessGraph {
	pag := &PageAccessGraph{adj: make(map[storage.PageID]map[storage.PageID]bool)}
	for _, pid := range p {
		if pag.adj[pid] == nil {
			pag.adj[pid] = make(map[storage.PageID]bool)
		}
	}
	for from, hes := range g.succ {
		pf, okf := p[from]
		if !okf {
			continue
		}
		for _, he := range hes {
			pt, okt := p[he.to]
			if !okt || pt == pf {
				continue
			}
			pag.adj[pf][pt] = true
			pag.adj[pt][pf] = true
		}
	}
	return pag
}

// IsNeighborPage reports whether pages a and b are adjacent in the PAG.
func (pag *PageAccessGraph) IsNeighborPage(a, b storage.PageID) bool {
	return pag.adj[a][b]
}

// NbrPages returns the pages adjacent to p in the PAG.
func (pag *PageAccessGraph) NbrPages(p storage.PageID) []storage.PageID {
	var out []storage.PageID
	for q := range pag.adj[p] {
		out = append(out, q)
	}
	return out
}

// NumPages returns the number of PAG vertices.
func (pag *PageAccessGraph) NumPages() int { return len(pag.adj) }

// PagesOfNbrs returns Page(u) for every u in the neighbor-list of x
// (Definition 2 of the paper), deduplicated.
func PagesOfNbrs(g *Network, p Placement, x NodeID) []storage.PageID {
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, nb := range g.Neighbors(x) {
		if pid, ok := p[nb]; ok && !seen[pid] {
			seen[pid] = true
			out = append(out, pid)
		}
	}
	return out
}

// ValidatePlacement verifies that p covers exactly the nodes of g.
func ValidatePlacement(g *Network, p Placement) error {
	for id := range g.nodes {
		if _, ok := p[id]; !ok {
			return fmt.Errorf("graph: node %d missing from placement", id)
		}
	}
	for id := range p {
		if !g.HasNode(id) {
			return fmt.Errorf("graph: placement has unknown node %d", id)
		}
	}
	return nil
}
