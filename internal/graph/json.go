package graph

import (
	"encoding/json"
	"fmt"
	"io"

	"ccam/internal/geom"
)

// jsonNode is the on-wire node form.
type jsonNode struct {
	ID    uint32  `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Attrs []byte  `json:"attrs,omitempty"`
}

// jsonEdge is the on-wire edge form.
type jsonEdge struct {
	From   uint32  `json:"from"`
	To     uint32  `json:"to"`
	Cost   float64 `json:"cost"`
	Weight float64 `json:"weight"`
}

// jsonNetwork is the on-wire network form.
type jsonNetwork struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

// WriteJSON serializes the network. Node and edge order is
// deterministic (ascending ids), so equal networks produce equal
// bytes.
func (g *Network) WriteJSON(w io.Writer) error {
	jn := jsonNetwork{}
	for _, id := range g.NodeIDs() {
		n, err := g.Node(id)
		if err != nil {
			return err
		}
		jn.Nodes = append(jn.Nodes, jsonNode{ID: uint32(id), X: n.Pos.X, Y: n.Pos.Y, Attrs: n.Attrs})
	}
	for _, e := range g.Edges() {
		jn.Edges = append(jn.Edges, jsonEdge{From: uint32(e.From), To: uint32(e.To), Cost: e.Cost, Weight: e.Weight})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(jn); err != nil {
		return fmt.Errorf("graph: encode network: %w", err)
	}
	return nil
}

// ReadJSON parses a network written by WriteJSON (or hand-authored in
// the same schema; absent weights parse as zero). Edges referencing
// unknown nodes, duplicate nodes and duplicate edges are errors.
func ReadJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("graph: decode network: %w", err)
	}
	g := NewNetwork()
	for _, n := range jn.Nodes {
		if err := g.AddNode(Node{ID: NodeID(n.ID), Pos: geom.Point{X: n.X, Y: n.Y}, Attrs: n.Attrs}); err != nil {
			return nil, fmt.Errorf("graph: node %d: %w", n.ID, err)
		}
	}
	for _, e := range jn.Edges {
		if err := g.AddEdge(Edge{From: NodeID(e.From), To: NodeID(e.To), Cost: e.Cost, Weight: e.Weight}); err != nil {
			return nil, fmt.Errorf("graph: edge %d->%d: %w", e.From, e.To, err)
		}
	}
	return g, nil
}
