package server

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ccam"
	"ccam/internal/wire"
)

// tracedStore is testStore with the tracer ring enabled, so sampled
// requests leave retrievable traces.
func tracedStore(t *testing.T) (*ccam.Store, []ccam.NodeID) {
	t.Helper()
	g := testNetwork(t)
	st, err := ccam.Open(ccam.Options{
		PageSize: 1024, PoolPages: 64, Seed: 1,
		Metrics: true, TraceCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Build(g); err != nil {
		t.Fatal(err)
	}
	return st, g.NodeIDs()
}

// A sampled binary request must get its own resource account back on
// the wire, and its store-side trace must be retrievable from
// /traces?trace=<id>.
func TestSampledBinaryRequestStatsAndTrace(t *testing.T) {
	st, ids := tracedStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})

	c, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const traceID = 0xBEEF
	var rs ccam.ReqStats
	ctx := ccam.WithReqStats(ccam.WithTraceID(context.Background(), traceID), &rs)
	if _, err := c.Find(ctx, ids[len(ids)/2]); err != nil {
		t.Fatal(err)
	}
	if rs.Ops != 1 {
		t.Fatalf("ReqStats.Ops = %d, want 1", rs.Ops)
	}
	if rs.BufferHits+rs.BufferMisses == 0 {
		t.Fatalf("sampled find touched no buffer pages: %+v", rs)
	}
	if rs.Shed {
		t.Fatalf("unexpected shed flag: %+v", rs)
	}

	// The same connection without trace context stays v6-quiet: the
	// sink must not be touched.
	before := rs
	if _, err := c.Find(context.Background(), ids[0]); err != nil {
		t.Fatal(err)
	}
	if rs != before {
		t.Fatalf("untraced request mutated the sink: %+v -> %+v", before, rs)
	}

	// The store-side trace is tagged and filterable by the wire id.
	resp, err := http.Get(httpBase + "/traces?trace=beef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/traces?trace=beef: %d %s", resp.StatusCode, body)
	}
	out := string(body)
	if !strings.Contains(out, "trace=000000000000beef") || !strings.Contains(out, "find") {
		t.Fatalf("/traces?trace=beef missing the sampled find:\n%s", out)
	}
	if strings.Count(out, "#") != 1 {
		t.Fatalf("/traces?trace=beef should hold exactly the one sampled trace:\n%s", out)
	}
}

// The JSON protocol carries the same contract through X-Ccam-Trace and
// the response stats field.
func TestSampledJSONRequestStats(t *testing.T) {
	st, ids := tracedStore(t)
	_, _, httpBase := startServer(t, st, Options{})

	hc := &wire.HTTPClient{Base: httpBase}
	var rs ccam.ReqStats
	ctx := ccam.WithReqStats(ccam.WithTraceID(context.Background(), 0xD00D), &rs)
	if _, err := hc.Find(ctx, ids[len(ids)/2]); err != nil {
		t.Fatal(err)
	}
	if rs.Ops != 1 || rs.BufferHits+rs.BufferMisses == 0 {
		t.Fatalf("JSON stats field not delivered: %+v", rs)
	}

	// A malformed trace header is rejected, not ignored.
	req, _ := http.NewRequest(http.MethodPost, httpBase+"/v1/has", bytes.NewReader([]byte(`{"id":1}`)))
	req.Header.Set(wire.TraceHeader, "not-hex")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad %s accepted: %d", wire.TraceHeader, resp.StatusCode)
	}
}

// syncBuf lets the test read log output while server goroutines write.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// A request over the slow-query threshold must emit one structured log
// line with op, duration, trace id, resource account and the sampled
// span breakdown, and count in ccam_server_slow_total.
func TestSlowQueryLog(t *testing.T) {
	st, ids := tracedStore(t)
	var buf syncBuf
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv, binAddr, _ := startServer(t, st, Options{
		Logger:    logger,
		SlowQuery: time.Nanosecond, // every request is slow
	})

	c, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var rs ccam.ReqStats
	ctx := ccam.WithReqStats(ccam.WithTraceID(context.Background(), 0xFACE), &rs)
	if _, err := c.Find(ctx, ids[len(ids)/2]); err != nil {
		t.Fatal(err)
	}

	// The slow log is written after the response goes out; poll.
	deadline := time.Now().Add(5 * time.Second)
	var out string
	for {
		out = buf.String()
		if strings.Contains(out, "slow query") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{"slow query", "op=find", "trace=000000000000face", "buffer_", "spans="} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-query log missing %q:\n%s", want, out)
		}
	}
	if srv.slow.Value() == 0 {
		t.Fatal("ccam_server_slow_total not incremented")
	}
}

// A raw v6 frame (no extended header) must still be served, and the
// reply must not carry a stats block the old client can't parse.
func TestV6RawFrameStillServed(t *testing.T) {
	st, _ := tracedStore(t)
	_, binAddr, _ := startServer(t, st, Options{})

	conn, err := net.Dial("tcp", binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeRequest(42, wire.OpPing, 0, nil)); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if payload[4]&0x80 != 0 {
		t.Fatalf("v6 request answered with a stats-flagged response: % x", payload)
	}
	id, body, err := wire.DecodeResponse(payload)
	if err != nil || id != 42 || len(body) != 0 {
		t.Fatalf("v6 ping reply = (%d, %x, %v)", id, body, err)
	}
}
