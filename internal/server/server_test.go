package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccam"
	"ccam/internal/graph"
	"ccam/internal/wire"
)

func testNetwork(t *testing.T) *ccam.Network {
	t.Helper()
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 12, 12
	g, err := graph.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testStore(t *testing.T) (*ccam.Store, *ccam.Network) {
	t.Helper()
	g := testNetwork(t)
	st, err := ccam.Open(ccam.Options{PageSize: 1024, PoolPages: 64, Seed: 1, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Build(g); err != nil {
		t.Fatal(err)
	}
	return st, g
}

// startServer serves st over both protocols on loopback and returns
// the binary address and the HTTP base URL.
func startServer(t *testing.T, st *ccam.Store, opts Options) (*Server, string, string) {
	t.Helper()
	opts.Store = st
	srv := New(opts)
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(bl)
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(hl)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	})
	return srv, bl.Addr().String(), "http://" + hl.Addr().String()
}

// queryClient is the surface both protocol clients share, so the
// golden test runs identically over each.
type queryClient interface {
	Find(ctx context.Context, id ccam.NodeID) (*ccam.Record, error)
	Has(ctx context.Context, id ccam.NodeID) (bool, error)
	GetSuccessors(ctx context.Context, id ccam.NodeID) ([]*ccam.Record, error)
	EvaluateRoute(ctx context.Context, route ccam.Route) (ccam.RouteAggregate, error)
	RangeQuery(ctx context.Context, rect ccam.Rect) ([]*ccam.Record, error)
	FindBatch(ctx context.Context, ids []ccam.NodeID) ([]*ccam.Record, error)
	EvaluateRoutes(ctx context.Context, routes []ccam.Route) ([]ccam.RouteAggregate, error)
	Apply(ctx context.Context, ops []wire.ApplyOp) (int, error)
}

// TestGoldenBothProtocols compares every remote query against the
// same query run directly on the store, over each protocol.
func TestGoldenBothProtocols(t *testing.T) {
	st, g := testStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})

	bc, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	clients := map[string]queryClient{
		"binary": bc,
		"json":   &wire.HTTPClient{Base: httpBase},
	}

	ctx := context.Background()
	ids := g.NodeIDs()
	id := ids[len(ids)/2]
	route := ccam.Route{ids[0]}
	for _, e := range g.SuccessorEdges(ids[0]) {
		route = append(route, e.To)
		break
	}
	wantRec, err := st.Find(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	wantSuccs, _ := st.GetSuccessors(ctx, id)
	wantAgg, err := st.EvaluateRoute(ctx, route)
	if err != nil {
		t.Fatal(err)
	}
	win := ccam.NewRect(wantRec.Pos, ccam.Point{X: wantRec.Pos.X + 500, Y: wantRec.Pos.Y + 500})
	wantRange, _ := st.RangeQuery(ctx, win)
	batchIDs := []ccam.NodeID{ids[0], ids[1], id}
	wantBatch, _ := st.FindBatch(ctx, batchIDs)
	routes := []ccam.Route{route, {id}}
	wantAggs, _ := st.EvaluateRoutes(ctx, routes)

	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			rec, err := c.Find(ctx, id)
			if err != nil || !reflect.DeepEqual(rec, wantRec) {
				t.Fatalf("Find = %+v, %v; want %+v", rec, err, wantRec)
			}
			ok, err := c.Has(ctx, id)
			if err != nil || !ok {
				t.Fatalf("Has = %v, %v", ok, err)
			}
			succs, err := c.GetSuccessors(ctx, id)
			if err != nil || !recordsEqual(succs, wantSuccs) {
				t.Fatalf("GetSuccessors: got %d recs, err %v", len(succs), err)
			}
			agg, err := c.EvaluateRoute(ctx, route)
			if err != nil || agg != wantAgg {
				t.Fatalf("EvaluateRoute = %+v, %v; want %+v", agg, err, wantAgg)
			}
			got, err := c.RangeQuery(ctx, win)
			if err != nil || !recordsEqual(got, wantRange) {
				t.Fatalf("RangeQuery: got %d recs, err %v; want %d", len(got), err, len(wantRange))
			}
			batch, err := c.FindBatch(ctx, batchIDs)
			if err != nil || !recordsEqual(batch, wantBatch) {
				t.Fatalf("FindBatch: got %d recs, err %v", len(batch), err)
			}
			aggs, err := c.EvaluateRoutes(ctx, routes)
			if err != nil || !reflect.DeepEqual(aggs, wantAggs) {
				t.Fatalf("EvaluateRoutes = %+v, %v; want %+v", aggs, err, wantAggs)
			}
		})
	}
}

func recordsEqual(a, b []*ccam.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Pos != b[i].Pos {
			return false
		}
	}
	return true
}

// TestApplyBothProtocols commits one mutation batch per protocol and
// verifies the store state moved.
func TestApplyBothProtocols(t *testing.T) {
	st, g := testStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})
	ctx := context.Background()

	ids := g.NodeIDs()
	from := ids[0]
	var to ccam.NodeID
	var oldCost float32
	for _, e := range g.SuccessorEdges(from) {
		to, oldCost = e.To, float32(e.Cost)
		break
	}

	bc, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	n, err := bc.Apply(ctx, []wire.ApplyOp{
		{Kind: wire.OpSetEdgeCost, From: from, To: to, Cost: oldCost + 10},
	})
	if err != nil || n != 1 {
		t.Fatalf("binary Apply = %d, %v", n, err)
	}
	agg, err := st.EvaluateRoute(ctx, ccam.Route{from, to})
	if err != nil || agg.TotalCost != float64(oldCost+10) {
		t.Fatalf("after binary apply: total %v, err %v; want %v", agg.TotalCost, err, oldCost+10)
	}

	hc := &wire.HTTPClient{Base: httpBase}
	n, err = hc.Apply(ctx, []wire.ApplyOp{
		{Kind: wire.OpSetEdgeCost, From: from, To: to, Cost: oldCost},
	})
	if err != nil || n != 1 {
		t.Fatalf("json Apply = %d, %v", n, err)
	}
	agg, err = st.EvaluateRoute(ctx, ccam.Route{from, to})
	if err != nil || float32(agg.TotalCost) != oldCost {
		t.Fatalf("after json apply: total %v, err %v; want %v", agg.TotalCost, err, oldCost)
	}
}

// TestErrorMappingBothProtocols asserts errors.Is against the store's
// sentinels survives each protocol, and the JSON protocol pairs the
// right HTTP status.
func TestErrorMappingBothProtocols(t *testing.T) {
	st, _ := testStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})
	ctx := context.Background()
	const missing = ccam.NodeID(1 << 30)

	bc, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if _, err := bc.Find(ctx, missing); !errors.Is(err, ccam.ErrNotFound) {
		t.Fatalf("binary missing find = %v, want ErrNotFound", err)
	}
	hc := &wire.HTTPClient{Base: httpBase}
	if _, err := hc.Find(ctx, missing); !errors.Is(err, ccam.ErrNotFound) {
		t.Fatalf("json missing find = %v, want ErrNotFound", err)
	}
	// Raw status check: not_found must surface as 404.
	resp, err := http.Post(httpBase+"/v1/find", "application/json", reqBody(`{"id":1073741824}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing find status = %d, want 404", resp.StatusCode)
	}
	// Malformed JSON maps to bad_request/400.
	resp, err = http.Post(httpBase+"/v1/find", "application/json", reqBody(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

func reqBody(s string) *strings.Reader { return strings.NewReader(s) }

// TestCancellationPropagation verifies a client disconnect cancels
// the context of the query running on its behalf, on both protocols.
func TestCancellationPropagation(t *testing.T) {
	st, g := testStore(t)
	entered := make(chan struct{}, 4)
	canceled := make(chan error, 4)
	var hookOn atomic.Bool
	requestHook = func(ctx context.Context) {
		if !hookOn.Load() {
			return
		}
		entered <- struct{}{}
		select {
		case <-ctx.Done():
			canceled <- ctx.Err()
		case <-time.After(10 * time.Second):
			canceled <- errors.New("request context never canceled")
		}
	}
	defer func() { requestHook = nil }()
	_, binAddr, httpBase := startServer(t, st, Options{})
	id := g.NodeIDs()[0]
	hookOn.Store(true)

	t.Run("binary", func(t *testing.T) {
		bc, err := wire.Dial(binAddr)
		if err != nil {
			t.Fatal(err)
		}
		go bc.Find(context.Background(), id)
		<-entered
		bc.Close() // disconnect with the query in flight
		if err := <-canceled; !errors.Is(err, context.Canceled) {
			t.Fatalf("server-side ctx ended with %v, want Canceled", err)
		}
	})

	t.Run("http", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		hc := &wire.HTTPClient{Base: httpBase}
		done := make(chan error, 1)
		go func() {
			_, err := hc.Find(ctx, id)
			done <- err
		}()
		<-entered
		cancel() // aborts the in-flight HTTP request
		if err := <-canceled; !errors.Is(err, context.Canceled) {
			t.Fatalf("server-side ctx ended with %v, want Canceled", err)
		}
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("client got %v, want Canceled", err)
		}
	})
}

// TestAdmissionControl fills the in-flight cap and asserts the
// overflow is shed immediately with ccam.ErrOverloaded.
func TestAdmissionControl(t *testing.T) {
	st, g := testStore(t)
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	var hookOn atomic.Bool
	requestHook = func(ctx context.Context) {
		if !hookOn.Load() {
			return
		}
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
	}
	defer func() { requestHook = nil }()
	srv, binAddr, httpBase := startServer(t, st, Options{MaxInFlight: 2})
	id := g.NodeIDs()[0]
	hookOn.Store(true)

	// Two requests occupy both slots.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		c, err := wire.Dial(binAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		go func() {
			_, err := c.Find(context.Background(), id)
			results <- err
		}()
	}
	<-entered
	<-entered

	// Overflow on each protocol sheds with ErrOverloaded, not a queue.
	c3, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Find(context.Background(), id); !errors.Is(err, ccam.ErrOverloaded) {
		t.Fatalf("binary overflow = %v, want ErrOverloaded", err)
	}
	hc := &wire.HTTPClient{Base: httpBase}
	if _, err := hc.Find(context.Background(), id); !errors.Is(err, ccam.ErrOverloaded) {
		t.Fatalf("json overflow = %v, want ErrOverloaded", err)
	}

	close(block)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	if sheds := srv.Stats().Sheds; sheds != 2 {
		t.Fatalf("shed count = %d, want 2", sheds)
	}
}

// TestGracefulDrain runs the full drain contract on a WAL store:
// in-flight work finishes with its response delivered, new work is
// refused with ccam.ErrClosed, and the checkpoint leaves nothing for
// OpenPath to replay.
func TestGracefulDrain(t *testing.T) {
	g := testNetwork(t)
	path := filepath.Join(t.TempDir(), "net.ccam")
	st, err := ccam.Open(ccam.Options{PageSize: 1024, PoolPages: 64, Seed: 1, Path: path, WAL: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Build(g); err != nil {
		t.Fatal(err)
	}

	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	var hookOn atomic.Bool
	requestHook = func(ctx context.Context) {
		if !hookOn.Load() {
			return
		}
		select {
		case entered <- struct{}{}:
		default:
		}
		select {
		case <-block:
		case <-time.After(10 * time.Second):
		}
	}
	defer func() { requestHook = nil }()

	srv := New(Options{Store: st})
	bl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(bl)

	ctx := context.Background()
	ids := g.NodeIDs()
	from := ids[0]
	var to ccam.NodeID
	var cost float32
	for _, e := range g.SuccessorEdges(from) {
		to, cost = e.To, float32(e.Cost)
		break
	}
	c1, err := wire.Dial(bl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// A committed mutation puts real bytes in the WAL before the drain.
	if _, err := c1.Apply(ctx, []wire.ApplyOp{
		{Kind: wire.OpSetEdgeCost, From: from, To: to, Cost: cost + 5},
	}); err != nil {
		t.Fatal(err)
	}

	c2, err := wire.Dial(bl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// One slow query in flight when the drain begins.
	hookOn.Store(true)
	slow := make(chan error, 1)
	go func() {
		_, err := c1.Find(ctx, from)
		slow <- err
	}()
	<-entered
	hookOn.Store(false)

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(sctx)
	}()

	// The drain must wait for the in-flight query...
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...while refusing new requests on a live connection.
	if _, err := c2.Find(ctx, from); !errors.Is(err, ccam.ErrClosed) {
		t.Fatalf("request during drain = %v, want ErrClosed", err)
	}

	close(block)
	if err := <-slow; err != nil {
		t.Fatalf("in-flight request lost its response: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The drain checkpointed: reopening replays nothing, and the
	// committed mutation is in the data pages.
	r, err := ccam.OpenPath(path, ccam.Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if ws := r.WALStats(); ws.ReplayedBatches != 0 {
		t.Fatalf("reopen replayed %d batches, want 0 (clean drain)", ws.ReplayedBatches)
	}
	agg, err := r.EvaluateRoute(ctx, ccam.Route{from, to})
	if err != nil || float32(agg.TotalCost) != cost+5 {
		t.Fatalf("reopened route total = %v, %v; want %v", agg.TotalCost, err, cost+5)
	}
}

// TestDeadlinePropagation: a request-carried deadline bounds the
// server-side context.
func TestDeadlinePropagation(t *testing.T) {
	st, g := testStore(t)
	var sawDeadline atomic.Bool
	var hookOn atomic.Bool
	requestHook = func(ctx context.Context) {
		if !hookOn.Load() {
			return
		}
		// The binary path applies the wire deadline inside dispatch;
		// the HTTP path inside the handler. Both run after the hook, so
		// wait for the parent: an expired budget cancels it too... the
		// hook instead records whether a deadline reached the request.
		_, ok := ctx.Deadline()
		sawDeadline.Store(ok)
	}
	defer func() { requestHook = nil }()
	_, _, httpBase := startServer(t, st, Options{DefaultDeadline: 250 * time.Millisecond})
	hookOn.Store(true)
	hc := &wire.HTTPClient{Base: httpBase}
	if _, err := hc.Find(context.Background(), g.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if !sawDeadline.Load() {
		t.Fatal("DefaultDeadline did not bound the request context")
	}
}
