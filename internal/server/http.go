package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"ccam"
	"ccam/internal/wire"
)

// DeadlineHeader carries a per-request deadline budget in milliseconds
// on the JSON protocol (the HTTP analogue of the binary header field).
const DeadlineHeader = "X-Ccam-Deadline-Ms"

// Handler builds the JSON-protocol handler: the /v1 query endpoints
// plus the store's observability surface (/metrics, /metrics.json,
// /traces via ccam.ServeMetrics) and /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	ccam.ServeMetrics(mux, s.st)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.InfoResponse{
			Name:        s.st.Name(),
			Nodes:       s.st.Len(),
			Pages:       s.st.NumPages(),
			MaxInFlight: s.maxInFlight,
		})
	})

	handle := func(path, op string, fn func(ctx context.Context, body []byte) (any, error)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeError(w, wire.RemoteError(wire.CodeBadRequest, "POST required"))
				return
			}
			// TraceHeader marks the request sampled and asks for the
			// stats field; the server echoes the id on the response.
			var (
				traceID uint64
				rs      *ccam.ReqStats
			)
			if th := r.Header.Get(wire.TraceHeader); th != "" {
				n, perr := strconv.ParseUint(th, 16, 64)
				if perr != nil || n == 0 {
					writeError(w, wire.RemoteError(wire.CodeBadRequest, "bad "+wire.TraceHeader))
					return
				}
				traceID = n
				w.Header().Set(wire.TraceHeader, fmt.Sprintf("%016x", traceID))
			}
			body, err := io.ReadAll(io.LimitReader(r.Body, wire.MaxFrame+1))
			if err != nil {
				writeError(w, err)
				return
			}
			if len(body) > wire.MaxFrame {
				writeError(w, wire.RemoteError(wire.CodeBadRequest, "request body too large"))
				return
			}
			reqCtx := r.Context()
			if traceID != 0 {
				rs = new(ccam.ReqStats)
				reqCtx = ccam.WithReqStats(ccam.WithTraceID(reqCtx, traceID), rs)
			}
			var out any
			err = s.do(reqCtx, reqMeta{op: op, traceID: traceID, rs: rs}, func(ctx context.Context) error {
				if ms := r.Header.Get(DeadlineHeader); ms != "" {
					n, perr := strconv.ParseUint(ms, 10, 32)
					if perr != nil {
						return wire.RemoteError(wire.CodeBadRequest, "bad "+DeadlineHeader)
					}
					if n > 0 {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, time.Duration(n)*time.Millisecond)
						defer cancel()
					}
				}
				var ferr error
				out, ferr = fn(ctx, body)
				return ferr
			})
			if err != nil {
				writeError(w, err)
				return
			}
			if rs != nil {
				if as, ok := out.(interface{ AttachStats(*ccam.ReqStats) }); ok {
					as.AttachStats(rs)
				}
			}
			writeJSON(w, http.StatusOK, out)
		})
	}

	handle("/v1/find", "find", func(ctx context.Context, body []byte) (any, error) {
		var req wire.FindRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		rec, err := s.st.Find(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return &wire.FindResponse{Record: wire.RecordToJSON(rec)}, nil
	})
	handle("/v1/has", "has", func(ctx context.Context, body []byte) (any, error) {
		var req wire.HasRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		ok, err := s.st.Has(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return &wire.HasResponse{Has: ok}, nil
	})
	handle("/v1/successors", "get-successors", func(ctx context.Context, body []byte) (any, error) {
		var req wire.SuccessorsRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		recs, err := s.st.GetSuccessors(ctx, req.ID)
		if err != nil {
			return nil, err
		}
		return &wire.RecordsResponse{Records: wire.RecordsToJSON(recs)}, nil
	})
	handle("/v1/route", "evaluate-route", func(ctx context.Context, body []byte) (any, error) {
		var req wire.RouteRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		agg, err := s.st.EvaluateRoute(ctx, ccam.Route(req.Route))
		if err != nil {
			return nil, err
		}
		return &wire.RouteResponse{Aggregate: wire.AggregateToJSON(agg)}, nil
	})
	handle("/v1/range", "range-query", func(ctx context.Context, body []byte) (any, error) {
		var req wire.RangeRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		recs, err := s.st.RangeQuery(ctx, req.Rect)
		if err != nil {
			return nil, err
		}
		return &wire.RecordsResponse{Records: wire.RecordsToJSON(recs)}, nil
	})
	handle("/v1/find-batch", "find-batch", func(ctx context.Context, body []byte) (any, error) {
		var req wire.FindBatchRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		recs, err := s.st.FindBatch(ctx, req.IDs)
		if err != nil {
			return nil, err
		}
		return &wire.RecordsResponse{Records: wire.RecordsToJSON(recs)}, nil
	})
	handle("/v1/routes", "evaluate-routes", func(ctx context.Context, body []byte) (any, error) {
		var req wire.RoutesRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		aggs, err := s.st.EvaluateRoutes(ctx, wire.Routes(req.Routes))
		if err != nil {
			return nil, err
		}
		out := make([]wire.AggregateJSON, len(aggs))
		for i, a := range aggs {
			out[i] = wire.AggregateToJSON(a)
		}
		return &wire.RoutesResponse{Aggregates: out}, nil
	})
	handle("/v1/query", "query", func(ctx context.Context, body []byte) (any, error) {
		var req wire.QueryRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		src := req.Query
		if req.Explain {
			src = ccam.ExplainStatement(src)
		}
		res, err := s.st.Query(ctx, src)
		if err != nil {
			return nil, err
		}
		return &wire.QueryResponse{Result: res}, nil
	})
	handle("/v1/apply", "apply", func(ctx context.Context, body []byte) (any, error) {
		var req wire.ApplyRequest
		if err := decodeJSON(body, &req); err != nil {
			return nil, err
		}
		b, err := req.Batch()
		if err != nil {
			return nil, err
		}
		if err := s.st.Apply(ctx, b); err != nil {
			return nil, err
		}
		return &wire.ApplyResponse{Applied: b.Len()}, nil
	})
	return mux
}

func decodeJSON(body []byte, into any) error {
	if err := json.Unmarshal(body, into); err != nil {
		return wire.RemoteError(wire.CodeBadRequest, "invalid JSON: "+err.Error())
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps err through the wire code table onto the HTTP
// status and the JSON error body.
func writeError(w http.ResponseWriter, err error) {
	code := wire.CodeOf(err)
	writeJSON(w, code.HTTPStatus(), wire.ErrorResponse{Error: wire.ErrorJSON{
		Code:    code.String(),
		Message: err.Error(),
	}})
}
