// Package server puts a ccam.Store in front of network traffic. It
// serves the store's query surface over two protocols sharing one
// dispatch path — JSON over HTTP (Handler) and the compact binary
// protocol of internal/wire (ServeBinary) — with per-request contexts
// and deadlines, admission control that sheds excess load with
// ccam.ErrOverloaded, and a graceful drain (Shutdown) that stops
// accepting work, finishes what is in flight, and checkpoints so a
// reopen replays nothing.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"strings"
	"sync"
	"time"

	"ccam"
	"ccam/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// Store is the served store. Required.
	Store *ccam.Store
	// MaxInFlight caps concurrently executing requests across both
	// protocols; a request arriving with the cap exhausted is shed
	// immediately with ccam.ErrOverloaded instead of queueing behind
	// work the server cannot keep up with. Zero selects 1024.
	MaxInFlight int
	// DefaultDeadline bounds requests that carry no deadline of their
	// own. Zero means unbounded.
	DefaultDeadline time.Duration
	// Logger receives structured server events: connection lifecycle
	// (debug), shed requests and slow queries (warn), drain progress
	// (info). Nil disables logging entirely — the serving path then
	// pays one nil check per event and allocates nothing.
	Logger *slog.Logger
	// SlowQuery, when positive, is the latency budget of the slow-query
	// log: any request running at least this long is counted in
	// ccam_server_slow_total and logged (via Logger) with its op,
	// latency, trace id, per-request resource account and — for sampled
	// requests — the span breakdown of its store-side traces.
	SlowQuery time.Duration
}

// DefaultMaxInFlight is the admission cap when Options.MaxInFlight is
// zero. Connections are not capped — only running requests are — so
// idle connections cost one goroutine and no admission slots.
const DefaultMaxInFlight = 1024

// Server serves one store over both protocols.
type Server struct {
	st          *ccam.Store
	maxInFlight int
	defDeadline time.Duration
	log         *slog.Logger
	slowQuery   time.Duration

	// gate is the admission state: inflight running requests, the
	// draining flag, and a cond broadcast when inflight drops so
	// Shutdown can wait for the tail.
	gate struct {
		sync.Mutex
		cond     *sync.Cond
		inflight int
		draining bool
	}

	// conns tracks open binary connections so Shutdown can close them
	// after the drain.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// listenMu guards listeners registered by ServeBinary.
	listenMu  sync.Mutex
	listeners []net.Listener

	reg      *metrics.Registry
	requests *metrics.Counter
	errs     *metrics.Counter
	sheds    *metrics.Counter
	slow     *metrics.Counter
	latency  *metrics.Histogram

	// ops holds the per-operation RED instruments, keyed by wire op
	// name. Built once in New and read-only afterwards, so request
	// paths look up without locking.
	ops map[string]*opInstruments

	// slowLim rate-limits slow-query and shed log lines so an overload
	// storm cannot flood the log.
	slowLim logLimiter
	shedLim logLimiter
}

// opInstruments is one operation's server-side RED set: request rate,
// errors, duration.
type opInstruments struct {
	reqs    *metrics.Counter
	errs    *metrics.Counter
	latency *metrics.Histogram
}

// opNames are the operations instrumented per-op — the binary protocol
// ops, which the JSON endpoints map onto one-to-one.
var opNames = []string{
	"ping", "find", "has", "get-successors", "evaluate-route",
	"range-query", "find-batch", "evaluate-routes", "apply", "query",
}

// logLimiter is a crude token bucket: at most burst events per second,
// counting what it suppressed.
type logLimiter struct {
	mu          sync.Mutex
	windowStart time.Time
	n           int
	suppressed  int64
}

const logLimiterBurst = 10

// allow reports whether an event may be logged now, returning the
// number of events suppressed since the last allowed one (reported so
// log volume stays an honest signal).
func (l *logLimiter) allow() (ok bool, suppressed int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if now.Sub(l.windowStart) >= time.Second {
		l.windowStart = now
		l.n = 0
	}
	if l.n >= logLimiterBurst {
		l.suppressed++
		return false, 0
	}
	l.n++
	suppressed = l.suppressed
	l.suppressed = 0
	return true, suppressed
}

// New builds a server over st. Server instruments (request count,
// errors, sheds, latency histogram) land in the store's metrics
// registry when the store has one, so /metrics exposes store and
// server series side by side; a store without metrics gets a private
// registry (Stats still works, /metrics stays store-only).
func New(opts Options) *Server {
	if opts.Store == nil {
		panic("server: Options.Store is required")
	}
	s := &Server{
		st:          opts.Store,
		maxInFlight: opts.MaxInFlight,
		defDeadline: opts.DefaultDeadline,
		log:         opts.Logger,
		slowQuery:   opts.SlowQuery,
		conns:       make(map[net.Conn]struct{}),
	}
	if s.maxInFlight <= 0 {
		s.maxInFlight = DefaultMaxInFlight
	}
	s.gate.cond = sync.NewCond(&s.gate.Mutex)
	s.reg = opts.Store.Metrics()
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	s.requests = s.reg.Counter("ccam_server_requests_total")
	s.errs = s.reg.Counter("ccam_server_errors_total")
	s.sheds = s.reg.Counter("ccam_server_shed_total")
	s.slow = s.reg.Counter("ccam_server_slow_total")
	s.latency = s.reg.Histogram("ccam_server_request_ns")
	s.ops = make(map[string]*opInstruments, len(opNames))
	for _, name := range opNames {
		p := "ccam_server_op_" + strings.ReplaceAll(name, "-", "_") + "_"
		s.ops[name] = &opInstruments{
			reqs:    s.reg.Counter(p + "total"),
			errs:    s.reg.Counter(p + "errors_total"),
			latency: s.reg.Histogram(p + "ns"),
		}
	}
	s.reg.GaugeFunc("ccam_server_inflight", func() float64 {
		s.gate.Lock()
		defer s.gate.Unlock()
		return float64(s.gate.inflight)
	})
	return s
}

// Store returns the served store.
func (s *Server) Store() *ccam.Store { return s.st }

// MaxInFlight returns the effective admission cap.
func (s *Server) MaxInFlight() int { return s.maxInFlight }

// admit claims an admission slot. It never blocks: over the cap it
// sheds with ccam.ErrOverloaded, during a drain it refuses with
// ccam.ErrClosed. The returned release must be called exactly once.
func (s *Server) admit() (release func(), err error) {
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.gate.draining {
		return nil, ccam.ErrClosed
	}
	if s.gate.inflight >= s.maxInFlight {
		s.sheds.Inc()
		return nil, fmt.Errorf("%w: %d requests in flight", ccam.ErrOverloaded, s.gate.inflight)
	}
	s.gate.inflight++
	return func() {
		s.gate.Lock()
		s.gate.inflight--
		if s.gate.inflight == 0 {
			s.gate.cond.Broadcast()
		}
		s.gate.Unlock()
	}, nil
}

// requestHook, when non-nil, runs inside every admitted request with
// the request's context, before dispatch. Test-only: it lets tests
// hold requests in flight and observe context cancellation.
var requestHook func(ctx context.Context)

// reqMeta is the per-request observability context threaded through
// do: which op runs, the wire trace id (0 = untraced) and the resource
// account being filled for the client (nil = not requested).
type reqMeta struct {
	op      string
	traceID uint64
	rs      *ccam.ReqStats
}

// do runs one admitted request: claim a slot, bound the context,
// execute, record global + per-op instruments, and feed the slow-query
// log. A shed request is marked in meta.rs (when the client asked for
// stats) so the refusal explains itself on the wire.
func (s *Server) do(ctx context.Context, meta reqMeta, fn func(ctx context.Context) error) error {
	release, err := s.admit()
	if err != nil {
		if meta.rs != nil {
			meta.rs.Shed = true
		}
		s.logShed(meta, err)
		return err
	}
	defer release()
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && s.defDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.defDeadline)
		defer cancel()
	}
	start := time.Now()
	s.requests.Inc()
	oi := s.ops[meta.op]
	if oi != nil {
		oi.reqs.Inc()
	}
	if requestHook != nil {
		requestHook(ctx)
	}
	err = fn(ctx)
	dur := time.Since(start)
	s.latency.Observe(dur.Nanoseconds())
	if oi != nil {
		oi.latency.Observe(dur.Nanoseconds())
	}
	if err != nil {
		s.errs.Inc()
		if oi != nil {
			oi.errs.Inc()
		}
	}
	if s.slowQuery > 0 && dur >= s.slowQuery {
		s.slow.Inc()
		s.logSlow(meta, dur, err)
	}
	return err
}

// logShed records an admission refusal (rate-limited: overload storms
// shed thousands per second).
func (s *Server) logShed(meta reqMeta, err error) {
	if s.log == nil {
		return
	}
	ok, suppressed := s.shedLim.allow()
	if !ok {
		return
	}
	s.log.Warn("request shed", "op", meta.op, "err", err, "suppressed", suppressed)
}

// logSlow emits one slow-query log line: op, latency, trace id, the
// request's resource account, and — when the request was sampled — the
// span breakdown of its store-side traces, pulled from the tracer ring
// by trace id. Rate-limited like shed logging.
func (s *Server) logSlow(meta reqMeta, dur time.Duration, err error) {
	if s.log == nil {
		return
	}
	ok, suppressed := s.slowLim.allow()
	if !ok {
		return
	}
	attrs := []any{"op", meta.op, "dur", dur, "suppressed", suppressed}
	if meta.traceID != 0 {
		attrs = append(attrs, "trace", fmt.Sprintf("%016x", meta.traceID))
	}
	if rs := meta.rs; rs != nil {
		attrs = append(attrs,
			"data_reads", rs.DataReads, "index_pages", rs.IndexPages,
			"buffer_hits", rs.BufferHits, "buffer_misses", rs.BufferMisses)
		if rs.DataWrites > 0 {
			attrs = append(attrs, "data_writes", rs.DataWrites)
		}
		if rs.WALWaitNs > 0 {
			attrs = append(attrs, "wal_wait", time.Duration(rs.WALWaitNs))
		}
	}
	if meta.traceID != 0 {
		if spans := s.spanBreakdown(meta.traceID); spans != "" {
			attrs = append(attrs, "spans", spans)
		}
	}
	if err != nil {
		attrs = append(attrs, "err", err)
	}
	s.log.Warn("slow query", attrs...)
}

// spanBreakdown renders the store-side traces tagged with the trace id
// as one compact string: "op dur [span +off dur] ...; op dur ...".
func (s *Server) spanBreakdown(traceID uint64) string {
	tr := s.st.Tracer()
	if tr == nil {
		return ""
	}
	traces := tr.Select(8, metrics.TraceFilter{TraceID: traceID})
	if len(traces) == 0 {
		return ""
	}
	var b strings.Builder
	for i := len(traces) - 1; i >= 0; i-- { // oldest first reads chronologically
		t := &traces[i]
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %v", t.Op, t.Dur)
		for _, sp := range t.Spans {
			fmt.Fprintf(&b, " [%s +%v %v]", sp.Name, sp.Offset, sp.Dur)
		}
		if t.Dropped > 0 {
			fmt.Fprintf(&b, " dropped=%d", t.Dropped)
		}
	}
	return b.String()
}

// Stats is a point-in-time view of the server instruments.
type Stats struct {
	Requests int64
	Errors   int64
	Sheds    int64
	Latency  metrics.HistSnapshot
}

// Stats snapshots the server instruments.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Value(),
		Errors:   s.errs.Value(),
		Sheds:    s.sheds.Value(),
		Latency:  s.latency.Snapshot(),
	}
}

// track registers a live binary connection; untrack removes it.
func (s *Server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Shutdown drains the server: stop accepting connections, refuse new
// requests (ccam.ErrClosed), wait for in-flight requests to finish —
// bounded by ctx — then close remaining connections and checkpoint
// the store so the next OpenPath replays no WAL. The store itself is
// left open for the caller to Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.Lock()
	s.gate.draining = true
	inflight := s.gate.inflight
	s.gate.Unlock()
	if s.log != nil {
		s.log.Info("drain started", "inflight", inflight)
	}

	s.listenMu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.listenMu.Unlock()

	// Wait for the in-flight tail, but give up when ctx expires (the
	// cond has no timeout; poke it from a watcher goroutine).
	drainStart := time.Now()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s.gate.Lock()
		for s.gate.inflight > 0 {
			s.gate.cond.Wait()
		}
		s.gate.Unlock()
	}()
	var drainErr error
	select {
	case <-drained:
		if s.log != nil {
			s.log.Info("drain complete", "dur", time.Since(drainStart))
		}
	case <-ctx.Done():
		drainErr = ctx.Err()
		if s.log != nil {
			s.gate.Lock()
			stuck := s.gate.inflight
			s.gate.Unlock()
			s.log.Warn("drain abandoned", "dur", time.Since(drainStart), "inflight", stuck, "err", drainErr)
		}
	}

	s.connMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connMu.Unlock()
	for c := range conns {
		c.Close()
	}

	if err := s.st.Flush(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
