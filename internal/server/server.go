// Package server puts a ccam.Store in front of network traffic. It
// serves the store's query surface over two protocols sharing one
// dispatch path — JSON over HTTP (Handler) and the compact binary
// protocol of internal/wire (ServeBinary) — with per-request contexts
// and deadlines, admission control that sheds excess load with
// ccam.ErrOverloaded, and a graceful drain (Shutdown) that stops
// accepting work, finishes what is in flight, and checkpoints so a
// reopen replays nothing.
package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ccam"
	"ccam/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// Store is the served store. Required.
	Store *ccam.Store
	// MaxInFlight caps concurrently executing requests across both
	// protocols; a request arriving with the cap exhausted is shed
	// immediately with ccam.ErrOverloaded instead of queueing behind
	// work the server cannot keep up with. Zero selects 1024.
	MaxInFlight int
	// DefaultDeadline bounds requests that carry no deadline of their
	// own. Zero means unbounded.
	DefaultDeadline time.Duration
}

// DefaultMaxInFlight is the admission cap when Options.MaxInFlight is
// zero. Connections are not capped — only running requests are — so
// idle connections cost one goroutine and no admission slots.
const DefaultMaxInFlight = 1024

// Server serves one store over both protocols.
type Server struct {
	st          *ccam.Store
	maxInFlight int
	defDeadline time.Duration

	// gate is the admission state: inflight running requests, the
	// draining flag, and a cond broadcast when inflight drops so
	// Shutdown can wait for the tail.
	gate struct {
		sync.Mutex
		cond     *sync.Cond
		inflight int
		draining bool
	}

	// conns tracks open binary connections so Shutdown can close them
	// after the drain.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// listenMu guards listeners registered by ServeBinary.
	listenMu  sync.Mutex
	listeners []net.Listener

	reg      *metrics.Registry
	requests *metrics.Counter
	errs     *metrics.Counter
	sheds    *metrics.Counter
	latency  *metrics.Histogram
}

// New builds a server over st. Server instruments (request count,
// errors, sheds, latency histogram) land in the store's metrics
// registry when the store has one, so /metrics exposes store and
// server series side by side; a store without metrics gets a private
// registry (Stats still works, /metrics stays store-only).
func New(opts Options) *Server {
	if opts.Store == nil {
		panic("server: Options.Store is required")
	}
	s := &Server{
		st:          opts.Store,
		maxInFlight: opts.MaxInFlight,
		defDeadline: opts.DefaultDeadline,
		conns:       make(map[net.Conn]struct{}),
	}
	if s.maxInFlight <= 0 {
		s.maxInFlight = DefaultMaxInFlight
	}
	s.gate.cond = sync.NewCond(&s.gate.Mutex)
	s.reg = opts.Store.Metrics()
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	s.requests = s.reg.Counter("ccam_server_requests_total")
	s.errs = s.reg.Counter("ccam_server_errors_total")
	s.sheds = s.reg.Counter("ccam_server_shed_total")
	s.latency = s.reg.Histogram("ccam_server_request_ns")
	s.reg.GaugeFunc("ccam_server_inflight", func() float64 {
		s.gate.Lock()
		defer s.gate.Unlock()
		return float64(s.gate.inflight)
	})
	return s
}

// Store returns the served store.
func (s *Server) Store() *ccam.Store { return s.st }

// MaxInFlight returns the effective admission cap.
func (s *Server) MaxInFlight() int { return s.maxInFlight }

// admit claims an admission slot. It never blocks: over the cap it
// sheds with ccam.ErrOverloaded, during a drain it refuses with
// ccam.ErrClosed. The returned release must be called exactly once.
func (s *Server) admit() (release func(), err error) {
	s.gate.Lock()
	defer s.gate.Unlock()
	if s.gate.draining {
		return nil, ccam.ErrClosed
	}
	if s.gate.inflight >= s.maxInFlight {
		s.sheds.Inc()
		return nil, fmt.Errorf("%w: %d requests in flight", ccam.ErrOverloaded, s.gate.inflight)
	}
	s.gate.inflight++
	return func() {
		s.gate.Lock()
		s.gate.inflight--
		if s.gate.inflight == 0 {
			s.gate.cond.Broadcast()
		}
		s.gate.Unlock()
	}, nil
}

// requestHook, when non-nil, runs inside every admitted request with
// the request's context, before dispatch. Test-only: it lets tests
// hold requests in flight and observe context cancellation.
var requestHook func(ctx context.Context)

// do runs one admitted request: claim a slot, bound the context,
// execute, record instruments.
func (s *Server) do(ctx context.Context, fn func(ctx context.Context) error) error {
	release, err := s.admit()
	if err != nil {
		return err
	}
	defer release()
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && s.defDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.defDeadline)
		defer cancel()
	}
	start := time.Now()
	s.requests.Inc()
	if requestHook != nil {
		requestHook(ctx)
	}
	err = fn(ctx)
	s.latency.ObserveSince(start)
	if err != nil {
		s.errs.Inc()
	}
	return err
}

// Stats is a point-in-time view of the server instruments.
type Stats struct {
	Requests int64
	Errors   int64
	Sheds    int64
	Latency  metrics.HistSnapshot
}

// Stats snapshots the server instruments.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Value(),
		Errors:   s.errs.Value(),
		Sheds:    s.sheds.Value(),
		Latency:  s.latency.Snapshot(),
	}
}

// track registers a live binary connection; untrack removes it.
func (s *Server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.conns == nil {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

// Shutdown drains the server: stop accepting connections, refuse new
// requests (ccam.ErrClosed), wait for in-flight requests to finish —
// bounded by ctx — then close remaining connections and checkpoint
// the store so the next OpenPath replays no WAL. The store itself is
// left open for the caller to Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.Lock()
	s.gate.draining = true
	s.gate.Unlock()

	s.listenMu.Lock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.listenMu.Unlock()

	// Wait for the in-flight tail, but give up when ctx expires (the
	// cond has no timeout; poke it from a watcher goroutine).
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s.gate.Lock()
		for s.gate.inflight > 0 {
			s.gate.cond.Wait()
		}
		s.gate.Unlock()
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}

	s.connMu.Lock()
	conns := s.conns
	s.conns = nil
	s.connMu.Unlock()
	for c := range conns {
		c.Close()
	}

	if err := s.st.Flush(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
