package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"ccam"
	"ccam/internal/wire"
)

// queryRunner is the CCAM-QL surface both protocol clients share.
type queryRunner interface {
	Query(ctx context.Context, src string) (*ccam.Result, error)
	Explain(ctx context.Context, src string) (*ccam.Result, error)
}

// TestQueryBothProtocols runs the same CCAM-QL statements over the
// binary and the JSON protocol and compares each result against the
// statement run directly on the store.
func TestQueryBothProtocols(t *testing.T) {
	st, g := testStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})
	ctx := context.Background()

	ids := g.NodeIDs()
	id := ids[len(ids)/2]
	rec, err := st.Find(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		fmt.Sprintf("FIND %d", id),
		fmt.Sprintf("WINDOW (%g, %g, %g, %g)",
			rec.Pos.X-200, rec.Pos.Y-200, rec.Pos.X+200, rec.Pos.Y+200),
		fmt.Sprintf("NEIGHBORS %d DEPTH 2 AGG SUM(cost)", id),
		fmt.Sprintf("PATH %d TO %d", ids[0], id),
	}

	bc, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	clients := map[string]queryRunner{
		"binary": bc,
		"json":   &wire.HTTPClient{Base: httpBase},
	}

	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			for _, stmt := range stmts {
				want, err := st.Query(ctx, stmt)
				if err != nil {
					t.Fatalf("direct Query(%s): %v", stmt, err)
				}
				got, err := c.Query(ctx, stmt)
				if err != nil {
					t.Fatalf("remote Query(%s): %v", stmt, err)
				}
				// The I/O account depends on pool temperature at run
				// time; everything else must round-trip exactly.
				if got.Actual == nil {
					t.Fatalf("%s: no actuals in remote result", stmt)
				}
				got.Actual, want.Actual = nil, nil
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s:\n remote %+v\n direct %+v", stmt, got, want)
				}

				// The explain flag returns the plan without executing.
				exp, err := c.Explain(ctx, stmt)
				if err != nil {
					t.Fatalf("remote Explain(%s): %v", stmt, err)
				}
				if !exp.Explain || exp.Plan == nil || exp.Text == "" || exp.Actual != nil {
					t.Errorf("%s: explain result %+v", stmt, exp)
				}
				if exp.Plan.Chosen.Path != want.Plan.Chosen.Path {
					t.Errorf("%s: explain chose %s, execute chose %s",
						stmt, exp.Plan.Chosen.Path, want.Plan.Chosen.Path)
				}
			}
			// An EXPLAIN prefix in the statement itself works too, and
			// the explain flag does not double-prefix it.
			exp, err := c.Explain(ctx, "EXPLAIN "+stmts[0])
			if err != nil || !exp.Explain {
				t.Fatalf("prefixed explain = %+v, %v", exp, err)
			}
		})
	}
}

// TestQueryErrorsBothProtocols asserts the query-language error family
// survives both protocols with the right codes and HTTP statuses.
func TestQueryErrorsBothProtocols(t *testing.T) {
	st, _ := testStore(t)
	_, binAddr, httpBase := startServer(t, st, Options{})
	ctx := context.Background()

	bc, err := wire.Dial(binAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	clients := map[string]queryRunner{
		"binary": bc,
		"json":   &wire.HTTPClient{Base: httpBase},
	}
	cases := []struct {
		stmt     string
		sentinel error
	}{
		{"SELECT * FROM t", ccam.ErrQueryParse},
		{"NEIGHBORS 1 DEPTH 1 AGG SUM(nodes)", ccam.ErrQueryUnsupported},
		{"FIND 4000000000", ccam.ErrNotFound},
	}
	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			for _, tc := range cases {
				if _, err := c.Query(ctx, tc.stmt); !errors.Is(err, tc.sentinel) {
					t.Errorf("Query(%s) = %v, want %v", tc.stmt, err, tc.sentinel)
				}
			}
		})
	}

	// Raw status check: a parse error is a client error (400), not a
	// server failure.
	resp, err := http.Post(httpBase+"/v1/query", "application/json",
		reqBody(`{"query":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status = %d, want 400", resp.StatusCode)
	}
}
