package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"ccam"
	"ccam/internal/wire"
)

// ServeBinary accepts binary-protocol connections on l until the
// listener closes (Shutdown closes it). Each connection gets one
// reader goroutine; each request runs in its own goroutine so a
// connection may pipeline, with responses serialized on a write lock
// and matched by request id.
func (s *Server) ServeBinary(l net.Listener) error {
	s.listenMu.Lock()
	s.listeners = append(s.listeners, l)
	s.listenMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// serveConn runs one binary connection. The connection context is
// canceled the moment the read side fails — a client disconnect
// aborts every query still running on its behalf.
func (s *Server) serveConn(conn net.Conn) {
	if !s.track(conn) { // already draining
		conn.Close()
		return
	}
	if s.log != nil {
		s.log.Debug("connection open", "remote", conn.RemoteAddr())
	}
	ctx, cancel := context.WithCancel(context.Background())
	var (
		writeMu sync.Mutex
		pending sync.WaitGroup
	)
	bw := bufio.NewWriterSize(conn, 16<<10)
	respond := func(payload []byte) {
		writeMu.Lock()
		defer writeMu.Unlock()
		if wire.WriteFrame(bw, payload) == nil {
			bw.Flush()
		}
	}

	var served int64
	br := bufio.NewReaderSize(conn, 16<<10)
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		h, body, err := wire.DecodeRequestHeader(frame)
		if err != nil {
			respond(wire.EncodeErrResponse(h.ID, err))
			break
		}
		served++
		pending.Add(1)
		go func() {
			defer pending.Done()
			s.handleBinary(ctx, h, body, respond)
		}()
	}
	cancel()
	pending.Wait()
	s.untrack(conn)
	conn.Close()
	if s.log != nil {
		s.log.Debug("connection closed", "remote", conn.RemoteAddr(), "requests", served)
	}
}

// handleBinary dispatches one binary request through the shared
// admission/deadline path. The response is written while the request
// still holds its admission slot, so a drain that begins during the
// request cannot close the connection before the reply is out.
//
// A sampled request (extended header) tags the store-side traces with
// its trace id; a want-stats request gets its resource account echoed
// in the response stats block — on errors too, so a shed request
// reports Shed.
func (s *Server) handleBinary(connCtx context.Context, h wire.ReqHeader, body []byte, respond func([]byte)) {
	var rs *ccam.ReqStats
	reqCtx := connCtx
	if h.Sampled || h.WantStats {
		rs = new(ccam.ReqStats)
		reqCtx = ccam.WithReqStats(reqCtx, rs)
	}
	if h.Sampled && h.TraceID != 0 {
		reqCtx = ccam.WithTraceID(reqCtx, h.TraceID)
	}
	var echo *ccam.ReqStats
	if h.WantStats {
		echo = rs
	}
	meta := reqMeta{op: h.Op.String(), traceID: h.TraceID, rs: rs}
	responded := false
	err := s.do(reqCtx, meta, func(ctx context.Context) error {
		if h.DeadlineMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(h.DeadlineMS)*time.Millisecond)
			defer cancel()
		}
		out, ferr := s.dispatchBinary(ctx, h.Op, body)
		responded = true
		if ferr != nil {
			respond(wire.EncodeErrResponseStats(h.ID, ferr, echo))
			return ferr
		}
		respond(wire.EncodeOKResponseStats(h.ID, out, echo))
		return nil
	})
	// err without a response means admission refused the request
	// (shed or draining) before fn ran.
	if err != nil && !responded {
		respond(wire.EncodeErrResponseStats(h.ID, err, echo))
	}
}

func (s *Server) dispatchBinary(ctx context.Context, op wire.Op, body []byte) ([]byte, error) {
	switch op {
	case wire.OpPing:
		return nil, ctx.Err()
	case wire.OpFind:
		id, err := wire.DecodeIDBody(body)
		if err != nil {
			return nil, err
		}
		rec, err := s.st.Find(ctx, id)
		if err != nil {
			return nil, err
		}
		return wire.EncodeRecordBody(rec), nil
	case wire.OpHas:
		id, err := wire.DecodeIDBody(body)
		if err != nil {
			return nil, err
		}
		ok, err := s.st.Has(ctx, id)
		if err != nil {
			return nil, err
		}
		return wire.EncodeBoolBody(ok), nil
	case wire.OpGetSuccessors:
		id, err := wire.DecodeIDBody(body)
		if err != nil {
			return nil, err
		}
		recs, err := s.st.GetSuccessors(ctx, id)
		if err != nil {
			return nil, err
		}
		return wire.EncodeRecordsBody(recs), nil
	case wire.OpEvaluateRoute:
		ids, rest, err := wire.DecodeIDsBody(body)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, wire.RemoteError(wire.CodeBadRequest, "trailing bytes after route")
		}
		agg, err := s.st.EvaluateRoute(ctx, ccam.Route(ids))
		if err != nil {
			return nil, err
		}
		return wire.EncodeAggBody(agg), nil
	case wire.OpRangeQuery:
		rect, err := wire.DecodeRectBody(body)
		if err != nil {
			return nil, err
		}
		recs, err := s.st.RangeQuery(ctx, rect)
		if err != nil {
			return nil, err
		}
		return wire.EncodeRecordsBody(recs), nil
	case wire.OpFindBatch:
		ids, rest, err := wire.DecodeIDsBody(body)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, wire.RemoteError(wire.CodeBadRequest, "trailing bytes after ids")
		}
		recs, err := s.st.FindBatch(ctx, ids)
		if err != nil {
			return nil, err
		}
		return wire.EncodeRecordsBody(recs), nil
	case wire.OpEvaluateRoutes:
		routes, err := wire.DecodeRoutesBody(body)
		if err != nil {
			return nil, err
		}
		aggs, err := s.st.EvaluateRoutes(ctx, routes)
		if err != nil {
			return nil, err
		}
		return wire.EncodeAggsBody(aggs), nil
	case wire.OpApply:
		ops, err := wire.DecodeApplyBody(body)
		if err != nil {
			return nil, err
		}
		req := wire.ApplyRequest{Ops: ops}
		b, err := req.Batch()
		if err != nil {
			return nil, err
		}
		if err := s.st.Apply(ctx, b); err != nil {
			return nil, err
		}
		return wire.EncodeUint32Body(uint32(b.Len())), nil
	case wire.OpQuery:
		src, explain, err := wire.DecodeQueryBody(body)
		if err != nil {
			return nil, err
		}
		if explain {
			src = ccam.ExplainStatement(src)
		}
		res, err := s.st.Query(ctx, src)
		if err != nil {
			return nil, err
		}
		return wire.EncodeResultBody(res)
	}
	return nil, wire.RemoteError(wire.CodeBadRequest, "unknown op "+op.String())
}
