package buffer

import (
	"bytes"
	"sync"
	"testing"

	"ccam/internal/storage"
)

// mutatePage runs one version-batch mutation of page id: the committed
// image is saved to the chain, the frame is overwritten with fill, and
// the batch publishes at commitLSN (0 auto-assigns). Returns the LSN.
func mutatePage(t *testing.T, p *Pool, id storage.PageID, fill byte, commitLSN uint64) uint64 {
	t.Helper()
	p.BeginVersionBatch()
	data, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.SaveVersion(id, data)
	for i := range data {
		data[i] = fill
	}
	p.Unpin(id, true)
	return p.PublishVersions(commitLSN)
}

func readAt(t *testing.T, p *Pool, id storage.PageID, lsn uint64) []byte {
	t.Helper()
	data, release, err := p.ReadAt(id, lsn, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp
}

// TestVersionSnapshotSeesPreBatchImage pins a snapshot, commits a
// batch over it, and checks both sides: the pinned reader keeps the
// old image, a fresh reader sees the new one.
func TestVersionSnapshotSeesPreBatchImage(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 2)
	defer p.Close()
	id := ids[0]

	lsn0 := p.AcquireSnapshot()
	if lsn0 != 0 {
		t.Fatalf("initial committed LSN = %d, want 0", lsn0)
	}
	commit := mutatePage(t, p, id, 0xAA, 0)
	if commit != 1 {
		t.Fatalf("auto-assigned LSN = %d, want 1", commit)
	}

	if got := readAt(t, p, id, lsn0); got[0] != 1 {
		t.Fatalf("pinned reader sees %#x, want pre-batch image", got[0])
	}
	if got := readAt(t, p, id, commit); got[0] != 0xAA {
		t.Fatalf("new reader sees %#x, want committed image", got[0])
	}
	if n := p.ActiveSnapshots(); n != 1 {
		t.Fatalf("ActiveSnapshots = %d, want 1", n)
	}
	if entries, _ := p.VersionStats(); entries != 1 {
		t.Fatalf("retained entries = %d, want 1", entries)
	}

	// Releasing the pin advances the floor and collects the chain.
	p.ReleaseSnapshot(lsn0)
	if entries, b := p.VersionStats(); entries != 0 || b != 0 {
		t.Fatalf("after release: entries=%d bytes=%d, want 0,0", entries, b)
	}
	if f := p.VersionFloor(); f != commit {
		t.Fatalf("floor = %d, want %d", f, commit)
	}
}

// TestVersionChainMiddleReader pins between two batches and must see
// exactly the first batch's image — the chain entry whose validity
// interval covers it — not the base or the newest bytes.
func TestVersionChainMiddleReader(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 1)
	defer p.Close()
	id := ids[0]

	pin0 := p.AcquireSnapshot() // 0: base image
	lsn1 := mutatePage(t, p, id, 0x11, 0)
	pin1 := p.AcquireSnapshot() // 1: first batch's image
	lsn2 := mutatePage(t, p, id, 0x22, 0)

	if got := readAt(t, p, id, pin0); got[0] != 1 {
		t.Fatalf("reader@%d sees %#x, want base image", pin0, got[0])
	}
	if got := readAt(t, p, id, pin1); got[0] != 0x11 {
		t.Fatalf("reader@%d sees %#x, want batch-1 image", pin1, got[0])
	}
	if got := readAt(t, p, id, lsn2); got[0] != 0x22 {
		t.Fatalf("reader@%d sees %#x, want live image", lsn2, got[0])
	}
	if lsn1 != 1 || lsn2 != 2 {
		t.Fatalf("LSNs = %d,%d, want 1,2", lsn1, lsn2)
	}

	// Release out of order: dropping the old pin first lets GC cut the
	// base entry but must keep the batch-1 entry for pin1.
	p.ReleaseSnapshot(pin0)
	if got := readAt(t, p, id, pin1); got[0] != 0x11 {
		t.Fatalf("after partial GC reader@%d sees %#x, want batch-1 image", pin1, got[0])
	}
	p.ReleaseSnapshot(pin1)
	if entries, _ := p.VersionStats(); entries != 0 {
		t.Fatalf("retained entries = %d, want 0", entries)
	}
}

// TestVersionAbortKeepsCommittedImages aborts a half-applied batch and
// checks that both a previously pinned reader and a fresh pin resolve
// the mutated page to its committed bytes — the frame's torn bytes are
// unreachable at any pinnable LSN.
func TestVersionAbortKeepsCommittedImages(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 1)
	defer p.Close()
	id := ids[0]

	pin := p.AcquireSnapshot()
	p.BeginVersionBatch()
	data, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.SaveVersion(id, data)
	for i := range data {
		data[i] = 0xEE // torn bytes that must never be served
	}
	p.Unpin(id, true)
	p.AbortVersionBatch()

	if got := readAt(t, p, id, pin); got[0] != 1 {
		t.Fatalf("pinned reader sees %#x after abort, want committed image", got[0])
	}
	fresh := p.AcquireSnapshot()
	if got := readAt(t, p, id, fresh); got[0] != 1 {
		t.Fatalf("fresh reader sees %#x after abort, want committed image", got[0])
	}
	p.ReleaseSnapshot(pin)
	p.ReleaseSnapshot(fresh)
}

// TestVersionReadersNeverSeeTornPages hammers one page with version
// batches while readers continuously pin, read and verify that every
// image they observe is internally consistent (a single repeated fill
// byte) and matches their pinned LSN's expected value.
func TestVersionReadersNeverSeeTornPages(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 1)
	defer p.Close()
	id := ids[0]

	// Fill the page so image k (committed at LSN k) is all-k bytes.
	base, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		base[i] = 0
	}
	p.Unpin(id, true)

	const rounds = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lsn := p.AcquireSnapshot()
				data, release, err := p.ReadAt(id, lsn, nil)
				if err != nil {
					t.Error(err)
					p.ReleaseSnapshot(lsn)
					return
				}
				want := byte(lsn % 251)
				ok := true
				for _, b := range data {
					if b != want {
						ok = false
						break
					}
				}
				release()
				p.ReleaseSnapshot(lsn)
				if !ok {
					t.Errorf("reader@%d saw torn or wrong image (want fill %#x)", lsn, want)
					return
				}
			}
		}()
	}
	for k := uint64(1); k <= rounds; k++ {
		mutatePage(t, p, id, byte(k%251), k)
	}
	close(stop)
	wg.Wait()
	if entries, b := p.VersionStats(); entries != 0 || b != 0 {
		t.Fatalf("after drain: entries=%d bytes=%d, want 0,0", entries, b)
	}
}

// TestVersionSaveIsIdempotentPerBatch saves the same page twice in one
// batch and checks only the first (committed) image is retained — the
// second save must not capture the batch's own half-applied bytes.
func TestVersionSaveIsIdempotentPerBatch(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 1)
	defer p.Close()
	id := ids[0]

	pin := p.AcquireSnapshot()
	p.BeginVersionBatch()
	data, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	p.SaveVersion(id, data)
	for i := range data {
		data[i] = 0x33
	}
	p.SaveVersion(id, data) // no-op: the batch already saved this page
	for i := range data {
		data[i] = 0x44
	}
	p.Unpin(id, true)
	p.PublishVersions(0)

	if entries, _ := p.VersionStats(); entries != 1 {
		t.Fatalf("retained entries = %d, want 1", entries)
	}
	got := readAt(t, p, id, pin)
	want := bytes.Repeat([]byte{1}, 1)
	if got[0] != want[0] {
		t.Fatalf("pinned reader sees %#x, want first committed image", got[0])
	}
	p.ReleaseSnapshot(pin)
}
