package buffer

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ccam/internal/metrics"
	"ccam/internal/storage"
)

func newPoolWithPages(t *testing.T, capacity, pages int) (*Pool, []storage.PageID) {
	t.Helper()
	st := storage.NewMemStore(128)
	ids := make([]storage.PageID, pages)
	for i := range ids {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		buf[0] = byte(i + 1) // distinguish pages
		if err := st.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	st.ResetStats()
	return NewPool(st, capacity), ids
}

func TestFetchHitMiss(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 3)
	b, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatalf("wrong page content: %d", b[0])
	}
	p.Unpin(ids[0], false)
	// Second fetch hits.
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	st := p.Stats()
	if st.Fetches != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if p.Store().Stats().Reads != 1 {
		t.Fatalf("physical reads = %d, want 1", p.Store().Stats().Reads)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 3)
	fetch := func(id storage.PageID) {
		t.Helper()
		if _, err := p.Fetch(id); err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(id, false); err != nil {
			t.Fatal(err)
		}
	}
	fetch(ids[0])
	fetch(ids[1])
	fetch(ids[0]) // 0 is now MRU
	fetch(ids[2]) // must evict 1, not 0
	if !p.Contains(ids[0]) || !p.Contains(ids[2]) || p.Contains(ids[1]) {
		t.Fatalf("LRU eviction picked wrong victim: contains0=%v contains1=%v contains2=%v",
			p.Contains(ids[0]), p.Contains(ids[1]), p.Contains(ids[2]))
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	p, ids := newPoolWithPages(t, 1, 2)
	b, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	b[5] = 0xAB
	p.Unpin(ids[0], true)
	// Fetching another page evicts and must flush the dirty frame.
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[1], false)
	raw := make([]byte, 128)
	if err := p.Store().ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if raw[5] != 0xAB {
		t.Fatal("dirty page lost on eviction")
	}
	if p.Stats().Flushes != 1 {
		t.Fatalf("flushes = %d", p.Stats().Flushes)
	}
}

func TestPinPreventsEviction(t *testing.T) {
	p, ids := newPoolWithPages(t, 1, 2)
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Pool is full of pinned pages: next fetch must fail.
	if _, err := p.Fetch(ids[1]); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
	p.Unpin(ids[0], false)
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatalf("fetch after unpin: %v", err)
	}
	p.Unpin(ids[1], false)
}

func TestUnpinErrors(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 1)
	if err := p.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("unpin unfetched = %v", err)
	}
	p.Fetch(ids[0])
	p.Unpin(ids[0], false)
	if err := p.Unpin(ids[0], false); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("unpin twice = %v", err)
	}
}

func TestFetchNewAndDiscard(t *testing.T) {
	p, _ := newPoolWithPages(t, 2, 0)
	id, b, err := p.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range b {
		if c != 0 {
			t.Fatal("new page not zeroed")
		}
	}
	b[0] = 7
	p.Unpin(id, true)
	if err := p.Flush(id); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 128)
	if err := p.Store().ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 7 {
		t.Fatal("flushed content wrong")
	}
	p.Discard(id)
	if p.Contains(id) {
		t.Fatal("discarded page still buffered")
	}
	// FetchNew costs no physical read.
	if p.Store().Stats().Reads != 1 { // only our verification read
		t.Fatalf("reads = %d", p.Store().Stats().Reads)
	}
}

// TestFetchNewDisplacesStaleResidentPage: a page can still be resident
// when its ID comes back from the allocator — a speculative prefetch
// that read it after the free republishes it (the Discard purge cannot
// close that race completely). FetchNew must displace the stale frame;
// leaving it used to orphan one of the two frames, and the orphan's
// eviction then unpublished the live page, so later fetches reread
// stale disk bytes while the real (dirty) frame sat unreachable.
func TestFetchNewDisplacesStaleResidentPage(t *testing.T) {
	st := storage.NewMemStore(128)
	x, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	y, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	z, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(st, 3)
	if _, err := p.Fetch(x); err != nil {
		t.Fatal(err)
	}
	p.Unpin(x, false)
	// Free x behind the pool's back: the frame stays published, exactly
	// like a stale prefetch that settled after the free.
	if err := st.Free(x); err != nil {
		t.Fatal(err)
	}
	id, b, err := p.FetchNew()
	if err != nil {
		t.Fatal(err)
	}
	if id != x {
		t.Fatalf("allocator did not reuse the freed ID (got %d, want %d)", id, x)
	}
	b[0] = 0xEE
	p.Unpin(x, true)
	// Churn the clock over the remaining frames: evicting what used to
	// be the orphan must not unpublish the live frame.
	for _, fill := range []storage.PageID{y, z} {
		if _, err := p.Fetch(fill); err != nil {
			t.Fatal(err)
		}
		p.Unpin(fill, false)
	}
	if !p.Contains(x) {
		t.Fatal("live page unpublished by the stale frame's eviction")
	}
	reads := st.Stats().Reads
	b, err = p.Fetch(x)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unpin(x, false)
	if b[0] != 0xEE {
		t.Fatalf("page %d content = %#x, want 0xEE (stale frame shadowed the live one)", x, b[0])
	}
	if st.Stats().Reads != reads {
		t.Fatal("fetch of the live page cost a physical read")
	}
}

// closeDuringWriteback drives op while its dirty-victim write-back is
// blocked inside the store, completes Close in that window, then
// releases the write and returns op's error — which must be
// ErrPoolClosed, not a silently published frame in a closed pool.
func closeDuringWriteback(t *testing.T, op func(p *Pool, ids []storage.PageID) error) error {
	t.Helper()
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 2)
	bs := newBlockingStore(st)
	p := NewPool(bs, 1)
	b, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	b[2] = 0x31
	p.Unpin(ids[0], true) // the only frame is dirty: the next claim writes it back
	bs.blockWrites.Store(true)
	errCh := make(chan error, 1)
	go func() { errCh <- op(p, ids) }()
	<-bs.entered // op is blocked inside the victim write-back, latch released
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	bs.blockWrites.Store(false)
	close(bs.release)
	if err := <-errCh; err != nil {
		return err
	}
	return nil
}

// TestFetchNewFailsAfterCloseDuringWriteback: FetchNew releases the
// shard latch while writing back a dirty victim; a Close completing in
// that window used to go unnoticed, so FetchNew published a new dirty
// frame into a closed (already flushed) shard and the page was never
// written out.
func TestFetchNewFailsAfterCloseDuringWriteback(t *testing.T) {
	err := closeDuringWriteback(t, func(p *Pool, _ []storage.PageID) error {
		id, _, err := p.FetchNew()
		if err == nil {
			p.Unpin(id, true)
		}
		return err
	})
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("FetchNew after close-during-writeback = %v, want ErrPoolClosed", err)
	}
}

// TestFetchMissFailsAfterCloseDuringWriteback is the demand-miss twin:
// the post-writeback path of fetchMiss must re-check closed too.
func TestFetchMissFailsAfterCloseDuringWriteback(t *testing.T) {
	err := closeDuringWriteback(t, func(p *Pool, ids []storage.PageID) error {
		_, err := p.Fetch(ids[1]) // not resident: a demand miss
		if err == nil {
			p.Unpin(ids[1], false)
		}
		return err
	})
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Fetch after close-during-writeback = %v, want ErrPoolClosed", err)
	}
}

func TestFlushAllAndClose(t *testing.T) {
	p, ids := newPoolWithPages(t, 4, 3)
	for _, id := range ids {
		b, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		b[1] = 0x55
		p.Unpin(id, true)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		raw := make([]byte, 128)
		if err := p.Store().ReadPage(id, raw); err != nil {
			t.Fatal(err)
		}
		if raw[1] != 0x55 {
			t.Fatal("Close lost dirty page")
		}
	}
	if _, err := p.Fetch(ids[0]); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("fetch after close = %v", err)
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 3)
	fetch := func(id storage.PageID) {
		t.Helper()
		if _, err := p.Fetch(id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id, false)
	}
	fetch(ids[0])
	fetch(ids[1])
	// Probe ids[0]; must NOT make it MRU.
	if !p.Contains(ids[0]) {
		t.Fatal("Contains false negative")
	}
	before := p.Stats().Fetches
	fetch(ids[2]) // should evict ids[0] (still LRU despite Contains)
	if p.Contains(ids[0]) {
		t.Fatal("Contains perturbed LRU order")
	}
	if p.Stats().Fetches != before+1 {
		t.Fatal("Contains counted as fetch")
	}
}

func TestPoolStress(t *testing.T) {
	st := storage.NewMemStore(64)
	var ids []storage.PageID
	shadow := map[storage.PageID]byte{}
	for i := 0; i < 50; i++ {
		id, _ := st.Allocate()
		ids = append(ids, id)
		shadow[id] = 0
	}
	p := NewPool(st, 7)
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 5000; op++ {
		id := ids[rng.Intn(len(ids))]
		b, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if b[3] != shadow[id] {
			t.Fatalf("page %d content %d, want %d", id, b[3], shadow[id])
		}
		if rng.Intn(2) == 0 {
			shadow[id]++
			b[3] = shadow[id]
			p.Unpin(id, true)
		} else {
			p.Unpin(id, false)
		}
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for id, want := range shadow {
		if err := st.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[3] != want {
			t.Fatalf("page %d persisted %d, want %d", id, buf[3], want)
		}
	}
	hr, ok := p.Stats().HitRate()
	if !ok {
		t.Fatal("hit rate undefined after fetches")
	}
	if hr <= 0 || hr >= 1 {
		t.Fatalf("implausible hit rate %f", hr)
	}
}

func TestHitRateIdleVsZero(t *testing.T) {
	if _, ok := (Stats{}).HitRate(); ok {
		t.Fatal("idle pool reported a defined hit rate")
	}
	if s := (Stats{}).String(); !strings.Contains(s, "hitrate=idle") {
		t.Fatalf("idle Stats.String() = %q, want hitrate=idle", s)
	}
	all := Stats{Fetches: 4, Misses: 4}
	if hr, ok := all.HitRate(); !ok || hr != 0 {
		t.Fatalf("all-miss pool: hr=%v ok=%v, want 0 true", hr, ok)
	}
	if s := all.String(); !strings.Contains(s, "hitrate=0.000") {
		t.Fatalf("all-miss Stats.String() = %q, want hitrate=0.000", s)
	}
}

func TestPoolInstrumentationAndTracing(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 4)
	hits, misses := &metrics.Histogram{}, &metrics.Histogram{}
	p.Instrument(PoolInstrumentation{HitNanos: hits, MissNanos: misses})

	tr := metrics.NewTracer(8)
	at := tr.Start("fetch")
	if _, err := p.FetchTraced(ids[0], at); err != nil { // miss
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	if _, err := p.FetchTraced(ids[0], at); err != nil { // hit
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	at.Finish(nil)

	if got := misses.Count(); got != 1 {
		t.Fatalf("miss observations = %d, want 1", got)
	}
	if got := hits.Count(); got != 1 {
		t.Fatalf("hit observations = %d, want 1", got)
	}
	traces := tr.Recent(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	var fetchSpans, readSpans int
	for _, s := range traces[0].Spans {
		switch s.Name {
		case "buffer.fetch":
			fetchSpans++
		case "storage.read":
			readSpans++
		}
	}
	if fetchSpans != 2 || readSpans != 1 {
		t.Fatalf("spans: buffer.fetch=%d storage.read=%d, want 2 and 1",
			fetchSpans, readSpans)
	}
}

func TestReset(t *testing.T) {
	p, ids := newPoolWithPages(t, 3, 3)
	// Dirty a page, then reset: contents must be flushed and the pool
	// emptied.
	b, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	b[9] = 0x77
	p.Unpin(ids[0], true)
	p.Fetch(ids[1])
	p.Unpin(ids[1], false)
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if p.Contains(id) {
			t.Fatalf("page %d still buffered after Reset", id)
		}
	}
	raw := make([]byte, 128)
	if err := p.Store().ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if raw[9] != 0x77 {
		t.Fatal("dirty page lost by Reset")
	}
	// The pool is usable afterwards.
	if _, err := p.Fetch(ids[2]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[2], false)
}

func TestResetRefusesPinnedPages(t *testing.T) {
	p, ids := newPoolWithPages(t, 2, 1)
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(); err == nil {
		t.Fatal("Reset succeeded with a pinned page")
	}
	p.Unpin(ids[0], false)
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentFetch hammers the pool from parallel readers over a
// working set larger than the pool, on a store with simulated read
// latency so misses genuinely overlap. Every fetch must observe the
// correct page image. Run with -race.
func TestConcurrentFetch(t *testing.T) {
	st := storage.NewMemStore(128)
	st.SetReadLatency(50 * time.Microsecond)
	var ids []storage.PageID
	for i := 0; i < 40; i++ {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		buf[0] = byte(i + 1)
		if err := st.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	p := NewPool(st, 16)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < 200; op++ {
				i := rng.Intn(len(ids))
				b, err := p.Fetch(ids[i])
				if err != nil {
					errCh <- err
					return
				}
				if b[0] != byte(i+1) {
					errCh <- fmt.Errorf("page %d holds image of page %d", i, int(b[0])-1)
					p.Unpin(ids[i], false)
					return
				}
				if err := p.Unpin(ids[i], false); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Fetches != 8*200 || s.Hits+s.Misses != s.Fetches {
		t.Fatalf("stats don't add up: %+v", s)
	}
}

// TestConcurrentFetchSingleFlight checks that parallel requests for the
// same cold page coalesce onto one physical read: the waiters block on
// the in-flight read instead of issuing their own.
func TestConcurrentFetchSingleFlight(t *testing.T) {
	st := storage.NewMemStore(128)
	st.SetReadLatency(2 * time.Millisecond)
	id, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	buf[0] = 0xCD
	if err := st.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	p := NewPool(st, 4)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := p.Fetch(id)
			if err != nil {
				errCh <- err
				return
			}
			if b[0] != 0xCD {
				errCh <- fmt.Errorf("wrong image %x", b[0])
			}
			p.Unpin(id, false)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if r := st.Stats().Reads; r != 1 {
		t.Fatalf("physical reads = %d, want 1 (single-flight)", r)
	}
	if s := p.Stats(); s.Misses != 1 || s.Hits != 7 {
		t.Fatalf("stats = %+v, want 1 miss and 7 coalesced hits", s)
	}
}
