package buffer

import (
	"sync"
	"testing"
	"time"

	"ccam/internal/storage"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchLoadsAdjacentPages: a demand miss on a page queues its
// PAG neighbors; the workers fault them in so the following demand
// fetches are hits, without any of the speculative I/O leaking into
// the demand hit/miss counters.
func TestPrefetchLoadsAdjacentPages(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 4)
	p := NewPoolShards(st, 8, 2)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		if id == ids[0] {
			return []storage.PageID{ids[1], ids[2]}
		}
		return nil
	})
	p.EnablePrefetch(2, 16)
	defer p.Close()

	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	waitFor(t, "prefetched neighbors", func() bool {
		return p.Contains(ids[1]) && p.Contains(ids[2])
	})

	// Demand stats saw exactly one miss; the two speculative reads
	// happened but are accounted separately.
	s := p.Stats()
	if s.Fetches != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("demand stats polluted by prefetch: %+v", s)
	}
	ps := p.PrefetchStats()
	if ps.Issued != 2 || ps.Loaded != 2 || ps.Errors != 0 {
		t.Fatalf("prefetch stats = %+v, want issued=2 loaded=2", ps)
	}
	if r := st.Stats().Reads; r != 3 {
		t.Fatalf("physical reads = %d, want 3 (1 demand + 2 prefetch)", r)
	}

	// The demand fetch of a prefetched page is a hit and counts the
	// prediction useful.
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[1], false)
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("prefetched page fetch was not a hit: %+v", s)
	}
	if ps := p.PrefetchStats(); ps.Useful != 1 {
		t.Fatalf("useful = %d, want 1", ps.Useful)
	}
	if r := st.Stats().Reads; r != 3 {
		t.Fatalf("prefetched page re-read: %d reads", r)
	}
}

// TestPrefetchNeverStealsDirtyOrGrows: with every frame dirty under
// no-steal, a prefetch finds no clean victim and is dropped — it must
// not write back, not grow the pool, and not fail the demand path.
func TestPrefetchNeverStealsDirtyOrGrows(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 4)
	p := NewPool(st, 2)
	p.SetNoSteal(true)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		return []storage.PageID{ids[3]}
	})
	p.EnablePrefetch(1, 4)
	defer p.Close()

	for _, id := range ids[:2] {
		b, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		b[1] = 0x22
		p.Unpin(id, true)
	}
	// Demand-miss a third page: grows an overflow frame (no-steal) and
	// suggests ids[3]; the prefetcher must drop it for lack of a clean
	// victim rather than stealing or growing.
	if _, err := p.Fetch(ids[2]); err != nil {
		t.Fatal(err)
	}
	b, _ := p.Fetch(ids[2])
	b[1] = 0x22
	p.Unpin(ids[2], true)
	p.Unpin(ids[2], true)

	waitFor(t, "prefetch suggestion settled", func() bool {
		ps := p.PrefetchStats()
		return ps.Dropped+ps.Loaded+ps.Errors >= ps.Issued && ps.Issued > 0
	})
	if p.Contains(ids[3]) {
		t.Fatal("prefetch stole a frame it should not have")
	}
	if w := st.Stats().Writes; w != 0 {
		t.Fatalf("prefetch caused %d store writes", w)
	}
	if ps := p.PrefetchStats(); ps.Dropped == 0 {
		t.Fatalf("prefetch not dropped: %+v", ps)
	}
}

// TestPrefetchCancellation: closing the pool with a full prefetch
// queue, and resetting it mid-flight, must quiesce cleanly — no leaked
// workers, no transient pins left behind, and a Reset pool really is
// cold. Run with -race.
func TestPrefetchCancellation(t *testing.T) {
	st := storage.NewMemStore(128)
	st.SetReadLatency(200 * time.Microsecond)
	ids := seedPages(t, st, 32)
	p := NewPoolShards(st, 64, 4)
	// Every page suggests the next four: plenty of queued work.
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		var out []storage.PageID
		for i, pid := range ids {
			if pid == id {
				for j := 1; j <= 4; j++ {
					out = append(out, ids[(i+j)%len(ids)])
				}
				break
			}
		}
		return out
	})
	p.EnablePrefetch(2, 8)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < 50; op++ {
				id := ids[(op*7+w*13)%len(ids)]
				if _, err := p.Fetch(id); err != nil {
					t.Error(err)
					return
				}
				if err := p.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Reset while prefetches may still be in flight: it must quiesce
	// them (they hold transient pins) and leave the pool cold.
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if p.Contains(id) {
			t.Fatalf("page %d resident after Reset", id)
		}
	}
	// The pool keeps working (and prefetching) after Reset.
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	waitFor(t, "prefetch after reset", func() bool {
		return p.PrefetchStats().Loaded > 0 || p.PrefetchStats().Dropped > 0
	})

	// Close with whatever is still queued: workers must exit and the
	// pool must refuse further fetches.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(ids[1]); err == nil {
		t.Fatal("fetch succeeded on a closed pool")
	}
	// Idempotent close after close.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
