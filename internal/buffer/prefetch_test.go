package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccam/internal/storage"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchLoadsAdjacentPages: a demand miss on a page queues its
// PAG neighbors; the workers fault them in so the following demand
// fetches are hits, without any of the speculative I/O leaking into
// the demand hit/miss counters.
func TestPrefetchLoadsAdjacentPages(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 4)
	p := NewPoolShards(st, 8, 2)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		if id == ids[0] {
			return []storage.PageID{ids[1], ids[2]}
		}
		return nil
	})
	p.EnablePrefetch(2, 16)
	defer p.Close()

	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	waitFor(t, "prefetched neighbors", func() bool {
		return p.Contains(ids[1]) && p.Contains(ids[2])
	})

	// Demand stats saw exactly one miss; the two speculative reads
	// happened but are accounted separately.
	s := p.Stats()
	if s.Fetches != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("demand stats polluted by prefetch: %+v", s)
	}
	ps := p.PrefetchStats()
	if ps.Issued != 2 || ps.Loaded != 2 || ps.Errors != 0 {
		t.Fatalf("prefetch stats = %+v, want issued=2 loaded=2", ps)
	}
	if r := st.Stats().Reads; r != 3 {
		t.Fatalf("physical reads = %d, want 3 (1 demand + 2 prefetch)", r)
	}

	// The demand fetch of a prefetched page is a hit and counts the
	// prediction useful.
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[1], false)
	if s := p.Stats(); s.Hits != 1 {
		t.Fatalf("prefetched page fetch was not a hit: %+v", s)
	}
	if ps := p.PrefetchStats(); ps.Useful != 1 {
		t.Fatalf("useful = %d, want 1", ps.Useful)
	}
	if r := st.Stats().Reads; r != 3 {
		t.Fatalf("prefetched page re-read: %d reads", r)
	}
}

// TestPrefetchNeverStealsDirtyOrGrows: with every frame dirty under
// no-steal, a prefetch finds no clean victim and is dropped — it must
// not write back, not grow the pool, and not fail the demand path.
func TestPrefetchNeverStealsDirtyOrGrows(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 4)
	p := NewPool(st, 2)
	p.SetNoSteal(true)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		return []storage.PageID{ids[3]}
	})
	p.EnablePrefetch(1, 4)
	defer p.Close()

	for _, id := range ids[:2] {
		b, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		b[1] = 0x22
		p.Unpin(id, true)
	}
	// Demand-miss a third page: grows an overflow frame (no-steal) and
	// suggests ids[3]; the prefetcher must drop it for lack of a clean
	// victim rather than stealing or growing.
	if _, err := p.Fetch(ids[2]); err != nil {
		t.Fatal(err)
	}
	b, _ := p.Fetch(ids[2])
	b[1] = 0x22
	p.Unpin(ids[2], true)
	p.Unpin(ids[2], true)

	waitFor(t, "prefetch suggestion settled", func() bool {
		ps := p.PrefetchStats()
		return ps.Dropped+ps.Loaded+ps.Errors >= ps.Issued && ps.Issued > 0
	})
	if p.Contains(ids[3]) {
		t.Fatal("prefetch stole a frame it should not have")
	}
	if w := st.Stats().Writes; w != 0 {
		t.Fatalf("prefetch caused %d store writes", w)
	}
	if ps := p.PrefetchStats(); ps.Dropped == 0 {
		t.Fatalf("prefetch not dropped: %+v", ps)
	}
}

// pageGateStore blocks physical reads of one specific page: the read
// signals entered and waits for release. Disarm by storing -1.
type pageGateStore struct {
	storage.Store
	gated   atomic.Int64 // PageID being gated, -1 when disarmed
	entered chan struct{}
	release chan struct{}
}

func newPageGateStore(inner storage.Store, id storage.PageID) *pageGateStore {
	g := &pageGateStore{
		Store:   inner,
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	g.gated.Store(int64(id))
	return g
}

func (g *pageGateStore) ReadPage(id storage.PageID, buf []byte) error {
	if int64(id) == g.gated.Load() {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.Store.ReadPage(id, buf)
}

// TestDiscardDuringPrefetchLoad is the regression test for the
// free-vs-prefetch crash: Discard of a page whose speculative read is
// still in flight used to panic ("discard of pinned page") because the
// prefetch worker holds a pin across the store read, outside the
// access-method lock. Discard must instead doom the frame so the
// loader drops the dead bytes when the read settles.
func TestDiscardDuringPrefetchLoad(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 2)
	gs := newPageGateStore(st, ids[1])
	p := NewPool(gs, 4)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		if id == ids[0] {
			return []storage.PageID{ids[1]}
		}
		return nil
	})
	p.EnablePrefetch(1, 8)
	defer p.Close()

	// Demand-miss ids[0]: the worker starts prefetching ids[1] and
	// blocks inside the physical read.
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	<-gs.entered

	// The page is freed while its speculative read is in flight. This
	// used to panic; it must doom the frame instead.
	p.Discard(ids[1])
	if p.Contains(ids[1]) {
		t.Fatal("discarded page still reported resident")
	}

	gs.gated.Store(-1)
	close(gs.release)
	waitFor(t, "doomed prefetch settled", func() bool {
		ps := p.PrefetchStats()
		return ps.Dropped+ps.Loaded+ps.Errors >= ps.Issued
	})
	if p.Contains(ids[1]) {
		t.Fatal("doomed prefetch published a freed page")
	}
	if ps := p.PrefetchStats(); ps.Loaded != 0 || ps.Dropped != 1 {
		t.Fatalf("prefetch stats = %+v, want the doomed load counted dropped", ps)
	}

	// The pool stays fully usable, and a later demand fetch of the ID
	// performs a fresh physical read rather than serving stale bytes.
	before := st.Stats().Reads
	b, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 {
		t.Fatalf("refetched page content = %d, want 2", b[0])
	}
	p.Unpin(ids[1], false)
	if st.Stats().Reads != before+1 {
		t.Fatal("demand fetch after discard did not re-read the store")
	}
}

// TestDiscardPurgesQueuedPrefetch: freeing a page must also purge it
// from the prefetch queue, or a worker loads it after the free and
// publishes free-list bytes under a reusable page ID.
func TestDiscardPurgesQueuedPrefetch(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 3)
	gs := newPageGateStore(st, ids[1])
	p := NewPool(gs, 8)
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		if id == ids[0] {
			return []storage.PageID{ids[1], ids[2]}
		}
		return nil
	})
	p.EnablePrefetch(1, 8) // one worker: ids[2] stays queued behind ids[1]
	defer p.Close()

	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	<-gs.entered // the worker is inside the read of ids[1]

	p.Discard(ids[2]) // frees the still-queued suggestion

	gs.gated.Store(-1)
	close(gs.release)
	waitFor(t, "prefetch queue drained", func() bool {
		ps := p.PrefetchStats()
		return ps.Dropped+ps.Loaded+ps.Errors >= ps.Issued
	})
	if p.Contains(ids[2]) {
		t.Fatal("purged prefetch was loaded anyway")
	}
	ps := p.PrefetchStats()
	if ps.Issued != 2 || ps.Loaded != 1 || ps.Dropped != 1 {
		t.Fatalf("prefetch stats = %+v, want issued=2 loaded=1 dropped=1", ps)
	}
	// 1 demand read + 1 prefetch read; the purged page was never read.
	if r := st.Stats().Reads; r != 2 {
		t.Fatalf("physical reads = %d, want 2", r)
	}
}

// TestPrefetchCancellation: closing the pool with a full prefetch
// queue, and resetting it mid-flight, must quiesce cleanly — no leaked
// workers, no transient pins left behind, and a Reset pool really is
// cold. Run with -race.
func TestPrefetchCancellation(t *testing.T) {
	st := storage.NewMemStore(128)
	st.SetReadLatency(200 * time.Microsecond)
	ids := seedPages(t, st, 32)
	p := NewPoolShards(st, 64, 4)
	// Every page suggests the next four: plenty of queued work.
	p.SetAdjacency(func(id storage.PageID) []storage.PageID {
		var out []storage.PageID
		for i, pid := range ids {
			if pid == id {
				for j := 1; j <= 4; j++ {
					out = append(out, ids[(i+j)%len(ids)])
				}
				break
			}
		}
		return out
	})
	p.EnablePrefetch(2, 8)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < 50; op++ {
				id := ids[(op*7+w*13)%len(ids)]
				if _, err := p.Fetch(id); err != nil {
					t.Error(err)
					return
				}
				if err := p.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Reset while prefetches may still be in flight: it must quiesce
	// them (they hold transient pins) and leave the pool cold.
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if p.Contains(id) {
			t.Fatalf("page %d resident after Reset", id)
		}
	}
	// The pool keeps working (and prefetching) after Reset.
	if _, err := p.Fetch(ids[0]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[0], false)
	waitFor(t, "prefetch after reset", func() bool {
		return p.PrefetchStats().Loaded > 0 || p.PrefetchStats().Dropped > 0
	})

	// Close with whatever is still queued: workers must exit and the
	// pool must refuse further fetches.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(ids[1]); err == nil {
		t.Fatal("fetch succeeded on a closed pool")
	}
	// Idempotent close after close.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
