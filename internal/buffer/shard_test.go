package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ccam/internal/storage"
)

// blockingStore wraps a Store so a test can hold WritePage or ReadPage
// open: when armed, the call signals entered and then waits for release.
type blockingStore struct {
	storage.Store
	blockWrites atomic.Bool
	blockReads  atomic.Bool
	entered     chan struct{}
	release     chan struct{}
}

func newBlockingStore(inner storage.Store) *blockingStore {
	return &blockingStore{
		Store:   inner,
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (b *blockingStore) WritePage(id storage.PageID, buf []byte) error {
	if b.blockWrites.Load() {
		b.entered <- struct{}{}
		<-b.release
	}
	return b.Store.WritePage(id, buf)
}

func (b *blockingStore) ReadPage(id storage.PageID, buf []byte) error {
	if b.blockReads.Load() {
		b.entered <- struct{}{}
		<-b.release
	}
	return b.Store.ReadPage(id, buf)
}

func seedPages(t *testing.T, st storage.Store, n int) []storage.PageID {
	t.Helper()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, st.PageSize())
		buf[0] = byte(i + 1)
		if err := st.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	st.ResetStats()
	return ids
}

// TestEvictionWritebackDoesNotBlockHits is the regression test for the
// eviction-under-latch stall: a dirty victim's write-back (which runs
// the flush gate — a WAL fsync when attached) used to happen under the
// pool-wide exclusive latch, so one slow device write stalled every
// concurrent hit. Now the write happens with the shard latch released:
// while an eviction's WritePage is blocked, hits on other buffered
// pages must keep completing.
func TestEvictionWritebackDoesNotBlockHits(t *testing.T) {
	inner := storage.NewMemStore(128)
	bs := newBlockingStore(inner)
	ids := seedPages(t, inner, 3)
	p := NewPool(bs, 2) // one shard: the old code's worst case

	// Make ids[0] the dirty clock victim and ids[1] a clean resident.
	b, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	b[5] = 0xAB
	if err := p.Unpin(ids[0], true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(ids[1], false); err != nil {
		t.Fatal(err)
	}

	bs.blockWrites.Store(true)
	evictDone := make(chan error, 1)
	go func() {
		// Misses, sweeps to dirty ids[0], starts the write-back.
		_, err := p.Fetch(ids[2])
		if err == nil {
			err = p.Unpin(ids[2], false)
		}
		evictDone <- err
	}()
	select {
	case <-bs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("eviction write-back never reached the store")
	}

	// The write-back is now blocked inside WritePage. Concurrent hits
	// on the other resident page must complete meanwhile.
	hitsDone := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			if _, err := p.Fetch(ids[1]); err != nil {
				hitsDone <- err
				return
			}
			if err := p.Unpin(ids[1], false); err != nil {
				hitsDone <- err
				return
			}
		}
		hitsDone <- nil
	}()
	select {
	case err := <-hitsDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hits blocked behind an eviction write-back")
	}

	bs.blockWrites.Store(false)
	close(bs.release)
	if err := <-evictDone; err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 128)
	if err := inner.ReadPage(ids[0], raw); err != nil {
		t.Fatal(err)
	}
	if raw[5] != 0xAB {
		t.Fatal("dirty victim lost on out-of-latch write-back")
	}
	if s := p.Stats(); s.Flushes < 1 || s.Evictions < 1 {
		t.Fatalf("stats = %+v, want at least one flush and eviction", s)
	}
}

// TestEvictionWritebackBatchesBehindOneGate: evicting one dirty victim
// writes back the shard's other dirty unpinned frames too, behind a
// single flush-gate call.
func TestEvictionWritebackBatchesBehindOneGate(t *testing.T) {
	st := storage.NewMemStore(128)
	ids := seedPages(t, st, 7)
	p := NewPool(st, 6)
	var gateCalls atomic.Int64
	p.SetFlushGate(func() error { gateCalls.Add(1); return nil })

	for i := 0; i < 6; i++ {
		b, err := p.Fetch(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		b[2] = byte(0xC0 + i)
		if err := p.Unpin(ids[i], true); err != nil {
			t.Fatal(err)
		}
	}
	// Miss: the sweep picks a dirty victim, and the write-back batch
	// collects every dirty unpinned frame of the shard.
	if _, err := p.Fetch(ids[6]); err != nil {
		t.Fatal(err)
	}
	p.Unpin(ids[6], false)
	if got := gateCalls.Load(); got != 1 {
		t.Fatalf("flush gate ran %d times for one eviction batch, want 1", got)
	}
	if s := p.Stats(); s.Flushes != 6 {
		t.Fatalf("flushes = %d, want 6 (batched write-back)", s.Flushes)
	}
	if w := st.Stats().Writes; w != 6 {
		t.Fatalf("store writes = %d, want 6", w)
	}
}

// TestContainsExcludesLoadingAndFailed: a page whose physical read is
// still in flight, or whose read just failed, is not resident — the
// Get-A-successor probe must not treat an unreadable page as a free
// hit.
func TestContainsExcludesLoadingAndFailed(t *testing.T) {
	inner := storage.NewMemStore(128)
	bs := newBlockingStore(inner)
	ids := seedPages(t, inner, 2)
	p := NewPool(bs, 4)

	bs.blockReads.Store(true)
	fetchDone := make(chan error, 1)
	go func() {
		_, err := p.Fetch(ids[0])
		if err == nil {
			err = p.Unpin(ids[0], false)
		}
		fetchDone <- err
	}()
	select {
	case <-bs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("fetch never reached the store")
	}
	if p.Contains(ids[0]) {
		t.Fatal("Contains reported an in-flight read as resident")
	}
	bs.blockReads.Store(false)
	close(bs.release)
	if err := <-fetchDone; err != nil {
		t.Fatal(err)
	}
	if !p.Contains(ids[0]) {
		t.Fatal("Contains false negative after the read settled")
	}

	// Fault injection: a failed read must leave the page non-resident.
	fs := storage.NewFaultStore(storage.NewMemStore(128), 1)
	fid, err := fs.Inner().Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAfter(storage.FaultRead, 0)
	pf := NewPool(fs, 4)
	if _, err := pf.Fetch(fid); err == nil {
		t.Fatal("fetch through injected read fault succeeded")
	}
	if pf.Contains(fid) {
		t.Fatal("Contains reported a failed read as resident")
	}
	fs.Clear()
	if _, err := pf.Fetch(fid); err != nil {
		t.Fatal(err)
	}
	pf.Unpin(fid, false)
	if !pf.Contains(fid) {
		t.Fatal("page not resident after a successful retry")
	}
}

// TestStatsAccounting pins the counter fixes: waiters coalesced onto a
// failed read count as neither hits nor misses, and overflow-frame
// shrink counts the pages it unpublishes as evictions.
func TestStatsAccounting(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"waiters on failed read are not hits", func(t *testing.T) {
			inner := storage.NewMemStore(128)
			fs := storage.NewFaultStore(inner, 1)
			bs := newBlockingStore(fs) // block first, then fail in fs
			id, err := inner.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			fs.FailAfter(storage.FaultRead, 0)
			p := NewPool(bs, 4)

			// One loader blocks inside the (failing) read...
			bs.blockReads.Store(true)
			errs := make(chan error, 8)
			go func() {
				_, err := p.Fetch(id)
				errs <- err
			}()
			select {
			case <-bs.entered:
			case <-time.After(5 * time.Second):
				t.Fatal("loader never reached the store")
			}
			// ...and 7 waiters coalesce onto it.
			var wg sync.WaitGroup
			for i := 0; i < 7; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, err := p.Fetch(id)
					errs <- err
				}()
			}
			// Let the waiters reach the in-flight read before releasing
			// it: they all must observe the same failure.
			deadline := time.Now().Add(5 * time.Second)
			for p.Stats().Fetches < 8 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			bs.blockReads.Store(false)
			close(bs.release)
			wg.Wait()
			for i := 0; i < 8; i++ {
				if err := <-errs; err == nil {
					t.Fatal("a fetch of the unreadable page succeeded")
				}
			}
			s := p.Stats()
			if s.Fetches != 8 || s.Misses != 1 || s.Hits != 0 {
				t.Fatalf("stats = %+v, want fetches=8 misses=1 hits=0", s)
			}
			if p.Contains(id) {
				t.Fatal("unreadable page left resident")
			}
		}},
		{"overflow shrink counts evictions", func(t *testing.T) {
			st := storage.NewMemStore(128)
			ids := seedPages(t, st, 3)
			p := NewPool(st, 2)
			p.SetNoSteal(true)
			// Dirty three pages in a two-frame pool: the third fetch
			// must grow an overflow frame instead of stealing.
			for _, id := range ids {
				b, err := p.Fetch(id)
				if err != nil {
					t.Fatal(err)
				}
				b[1] = 0x11
				if err := p.Unpin(id, true); err != nil {
					t.Fatal(err)
				}
			}
			if s := p.Stats(); s.Evictions != 0 {
				t.Fatalf("no-steal growth evicted: %+v", s)
			}
			// FlushAll cleans the frames and shrinks the pool back to
			// capacity, unpublishing the overflow frame's page — that
			// is an eviction: its next fetch is a physical read.
			if err := p.FlushAll(); err != nil {
				t.Fatal(err)
			}
			s := p.Stats()
			if s.Evictions != 1 {
				t.Fatalf("evictions = %d after overflow shrink, want 1", s.Evictions)
			}
			resident := 0
			for _, id := range ids {
				if p.Contains(id) {
					resident++
				}
			}
			if resident != 2 {
				t.Fatalf("%d pages resident after shrink, want 2", resident)
			}
		}},
		{"successful waiters are hits", func(t *testing.T) {
			st := storage.NewMemStore(128)
			st.SetReadLatency(2 * time.Millisecond)
			ids := seedPages(t, st, 1)
			p := NewPool(st, 4)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := p.Fetch(ids[0]); err == nil {
						p.Unpin(ids[0], false)
					}
				}()
			}
			wg.Wait()
			s := p.Stats()
			if s.Fetches != 8 || s.Misses != 1 || s.Hits != 7 {
				t.Fatalf("stats = %+v, want fetches=8 misses=1 hits=7", s)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.run(t) })
	}
}

// TestNewPoolShardsShape checks capacity splitting and clamping.
func TestNewPoolShardsShape(t *testing.T) {
	st := storage.NewMemStore(128)
	p := NewPoolShards(st, 10, 4)
	if p.Shards() != 4 || p.Capacity() != 10 {
		t.Fatalf("shards=%d capacity=%d, want 4 and 10", p.Shards(), p.Capacity())
	}
	total := 0
	for _, sh := range p.shards {
		if sh.capacity < 2 || sh.capacity > 3 {
			t.Fatalf("uneven shard capacity %d", sh.capacity)
		}
		total += sh.capacity
	}
	if total != 10 {
		t.Fatalf("shard capacities sum to %d, want 10", total)
	}
	// More shards than frames: clamped so each shard owns a frame.
	if p := NewPoolShards(st, 3, 16); p.Shards() != 3 {
		t.Fatalf("shards = %d, want clamp to 3", p.Shards())
	}
	if n := AutoShards(1024); n < 1 {
		t.Fatalf("AutoShards = %d", n)
	}
	if n := AutoShards(8); n != 1 {
		t.Fatalf("AutoShards(8) = %d, want 1", n)
	}
}

// TestShardedPoolConcurrent is the race-enabled mixed workload over a
// sharded pool: parallel readers (hits, misses, coalesced waits,
// evictions) on one key range, one mutator dirtying, discarding and
// checkpointing a disjoint range under no-steal with a flush gate, and
// a prober hammering Contains. Run with -race.
func TestShardedPoolConcurrent(t *testing.T) {
	st := storage.NewMemStore(64)
	st.SetReadLatency(20 * time.Microsecond)
	readIDs := seedPages(t, st, 40)
	writeIDs := make([]storage.PageID, 10)
	for i := range writeIDs {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WritePage(id, make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		writeIDs[i] = id
	}
	p := NewPoolShards(st, 24, 8)
	p.SetNoSteal(true)
	var gateCalls atomic.Int64
	p.SetFlushGate(func() error { gateCalls.Add(1); return nil })

	var workers, probers sync.WaitGroup
	errCh := make(chan error, 16)
	stop := make(chan struct{})

	for w := 0; w < 6; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < 400; op++ {
				i := rng.Intn(len(readIDs))
				b, err := p.Fetch(readIDs[i])
				if err != nil {
					errCh <- err
					return
				}
				if b[0] != byte(i+1) {
					errCh <- fmt.Errorf("page %d holds image of page %d", i, int(b[0])-1)
					p.Unpin(readIDs[i], false)
					return
				}
				if err := p.Unpin(readIDs[i], false); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// The single mutator: dirties its own pages, occasionally discards
	// one or checkpoints the pool. It is the only goroutine writing
	// frame bytes, matching the access-method exclusive-lock contract.
	workers.Add(1)
	go func() {
		defer workers.Done()
		rng := rand.New(rand.NewSource(99))
		shadow := make(map[storage.PageID]byte)
		for op := 0; op < 300; op++ {
			id := writeIDs[rng.Intn(len(writeIDs))]
			b, err := p.Fetch(id)
			if err != nil {
				errCh <- err
				return
			}
			if b[3] != shadow[id] {
				errCh <- fmt.Errorf("mutator page %d content %d, want %d", id, b[3], shadow[id])
				p.Unpin(id, true)
				return
			}
			shadow[id]++
			b[3] = shadow[id]
			if err := p.Unpin(id, true); err != nil {
				errCh <- err
				return
			}
			switch {
			case op%67 == 13:
				// Flush-then-discard: the store keeps the shadow value,
				// so the next fetch re-reads it unchanged.
				did := writeIDs[rng.Intn(len(writeIDs))]
				if err := p.Flush(did); err != nil {
					errCh <- err
					return
				}
				p.Discard(did)
			case op%41 == 7:
				if err := p.FlushAll(); err != nil {
					errCh <- err
					return
				}
			}
		}
		if err := p.FlushAll(); err != nil {
			errCh <- err
		}
	}()

	// Contains prober: must never block and never perturb the counters.
	probers.Add(1)
	go func() {
		defer probers.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.Contains(readIDs[rng.Intn(len(readIDs))])
		}
	}()

	workers.Wait()
	close(stop)
	probers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Fetches != s.Hits+s.Misses {
		t.Fatalf("accounting drifted without failures: %+v", s)
	}
	if gateCalls.Load() == 0 {
		t.Fatal("flush gate never ran despite dirty checkpoints")
	}
	// Durability: every surviving dirty page must round-trip.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.DirtyCount(); got != 0 {
		t.Fatalf("dirty pages after FlushAll: %d", got)
	}
	// The pool shrank back to capacity after checkpoints.
	for _, sh := range p.shards {
		if len(sh.frames) > sh.capacity {
			t.Fatalf("shard kept %d overflow frames after FlushAll", len(sh.frames)-sh.capacity)
		}
	}
}
