package buffer

import (
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// This file is the pool's MVCC page-version layer. A writer brackets a
// mutation batch with BeginVersionBatch/PublishVersions: the first time
// the batch touches a page, SaveVersion copies the page's committed
// bytes into a version chain entry tagged "pending"; PublishVersions
// stamps every pending entry with the batch's commit LSN and advances
// the pool's committed LSN. A reader pins the committed LSN with
// AcquireSnapshot and resolves every page through ReadAt, which walks
// the chain for the entry that was live at that LSN — so readers never
// observe a writer's in-progress bytes and never block on writer I/O.
//
// Chain semantics: an entry's supersededAt is the commit LSN of the
// batch that OVERWROTE its bytes (pendingVersionLSN while that batch is
// still uncommitted). The entry's bytes are therefore valid for every
// snapshot LSN in [previous supersededAt, supersededAt); the live frame
// bytes are valid for every LSN at or past the newest entry's
// supersededAt. GC drops entries whose supersededAt is at or below the
// version floor — the oldest pinned snapshot LSN — because no pinned
// reader can need them.

// pendingVersionLSN tags a chain entry whose superseding batch has not
// committed yet; it compares above every real LSN.
const pendingVersionLSN = ^uint64(0)

// pageVersion is one entry of a page's version chain, newest first.
type pageVersion struct {
	supersededAt uint64 // commit LSN of the batch that replaced these bytes
	data         []byte // immutable committed page image
	older        *pageVersion
}

// findVersion returns the chain entry live at snapshot lsn: the entry
// with the smallest supersededAt still above lsn. Nil means the live
// frame bytes are the right image.
func findVersion(head *pageVersion, lsn uint64) *pageVersion {
	var best *pageVersion
	for v := head; v != nil && v.supersededAt > lsn; v = v.older {
		best = v
	}
	return best
}

// BeginVersionBatch opens a version batch: until PublishVersions (or
// AbortVersionBatch), SaveVersion captures the pre-batch image of every
// page the batch touches. Batches are single-writer — the caller
// serializes them (the facade holds its write lock across a batch).
func (p *Pool) BeginVersionBatch() {
	p.verMu.Lock()
	p.verBatch = true
	p.verMu.Unlock()
}

// VersionBatchActive reports whether a version batch is open.
func (p *Pool) VersionBatchActive() bool {
	p.verMu.RLock()
	defer p.verMu.RUnlock()
	return p.verBatch
}

// SaveVersion records the committed image of page id before the open
// batch mutates it. data must be the page's current (committed) bytes;
// callers invoke it between fetching a page and first writing to it.
// No-op outside a batch, and on pages the batch already saved.
func (p *Pool) SaveVersion(id storage.PageID, data []byte) {
	p.verMu.Lock()
	if !p.verBatch {
		p.verMu.Unlock()
		return
	}
	head := p.versions[id]
	if head != nil && head.supersededAt == pendingVersionLSN {
		p.verMu.Unlock()
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.versions[id] = &pageVersion{supersededAt: pendingVersionLSN, data: cp, older: head}
	p.pendingVers = append(p.pendingVers, id)
	p.verEntries.Add(1)
	p.verBytes.Add(int64(len(cp)))
	p.verMu.Unlock()
}

// PublishVersions commits the open batch: pending entries are stamped
// with commitLSN, then the pool's committed LSN advances, then versions
// below the new floor are collected. Pass 0 to auto-assign the next LSN
// (stores without a WAL). Returns the LSN used. The stamp happens
// before the committed LSN moves, so a reader that pins the old LSN
// always finds the chain entry covering it.
func (p *Pool) PublishVersions(commitLSN uint64) uint64 {
	if commitLSN == 0 {
		commitLSN = p.committed.Load() + 1
	}
	p.verMu.Lock()
	for _, id := range p.pendingVers {
		if v := p.versions[id]; v != nil && v.supersededAt == pendingVersionLSN {
			v.supersededAt = commitLSN
		}
	}
	p.pendingVers = p.pendingVers[:0]
	p.verBatch = false
	p.verMu.Unlock()

	p.snapMu.Lock()
	p.committed.Store(commitLSN)
	floor := p.floorLocked()
	p.snapMu.Unlock()
	p.gcVersions(floor)
	return commitLSN
}

// AbortVersionBatch closes the open batch without committing. The
// pending entries stay in place, permanently tagged pending: in-flight
// snapshot readers keep resolving the pages the aborted batch half-
// mutated to their committed images. The store above poisons itself
// after an abort, so the entries are reclaimed when it reopens.
func (p *Pool) AbortVersionBatch() {
	p.verMu.Lock()
	p.pendingVers = p.pendingVers[:0]
	p.verBatch = false
	p.verMu.Unlock()
}

// AcquireSnapshot pins the current committed LSN and returns it. The
// read of the committed LSN and the refcount increment are atomic with
// respect to PublishVersions' floor computation, so the pinned LSN can
// never be garbage-collected out from under the caller. Every
// AcquireSnapshot must be paired with one ReleaseSnapshot.
func (p *Pool) AcquireSnapshot() uint64 {
	p.snapMu.Lock()
	lsn := p.committed.Load()
	p.snapRefs[lsn]++
	p.snapMu.Unlock()
	return lsn
}

// ReleaseSnapshot unpins a snapshot LSN, collecting versions that fell
// below the floor if the floor advanced.
func (p *Pool) ReleaseSnapshot(lsn uint64) {
	p.snapMu.Lock()
	switch n := p.snapRefs[lsn]; {
	case n <= 1:
		delete(p.snapRefs, lsn)
	default:
		p.snapRefs[lsn] = n - 1
	}
	floor := p.floorLocked()
	p.snapMu.Unlock()
	p.gcVersions(floor)
}

// CommittedLSN returns the LSN of the newest published batch.
func (p *Pool) CommittedLSN() uint64 { return p.committed.Load() }

// VersionFloor returns the oldest LSN any pinned snapshot may read
// (the committed LSN when nothing is pinned).
func (p *Pool) VersionFloor() uint64 {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	return p.floorLocked()
}

// ActiveSnapshots returns the number of pinned snapshots.
func (p *Pool) ActiveSnapshots() int {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	n := 0
	for _, c := range p.snapRefs {
		n += c
	}
	return n
}

// VersionStats reports the size of the version store: retained chain
// entries and their page bytes.
func (p *Pool) VersionStats() (entries int64, bytes int64) {
	return p.verEntries.Load(), p.verBytes.Load()
}

// floorLocked computes the version floor under snapMu.
func (p *Pool) floorLocked() uint64 {
	floor := p.committed.Load()
	for l := range p.snapRefs {
		if l < floor {
			floor = l
		}
	}
	return floor
}

// gcVersions drops every chain entry whose supersededAt is at or below
// floor. Skipped when the floor has not advanced since the last
// collection, so snapshot releases stay cheap.
func (p *Pool) gcVersions(floor uint64) {
	p.verMu.Lock()
	if floor <= p.gcFloor {
		p.verMu.Unlock()
		return
	}
	p.gcFloor = floor
	for id, head := range p.versions {
		// Entries are newest-first by supersededAt (pending on top): cut
		// the chain at the first entry no pinned reader can need.
		var prev *pageVersion
		v := head
		for v != nil && (v.supersededAt == pendingVersionLSN || v.supersededAt > floor) {
			prev, v = v, v.older
		}
		if v == nil {
			continue
		}
		for d := v; d != nil; d = d.older {
			p.verEntries.Add(-1)
			p.verBytes.Add(-int64(len(d.data)))
		}
		if prev == nil {
			delete(p.versions, id)
		} else {
			prev.older = nil
		}
	}
	p.verMu.Unlock()
}

// DropVersions clears the whole version store and resets the committed
// LSN. Callers must have drained every snapshot first (Build and
// recovery run under the facade's exclusive structural lock).
func (p *Pool) DropVersions() {
	p.verMu.Lock()
	p.versions = make(map[storage.PageID]*pageVersion)
	p.pendingVers = nil
	p.verBatch = false
	p.verEntries.Store(0)
	p.verBytes.Store(0)
	p.gcFloor = 0
	p.verMu.Unlock()
	p.snapMu.Lock()
	p.committed.Store(0)
	p.snapMu.Unlock()
}

// ReadAt returns the image of page id as of snapshot lsn, plus a
// release function the caller must invoke once done with the bytes
// (before which the slice must not be retained). Resolution order:
//
//  1. A chain entry covering lsn wins — no frame pin, no I/O; the
//     bytes are an immutable committed image. This is also what makes
//     reading freed-and-recycled pages safe: the free saved the last
//     committed image, so old snapshots never touch the store.
//  2. Otherwise the live frame holds the right image. It is fetched
//     through the normal pin path (I/O happens without any version
//     lock held) and copied out under the chain read-lock: a writer
//     must insert a pending chain entry — under the write lock —
//     before its first mutation of a page, so "no chain entry" means
//     "no in-progress mutation of these bytes".
func (p *Pool) ReadAt(id storage.PageID, lsn uint64, at *metrics.ActiveTrace) ([]byte, func(), error) {
	p.verMu.RLock()
	if v := findVersion(p.versions[id], lsn); v != nil {
		p.verMu.RUnlock()
		return v.data, func() {}, nil
	}
	p.verMu.RUnlock()

	data, err := p.FetchTraced(id, at)
	if err != nil {
		return nil, nil, err
	}
	// Re-check: the page may have gained a pending entry while the
	// fetch did I/O, in which case the frame may already hold
	// uncommitted bytes.
	p.verMu.RLock()
	if v := findVersion(p.versions[id], lsn); v != nil {
		p.verMu.RUnlock()
		p.Unpin(id, false)
		return v.data, func() {}, nil
	}
	buf := p.snapBufs.Get().([]byte)
	copy(buf, data)
	p.verMu.RUnlock()
	p.Unpin(id, false)
	return buf, func() { p.snapBufs.Put(buf) }, nil
}
