package buffer

import (
	"fmt"
	"sync"

	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// writebackBatch bounds how many dirty unpinned frames one eviction
// writes back behind a single flush-gate call. Batching amortizes the
// gate (a WAL fsync when attached) and leaves the shard with clean
// victims for the next few evictions.
const writebackBatch = 8

// shard is one independently latched slice of the pool: its own frame
// table, clock hand and counters. Pages are assigned to shards by
// Pool.shardOf and never move.
type shard struct {
	pool *Pool
	mu   sync.RWMutex
	// frames holds pointers so overflow frames can be appended under
	// no-steal without invalidating frame references held across latch
	// releases.
	frames   []*frame
	capacity int // configured frame count; len(frames) may exceed it under no-steal
	table    map[storage.PageID]int
	hand     int // clock-sweep position
	closed   bool
	stats    poolCounters
}

func newShard(p *Pool, capacity int) *shard {
	sh := &shard{
		pool:     p,
		capacity: capacity,
		frames:   make([]*frame, capacity),
		table:    make(map[storage.PageID]int, capacity),
	}
	for i := range sh.frames {
		sh.frames[i] = &frame{id: storage.InvalidPageID}
	}
	return sh
}

// pinResident pins the table-resident frame fi and returns its image,
// waiting out an in-flight read if there is one. Called with the shard
// latch held (shared or exclusive); releases it via unlock. The hit is
// counted only once the image is known good: a waiter whose loader
// failed got no page and issued no read, so it counts as neither hit
// nor miss (see Stats).
func (sh *shard) pinResident(fi int, unlock func()) ([]byte, error) {
	f := sh.frames[fi]
	f.pins.Add(1)
	f.ref.Store(true) // second chance for the sweep
	ch := f.loading
	data := f.data
	unlock()
	sh.stats.fetches.Add(1)
	if ch != nil {
		<-ch
		// loadErr was written before the channel close and the frame
		// cannot be recycled while our pin is held, so this read is
		// ordered. On failure the loader already unpublished the page;
		// we only drop our pin.
		if err := f.loadErr; err != nil {
			f.pins.Add(-1)
			return nil, err
		}
	}
	sh.stats.hits.Add(1)
	if f.prefetched.Load() && f.prefetched.Swap(false) {
		sh.pool.prefetchUseful()
	}
	return data, nil
}

// fetchMiss claims a frame for the page and performs the physical read
// with the latch released, so concurrent misses overlap their I/O.
func (sh *shard) fetchMiss(id storage.PageID, at *metrics.ActiveTrace) ([]byte, bool, error) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	// Another goroutine may have faulted the page in (or begun to)
	// while we upgraded the latch.
	if fi, ok := sh.table[id]; ok {
		b, err := sh.pinResident(fi, sh.mu.Unlock)
		return b, false, err
	}
	sh.stats.fetches.Add(1)
	sh.stats.misses.Add(1)
	fi, err := sh.frameForNewPage()
	if err != nil {
		sh.mu.Unlock()
		return nil, false, err
	}
	// frameForNewPage may have released the latch to write back a dirty
	// victim; a concurrent Close can have completed its flush in that
	// window, and the page can have been faulted in meanwhile (the
	// claimed frame then just stays free).
	if sh.closed {
		sh.stats.fetches.Add(-1)
		sh.stats.misses.Add(-1)
		sh.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	if fj, ok := sh.table[id]; ok {
		sh.stats.fetches.Add(-1)
		sh.stats.misses.Add(-1)
		b, err := sh.pinResident(fj, sh.mu.Unlock)
		return b, false, err
	}
	f := sh.frames[fi]
	if f.data == nil {
		f.data = make([]byte, sh.pool.store.PageSize())
	}
	f.id = id
	f.dirty.Store(false)
	f.pins.Store(1)
	f.ref.Store(false) // scan resistance: first reference earns no second chance
	f.prefetched.Store(false)
	ch := make(chan struct{})
	f.loading = ch
	f.loadErr = nil
	sh.table[id] = fi
	sh.mu.Unlock()

	// Connectivity-aware prefetch: a demand miss predicts its PAG
	// neighbors are next; queue them while we read this page.
	sh.pool.suggestPrefetch(id)

	tok := at.BeginSpan("storage.read")
	readErr := sh.pool.store.ReadPage(id, f.data)
	tok.End()

	sh.mu.Lock()
	var result error
	switch {
	case readErr != nil:
		result = fmt.Errorf("buffer: fetch page %d: %w", id, readErr)
	case f.doomed:
		// The page was freed (Discard) while our read was in flight;
		// the bytes are dead and must not be published.
		result = fmt.Errorf("buffer: page %d freed during fetch", id)
	}
	if result != nil {
		f.loadErr = result
		sh.unpublishLoadedLocked(fi, id)
		f.pins.Add(-1) // waiters drop their own pins on wake-up
	}
	f.doomed = false
	f.loading = nil
	close(ch)
	sh.mu.Unlock()
	if result != nil {
		return nil, true, result
	}
	return f.data, true, nil
}

// unpublishLoadedLocked retracts frame fi after a failed or doomed
// load. The table entry is removed only if it still points at this
// frame: a doomed page's ID may have been re-allocated and published
// to another frame meanwhile (FetchNew), and that live mapping must
// survive. Caller holds the exclusive latch.
func (sh *shard) unpublishLoadedLocked(fi int, id storage.PageID) {
	if fj, ok := sh.table[id]; ok && fj == fi {
		delete(sh.table, id)
	}
	f := sh.frames[fi]
	f.id = storage.InvalidPageID
	f.dirty.Store(false)
	f.prefetched.Store(false)
}

// sweepLocked runs the clock hand to the next eviction candidate:
// unpinned, not loading, not mid-writeback, and out of second chances.
// It reports the frame index and whether the candidate is dirty; a free
// frame is returned immediately. noSteal skips dirty frames entirely.
// Caller holds the exclusive latch. Two full revolutions suffice: the
// first clears reference bits, the second must find a candidate if one
// exists.
func (sh *shard) sweepLocked(noSteal bool) (fi int, dirty, found bool) {
	n := len(sh.frames)
	for scanned := 0; scanned < 2*n; scanned++ {
		i := sh.hand
		sh.hand++
		if sh.hand >= n {
			sh.hand = 0
		}
		f := sh.frames[i]
		if f.pins.Load() != 0 || f.loading != nil || f.flushing {
			continue
		}
		if f.id == storage.InvalidPageID {
			return i, false, true
		}
		if f.ref.Swap(false) {
			continue // second chance consumed
		}
		if f.dirty.Load() {
			if noSteal {
				continue
			}
			return i, true, true
		}
		return i, false, true
	}
	return 0, false, false
}

// evictLocked recycles frame fi, unpublishing its page. Caller holds
// the exclusive latch and has verified the frame is unpinned, loaded
// and clean.
func (sh *shard) evictLocked(fi int) {
	f := sh.frames[fi]
	if f.id != storage.InvalidPageID {
		delete(sh.table, f.id)
		f.id = storage.InvalidPageID
		sh.stats.evictions.Add(1)
	}
	f.dirty.Store(false)
	f.ref.Store(false)
	f.prefetched.Store(false)
}

// frameForNewPage returns a free frame index, evicting a victim when
// necessary. A dirty victim is written back with the latch released —
// batched with the shard's other dirty unpinned frames behind one
// flush-gate call — so the WAL fsync and the device write never block
// concurrent hits on this shard. Caller holds the exclusive latch; it
// is held again on return, but may have been released in between, so
// callers must revalidate any table lookups.
func (sh *shard) frameForNewPage() (int, error) {
	for {
		noSteal := sh.pool.noSteal.Load()
		fi, dirty, found := sh.sweepLocked(noSteal)
		if !found {
			if noSteal {
				// Every unpinned frame is dirty and dirty frames must
				// not be stolen: grow an overflow frame. The next
				// FlushAll (checkpoint) shrinks the pool back to
				// capacity.
				sh.frames = append(sh.frames, &frame{id: storage.InvalidPageID})
				return len(sh.frames) - 1, nil
			}
			return -1, ErrAllPinned
		}
		if !dirty {
			sh.evictLocked(fi)
			return fi, nil
		}
		f := sh.frames[fi]
		batch := sh.collectWritebackLocked(fi)
		sh.mu.Unlock()
		written, err := sh.pool.writeBack(batch, &sh.stats)
		sh.mu.Lock()
		sh.finishWritebackLocked(batch, written)
		if err != nil {
			return -1, err
		}
		if f.pins.Load() == 0 && f.loading == nil && !f.dirty.Load() &&
			f.id != storage.InvalidPageID {
			sh.evictLocked(fi)
			return fi, nil
		}
		// The victim was re-pinned (or re-dirtied, or discarded) while
		// we wrote it back; sweep again.
	}
}

// wbEntry is one page of an out-of-latch writeback batch: the frame and
// a latch-held snapshot of its image, so the write proceeds latch-free
// even if a concurrent fetch pins and mutates the frame meanwhile (the
// frame is then dirty again and simply flushed later).
type wbEntry struct {
	f   *frame
	id  storage.PageID
	img []byte
}

// collectWritebackLocked snapshots frame first plus up to
// writebackBatch-1 more dirty, unpinned, settled frames of the shard
// for an out-of-latch writeback. Each collected frame has its dirty bit
// cleared and its flushing flag set, so the sweep skips it and a
// re-dirty during the write is preserved. Caller holds the exclusive
// latch.
func (sh *shard) collectWritebackLocked(first int) []wbEntry {
	batch := make([]wbEntry, 0, writebackBatch)
	add := func(f *frame) {
		img := make([]byte, len(f.data))
		copy(img, f.data)
		f.dirty.Store(false)
		f.flushing = true
		batch = append(batch, wbEntry{f: f, id: f.id, img: img})
	}
	add(sh.frames[first])
	for _, f := range sh.frames {
		if len(batch) >= writebackBatch {
			break
		}
		if f == sh.frames[first] || f.id == storage.InvalidPageID {
			continue
		}
		if f.pins.Load() != 0 || f.loading != nil || f.flushing || !f.dirty.Load() {
			continue
		}
		add(f)
	}
	return batch
}

// writeBack writes a snapshot batch to the store behind one flush-gate
// call, without holding any latch. It returns how many pages were
// durably written (for counter and dirty-bit restoration) alongside the
// first error.
func (p *Pool) writeBack(batch []wbEntry, c *poolCounters) (int, error) {
	if gate := p.flushGate(); gate != nil {
		// WAL-before-data: the log must be durable past these pages'
		// last mutations before their images may reach the store.
		if err := gate(); err != nil {
			return 0, fmt.Errorf("buffer: flush gate for page %d: %w", batch[0].id, err)
		}
	}
	for i, e := range batch {
		if err := p.store.WritePage(e.id, e.img); err != nil {
			return i, fmt.Errorf("buffer: flush page %d: %w", e.id, err)
		}
		c.flushes.Add(1)
	}
	return len(batch), nil
}

// finishWritebackLocked clears the flushing flags of a completed batch
// and restores the dirty bit on every page that did not reach the
// store. Caller holds the exclusive latch.
func (sh *shard) finishWritebackLocked(batch []wbEntry, written int) {
	for i, e := range batch {
		e.f.flushing = false
		if i >= written {
			e.f.dirty.Store(true)
		}
	}
}

// flushFrameLocked writes frame fi back if live and dirty. Caller holds
// the exclusive latch; the write happens under it (used by the explicit
// Flush/FlushAll paths, which run from exclusive contexts — eviction
// uses the out-of-latch writeback instead).
func (sh *shard) flushFrameLocked(fi int) error {
	f := sh.frames[fi]
	if f.id == storage.InvalidPageID || !f.dirty.Load() {
		return nil
	}
	if gate := sh.pool.flushGate(); gate != nil {
		if err := gate(); err != nil {
			return fmt.Errorf("buffer: flush gate for page %d: %w", f.id, err)
		}
	}
	if err := sh.pool.store.WritePage(f.id, f.data); err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", f.id, err)
	}
	f.dirty.Store(false)
	sh.stats.flushes.Add(1)
	return nil
}

// flushShardLocked writes every dirty frame of the shard (pinned ones
// too) behind a single flush-gate call. Caller holds the exclusive
// latch.
func (sh *shard) flushShardLocked() error {
	gated := false
	for _, f := range sh.frames {
		if f.id == storage.InvalidPageID || !f.dirty.Load() {
			continue
		}
		if !gated {
			if gate := sh.pool.flushGate(); gate != nil {
				if err := gate(); err != nil {
					return fmt.Errorf("buffer: flush gate for page %d: %w", f.id, err)
				}
			}
			gated = true
		}
		if err := sh.pool.store.WritePage(f.id, f.data); err != nil {
			return fmt.Errorf("buffer: flush page %d: %w", f.id, err)
		}
		f.dirty.Store(false)
		sh.stats.flushes.Add(1)
	}
	return nil
}

// shrinkLocked drops overflow frames grown under no-steal, from the
// tail, as long as they are clean, unpinned and settled. Dropping a
// frame that still holds a page unpublishes it, which counts as an
// eviction — the page must be re-read on its next fetch. Caller holds
// the exclusive latch.
func (sh *shard) shrinkLocked() {
	for len(sh.frames) > sh.capacity {
		f := sh.frames[len(sh.frames)-1]
		if f.pins.Load() != 0 || f.loading != nil || f.flushing || f.dirty.Load() {
			break
		}
		if f.id != storage.InvalidPageID {
			delete(sh.table, f.id)
			sh.stats.evictions.Add(1)
		}
		sh.frames = sh.frames[:len(sh.frames)-1]
	}
	if sh.hand >= len(sh.frames) {
		sh.hand = 0
	}
}
