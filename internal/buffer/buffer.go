// Package buffer implements a sharded, scan-resistant buffer pool over
// a storage.Store.
//
// The paper's route-evaluation experiments assume "one buffer with the
// size of one data page"; the operation-cost experiments assume index
// pages are memory resident and data pages are fetched on demand. Pool
// reproduces both regimes: physical I/O is whatever reaches the
// underlying Store, and the pool reports hits and misses so experiments
// can report "number of data pages accessed" exactly as the paper does.
//
// For the paper's single-buffer experiments a one-shard pool behaves
// like the classic pool (NewPool builds one). For serving, NewPoolShards
// hashes pages across independently latched shards so that hits, misses
// and evictions on different shards never contend, replacement is
// clock-sweep second chance (O(1) amortized victim selection, scan
// resistant: a page fetched once and never again is first in line),
// and dirty eviction victims are written back outside the shard latch
// so a slow store write or WAL fsync cannot stall concurrent hits.
package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// Common buffer errors.
var (
	ErrAllPinned  = errors.New("buffer: all frames pinned")
	ErrNotPinned  = errors.New("buffer: page not pinned")
	ErrPoolClosed = errors.New("buffer: pool is closed")
)

// Stats describes buffer pool traffic. Under read failures Fetches can
// exceed Hits+Misses: a request that waited on another goroutine's
// failed read counts as a fetch but neither as a hit (it got no page)
// nor as a miss (it issued no physical read).
type Stats struct {
	Fetches   int64 // logical page requests
	Hits      int64 // requests satisfied from the pool
	Misses    int64 // requests requiring a physical read
	Evictions int64 // frames recycled
	Flushes   int64 // dirty pages written back
}

// HitRate returns Hits/Fetches. The boolean distinguishes a truly idle
// pool (false: no fetches yet, the rate is undefined) from a pool that
// has fetched and missed every time (true with rate 0).
func (s Stats) HitRate() (float64, bool) {
	if s.Fetches == 0 {
		return 0, false
	}
	return float64(s.Hits) / float64(s.Fetches), true
}

// String renders the counters on one line, in the same key=value style
// as storage.Stats.String. An idle pool prints hitrate=idle.
func (s Stats) String() string {
	rate := "idle"
	if hr, ok := s.HitRate(); ok {
		rate = fmt.Sprintf("%.3f", hr)
	}
	return fmt.Sprintf("fetches=%d hits=%d misses=%d evictions=%d flushes=%d hitrate=%s",
		s.Fetches, s.Hits, s.Misses, s.Evictions, s.Flushes, rate)
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Fetches:   s.Fetches - earlier.Fetches,
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
		Flushes:   s.Flushes - earlier.Flushes,
	}
}

// add accumulates another snapshot (used to sum per-shard counters).
func (s Stats) add(o Stats) Stats {
	return Stats{
		Fetches:   s.Fetches + o.Fetches,
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
		Flushes:   s.Flushes + o.Flushes,
	}
}

// poolCounters is the mutable form of Stats: atomics, so Stats() can
// snapshot without tearing while parallel readers drive the pool.
type poolCounters struct {
	fetches, hits, misses, evictions, flushes atomic.Int64
}

func (c *poolCounters) snapshot() Stats {
	return Stats{
		Fetches:   c.fetches.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Flushes:   c.flushes.Load(),
	}
}

func (c *poolCounters) reset() {
	c.fetches.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.flushes.Store(0)
}

// frame is one buffered page. pins, ref and dirty are atomics so that
// hits — the hot path — can pin and touch a frame while holding only
// the shared shard latch. loading is non-nil while the frame's physical
// read is still in flight; it is closed (under the exclusive latch)
// when the read completes, and loadErr is valid from then on. flushing
// is guarded by the shard latch: it marks a frame whose dirty image is
// being written back with the latch released, so the sweep must not
// recycle it meanwhile.
type frame struct {
	id         storage.PageID
	data       []byte
	dirty      atomic.Bool
	pins       atomic.Int64
	ref        atomic.Bool // clock-sweep second-chance bit: set on hit, cleared by the sweep
	prefetched atomic.Bool // loaded speculatively; first demand hit counts it useful
	flushing   bool        // write-back in flight with the latch released
	// doomed (shard latch) marks a loading frame whose page was freed
	// or re-allocated while its read was in flight: the loader must
	// drop the bytes instead of publishing a dead page.
	doomed  bool
	loading chan struct{}
	loadErr error
}

// Pool is a sharded clock-sweep buffer pool, safe for concurrent use.
// Pages hash to shards; each shard's reader-writer latch guards its
// frame table: hits take it shared (pin count and the reference bit are
// atomics), so parallel readers stream through buffered pages without
// serializing, and misses on different shards do not contend at all. A
// miss takes its shard latch exclusively only long enough to claim a
// victim frame and publish it as loading-in-progress, then releases it
// for the physical read — so concurrent misses overlap their I/O.
// Concurrent requests for a page being read wait on the in-flight read
// instead of issuing their own (only one physical read happens; the
// waiters count as hits when that read succeeds).
//
// Replacement is clock-sweep second chance: a hit sets the frame's
// reference bit, the sweep clears it, and a frame whose bit is already
// clear is the victim. New frames enter with the bit clear, so a scan
// that touches each page once cannot displace the re-referenced working
// set (scan resistance), and victim selection is O(1) amortized instead
// of the previous exact-LRU full scan. A dirty victim's image is
// snapshotted under the latch but written back with the latch released
// (batched with other dirty unpinned frames of the shard, one flush
// gate call per batch), so a slow device write or WAL fsync never
// blocks concurrent hits.
//
// Frame images are protected by the pin protocol: a pinned, loading or
// flushing frame is never recycled, and writers are excluded from
// overlapping readers by the access-method level lock above.
//
// Sizing note for parallel readers: every in-flight Fetch holds a pin,
// so capacity should comfortably exceed the worker count times the
// pages a single operation keeps pinned (Get-A-successor pins two);
// otherwise bursts can exhaust a shard and fail with ErrAllPinned.
type Pool struct {
	store    storage.Store
	shards   []*shard
	capacity int // configured total frame count across shards
	// noSteal forbids evicting dirty frames: a dirty page may only
	// reach the store through an explicit flush (checkpoint), never as
	// a side effect of eviction. Overflow frames absorb the pressure
	// until the next FlushAll shrinks the pool back to capacity.
	noSteal atomic.Bool
	// gate, when set, runs before any dirty page is written to the
	// store — the WAL-before-data hook (it syncs the log).
	gate atomic.Pointer[func() error]
	// adj, when set, maps a page to the PAG-adjacent pages worth
	// prefetching on a demand miss (see SetAdjacency).
	adj atomic.Pointer[func(storage.PageID) []storage.PageID]
	// pf is the optional asynchronous prefetcher (see EnablePrefetch).
	pf atomic.Pointer[prefetcher]
	// inst holds the optional latency instrumentation; an atomic
	// pointer so enabling it never races with in-flight fetches.
	inst atomic.Pointer[PoolInstrumentation]

	// MVCC page-version state (see version.go). verMu guards the
	// version chains and the batch bookkeeping; committed is the LSN of
	// the newest published batch; snapMu guards the snapshot refcounts.
	verMu       sync.RWMutex
	versions    map[storage.PageID]*pageVersion
	pendingVers []storage.PageID
	verBatch    bool
	committed   atomic.Uint64
	snapMu      sync.Mutex
	snapRefs    map[uint64]int
	gcFloor     uint64
	verEntries  atomic.Int64
	verBytes    atomic.Int64
	snapBufs    sync.Pool
}

// PoolInstrumentation carries the optional instrumentation of a pool.
// Nil histograms and counters are skipped.
type PoolInstrumentation struct {
	// HitNanos observes the duration of fetches served from the pool
	// (including waits on another goroutine's in-flight read).
	HitNanos *metrics.Histogram
	// MissNanos observes the duration of fetches that performed a
	// physical read.
	MissNanos *metrics.Histogram
	// Prefetch counters mirror PrefetchStats into a metrics registry.
	PrefetchIssued  *metrics.Counter
	PrefetchLoaded  *metrics.Counter
	PrefetchUseful  *metrics.Counter
	PrefetchDropped *metrics.Counter
	PrefetchErrors  *metrics.Counter
}

// NewPool returns a single-shard pool with capacity frames over store.
// Capacity must be at least 1. One shard reproduces the paper's
// single-buffer page-access counts exactly; use NewPoolShards for
// serving workloads.
func NewPool(store storage.Store, capacity int) *Pool {
	return NewPoolShards(store, capacity, 1)
}

// NewPoolShards returns a pool with capacity frames spread across
// shards page-id-hash shards, each with its own latch, frame table and
// clock hand. shards is clamped to [1, capacity] so every shard owns at
// least one frame.
func NewPoolShards(store storage.Store, capacity, shards int) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: invalid pool capacity %d", capacity))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	p := &Pool{
		store:    store,
		capacity: capacity,
		shards:   make([]*shard, shards),
		versions: make(map[storage.PageID]*pageVersion),
		snapRefs: make(map[uint64]int),
	}
	p.snapBufs.New = func() any { return make([]byte, store.PageSize()) }
	base, extra := capacity/shards, capacity%shards
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		p.shards[i] = newShard(p, c)
	}
	return p
}

// AutoShards picks a shard count for a serving pool of the given
// capacity: the number of usable CPUs, clamped so each shard keeps a
// useful number of frames and bounded to keep per-shard bookkeeping
// cheap.
func AutoShards(capacity int) int {
	n := runtime.GOMAXPROCS(0)
	if max := capacity / 8; n > max {
		n = max
	}
	if n > 64 {
		n = 64
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardOf maps a page to its shard. The multiplicative hash spreads the
// sequential page ids a bulk load produces evenly across shards.
func (p *Pool) shardOf(id storage.PageID) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := uint64(id) * 0x9E3779B97F4A7C15
	return p.shards[(h>>32)%uint64(len(p.shards))]
}

// Capacity returns the configured total number of frames. Under
// no-steal the pool may temporarily hold more (see SetNoSteal).
func (p *Pool) Capacity() int { return p.capacity }

// Shards returns the number of shards.
func (p *Pool) Shards() int { return len(p.shards) }

// SetNoSteal switches the eviction policy: when on, dirty frames are
// never evicted — the pool grows overflow frames instead — so the only
// writes reaching the store are explicit flushes. The WAL recovery
// protocol depends on this: every store write between checkpoints is
// then allocator noise recovery can discard. Call during setup, before
// concurrent use.
func (p *Pool) SetNoSteal(on bool) { p.noSteal.Store(on) }

// SetFlushGate installs a hook that runs before any dirty page is
// written to the store — the WAL-before-data rule (the hook syncs the
// log up to the page's latest mutation). Call during setup, before
// concurrent use.
func (p *Pool) SetFlushGate(gate func() error) { p.gate.Store(&gate) }

// flushGate returns the installed WAL-before-data hook, or nil.
func (p *Pool) flushGate() func() error {
	if g := p.gate.Load(); g != nil {
		return *g
	}
	return nil
}

// SetAdjacency installs the connectivity hint source for prefetching:
// fn maps a page to the pages its records' successors and predecessors
// live on (the page's PAG neighbors), best first. The pool consults it
// on demand misses; fn runs on the fetching goroutine, so it must be
// safe under the same locking regime as Fetch itself. Call during
// setup or from the same exclusive context as mutations.
func (p *Pool) SetAdjacency(fn func(storage.PageID) []storage.PageID) {
	p.adj.Store(&fn)
}

// DirtyPage is a checkpoint copy of one dirty buffered page.
type DirtyPage struct {
	ID   storage.PageID
	Data []byte
}

// DirtySnapshot copies every dirty frame's image. The caller must
// ensure no mutator is concurrently writing frames (the access-method
// exclusive lock above the pool does this during checkpoints).
func (p *Pool) DirtySnapshot() []DirtyPage {
	var out []DirtyPage
	for _, sh := range p.shards {
		sh.mu.Lock()
		for _, f := range sh.frames {
			if f.id == storage.InvalidPageID || !f.dirty.Load() {
				continue
			}
			data := make([]byte, len(f.data))
			copy(data, f.data)
			out = append(out, DirtyPage{ID: f.id, Data: data})
		}
		sh.mu.Unlock()
	}
	return out
}

// DirtyCount returns the number of dirty buffered pages.
func (p *Pool) DirtyCount() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.RLock()
		for _, f := range sh.frames {
			if f.id != storage.InvalidPageID && f.dirty.Load() {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Store returns the underlying page store.
func (p *Pool) Store() storage.Store { return p.store }

// Stats returns a snapshot of the pool counters summed across shards.
// Counters are atomics, so the snapshot is safe while parallel readers
// drive the pool.
func (p *Pool) Stats() Stats {
	var s Stats
	for _, sh := range p.shards {
		s = s.add(sh.stats.snapshot())
	}
	return s
}

// ShardStats returns one counter snapshot per shard, in shard order —
// the balance view the pool-scale experiment reports.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, sh := range p.shards {
		out[i] = sh.stats.snapshot()
	}
	return out
}

// ResetStats zeroes the pool counters (not the store's), including the
// prefetch counters.
func (p *Pool) ResetStats() {
	for _, sh := range p.shards {
		sh.stats.reset()
	}
	if pf := p.pf.Load(); pf != nil {
		pf.resetStats()
	}
}

// Contains reports whether the page is currently buffered and readable,
// without touching recency or counters. A page whose physical read is
// still in flight — or just failed — is not "buffered": reporting it
// resident would make the Get-A-successor probe treat an unreadable
// page as a free hit.
func (p *Pool) Contains(id storage.PageID) bool {
	sh := p.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fi, ok := sh.table[id]
	return ok && sh.frames[fi].loading == nil
}

// Instrument attaches latency instrumentation: subsequent fetches
// observe their durations into the hit or miss histogram. Call it
// during setup; it is safe against concurrent fetches.
func (p *Pool) Instrument(in PoolInstrumentation) { p.inst.Store(&in) }

// Fetch pins the page and returns its buffer-resident image. The caller
// must Unpin exactly once per Fetch. The returned slice aliases the
// frame and is valid until Unpin.
func (p *Pool) Fetch(id storage.PageID) ([]byte, error) {
	return p.FetchTraced(id, nil)
}

// FetchTraced is Fetch with an optional operation trace: the fetch is
// recorded as a buffer.fetch span and, on a miss, the physical read as
// a storage.read span. A nil trace costs nothing beyond Fetch itself
// unless the pool is instrumented.
func (p *Pool) FetchTraced(id storage.PageID, at *metrics.ActiveTrace) ([]byte, error) {
	in := p.inst.Load()
	if in == nil && at == nil {
		b, _, err := p.fetch(id, nil)
		return b, err
	}
	tok := at.BeginSpan("buffer.fetch")
	start := time.Now()
	b, miss, err := p.fetch(id, at)
	tok.End()
	if in != nil {
		if miss {
			in.MissNanos.ObserveSince(start)
		} else {
			in.HitNanos.ObserveSince(start)
		}
	}
	return b, err
}

// fetch reports, besides the pinned image, whether this call paid for
// the physical read (a miss).
func (p *Pool) fetch(id storage.PageID, at *metrics.ActiveTrace) ([]byte, bool, error) {
	sh := p.shardOf(id)
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return nil, false, ErrPoolClosed
	}
	if fi, ok := sh.table[id]; ok {
		b, err := sh.pinResident(fi, sh.mu.RUnlock)
		return b, false, err
	}
	sh.mu.RUnlock()
	return sh.fetchMiss(id, at)
}

// FetchNew pins a freshly allocated page, returning its ID and a zeroed
// buffer image without a physical read.
func (p *Pool) FetchNew() (storage.PageID, []byte, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return storage.InvalidPageID, nil, ErrPoolClosed
	}
	fi, err := sh.frameForNewPage()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	// frameForNewPage may have released the latch for a dirty
	// write-back. Re-check closed (a concurrent Close can complete its
	// flush in that window; publishing a dirty frame after it would
	// never be flushed) ...
	if sh.closed {
		return storage.InvalidPageID, nil, ErrPoolClosed
	}
	// ... and displace any frame already published under this ID: a
	// freed-then-reallocated page can still be resident from a stale
	// prefetch that read it after the free. Leaving it would orphan
	// one of the two frames, and the orphan's eviction would unpublish
	// the live page.
	if fj, ok := sh.table[id]; ok && fj != fi {
		old := sh.frames[fj]
		switch {
		case old.loading != nil:
			old.doomed = true
			delete(sh.table, id)
		case old.pins.Load() == 0 && !old.flushing:
			sh.evictLocked(fj)
		default:
			// A pinned or mid-writeback frame for a page storage just
			// allocated means the page was freed while still in use.
			panic(fmt.Sprintf("buffer: allocated page %d still in use in pool", id))
		}
	}
	f := sh.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	} else {
		for i := range f.data {
			f.data[i] = 0
		}
	}
	f.id = id
	f.dirty.Store(true) // must be written out even if untouched
	f.pins.Store(1)
	f.ref.Store(false)
	f.prefetched.Store(false)
	sh.table[id] = fi
	sh.stats.fetches.Add(1)
	sh.stats.hits.Add(1) // allocation does not cost a read
	return id, f.data, nil
}

// Unpin releases one pin on the page, marking the frame dirty when the
// caller modified it.
func (p *Pool) Unpin(id storage.PageID, dirty bool) error {
	sh := p.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fi, ok := sh.table[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := sh.frames[fi]
	if dirty {
		f.dirty.Store(true)
	}
	if f.pins.Add(-1) < 0 {
		f.pins.Add(1)
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	return nil
}

// Discard drops the page from the pool without writing it back, even if
// dirty. Used when a page is freed. The page must not be demand-pinned,
// but a frame whose physical read is still in flight is tolerated: the
// prefetcher pins frames asynchronously, outside the access-method
// lock, so a mutation can free a page the prefetcher just predicted.
// Such a frame is unpublished immediately and doomed — the loader
// discards the freed bytes when the read settles. Any queued (not yet
// started) prefetch of the page is purged too.
func (p *Pool) Discard(id storage.PageID) {
	if pf := p.pf.Load(); pf != nil {
		pf.purge(id)
	}
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fi, ok := sh.table[id]
	if !ok {
		return
	}
	f := sh.frames[fi]
	if f.loading != nil {
		f.doomed = true
		delete(sh.table, id)
		return
	}
	if f.pins.Load() > 0 {
		panic(fmt.Sprintf("buffer: discard of pinned page %d", id))
	}
	delete(sh.table, id)
	f.id = storage.InvalidPageID
	f.dirty.Store(false)
	f.ref.Store(false)
	f.prefetched.Store(false)
}

// FlushAll writes every dirty frame back to the store. Pinned frames
// are flushed too (they stay resident and pinned). Each shard's dirty
// frames are written as one batch behind a single flush-gate call.
func (p *Pool) FlushAll() error {
	for _, sh := range p.shards {
		sh.mu.Lock()
		err := sh.flushShardLocked()
		if err == nil {
			sh.shrinkLocked()
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush writes the page back if buffered and dirty.
func (p *Pool) Flush(id storage.PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fi, ok := sh.table[id]; ok {
		return sh.flushFrameLocked(fi)
	}
	return nil
}

// Reset flushes every dirty frame and then empties the pool, so the
// next fetches are cold. Experiments call this between operations to
// reproduce the paper's per-operation page-access counts. It fails if
// any frame is still pinned. In-flight prefetches are quiesced first
// (they transiently pin frames).
func (p *Pool) Reset() error {
	pf := p.pf.Load()
	if pf != nil {
		pf.quiesce()
		defer pf.resume()
	}
	// Lock every shard (in order) so the pin check covers the whole
	// pool before any shard is cleared.
	for _, sh := range p.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range p.shards {
			sh.mu.Unlock()
		}
	}()
	for _, sh := range p.shards {
		for _, f := range sh.frames {
			if f.pins.Load() > 0 {
				return fmt.Errorf("buffer: reset with pinned page %d", f.id)
			}
		}
	}
	for _, sh := range p.shards {
		if err := sh.flushShardLocked(); err != nil {
			return err
		}
		sh.shrinkLocked()
		for _, f := range sh.frames {
			if f.id != storage.InvalidPageID {
				delete(sh.table, f.id)
				f.id = storage.InvalidPageID
				f.dirty.Store(false)
				f.ref.Store(false)
				f.prefetched.Store(false)
			}
		}
	}
	return nil
}

// Close flushes all dirty pages and invalidates the pool. The
// prefetcher, if any, is stopped first.
func (p *Pool) Close() error {
	if pf := p.pf.Load(); pf != nil {
		pf.close()
	}
	for _, sh := range p.shards {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			continue
		}
		err := sh.flushShardLocked()
		if err == nil {
			sh.closed = true
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
