// Package buffer implements an LRU buffer pool over a storage.Store.
//
// The paper's route-evaluation experiments assume "one buffer with the
// size of one data page"; the operation-cost experiments assume index
// pages are memory resident and data pages are fetched on demand. Pool
// reproduces both regimes: physical I/O is whatever reaches the
// underlying Store, and the pool reports hits and misses so experiments
// can report "number of data pages accessed" exactly as the paper does.
package buffer

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// Common buffer errors.
var (
	ErrAllPinned  = errors.New("buffer: all frames pinned")
	ErrNotPinned  = errors.New("buffer: page not pinned")
	ErrPoolClosed = errors.New("buffer: pool is closed")
)

// Stats describes buffer pool traffic.
type Stats struct {
	Fetches   int64 // logical page requests
	Hits      int64 // requests satisfied from the pool
	Misses    int64 // requests requiring a physical read
	Evictions int64 // frames recycled
	Flushes   int64 // dirty pages written back
}

// HitRate returns Hits/Fetches. The boolean distinguishes a truly idle
// pool (false: no fetches yet, the rate is undefined) from a pool that
// has fetched and missed every time (true with rate 0).
func (s Stats) HitRate() (float64, bool) {
	if s.Fetches == 0 {
		return 0, false
	}
	return float64(s.Hits) / float64(s.Fetches), true
}

// String renders the counters on one line, in the same key=value style
// as storage.Stats.String. An idle pool prints hitrate=idle.
func (s Stats) String() string {
	rate := "idle"
	if hr, ok := s.HitRate(); ok {
		rate = fmt.Sprintf("%.3f", hr)
	}
	return fmt.Sprintf("fetches=%d hits=%d misses=%d evictions=%d flushes=%d hitrate=%s",
		s.Fetches, s.Hits, s.Misses, s.Evictions, s.Flushes, rate)
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Fetches:   s.Fetches - earlier.Fetches,
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
		Flushes:   s.Flushes - earlier.Flushes,
	}
}

// poolCounters is the mutable form of Stats: atomics, so Stats() can
// snapshot without tearing while parallel readers drive the pool.
type poolCounters struct {
	fetches, hits, misses, evictions, flushes atomic.Int64
}

func (c *poolCounters) snapshot() Stats {
	return Stats{
		Fetches:   c.fetches.Load(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Flushes:   c.flushes.Load(),
	}
}

func (c *poolCounters) reset() {
	c.fetches.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.flushes.Store(0)
}

// frame is one buffered page. pins, lastUsed and dirty are atomics so
// that hits — the hot path — can pin and touch a frame while holding
// only the shared latch. loading is non-nil while the frame's physical
// read is still in flight; it is closed (under the exclusive latch)
// when the read completes, and loadErr is valid from then on.
type frame struct {
	id       storage.PageID
	data     []byte
	dirty    atomic.Bool
	pins     atomic.Int64
	lastUsed atomic.Int64
	loading  chan struct{}
	loadErr  error
}

// Pool is an LRU buffer pool, safe for concurrent use. A reader-writer
// latch guards the frame table: hits take it shared (pin count and
// recency are atomics), so parallel readers stream through buffered
// pages without serializing. A miss takes the latch exclusively only
// long enough to claim a victim frame and publish it as
// loading-in-progress, then releases it for the physical read — so
// concurrent misses on distinct pages overlap their I/O, which is where
// the throughput of a disk-resident file comes from. Concurrent
// requests for a page being read wait on the in-flight read instead of
// issuing their own (and count as hits: only one physical read
// happens).
//
// Frame images are protected by the pin protocol: a pinned or loading
// frame is never recycled, and writers are excluded from overlapping
// readers by the access-method level lock above. Eviction is exact
// LRU: recency is a global logical clock sampled per fetch, and the
// victim is the unpinned frame with the smallest stamp.
//
// Sizing note for parallel readers: every in-flight Fetch holds a pin,
// so capacity should comfortably exceed the worker count times the
// pages a single operation keeps pinned (Get-A-successor pins two);
// otherwise bursts can exhaust the pool and fail with ErrAllPinned.
type Pool struct {
	mu    sync.RWMutex
	store storage.Store
	// frames holds pointers so overflow frames can be appended under
	// no-steal without invalidating frame references held across latch
	// releases.
	frames   []*frame
	capacity int                    // configured frame count; len(frames) may exceed it under no-steal
	table    map[storage.PageID]int // page -> frame index
	clock    atomic.Int64           // logical time for LRU stamps
	stats    poolCounters
	closed   bool
	// noSteal forbids evicting dirty frames: a dirty page may only
	// reach the store through an explicit flush (checkpoint), never as
	// a side effect of eviction. Overflow frames absorb the pressure
	// until the next FlushAll shrinks the pool back to capacity.
	noSteal bool
	// flushGate, when set, runs before any dirty page is written to
	// the store — the WAL-before-data hook (it syncs the log).
	flushGate func() error
	// inst holds the optional latency instrumentation; an atomic
	// pointer so enabling it never races with in-flight fetches.
	inst atomic.Pointer[PoolInstrumentation]
}

// PoolInstrumentation carries the optional latency histograms of a
// pool. Nil histograms are skipped.
type PoolInstrumentation struct {
	// HitNanos observes the duration of fetches served from the pool
	// (including waits on another goroutine's in-flight read).
	HitNanos *metrics.Histogram
	// MissNanos observes the duration of fetches that performed a
	// physical read.
	MissNanos *metrics.Histogram
}

// NewPool returns a pool with capacity frames over store. Capacity must
// be at least 1.
func NewPool(store storage.Store, capacity int) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: invalid pool capacity %d", capacity))
	}
	p := &Pool{
		store:    store,
		table:    make(map[storage.PageID]int, capacity),
		frames:   make([]*frame, capacity),
		capacity: capacity,
	}
	for i := range p.frames {
		p.frames[i] = &frame{id: storage.InvalidPageID}
	}
	return p
}

// Capacity returns the configured number of frames. Under no-steal the
// pool may temporarily hold more (see SetNoSteal).
func (p *Pool) Capacity() int { return p.capacity }

// SetNoSteal switches the eviction policy: when on, dirty frames are
// never evicted — the pool grows overflow frames instead — so the only
// writes reaching the store are explicit flushes. The WAL recovery
// protocol depends on this: every store write between checkpoints is
// then allocator noise recovery can discard. Call during setup, before
// concurrent use.
func (p *Pool) SetNoSteal(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.noSteal = on
}

// SetFlushGate installs a hook that runs before any dirty page is
// written to the store — the WAL-before-data rule (the hook syncs the
// log up to the page's latest mutation). Call during setup, before
// concurrent use.
func (p *Pool) SetFlushGate(gate func() error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushGate = gate
}

// DirtyPage is a checkpoint copy of one dirty buffered page.
type DirtyPage struct {
	ID   storage.PageID
	Data []byte
}

// DirtySnapshot copies every dirty frame's image. The caller must
// ensure no mutator is concurrently writing frames (the access-method
// exclusive lock above the pool does this during checkpoints).
func (p *Pool) DirtySnapshot() []DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []DirtyPage
	for _, f := range p.frames {
		if f.id == storage.InvalidPageID || !f.dirty.Load() {
			continue
		}
		data := make([]byte, len(f.data))
		copy(data, f.data)
		out = append(out, DirtyPage{ID: f.id, Data: data})
	}
	return out
}

// DirtyCount returns the number of dirty buffered pages.
func (p *Pool) DirtyCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	n := 0
	for _, f := range p.frames {
		if f.id != storage.InvalidPageID && f.dirty.Load() {
			n++
		}
	}
	return n
}

// Store returns the underlying page store.
func (p *Pool) Store() storage.Store { return p.store }

// Stats returns a snapshot of the pool counters. Counters are atomics,
// so the snapshot is safe while parallel readers drive the pool.
func (p *Pool) Stats() Stats { return p.stats.snapshot() }

// ResetStats zeroes the pool counters (not the store's).
func (p *Pool) ResetStats() { p.stats.reset() }

// Contains reports whether the page is currently buffered, without
// touching recency or counters. Get-A-successor uses this to probe the
// buffer before paying for a Find.
func (p *Pool) Contains(id storage.PageID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.table[id]
	return ok
}

// pinResident pins the table-resident frame fi and returns its image,
// waiting out an in-flight read if there is one. Called with the latch
// held (shared or exclusive); releases it.
func (p *Pool) pinResident(fi int, unlock func()) ([]byte, error) {
	f := p.frames[fi]
	f.pins.Add(1)
	f.lastUsed.Store(p.clock.Add(1))
	ch := f.loading
	data := f.data
	unlock()
	p.stats.fetches.Add(1)
	p.stats.hits.Add(1)
	if ch != nil {
		<-ch
		// loadErr was written before the channel close and the frame
		// cannot be recycled while our pin is held, so this read is
		// ordered. On failure the loader already unpublished the page;
		// we only drop our pin.
		if err := f.loadErr; err != nil {
			f.pins.Add(-1)
			return nil, err
		}
	}
	return data, nil
}

// Instrument attaches latency instrumentation: subsequent fetches
// observe their durations into the hit or miss histogram. Call it
// during setup; it is safe against concurrent fetches.
func (p *Pool) Instrument(in PoolInstrumentation) { p.inst.Store(&in) }

// Fetch pins the page and returns its buffer-resident image. The caller
// must Unpin exactly once per Fetch. The returned slice aliases the
// frame and is valid until Unpin.
func (p *Pool) Fetch(id storage.PageID) ([]byte, error) {
	return p.FetchTraced(id, nil)
}

// FetchTraced is Fetch with an optional operation trace: the fetch is
// recorded as a buffer.fetch span and, on a miss, the physical read as
// a storage.read span. A nil trace costs nothing beyond Fetch itself
// unless the pool is instrumented.
func (p *Pool) FetchTraced(id storage.PageID, at *metrics.ActiveTrace) ([]byte, error) {
	in := p.inst.Load()
	if in == nil && at == nil {
		b, _, err := p.fetch(id, nil)
		return b, err
	}
	tok := at.BeginSpan("buffer.fetch")
	start := time.Now()
	b, miss, err := p.fetch(id, at)
	tok.End()
	if in != nil {
		if miss {
			in.MissNanos.ObserveSince(start)
		} else {
			in.HitNanos.ObserveSince(start)
		}
	}
	return b, err
}

// fetch reports, besides the pinned image, whether this call paid for
// the physical read (a miss).
func (p *Pool) fetch(id storage.PageID, at *metrics.ActiveTrace) ([]byte, bool, error) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, false, ErrPoolClosed
	}
	if fi, ok := p.table[id]; ok {
		b, err := p.pinResident(fi, p.mu.RUnlock)
		return b, false, err
	}
	p.mu.RUnlock()
	return p.fetchMiss(id, at)
}

// fetchMiss claims a frame for the page and performs the physical read
// with the latch released, so concurrent misses overlap their I/O.
func (p *Pool) fetchMiss(id storage.PageID, at *metrics.ActiveTrace) ([]byte, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, ErrPoolClosed
	}
	// Another goroutine may have faulted the page in (or begun to)
	// while we upgraded the latch.
	if fi, ok := p.table[id]; ok {
		b, err := p.pinResident(fi, func() { p.mu.Unlock() })
		return b, false, err
	}
	p.stats.fetches.Add(1)
	p.stats.misses.Add(1)
	fi, err := p.victim()
	if err != nil {
		p.mu.Unlock()
		return nil, false, err
	}
	f := p.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	}
	f.id = id
	f.dirty.Store(false)
	f.pins.Store(1)
	f.lastUsed.Store(p.clock.Add(1))
	ch := make(chan struct{})
	f.loading = ch
	f.loadErr = nil
	p.table[id] = fi
	p.mu.Unlock()

	tok := at.BeginSpan("storage.read")
	readErr := p.store.ReadPage(id, f.data)
	tok.End()

	p.mu.Lock()
	var result error
	if readErr != nil {
		result = fmt.Errorf("buffer: fetch page %d: %w", id, readErr)
		f.loadErr = result
		delete(p.table, id)
		f.id = storage.InvalidPageID
		f.pins.Add(-1) // waiters drop their own pins on wake-up
	}
	f.loading = nil
	close(ch)
	p.mu.Unlock()
	if result != nil {
		return nil, true, result
	}
	return f.data, true, nil
}

// FetchNew pins a freshly allocated page, returning its ID and a zeroed
// buffer image without a physical read.
func (p *Pool) FetchNew() (storage.PageID, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return storage.InvalidPageID, nil, ErrPoolClosed
	}
	id, err := p.store.Allocate()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	fi, err := p.victim()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	f := p.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	} else {
		for i := range f.data {
			f.data[i] = 0
		}
	}
	f.id = id
	f.dirty.Store(true) // must be written out even if untouched
	f.pins.Store(1)
	f.lastUsed.Store(p.clock.Add(1))
	p.table[id] = fi
	p.stats.fetches.Add(1)
	p.stats.hits.Add(1) // allocation does not cost a read
	return id, f.data, nil
}

// Unpin releases one pin on the page, marking the frame dirty when the
// caller modified it.
func (p *Pool) Unpin(id storage.PageID, dirty bool) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	fi, ok := p.table[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := p.frames[fi]
	if dirty {
		f.dirty.Store(true)
	}
	if f.pins.Add(-1) < 0 {
		f.pins.Add(1)
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	return nil
}

// Discard drops the page from the pool without writing it back, even if
// dirty. The page must be unpinned. Used when a page is freed.
func (p *Pool) Discard(id storage.PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fi, ok := p.table[id]
	if !ok {
		return
	}
	f := p.frames[fi]
	if f.pins.Load() > 0 {
		panic(fmt.Sprintf("buffer: discard of pinned page %d", id))
	}
	delete(p.table, id)
	f.id = storage.InvalidPageID
	f.dirty.Store(false)
}

// FlushAll writes every dirty frame back to the store. Pinned frames
// are flushed too (they stay resident and pinned).
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushAllLocked()
}

func (p *Pool) flushAllLocked() error {
	for fi := range p.frames {
		if err := p.flushFrame(fi); err != nil {
			return err
		}
	}
	p.shrinkLocked()
	return nil
}

// shrinkLocked drops overflow frames grown under no-steal, from the
// tail, as long as they are clean, unpinned and not loading. Caller
// holds the exclusive latch.
func (p *Pool) shrinkLocked() {
	for len(p.frames) > p.capacity {
		f := p.frames[len(p.frames)-1]
		if f.pins.Load() != 0 || f.loading != nil || f.dirty.Load() {
			return
		}
		if f.id != storage.InvalidPageID {
			delete(p.table, f.id)
		}
		p.frames = p.frames[:len(p.frames)-1]
	}
}

// Flush writes the page back if buffered and dirty.
func (p *Pool) Flush(id storage.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fi, ok := p.table[id]; ok {
		return p.flushFrame(fi)
	}
	return nil
}

// flushFrame writes frame fi back if live and dirty. Caller holds the
// exclusive latch.
func (p *Pool) flushFrame(fi int) error {
	f := p.frames[fi]
	if f.id == storage.InvalidPageID || !f.dirty.Load() {
		return nil
	}
	// WAL-before-data: the log must be durable past this page's last
	// mutation before the page image may reach the store.
	if p.flushGate != nil {
		if err := p.flushGate(); err != nil {
			return fmt.Errorf("buffer: flush gate for page %d: %w", f.id, err)
		}
	}
	if err := p.store.WritePage(f.id, f.data); err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", f.id, err)
	}
	f.dirty.Store(false)
	p.stats.flushes.Add(1)
	return nil
}

// Reset flushes every dirty frame and then empties the pool, so the
// next fetches are cold. Experiments call this between operations to
// reproduce the paper's per-operation page-access counts. It fails if
// any frame is still pinned.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for fi := range p.frames {
		if p.frames[fi].pins.Load() > 0 {
			return fmt.Errorf("buffer: reset with pinned page %d", p.frames[fi].id)
		}
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	for fi := range p.frames {
		f := p.frames[fi]
		if f.id != storage.InvalidPageID {
			delete(p.table, f.id)
			f.id = storage.InvalidPageID
			f.dirty.Store(false)
		}
	}
	return nil
}

// Close flushes all dirty pages and invalidates the pool.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	p.closed = true
	return nil
}

// victim returns a free frame index, evicting the least recently used
// unpinned frame when necessary. Caller holds the exclusive latch, so
// no new pins can appear on the chosen frame (pinning requires at
// least the shared latch).
func (p *Pool) victim() (int, error) {
	best, bestUsed := -1, int64(math.MaxInt64)
	for fi := range p.frames {
		f := p.frames[fi]
		if f.pins.Load() != 0 || f.loading != nil {
			continue
		}
		if f.id == storage.InvalidPageID {
			return fi, nil
		}
		if p.noSteal && f.dirty.Load() {
			continue
		}
		if u := f.lastUsed.Load(); u < bestUsed {
			best, bestUsed = fi, u
		}
	}
	if best == -1 {
		if p.noSteal {
			// Every unpinned frame is dirty and dirty frames must not
			// be stolen: grow an overflow frame. The next FlushAll
			// (checkpoint) shrinks the pool back to capacity.
			p.frames = append(p.frames, &frame{id: storage.InvalidPageID})
			return len(p.frames) - 1, nil
		}
		return -1, ErrAllPinned
	}
	if err := p.flushFrame(best); err != nil {
		return -1, err
	}
	delete(p.table, p.frames[best].id)
	p.frames[best].id = storage.InvalidPageID
	p.stats.evictions.Add(1)
	return best, nil
}
