// Package buffer implements an LRU buffer pool over a storage.Store.
//
// The paper's route-evaluation experiments assume "one buffer with the
// size of one data page"; the operation-cost experiments assume index
// pages are memory resident and data pages are fetched on demand. Pool
// reproduces both regimes: physical I/O is whatever reaches the
// underlying Store, and the pool reports hits and misses so experiments
// can report "number of data pages accessed" exactly as the paper does.
package buffer

import (
	"errors"
	"fmt"

	"ccam/internal/storage"
)

// Common buffer errors.
var (
	ErrAllPinned  = errors.New("buffer: all frames pinned")
	ErrNotPinned  = errors.New("buffer: page not pinned")
	ErrPoolClosed = errors.New("buffer: pool is closed")
)

// Stats describes buffer pool traffic.
type Stats struct {
	Fetches   int64 // logical page requests
	Hits      int64 // requests satisfied from the pool
	Misses    int64 // requests requiring a physical read
	Evictions int64 // frames recycled
	Flushes   int64 // dirty pages written back
}

// HitRate returns Hits/Fetches, or 0 for an idle pool.
func (s Stats) HitRate() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Fetches)
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Fetches:   s.Fetches - earlier.Fetches,
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Evictions: s.Evictions - earlier.Evictions,
		Flushes:   s.Flushes - earlier.Flushes,
	}
}

// frame is one buffered page.
type frame struct {
	id    storage.PageID
	data  []byte
	dirty bool
	pins  int
	// LRU list links (intrusive doubly linked list over frame indexes).
	prev, next int
}

// Pool is an LRU buffer pool. It is not safe for concurrent use; each
// access method owns its pool, matching the single-query-at-a-time cost
// model of the paper.
type Pool struct {
	store  storage.Store
	frames []frame
	table  map[storage.PageID]int // page -> frame index
	// LRU list: head = most recent, tail = least recent. -1 terminates.
	head, tail int
	freeList   []int
	stats      Stats
	closed     bool
}

// NewPool returns a pool with capacity frames over store. Capacity must
// be at least 1.
func NewPool(store storage.Store, capacity int) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: invalid pool capacity %d", capacity))
	}
	p := &Pool{
		store: store,
		table: make(map[storage.PageID]int, capacity),
		head:  -1,
		tail:  -1,
	}
	p.frames = make([]frame, capacity)
	for i := capacity - 1; i >= 0; i-- {
		p.frames[i] = frame{id: storage.InvalidPageID, prev: -1, next: -1}
		p.freeList = append(p.freeList, i)
	}
	return p
}

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// Store returns the underlying page store.
func (p *Pool) Store() storage.Store { return p.store }

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the pool counters (not the store's).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Contains reports whether the page is currently buffered, without
// touching recency or counters. Get-A-successor uses this to probe the
// buffer before paying for a Find.
func (p *Pool) Contains(id storage.PageID) bool {
	_, ok := p.table[id]
	return ok
}

// Fetch pins the page and returns its buffer-resident image. The caller
// must Unpin exactly once per Fetch. The returned slice aliases the
// frame and is valid until Unpin.
func (p *Pool) Fetch(id storage.PageID) ([]byte, error) {
	if p.closed {
		return nil, ErrPoolClosed
	}
	p.stats.Fetches++
	if fi, ok := p.table[id]; ok {
		p.stats.Hits++
		p.frames[fi].pins++
		p.touch(fi)
		return p.frames[fi].data, nil
	}
	p.stats.Misses++
	fi, err := p.victim()
	if err != nil {
		return nil, err
	}
	f := &p.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	}
	if err := p.store.ReadPage(id, f.data); err != nil {
		p.freeList = append(p.freeList, fi)
		return nil, fmt.Errorf("buffer: fetch page %d: %w", id, err)
	}
	f.id = id
	f.dirty = false
	f.pins = 1
	p.table[id] = fi
	p.pushFront(fi)
	return f.data, nil
}

// FetchNew pins a freshly allocated page, returning its ID and a zeroed
// buffer image without a physical read.
func (p *Pool) FetchNew() (storage.PageID, []byte, error) {
	if p.closed {
		return storage.InvalidPageID, nil, ErrPoolClosed
	}
	id, err := p.store.Allocate()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	fi, err := p.victim()
	if err != nil {
		return storage.InvalidPageID, nil, err
	}
	f := &p.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	} else {
		for i := range f.data {
			f.data[i] = 0
		}
	}
	f.id = id
	f.dirty = true // must be written out even if untouched
	f.pins = 1
	p.table[id] = fi
	p.pushFront(fi)
	p.stats.Fetches++
	p.stats.Hits++ // allocation does not cost a read
	return id, f.data, nil
}

// Unpin releases one pin on the page, marking the frame dirty when the
// caller modified it.
func (p *Pool) Unpin(id storage.PageID, dirty bool) error {
	fi, ok := p.table[id]
	if !ok || p.frames[fi].pins == 0 {
		return fmt.Errorf("%w: page %d", ErrNotPinned, id)
	}
	f := &p.frames[fi]
	f.pins--
	if dirty {
		f.dirty = true
	}
	return nil
}

// Discard drops the page from the pool without writing it back, even if
// dirty. The page must be unpinned. Used when a page is freed.
func (p *Pool) Discard(id storage.PageID) {
	fi, ok := p.table[id]
	if !ok {
		return
	}
	if p.frames[fi].pins > 0 {
		panic(fmt.Sprintf("buffer: discard of pinned page %d", id))
	}
	p.unlink(fi)
	delete(p.table, id)
	p.frames[fi].id = storage.InvalidPageID
	p.frames[fi].dirty = false
	p.freeList = append(p.freeList, fi)
}

// FlushAll writes every dirty frame back to the store. Pinned frames
// are flushed too (they stay resident and pinned).
func (p *Pool) FlushAll() error {
	for fi := range p.frames {
		if err := p.flushFrame(fi); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes the page back if buffered and dirty.
func (p *Pool) Flush(id storage.PageID) error {
	if fi, ok := p.table[id]; ok {
		return p.flushFrame(fi)
	}
	return nil
}

func (p *Pool) flushFrame(fi int) error {
	f := &p.frames[fi]
	if f.id == storage.InvalidPageID || !f.dirty {
		return nil
	}
	if err := p.store.WritePage(f.id, f.data); err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", f.id, err)
	}
	f.dirty = false
	p.stats.Flushes++
	return nil
}

// Reset flushes every dirty frame and then empties the pool, so the
// next fetches are cold. Experiments call this between operations to
// reproduce the paper's per-operation page-access counts. It fails if
// any frame is still pinned.
func (p *Pool) Reset() error {
	for fi := range p.frames {
		if p.frames[fi].pins > 0 {
			return fmt.Errorf("buffer: reset with pinned page %d", p.frames[fi].id)
		}
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	for fi := range p.frames {
		f := &p.frames[fi]
		if f.id != storage.InvalidPageID {
			delete(p.table, f.id)
			p.unlink(fi)
			f.id = storage.InvalidPageID
			f.dirty = false
			p.freeList = append(p.freeList, fi)
		}
	}
	return nil
}

// Close flushes all dirty pages and invalidates the pool.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	p.closed = true
	return nil
}

// victim returns a free frame index, evicting the least recently used
// unpinned frame when necessary.
func (p *Pool) victim() (int, error) {
	if n := len(p.freeList); n > 0 {
		fi := p.freeList[n-1]
		p.freeList = p.freeList[:n-1]
		return fi, nil
	}
	for fi := p.tail; fi != -1; fi = p.frames[fi].prev {
		if p.frames[fi].pins == 0 {
			if err := p.flushFrame(fi); err != nil {
				return -1, err
			}
			delete(p.table, p.frames[fi].id)
			p.unlink(fi)
			p.frames[fi].id = storage.InvalidPageID
			p.stats.Evictions++
			return fi, nil
		}
	}
	return -1, ErrAllPinned
}

// --- intrusive LRU list ---

func (p *Pool) pushFront(fi int) {
	f := &p.frames[fi]
	f.prev = -1
	f.next = p.head
	if p.head != -1 {
		p.frames[p.head].prev = fi
	}
	p.head = fi
	if p.tail == -1 {
		p.tail = fi
	}
}

func (p *Pool) unlink(fi int) {
	f := &p.frames[fi]
	if f.prev != -1 {
		p.frames[f.prev].next = f.next
	} else if p.head == fi {
		p.head = f.next
	}
	if f.next != -1 {
		p.frames[f.next].prev = f.prev
	} else if p.tail == fi {
		p.tail = f.prev
	}
	f.prev, f.next = -1, -1
}

func (p *Pool) touch(fi int) {
	if p.head == fi {
		return
	}
	p.unlink(fi)
	p.pushFront(fi)
}
