package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ccam/internal/storage"
)

// PrefetchStats describes the asynchronous prefetcher's traffic. None
// of these pages count as Fetches, Hits or Misses: prefetch is
// speculative I/O, and the pool's Stats must keep reporting the
// paper's demand page-access counts unchanged.
type PrefetchStats struct {
	Issued  int64 // pages queued after a demand miss
	Loaded  int64 // pages actually faulted in by a worker
	Dropped int64 // suggestions discarded (queue full, paused, no clean victim, or page freed)
	Useful  int64 // prefetched pages later claimed by a demand fetch
	Errors  int64 // prefetch reads that failed
}

// prefetcher runs a bounded queue of speculative page loads on a small
// worker pool. The queue is a latch-guarded slice rather than a
// channel so quiesce can atomically drop pending work and wait out the
// in-flight loads (each transiently pins a frame).
type prefetcher struct {
	pool     *Pool
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []storage.PageID
	qcap     int
	inflight int
	paused   bool
	closed   bool
	wg       sync.WaitGroup

	issued, loaded, dropped, useful, errs atomic.Int64
}

// EnablePrefetch starts the connectivity-aware prefetcher: on every
// demand miss the pool asks the adjacency hook (SetAdjacency) for the
// page's PAG neighbors and queues the non-resident ones; workers fault
// them in asynchronously, evicting only clean, unreferenced frames —
// a prefetch never writes back a dirty page, never grows the pool, and
// never displaces the re-referenced working set. workers and queueLen
// default to 2 and 256 when non-positive. Call during setup; calling
// it again is a no-op. Close stops the workers.
func (p *Pool) EnablePrefetch(workers, queueLen int) {
	if workers <= 0 {
		workers = 2
	}
	if queueLen <= 0 {
		queueLen = 256
	}
	pf := &prefetcher{pool: p, qcap: queueLen}
	pf.cond = sync.NewCond(&pf.mu)
	if !p.pf.CompareAndSwap(nil, pf) {
		return // already enabled
	}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.run()
	}
}

// PrefetchStats returns a snapshot of the prefetcher's counters; zero
// when prefetch is not enabled.
func (p *Pool) PrefetchStats() PrefetchStats {
	pf := p.pf.Load()
	if pf == nil {
		return PrefetchStats{}
	}
	return PrefetchStats{
		Issued:  pf.issued.Load(),
		Loaded:  pf.loaded.Load(),
		Dropped: pf.dropped.Load(),
		Useful:  pf.useful.Load(),
		Errors:  pf.errs.Load(),
	}
}

// suggestPrefetch queues the PAG neighbors of a demand-missed page.
// Called without any latch, from the fetching goroutine.
func (p *Pool) suggestPrefetch(id storage.PageID) {
	pf := p.pf.Load()
	if pf == nil {
		return
	}
	fnp := p.adj.Load()
	if fnp == nil || *fnp == nil {
		return
	}
	for _, nbr := range (*fnp)(id) {
		if nbr == id || nbr == storage.InvalidPageID {
			continue
		}
		// Skip pages already resident or already being read — including
		// by another prefetch (the in-flight check keys on the table).
		sh := p.shardOf(nbr)
		sh.mu.RLock()
		_, resident := sh.table[nbr]
		sh.mu.RUnlock()
		if resident {
			continue
		}
		pf.enqueue(nbr)
	}
}

// prefetchUseful credits a demand hit on a prefetched frame.
func (p *Pool) prefetchUseful() {
	pf := p.pf.Load()
	if pf == nil {
		return
	}
	pf.useful.Add(1)
	if in := p.inst.Load(); in != nil {
		in.PrefetchUseful.Inc()
	}
}

func (pf *prefetcher) enqueue(id storage.PageID) {
	in := pf.pool.inst.Load()
	pf.mu.Lock()
	if pf.closed || pf.paused || len(pf.queue) >= pf.qcap {
		pf.mu.Unlock()
		pf.dropped.Add(1)
		if in != nil {
			in.PrefetchDropped.Inc()
		}
		return
	}
	pf.queue = append(pf.queue, id)
	pf.mu.Unlock()
	pf.cond.Signal()
	pf.issued.Add(1)
	if in != nil {
		in.PrefetchIssued.Inc()
	}
}

// purge drops every queued occurrence of id: the page was freed, and a
// later load would publish dead bytes under a reusable ID. A load
// already in flight is handled by Discard's dooming instead.
func (pf *prefetcher) purge(id storage.PageID) {
	pf.mu.Lock()
	kept := pf.queue[:0]
	for _, q := range pf.queue {
		if q != id {
			kept = append(kept, q)
		}
	}
	dropped := int64(len(pf.queue) - len(kept))
	pf.queue = kept
	pf.mu.Unlock()
	if dropped > 0 {
		pf.dropped.Add(dropped)
		if in := pf.pool.inst.Load(); in != nil {
			in.PrefetchDropped.Add(dropped)
		}
	}
}

func (pf *prefetcher) run() {
	defer pf.wg.Done()
	for {
		pf.mu.Lock()
		for !pf.closed && (pf.paused || len(pf.queue) == 0) {
			pf.cond.Wait()
		}
		if pf.closed {
			pf.mu.Unlock()
			return
		}
		id := pf.queue[0]
		pf.queue = pf.queue[1:]
		pf.inflight++
		pf.mu.Unlock()

		pf.load(id)

		pf.mu.Lock()
		pf.inflight--
		if pf.inflight == 0 {
			pf.cond.Broadcast() // wake a quiesce waiting for drain
		}
		pf.mu.Unlock()
	}
}

// load faults one page into its shard. It follows the demand-miss
// single-flight protocol (claim a frame, publish it loading, read with
// the latch released) but touches none of the hit/miss counters, only
// evicts clean unreferenced frames, and drops its pin once the read
// settles so the frame is immediately evictable if the prediction was
// wrong.
func (pf *prefetcher) load(id storage.PageID) {
	p := pf.pool
	in := p.inst.Load()
	sh := p.shardOf(id)
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	if _, ok := sh.table[id]; ok {
		sh.mu.Unlock()
		return // landed while queued
	}
	fi, _, found := sh.sweepLocked(true) // noSteal semantics: clean victims only
	if !found {
		sh.mu.Unlock()
		pf.dropped.Add(1)
		if in != nil {
			in.PrefetchDropped.Inc()
		}
		return
	}
	sh.evictLocked(fi)
	f := sh.frames[fi]
	if f.data == nil {
		f.data = make([]byte, p.store.PageSize())
	}
	f.id = id
	f.dirty.Store(false)
	f.pins.Store(1) // loader pin, dropped below
	f.ref.Store(false)
	f.prefetched.Store(true)
	ch := make(chan struct{})
	f.loading = ch
	f.loadErr = nil
	sh.table[id] = fi
	sh.mu.Unlock()

	readErr := p.store.ReadPage(id, f.data)

	sh.mu.Lock()
	switch {
	case readErr != nil:
		f.loadErr = fmt.Errorf("buffer: fetch page %d: %w", id, readErr)
		sh.unpublishLoadedLocked(fi, id)
		pf.errs.Add(1)
		if in != nil {
			in.PrefetchErrors.Inc()
		}
	case f.doomed:
		// The page was freed (or freed and re-allocated) while the
		// speculative read was in flight: drop the dead bytes instead
		// of publishing them.
		f.loadErr = fmt.Errorf("buffer: page %d freed during prefetch", id)
		sh.unpublishLoadedLocked(fi, id)
		pf.dropped.Add(1)
		if in != nil {
			in.PrefetchDropped.Inc()
		}
	default:
		pf.loaded.Add(1)
		if in != nil {
			in.PrefetchLoaded.Inc()
		}
	}
	f.doomed = false
	f.pins.Add(-1)
	f.loading = nil
	close(ch)
	sh.mu.Unlock()
}

// quiesce drops all queued work and waits until no load is in flight.
// New suggestions are dropped until resume. Used by Reset, which must
// not observe transient prefetch pins.
func (pf *prefetcher) quiesce() {
	pf.mu.Lock()
	pf.paused = true
	if n := len(pf.queue); n > 0 {
		pf.queue = nil
		pf.dropped.Add(int64(n))
	}
	for pf.inflight > 0 {
		pf.cond.Wait()
	}
	pf.mu.Unlock()
}

func (pf *prefetcher) resume() {
	pf.mu.Lock()
	pf.paused = false
	pf.mu.Unlock()
	pf.cond.Broadcast()
}

// close stops the workers and waits for them to exit. Idempotent.
func (pf *prefetcher) close() {
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		pf.wg.Wait()
		return
	}
	pf.closed = true
	pf.queue = nil
	pf.mu.Unlock()
	pf.cond.Broadcast()
	pf.wg.Wait()
}

func (pf *prefetcher) resetStats() {
	pf.issued.Store(0)
	pf.loaded.Store(0)
	pf.dropped.Store(0)
	pf.useful.Store(0)
	pf.errs.Store(0)
}
