package partition

import (
	"math/rand"

	"ccam/internal/graph"
)

// RatioCut adapts Cheng and Wei's two-way ratio-cut heuristic, the
// partitioner the paper bases CCAM on. The objective is
// cut(A,B)/(size(A)·size(B)) rather than the raw cut, which lets the
// heuristic discover natural cluster boundaries instead of forcing a
// bisection; only the MinPgSize floor from the paper's Figure 2
// constrains side sizes. The search runs FM-style single-node move
// passes with best-prefix reversion, scored by the ratio objective.
type RatioCut struct {
	// MaxPasses bounds improvement passes (default 16).
	MaxPasses int
	// Restarts runs the whole search from multiple BFS seeds and keeps
	// the best result (default 3).
	Restarts int
}

// Name implements Bipartitioner.
func (r *RatioCut) Name() string { return "ratio-cut" }

func (r *RatioCut) maxPasses() int {
	if r.MaxPasses > 0 {
		return r.MaxPasses
	}
	return 16
}

func (r *RatioCut) restarts() int {
	if r.Restarts > 0 {
		return r.Restarts
	}
	return 3
}

// Bipartition implements Bipartitioner.
func (r *RatioCut) Bipartition(w *Weighted, minSize int, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID, error) {
	if err := checkFeasible(w, minSize); err != nil {
		return nil, nil, err
	}
	lim := minSize
	if 2*lim > w.Total {
		// The subset is barely above a page: fall back to the largest
		// feasible floor so a split still makes progress.
		lim = 0
	}
	var bestSide []bool
	bestScore := 1e300
	for attempt := 0; attempt < r.restarts(); attempt++ {
		side := w.seedPartition(rng)
		for pass := 0; pass < r.maxPasses(); pass++ {
			if !runMovePass(w, side, lim, scoreRatio) {
				break
			}
		}
		sa, sb := w.sideSizes(side)
		s := scoreRatio(w.CutWeight(side), sa, sb)
		if s < bestScore {
			bestScore = s
			bestSide = append(bestSide[:0], side...)
		}
	}
	a, b := w.split(bestSide)
	if len(a) == 0 || len(b) == 0 {
		return peelFallback(w)
	}
	return a, b, nil
}
