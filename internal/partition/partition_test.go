package partition

import (
	"errors"
	"math/rand"
	"testing"

	"ccam/internal/graph"
)

func unitSize(graph.NodeID) int { return 10 }

func allPartitioners() []Bipartitioner {
	return []Bipartitioner{&FM{}, &RatioCut{}, &KL{}, &Multilevel{}}
}

func TestBuildWeightedCollapsesDirectedPairs(t *testing.T) {
	g := graph.NewNetwork()
	for i := graph.NodeID(0); i < 3; i++ {
		g.AddNode(graph.Node{ID: i})
	}
	g.AddEdge(graph.Edge{From: 0, To: 1, Weight: 2})
	g.AddEdge(graph.Edge{From: 1, To: 0, Weight: 3})
	g.AddEdge(graph.Edge{From: 1, To: 2, Weight: 1})
	w := BuildWeighted(g, unitSize)
	if w.N() != 3 || w.Total != 30 {
		t.Fatalf("N=%d Total=%d", w.N(), w.Total)
	}
	// Edge 0-1 must carry weight 5 once.
	if got := edgeWeight(w, 0, 1); got != 5 {
		t.Fatalf("w(0,1) = %f, want 5", got)
	}
	side := []bool{false, true, true}
	if cut := w.CutWeight(side); cut != 5 {
		t.Fatalf("cut = %f, want 5", cut)
	}
}

func TestGainsConsistentWithCutDelta(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	rng := rand.New(rand.NewSource(1))
	side := w.seedPartition(rng)
	gains := w.gains(side)
	cut := w.CutWeight(side)
	for trial := 0; trial < 50; trial++ {
		u := rng.Intn(w.N())
		side[u] = !side[u]
		newCut := w.CutWeight(side)
		side[u] = !side[u]
		if diff := cut - newCut; abs(diff-gains[u]) > 1e-9 {
			t.Fatalf("gain[%d] = %f, actual delta %f", u, gains[u], diff)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestBipartitionersOnTwoCliques(t *testing.T) {
	// Two 6-cliques joined by a single bridge edge: every heuristic
	// should find the bridge cut (cut weight 1).
	g := graph.NewNetwork()
	for i := graph.NodeID(0); i < 12; i++ {
		g.AddNode(graph.Node{ID: i})
	}
	clique := func(ids []graph.NodeID) {
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				g.AddEdge(graph.Edge{From: a, To: b, Weight: 1})
				g.AddEdge(graph.Edge{From: b, To: a, Weight: 1})
			}
		}
	}
	clique([]graph.NodeID{0, 1, 2, 3, 4, 5})
	clique([]graph.NodeID{6, 7, 8, 9, 10, 11})
	g.AddEdge(graph.Edge{From: 5, To: 6, Weight: 1})

	for _, p := range allPartitioners() {
		t.Run(p.Name(), func(t *testing.T) {
			w := BuildWeighted(g, unitSize)
			rng := rand.New(rand.NewSource(7))
			a, b, err := p.Bipartition(w, 30, rng)
			if err != nil {
				t.Fatal(err)
			}
			if len(a)+len(b) != 12 || len(a) == 0 || len(b) == 0 {
				t.Fatalf("sides %d/%d", len(a), len(b))
			}
			// Verify the cut is the bridge: sides must be the cliques.
			inA := map[graph.NodeID]bool{}
			for _, id := range a {
				inA[id] = true
			}
			if inA[0] != inA[5] || inA[6] != inA[11] || inA[0] == inA[6] {
				t.Fatalf("%s did not separate the cliques: A=%v", p.Name(), a)
			}
		})
	}
}

func TestBipartitionRespectsMinSize(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	minSize := w.Total / 4
	for _, p := range allPartitioners() {
		t.Run(p.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			a, b, err := p.Bipartition(w, minSize, rng)
			if err != nil {
				t.Fatal(err)
			}
			if 10*len(a) < minSize || 10*len(b) < minSize {
				t.Fatalf("side sizes %d/%d bytes below min %d", 10*len(a), 10*len(b), minSize)
			}
			if len(a)+len(b) != w.N() {
				t.Fatalf("node loss: %d + %d != %d", len(a), len(b), w.N())
			}
		})
	}
}

func TestBipartitionErrors(t *testing.T) {
	empty := BuildWeighted(graph.NewNetwork(), unitSize)
	fm := &FM{}
	if _, _, err := fm.Bipartition(empty, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("empty = %v", err)
	}
	g := graph.NewNetwork()
	g.AddNode(graph.Node{ID: 1})
	single := BuildWeighted(g, unitSize)
	if _, _, err := fm.Bipartition(single, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("single = %v", err)
	}
}

func TestClusterNodesIntoPages(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	pageSize := 1024
	for _, p := range allPartitioners() {
		t.Run(p.Name(), func(t *testing.T) {
			if p.Name() == "kernighan-lin" && testing.Short() {
				t.Skip("KL is O(n^2) per pass")
			}
			rng := rand.New(rand.NewSource(9))
			pages, err := ClusterNodesIntoPages(g, size, pageSize, p, rng)
			if err != nil {
				t.Fatal(err)
			}
			// Every node exactly once.
			seen := map[graph.NodeID]bool{}
			for _, pg := range pages {
				bytes := 0
				for _, id := range pg {
					if seen[id] {
						t.Fatalf("node %d assigned twice", id)
					}
					seen[id] = true
					bytes += size(id)
				}
				if bytes > pageSize {
					t.Fatalf("page exceeds pageSize: %d", bytes)
				}
			}
			if len(seen) != g.NumNodes() {
				t.Fatalf("covered %d of %d nodes", len(seen), g.NumNodes())
			}
			q := EvaluatePages(g, pages, size, pageSize)
			// Connectivity clustering must beat a random placement by a
			// wide margin; on this map CRR ~0.6+ at 1k pages.
			if q.CRR < 0.45 {
				t.Errorf("%s CRR = %f, implausibly low", p.Name(), q.CRR)
			}
			t.Logf("%s: pages=%d CRR=%.4f avgFill=%.2f", p.Name(), q.Pages, q.CRR, q.AvgFill)
		})
	}
}

func TestClusterRejectsOversizedNode(t *testing.T) {
	g := graph.Grid(2, 2)
	_, err := ClusterNodesIntoPages(g, func(graph.NodeID) int { return 2000 }, 1024, &FM{}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, ErrNodeTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestClusterSmallGraphSinglePage(t *testing.T) {
	g := graph.Grid(2, 2)
	pages, err := ClusterNodesIntoPages(g, unitSize, 1024, &RatioCut{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || len(pages[0]) != 4 {
		t.Fatalf("pages = %v", pages)
	}
}

func TestPackSequential(t *testing.T) {
	order := []graph.NodeID{1, 2, 3, 4, 5}
	pages, err := PackSequential(order, func(graph.NodeID) int { return 40 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 || len(pages[0]) != 2 || len(pages[2]) != 1 {
		t.Fatalf("pages = %v", pages)
	}
	if _, err := PackSequential(order, func(graph.NodeID) int { return 200 }, 100); !errors.Is(err, ErrNodeTooLarge) {
		t.Fatalf("oversized = %v", err)
	}
}

func TestMWayRefineImprovesCRR(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	pageSize := 1024
	// Start from a deliberately poor placement: pack in random order,
	// leaving slack in each page so refinement has room to move nodes.
	order := g.NodeIDs()
	rand.New(rand.NewSource(13)).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	pages, err := PackSequential(order, size, pageSize*3/4)
	if err != nil {
		t.Fatal(err)
	}
	before := EvaluatePages(g, pages, size, pageSize)
	refined, moves := MWayRefine(g, pages, size, pageSize, 10)
	after := EvaluatePages(g, refined, size, pageSize)
	if moves == 0 {
		t.Fatal("refinement made no moves on a poor placement")
	}
	if after.CRR <= before.CRR {
		t.Fatalf("CRR did not improve: %f -> %f", before.CRR, after.CRR)
	}
	if after.MaxOverflow > 0 {
		t.Fatalf("refinement overflowed a page by %d bytes", after.MaxOverflow)
	}
	// No node lost.
	total := 0
	for _, pg := range refined {
		total += len(pg)
	}
	if total != g.NumNodes() {
		t.Fatalf("node count changed: %d != %d", total, g.NumNodes())
	}
}

func TestDFSAndBFSOrders(t *testing.T) {
	g := graph.Grid(4, 4)
	for _, tc := range []struct {
		name  string
		order []graph.NodeID
	}{
		{"dfs", DFSOrder(g, 0, false)},
		{"wdfs", DFSOrder(g, 0, true)},
		{"bfs", BFSOrder(g, 0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.order) != 16 {
				t.Fatalf("order length = %d", len(tc.order))
			}
			seen := map[graph.NodeID]bool{}
			for _, id := range tc.order {
				if seen[id] {
					t.Fatalf("node %d repeated", id)
				}
				seen[id] = true
			}
			if tc.order[0] != 0 {
				t.Fatalf("order starts at %d, want 0", tc.order[0])
			}
		})
	}
	// BFS visits distance-1 nodes before distance-2.
	bfs := BFSOrder(g, 0)
	pos := map[graph.NodeID]int{}
	for i, id := range bfs {
		pos[id] = i
	}
	if pos[1] > pos[5] || pos[4] > pos[5] {
		t.Errorf("BFS order violates level order: pos(1)=%d pos(4)=%d pos(5)=%d", pos[1], pos[4], pos[5])
	}
}

func TestDFSOrderCoversDisconnected(t *testing.T) {
	g := graph.NewNetwork()
	for i := graph.NodeID(0); i < 4; i++ {
		g.AddNode(graph.Node{ID: i})
	}
	g.AddEdge(graph.Edge{From: 0, To: 1})
	// 2 and 3 isolated.
	order := DFSOrder(g, 0, false)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	order = BFSOrder(g, 0)
	if len(order) != 4 {
		t.Fatalf("bfs order = %v", order)
	}
}

func TestRatioCutPrefersNaturalClusters(t *testing.T) {
	// Chain of 3 dense blobs: ratio cut should cut a bridge, not split
	// a blob, even though the blobs have unequal sizes.
	g := graph.NewNetwork()
	var id graph.NodeID
	blob := func(n int) []graph.NodeID {
		var ids []graph.NodeID
		for i := 0; i < n; i++ {
			g.AddNode(graph.Node{ID: id})
			ids = append(ids, id)
			id++
		}
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				g.AddEdge(graph.Edge{From: a, To: b, Weight: 1})
				g.AddEdge(graph.Edge{From: b, To: a, Weight: 1})
			}
		}
		return ids
	}
	b1 := blob(8)
	b2 := blob(5)
	g.AddEdge(graph.Edge{From: b1[0], To: b2[0], Weight: 1})
	w := BuildWeighted(g, unitSize)
	rc := &RatioCut{}
	a, b, err := rc.Bipartition(w, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if (len(a) != 8 || len(b) != 5) && (len(a) != 5 || len(b) != 8) {
		t.Fatalf("ratio cut split blobs: %d/%d", len(a), len(b))
	}
}

func TestCoalescePagesImprovesFill(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	pageSize := 1024
	pages, err := ClusterNodesIntoPages(g, size, pageSize, &RatioCut{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	before := EvaluatePages(g, pages, size, pageSize)
	merged, n := CoalescePages(g, pages, size, pageSize, 10)
	after := EvaluatePages(g, merged, size, pageSize)
	if n == 0 {
		t.Skip("no coalescing opportunity on this clustering")
	}
	if after.Pages >= before.Pages {
		t.Fatalf("pages did not shrink: %d -> %d", before.Pages, after.Pages)
	}
	if after.AvgFill <= before.AvgFill {
		t.Fatalf("fill did not improve: %.3f -> %.3f", before.AvgFill, after.AvgFill)
	}
	if after.CRR < before.CRR-1e-9 {
		t.Fatalf("coalescing reduced CRR: %.4f -> %.4f", before.CRR, after.CRR)
	}
	if after.MaxOverflow > 0 {
		t.Fatalf("coalescing overflowed a page by %d bytes", after.MaxOverflow)
	}
	// No node lost or duplicated.
	seen := map[graph.NodeID]bool{}
	for _, pg := range merged {
		for _, id := range pg {
			if seen[id] {
				t.Fatalf("node %d duplicated", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("covered %d of %d nodes", len(seen), g.NumNodes())
	}
	t.Logf("pages %d->%d, fill %.2f->%.2f, CRR %.4f->%.4f",
		before.Pages, after.Pages, before.AvgFill, after.AvgFill, before.CRR, after.CRR)
}

func TestFMBalanceConfig(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	// A strict balance keeps sides within a tight band of half.
	strict := &FM{BalanceFrac: 0.49}
	a, b, err := strict.Bipartition(w, 10, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := len(a), len(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo) < 0.47*float64(w.N()) {
		t.Fatalf("strict balance violated: %d/%d", len(a), len(b))
	}
	// Pass cap is respected (smoke: a single pass still returns a
	// valid bipartition).
	quick := &FM{MaxPasses: 1}
	a, b, err = quick.Bipartition(w, 10, rand.New(rand.NewSource(2)))
	if err != nil || len(a) == 0 || len(b) == 0 {
		t.Fatalf("single-pass FM: %d/%d, %v", len(a), len(b), err)
	}
}

func TestRatioCutRestartsConfig(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	one := &RatioCut{Restarts: 1, MaxPasses: 2}
	many := &RatioCut{Restarts: 6}
	cut := func(p Bipartitioner, seed int64) float64 {
		a, _, err := p.Bipartition(w, 10, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		side := make([]bool, w.N())
		inA := map[graph.NodeID]bool{}
		for _, id := range a {
			inA[id] = true
		}
		for i, id := range w.IDs {
			side[i] = !inA[id]
		}
		return w.CutWeight(side)
	}
	// More restarts never hurt on average; assert a weak form over a
	// few seeds.
	better := 0
	for seed := int64(0); seed < 5; seed++ {
		if cut(many, seed) <= cut(one, seed)+1e-9 {
			better++
		}
	}
	if better < 3 {
		t.Errorf("more restarts beat one restart only %d/5 times", better)
	}
}
