package partition

import (
	"fmt"
	"math/rand"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// ClusterNodesIntoPages is the paper's Figure 2: top-down connectivity
// clustering. The node set starts as one subset; subsets exceeding
// pageSize bytes are repeatedly bipartitioned (with MinPgSize =
// ⌈pageSize/2⌉ as the side floor) until every subset fits in a page.
// sizeOf gives the record byte size of each node. The result is one
// node-id slice per data page.
func ClusterNodesIntoPages(g *graph.Network, sizeOf func(graph.NodeID) int, pageSize int, part Bipartitioner, rng *rand.Rand) ([][]graph.NodeID, error) {
	if g.NumNodes() == 0 {
		return nil, ErrEmptyGraph
	}
	for _, id := range g.NodeIDs() {
		if s := sizeOf(id); s > pageSize {
			return nil, fmt.Errorf("%w: node %d needs %d bytes, page is %d", ErrNodeTooLarge, id, s, pageSize)
		}
	}
	minPgSize := (pageSize + 1) / 2

	subsetSize := func(ids []graph.NodeID) int {
		total := 0
		for _, id := range ids {
			total += sizeOf(id)
		}
		return total
	}

	frontier := [][]graph.NodeID{g.NodeIDs()}
	var pages [][]graph.NodeID
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if subsetSize(cur) <= pageSize {
			pages = append(pages, cur)
			continue
		}
		keep := make(map[graph.NodeID]bool, len(cur))
		for _, id := range cur {
			keep[id] = true
		}
		sub := g.Subnetwork(keep)
		w := BuildWeighted(sub, sizeOf)
		a, b, err := part.Bipartition(w, minPgSize, rng)
		if err != nil {
			return nil, fmt.Errorf("partition: clustering subset of %d nodes: %w", len(cur), err)
		}
		if len(a) == 0 || len(b) == 0 {
			return nil, fmt.Errorf("partition: %s returned an empty side", part.Name())
		}
		for _, half := range [][]graph.NodeID{a, b} {
			if subsetSize(half) > pageSize {
				frontier = append(frontier, half)
			} else {
				pages = append(pages, half)
			}
		}
	}
	return pages, nil
}

// PackSequential assigns nodes to pages greedily in the given order,
// starting a new page when the next record would overflow. This is the
// packing primitive under the topological access methods (DFS-AM,
// BFS-AM, WDFS-AM) and the paper's figure-1 style layouts.
func PackSequential(order []graph.NodeID, sizeOf func(graph.NodeID) int, pageSize int) ([][]graph.NodeID, error) {
	var pages [][]graph.NodeID
	var cur []graph.NodeID
	used := 0
	for _, id := range order {
		s := sizeOf(id)
		if s > pageSize {
			return nil, fmt.Errorf("%w: node %d needs %d bytes, page is %d", ErrNodeTooLarge, id, s, pageSize)
		}
		if used+s > pageSize && len(cur) > 0 {
			pages = append(pages, cur)
			cur = nil
			used = 0
		}
		cur = append(cur, id)
		used += s
	}
	if len(cur) > 0 {
		pages = append(pages, cur)
	}
	return pages, nil
}

// PagesQuality summarizes a page assignment for reports and tests.
type PagesQuality struct {
	Pages       int
	CRR         float64
	WCRR        float64
	MinFill     float64 // fill factor of the emptiest page
	AvgFill     float64
	MaxOverflow int // bytes over pageSize in the fullest page (0 if none)
}

// EvaluatePages computes quality metrics of a page assignment.
func EvaluatePages(g *graph.Network, pages [][]graph.NodeID, sizeOf func(graph.NodeID) int, pageSize int) PagesQuality {
	placement := make(graph.Placement)
	minFill := 1.0
	var fillSum float64
	maxOver := 0
	for i, pg := range pages {
		used := 0
		for _, id := range pg {
			placement[id] = storage.PageID(i)
			used += sizeOf(id)
		}
		fill := float64(used) / float64(pageSize)
		if fill < minFill {
			minFill = fill
		}
		fillSum += fill
		if used > pageSize && used-pageSize > maxOver {
			maxOver = used - pageSize
		}
	}
	q := PagesQuality{
		Pages:       len(pages),
		CRR:         graph.CRR(g, placement),
		WCRR:        graph.WCRR(g, placement),
		MinFill:     minFill,
		MaxOverflow: maxOver,
	}
	if len(pages) > 0 {
		q.AvgFill = fillSum / float64(len(pages))
	}
	return q
}
