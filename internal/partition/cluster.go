package partition

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// ClusterOptions configures the top-down clustering recursion.
type ClusterOptions struct {
	// Workers bounds the number of frontier subsets partitioned
	// concurrently (0 = GOMAXPROCS). The result is identical at every
	// worker count for a fixed Seed.
	Workers int
	// Seed drives all randomness: every subset derives its own RNG seed
	// from its parent's by a splitmix64 step, so the random stream a
	// subset sees depends only on its position in the recursion tree,
	// never on scheduling.
	Seed int64
}

func (o ClusterOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ClusterNodesIntoPages is the paper's Figure 2: top-down connectivity
// clustering. The node set starts as one subset; subsets exceeding
// pageSize bytes are repeatedly bipartitioned (with MinPgSize =
// ⌈pageSize/2⌉ as the side floor) until every subset fits in a page.
// sizeOf gives the record byte size of each node. The result is one
// node-id slice per data page.
//
// This wrapper runs serially, drawing its seed from rng; use
// ClusterNodesIntoPagesOpts to run the recursion on a worker pool.
func ClusterNodesIntoPages(g *graph.Network, sizeOf func(graph.NodeID) int, pageSize int, part Bipartitioner, rng *rand.Rand) ([][]graph.NodeID, error) {
	return ClusterNodesIntoPagesOpts(g, sizeOf, pageSize, part, ClusterOptions{Workers: 1, Seed: rng.Int63()})
}

// ClusterNodesIntoPagesOpts is ClusterNodesIntoPages with the frontier
// subsets — independent subproblems — partitioned concurrently on a
// bounded worker pool. sizeOf is consulted exactly once per node (the
// projection onto the Weighted working set); subset byte sizes are
// threaded down the recursion, and each bipartition splits the parent
// Weighted directly into index-remapped sub-Weighteds instead of
// re-materializing subnetworks. Output is deterministic: a fixed
// opts.Seed yields an identical page list at any worker count.
func ClusterNodesIntoPagesOpts(g *graph.Network, sizeOf func(graph.NodeID) int, pageSize int, part Bipartitioner, opts ClusterOptions) ([][]graph.NodeID, error) {
	if g.NumNodes() == 0 {
		return nil, ErrEmptyGraph
	}
	w := BuildWeighted(g, sizeOf)
	return ClusterWeightedIntoPages(w, pageSize, part, opts)
}

// ClusterWeightedIntoPages runs the Figure 2 recursion directly over a
// prepared Weighted working set (see ClusterNodesIntoPagesOpts).
func ClusterWeightedIntoPages(w *Weighted, pageSize int, part Bipartitioner, opts ClusterOptions) ([][]graph.NodeID, error) {
	if w.N() == 0 {
		return nil, ErrEmptyGraph
	}
	for i, s := range w.Size {
		if s > pageSize {
			return nil, fmt.Errorf("%w: node %d needs %d bytes, page is %d", ErrNodeTooLarge, w.IDs[i], s, pageSize)
		}
	}
	run := &clusterRun{
		pageSize: pageSize,
		minPg:    (pageSize + 1) / 2,
		part:     part,
		sem:      make(chan struct{}, opts.workers()-1),
	}
	return run.solve(w, splitmix64(uint64(opts.Seed)))
}

// clusterRun holds the recursion's shared state. sem bounds the number
// of subsets partitioned concurrently beyond the calling goroutine: a
// recursion step that acquires a slot hands its first half to a fresh
// goroutine and keeps the second; otherwise both run inline.
type clusterRun struct {
	pageSize int
	minPg    int
	part     Bipartitioner
	sem      chan struct{}
}

// solve clusters one subset. Subset byte size is w.Total, carried from
// the parent split — no per-pop re-scan. Pages merge first-half before
// second-half, so the page order depends only on the recursion tree.
func (c *clusterRun) solve(w *Weighted, seed uint64) ([][]graph.NodeID, error) {
	if w.Total <= c.pageSize {
		return [][]graph.NodeID{w.IDs}, nil
	}
	rng := rand.New(rand.NewSource(int64(splitmix64(seed))))
	a, b, err := c.part.Bipartition(w, c.minPg, rng)
	if err != nil {
		return nil, fmt.Errorf("partition: clustering subset of %d nodes: %w", w.N(), err)
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("partition: %s returned an empty side", c.part.Name())
	}
	wa, wb, err := w.splitByIDs(a, b)
	if err != nil {
		return nil, fmt.Errorf("partition: %s: %w", c.part.Name(), err)
	}
	seedA := splitmix64(seed ^ 0x517cc1b727220a95)
	seedB := splitmix64(seed ^ 0x2545f4914f6cdd1d)

	var (
		pa, pb     [][]graph.NodeID
		errA, errB error
	)
	select {
	case c.sem <- struct{}{}:
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			pa, errA = c.solve(wa, seedA)
			<-c.sem
		}()
		pb, errB = c.solve(wb, seedB)
		wg.Wait()
	default:
		pa, errA = c.solve(wa, seedA)
		if errA == nil {
			pb, errB = c.solve(wb, seedB)
		}
	}
	if errA != nil {
		return nil, errA
	}
	if errB != nil {
		return nil, errB
	}
	return append(pa, pb...), nil
}

// splitmix64 is the SplitMix64 finalizer: a single deterministic,
// well-mixed step from one 64-bit state to the next. Each recursion
// node derives its RNG seed and its children's seeds from its own seed
// with it, so random streams are reproducible at any worker count.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PackSequential assigns nodes to pages greedily in the given order,
// starting a new page when the next record would overflow. This is the
// packing primitive under the topological access methods (DFS-AM,
// BFS-AM, WDFS-AM) and the paper's figure-1 style layouts.
func PackSequential(order []graph.NodeID, sizeOf func(graph.NodeID) int, pageSize int) ([][]graph.NodeID, error) {
	var pages [][]graph.NodeID
	var cur []graph.NodeID
	used := 0
	for _, id := range order {
		s := sizeOf(id)
		if s > pageSize {
			return nil, fmt.Errorf("%w: node %d needs %d bytes, page is %d", ErrNodeTooLarge, id, s, pageSize)
		}
		if used+s > pageSize && len(cur) > 0 {
			pages = append(pages, cur)
			cur = nil
			used = 0
		}
		cur = append(cur, id)
		used += s
	}
	if len(cur) > 0 {
		pages = append(pages, cur)
	}
	return pages, nil
}

// PagesQuality summarizes a page assignment for reports and tests.
type PagesQuality struct {
	Pages       int
	CRR         float64
	WCRR        float64
	MinFill     float64 // fill factor of the emptiest page
	AvgFill     float64
	MaxOverflow int // bytes over pageSize in the fullest page (0 if none)
}

// EvaluatePages computes quality metrics of a page assignment.
func EvaluatePages(g *graph.Network, pages [][]graph.NodeID, sizeOf func(graph.NodeID) int, pageSize int) PagesQuality {
	placement := make(graph.Placement)
	minFill := 1.0
	var fillSum float64
	maxOver := 0
	for i, pg := range pages {
		used := 0
		for _, id := range pg {
			placement[id] = storage.PageID(i)
			used += sizeOf(id)
		}
		fill := float64(used) / float64(pageSize)
		if fill < minFill {
			minFill = fill
		}
		fillSum += fill
		if used > pageSize && used-pageSize > maxOver {
			maxOver = used - pageSize
		}
	}
	q := PagesQuality{
		Pages:       len(pages),
		CRR:         graph.CRR(g, placement),
		WCRR:        graph.WCRR(g, placement),
		MinFill:     minFill,
		MaxOverflow: maxOver,
	}
	if len(pages) > 0 {
		q.AvgFill = fillSum / float64(len(pages))
	}
	return q
}
