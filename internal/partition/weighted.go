// Package partition implements the graph-partitioning heuristics CCAM
// clusters with: Kernighan–Lin two-way swaps, Fiduccia–Mattheyses
// single-node moves with best-prefix reversion, and the Cheng–Wei
// two-way ratio-cut adaptation the paper uses, plus the
// size-constrained top-down ClusterNodesIntoPages procedure of the
// paper's Figure 2 and a greedy M-way refinement pass (the paper's
// optional extension).
package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ccam/internal/graph"
)

// Errors returned by partitioning.
var (
	ErrEmptyGraph   = errors.New("partition: empty graph")
	ErrNodeTooLarge = errors.New("partition: node record larger than page capacity")
	ErrInfeasible   = errors.New("partition: size constraints infeasible")
)

// Weighted is the internal working representation: nodes are dense
// indexes with byte sizes; edges are undirected with accumulated
// weights (a directed pair u→v, v→u collapses into one undirected edge
// whose weight is the sum, since an unsplit edge in either direction
// contributes to CRR/WCRR).
type Weighted struct {
	IDs   []graph.NodeID // dense index -> node id
	Size  []int          // record size per node
	Adj   [][]WEdge      // undirected adjacency
	Total int            // sum of sizes
}

// WEdge is one endpoint's view of an undirected weighted edge.
type WEdge struct {
	To int
	W  float64
}

// BuildWeighted projects a network onto the working representation.
// sizeOf returns the record byte size of each node; uniform weights use
// the network's edge weights as-is (weight 0 edges still connect nodes
// but contribute no gain).
func BuildWeighted(g *graph.Network, sizeOf func(graph.NodeID) int) *Weighted {
	ids := g.NodeIDs()
	index := make(map[graph.NodeID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	w := &Weighted{
		IDs:  ids,
		Size: make([]int, len(ids)),
		Adj:  make([][]WEdge, len(ids)),
	}
	for i, id := range ids {
		w.Size[i] = sizeOf(id)
		w.Total += w.Size[i]
	}
	// Collapse directed edges into undirected accumulated weights.
	acc := make(map[[2]int]float64)
	for _, e := range g.Edges() {
		a, b := index[e.From], index[e.To]
		if a > b {
			a, b = b, a
		}
		acc[[2]int{a, b}] += e.Weight
	}
	for k, wt := range acc {
		w.Adj[k[0]] = append(w.Adj[k[0]], WEdge{To: k[1], W: wt})
		w.Adj[k[1]] = append(w.Adj[k[1]], WEdge{To: k[0], W: wt})
	}
	for i := range w.Adj {
		es := w.Adj[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return w
}

// N returns the number of nodes.
func (w *Weighted) N() int { return len(w.IDs) }

// CutWeight returns the total weight of edges crossing the partition
// expressed as side[i] booleans (false = A, true = B).
func (w *Weighted) CutWeight(side []bool) float64 {
	var cut float64
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if e.To > u && side[u] != side[e.To] {
				cut += e.W
			}
		}
	}
	return cut
}

// sideSizes returns the total byte size of each side.
func (w *Weighted) sideSizes(side []bool) (sa, sb int) {
	for i, s := range side {
		if s {
			sb += w.Size[i]
		} else {
			sa += w.Size[i]
		}
	}
	return sa, sb
}

// seedPartition grows side A from a random start by BFS until it holds
// roughly half the total size; the rest is side B. A connected seed
// matters on road networks: random assignment starts with a terrible
// cut the local search cannot always escape.
func (w *Weighted) seedPartition(rng *rand.Rand) []bool {
	n := w.N()
	side := make([]bool, n)
	for i := range side {
		side[i] = true // everything starts in B
	}
	start := rng.Intn(n)
	target := w.Total / 2
	size := 0
	queue := []int{start}
	side[start] = false
	size += w.Size[start]
	for len(queue) > 0 && size < target {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range w.Adj[cur] {
			if side[e.To] && size < target {
				side[e.To] = false
				size += w.Size[e.To]
				queue = append(queue, e.To)
			}
		}
	}
	// Disconnected leftovers: top up A with arbitrary B nodes if A is
	// still far short (keeps constraints feasible).
	if size < target/2 {
		for i := 0; i < n && size < target; i++ {
			if side[i] {
				side[i] = false
				size += w.Size[i]
			}
		}
	}
	return side
}

// gains computes, for every node, the cut-weight reduction of moving it
// to the other side (external minus internal incident weight).
func (w *Weighted) gains(side []bool) []float64 {
	g := make([]float64, w.N())
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if side[u] != side[e.To] {
				g[u] += e.W
			} else {
				g[u] -= e.W
			}
		}
	}
	return g
}

// split materializes the two sides as node-id slices.
func (w *Weighted) split(side []bool) (a, b []graph.NodeID) {
	for i, s := range side {
		if s {
			b = append(b, w.IDs[i])
		} else {
			a = append(a, w.IDs[i])
		}
	}
	return a, b
}

// indexOf returns the dense index of id. IDs are ascending (BuildWeighted
// sorts them and splitByIDs preserves the order), so a binary search
// suffices; -1 when absent.
func (w *Weighted) indexOf(id graph.NodeID) int {
	i := sort.Search(len(w.IDs), func(i int) bool { return w.IDs[i] >= id })
	if i < len(w.IDs) && w.IDs[i] == id {
		return i
	}
	return -1
}

// splitByIDs materializes the two induced sub-Weighteds of a
// bipartition, remapping dense indexes and filtering adjacency in one
// pass over the parent — no map-based graph.Subnetwork, no repeated
// BuildWeighted, no sizeOf re-scan (Total is carried from the parent's
// sizes). Every node of w must appear in exactly one of a, b; sides may
// be in any order. Ascending-ID order of the parent is preserved in
// both children, so adjacency lists stay sorted and indexOf keeps
// working down the recursion.
func (w *Weighted) splitByIDs(a, b []graph.NodeID) (wa, wb *Weighted, err error) {
	n := w.N()
	if len(a)+len(b) != n {
		return nil, nil, fmt.Errorf("partition: bipartition covers %d of %d nodes", len(a)+len(b), n)
	}
	inB := make([]bool, n)
	for _, id := range b {
		i := w.indexOf(id)
		if i < 0 {
			return nil, nil, fmt.Errorf("partition: bipartition returned foreign node %d", id)
		}
		inB[i] = true
	}
	wa = &Weighted{
		IDs:  make([]graph.NodeID, 0, len(a)),
		Size: make([]int, 0, len(a)),
		Adj:  make([][]WEdge, len(a)),
	}
	wb = &Weighted{
		IDs:  make([]graph.NodeID, 0, len(b)),
		Size: make([]int, 0, len(b)),
		Adj:  make([][]WEdge, len(b)),
	}
	// remap[i] is node i's dense index within its side; assigning in
	// ascending parent order keeps both children's IDs ascending.
	remap := make([]int32, n)
	for i := 0; i < n; i++ {
		side := wa
		if inB[i] {
			side = wb
		}
		remap[i] = int32(len(side.IDs))
		side.IDs = append(side.IDs, w.IDs[i])
		side.Size = append(side.Size, w.Size[i])
		side.Total += w.Size[i]
	}
	if len(wa.IDs) != len(a) {
		return nil, nil, fmt.Errorf("partition: bipartition sides overlap (%d + %d nodes over %d)", len(a), len(b), n)
	}
	for u := 0; u < n; u++ {
		for _, e := range w.Adj[u] {
			if e.To <= u || inB[u] != inB[e.To] {
				continue // cut edge, or the mirror half handles it
			}
			side := wa
			if inB[u] {
				side = wb
			}
			ru, rv := remap[u], remap[e.To]
			side.Adj[ru] = append(side.Adj[ru], WEdge{To: int(rv), W: e.W})
			side.Adj[rv] = append(side.Adj[rv], WEdge{To: int(ru), W: e.W})
		}
	}
	// Parent adjacency is sorted by To, and remap is monotone within a
	// side, so the forward halves are appended in order — but the mirror
	// halves are not; restore the sorted-adjacency invariant.
	for _, side := range []*Weighted{wa, wb} {
		for i := range side.Adj {
			es := side.Adj[i]
			sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
		}
	}
	return wa, wb, nil
}

// Bipartitioner cuts a weighted graph into two sides, each of total
// size at least minSize bytes whenever feasible. Implementations strive
// to minimize the cut weight (maximize CRR/WCRR of the eventual
// placement).
type Bipartitioner interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Bipartition splits w. Both returned sides are non-empty, and each
	// side's byte size is >= minSize when w.Total >= 2*minSize.
	Bipartition(w *Weighted, minSize int, rng *rand.Rand) (a, b []graph.NodeID, err error)
}

// checkFeasible validates common preconditions.
func checkFeasible(w *Weighted, minSize int) error {
	if w.N() == 0 {
		return ErrEmptyGraph
	}
	if w.N() == 1 {
		return fmt.Errorf("%w: single node cannot be bipartitioned", ErrInfeasible)
	}
	return nil
}
