// Package partition implements the graph-partitioning heuristics CCAM
// clusters with: Kernighan–Lin two-way swaps, Fiduccia–Mattheyses
// single-node moves with best-prefix reversion, and the Cheng–Wei
// two-way ratio-cut adaptation the paper uses, plus the
// size-constrained top-down ClusterNodesIntoPages procedure of the
// paper's Figure 2 and a greedy M-way refinement pass (the paper's
// optional extension).
package partition

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ccam/internal/graph"
)

// Errors returned by partitioning.
var (
	ErrEmptyGraph   = errors.New("partition: empty graph")
	ErrNodeTooLarge = errors.New("partition: node record larger than page capacity")
	ErrInfeasible   = errors.New("partition: size constraints infeasible")
)

// Weighted is the internal working representation: nodes are dense
// indexes with byte sizes; edges are undirected with accumulated
// weights (a directed pair u→v, v→u collapses into one undirected edge
// whose weight is the sum, since an unsplit edge in either direction
// contributes to CRR/WCRR).
type Weighted struct {
	IDs   []graph.NodeID // dense index -> node id
	Size  []int          // record size per node
	Adj   [][]WEdge      // undirected adjacency
	Total int            // sum of sizes
}

// WEdge is one endpoint's view of an undirected weighted edge.
type WEdge struct {
	To int
	W  float64
}

// BuildWeighted projects a network onto the working representation.
// sizeOf returns the record byte size of each node; uniform weights use
// the network's edge weights as-is (weight 0 edges still connect nodes
// but contribute no gain).
func BuildWeighted(g *graph.Network, sizeOf func(graph.NodeID) int) *Weighted {
	ids := g.NodeIDs()
	index := make(map[graph.NodeID]int, len(ids))
	for i, id := range ids {
		index[id] = i
	}
	w := &Weighted{
		IDs:  ids,
		Size: make([]int, len(ids)),
		Adj:  make([][]WEdge, len(ids)),
	}
	for i, id := range ids {
		w.Size[i] = sizeOf(id)
		w.Total += w.Size[i]
	}
	// Collapse directed edges into undirected accumulated weights.
	acc := make(map[[2]int]float64)
	for _, e := range g.Edges() {
		a, b := index[e.From], index[e.To]
		if a > b {
			a, b = b, a
		}
		acc[[2]int{a, b}] += e.Weight
	}
	for k, wt := range acc {
		w.Adj[k[0]] = append(w.Adj[k[0]], WEdge{To: k[1], W: wt})
		w.Adj[k[1]] = append(w.Adj[k[1]], WEdge{To: k[0], W: wt})
	}
	for i := range w.Adj {
		es := w.Adj[i]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return w
}

// N returns the number of nodes.
func (w *Weighted) N() int { return len(w.IDs) }

// CutWeight returns the total weight of edges crossing the partition
// expressed as side[i] booleans (false = A, true = B).
func (w *Weighted) CutWeight(side []bool) float64 {
	var cut float64
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if e.To > u && side[u] != side[e.To] {
				cut += e.W
			}
		}
	}
	return cut
}

// sideSizes returns the total byte size of each side.
func (w *Weighted) sideSizes(side []bool) (sa, sb int) {
	for i, s := range side {
		if s {
			sb += w.Size[i]
		} else {
			sa += w.Size[i]
		}
	}
	return sa, sb
}

// seedPartition grows side A from a random start by BFS until it holds
// roughly half the total size; the rest is side B. A connected seed
// matters on road networks: random assignment starts with a terrible
// cut the local search cannot always escape.
func (w *Weighted) seedPartition(rng *rand.Rand) []bool {
	n := w.N()
	side := make([]bool, n)
	for i := range side {
		side[i] = true // everything starts in B
	}
	start := rng.Intn(n)
	target := w.Total / 2
	size := 0
	queue := []int{start}
	side[start] = false
	size += w.Size[start]
	for len(queue) > 0 && size < target {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range w.Adj[cur] {
			if side[e.To] && size < target {
				side[e.To] = false
				size += w.Size[e.To]
				queue = append(queue, e.To)
			}
		}
	}
	// Disconnected leftovers: top up A with arbitrary B nodes if A is
	// still far short (keeps constraints feasible).
	if size < target/2 {
		for i := 0; i < n && size < target; i++ {
			if side[i] {
				side[i] = false
				size += w.Size[i]
			}
		}
	}
	return side
}

// gains computes, for every node, the cut-weight reduction of moving it
// to the other side (external minus internal incident weight).
func (w *Weighted) gains(side []bool) []float64 {
	g := make([]float64, w.N())
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if side[u] != side[e.To] {
				g[u] += e.W
			} else {
				g[u] -= e.W
			}
		}
	}
	return g
}

// split materializes the two sides as node-id slices.
func (w *Weighted) split(side []bool) (a, b []graph.NodeID) {
	for i, s := range side {
		if s {
			b = append(b, w.IDs[i])
		} else {
			a = append(a, w.IDs[i])
		}
	}
	return a, b
}

// Bipartitioner cuts a weighted graph into two sides, each of total
// size at least minSize bytes whenever feasible. Implementations strive
// to minimize the cut weight (maximize CRR/WCRR of the eventual
// placement).
type Bipartitioner interface {
	// Name identifies the heuristic in reports.
	Name() string
	// Bipartition splits w. Both returned sides are non-empty, and each
	// side's byte size is >= minSize when w.Total >= 2*minSize.
	Bipartition(w *Weighted, minSize int, rng *rand.Rand) (a, b []graph.NodeID, err error)
}

// checkFeasible validates common preconditions.
func checkFeasible(w *Weighted, minSize int) error {
	if w.N() == 0 {
		return ErrEmptyGraph
	}
	if w.N() == 1 {
		return fmt.Errorf("%w: single node cannot be bipartitioned", ErrInfeasible)
	}
	return nil
}
