package partition

import (
	"math/rand"
	"testing"

	"ccam/internal/graph"
)

// undirectedWeight sums each undirected edge's weight once.
func undirectedWeight(w *Weighted) float64 {
	var total float64
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if e.To > u {
				total += e.W
			}
		}
	}
	return total
}

func edgeWeightAt(w *Weighted, u, v int) float64 {
	for _, e := range w.Adj[u] {
		if e.To == v {
			return e.W
		}
	}
	return 0
}

func TestCoarsenHEMInvariants(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	rng := rand.New(rand.NewSource(11))
	coarse, toCoarse := coarsenHEM(w, rng)

	if coarse.N() >= w.N() {
		t.Fatalf("coarsening did not shrink: %d -> %d", w.N(), coarse.N())
	}
	if coarse.Total != w.Total {
		t.Fatalf("Total not preserved: %d -> %d", w.Total, coarse.Total)
	}
	// Sizes add up per super-node.
	sizes := make([]int, coarse.N())
	for i, s := range w.Size {
		sizes[toCoarse[i]] += s
	}
	for i, s := range sizes {
		if coarse.Size[i] != s {
			t.Fatalf("super-node %d size = %d, want %d", i, coarse.Size[i], s)
		}
	}
	// Edge weight is preserved minus the contracted (intra-pair) edges.
	var contracted float64
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			if e.To > u && toCoarse[u] == toCoarse[e.To] {
				contracted += e.W
			}
		}
	}
	fine, crs := undirectedWeight(w), undirectedWeight(coarse)
	if diff := fine - contracted - crs; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("edge weight leak: fine %f - contracted %f != coarse %f", fine, contracted, crs)
	}
	// Parallel fine edges must accumulate onto one coarse edge.
	acc := make(map[[2]int]float64)
	for u := range w.Adj {
		for _, e := range w.Adj[u] {
			cu, cv := int(toCoarse[u]), int(toCoarse[e.To])
			if e.To <= u || cu == cv {
				continue
			}
			if cu > cv {
				cu, cv = cv, cu
			}
			acc[[2]int{cu, cv}] += e.W
		}
	}
	for k, want := range acc {
		if got := edgeWeightAt(coarse, k[0], k[1]); got < want-1e-9 || got > want+1e-9 {
			t.Fatalf("coarse edge %v weight = %f, want %f", k, got, want)
		}
	}
	// Adjacency stays sorted and symmetric.
	for u := range coarse.Adj {
		for i, e := range coarse.Adj[u] {
			if i > 0 && coarse.Adj[u][i-1].To >= e.To {
				t.Fatalf("coarse adjacency of %d unsorted", u)
			}
			if back := edgeWeightAt(coarse, e.To, u); back != e.W {
				t.Fatalf("coarse edge %d-%d asymmetric: %f vs %f", u, e.To, e.W, back)
			}
		}
	}
}

func TestMultilevelSeparatesCommunities(t *testing.T) {
	// Two 10x10 grid communities joined by one bridge edge. With
	// CoarsenTo 16 the multilevel path genuinely coarsens (200 nodes >
	// 2*16), and the only sensible ratio cut is the bridge.
	g := graph.NewNetwork()
	community := func(base graph.NodeID) {
		grid := graph.Grid(10, 10)
		for _, id := range grid.NodeIDs() {
			g.AddNode(graph.Node{ID: base + id})
		}
		for _, e := range grid.Edges() {
			g.AddEdge(graph.Edge{From: base + e.From, To: base + e.To, Weight: 1})
		}
	}
	community(0)
	community(1000)
	g.AddEdge(graph.Edge{From: 99, To: 1000, Weight: 1})
	g.AddEdge(graph.Edge{From: 1000, To: 99, Weight: 1})

	w := BuildWeighted(g, unitSize)
	ml := &Multilevel{CoarsenTo: 16}
	a, b, err := ml.Bipartition(w, 10, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a)+len(b) != 200 {
		t.Fatalf("node loss: %d + %d", len(a), len(b))
	}
	inA := map[graph.NodeID]bool{}
	for _, id := range a {
		inA[id] = true
	}
	// The two communities must land on opposite sides (allow the side
	// labels to swap).
	if inA[0] == inA[1000] {
		t.Fatalf("communities not separated: node 0 and 1000 on same side")
	}
	side := make([]bool, w.N())
	for i, id := range w.IDs {
		side[i] = !inA[id]
	}
	if cut := w.CutWeight(side); cut > 2+1e-9 {
		t.Fatalf("multilevel cut = %f, want the bridge (weight 2)", cut)
	}
}

func TestMultilevelQualityParity(t *testing.T) {
	// Satellite: on the Fig. 5 map at block size 1k, multilevel CRR must
	// stay within 0.02 of plain ratio-cut — the speedup must not buy a
	// worse layout.
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	pageSize := 1024
	crr := func(p Bipartitioner) float64 {
		pages, err := ClusterNodesIntoPages(g, size, pageSize, p, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return EvaluatePages(g, pages, size, pageSize).CRR
	}
	rc := crr(&RatioCut{})
	ml := crr(&Multilevel{})
	t.Logf("ratio-cut CRR=%.4f multilevel CRR=%.4f", rc, ml)
	if ml < rc-0.02 {
		t.Fatalf("multilevel CRR %.4f more than 0.02 below ratio-cut %.4f", ml, rc)
	}
}

func TestMultilevelSmallGraphDelegatesToBase(t *testing.T) {
	// At or below minCoarsenable the multilevel partitioner must behave
	// like its base heuristic (identical output for an identical RNG
	// stream).
	g := graph.Grid(4, 4)
	w := BuildWeighted(g, unitSize)
	ml := &Multilevel{}
	a1, b1, err := ml.Bipartition(w, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := (&RatioCut{}).Bipartition(w, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) || len(b1) != len(b2) {
		t.Fatalf("delegation mismatch: %d/%d vs %d/%d", len(a1), len(b1), len(a2), len(b2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("side A differs at %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}
