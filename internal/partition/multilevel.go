package partition

import (
	"container/heap"
	"math/rand"
	"sort"

	"ccam/internal/graph"
)

// Multilevel is a METIS-style multilevel bipartitioner: heavy-edge
// matching contracts the graph level by level until it is small, the
// base heuristic partitions the coarsest graph, and the partition is
// projected back up with an FM-style ratio-cut refinement pass per
// level. On road networks this finds cuts comparable to running
// ratio-cut on the full graph at a fraction of the cost: the expensive
// multi-restart search only ever sees a few dozen super-nodes, and
// refinement on each finer level starts from an already-good cut, so
// it converges in very few moves.
type Multilevel struct {
	// CoarsenTo stops coarsening once the graph has at most this many
	// super-nodes (default 64).
	CoarsenTo int
	// RefinePasses bounds the FM refinement passes per uncoarsening
	// level (default 2).
	RefinePasses int
	// Base partitions the coarsest graph and graphs too small to
	// coarsen. When unset, graphs too small to coarsen get the full
	// multi-restart ratio-cut (nothing refines them afterwards) while
	// the coarsest graph inside the multilevel flow gets a two-restart
	// one: boundary refinement cleans up each level, so further
	// restarts there buy almost nothing.
	Base Bipartitioner
}

// Name implements Bipartitioner.
func (m *Multilevel) Name() string { return "multilevel" }

// minCoarsenable is the graph size below which Bipartition hands the
// whole problem to the base heuristic: a matching on so few nodes
// barely contracts anything, and the base search is cheap there anyway.
const minCoarsenable = 32

func (m *Multilevel) coarsenTo() int {
	if m.CoarsenTo > 0 {
		return m.CoarsenTo
	}
	return 64
}

func (m *Multilevel) refinePasses() int {
	if m.RefinePasses > 0 {
		return m.RefinePasses
	}
	return 2
}

func (m *Multilevel) base() Bipartitioner {
	if m.Base != nil {
		return m.Base
	}
	return &RatioCut{}
}

func (m *Multilevel) coarsestBase() Bipartitioner {
	if m.Base != nil {
		return m.Base
	}
	return &RatioCut{Restarts: 2}
}

// level is one step of the coarsening hierarchy: the graph it produced
// and the mapping from the previous (finer) graph's indexes onto it.
type level struct {
	w        *Weighted
	toCoarse []int32 // finer index -> coarse index
}

// Bipartition implements Bipartitioner.
func (m *Multilevel) Bipartition(w *Weighted, minSize int, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID, error) {
	if err := checkFeasible(w, minSize); err != nil {
		return nil, nil, err
	}
	if w.N() <= minCoarsenable {
		// Too small for coarsening to pay for itself.
		return m.base().Bipartition(w, minSize, rng)
	}
	// On graphs smaller than twice the configured target, still coarsen
	// — just to a proportionally smaller graph. The Fig. 2 recursion
	// spends most of its splits on sub-page-sized fragments, and running
	// the multi-restart base heuristic on each of them would dominate
	// the whole build.
	ct := m.coarsenTo()
	if w.N() <= 2*ct {
		ct = w.N() / 4
		if ct < minCoarsenable/2 {
			ct = minCoarsenable / 2
		}
	}

	// Coarsening phase: contract heavy-edge matchings until the graph is
	// small enough or contraction stalls (matching fails on star-like
	// graphs where everything wants the same partner).
	var levels []level
	cur := w
	for cur.N() > ct {
		coarse, fineToCoarse := coarsenHEM(cur, rng)
		if coarse.N() > (cur.N()*97)/100 {
			break // stalled; refine from here
		}
		levels = append(levels, level{w: coarse, toCoarse: fineToCoarse})
		cur = coarse
	}

	lim := minSize
	if 2*lim > w.Total {
		lim = 0
	}

	// Base partition on the coarsest graph. Coarse IDs are the dense
	// indexes themselves, so the returned id lists map straight back.
	coarsest := w
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].w
	}
	a, _, err := m.coarsestBase().Bipartition(coarsest, lim, rng)
	if err != nil {
		return nil, nil, err
	}
	side := make([]bool, coarsest.N())
	for i := range side {
		side[i] = true
	}
	for _, id := range a {
		side[int(id)] = false
	}

	// Uncoarsening phase: project the side assignment through each
	// level's mapping and refine on the finer graph.
	for li := len(levels) - 1; li >= 0; li-- {
		var fine *Weighted
		if li == 0 {
			fine = w
		} else {
			fine = levels[li-1].w
		}
		fineSide := make([]bool, fine.N())
		for i := range fineSide {
			fineSide[i] = side[levels[li].toCoarse[i]]
		}
		side = fineSide
		for pass := 0; pass < m.refinePasses(); pass++ {
			if !boundaryMovePass(fine, side, lim, scoreRatio) {
				break
			}
		}
	}

	fa, fb := w.split(side)
	if len(fa) == 0 || len(fb) == 0 {
		return peelFallback(w)
	}
	return fa, fb, nil
}

// boundaryMovePass is runMovePass specialized for uncoarsening
// refinement, where the projected partition is already good and almost
// every profitable move touches the cut. The heap is seeded only with
// boundary nodes (interior nodes still enter when a neighbor's move
// drags them to the cut), and the pass gives up after a stall budget of
// consecutive non-improving moves instead of churning through the whole
// graph. Like runMovePass it reverts to the best prefix and reports
// whether the score strictly improved.
func boundaryMovePass(w *Weighted, side []bool, lim int, score scoreFunc) bool {
	n := w.N()
	gains := w.gains(side)
	locked := make([]bool, n)
	sa, sb := w.sideSizes(side)
	cut := w.CutWeight(side)

	h := make(moveHeap, 0, 64)
	for u := 0; u < n; u++ {
		for _, e := range w.Adj[u] {
			if side[e.To] != side[u] {
				h = append(h, moveCand{node: u, gain: gains[u]})
				break
			}
		}
	}
	heap.Init(&h)

	bestScore := score(cut, sa, sb)
	bestPrefix := 0
	var moves []int
	stall := n / 8
	if stall < 64 {
		stall = 64
	}

	for h.Len() > 0 {
		if len(moves)-bestPrefix > stall {
			break
		}
		c := heap.Pop(&h).(moveCand)
		u := c.node
		if locked[u] || c.gain != gains[u] {
			continue // stale entry
		}
		if side[u] {
			if sb-w.Size[u] < lim {
				continue
			}
		} else {
			if sa-w.Size[u] < lim {
				continue
			}
		}
		locked[u] = true
		if side[u] {
			sb -= w.Size[u]
			sa += w.Size[u]
		} else {
			sa -= w.Size[u]
			sb += w.Size[u]
		}
		side[u] = !side[u]
		cut -= gains[u]
		gains[u] = -gains[u]
		for _, e := range w.Adj[u] {
			v := e.To
			if side[v] == side[u] {
				gains[v] -= 2 * e.W
			} else {
				gains[v] += 2 * e.W
			}
			if !locked[v] {
				heap.Push(&h, moveCand{node: v, gain: gains[v]})
			}
		}
		moves = append(moves, u)
		if s := score(cut, sa, sb); s < bestScore-1e-12 {
			bestScore = s
			bestPrefix = len(moves)
		}
	}
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		side[moves[i]] = !side[moves[i]]
	}
	return bestPrefix > 0
}

// coarsenHEM contracts a heavy-edge matching of w: every node pairs
// with its heaviest still-unmatched neighbor (ties broken by lowest
// index; visit order is randomized so repeated calls explore different
// matchings), except when the merged super-node would exceed a quarter
// of the total — oversized super-nodes trap the base partitioner.
// Unmatched nodes carry over alone. The coarse graph's IDs are its own
// dense indexes (0..nc-1): Multilevel never surfaces them, it only
// needs split()'s id lists to index back into `side`. Sizes add up and
// parallel fine edges accumulate, so w.Total and total edge weight
// (minus contracted edges) are preserved.
func coarsenHEM(w *Weighted, rng *rand.Rand) (*Weighted, []int32) {
	n := w.N()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	maxSuper := w.Total / 4
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best := -1
		bestW := -1.0
		for _, e := range w.Adj[u] {
			if match[e.To] >= 0 || e.To == u {
				continue
			}
			if maxSuper > 0 && w.Size[u]+w.Size[e.To] > maxSuper {
				continue
			}
			if e.W > bestW || (e.W == bestW && (best < 0 || e.To < best)) {
				best = e.To
				bestW = e.W
			}
		}
		if best >= 0 {
			match[u] = int32(best)
			match[best] = int32(u)
		} else {
			match[u] = int32(u) // matched with itself
		}
	}

	// Assign coarse indexes in ascending fine order (deterministic given
	// the matching): each pair gets the index at its smaller member.
	fineToCoarse := make([]int32, n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	nc := 0
	for u := 0; u < n; u++ {
		if fineToCoarse[u] >= 0 {
			continue
		}
		fineToCoarse[u] = int32(nc)
		if v := int(match[u]); v != u && match[u] >= 0 {
			fineToCoarse[v] = int32(nc)
		}
		nc++
	}

	coarse := &Weighted{
		IDs:  make([]graph.NodeID, nc),
		Size: make([]int, nc),
		Adj:  make([][]WEdge, nc),
	}
	for i := 0; i < nc; i++ {
		coarse.IDs[i] = graph.NodeID(i)
	}
	for u := 0; u < n; u++ {
		coarse.Size[fineToCoarse[u]] += w.Size[u]
	}
	coarse.Total = w.Total

	// Accumulate each coarse node's adjacency row with a scratch array
	// instead of a shared pair-keyed map: the fine adjacency is
	// symmetric, so visiting every member's full edge list builds both
	// directions of each coarse edge with the same accumulated weight.
	m1 := make([]int32, nc)
	m2 := make([]int32, nc)
	for i := range m1 {
		m1[i], m2[i] = -1, -1
	}
	for u := 0; u < n; u++ {
		c := fineToCoarse[u]
		if m1[c] < 0 {
			m1[c] = int32(u)
		} else {
			m2[c] = int32(u)
		}
	}
	acc := make([]float64, nc)
	seen := make([]bool, nc)
	var touched []int
	for c := 0; c < nc; c++ {
		for _, fu := range [2]int32{m1[c], m2[c]} {
			if fu < 0 {
				continue
			}
			for _, e := range w.Adj[fu] {
				cv := int(fineToCoarse[e.To])
				if cv == c {
					continue // contracted away
				}
				if !seen[cv] {
					seen[cv] = true
					touched = append(touched, cv)
				}
				acc[cv] += e.W
			}
		}
		if len(touched) == 0 {
			continue
		}
		sort.Ints(touched)
		es := make([]WEdge, len(touched))
		for i, cv := range touched {
			es[i] = WEdge{To: cv, W: acc[cv]}
			acc[cv] = 0
			seen[cv] = false
		}
		coarse.Adj[c] = es
		touched = touched[:0]
	}
	return coarse, fineToCoarse
}
