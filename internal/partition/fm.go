package partition

import (
	"container/heap"
	"math/rand"

	"ccam/internal/graph"
)

// FM is the Fiduccia–Mattheyses two-way min-cut heuristic: passes of
// single-node moves in best-gain order with each node moved at most
// once per pass, then reversion to the best prefix. Moves respect two
// size constraints: every side keeps at least minSize bytes and at
// least BalanceFrac of the total (FM without a balance constraint
// degenerates — moving everything to one side zeroes the cut).
type FM struct {
	// MaxPasses bounds the number of improvement passes (default 12).
	MaxPasses int
	// BalanceFrac is the minimum fraction of total size each side must
	// keep (default 0.45, i.e. near-bisection).
	BalanceFrac float64
}

// Name implements Bipartitioner.
func (f *FM) Name() string { return "fm" }

func (f *FM) maxPasses() int {
	if f.MaxPasses > 0 {
		return f.MaxPasses
	}
	return 12
}

func (f *FM) balanceFrac() float64 {
	if f.BalanceFrac > 0 {
		return f.BalanceFrac
	}
	return 0.45
}

// Bipartition implements Bipartitioner.
func (f *FM) Bipartition(w *Weighted, minSize int, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID, error) {
	if err := checkFeasible(w, minSize); err != nil {
		return nil, nil, err
	}
	lim := int(f.balanceFrac() * float64(w.Total))
	if minSize > lim {
		lim = minSize
	}
	// A side limit above half the total is infeasible; relax to what a
	// bisection can achieve minus the largest node.
	if 2*lim > w.Total {
		lim = minSize
	}
	side := w.seedPartition(rng)
	for pass := 0; pass < f.maxPasses(); pass++ {
		improved := runMovePass(w, side, lim, scoreCut)
		if !improved {
			break
		}
	}
	a, b := w.split(side)
	if len(a) == 0 || len(b) == 0 {
		// Degenerate fallback: peel one node off.
		return peelFallback(w)
	}
	return a, b, nil
}

// peelFallback produces a trivial non-empty split when local search
// degenerated (tiny graphs).
func peelFallback(w *Weighted) ([]graph.NodeID, []graph.NodeID, error) {
	return []graph.NodeID{w.IDs[0]}, append([]graph.NodeID(nil), w.IDs[1:]...), nil
}

// scoreFunc evaluates a partition state; lower is better.
type scoreFunc func(cut float64, sa, sb int) float64

// scoreCut is plain min-cut.
func scoreCut(cut float64, sa, sb int) float64 { return cut }

// scoreRatio is the Cheng–Wei ratio-cut objective cut/(|A|·|B|), with
// sizes in bytes. Degenerate sides score +inf-ish.
func scoreRatio(cut float64, sa, sb int) float64 {
	if sa <= 0 || sb <= 0 {
		return 1e300
	}
	return cut / (float64(sa) * float64(sb))
}

// moveCand is a heap entry: a candidate single-node move.
type moveCand struct {
	node int
	gain float64
}

type moveHeap []moveCand

func (h moveHeap) Len() int            { return len(h) }
func (h moveHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h moveHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *moveHeap) Push(x interface{}) { *h = append(*h, x.(moveCand)) }
func (h *moveHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// runMovePass executes one FM-style pass over side in place: nodes move
// at most once, in lazily-maintained best-gain order, subject to the
// per-side minimum byte size lim; afterwards the state reverts to the
// prefix minimizing score. Reports whether the score strictly improved.
func runMovePass(w *Weighted, side []bool, lim int, score scoreFunc) bool {
	n := w.N()
	gains := w.gains(side)
	locked := make([]bool, n)
	sa, sb := w.sideSizes(side)
	cut := w.CutWeight(side)

	h := make(moveHeap, 0, n)
	for u := 0; u < n; u++ {
		h = append(h, moveCand{node: u, gain: gains[u]})
	}
	heap.Init(&h)

	bestScore := score(cut, sa, sb)
	bestPrefix := 0
	var moves []int

	for h.Len() > 0 {
		c := heap.Pop(&h).(moveCand)
		u := c.node
		if locked[u] || c.gain != gains[u] {
			continue // stale entry
		}
		// Feasibility: the source side must not drop below lim.
		if side[u] {
			if sb-w.Size[u] < lim {
				continue
			}
		} else {
			if sa-w.Size[u] < lim {
				continue
			}
		}
		// Apply the move.
		locked[u] = true
		if side[u] {
			sb -= w.Size[u]
			sa += w.Size[u]
		} else {
			sa -= w.Size[u]
			sb += w.Size[u]
		}
		side[u] = !side[u]
		cut -= gains[u]
		gains[u] = -gains[u]
		for _, e := range w.Adj[u] {
			v := e.To
			if side[v] == side[u] {
				gains[v] -= 2 * e.W
			} else {
				gains[v] += 2 * e.W
			}
			if !locked[v] {
				heap.Push(&h, moveCand{node: v, gain: gains[v]})
			}
		}
		moves = append(moves, u)
		if s := score(cut, sa, sb); s < bestScore-1e-12 {
			bestScore = s
			bestPrefix = len(moves)
		}
	}
	// Revert moves beyond the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		u := moves[i]
		side[u] = !side[u]
	}
	return bestPrefix > 0
}
