package partition

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"ccam/internal/graph"
)

func pagesEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestClusterDeterministicAcrossWorkers is the determinism satellite:
// for a fixed seed, the parallel clusterer at 1, 2 and 8 workers must
// produce placements identical to the serial run — exact page-list
// equality, not just equal quality.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	pageSize := 1024
	for _, part := range []Bipartitioner{&RatioCut{}, &Multilevel{}} {
		t.Run(part.Name(), func(t *testing.T) {
			base, err := ClusterNodesIntoPagesOpts(g, size, pageSize, part, ClusterOptions{Workers: 1, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				got, err := ClusterNodesIntoPagesOpts(g, size, pageSize, part, ClusterOptions{Workers: workers, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if !pagesEqual(base, got) {
					t.Fatalf("%d workers diverged from serial: %d vs %d pages", workers, len(got), len(base))
				}
			}
			// A different seed must be allowed to differ (sanity that the
			// equality check has teeth).
			other, err := ClusterNodesIntoPagesOpts(g, size, pageSize, part, ClusterOptions{Workers: 1, Seed: 43})
			if err != nil {
				t.Fatal(err)
			}
			if pagesEqual(base, other) {
				t.Log("seed 42 and 43 coincide (possible but suspicious)")
			}
		})
	}
}

// TestClusterWrapperMatchesOpts pins the compatibility contract: the
// rng-based wrapper is exactly the Workers:1 path seeded by one Int63
// draw.
func TestClusterWrapperMatchesOpts(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	size := func(graph.NodeID) int { return 80 }
	viaWrapper, err := ClusterNodesIntoPages(g, size, 1024, &RatioCut{}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := ClusterNodesIntoPagesOpts(g, size, 1024, &RatioCut{},
		ClusterOptions{Workers: 1, Seed: rand.New(rand.NewSource(7)).Int63()})
	if err != nil {
		t.Fatal(err)
	}
	if !pagesEqual(viaWrapper, viaOpts) {
		t.Fatal("wrapper and Opts paths diverged for the same derived seed")
	}
}

// TestClusterSizeBookkeeping is the size-bookkeeping satellite: sizeOf
// must be consulted exactly once per node — the recursion carries
// subset byte sizes instead of re-scanning them on every frontier pop.
func TestClusterSizeBookkeeping(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	size := func(graph.NodeID) int {
		calls.Add(1)
		return 80
	}
	// Small pages force a deep recursion (~hundreds of frontier pops).
	pages, err := ClusterNodesIntoPagesOpts(g, size, 512, &Multilevel{}, ClusterOptions{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(g.NumNodes()) {
		t.Fatalf("sizeOf called %d times for %d nodes; recursion re-scans sizes", got, g.NumNodes())
	}
	// The carried totals must agree with reality: no page overflows and
	// every node is placed exactly once.
	seen := map[graph.NodeID]bool{}
	for _, pg := range pages {
		bytes := 0
		for _, id := range pg {
			if seen[id] {
				t.Fatalf("node %d placed twice", id)
			}
			seen[id] = true
			bytes += 80
		}
		if bytes > 512 {
			t.Fatalf("page holds %d bytes, page size 512", bytes)
		}
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("placed %d of %d nodes", len(seen), g.NumNodes())
	}
}

// TestSplitByIDs checks the index-remapped sub-Weighted splitter
// against a from-scratch BuildWeighted of each side.
func TestSplitByIDs(t *testing.T) {
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := BuildWeighted(g, unitSize)
	rng := rand.New(rand.NewSource(21))
	side := w.seedPartition(rng)
	a, b := w.split(side)
	wa, wb, err := w.splitByIDs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if wa.N() != len(a) || wb.N() != len(b) {
		t.Fatalf("sizes %d/%d want %d/%d", wa.N(), wb.N(), len(a), len(b))
	}
	if wa.Total+wb.Total != w.Total {
		t.Fatalf("total leak: %d + %d != %d", wa.Total, wb.Total, w.Total)
	}
	// Each side must equal an independent projection of the subgraph.
	for _, tc := range []struct {
		ids  []graph.NodeID
		got  *Weighted
		name string
	}{{a, wa, "A"}, {b, wb, "B"}} {
		keep := map[graph.NodeID]bool{}
		for _, id := range tc.ids {
			keep[id] = true
		}
		want := BuildWeighted(g.Subnetwork(keep), unitSize)
		if tc.got.N() != want.N() || tc.got.Total != want.Total {
			t.Fatalf("side %s shape mismatch", tc.name)
		}
		for i := range want.IDs {
			if tc.got.IDs[i] != want.IDs[i] || tc.got.Size[i] != want.Size[i] {
				t.Fatalf("side %s node %d mismatch", tc.name, i)
			}
			if len(tc.got.Adj[i]) != len(want.Adj[i]) {
				t.Fatalf("side %s adjacency %d: %d edges want %d", tc.name, i, len(tc.got.Adj[i]), len(want.Adj[i]))
			}
			for j, e := range want.Adj[i] {
				ge := tc.got.Adj[i][j]
				if ge.To != e.To || ge.W != e.W {
					t.Fatalf("side %s edge %d/%d mismatch: %+v want %+v", tc.name, i, j, ge, e)
				}
			}
		}
	}
	// Error paths.
	if _, _, err := w.splitByIDs(a[:len(a)-1], b); err == nil {
		t.Fatal("missing node not rejected")
	}
	if _, _, err := w.splitByIDs(append(append([]graph.NodeID{}, a...), b[0]), b); err == nil {
		t.Fatal("overlapping sides not rejected")
	}
	foreign := append(append([]graph.NodeID{}, b[:len(b)-1]...), graph.NodeID(1<<30))
	if _, _, err := w.splitByIDs(a, foreign); err == nil {
		t.Fatal("foreign node not rejected")
	}
}
