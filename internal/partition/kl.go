package partition

import (
	"math/rand"

	"ccam/internal/graph"
)

// KL is the classic Kernighan–Lin two-way heuristic: passes of
// tentative best-gain *pair swaps* (one node from each side), each node
// swapped at most once per pass, then reversion to the best prefix.
// Because swaps exchange nodes, KL preserves the seed partition's size
// balance up to per-node size differences; it serves as the ablation
// baseline the paper cites ([15]).
type KL struct {
	// MaxPasses bounds improvement passes (default 8).
	MaxPasses int
}

// Name implements Bipartitioner.
func (k *KL) Name() string { return "kernighan-lin" }

func (k *KL) maxPasses() int {
	if k.MaxPasses > 0 {
		return k.MaxPasses
	}
	return 8
}

// Bipartition implements Bipartitioner.
func (k *KL) Bipartition(w *Weighted, minSize int, rng *rand.Rand) ([]graph.NodeID, []graph.NodeID, error) {
	if err := checkFeasible(w, minSize); err != nil {
		return nil, nil, err
	}
	side := w.seedPartition(rng)
	for pass := 0; pass < k.maxPasses(); pass++ {
		if !k.pass(w, side, minSize) {
			break
		}
	}
	a, b := w.split(side)
	if len(a) == 0 || len(b) == 0 {
		return peelFallback(w)
	}
	return a, b, nil
}

// edgeWeight returns w(u,v) or 0.
func edgeWeight(w *Weighted, u, v int) float64 {
	for _, e := range w.Adj[u] {
		if e.To == v {
			return e.W
		}
	}
	return 0
}

func (k *KL) pass(w *Weighted, side []bool, minSize int) bool {
	n := w.N()
	gains := w.gains(side)
	locked := make([]bool, n)
	sa, sb := w.sideSizes(side)

	type swap struct{ u, v int }
	var swaps []swap
	cum, best := 0.0, 0.0
	bestPrefix := 0

	for {
		// Select the best feasible (a in A, b in B) pair by combined
		// gain g(a)+g(b)-2w(a,b).
		bu, bv := -1, -1
		bg := 0.0
		for u := 0; u < n; u++ {
			if locked[u] || side[u] {
				continue
			}
			for v := 0; v < n; v++ {
				if locked[v] || !side[v] {
					continue
				}
				g := gains[u] + gains[v] - 2*edgeWeight(w, u, v)
				newSA := sa - w.Size[u] + w.Size[v]
				newSB := sb - w.Size[v] + w.Size[u]
				if newSA < minSize || newSB < minSize {
					continue
				}
				if bu == -1 || g > bg {
					bu, bv, bg = u, v, g
				}
			}
		}
		if bu == -1 {
			break
		}
		// Tentatively apply the swap.
		locked[bu], locked[bv] = true, true
		sa = sa - w.Size[bu] + w.Size[bv]
		sb = sb - w.Size[bv] + w.Size[bu]
		applyMove(w, side, gains, bu)
		applyMove(w, side, gains, bv)
		cum += bg
		swaps = append(swaps, swap{bu, bv})
		if cum > best+1e-12 {
			best = cum
			bestPrefix = len(swaps)
		}
	}
	for i := len(swaps) - 1; i >= bestPrefix; i-- {
		side[swaps[i].u] = !side[swaps[i].u]
		side[swaps[i].v] = !side[swaps[i].v]
	}
	return bestPrefix > 0
}

// applyMove flips node u and updates the gain vector.
func applyMove(w *Weighted, side []bool, gains []float64, u int) {
	side[u] = !side[u]
	gains[u] = -gains[u]
	for _, e := range w.Adj[u] {
		if side[e.To] == side[u] {
			gains[e.To] -= 2 * e.W
		} else {
			gains[e.To] += 2 * e.W
		}
	}
}
