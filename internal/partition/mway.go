package partition

import (
	"sort"

	"ccam/internal/graph"
)

// MWayRefine greedily improves a multi-page assignment after top-down
// clustering, implementing the paper's remark that "M-way partitioning
// may be used to further improve the result of partitioning". Each
// round scans boundary nodes (nodes with a neighbor on another page)
// and applies the single-node page move with the largest positive
// weighted-gain that fits in the destination page; rounds repeat until
// no improving move exists or maxRounds is reached. Returns the refined
// pages and the number of moves applied.
func MWayRefine(g *graph.Network, pages [][]graph.NodeID, sizeOf func(graph.NodeID) int, pageSize, maxRounds int) ([][]graph.NodeID, int) {
	// page index per node and used bytes per page.
	pageOf := make(map[graph.NodeID]int)
	used := make([]int, len(pages))
	out := make([][]graph.NodeID, len(pages))
	for i, pg := range pages {
		out[i] = append([]graph.NodeID(nil), pg...)
		for _, id := range pg {
			pageOf[id] = i
			used[i] += sizeOf(id)
		}
	}
	if maxRounds <= 0 {
		maxRounds = 10
	}

	// connWeight returns, per candidate page, the total weight of edges
	// between x and nodes on that page.
	connWeight := func(x graph.NodeID) map[int]float64 {
		conn := map[int]float64{}
		for _, e := range g.SuccessorEdges(x) {
			conn[pageOf[e.To]] += e.Weight
		}
		for _, p := range g.Predecessors(x) {
			if e, err := g.Edge(p, x); err == nil {
				conn[pageOf[p]] += e.Weight
			}
		}
		return conn
	}

	moves := 0
	for round := 0; round < maxRounds; round++ {
		movedThisRound := 0
		for _, x := range g.NodeIDs() {
			home, ok := pageOf[x]
			if !ok {
				continue
			}
			conn := connWeight(x)
			bestPage, bestGain := -1, 0.0
			for pg, w := range conn {
				if pg == home {
					continue
				}
				gain := w - conn[home]
				if gain > bestGain+1e-12 && used[pg]+sizeOf(x) <= pageSize {
					// Do not empty the home page entirely.
					if len(out[home]) <= 1 {
						continue
					}
					bestPage, bestGain = pg, gain
				}
			}
			if bestPage >= 0 {
				out[home] = removeNodeID(out[home], x)
				out[bestPage] = append(out[bestPage], x)
				used[home] -= sizeOf(x)
				used[bestPage] += sizeOf(x)
				pageOf[x] = bestPage
				movedThisRound++
			}
		}
		moves += movedThisRound
		if movedThisRound == 0 {
			break
		}
	}
	// Drop pages that somehow became empty.
	final := out[:0]
	for _, pg := range out {
		if len(pg) > 0 {
			final = append(final, pg)
		}
	}
	return final, moves
}

func removeNodeID(s []graph.NodeID, id graph.NodeID) []graph.NodeID {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// DFSOrder returns the nodes of g in depth-first order from the given
// start (remaining components appended in id order), optionally
// visiting successors heaviest-edge first (WDFS-AM). This is the
// ordering primitive of the topological baselines.
func DFSOrder(g *graph.Network, start graph.NodeID, weighted bool) []graph.NodeID {
	visited := make(map[graph.NodeID]bool, g.NumNodes())
	var order []graph.NodeID
	var visit func(id graph.NodeID)
	visit = func(id graph.NodeID) {
		if visited[id] {
			return
		}
		visited[id] = true
		order = append(order, id)
		next := g.SuccessorEdges(id)
		if weighted {
			sortEdgesByWeightDesc(next)
		}
		for _, e := range next {
			visit(e.To)
		}
		// Treat the graph as undirected for coverage: predecessors too.
		for _, p := range g.Predecessors(id) {
			visit(p)
		}
	}
	if g.HasNode(start) {
		visit(start)
	}
	for _, id := range g.NodeIDs() {
		visit(id)
	}
	return order
}

// BFSOrder returns the nodes in breadth-first order from start
// (remaining components appended in id order).
func BFSOrder(g *graph.Network, start graph.NodeID) []graph.NodeID {
	visited := make(map[graph.NodeID]bool, g.NumNodes())
	var order []graph.NodeID
	enqueue := func(queue []graph.NodeID, id graph.NodeID) []graph.NodeID {
		if !visited[id] {
			visited[id] = true
			queue = append(queue, id)
		}
		return queue
	}
	run := func(root graph.NodeID) {
		queue := enqueue(nil, root)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, s := range g.Successors(cur) {
				queue = enqueue(queue, s)
			}
			for _, p := range g.Predecessors(cur) {
				queue = enqueue(queue, p)
			}
		}
	}
	if g.HasNode(start) {
		run(start)
	}
	for _, id := range g.NodeIDs() {
		if !visited[id] {
			run(id)
		}
	}
	return order
}

func sortEdgesByWeightDesc(es []graph.Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Weight > es[j-1].Weight; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// CoalescePages greedily merges pairs of pages whose combined contents
// fit in one page, preferring pairs that are adjacent in the page
// access graph (merging connected pages can only help CRR; merging
// unrelated pages never hurts it). Top-down clustering guarantees pages
// at least half full, so coalescing mainly lifts the blocking factor;
// it returns the new page list and the number of merges performed.
func CoalescePages(g *graph.Network, pages [][]graph.NodeID, sizeOf func(graph.NodeID) int, pageSize, maxRounds int) ([][]graph.NodeID, int) {
	out := make([][]graph.NodeID, len(pages))
	used := make([]int, len(pages))
	pageOf := map[graph.NodeID]int{}
	for i, pg := range pages {
		out[i] = append([]graph.NodeID(nil), pg...)
		for _, id := range pg {
			used[i] += sizeOf(id)
			pageOf[id] = i
		}
	}
	if maxRounds <= 0 {
		maxRounds = 10
	}
	merges := 0
	for round := 0; round < maxRounds; round++ {
		// Weight of edges between each pair of pages.
		conn := map[[2]int]float64{}
		for _, e := range g.Edges() {
			a, aok := pageOf[e.From]
			b, bok := pageOf[e.To]
			if !aok || !bok || a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			conn[[2]int{a, b}] += e.Weight
		}
		// Candidate merges, most-connected first; pages merge at most
		// once per round.
		type cand struct {
			a, b int
			w    float64
		}
		var cands []cand
		for k, w := range conn {
			if len(out[k[0]]) == 0 || len(out[k[1]]) == 0 {
				continue
			}
			if used[k[0]]+used[k[1]] <= pageSize {
				cands = append(cands, cand{k[0], k[1], w})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].w != cands[j].w {
				return cands[i].w > cands[j].w
			}
			if cands[i].a != cands[j].a {
				return cands[i].a < cands[j].a
			}
			return cands[i].b < cands[j].b
		})
		mergedThisRound := 0
		taken := map[int]bool{}
		for _, c := range cands {
			if taken[c.a] || taken[c.b] {
				continue
			}
			if used[c.a]+used[c.b] > pageSize {
				continue
			}
			for _, id := range out[c.b] {
				pageOf[id] = c.a
			}
			out[c.a] = append(out[c.a], out[c.b]...)
			used[c.a] += used[c.b]
			out[c.b] = nil
			used[c.b] = 0
			taken[c.a], taken[c.b] = true, true
			mergedThisRound++
		}
		merges += mergedThisRound
		if mergedThisRound == 0 {
			break
		}
	}
	final := make([][]graph.NodeID, 0, len(out))
	for _, pg := range out {
		if len(pg) > 0 {
			final = append(final, pg)
		}
	}
	return final, merges
}
