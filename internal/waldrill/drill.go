// Package waldrill runs the write-ahead-log crash drill end to end:
// it builds a file-backed WAL store, applies a seeded stream of
// transactional batches, then simulates a crash at every WAL record
// boundary (and, optionally, torn mid-record) by truncating a copy of
// the log there, reopens each copy, and asserts the recovered store
// holds exactly the committed prefix of the stream — no lost committed
// mutations, no phantom ones — and that the recovered file and log
// pass the offline checks behind ccam-fsck.
//
// The drill is the repository's standing recovery proof: wal_test.go
// runs a model-diffing variant in-process, and cmd/ccam-fsck -drill
// (the CI smoke step) runs this package with a fixed seed.
package waldrill

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"ccam"
	"ccam/internal/storage"
)

// Config parameterizes a drill run.
type Config struct {
	// Seed drives the road map, the batch stream and every random
	// choice; equal seeds give identical drills.
	Seed int64
	// Ops is the minimum number of mutation operations in the batch
	// stream (default 60; the stream stops at the first batch boundary
	// past it).
	Ops int
	// Rows, Cols shape the synthetic road map (default 8x8).
	Rows, Cols int
	// Torn adds a mid-record cut between every pair of adjacent record
	// boundaries, exercising the torn-tail truncation path on top of
	// the clean-boundary crashes.
	Torn bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Result summarizes a completed drill.
type Result struct {
	// Ops and Batches measure the committed mutation stream.
	Ops, Batches int
	// Records is the number of WAL records the stream left in the log.
	Records int
	// CrashPoints is the number of distinct crash points verified.
	CrashPoints int
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// model mirrors the store's logical contents: node -> successor ->
// cost. The drill keeps it in lock-step with the applied batches and
// fingerprints it after each commit.
type model map[ccam.NodeID]map[ccam.NodeID]float32

// fingerprint hashes a store's logical contents in a canonical order,
// so two stores agree iff their node/successor/cost contents agree.
func fingerprint(s *ccam.Store) (uint64, error) {
	return fingerprintScan(s.Scan)
}

// fingerprintScan is fingerprint over any scannable read view — the
// live store or an LSN-pinned snapshot.
func fingerprintScan(scan func(func(*ccam.Record) bool) error) (uint64, error) {
	type succ struct {
		to   ccam.NodeID
		cost float32
	}
	lines := make(map[ccam.NodeID][]succ)
	ids := make([]ccam.NodeID, 0, 128)
	err := scan(func(rec *ccam.Record) bool {
		ss := make([]succ, len(rec.Succs))
		for i, sc := range rec.Succs {
			ss[i] = succ{sc.To, sc.Cost}
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].to < ss[j].to })
		lines[rec.ID] = ss
		ids = append(ids, rec.ID)
		return true
	})
	if err != nil {
		return 0, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := fnv.New64a()
	for _, id := range ids {
		fmt.Fprintf(h, "%d:", id)
		for _, sc := range lines[id] {
			fmt.Fprintf(h, "%d=%g,", sc.to, sc.cost)
		}
		fmt.Fprint(h, ";")
	}
	return h.Sum64(), nil
}

// sortedIDs returns the model's node ids in ascending order, for
// deterministic rng picks.
func (m model) sortedIDs() []ccam.NodeID {
	out := make([]ccam.NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pickSucc returns the pick-th successor of from in ascending order.
func (m model) pickSucc(from ccam.NodeID, pick int) ccam.NodeID {
	tos := make([]ccam.NodeID, 0, len(m[from]))
	for to := range m[from] {
		tos = append(tos, to)
	}
	sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	return tos[pick]
}

// genBatch builds one valid batch of 1..3 ops against the model and
// applies its effects to the model.
func genBatch(rng *rand.Rand, m model, nextID *ccam.NodeID) (*ccam.Batch, int) {
	b := new(ccam.Batch)
	ops := 0
	want := 1 + rng.Intn(3)
	for ops < want {
		ids := m.sortedIDs()
		if len(ids) < 4 {
			break
		}
		switch k := rng.Intn(10); {
		case k < 5: // set-edge-cost
			from := ids[rng.Intn(len(ids))]
			if len(m[from]) == 0 {
				continue
			}
			to := m.pickSucc(from, rng.Intn(len(m[from])))
			cost := float32(1 + rng.Intn(100))
			b.SetEdgeCost(from, to, cost)
			m[from][to] = cost
		case k < 7: // insert-edge
			from := ids[rng.Intn(len(ids))]
			to := ids[rng.Intn(len(ids))]
			if from == to {
				continue
			}
			if _, dup := m[from][to]; dup {
				continue
			}
			cost := float32(1 + rng.Intn(100))
			b.InsertEdge(from, to, cost, ccam.FirstOrder)
			m[from][to] = cost
		case k < 8: // delete-edge
			from := ids[rng.Intn(len(ids))]
			if len(m[from]) == 0 {
				continue
			}
			to := m.pickSucc(from, rng.Intn(len(m[from])))
			b.DeleteEdge(from, to, ccam.FirstOrder)
			delete(m[from], to)
		case k < 9: // insert-node with one successor and one predecessor
			succ := ids[rng.Intn(len(ids))]
			pred := ids[rng.Intn(len(ids))]
			id := *nextID
			*nextID++
			rec := &ccam.Record{
				ID:    id,
				Pos:   ccam.Point{X: float64(rng.Intn(100)), Y: float64(rng.Intn(100))},
				Succs: []ccam.SuccEntry{{To: succ, Cost: float32(1 + rng.Intn(50))}},
				Preds: []ccam.NodeID{pred},
			}
			predCost := float32(1 + rng.Intn(50))
			b.Insert(&ccam.InsertOp{Rec: rec, PredCosts: []float32{predCost}}, ccam.FirstOrder)
			m[id] = map[ccam.NodeID]float32{succ: rec.Succs[0].Cost}
			m[pred][id] = predCost
		default: // delete-node
			id := ids[rng.Intn(len(ids))]
			b.Delete(id, ccam.FirstOrder)
			delete(m, id)
			for _, succs := range m {
				delete(succs, id)
			}
		}
		ops++
	}
	return b, ops
}

// Run executes the drill in dir (which must exist and be writable) and
// returns once every crash point has been verified. Any divergence —
// a lost committed mutation, a phantom one, or an offline check
// failure on a recovered file — is an error naming the crash point.
func Run(dir string, cfg Config) (Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 60
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 8
	}
	if cfg.Cols <= 0 {
		cfg.Cols = 8
	}
	var res Result

	mapOpts := ccam.MinneapolisLikeOpts()
	mapOpts.Rows, mapOpts.Cols = cfg.Rows, cfg.Cols
	mapOpts.Seed = cfg.Seed
	g, err := ccam.RoadMap(mapOpts)
	if err != nil {
		return res, err
	}
	path := filepath.Join(dir, "net.ccam")
	s, err := ccam.Open(ccam.Options{
		PageSize: 1024, Path: path, WAL: true, Seed: cfg.Seed,
		// One fsync per commit keeps the drill deterministic, and a
		// huge checkpoint bound pins the data file at its post-Build
		// image so every crash point shares one data snapshot.
		SyncPolicy: ccam.SyncEveryCommit, CheckpointBytes: 1 << 40,
	})
	if err != nil {
		return res, err
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		return res, err
	}

	m := make(model)
	for _, id := range g.NodeIDs() {
		m[id] = make(map[ccam.NodeID]float32)
	}
	for _, e := range g.Edges() {
		m[e.From][e.To] = float32(e.Cost)
	}

	// prints[i] is the expected fingerprint with the first i batches
	// committed.
	fp, err := fingerprint(s)
	if err != nil {
		return res, err
	}
	prints := []uint64{fp}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nextID := ccam.NodeID(1_000_000)
	for res.Ops < cfg.Ops {
		b, ops := genBatch(rng, m, &nextID)
		if ops == 0 {
			continue
		}
		if err := s.Apply(context.Background(), b); err != nil {
			return res, fmt.Errorf("apply batch %d: %w", res.Batches, err)
		}
		res.Batches++
		res.Ops += ops
		fp, err := fingerprint(s)
		if err != nil {
			return res, err
		}
		prints = append(prints, fp)
	}
	cfg.logf("drill: %d ops in %d batches over a %dx%d map", res.Ops, res.Batches, cfg.Rows, cfg.Cols)

	// Snapshot the crash image while the store is open: under no-steal
	// with no intervening checkpoint the data file still holds the
	// post-Build image at every crash point, and the log holds every
	// appended record (Close would checkpoint and prune).
	walDir := storage.WALDir(path)
	segs, err := os.ReadDir(walDir)
	if err != nil {
		return res, err
	}
	if len(segs) != 1 {
		return res, fmt.Errorf("drill expects the stream to fit one WAL segment, got %d (lower Config.Ops)", len(segs))
	}
	segName := segs[0].Name()
	segData, err := os.ReadFile(filepath.Join(walDir, segName))
	if err != nil {
		return res, err
	}
	dataImage, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	recs, torn, err := storage.ScanWALDir(walDir)
	if err != nil {
		return res, err
	}
	if torn {
		return res, fmt.Errorf("live log scanned as torn")
	}
	ends := storage.WALRecordEnds(segData)
	if len(ends) != len(recs) {
		return res, fmt.Errorf("%d record ends vs %d scanned records", len(ends), len(recs))
	}
	res.Records = len(recs)
	if err := s.Close(); err != nil {
		return res, err
	}

	// commitsAt[k] = committed batches among the first k records.
	commitsAt := make([]int, len(recs)+1)
	for i, r := range recs {
		commitsAt[i+1] = commitsAt[i]
		if r.Type == storage.WALRecCommit {
			commitsAt[i+1]++
		}
	}
	if commitsAt[len(recs)] != res.Batches {
		return res, fmt.Errorf("log holds %d commits, stream had %d batches", commitsAt[len(recs)], res.Batches)
	}

	// Crash points below the Build checkpoint are unreachable: the
	// checkpoint-end record was fsynced before the first batch touched
	// the file, so no later crash can lose it — and the data image may
	// carry allocator noise (pages split off mid-stream) that only
	// checkpoint-based recovery erases. The drill therefore cuts from
	// the checkpoint-end record onward.
	first := -1
	for i, r := range recs {
		if r.Type == storage.WALRecCheckpointEnd {
			first = i + 1
			break
		}
	}
	if first < 0 {
		return res, fmt.Errorf("log holds no Build checkpoint")
	}

	// boundary k = the log truncated after its first k records
	// (walSegmentHeader bytes when k = 0).
	boundary := func(k int) int64 {
		if k == 0 {
			return storage.WALSegmentHeaderLen
		}
		return ends[k-1]
	}
	crash := func(cut int64, survivors int, label string) error {
		cdir := filepath.Join(dir, "crash")
		cpath := filepath.Join(cdir, "net.ccam")
		if err := os.MkdirAll(storage.WALDir(cpath), 0o755); err != nil {
			return err
		}
		defer os.RemoveAll(cdir)
		if err := os.WriteFile(cpath, dataImage, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(storage.WALDir(cpath), segName), segData[:cut], 0o644); err != nil {
			return err
		}
		r, err := ccam.OpenPath(cpath, ccam.Options{})
		if err != nil {
			return fmt.Errorf("%s: reopen: %w", label, err)
		}
		got, err := fingerprint(r)
		if err != nil {
			r.Close()
			return fmt.Errorf("%s: %w", label, err)
		}
		if want := prints[commitsAt[survivors]]; got != want {
			r.Close()
			return fmt.Errorf("%s: recovered state diverges from the %d-batch committed prefix",
				label, commitsAt[survivors])
		}
		// The recovered MVCC read path must agree too: a snapshot
		// pinned right after recovery resolves to exactly the same
		// committed prefix — redo never installs page versions above
		// the recovered commit LSN.
		snap, err := r.Snapshot()
		if err != nil {
			r.Close()
			return fmt.Errorf("%s: snapshot after recovery: %w", label, err)
		}
		sgot, err := fingerprintScan(snap.Scan)
		snap.Close()
		if err != nil {
			r.Close()
			return fmt.Errorf("%s: snapshot scan: %w", label, err)
		}
		if sgot != prints[commitsAt[survivors]] {
			r.Close()
			return fmt.Errorf("%s: recovered snapshot diverges from the %d-batch committed prefix",
				label, commitsAt[survivors])
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("%s: close: %w", label, err)
		}
		rep, err := storage.CheckFile(cpath, storage.FsckOptions{})
		if err != nil {
			return fmt.Errorf("%s: fsck: %w", label, err)
		}
		if !rep.OK() {
			return fmt.Errorf("%s: fsck not clean: header=%v freelist=%v damaged=%v",
				label, rep.HeaderErr, rep.FreeListErr, rep.Damaged)
		}
		wrep, err := storage.CheckWALDir(storage.WALDir(cpath))
		if err != nil {
			return fmt.Errorf("%s: wal check: %w", label, err)
		}
		if wrep.Err != nil {
			return fmt.Errorf("%s: wal check: %v", label, wrep.Err)
		}
		res.CrashPoints++
		return nil
	}

	for k := first; k <= len(ends); k++ {
		if err := crash(boundary(k), k, fmt.Sprintf("boundary %d/%d", k, len(ends))); err != nil {
			return res, err
		}
		if cfg.Torn && k < len(ends) {
			lo, hi := boundary(k), boundary(k+1)
			if hi-lo > 1 {
				// A cut inside record k+1 tears it; recovery must
				// truncate the torn tail and land on the same prefix as
				// boundary k.
				if err := crash(lo+(hi-lo)/2, k, fmt.Sprintf("torn %d/%d", k+1, len(ends))); err != nil {
					return res, err
				}
			}
		}
	}
	cfg.logf("drill: %d crash points recovered to the exact committed prefix", res.CrashPoints)
	return res, nil
}
