package waldrill

import "testing"

func TestDrillSmall(t *testing.T) {
	res, err := Run(t.TempDir(), Config{Seed: 11, Ops: 12, Torn: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 12 || res.Batches == 0 {
		t.Fatalf("stream too short: %+v", res)
	}
	// Every record boundary plus the empty log, plus torn cuts.
	if res.CrashPoints <= res.Records {
		t.Fatalf("crash points %d should exceed record count %d (torn cuts)", res.CrashPoints, res.Records)
	}
}

// TestDrill500OpStream is the full-scale recovery proof: a 500-op
// batch stream, a crash at every WAL record boundary plus a torn
// mid-record cut between each pair, and ccam-fsck-clean recovery to
// the exact committed prefix at all of them.
func TestDrill500OpStream(t *testing.T) {
	if testing.Short() {
		t.Skip("500-op drill is ~10s; covered in short mode by TestDrillSmall")
	}
	res, err := Run(t.TempDir(), Config{Seed: 11, Ops: 500, Torn: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 500 {
		t.Fatalf("stream too short: %+v", res)
	}
}

func TestDrillDeterministic(t *testing.T) {
	a, err := Run(t.TempDir(), Config{Seed: 5, Ops: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(t.TempDir(), Config{Seed: 5, Ops: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
