package netfile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ccam/internal/btree"
	"ccam/internal/buffer"
	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/rtree"
	"ccam/internal/storage"
)

// SpatialKind selects the secondary spatial index structure. The paper
// uses a B+-tree over the Z-order of each node's coordinates and notes
// that "other access methods such as R-tree and Grid File etc. can
// alternatively be created on top of the data file as secondary
// indices".
type SpatialKind int

// Spatial index kinds.
const (
	// SpatialZOrder is a B+-tree keyed by the Z-order (Morton code) of
	// the node position, scanned with BIGMIN jumps — the paper's
	// default.
	SpatialZOrder SpatialKind = iota
	// SpatialRTree is Guttman's R-tree with quadratic splits.
	SpatialRTree
)

// String implements fmt.Stringer.
func (k SpatialKind) String() string {
	switch k {
	case SpatialZOrder:
		return "zorder"
	case SpatialRTree:
		return "rtree"
	default:
		return fmt.Sprintf("spatial(%d)", int(k))
	}
}

// spatialIndex abstracts the memory-resident secondary spatial index:
// point entries (node position → node id) with range and k-nearest
// search. The data page of a result is resolved through the node
// index.
type spatialIndex interface {
	put(p geom.Point, id graph.NodeID) error
	remove(p geom.Point, id graph.NodeID) error
	// search visits ids of entries inside rect; fn returning false
	// stops early.
	search(rect geom.Rect, fn func(id graph.NodeID) bool) error
	// bulkLoad populates an empty index with all entries at once;
	// structures without a bulk path fall back to per-entry put.
	bulkLoad(entries []spatialEntry) error
}

// spatialEntry is one point record for bulkLoad.
type spatialEntry struct {
	pos geom.Point
	id  graph.NodeID
}

func newSpatialIndex(kind SpatialKind, quant geom.Quantizer) (spatialIndex, error) {
	switch kind {
	case SpatialZOrder:
		st := storage.NewMemStore(4096)
		pool := buffer.NewPool(st, 4096)
		tree, err := btree.New(pool)
		if err != nil {
			return nil, fmt.Errorf("netfile: create z-order index: %w", err)
		}
		return &zorderIndex{tree: tree, quant: quant}, nil
	case SpatialRTree:
		return &rtreeIndex{tree: rtree.New(16)}, nil
	default:
		return nil, fmt.Errorf("netfile: unknown spatial index kind %d", kind)
	}
}

// SpatialIndexKind reports which secondary spatial index structure the
// file carries (SpatialZOrder or SpatialRTree). The query planner uses
// it to name the window access path it is costing.
func (f *File) SpatialIndexKind() SpatialKind {
	if _, ok := f.spatial.(*rtreeIndex); ok {
		return SpatialRTree
	}
	return SpatialZOrder
}

// SpatialCandidates visits the node ids the spatial index yields as
// candidates for rect, exactly as RangeQuery would, but without
// fetching any record — the probe touches only the memory-resident
// index, so it costs no data-page I/O. Candidates can be false
// positives (the Z-order index matches at quantized-cell granularity);
// RangeQuery filters them after the record fetch, which is why a
// window query's data-page cost is the page count of the candidates,
// not of the true matches. fn returning false stops the probe early.
func (f *File) SpatialCandidates(rect geom.Rect, fn func(id graph.NodeID) bool) error {
	f.spatMu.RLock()
	defer f.spatMu.RUnlock()
	return f.spatial.search(rect, fn)
}

// --- Z-order implementation (the paper's secondary index) ---

type zorderIndex struct {
	tree  *btree.Tree
	quant geom.Quantizer
}

// key builds the index key: a 32-bit Z-order value in the high half (so
// keys sort by Z) with the node id as tiebreak in the low half.
func (z *zorderIndex) key(p geom.Point, id graph.NodeID) uint64 {
	ix, iy := z.quant.Grid(p)
	z32 := geom.Interleave(ix>>15, iy>>15) // 16 bits per axis
	return z32<<32 | uint64(id)
}

func (z *zorderIndex) put(p geom.Point, id graph.NodeID) error {
	return z.tree.Put(z.key(p, id), uint64(id))
}

func (z *zorderIndex) remove(p geom.Point, id graph.NodeID) error {
	err := z.tree.Delete(z.key(p, id))
	if errors.Is(err, btree.ErrKeyNotFound) {
		return fmt.Errorf("%w: spatial entry for %d", ErrNotFound, id)
	}
	return err
}

// bulkLoad builds the Z-order B+-tree bottom-up from the sorted key
// run. Keys are unique even for co-located points because the node id
// occupies the low 32 bits.
func (z *zorderIndex) bulkLoad(entries []spatialEntry) error {
	bes := make([]btree.Entry, len(entries))
	for i, e := range entries {
		bes[i] = btree.Entry{Key: z.key(e.pos, e.id), Val: uint64(e.id)}
	}
	sort.Slice(bes, func(i, j int) bool { return bes[i].Key < bes[j].Key })
	return z.tree.BulkLoad(bes)
}

func (z *zorderIndex) search(rect geom.Rect, fn func(graph.NodeID) bool) error {
	loX, loY := z.quant.Grid(rect.Min)
	hiX, hiY := z.quant.Grid(rect.Max)
	lo32 := geom.Interleave(loX>>15, loY>>15)
	hi32 := geom.Interleave(hiX>>15, hiY>>15)
	it := z.tree.Seek(lo32 << 32)
	for it.Next() {
		key := it.Key()
		if key > hi32<<32|0xffffffff {
			break
		}
		z32 := key >> 32
		if !geom.InZRect(z32, lo32, hi32) {
			nz, ok := geom.BigMin(z32, lo32, hi32)
			if !ok {
				break
			}
			it = z.tree.Seek(nz << 32)
			continue
		}
		if !fn(graph.NodeID(key & 0xffffffff)) {
			return it.Err()
		}
	}
	return it.Err()
}

// --- R-tree implementation ---

type rtreeIndex struct {
	tree *rtree.Tree
}

func (r *rtreeIndex) put(p geom.Point, id graph.NodeID) error {
	// Upsert semantics: drop a stale entry for the same (point, id) so
	// reorganization's re-puts stay idempotent.
	_ = r.tree.Delete(p, uint64(id))
	r.tree.Insert(p, uint64(id))
	return nil
}

func (r *rtreeIndex) remove(p geom.Point, id graph.NodeID) error {
	if err := r.tree.Delete(p, uint64(id)); err != nil {
		return fmt.Errorf("%w: spatial entry for %d", ErrNotFound, id)
	}
	return nil
}

// bulkLoad has no bottom-up path for the R-tree; it falls back to
// per-entry inserts.
func (r *rtreeIndex) bulkLoad(entries []spatialEntry) error {
	for _, e := range entries {
		if err := r.put(e.pos, e.id); err != nil {
			return err
		}
	}
	return nil
}

func (r *rtreeIndex) search(rect geom.Rect, fn func(graph.NodeID) bool) error {
	r.tree.Search(rect, func(_ geom.Point, ref uint64) bool {
		return fn(graph.NodeID(ref))
	})
	return nil
}

// nearestExact returns the k nearest node ids via branch-and-bound.
func (r *rtreeIndex) nearestExact(p geom.Point, k int) []graph.NodeID {
	nn := r.tree.Nearest(p, k)
	out := make([]graph.NodeID, len(nn))
	for i, n := range nn {
		out[i] = graph.NodeID(n.Ref)
	}
	return out
}

// sortByDistance orders records by true Euclidean distance from p.
func sortByDistance(recs []*Record, p geom.Point) {
	sort.Slice(recs, func(i, j int) bool {
		di := math.Hypot(recs[i].Pos.X-p.X, recs[i].Pos.Y-p.Y)
		dj := math.Hypot(recs[j].Pos.X-p.X, recs[j].Pos.Y-p.Y)
		if di != dj {
			return di < dj
		}
		return recs[i].ID < recs[j].ID
	})
}
