package netfile

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/partition"
	"ccam/internal/storage"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	r := &Record{
		ID:    42,
		Pos:   geom.Point{X: 1.5, Y: -2.25},
		Attrs: []byte("road-attrs"),
		Succs: []SuccEntry{{To: 7, Cost: 3.5}, {To: 9, Cost: 0.25}},
		Preds: []graph.NodeID{7, 11, 13},
	}
	enc := EncodeRecord(r)
	if len(enc) != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), r.EncodedSize())
	}
	got, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", r, got)
	}
	id, err := RecordID(enc)
	if err != nil || id != 42 {
		t.Fatalf("RecordID = %d, %v", id, err)
	}
}

func TestRecordCodecProperty(t *testing.T) {
	f := func(id uint32, x, y float64, attrs []byte, nSucc, nPred uint8) bool {
		r := &Record{ID: graph.NodeID(id), Pos: geom.Point{X: x, Y: y}}
		if len(attrs) > 1000 {
			attrs = attrs[:1000]
		}
		if len(attrs) > 0 {
			r.Attrs = attrs
		}
		for i := 0; i < int(nSucc%40); i++ {
			r.Succs = append(r.Succs, SuccEntry{To: graph.NodeID(i), Cost: float32(i) * 1.5})
		}
		for i := 0; i < int(nPred%40); i++ {
			r.Preds = append(r.Preds, graph.NodeID(i*3))
		}
		got, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(r, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := DecodeRecord([]byte{1, 2, 3}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("short buf = %v", err)
	}
	r := &Record{ID: 1, Succs: []SuccEntry{{To: 2, Cost: 1}}}
	enc := EncodeRecord(r)
	if _, err := DecodeRecord(enc[:len(enc)-2]); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("truncated = %v", err)
	}
	if _, err := RecordID([]byte{1}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("RecordID short = %v", err)
	}
}

func TestRecordMutators(t *testing.T) {
	r := &Record{ID: 1}
	r.AddSucc(2, 5)
	r.AddSucc(3, 6)
	r.AddPred(4)
	if !r.HasSucc(2) || r.HasSucc(9) {
		t.Fatal("HasSucc wrong")
	}
	if !r.RemoveSucc(2) || r.RemoveSucc(2) {
		t.Fatal("RemoveSucc wrong")
	}
	if !r.RemovePred(4) || r.RemovePred(4) {
		t.Fatal("RemovePred wrong")
	}
	r.AddPred(3)
	nb := r.Neighbors()
	if len(nb) != 1 || nb[0] != 3 {
		t.Fatalf("Neighbors = %v (succ and pred 3 must dedup)", nb)
	}
	c := r.Clone()
	c.AddSucc(99, 1)
	if r.HasSucc(99) {
		t.Fatal("Clone is shallow")
	}
}

func testNetwork(t *testing.T) *graph.Network {
	t.Helper()
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildFile bulk-loads g into a file using connectivity clustering.
func buildFile(t *testing.T, g *graph.Network, pageSize, poolPages int) *File {
	t.Helper()
	f, err := Create(Options{PageSize: pageSize, PoolPages: poolPages, Bounds: g.Bounds()})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := partition.ClusterNodesIntoPages(g, StoredSizer(g), PageBudget(pageSize), &partition.RatioCut{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, pages); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBulkLoadAndFind(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	if f.NumNodes() != g.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", f.NumNodes(), g.NumNodes())
	}
	for _, id := range g.NodeIDs()[:50] {
		rec, err := f.Find(id)
		if err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
		if rec.ID != id {
			t.Fatalf("Find(%d) returned %d", id, rec.ID)
		}
		want := g.Successors(id)
		if len(rec.Succs) != len(want) {
			t.Fatalf("node %d: %d succs, want %d", id, len(rec.Succs), len(want))
		}
		if len(rec.Preds) != len(g.Predecessors(id)) {
			t.Fatalf("node %d pred count mismatch", id)
		}
	}
	if _, err := f.Find(999999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Find missing = %v", err)
	}
}

func TestPlacementMatchesPages(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	p := f.Placement()
	if err := graph.ValidatePlacement(g, p); err != nil {
		t.Fatal(err)
	}
	// Cross-check with NodesOnPage.
	for _, pid := range f.Pages() {
		ids, err := f.NodesOnPage(pid)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if p[id] != pid {
				t.Fatalf("placement says %d on %d, page scan says %d", id, p[id], pid)
			}
		}
	}
	crr := graph.CRR(g, p)
	if crr < 0.5 {
		t.Fatalf("bulk-loaded CRR = %f, implausibly low", crr)
	}
}

func TestGetSuccessorsIOMatchesCRRModel(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	crr := graph.CRR(g, f.Placement())

	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(2))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	sample := ids[:len(ids)/2]

	var totalReads, totalSuccs int64
	for _, id := range sample {
		if err := f.ResetIO(); err != nil {
			t.Fatal(err)
		}
		// Warm the page of id: the cost model assumes it is in memory.
		if _, err := f.Find(id); err != nil {
			t.Fatal(err)
		}
		base := f.DataIO().Reads
		succs, err := f.GetSuccessors(id)
		if err != nil {
			t.Fatal(err)
		}
		totalReads += f.DataIO().Reads - base
		totalSuccs += int64(len(succs))
	}
	actual := float64(totalReads) / float64(len(sample))
	predicted := (1 - crr) * g.AvgSuccessors()
	// The model is approximate (succ pages can coincide); actual must
	// be at or below the prediction and in its neighborhood.
	if actual > predicted*1.1+0.05 {
		t.Fatalf("Get-successors cost %.3f far above model %.3f", actual, predicted)
	}
	if actual < predicted*0.3 {
		t.Fatalf("Get-successors cost %.3f suspiciously below model %.3f", actual, predicted)
	}
	t.Logf("CRR=%.4f actual=%.3f predicted=%.3f", crr, actual, predicted)
}

func TestEvaluateRoute(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 2048, 1) // one-page buffer, as in the paper
	rng := rand.New(rand.NewSource(3))
	routes, err := graph.RandomWalkRoutes(g, 20, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routes {
		agg, err := f.EvaluateRoute(r)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Nodes != 10 {
			t.Fatalf("Nodes = %d", agg.Nodes)
		}
		if agg.TotalCost <= 0 || agg.MinCost <= 0 || agg.MaxCost < agg.MinCost {
			t.Fatalf("implausible aggregate %+v", agg)
		}
	}
	// Invalid routes are rejected.
	if _, err := f.EvaluateRoute(graph.Route{}); err == nil {
		t.Fatal("empty route accepted")
	}
	bad := graph.Route{routes[0][0], routes[0][0]} // self hop
	if _, err := f.EvaluateRoute(bad); err == nil {
		t.Fatal("non-edge hop accepted")
	}
}

func TestRouteIOWithOnePageBuffer(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 2048, 1)
	crr := graph.CRR(g, f.Placement())
	rng := rand.New(rand.NewSource(4))
	routes, err := graph.RandomWalkRoutes(g, 100, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	var reads int64
	for _, r := range routes {
		if err := f.ResetIO(); err != nil {
			t.Fatal(err)
		}
		if _, err := f.EvaluateRoute(r); err != nil {
			t.Fatal(err)
		}
		reads += f.DataIO().Reads
	}
	actual := float64(reads) / float64(len(routes))
	predicted := 1 + float64(20-1)*(1-crr)
	if actual > predicted*1.25 {
		t.Fatalf("route I/O %.2f far above model %.2f", actual, predicted)
	}
	t.Logf("route I/O actual=%.2f predicted=%.2f (CRR=%.3f)", actual, predicted, crr)
}

func TestInsertDeleteRecordAndNeighborLinks(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)

	// Remove a node from the file as if Delete() ran, then re-insert.
	victim := g.NodeIDs()[10]
	rec, err := f.DeleteRecord(victim)
	if err != nil {
		t.Fatal(err)
	}
	if f.Has(victim) {
		t.Fatal("record still indexed after delete")
	}
	if err := f.RemoveNeighborLinks(rec); err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Succs {
		sr, err := f.Find(s.To)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range sr.Preds {
			if p == victim {
				t.Fatalf("succ %d still lists %d as pred", s.To, victim)
			}
		}
	}

	// Re-insert on the page with most neighbors.
	op := &InsertOp{Rec: rec, PredCosts: make([]float32, len(rec.Preds))}
	pid, ok, err := f.SelectPageWithMostNeighbors(rec.Neighbors(), rec.EncodedSize())
	if err != nil || !ok {
		t.Fatalf("page selection: %v ok=%v", err, ok)
	}
	if err := f.InsertRecordAt(rec, pid); err != nil {
		t.Fatal(err)
	}
	if err := f.UpdateNeighborLinks(op, nil); err != nil {
		t.Fatal(err)
	}
	got, err := f.Find(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Succs) != len(rec.Succs) {
		t.Fatal("succ list lost in round trip")
	}
	for _, s := range rec.Succs {
		sr, err := f.Find(s.To)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range sr.Preds {
			if p == victim {
				found = true
			}
		}
		if !found {
			t.Fatalf("succ %d does not list re-inserted %d", s.To, victim)
		}
	}
	// Duplicate insert rejected.
	if err := f.InsertRecordAt(rec, pid); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup insert = %v", err)
	}
}

func TestMoveRecord(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)
	id := g.NodeIDs()[5]
	src, err := f.PageOf(id)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := f.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.MoveRecord(id, dst); err != nil {
		t.Fatal(err)
	}
	now, err := f.PageOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if now != dst || now == src {
		t.Fatalf("PageOf = %d, want %d", now, dst)
	}
	rec, err := f.Find(id)
	if err != nil || rec.ID != id {
		t.Fatalf("Find after move: %v", err)
	}
}

func TestRangeQuery(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)
	bounds := g.Bounds()
	rect := geom.NewRect(
		geom.Point{X: bounds.Min.X + bounds.Width()*0.2, Y: bounds.Min.Y + bounds.Height()*0.2},
		geom.Point{X: bounds.Min.X + bounds.Width()*0.5, Y: bounds.Min.Y + bounds.Height()*0.5},
	)
	got, err := f.RangeQuery(rect)
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.NodeID]bool{}
	for _, id := range g.NodeIDs() {
		n, _ := g.Node(id)
		if rect.Contains(n.Pos) {
			want[id] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("range query returned %d records, want %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.ID] {
			t.Fatalf("unexpected node %d in range result", r.ID)
		}
	}
	// Whole-map query returns everything.
	all, err := f.RangeQuery(bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != g.NumNodes() {
		t.Fatalf("whole-map query = %d, want %d", len(all), g.NumNodes())
	}
}

func TestOverflowHandlerRetries(t *testing.T) {
	// A tiny file with one nearly full page: adding links must trigger
	// the overflow handler, which splits by moving half elsewhere.
	f, err := Create(Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := f.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	// Fill the page with records carrying fat attrs.
	var ids []graph.NodeID
	for i := graph.NodeID(1); ; i++ {
		rec := &Record{ID: i, Attrs: make([]byte, 50)}
		if err := f.InsertRecordAt(rec, pid); err != nil {
			if errors.Is(err, storage.ErrPageFull) {
				break
			}
			t.Fatal(err)
		}
		ids = append(ids, i)
	}
	if len(ids) < 3 {
		t.Fatalf("setup produced %d records", len(ids))
	}
	called := false
	split := func(over storage.PageID) error {
		called = true
		newPid, err := f.AllocatePage()
		if err != nil {
			return err
		}
		nodes, err := f.NodesOnPage(over)
		if err != nil {
			return err
		}
		for _, id := range nodes[:len(nodes)/2] {
			if err := f.MoveRecord(id, newPid); err != nil {
				return err
			}
		}
		return nil
	}
	// New node 100 with every existing node as successor: each gains a
	// pred entry, overflowing the full page.
	newRec := &Record{ID: 100}
	for _, id := range ids {
		newRec.AddSucc(id, 1)
	}
	op := &InsertOp{Rec: newRec}
	if err := f.UpdateNeighborLinks(op, split); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("overflow handler never invoked")
	}
	for _, id := range ids {
		r, err := f.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Preds) != 1 || r.Preds[0] != 100 {
			t.Fatalf("node %d preds = %v", id, r.Preds)
		}
	}
}

func TestInsertOpFromNodeAndValidate(t *testing.T) {
	g := testNetwork(t)
	id := g.NodeIDs()[0]
	op, err := InsertOpFromNode(g, id)
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(op.PredCosts) != len(op.Rec.Preds) {
		t.Fatal("pred costs misaligned")
	}
	bad := &InsertOp{Rec: &Record{ID: 1, Preds: []graph.NodeID{2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("misaligned op validated")
	}
	if err := (&InsertOp{}).Validate(); err == nil {
		t.Fatal("nil record validated")
	}
}

func TestPolicyString(t *testing.T) {
	if FirstOrder.String() != "first-order" || SecondOrder.String() != "second-order" ||
		HigherOrder.String() != "higher-order" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy has empty name")
	}
}
