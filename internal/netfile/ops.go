package netfile

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// Find retrieves the record of the given node id: the secondary index
// locates the data page, which is fetched through the buffer pool.
// (Paper §2.3.)
func (f *File) Find(id graph.NodeID) (*Record, error) {
	return f.FindCtx(context.Background(), id)
}

// GetASuccessor retrieves the record of succ, a successor of cur. The
// buffered data page containing cur is searched first — when the CRR
// is high the successor is likely co-located, so no physical I/O
// occurs; otherwise a Find is needed. cur may be nil, in which case the
// successor constraint is not checked. (Paper §2.3.)
func (f *File) GetASuccessor(cur *Record, succ graph.NodeID) (*Record, error) {
	if cur != nil && !cur.HasSucc(succ) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNotSuccessor, succ, cur.ID)
	}
	// The index lookup is free (memory-resident); fetching the page
	// through the pool costs a physical read only when it is not
	// buffered, which reproduces the paper's "search buffer first, then
	// Find" protocol exactly.
	at := f.tracer.Start("get-a-successor")
	rec, err := f.readRecordTraced(succ, at)
	at.Finish(err)
	return rec, err
}

// GetSuccessors retrieves the records of all successors of node id.
// All successors stored on pages already in the buffer pool (including
// the page of id itself, fetched first) are extracted without further
// I/O. (Paper §2.3.)
func (f *File) GetSuccessors(id graph.NodeID) ([]*Record, error) {
	return f.GetSuccessorsCtx(context.Background(), id)
}

// RouteAggregate is the result of a route evaluation query.
type RouteAggregate struct {
	Nodes     int     // L, the number of nodes on the route
	TotalCost float64 // sum of edge costs (e.g. travel time)
	MinCost   float64 // cheapest hop
	MaxCost   float64 // most expensive hop
}

// EvaluateRoute computes the aggregate property of a route as a Find on
// the first node followed by a sequence of Get-A-successor operations
// (paper §2.3, "Route Evaluation"). The route must follow directed
// edges.
func (f *File) EvaluateRoute(route graph.Route) (RouteAggregate, error) {
	return f.EvaluateRouteCtx(context.Background(), route)
}

// RangeQuery returns the records of every node whose position lies in
// rect, through the secondary spatial index (a Z-order scan with BIGMIN
// jumps by default, or an R-tree search; paper §2.1).
func (f *File) RangeQuery(rect geom.Rect) ([]*Record, error) {
	return f.RangeQueryCtx(context.Background(), rect)
}

// RangeQueryCtx is RangeQuery with cooperative cancellation: ctx is
// checked before each candidate record fetch, so a canceled context
// stops the index scan without paying for the remaining page reads.
func (f *File) RangeQueryCtx(ctx context.Context, rect geom.Rect) ([]*Record, error) {
	at := f.tracer.StartCtx(ctx, "range-query")
	out, err := f.rangeQueryCtx(ctx, rect, at)
	at.Finish(err)
	return out, err
}

func (f *File) rangeQueryCtx(ctx context.Context, rect geom.Rect, at *metrics.ActiveTrace) ([]*Record, error) {
	var out []*Record
	var ferr error
	err := f.spatial.search(rect, func(id graph.NodeID) bool {
		if ferr = ctx.Err(); ferr != nil {
			return false
		}
		rec, err := f.readRecordTraced(id, at)
		if err != nil {
			ferr = err
			return false
		}
		if rect.Contains(rec.Pos) {
			out = append(out, rec)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// Nearest returns the k stored records closest to p by Euclidean
// distance, nearest first. With an R-tree spatial index the search is
// branch-and-bound; with the Z-order index it runs expanding-window
// searches, verifying the result radius so the answer is exact.
func (f *File) Nearest(p geom.Point, k int) ([]*Record, error) {
	if k <= 0 || f.NumNodes() == 0 {
		return nil, nil
	}
	if k > f.NumNodes() {
		k = f.NumNodes()
	}
	if rt, ok := f.spatial.(*rtreeIndex); ok {
		ids := rt.nearestExact(p, k)
		out := make([]*Record, 0, len(ids))
		for _, id := range ids {
			rec, err := f.ReadRecord(id)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		return out, nil
	}
	// Generic expanding-window search over the range interface.
	b := f.quant.Bounds()
	r := (b.Width() + b.Height()) / 128
	if r <= 0 {
		r = 1
	}
	collect := func(radius float64) ([]*Record, error) {
		window := geom.NewRect(
			geom.Point{X: p.X - radius, Y: p.Y - radius},
			geom.Point{X: p.X + radius, Y: p.Y + radius},
		)
		return f.RangeQuery(window)
	}
	for {
		recs, err := collect(r)
		if err != nil {
			return nil, err
		}
		covers := r >= b.Width()+b.Height() // window certainly spans the map
		if len(recs) >= k || covers {
			sortByDistance(recs, p)
			if len(recs) > k {
				recs = recs[:k]
			}
			worst := math.Hypot(recs[len(recs)-1].Pos.X-p.X, recs[len(recs)-1].Pos.Y-p.Y)
			if covers || worst <= r {
				return recs, nil
			}
			// Re-search with the verified radius: every point within
			// `worst` now lies inside the window.
			final, err := collect(worst)
			if err != nil {
				return nil, err
			}
			sortByDistance(final, p)
			if len(final) > k {
				final = final[:k]
			}
			return final, nil
		}
		r *= 2
	}
}

// InsertOp describes a node insertion: the new record (whose Preds
// field lists predecessor ids) plus the cost of each predecessor edge
// pred[i] -> new node.
type InsertOp struct {
	Rec       *Record
	PredCosts []float32
}

// Validate checks internal consistency of the operation.
func (op *InsertOp) Validate() error {
	if op.Rec == nil {
		return fmt.Errorf("netfile: nil record in insert")
	}
	if len(op.PredCosts) != len(op.Rec.Preds) {
		return fmt.Errorf("netfile: %d pred costs for %d preds", len(op.PredCosts), len(op.Rec.Preds))
	}
	return nil
}

// InsertOpFromNode builds the InsertOp that would re-insert node id of
// g with all its current edges.
func InsertOpFromNode(g *graph.Network, id graph.NodeID) (*InsertOp, error) {
	rec, err := RecordFromNode(g, id)
	if err != nil {
		return nil, err
	}
	op := &InsertOp{Rec: rec, PredCosts: make([]float32, len(rec.Preds))}
	for i, p := range rec.Preds {
		e, err := g.Edge(p, id)
		if err != nil {
			return nil, err
		}
		op.PredCosts[i] = float32(e.Cost)
	}
	return op, nil
}

// OverflowHandler splits an overflowing data page; access methods
// supply their own (CCAM re-clusters, sequential methods split in
// half). After it returns nil the triggering update is retried.
type OverflowHandler func(pid storage.PageID) error

// UpdateNeighborLinks adds the new node to its neighbors' lists: each
// successor gains a predecessor entry, each predecessor gains a
// successor entry ("update succ-list and pred-list of neighbors(x)",
// paper Fig. 3). Growth that overflows a neighbor's page invokes
// onOverflow and retries.
func (f *File) UpdateNeighborLinks(op *InsertOp, onOverflow OverflowHandler) error {
	x := op.Rec.ID
	for _, s := range op.Rec.Succs {
		if err := f.mutateRecord(s.To, onOverflow, func(r *Record) {
			r.AddPred(x)
		}); err != nil {
			return fmt.Errorf("netfile: link succ %d: %w", s.To, err)
		}
	}
	for i, p := range op.Rec.Preds {
		cost := op.PredCosts[i]
		if err := f.mutateRecord(p, onOverflow, func(r *Record) {
			r.AddSucc(x, cost)
		}); err != nil {
			return fmt.Errorf("netfile: link pred %d: %w", p, err)
		}
	}
	return nil
}

// RemoveNeighborLinks strips node x from its neighbors' lists (paper
// Fig. 4). Records only shrink, so no overflow can occur.
func (f *File) RemoveNeighborLinks(rec *Record) error {
	x := rec.ID
	for _, s := range rec.Succs {
		if err := f.mutateRecord(s.To, nil, func(r *Record) {
			r.RemovePred(x)
		}); err != nil {
			return fmt.Errorf("netfile: unlink succ %d: %w", s.To, err)
		}
	}
	for _, p := range rec.Preds {
		if err := f.mutateRecord(p, nil, func(r *Record) {
			r.RemoveSucc(x)
		}); err != nil {
			return fmt.Errorf("netfile: unlink pred %d: %w", p, err)
		}
	}
	return nil
}

// mutateRecord reads, mutates and rewrites node id's record, retrying
// once after onOverflow splits the page.
func (f *File) mutateRecord(id graph.NodeID, onOverflow OverflowHandler, mutate func(*Record)) error {
	for attempt := 0; ; attempt++ {
		rec, err := f.ReadRecord(id)
		if err != nil {
			return err
		}
		mutate(rec)
		err = f.UpdateRecord(rec)
		if err == nil {
			return nil
		}
		if !errors.Is(err, storage.ErrPageFull) || onOverflow == nil || attempt > 0 {
			return err
		}
		pid, perr := f.PageOf(id)
		if perr != nil {
			return perr
		}
		if err := onOverflow(pid); err != nil {
			return fmt.Errorf("netfile: overflow split of page %d: %w", pid, err)
		}
	}
}

// SelectPageWithMostNeighbors ranks the candidate pages by how many of
// x's neighbors they hold and returns the best page that can still
// accommodate need bytes (the paper's insert page selection). ok is
// false when no candidate fits.
func (f *File) SelectPageWithMostNeighbors(neighbors []graph.NodeID, need int) (storage.PageID, bool, error) {
	counts := map[storage.PageID]int{}
	for _, nb := range neighbors {
		pid, err := f.PageOf(nb)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return storage.InvalidPageID, false, err
		}
		counts[pid]++
	}
	// Deterministic order: best count, then lowest page id.
	best := storage.InvalidPageID
	bestCount := -1
	for pid, c := range counts {
		if c > bestCount || (c == bestCount && pid < best) {
			// Space check via the memory-resident free-space map.
			free, err := f.FreeSpace(pid)
			if err != nil {
				return storage.InvalidPageID, false, err
			}
			if free >= need {
				best, bestCount = pid, c
			}
		}
	}
	if bestCount < 0 {
		return storage.InvalidPageID, false, nil
	}
	return best, true, nil
}

// PagesOfNeighbors returns the distinct pages of the given nodes, in
// ascending order (PagesOfNbrs(x) of paper Definition 2, computed from
// the index).
func (f *File) PagesOfNeighbors(neighbors []graph.NodeID) ([]storage.PageID, error) {
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, nb := range neighbors {
		pid, err := f.PageOf(nb)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return nil, err
		}
		if !seen[pid] {
			seen[pid] = true
			out = append(out, pid)
		}
	}
	sortPageIDs(out)
	return out, nil
}

func sortPageIDs(s []storage.PageID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// AddEdgeRecords applies a new edge (u, v, cost) to the stored records:
// u's successor-list gains (v, cost) and v's predecessor-list gains u.
// Growth that overflows a page invokes onOverflow and retries.
func (f *File) AddEdgeRecords(u, v graph.NodeID, cost float32, onOverflow OverflowHandler) error {
	if u == v {
		return fmt.Errorf("%w: %d", graph.ErrSelfLoop, u)
	}
	dup := false
	if err := f.mutateRecord(u, onOverflow, func(r *Record) {
		if r.HasSucc(v) {
			dup = true
			return
		}
		r.AddSucc(v, cost)
	}); err != nil {
		return fmt.Errorf("netfile: add edge %d->%d: %w", u, v, err)
	}
	if dup {
		return fmt.Errorf("%w: %d->%d", graph.ErrEdgeExists, u, v)
	}
	if err := f.mutateRecord(v, onOverflow, func(r *Record) {
		r.AddPred(u)
	}); err != nil {
		return fmt.Errorf("netfile: add edge %d->%d: %w", u, v, err)
	}
	return nil
}

// RemoveEdgeRecords deletes edge (u, v) from the stored records.
func (f *File) RemoveEdgeRecords(u, v graph.NodeID) error {
	missing := false
	if err := f.mutateRecord(u, nil, func(r *Record) {
		if !r.RemoveSucc(v) {
			missing = true
		}
	}); err != nil {
		return fmt.Errorf("netfile: remove edge %d->%d: %w", u, v, err)
	}
	if missing {
		return fmt.Errorf("%w: %d->%d", graph.ErrEdgeMissing, u, v)
	}
	if err := f.mutateRecord(v, nil, func(r *Record) {
		r.RemovePred(u)
	}); err != nil {
		return fmt.Errorf("netfile: remove edge %d->%d: %w", u, v, err)
	}
	return nil
}

// SetEdgeCost updates the stored cost of edge (u, v) — the frequent
// IVHS operation of refreshing current travel time on a road segment.
// The record size is unchanged, so exactly one page is touched.
func (f *File) SetEdgeCost(u, v graph.NodeID, cost float32) error {
	found := false
	if err := f.mutateRecord(u, nil, func(r *Record) {
		for i := range r.Succs {
			if r.Succs[i].To == v {
				r.Succs[i].Cost = cost
				found = true
				return
			}
		}
	}); err != nil {
		return fmt.Errorf("netfile: set edge cost %d->%d: %w", u, v, err)
	}
	if !found {
		return fmt.Errorf("%w: %d->%d", graph.ErrEdgeMissing, u, v)
	}
	return nil
}

// RouteUnitAggregate is the result of an aggregate query over a
// route-unit — a named collection of arcs with common characteristics
// (paper §1.1: bus routes, pipeline segments). Processing "may require
// the retrieval of all nodes and all edges in the specified route-units
// to derive aggregate properties".
type RouteUnitAggregate struct {
	Name      string
	Edges     int
	Nodes     int // distinct nodes touched by the unit
	TotalCost float64
	MinCost   float64
	MaxCost   float64
}

// EvaluateRouteUnit retrieves every node record of the route-unit and
// aggregates its member edges' costs. Members are directed edges
// (from, to); each must exist. Connectivity clustering makes this cheap
// because a route-unit's nodes form connected chains.
func (f *File) EvaluateRouteUnit(name string, members [][2]graph.NodeID) (RouteUnitAggregate, error) {
	if len(members) == 0 {
		return RouteUnitAggregate{}, fmt.Errorf("%w: route-unit %q has no members", graph.ErrInvalidRoute, name)
	}
	agg := RouteUnitAggregate{Name: name}
	recs := map[graph.NodeID]*Record{}
	fetch := func(id graph.NodeID) (*Record, error) {
		if r, ok := recs[id]; ok {
			return r, nil
		}
		r, err := f.ReadRecord(id)
		if err != nil {
			return nil, err
		}
		recs[id] = r
		return r, nil
	}
	for _, m := range members {
		from, err := fetch(m[0])
		if err != nil {
			return RouteUnitAggregate{}, fmt.Errorf("netfile: route-unit %q: %w", name, err)
		}
		if _, err := fetch(m[1]); err != nil {
			return RouteUnitAggregate{}, fmt.Errorf("netfile: route-unit %q: %w", name, err)
		}
		var cost float64
		found := false
		for _, s := range from.Succs {
			if s.To == m[1] {
				cost = float64(s.Cost)
				found = true
				break
			}
		}
		if !found {
			return RouteUnitAggregate{}, fmt.Errorf("%w: route-unit %q member %d->%d is not an edge",
				graph.ErrInvalidRoute, name, m[0], m[1])
		}
		agg.Edges++
		agg.TotalCost += cost
		if agg.Edges == 1 || cost < agg.MinCost {
			agg.MinCost = cost
		}
		if cost > agg.MaxCost {
			agg.MaxCost = cost
		}
	}
	agg.Nodes = len(recs)
	return agg, nil
}
