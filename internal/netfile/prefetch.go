package netfile

import (
	"sort"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// pagHintFanout bounds how many PAG-adjacent pages are recorded per
// data page. CCAM's clustering keeps most successors on the same page,
// so the handful of pages holding the rest of a page's neighborhood
// covers almost all cross-page traversals; a short list also bounds
// the speculative I/O a single demand miss can trigger.
const pagHintFanout = 5

// rebuildPAGHints computes, for every data page, its most-connected
// PAG neighbors: the pages holding the successors and predecessors of
// the page's records, ranked by cross-page edge count. The hints are
// recorded at build/open time — the paper deliberately never
// materializes the full PAG (§2.4); this keeps only a constant-fanout
// digest of it for prefetching. Caller must hold the file's exclusive
// context (build, open).
func (f *File) rebuildPAGHints(recsByPage map[storage.PageID][]*Record) {
	placement := make(map[graph.NodeID]storage.PageID)
	for pid, recs := range recsByPage {
		for _, r := range recs {
			placement[r.ID] = pid
		}
	}
	hints := make(map[storage.PageID][]storage.PageID, len(recsByPage))
	counts := make(map[storage.PageID]int)
	for pid, recs := range recsByPage {
		for k := range counts {
			delete(counts, k)
		}
		for _, r := range recs {
			for _, s := range r.Succs {
				if q, ok := placement[s.To]; ok && q != pid {
					counts[q]++
				}
			}
			for _, p := range r.Preds {
				if q, ok := placement[p]; ok && q != pid {
					counts[q]++
				}
			}
		}
		if len(counts) == 0 {
			continue
		}
		nbrs := make([]storage.PageID, 0, len(counts))
		for q := range counts {
			nbrs = append(nbrs, q)
		}
		sort.Slice(nbrs, func(i, j int) bool {
			if counts[nbrs[i]] != counts[nbrs[j]] {
				return counts[nbrs[i]] > counts[nbrs[j]]
			}
			return nbrs[i] < nbrs[j]
		})
		if len(nbrs) > pagHintFanout {
			nbrs = nbrs[:pagHintFanout]
		}
		hints[pid] = nbrs
	}
	f.hintMu.Lock()
	f.pagHints = hints
	f.hintMu.Unlock()
}

// PrefetchHints returns a two-level PAG frontier around pid, best
// first, filtered down to pages still live: the pages recorded as
// pid's most-connected neighbors, then each neighbor's own best
// neighbor. The second level is what lets the prefetcher stay ahead of
// a route: a traversal crosses one PAG edge per page run, so
// distance-1 hints issued when a page is first used are always one
// disk read behind the walker — the distance-2 ring overlaps that
// read with the next one. It is the pool's adjacency callback: it
// runs on the fetching goroutine — including lock-free snapshot
// readers — so the hint and page maps are read under hintMu against
// the serialized mutations that rewrite them. Pages mutated since the
// last build have no hints (mutations invalidate them) — a cold
// answer, never a wrong one.
func (f *File) PrefetchHints(pid storage.PageID) []storage.PageID {
	f.hintMu.RLock()
	defer f.hintMu.RUnlock()
	hs := f.pagHints[pid]
	if len(hs) == 0 {
		return nil
	}
	out := make([]storage.PageID, 0, 2*len(hs))
	seen := map[storage.PageID]bool{pid: true}
	add := func(q storage.PageID) {
		if !seen[q] && f.pages[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	for _, q := range hs {
		add(q)
	}
	for _, q := range hs {
		for _, q2 := range f.pagHints[q] {
			add(q2)
			break // top-1 per neighbor keeps the frontier constant-fanout
		}
	}
	return out
}

// invalidatePAGHints drops pid's recorded neighbors after a mutation
// touched the page. Hints on other pages that mention pid stay: a
// stale hint costs at most one wasted speculative read of a live page
// (PrefetchHints filters freed ones), and mutations must stay O(1) in
// the hint structure.
func (f *File) invalidatePAGHints(pid storage.PageID) {
	f.hintMu.Lock()
	if f.pagHints != nil {
		delete(f.pagHints, pid)
	}
	f.hintMu.Unlock()
}

// RefreshPAGHints recomputes the prefetch digest for exactly the given
// pages against the current placement, restoring hints that mutations
// dropped — the background reorganizer calls it for each neighborhood
// it re-clusters, so incremental reorganization also repairs prefetch
// coverage without a full rebuild. Unknown or freed pages are skipped.
func (f *File) RefreshPAGHints(pids []storage.PageID) error {
	recsByPage := make(map[storage.PageID][]*Record, len(pids))
	for _, pid := range pids {
		f.hintMu.RLock()
		live := f.pages[pid]
		f.hintMu.RUnlock()
		if !live {
			continue
		}
		recs, err := f.RecordsOnPage(pid)
		if err != nil {
			return err
		}
		recsByPage[pid] = recs
	}
	if len(recsByPage) == 0 {
		return nil
	}
	// Rank each page's cross-page neighbors exactly as rebuildPAGHints
	// does, but resolve placements through the node index (the full
	// placement map is not at hand for an incremental refresh).
	counts := make(map[storage.PageID]int)
	for pid, recs := range recsByPage {
		for k := range counts {
			delete(counts, k)
		}
		for _, r := range recs {
			for _, s := range r.Succs {
				if q, err := f.PageOf(s.To); err == nil && q != pid {
					counts[q]++
				}
			}
			for _, p := range r.Preds {
				if q, err := f.PageOf(p); err == nil && q != pid {
					counts[q]++
				}
			}
		}
		if len(counts) == 0 {
			continue
		}
		nbrs := make([]storage.PageID, 0, len(counts))
		for q := range counts {
			nbrs = append(nbrs, q)
		}
		sort.Slice(nbrs, func(i, j int) bool {
			if counts[nbrs[i]] != counts[nbrs[j]] {
				return counts[nbrs[i]] > counts[nbrs[j]]
			}
			return nbrs[i] < nbrs[j]
		})
		if len(nbrs) > pagHintFanout {
			nbrs = nbrs[:pagHintFanout]
		}
		f.hintMu.Lock()
		f.pagHints[pid] = nbrs
		f.hintMu.Unlock()
	}
	return nil
}
