package netfile

import (
	"encoding/binary"
	"fmt"
	"math"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// This file gives the data file its write-ahead-log integration: the
// logical mutation codec (what batch records contain), deferred page
// frees, and the checkpoint that makes the no-steal/redo-only recovery
// protocol work (see internal/storage/wal.go for the protocol).

// MutKind tags a logical mutation record.
type MutKind uint8

const (
	// MutInsertNode inserts a full node record (with the costs of its
	// incoming edges, so neighbor links can be rebuilt).
	MutInsertNode MutKind = iota + 1
	// MutDeleteNode removes a node and its incident edge entries.
	MutDeleteNode
	// MutInsertEdge adds edge from→to with a cost.
	MutInsertEdge
	// MutDeleteEdge removes edge from→to.
	MutDeleteEdge
	// MutSetEdgeCost updates the cost of edge from→to.
	MutSetEdgeCost
	// MutSplitPage records a reorganization split of one page. Replay
	// skips it: re-executing the surrounding logical mutations
	// re-triggers the reorganization policies.
	MutSplitPage
	// MutMergePages records a reorganization merge. Replay skips it,
	// like MutSplitPage.
	MutMergePages
)

func (k MutKind) String() string {
	switch k {
	case MutInsertNode:
		return "insert-node"
	case MutDeleteNode:
		return "delete-node"
	case MutInsertEdge:
		return "insert-edge"
	case MutDeleteEdge:
		return "delete-edge"
	case MutSetEdgeCost:
		return "set-edge-cost"
	case MutSplitPage:
		return "split-page"
	case MutMergePages:
		return "merge-pages"
	default:
		return fmt.Sprintf("MutKind(%d)", int(k))
	}
}

// Mutation is one logical mutation, the unit batch records are made
// of. Only the fields of the given kind are meaningful.
type Mutation struct {
	Kind MutKind
	// Rec and PredCosts describe MutInsertNode: the record to insert
	// and the costs of the incoming edges listed in Rec.Preds
	// (parallel slices).
	Rec       *Record
	PredCosts []float32
	// ID is the node of MutDeleteNode.
	ID graph.NodeID
	// From, To, Cost describe the edge mutations.
	From, To graph.NodeID
	Cost     float32
	// Page is the page of MutSplitPage.
	Page storage.PageID
	// Pages are the pages of MutMergePages.
	Pages []storage.PageID
}

// EncodeMutation serializes a mutation for a WAL record payload.
func EncodeMutation(m *Mutation) ([]byte, error) {
	switch m.Kind {
	case MutInsertNode:
		if m.Rec == nil || len(m.PredCosts) != len(m.Rec.Preds) {
			return nil, fmt.Errorf("netfile: insert-node mutation needs a record with %d pred costs", len(m.PredCosts))
		}
		rec := EncodeRecord(m.Rec)
		buf := make([]byte, 1+4+len(rec)+4*len(m.PredCosts))
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(len(rec)))
		copy(buf[5:], rec)
		o := 5 + len(rec)
		for _, c := range m.PredCosts {
			binary.LittleEndian.PutUint32(buf[o:], math.Float32bits(c))
			o += 4
		}
		return buf, nil
	case MutDeleteNode:
		var buf [5]byte
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(m.ID))
		return buf[:], nil
	case MutInsertEdge, MutSetEdgeCost:
		var buf [13]byte
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(m.From))
		binary.LittleEndian.PutUint32(buf[5:9], uint32(m.To))
		binary.LittleEndian.PutUint32(buf[9:13], math.Float32bits(m.Cost))
		return buf[:], nil
	case MutDeleteEdge:
		var buf [9]byte
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(m.From))
		binary.LittleEndian.PutUint32(buf[5:9], uint32(m.To))
		return buf[:], nil
	case MutSplitPage:
		var buf [5]byte
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(m.Page))
		return buf[:], nil
	case MutMergePages:
		buf := make([]byte, 5+4*len(m.Pages))
		buf[0] = byte(m.Kind)
		binary.LittleEndian.PutUint32(buf[1:5], uint32(len(m.Pages)))
		for i, pid := range m.Pages {
			binary.LittleEndian.PutUint32(buf[5+4*i:], uint32(pid))
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("netfile: unknown mutation kind %d", m.Kind)
	}
}

// DecodeMutation parses a WAL mutation record payload.
func DecodeMutation(b []byte) (*Mutation, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty mutation record", storage.ErrWALCorrupt)
	}
	m := &Mutation{Kind: MutKind(b[0])}
	body := b[1:]
	switch m.Kind {
	case MutInsertNode:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: insert-node record too short", storage.ErrWALCorrupt)
		}
		rl := int(binary.LittleEndian.Uint32(body[0:4]))
		if len(body) < 4+rl {
			return nil, fmt.Errorf("%w: insert-node record truncated", storage.ErrWALCorrupt)
		}
		rec, err := DecodeRecord(body[4 : 4+rl])
		if err != nil {
			return nil, fmt.Errorf("%w: insert-node: %v", storage.ErrWALCorrupt, err)
		}
		m.Rec = rec
		rest := body[4+rl:]
		if len(rest) != 4*len(rec.Preds) {
			return nil, fmt.Errorf("%w: insert-node pred costs mismatch", storage.ErrWALCorrupt)
		}
		m.PredCosts = make([]float32, len(rec.Preds))
		for i := range m.PredCosts {
			m.PredCosts[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		return m, nil
	case MutDeleteNode:
		if len(body) != 4 {
			return nil, fmt.Errorf("%w: delete-node record length", storage.ErrWALCorrupt)
		}
		m.ID = graph.NodeID(binary.LittleEndian.Uint32(body))
		return m, nil
	case MutInsertEdge, MutSetEdgeCost:
		if len(body) != 12 {
			return nil, fmt.Errorf("%w: edge record length", storage.ErrWALCorrupt)
		}
		m.From = graph.NodeID(binary.LittleEndian.Uint32(body[0:4]))
		m.To = graph.NodeID(binary.LittleEndian.Uint32(body[4:8]))
		m.Cost = math.Float32frombits(binary.LittleEndian.Uint32(body[8:12]))
		return m, nil
	case MutDeleteEdge:
		if len(body) != 8 {
			return nil, fmt.Errorf("%w: delete-edge record length", storage.ErrWALCorrupt)
		}
		m.From = graph.NodeID(binary.LittleEndian.Uint32(body[0:4]))
		m.To = graph.NodeID(binary.LittleEndian.Uint32(body[4:8]))
		return m, nil
	case MutSplitPage:
		if len(body) != 4 {
			return nil, fmt.Errorf("%w: split-page record length", storage.ErrWALCorrupt)
		}
		m.Page = storage.PageID(binary.LittleEndian.Uint32(body))
		return m, nil
	case MutMergePages:
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: merge-pages record too short", storage.ErrWALCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(body[0:4]))
		if len(body) != 4+4*n {
			return nil, fmt.Errorf("%w: merge-pages record length", storage.ErrWALCorrupt)
		}
		m.Pages = make([]storage.PageID, n)
		for i := range m.Pages {
			m.Pages[i] = storage.PageID(binary.LittleEndian.Uint32(body[4+4*i:]))
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown mutation kind %d", storage.ErrWALCorrupt, b[0])
	}
}

// AttachWAL wires the write-ahead log into the file: the buffer pool
// goes no-steal (dirty pages only reach the store through Checkpoint),
// every dirty-page write is gated on a log sync, and page frees are
// deferred to the next checkpoint so no freed page can be recycled —
// and its zero-fill lost — before the checkpoint that records the
// free. fs is the FileStore underneath the data store (the allocator
// whose state checkpoints snapshot).
func (f *File) AttachWAL(w *storage.WAL, fs *storage.FileStore) {
	f.wal = w
	f.fstore = fs
	f.pool.SetNoSteal(true)
	f.pool.SetFlushGate(w.Sync)
}

// WAL returns the attached write-ahead log (nil without one).
func (f *File) WAL() *storage.WAL { return f.wal }

// LogMutation appends one logical mutation record to the WAL (a no-op
// without one). The caller brackets mutations with begin/commit
// records; see the root package's Apply.
func (f *File) LogMutation(m *Mutation) error {
	if f.wal == nil {
		return nil
	}
	payload, err := EncodeMutation(m)
	if err != nil {
		return err
	}
	if _, err := f.wal.Append(storage.WALRecMutation, payload); err != nil {
		return err
	}
	return nil
}

// LogReorg records a reorganization (page split or merge) in the
// current batch. The reorganization policies call it mid-mutation;
// replay skips these records because re-executed mutations re-trigger
// the policies.
func (f *File) LogReorg(kind MutKind, pages []storage.PageID) error {
	if f.wal == nil {
		return nil
	}
	m := &Mutation{Kind: kind, Pages: pages}
	if kind == MutSplitPage && len(pages) == 1 {
		m = &Mutation{Kind: MutSplitPage, Page: pages[0]}
	}
	return f.LogMutation(m)
}

// PendingFrees returns the number of page frees deferred to the next
// checkpoint.
func (f *File) PendingFrees() int { return len(f.pendingFree) }

// Checkpoint makes the data file self-contained again: it writes every
// dirty page image and the allocator state into the WAL, seals the
// checkpoint, executes the deferred page frees, flushes the pool, and
// stamps + syncs the data file. Afterwards the WAL before the
// checkpoint is pruned. The owner must hold the exclusive lock (no
// concurrent mutations or pinned pages).
func (f *File) Checkpoint() error {
	if f.wal == nil || f.fstore == nil {
		return fmt.Errorf("netfile: checkpoint without an attached WAL")
	}
	images := f.pool.DirtySnapshot()
	startLSN := uint64(0)
	for _, img := range images {
		lsn, err := f.wal.Append(storage.WALRecPageImage, storage.EncodeWALPageImage(img.ID, img.Data))
		if err != nil {
			return err
		}
		if startLSN == 0 {
			startLSN = lsn
		}
	}
	// The allocator snapshot records the free chain as it will look
	// after the deferred frees execute: freeing pendingFree[0..k] in
	// order pushes each onto the chain head, so the final chain is the
	// reversed pending list in front of the current chain.
	next, chain, gen, flags, physPageSize := f.fstore.AllocSnapshot()
	full := make([]storage.PageID, 0, len(f.pendingFree)+len(chain))
	for i := len(f.pendingFree) - 1; i >= 0; i-- {
		full = append(full, f.pendingFree[i])
	}
	full = append(full, chain...)
	lsn, err := f.wal.Append(storage.WALRecAllocState,
		storage.EncodeWALAllocState(physPageSize, flags, gen, next, full))
	if err != nil {
		return err
	}
	if startLSN == 0 {
		startLSN = lsn
	}
	endLSN, err := f.wal.Append(storage.WALRecCheckpointEnd, storage.EncodeWALCheckpointEnd(startLSN))
	if err != nil {
		return err
	}
	if err := f.wal.Sync(); err != nil {
		return err
	}
	// The checkpoint is durable in the log; everything after this
	// point only has to complete before the NEXT checkpoint prunes
	// this one — recovery can always restore from the log alone.
	for _, pid := range f.pendingFree {
		if err := f.dataStore.Free(pid); err != nil {
			return fmt.Errorf("netfile: checkpoint free page %d: %w", pid, err)
		}
	}
	f.pendingFree = f.pendingFree[:0]
	if err := f.pool.FlushAll(); err != nil {
		return err
	}
	if err := f.fstore.SetAppliedLSN(endLSN); err != nil {
		return err
	}
	return f.wal.Prune(startLSN)
}
