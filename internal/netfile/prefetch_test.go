package netfile

import (
	"reflect"
	"testing"
	"time"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// pollUntil waits for cond with a deadline, for the asynchronous
// prefetch assertions.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// crossPageCounts recomputes, from the file's own placement, how many
// PAG edges page pid shares with every other page — the ground truth
// the build-time hints must agree with.
func crossPageCounts(t *testing.T, f *File, pid storage.PageID) map[storage.PageID]int {
	t.Helper()
	placement := f.Placement()
	recs, err := f.RecordsOnPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[storage.PageID]int)
	for _, r := range recs {
		for _, s := range r.Succs {
			if q, ok := placement[s.To]; ok && q != pid {
				counts[q]++
			}
		}
		for _, p := range r.Preds {
			if q, ok := placement[p]; ok && q != pid {
				counts[q]++
			}
		}
	}
	return counts
}

// TestPAGHintsMatchPlacement: BulkLoad records each page's
// most-connected neighbor pages, ranked by cross-page edge count and
// capped at the hint fanout, never including the page itself.
func TestPAGHintsMatchPlacement(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	if len(f.pagHints) == 0 {
		t.Fatal("bulk load recorded no PAG hints")
	}
	checked := 0
	for pid, hints := range f.pagHints {
		if len(hints) == 0 || len(hints) > pagHintFanout {
			t.Fatalf("page %d: %d hints, want 1..%d", pid, len(hints), pagHintFanout)
		}
		counts := crossPageCounts(t, f, pid)
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		for i, q := range hints {
			if q == pid {
				t.Fatalf("page %d hints itself", pid)
			}
			if counts[q] == 0 {
				t.Fatalf("page %d hint %d shares no PAG edge", pid, q)
			}
			if i == 0 && counts[q] != best {
				t.Fatalf("page %d first hint has %d edges, best is %d", pid, counts[q], best)
			}
			if i > 0 && counts[q] > counts[hints[i-1]] {
				t.Fatalf("page %d hints not ranked: %d edges after %d", pid, counts[q], counts[hints[i-1]])
			}
		}
		if checked++; checked >= 16 {
			break
		}
	}
}

// TestPAGHintsInvalidatedByMutations: mutating a page drops its hints,
// and freeing a page filters it out of every other page's answer.
func TestPAGHintsInvalidatedByMutations(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)

	// Pick a hinted page and one of its records.
	var pid storage.PageID
	for p := range f.pagHints {
		pid = p
		break
	}
	nodes, err := f.NodesOnPage(pid)
	if err != nil || len(nodes) == 0 {
		t.Fatalf("NodesOnPage(%d) = %v, %v", pid, nodes, err)
	}
	if got := f.PrefetchHints(pid); len(got) == 0 {
		t.Fatal("hinted page answered cold before any mutation")
	}
	if _, err := f.DeleteRecord(nodes[0]); err != nil {
		t.Fatal(err)
	}
	if got := f.PrefetchHints(pid); got != nil {
		t.Fatalf("hints survived a delete on the page: %v", got)
	}

	// Freeing a page another page hints at: the hint entry survives but
	// the freed page must no longer be suggested.
	var p2, victim storage.PageID
	found := false
	for p, hints := range f.pagHints {
		if len(hints) > 0 {
			p2, victim, found = p, hints[0], true
			break
		}
	}
	if !found {
		t.Fatal("no hinted page left")
	}
	if err := f.FreePage(victim); err != nil {
		t.Fatal(err)
	}
	for _, q := range f.PrefetchHints(p2) {
		if q == victim {
			t.Fatalf("freed page %d still suggested by page %d", victim, p2)
		}
	}
}

// TestOpenFromStoreOptsRebuildsHints: reopening a store recomputes the
// same hint table BulkLoad recorded, so prefetch survives restart.
func TestOpenFromStoreOptsRebuildsHints(t *testing.T) {
	g := testNetwork(t)
	st := storage.NewMemStore(1024)
	f, err := Create(Options{PageSize: 1024, PoolPages: 16, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, clusterGroups(t, g, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFromStoreOpts(st, Options{PoolPages: 16, PoolShards: 4, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Pool().Close()
	if !reflect.DeepEqual(f.pagHints, f2.pagHints) {
		t.Fatalf("reopened hints differ:\nbuilt:    %v\nreopened: %v", f.pagHints, f2.pagHints)
	}
	if f2.Pool().Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", f2.Pool().Shards())
	}
}

// TestPrefetchEndToEnd: with Options.Prefetch, a Find that misses pulls
// the page's PAG neighbors into the pool so an immediately following
// traversal step hits.
func TestPrefetchEndToEnd(t *testing.T) {
	g := testNetwork(t)
	st := storage.NewMemStore(1024)
	f, err := Create(Options{
		PageSize: 1024, PoolPages: 16, PoolShards: 4,
		Bounds: g.Bounds(), Store: st,
		Prefetch: true, PrefetchWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Pool().Close()
	if err := f.BulkLoad(g, clusterGroups(t, g, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}

	// Find any node whose page has hints.
	var id graph.NodeID
	var pid storage.PageID
	for p := range f.pagHints {
		nodes, err := f.NodesOnPage(p)
		if err != nil {
			t.Fatal(err)
		}
		id, pid = nodes[0], p
		break
	}
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	f.Pool().ResetStats()
	if _, err := f.Find(id); err != nil {
		t.Fatal(err)
	}
	want := f.PrefetchHints(pid)
	pollUntil(t, "hinted pages resident", func() bool {
		for _, q := range want {
			if !f.Pool().Contains(q) {
				return false
			}
		}
		return true
	})
	ps := f.Pool().PrefetchStats()
	if ps.Issued == 0 || ps.Loaded == 0 {
		t.Fatalf("prefetch idle after a demand miss: %+v", ps)
	}
	// The demand counters saw only the Find's own miss.
	if s := f.Pool().Stats(); s.Fetches != 1 || s.Misses != 1 {
		t.Fatalf("demand stats polluted: %+v", s)
	}
}
