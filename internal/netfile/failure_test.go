package netfile

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

// errInjected marks a simulated device failure.
var errInjected = errors.New("injected I/O failure")

// failingStore wraps a Store and starts failing reads/writes after a
// given number of operations — the failure-injection harness for the
// layers above.
type failingStore struct {
	storage.Store
	mu        sync.Mutex
	remaining int // operations before failures begin
}

func newFailingStore(pageSize, okOps int) *failingStore {
	return &failingStore{Store: storage.NewMemStore(pageSize), remaining: okOps}
}

func (f *failingStore) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining <= 0 {
		return errInjected
	}
	f.remaining--
	return nil
}

func (f *failingStore) ReadPage(id storage.PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return fmt.Errorf("read page %d: %w", id, err)
	}
	return f.Store.ReadPage(id, buf)
}

func (f *failingStore) WritePage(id storage.PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return fmt.Errorf("write page %d: %w", id, err)
	}
	return f.Store.WritePage(id, buf)
}

func (f *failingStore) Allocate() (storage.PageID, error) {
	if err := f.tick(); err != nil {
		return storage.InvalidPageID, err
	}
	return f.Store.Allocate()
}

func TestOperationsSurviveDeviceFailure(t *testing.T) {
	// Build succeeds on a healthy store, then the device starts
	// failing: every operation must return a wrapped error — never
	// panic, never report success.
	g := testNetwork(t)

	for _, okOps := range []int{0, 1, 3, 10, 50} {
		t.Run(fmt.Sprintf("okOps=%d", okOps), func(t *testing.T) {
			st := newFailingStore(1024, 1<<30)
			f, err := Create(Options{PageSize: 1024, PoolPages: 4, Bounds: g.Bounds(), Store: st})
			if err != nil {
				t.Fatal(err)
			}
			groups := packGroups(t, g)
			if err := f.BulkLoad(g, groups); err != nil {
				t.Fatal(err)
			}
			if err := f.DropCaches(); err != nil {
				t.Fatal(err)
			}
			// Arm the failure.
			st.mu.Lock()
			st.remaining = okOps
			st.mu.Unlock()

			failed := graph.InvalidNodeID
			for _, id := range g.NodeIDs() {
				rec, err := f.Find(id)
				if err != nil {
					if !errors.Is(err, errInjected) {
						t.Fatalf("Find(%d) failed with foreign error: %v", id, err)
					}
					failed = id
					break
				}
				if rec.ID != id {
					t.Fatalf("Find(%d) returned %d under failure", id, rec.ID)
				}
			}
			if failed == graph.InvalidNodeID {
				t.Fatal("device failure never surfaced")
			}
			// A mutation that needs the unloadable page fails cleanly
			// too. (Operations served entirely from buffered pages may
			// still succeed — that is what the buffer pool is for.)
			if _, err := f.DeleteRecord(failed); !errors.Is(err, errInjected) {
				t.Fatalf("delete of unloadable node = %v", err)
			}
		})
	}
}

func TestBuildFailsCleanlyOnDeadStore(t *testing.T) {
	g := testNetwork(t)
	st := newFailingStore(1024, 2) // dies almost immediately
	f, err := Create(Options{PageSize: 1024, PoolPages: 4, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	err = f.BulkLoad(g, packGroups(t, g))
	if err == nil {
		t.Fatal("bulk load succeeded on a dying device")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("foreign error: %v", err)
	}
}

func TestOpenFromStoreFailsCleanly(t *testing.T) {
	g := testNetwork(t)
	st := newFailingStore(1024, 1<<30)
	f, err := Create(Options{PageSize: 1024, PoolPages: 8, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, packGroups(t, g)); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.remaining = 3
	st.mu.Unlock()
	if _, err := OpenFromStore(st, 8); !errors.Is(err, errInjected) {
		t.Fatalf("OpenFromStore on dying device = %v", err)
	}
}

// packGroups sequentially packs g for tests that do not care about
// clustering quality.
func packGroups(t *testing.T, g *graph.Network) [][]graph.NodeID {
	t.Helper()
	var groups [][]graph.NodeID
	var group []graph.NodeID
	used := 0
	budget := PageBudget(1024)
	sizer := StoredSizer(g)
	for _, id := range g.NodeIDs() {
		s := sizer(id)
		if used+s > budget && len(group) > 0 {
			groups = append(groups, group)
			group, used = nil, 0
		}
		group = append(group, id)
		used += s
	}
	return append(groups, group)
}
