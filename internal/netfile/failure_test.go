package netfile

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// errInjected marks a simulated device failure.
var errInjected = errors.New("injected I/O failure")

// failingStore wraps a Store and starts failing reads/writes after a
// given number of operations — the failure-injection harness for the
// layers above.
type failingStore struct {
	storage.Store
	mu        sync.Mutex
	remaining int // operations before failures begin
}

func newFailingStore(pageSize, okOps int) *failingStore {
	return &failingStore{Store: storage.NewMemStore(pageSize), remaining: okOps}
}

func (f *failingStore) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.remaining <= 0 {
		return errInjected
	}
	f.remaining--
	return nil
}

func (f *failingStore) ReadPage(id storage.PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return fmt.Errorf("read page %d: %w", id, err)
	}
	return f.Store.ReadPage(id, buf)
}

func (f *failingStore) WritePage(id storage.PageID, buf []byte) error {
	if err := f.tick(); err != nil {
		return fmt.Errorf("write page %d: %w", id, err)
	}
	return f.Store.WritePage(id, buf)
}

func (f *failingStore) Allocate() (storage.PageID, error) {
	if err := f.tick(); err != nil {
		return storage.InvalidPageID, err
	}
	return f.Store.Allocate()
}

func TestOperationsSurviveDeviceFailure(t *testing.T) {
	// Build succeeds on a healthy store, then the device starts
	// failing: every operation must return a wrapped error — never
	// panic, never report success.
	g := testNetwork(t)

	for _, okOps := range []int{0, 1, 3, 10, 50} {
		t.Run(fmt.Sprintf("okOps=%d", okOps), func(t *testing.T) {
			st := newFailingStore(1024, 1<<30)
			f, err := Create(Options{PageSize: 1024, PoolPages: 4, Bounds: g.Bounds(), Store: st})
			if err != nil {
				t.Fatal(err)
			}
			groups := packGroups(t, g)
			if err := f.BulkLoad(g, groups); err != nil {
				t.Fatal(err)
			}
			if err := f.DropCaches(); err != nil {
				t.Fatal(err)
			}
			// Arm the failure.
			st.mu.Lock()
			st.remaining = okOps
			st.mu.Unlock()

			failed := graph.InvalidNodeID
			for _, id := range g.NodeIDs() {
				rec, err := f.Find(id)
				if err != nil {
					if !errors.Is(err, errInjected) {
						t.Fatalf("Find(%d) failed with foreign error: %v", id, err)
					}
					failed = id
					break
				}
				if rec.ID != id {
					t.Fatalf("Find(%d) returned %d under failure", id, rec.ID)
				}
			}
			if failed == graph.InvalidNodeID {
				t.Fatal("device failure never surfaced")
			}
			// A mutation that needs the unloadable page fails cleanly
			// too. (Operations served entirely from buffered pages may
			// still succeed — that is what the buffer pool is for.)
			if _, err := f.DeleteRecord(failed); !errors.Is(err, errInjected) {
				t.Fatalf("delete of unloadable node = %v", err)
			}
		})
	}
}

func TestBuildFailsCleanlyOnDeadStore(t *testing.T) {
	g := testNetwork(t)
	st := newFailingStore(1024, 2) // dies almost immediately
	f, err := Create(Options{PageSize: 1024, PoolPages: 4, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	err = f.BulkLoad(g, packGroups(t, g))
	if err == nil {
		t.Fatal("bulk load succeeded on a dying device")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("foreign error: %v", err)
	}
}

func TestOpenFromStoreFailsCleanly(t *testing.T) {
	g := testNetwork(t)
	st := newFailingStore(1024, 1<<30)
	f, err := Create(Options{PageSize: 1024, PoolPages: 8, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, packGroups(t, g)); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.remaining = 3
	st.mu.Unlock()
	if _, err := OpenFromStore(st, 8); !errors.Is(err, errInjected) {
		t.Fatalf("OpenFromStore on dying device = %v", err)
	}
}

// packGroups sequentially packs g for tests that do not care about
// clustering quality.
func packGroups(t *testing.T, g *graph.Network) [][]graph.NodeID {
	t.Helper()
	var groups [][]graph.NodeID
	var group []graph.NodeID
	used := 0
	budget := PageBudget(1024)
	sizer := StoredSizer(g)
	for _, id := range g.NodeIDs() {
		s := sizer(id)
		if used+s > budget && len(group) > 0 {
			groups = append(groups, group)
			group, used = nil, 0
		}
		group = append(group, id)
		used += s
	}
	return append(groups, group)
}

// TestChecksumFailureSurfacesThroughFile wires a CheckedStore under the
// file: on-disk corruption (injected straight into the inner store,
// below the checksum layer) must surface from Find as a wrapped
// storage.ErrChecksum — never as a silently wrong record — and must
// increment ccam_storage_checksum_failures_total.
func TestChecksumFailureSurfacesThroughFile(t *testing.T) {
	g := testNetwork(t)
	ms := storage.NewMemStore(1024 + storage.ChecksumTrailerLen)
	cs, err := storage.NewCheckedStore(ms)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	f, err := Create(Options{PageSize: cs.PageSize(), PoolPages: 2, Bounds: g.Bounds(),
		Store: cs, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, packGroups(t, g)); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.DropCaches(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit of every data page, beneath the checksum
	// layer: now every uncached Find must fail loudly.
	raw := make([]byte, ms.PageSize())
	for _, pid := range ms.PageIDs() {
		if err := ms.ReadPage(pid, raw); err != nil {
			t.Fatal(err)
		}
		raw[100] ^= 0x04
		if err := ms.WritePage(pid, raw); err != nil {
			t.Fatal(err)
		}
	}

	var failures int
	for _, id := range g.NodeIDs() {
		rec, err := f.Find(id)
		if err == nil {
			t.Fatalf("Find(%d) returned record %d from a corrupted page", id, rec.ID)
		}
		if !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("Find(%d) = %v, want wrapped storage.ErrChecksum", id, err)
		}
		failures++
	}
	if failures == 0 {
		t.Fatal("corruption never surfaced")
	}
	if got := reg.Counter("ccam_storage_checksum_failures_total").Value(); got == 0 {
		t.Fatal("ccam_storage_checksum_failures_total not incremented")
	}
}

// TestFaultStoreSurfacesThroughFile re-runs the dying-device drill on
// the shared storage.FaultStore harness instead of the local
// failingStore: injected faults must surface as wrapped
// storage.ErrFaultInjected from every operation, and the injection
// counter metric must track them.
func TestFaultStoreSurfacesThroughFile(t *testing.T) {
	g := testNetwork(t)
	for _, okOps := range []int{0, 1, 3, 10, 50} {
		t.Run(fmt.Sprintf("okOps=%d", okOps), func(t *testing.T) {
			fst := storage.NewFaultStore(storage.NewMemStore(1024), 7)
			reg := metrics.NewRegistry()
			f, err := Create(Options{PageSize: 1024, PoolPages: 4, Bounds: g.Bounds(),
				Store: fst, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			if err := f.BulkLoad(g, packGroups(t, g)); err != nil {
				t.Fatal(err)
			}
			if err := f.DropCaches(); err != nil {
				t.Fatal(err)
			}
			fst.FailAfter(storage.FaultRead, okOps)

			surfaced := false
			for _, id := range g.NodeIDs() {
				rec, err := f.Find(id)
				if err != nil {
					if !errors.Is(err, storage.ErrFaultInjected) {
						t.Fatalf("Find(%d) failed with foreign error: %v", id, err)
					}
					surfaced = true
					break
				}
				if rec.ID != id {
					t.Fatalf("Find(%d) returned %d under failure", id, rec.ID)
				}
			}
			if !surfaced {
				t.Fatal("injected fault never surfaced")
			}
			if fst.Injected() == 0 {
				t.Fatal("FaultStore counted no injections")
			}
			if got := reg.Counter("ccam_storage_faults_injected_total").Value(); got != fst.Injected() {
				t.Fatalf("fault metric = %d, want %d", got, fst.Injected())
			}
		})
	}
}

// TestTornWriteDetectedAfterReload: a torn write during a mutation
// leaves a half-updated page; after caches drop, reading it back
// surfaces ErrChecksum instead of a half-old half-new record set.
func TestTornWriteDetectedAfterReload(t *testing.T) {
	g := testNetwork(t)
	ms := storage.NewMemStore(1024 + storage.ChecksumTrailerLen)
	fst := storage.NewFaultStore(ms, 2)
	cs, err := storage.NewCheckedStore(fst)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Create(Options{PageSize: cs.PageSize(), PoolPages: 4, Bounds: g.Bounds(), Store: cs})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, packGroups(t, g)); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every write from here on tears; Flush after a mutation must fail.
	fst.Inject(storage.Fault{Op: storage.FaultWrite, Page: storage.AnyPage,
		Mode: storage.FaultTornWrite})
	victim := g.NodeIDs()[0]
	_, delErr := f.DeleteRecord(victim)
	flushErr := f.Flush()
	if delErr == nil && flushErr == nil {
		t.Fatal("torn write never reported")
	}
	for _, err := range []error{delErr, flushErr} {
		if err != nil && !errors.Is(err, storage.ErrFaultInjected) {
			t.Fatalf("foreign error from torn write: %v", err)
		}
	}
	fst.Clear()

	// "Crash": abandon f (its buffer pool still holds the clean dirty
	// page, so it must NOT get a chance to re-flush) and reopen cold
	// from the store. The open scan reads every page and must trip the
	// checksum on the torn one, never serve plausible garbage.
	if _, err := OpenFromStore(cs, 4); !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("OpenFromStore over torn page = %v, want wrapped storage.ErrChecksum", err)
	}
}
