package netfile

import (
	"errors"
	"math/rand"
	"testing"

	"ccam/internal/graph"
	"ccam/internal/storage"
)

func TestAddRemoveEdgeRecords(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)

	// Find a pair of stored nodes with no edge between them.
	ids := g.NodeIDs()
	var u, v graph.NodeID
	found := false
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			if _, err := g.Edge(a, b); errors.Is(err, graph.ErrEdgeMissing) {
				u, v = a, b
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no non-edge pair found")
	}

	if err := f.AddEdgeRecords(u, v, 42, nil); err != nil {
		t.Fatal(err)
	}
	ur, err := f.Find(u)
	if err != nil {
		t.Fatal(err)
	}
	if !ur.HasSucc(v) {
		t.Fatal("succ entry missing after AddEdgeRecords")
	}
	vr, err := f.Find(v)
	if err != nil {
		t.Fatal(err)
	}
	hasPred := false
	for _, p := range vr.Preds {
		if p == u {
			hasPred = true
		}
	}
	if !hasPred {
		t.Fatal("pred entry missing after AddEdgeRecords")
	}

	// Duplicate add fails.
	if err := f.AddEdgeRecords(u, v, 42, nil); !errors.Is(err, graph.ErrEdgeExists) {
		t.Fatalf("dup add = %v", err)
	}
	// Self loop fails.
	if err := f.AddEdgeRecords(u, u, 1, nil); !errors.Is(err, graph.ErrSelfLoop) {
		t.Fatalf("self loop = %v", err)
	}
	// Missing endpoint fails.
	if err := f.AddEdgeRecords(u, 999999, 1, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing endpoint = %v", err)
	}

	// Remove restores the original state.
	if err := f.RemoveEdgeRecords(u, v); err != nil {
		t.Fatal(err)
	}
	if err := f.RemoveEdgeRecords(u, v); !errors.Is(err, graph.ErrEdgeMissing) {
		t.Fatalf("double remove = %v", err)
	}
	ur, _ = f.Find(u)
	if ur.HasSucc(v) {
		t.Fatal("succ entry survives removal")
	}
}

func TestSetEdgeCost(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)
	e := g.Edges()[0]
	if err := f.SetEdgeCost(e.From, e.To, 123.5); err != nil {
		t.Fatal(err)
	}
	rec, err := f.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	var got float32
	for _, s := range rec.Succs {
		if s.To == e.To {
			got = s.Cost
		}
	}
	if got != 123.5 {
		t.Fatalf("cost = %f, want 123.5", got)
	}
	if err := f.SetEdgeCost(e.To, e.To, 1); !errors.Is(err, graph.ErrEdgeMissing) && err == nil {
		t.Fatalf("self cost set = %v", err)
	}
	if err := f.SetEdgeCost(999999, e.To, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing node = %v", err)
	}
	// Non-edge of existing nodes.
	ids := g.NodeIDs()
	for _, b := range ids {
		if b == e.From {
			continue
		}
		if _, err := g.Edge(e.From, b); errors.Is(err, graph.ErrEdgeMissing) {
			if err := f.SetEdgeCost(e.From, b, 1); !errors.Is(err, graph.ErrEdgeMissing) {
				t.Fatalf("missing edge = %v", err)
			}
			break
		}
	}
	// SetEdgeCost touches exactly one data page.
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if err := f.SetEdgeCost(e.From, e.To, 99); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	io := f.DataIO()
	if io.Reads != 1 || io.Writes != 1 {
		t.Fatalf("SetEdgeCost I/O = %+v, want 1 read + 1 write", io)
	}
}

func TestOpenFromStoreRebuildsEverything(t *testing.T) {
	g := testNetwork(t)
	st := storage.NewMemStore(1024)
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build: sequential packing is fine for this test.
	var group []graph.NodeID
	var groups [][]graph.NodeID
	used := 0
	budget := PageBudget(1024)
	sizer := StoredSizer(g)
	for _, id := range g.NodeIDs() {
		s := sizer(id)
		if used+s > budget && len(group) > 0 {
			groups = append(groups, group)
			group, used = nil, 0
		}
		group = append(group, id)
		used += s
	}
	groups = append(groups, group)
	if err := f.BulkLoad(g, groups); err != nil {
		t.Fatal(err)
	}
	wantPlacement := f.Placement()
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reconstruct from the same store.
	f2, err := OpenFromStore(st, 32)
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumNodes() != g.NumNodes() || f2.NumPages() != len(groups) {
		t.Fatalf("reopened: %d nodes %d pages", f2.NumNodes(), f2.NumPages())
	}
	gotPlacement := f2.Placement()
	for id, pid := range wantPlacement {
		if gotPlacement[id] != pid {
			t.Fatalf("node %d moved: %d -> %d", id, pid, gotPlacement[id])
		}
	}
	// FSM agrees with the physical pages.
	for _, pid := range f2.Pages() {
		fsm, err := f2.FreeSpace(pid)
		if err != nil {
			t.Fatal(err)
		}
		phys, err := f2.FreeSpaceOn(pid)
		if err != nil {
			t.Fatal(err)
		}
		if fsm != phys {
			t.Fatalf("page %d: FSM %d != physical %d", pid, fsm, phys)
		}
	}
	// Spatial index works.
	all, err := f2.RangeQuery(g.Bounds())
	if err != nil || len(all) != g.NumNodes() {
		t.Fatalf("reopened range query: %d, %v", len(all), err)
	}
	// Records survive a random spot check.
	rng := rand.New(rand.NewSource(6))
	ids := g.NodeIDs()
	for i := 0; i < 25; i++ {
		id := ids[rng.Intn(len(ids))]
		rec, err := f2.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Succs) != len(g.Successors(id)) {
			t.Fatalf("node %d lists damaged", id)
		}
	}
}

func TestFindPageWithSpace(t *testing.T) {
	f, err := Create(Options{PageSize: 256, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.FindPageWithSpace(10); ok {
		t.Fatal("empty file reported a page")
	}
	p1, err := f.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := f.FindPageWithSpace(10)
	if !ok || got != p1 {
		t.Fatalf("FindPageWithSpace = %d, %v", got, ok)
	}
	if _, ok := f.FindPageWithSpace(10000); ok {
		t.Fatal("oversized request satisfied")
	}
}

func TestPageBudgetAndStoredSizer(t *testing.T) {
	g := testNetwork(t)
	sizer := StoredSizer(g)
	base := RecordSizer(g)
	id := g.NodeIDs()[0]
	if sizer(id) != base(id)+storage.PerRecordOverhead {
		t.Fatal("StoredSizer does not add the slot overhead")
	}
	if PageBudget(1024) >= 1024 || PageBudget(1024) < 1024-32 {
		t.Fatalf("PageBudget(1024) = %d", PageBudget(1024))
	}
	// The guarantee: any set of records whose StoredSizer total fits
	// PageBudget physically fits on one page.
	f, err := Create(Options{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	pid, err := f.AllocatePage()
	if err != nil {
		t.Fatal(err)
	}
	budget := PageBudget(512)
	used := 0
	n := 0
	for i := graph.NodeID(1); ; i++ {
		rec := &Record{ID: i, Attrs: make([]byte, 20)}
		s := rec.EncodedSize() + storage.PerRecordOverhead
		if used+s > budget {
			break
		}
		if err := f.InsertRecordAt(rec, pid); err != nil {
			t.Fatalf("record %d rejected although within budget: %v", i, err)
		}
		used += s
		n++
	}
	if n < 5 {
		t.Fatalf("only %d records fit", n)
	}
}

func TestEvaluateRouteUnit(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 32)

	// Build a route-unit from a random walk: a connected chain, like a
	// bus route.
	rng := rand.New(rand.NewSource(23))
	routes, err := graph.RandomWalkRoutes(g, 1, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	route := routes[0]
	var members [][2]graph.NodeID
	want := 0.0
	for i := 0; i+1 < len(route); i++ {
		members = append(members, [2]graph.NodeID{route[i], route[i+1]})
		e, err := g.Edge(route[i], route[i+1])
		if err != nil {
			t.Fatal(err)
		}
		want += e.Cost
	}
	agg, err := f.EvaluateRouteUnit("bus-7", members)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Name != "bus-7" || agg.Edges != len(members) {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.Nodes < 2 || agg.Nodes > len(route) {
		t.Fatalf("nodes = %d", agg.Nodes)
	}
	if diff := agg.TotalCost - want; diff > 1e-2 || diff < -1e-2 {
		t.Fatalf("total = %f, want %f", agg.TotalCost, want)
	}
	if agg.MinCost <= 0 || agg.MaxCost < agg.MinCost {
		t.Fatalf("min/max = %f/%f", agg.MinCost, agg.MaxCost)
	}

	// Errors: empty unit, non-edge member, missing node.
	if _, err := f.EvaluateRouteUnit("empty", nil); err == nil {
		t.Fatal("empty unit accepted")
	}
	if _, err := f.EvaluateRouteUnit("bad", [][2]graph.NodeID{{route[0], route[0]}}); err == nil {
		t.Fatal("self-loop member accepted")
	}
	if _, err := f.EvaluateRouteUnit("bad", [][2]graph.NodeID{{999999, route[0]}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing node = %v", err)
	}

	// Connectivity clustering pays: the whole unit costs only a few
	// page reads.
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.EvaluateRouteUnit("bus-7", members); err != nil {
		t.Fatal(err)
	}
	if reads := f.DataIO().Reads; reads > int64(len(route)) {
		t.Fatalf("route-unit read %d pages for %d nodes", reads, len(route))
	}
}

func TestScan(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 8)
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	seen := map[graph.NodeID]bool{}
	if err := f.Scan(func(rec *Record) bool {
		if seen[rec.ID] {
			t.Fatalf("record %d visited twice", rec.ID)
		}
		seen[rec.ID] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != g.NumNodes() {
		t.Fatalf("scanned %d of %d", len(seen), g.NumNodes())
	}
	// One read per page.
	if reads := f.DataIO().Reads; reads != int64(f.NumPages()) {
		t.Fatalf("scan reads = %d, pages = %d", reads, f.NumPages())
	}
	// Early stop.
	n := 0
	if err := f.Scan(func(*Record) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestGetASuccessorBufferedFirst(t *testing.T) {
	// The paper's protocol: the buffered page holding the current node
	// is searched first, so a co-located successor costs zero physical
	// reads.
	g := testNetwork(t)
	f := buildFile(t, g, 2048, 4)
	placement := f.Placement()

	// Find a node with a co-located successor and one with a remote
	// successor.
	var coID, coSucc, farID, farSucc graph.NodeID
	haveCo, haveFar := false, false
	for _, id := range g.NodeIDs() {
		for _, s := range g.Successors(id) {
			if placement[id] == placement[s] && !haveCo {
				coID, coSucc, haveCo = id, s, true
			}
			if placement[id] != placement[s] && !haveFar {
				farID, farSucc, haveFar = id, s, true
			}
		}
		if haveCo && haveFar {
			break
		}
	}
	if !haveCo || !haveFar {
		t.Skip("placement lacks a co-located or remote successor pair")
	}

	// Co-located: zero additional reads after the Find.
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	rec, err := f.Find(coID)
	if err != nil {
		t.Fatal(err)
	}
	base := f.DataIO().Reads
	if _, err := f.GetASuccessor(rec, coSucc); err != nil {
		t.Fatal(err)
	}
	if extra := f.DataIO().Reads - base; extra != 0 {
		t.Fatalf("co-located Get-A-successor cost %d reads", extra)
	}

	// Remote: exactly one read.
	if err := f.ResetIO(); err != nil {
		t.Fatal(err)
	}
	rec, err = f.Find(farID)
	if err != nil {
		t.Fatal(err)
	}
	base = f.DataIO().Reads
	if _, err := f.GetASuccessor(rec, farSucc); err != nil {
		t.Fatal(err)
	}
	if extra := f.DataIO().Reads - base; extra != 1 {
		t.Fatalf("remote Get-A-successor cost %d reads, want 1", extra)
	}
}
