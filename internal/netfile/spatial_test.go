package netfile

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/partition"
)

// buildFileSpatial bulk-loads the road map with the given spatial index
// kind.
func buildFileSpatial(t *testing.T, g *graph.Network, kind SpatialKind) *File {
	t.Helper()
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds(), Spatial: kind})
	if err != nil {
		t.Fatal(err)
	}
	pages, err := partition.ClusterNodesIntoPages(g, StoredSizer(g), PageBudget(1024), &partition.RatioCut{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, pages); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSpatialKindString(t *testing.T) {
	if SpatialZOrder.String() != "zorder" || SpatialRTree.String() != "rtree" {
		t.Fatal("kind names wrong")
	}
	if SpatialKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestRangeQueryBothIndexesAgree(t *testing.T) {
	g := testNetwork(t)
	zf := buildFileSpatial(t, g, SpatialZOrder)
	rf := buildFileSpatial(t, g, SpatialRTree)
	b := g.Bounds()
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 12; trial++ {
		x := b.Min.X + rng.Float64()*b.Width()
		y := b.Min.Y + rng.Float64()*b.Height()
		rect := geom.NewRect(geom.Point{X: x, Y: y},
			geom.Point{X: x + rng.Float64()*b.Width()/2, Y: y + rng.Float64()*b.Height()/2})
		want := map[graph.NodeID]bool{}
		for _, id := range g.NodeIDs() {
			n, _ := g.Node(id)
			if rect.Contains(n.Pos) {
				want[id] = true
			}
		}
		for name, f := range map[string]*File{"zorder": zf, "rtree": rf} {
			got, err := f.RangeQuery(rect)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d records, want %d", trial, name, len(got), len(want))
			}
			for _, r := range got {
				if !want[r.ID] {
					t.Fatalf("trial %d %s: unexpected %d", trial, name, r.ID)
				}
			}
		}
	}
}

func TestNearestBothIndexesMatchBruteForce(t *testing.T) {
	g := testNetwork(t)
	zf := buildFileSpatial(t, g, SpatialZOrder)
	rf := buildFileSpatial(t, g, SpatialRTree)
	b := g.Bounds()
	rng := rand.New(rand.NewSource(15))

	bruteforce := func(p geom.Point, k int) []float64 {
		var ds []float64
		for _, id := range g.NodeIDs() {
			n, _ := g.Node(id)
			ds = append(ds, math.Hypot(n.Pos.X-p.X, n.Pos.Y-p.Y))
		}
		sort.Float64s(ds)
		return ds[:k]
	}

	for trial := 0; trial < 15; trial++ {
		p := geom.Point{
			X: b.Min.X + rng.Float64()*b.Width()*1.2 - b.Width()*0.1, // sometimes outside
			Y: b.Min.Y + rng.Float64()*b.Height()*1.2 - b.Height()*0.1,
		}
		k := 1 + rng.Intn(8)
		want := bruteforce(p, k)
		for name, f := range map[string]*File{"zorder": zf, "rtree": rf} {
			got, err := f.Nearest(p, k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != k {
				t.Fatalf("trial %d %s: %d results, want %d", trial, name, len(got), k)
			}
			for i, rec := range got {
				d := math.Hypot(rec.Pos.X-p.X, rec.Pos.Y-p.Y)
				if math.Abs(d-want[i]) > 1e-9 {
					t.Fatalf("trial %d %s: rank %d dist %f, want %f", trial, name, i, d, want[i])
				}
			}
		}
	}
	// Degenerate cases.
	if out, err := zf.Nearest(geom.Point{}, 0); err != nil || out != nil {
		t.Fatalf("k=0: %v %v", out, err)
	}
	all, err := rf.Nearest(geom.Point{}, g.NumNodes()+100)
	if err != nil || len(all) != g.NumNodes() {
		t.Fatalf("k>n: %d, %v", len(all), err)
	}
}

func TestSpatialIndexMaintainedUnderUpdates(t *testing.T) {
	for _, kind := range []SpatialKind{SpatialZOrder, SpatialRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			g := testNetwork(t)
			f := buildFileSpatial(t, g, kind)
			ids := g.NodeIDs()
			rng := rand.New(rand.NewSource(16))
			// Delete 30 nodes; they must vanish from spatial results.
			gone := map[graph.NodeID]bool{}
			for i := 0; i < 30; i++ {
				id := ids[rng.Intn(len(ids))]
				if gone[id] {
					continue
				}
				rec, err := f.DeleteRecord(id)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.RemoveNeighborLinks(rec); err != nil {
					t.Fatal(err)
				}
				gone[id] = true
			}
			all, err := f.RangeQuery(g.Bounds())
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != g.NumNodes()-len(gone) {
				t.Fatalf("range query after deletes = %d, want %d", len(all), g.NumNodes()-len(gone))
			}
			for _, r := range all {
				if gone[r.ID] {
					t.Fatalf("deleted node %d still in spatial index", r.ID)
				}
			}
		})
	}
}
