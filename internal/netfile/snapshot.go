package netfile

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// This file is the netfile half of snapshot reads. The buffer pool
// keeps LSN-tagged version chains of page bytes (buffer/version.go);
// what the pool cannot know is *which page a node lives on* at a given
// LSN — placements move under inserts, deletes and reorganization. The
// overlay below is a versioned node→page map maintained alongside the
// B+-tree index: an immutable base plus one delta per mutation batch,
// each stamped with its commit LSN. A snapshot reader resolves a node
// through the overlay at its pinned LSN, then reads the page image at
// that LSN through the pool — never touching the B+-tree, the live
// frame latches of in-progress writes, or any file-wide lock.
//
// Writer protocol (serialized by the owner, e.g. the facade's write
// lock): BeginVersionBatch opens a pool version batch and installs a
// pending overlay delta; every placement mutation records itself into
// the delta (and as a PlaceEvent for the owner's incremental gauges and
// planner catalog); PublishVersionBatch stamps the delta and the page
// versions with the commit LSN — readers pinned below it keep their
// view, readers arriving after it see the new one, atomically.

// PlaceEvent records one placement change of a mutation batch: node ID
// now lives on Page (InvalidPageID = the record was deleted). The owner
// drains them per operation via TakePlacementEvents to maintain
// derived structures (CRR gauges, planner catalog) incrementally.
type PlaceEvent struct {
	ID   graph.NodeID
	Page storage.PageID
}

// pendingOverlayLSN tags a delta whose batch has not committed yet; it
// compares above every real LSN, so readers skip it.
const pendingOverlayLSN = ^uint64(0)

// overlayDelta is one batch's placement changes. lsn is the commit LSN
// (pendingOverlayLSN until the batch publishes — the atomic store of
// the real LSN is also the release barrier that makes the maps safe to
// read). removed keeps the spatial entries the batch deleted, so range
// queries at an older LSN can still surface those nodes; it is guarded
// by the file's spatMu while pending.
type overlayDelta struct {
	lsn     atomic.Uint64
	entries map[graph.NodeID]storage.PageID // InvalidPageID = deleted
	removed []spatialEntry
}

// overlayState is an immutable snapshot of the versioned placement
// map: deltas newest-first over a base that folds every batch at or
// below baseLSN. Readers load it atomically and never see it change.
type overlayState struct {
	base    map[graph.NodeID]storage.PageID
	baseLSN uint64
	deltas  []*overlayDelta
}

// lookup resolves node id at snapshot lsn: the newest delta at or
// below lsn that mentions the node wins, else the base.
func (st *overlayState) lookup(id graph.NodeID, lsn uint64) (storage.PageID, bool) {
	for _, d := range st.deltas {
		if d.lsn.Load() > lsn {
			continue
		}
		if pid, ok := d.entries[id]; ok {
			if pid == storage.InvalidPageID {
				return storage.InvalidPageID, false
			}
			return pid, true
		}
	}
	pid, ok := st.base[id]
	return pid, ok
}

// placements materializes the full node→page map as of lsn (the
// snapshot analogue of File.Placement, used by snapshot scans).
func (st *overlayState) placements(lsn uint64) map[graph.NodeID]storage.PageID {
	out := make(map[graph.NodeID]storage.PageID, len(st.base))
	for id, pid := range st.base {
		out[id] = pid
	}
	for i := len(st.deltas) - 1; i >= 0; i-- { // oldest first
		d := st.deltas[i]
		if d.lsn.Load() > lsn {
			continue
		}
		for id, pid := range d.entries {
			if pid == storage.InvalidPageID {
				delete(out, id)
			} else {
				out[id] = pid
			}
		}
	}
	return out
}

// notePlacement records a placement change at the mutation sites.
// Inside a version batch it goes to the pending delta and the event
// stream; outside one (direct File use, serialized by the owner) the
// current base is updated in place.
func (f *File) notePlacement(id graph.NodeID, pid storage.PageID) {
	if f.verActive {
		f.batchDelta().entries[id] = pid
		f.events = append(f.events, PlaceEvent{ID: id, Page: pid})
		return
	}
	st := f.overlay.Load()
	if pid == storage.InvalidPageID {
		delete(st.base, id)
	} else {
		st.base[id] = pid
	}
}

// batchDelta returns the open batch's pending overlay delta, creating
// and installing it on first use. The lazy install keeps batches that
// never move a placement (edge-cost updates, most edge inserts) off
// the overlay entirely — no allocation, no delta-list growth, and
// nothing for readers to skip — which keeps the facade's latched
// commit section short.
func (f *File) batchDelta() *overlayDelta {
	if f.curDelta != nil {
		return f.curDelta
	}
	d := &overlayDelta{entries: make(map[graph.NodeID]storage.PageID)}
	d.lsn.Store(pendingOverlayLSN)
	old := f.overlay.Load()
	deltas := make([]*overlayDelta, 0, len(old.deltas)+1)
	deltas = append(deltas, d)
	deltas = append(deltas, old.deltas...)
	f.overlay.Store(&overlayState{base: old.base, baseLSN: old.baseLSN, deltas: deltas})
	f.curDelta = d
	return d
}

// BeginVersionBatch opens a mutation batch for snapshot isolation: the
// pool starts capturing pre-images of mutated pages and a pending
// overlay delta collects placement changes (installed lazily by the
// first placement change). Callers must serialize batches (the facade
// holds its write lock across one).
func (f *File) BeginVersionBatch() {
	f.pool.BeginVersionBatch()
	f.curDelta = nil
	f.verActive = true
	f.events = f.events[:0]
}

// PublishVersionBatch commits the open batch at commitLSN (0 auto-
// assigns the next LSN for stores without a WAL): the overlay delta is
// stamped first, then the pool publishes the page versions and
// advances the committed LSN — so a reader pinning the new LSN finds
// both the new placements and the new page images, and a reader pinned
// below it finds neither. Returns the LSN used.
func (f *File) PublishVersionBatch(commitLSN uint64) uint64 {
	if commitLSN == 0 {
		commitLSN = f.pool.CommittedLSN() + 1
	}
	if f.curDelta != nil {
		f.curDelta.lsn.Store(commitLSN)
		f.curDelta = nil
	}
	f.verActive = false
	f.pool.PublishVersions(commitLSN)
	f.compactOverlay()
	return commitLSN
}

// AbortVersionBatch closes the open batch without committing. The
// pending delta stays in the overlay, permanently tagged pending, so
// readers keep skipping it — mirroring the pool, which keeps the
// aborted batch's pre-images pending so readers keep resolving the
// half-mutated pages to their committed bytes. The owner poisons the
// store after an abort; everything is reclaimed on reopen.
func (f *File) AbortVersionBatch() {
	f.pool.AbortVersionBatch()
	f.curDelta = nil
	f.verActive = false
	f.events = nil
}

// TakePlacementEvents drains the placement events recorded since the
// batch began (or since the previous drain), in mutation order.
func (f *File) TakePlacementEvents() []PlaceEvent {
	evs := f.events
	f.events = nil
	return evs
}

// ResetVersions discards all version state and installs base as the
// overlay's new foundation (build and open call it once the on-disk
// placement is rebuilt). Callers must have drained every snapshot.
func (f *File) ResetVersions(base map[graph.NodeID]storage.PageID) {
	f.pool.DropVersions()
	if base == nil {
		base = make(map[graph.NodeID]storage.PageID)
	}
	f.overlay.Store(&overlayState{base: base})
	f.curDelta = nil
	f.verActive = false
	f.events = nil
}

// overlayCompactThreshold bounds the delta list a reader must walk per
// lookup; past it, publish folds every delta below the version floor
// into a fresh base.
const overlayCompactThreshold = 64

func (f *File) compactOverlay() {
	st := f.overlay.Load()
	if len(st.deltas) < overlayCompactThreshold {
		return
	}
	floor := f.pool.VersionFloor()
	// deltas are newest-first; the foldable ones form a suffix. A
	// permanently pending delta (aborted batch) blocks folding past it,
	// which is fine: the store is poisoned after an abort.
	idx := len(st.deltas)
	for idx > 0 {
		l := st.deltas[idx-1].lsn.Load()
		if l == pendingOverlayLSN || l > floor {
			break
		}
		idx--
	}
	if idx == len(st.deltas) {
		return
	}
	base := make(map[graph.NodeID]storage.PageID, len(st.base))
	for id, pid := range st.base {
		base[id] = pid
	}
	for i := len(st.deltas) - 1; i >= idx; i-- { // oldest first
		for id, pid := range st.deltas[i].entries {
			if pid == storage.InvalidPageID {
				delete(base, id)
			} else {
				base[id] = pid
			}
		}
	}
	f.overlay.Store(&overlayState{
		base:    base,
		baseLSN: floor,
		deltas:  append([]*overlayDelta(nil), st.deltas[:idx]...),
	})
}

// OverlayDepth reports the current overlay delta count (observability).
func (f *File) OverlayDepth() int { return len(f.overlay.Load().deltas) }

// View is an LSN-consistent read-only view of the file, held by
// value: every read resolves placements through the overlay and page
// bytes through the pool's version chains as of the pinned LSN,
// without taking any file-wide lock — concurrent mutation batches,
// checkpoints and reorganization never block it and never leak into
// its view. A View is a borrow: the creator must pair PinView with
// exactly one Unpin, and the value form exists so a per-query
// pin/read/unpin cycle allocates nothing (the facade's read path).
// Long-lived, independently closeable views are Snapshot.
type View struct {
	f   *File
	lsn uint64
}

// PinView pins the current committed LSN and returns a value view at
// it. The caller owns the pin and must call Unpin exactly once.
func (f *File) PinView() View {
	return View{f: f, lsn: f.pool.AcquireSnapshot()}
}

// Unpin releases the view's pin (not idempotent — the single owner
// releases it once).
func (s View) Unpin() { s.f.pool.ReleaseSnapshot(s.lsn) }

// LSN returns the pinned commit LSN.
func (s View) LSN() uint64 { return s.lsn }

// Snapshot is the long-lived form of View for callers outside the
// store's own query path: a heap handle whose Close is idempotent, so
// it can be handed to application code and defer-closed safely. All
// read operations come from the embedded View.
type Snapshot struct {
	View
	released atomic.Bool
}

// Snapshot pins the current committed LSN and returns a read view at
// it.
func (f *File) Snapshot() *Snapshot {
	return &Snapshot{View: f.PinView()}
}

// Close unpins the snapshot; idempotent.
func (s *Snapshot) Close() {
	if s.released.CompareAndSwap(false, true) {
		s.f.pool.ReleaseSnapshot(s.lsn)
	}
}

// readRecordTraced is the snapshot analogue of File.readRecordTraced:
// an overlay lookup (charged as one index visit — the overlay replaces
// the B+-tree descent) followed by a versioned page read.
func (s View) readRecordTraced(id graph.NodeID, at *metrics.ActiveTrace) (*Record, error) {
	tok := at.BeginSpan("index.descent")
	pid, ok := s.f.overlay.Load().lookup(id, s.lsn)
	s.f.idxVisits.Add(1)
	tok.End()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	data, release, err := s.f.pool.ReadAt(pid, s.lsn, at)
	if err != nil {
		return nil, err
	}
	defer release()
	sp, err := storage.LoadSlottedPage(data)
	if err != nil {
		return nil, err
	}
	for _, slot := range sp.Slots() {
		raw, err := sp.Get(slot)
		if err != nil {
			return nil, err
		}
		rid, err := RecordID(raw)
		if err != nil {
			return nil, err
		}
		if rid == id {
			return DecodeRecord(raw)
		}
	}
	return nil, fmt.Errorf("netfile: snapshot@%d maps %d to page %d but record is absent: %w", s.lsn, id, pid, ErrCorruptRecord)
}

// Find retrieves the record of node id as of the snapshot.
func (s View) Find(id graph.NodeID) (*Record, error) {
	return s.FindCtx(context.Background(), id)
}

// FindCtx is Find with cooperative cancellation.
func (s View) FindCtx(ctx context.Context, id graph.NodeID) (*Record, error) {
	at := s.f.tracer.StartCtx(ctx, "find")
	rec, err := s.findCtx(ctx, id, at)
	at.Finish(err)
	return rec, err
}

func (s View) findCtx(ctx context.Context, id graph.NodeID, at *metrics.ActiveTrace) (*Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.readRecordTraced(id, at)
}

// Has reports whether node id exists as of the snapshot.
func (s View) Has(id graph.NodeID) bool {
	_, ok := s.f.overlay.Load().lookup(id, s.lsn)
	return ok
}

// GetASuccessor retrieves the record of succ, a successor of cur, as
// of the snapshot (paper §2.3; cur may be nil to skip the check).
func (s View) GetASuccessor(cur *Record, succ graph.NodeID) (*Record, error) {
	if cur != nil && !cur.HasSucc(succ) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNotSuccessor, succ, cur.ID)
	}
	at := s.f.tracer.Start("get-a-successor")
	rec, err := s.readRecordTraced(succ, at)
	at.Finish(err)
	return rec, err
}

// GetSuccessorsCtx retrieves the records of all successors of node id
// as of the snapshot.
func (s View) GetSuccessorsCtx(ctx context.Context, id graph.NodeID) ([]*Record, error) {
	at := s.f.tracer.StartCtx(ctx, "get-successors")
	out, err := getSuccessorsVia(ctx, id, at, s.findCtx)
	at.Finish(err)
	return out, err
}

// EvaluateRouteCtx computes the aggregate property of a route as of
// the snapshot (paper §2.3, "Route Evaluation").
func (s View) EvaluateRouteCtx(ctx context.Context, route graph.Route) (RouteAggregate, error) {
	at := s.f.tracer.StartCtx(ctx, "evaluate-route")
	agg, err := evaluateRouteVia(ctx, route, at, s.findCtx)
	at.Finish(err)
	return agg, err
}

// EvaluateRoute is EvaluateRouteCtx with context.Background().
func (s View) EvaluateRoute(route graph.Route) (RouteAggregate, error) {
	return s.EvaluateRouteCtx(context.Background(), route)
}

// GetSuccessors is GetSuccessorsCtx with context.Background().
func (s View) GetSuccessors(id graph.NodeID) ([]*Record, error) {
	return s.GetSuccessorsCtx(context.Background(), id)
}

// Placement materializes the node → data-page assignment as of the
// snapshot (the versioned analogue of File.Placement).
func (s View) Placement() graph.Placement {
	return s.f.overlay.Load().placements(s.lsn)
}

// NumPages reports the live data-page count. It is read from the
// current file, not the pinned LSN — callers use it for planner
// statistics, where the live shape is the better estimate.
func (s View) NumPages() int { return s.f.NumPages() }

// SpatialIndexKind reports the file's spatial index structure.
func (s View) SpatialIndexKind() SpatialKind { return s.f.SpatialIndexKind() }

// SpatialCandidates probes the live spatial index for rect's candidate
// ids (planner page-set resolution; approximate against the pinned LSN
// exactly as the planner's statistics are).
func (s View) SpatialCandidates(rect geom.Rect, fn func(id graph.NodeID) bool) error {
	return s.f.SpatialCandidates(rect, fn)
}

// RangeQueryCtx returns the records of every node whose position lies
// in rect as of the snapshot. Candidates come from the live spatial
// index unioned with the spatial entries removed by batches committed
// after the pinned LSN; each candidate is then resolved at the
// snapshot LSN, so nodes inserted after it drop out and nodes deleted
// after it reappear.
func (s View) RangeQueryCtx(ctx context.Context, rect geom.Rect) ([]*Record, error) {
	at := s.f.tracer.StartCtx(ctx, "range-query")
	out, err := s.rangeQueryCtx(ctx, rect, at)
	at.Finish(err)
	return out, err
}

func (s View) rangeQueryCtx(ctx context.Context, rect geom.Rect, at *metrics.ActiveTrace) ([]*Record, error) {
	st := s.f.overlay.Load()
	var cand []graph.NodeID
	s.f.spatMu.RLock()
	err := s.f.spatial.search(rect, func(id graph.NodeID) bool {
		cand = append(cand, id)
		return true
	})
	if err == nil {
		for _, d := range st.deltas {
			if d.lsn.Load() <= s.lsn {
				continue
			}
			for _, e := range d.removed {
				if rect.Contains(e.pos) {
					cand = append(cand, e.id)
				}
			}
		}
	}
	s.f.spatMu.RUnlock()
	if err != nil {
		return nil, err
	}
	seen := make(map[graph.NodeID]bool, len(cand))
	var out []*Record
	for _, id := range cand {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		rec, err := s.readRecordTraced(id, at)
		if errors.Is(err, ErrNotFound) {
			continue // inserted after the snapshot
		}
		if err != nil {
			return nil, err
		}
		if rect.Contains(rec.Pos) {
			out = append(out, rec)
		}
	}
	return out, nil
}

// Scan visits every record as of the snapshot, page by page in page-id
// order (one versioned page read per page). fn returning false stops
// early.
func (s View) Scan(fn func(rec *Record) bool) error {
	place := s.f.overlay.Load().placements(s.lsn)
	pageSet := make(map[storage.PageID]bool, len(place))
	for _, pid := range place {
		pageSet[pid] = true
	}
	pids := make([]storage.PageID, 0, len(pageSet))
	for pid := range pageSet {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		recs, err := s.recordsOnPage(pid)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

func (s View) recordsOnPage(pid storage.PageID) ([]*Record, error) {
	data, release, err := s.f.pool.ReadAt(pid, s.lsn, nil)
	if err != nil {
		return nil, err
	}
	defer release()
	sp, err := storage.LoadSlottedPage(data)
	if err != nil {
		return nil, err
	}
	var out []*Record
	for _, slot := range sp.Slots() {
		raw, err := sp.Get(slot)
		if err != nil {
			return nil, err
		}
		rec, err := DecodeRecord(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
