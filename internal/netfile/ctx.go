package netfile

import (
	"context"
	"fmt"

	"ccam/internal/graph"
	"ccam/internal/metrics"
)

// Context-first variants of the query operations, mirroring
// RangeQueryCtx: the context is checked before each record fetch, so a
// canceled context stops the operation without paying for the
// remaining page reads. The plain methods delegate with
// context.Background().

// FindCtx is Find with cooperative cancellation.
func (f *File) FindCtx(ctx context.Context, id graph.NodeID) (*Record, error) {
	at := f.tracer.StartCtx(ctx, "find")
	rec, err := f.findCtx(ctx, id, at)
	at.Finish(err)
	return rec, err
}

func (f *File) findCtx(ctx context.Context, id graph.NodeID, at *metrics.ActiveTrace) (*Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return f.readRecordTraced(id, at)
}

// GetSuccessorsCtx is GetSuccessors with cooperative cancellation:
// the context is checked before the node's own fetch and before each
// successor fetch.
func (f *File) GetSuccessorsCtx(ctx context.Context, id graph.NodeID) ([]*Record, error) {
	at := f.tracer.StartCtx(ctx, "get-successors")
	out, err := f.getSuccessorsCtx(ctx, id, at)
	at.Finish(err)
	return out, err
}

func (f *File) getSuccessorsCtx(ctx context.Context, id graph.NodeID, at *metrics.ActiveTrace) ([]*Record, error) {
	return getSuccessorsVia(ctx, id, at, f.findCtx)
}

// recordFinder abstracts "fetch one record" so the traversal loops are
// shared between the live file and LSN-pinned snapshots.
type recordFinder func(ctx context.Context, id graph.NodeID, at *metrics.ActiveTrace) (*Record, error)

func getSuccessorsVia(ctx context.Context, id graph.NodeID, at *metrics.ActiveTrace, find recordFinder) ([]*Record, error) {
	rec, err := find(ctx, id, at)
	if err != nil {
		return nil, err
	}
	out := make([]*Record, 0, len(rec.Succs))
	for _, s := range rec.Succs {
		sr, err := find(ctx, s.To, at)
		if err != nil {
			return nil, fmt.Errorf("netfile: get-successors of %d: %w", id, err)
		}
		out = append(out, sr)
	}
	return out, nil
}

// EvaluateRouteCtx is EvaluateRoute with cooperative cancellation: the
// context is checked before each hop's record fetch.
func (f *File) EvaluateRouteCtx(ctx context.Context, route graph.Route) (RouteAggregate, error) {
	at := f.tracer.StartCtx(ctx, "evaluate-route")
	agg, err := f.evaluateRouteCtx(ctx, route, at)
	at.Finish(err)
	return agg, err
}

func (f *File) evaluateRouteCtx(ctx context.Context, route graph.Route, at *metrics.ActiveTrace) (RouteAggregate, error) {
	return evaluateRouteVia(ctx, route, at, f.findCtx)
}

func evaluateRouteVia(ctx context.Context, route graph.Route, at *metrics.ActiveTrace, find recordFinder) (RouteAggregate, error) {
	if len(route) == 0 {
		return RouteAggregate{}, fmt.Errorf("%w: empty route", graph.ErrInvalidRoute)
	}
	rec, err := find(ctx, route[0], at)
	if err != nil {
		return RouteAggregate{}, err
	}
	agg := RouteAggregate{Nodes: 1}
	for i := 1; i < len(route); i++ {
		var cost float64
		found := false
		for _, s := range rec.Succs {
			if s.To == route[i] {
				cost = float64(s.Cost)
				found = true
				break
			}
		}
		if !found {
			return RouteAggregate{}, fmt.Errorf("%w: hop %d->%d is not an edge", graph.ErrInvalidRoute, rec.ID, route[i])
		}
		// The successor constraint was just verified, so this hop is a
		// Get-A-successor: read succ's record through the pool.
		rec, err = find(ctx, route[i], at)
		if err != nil {
			return RouteAggregate{}, err
		}
		agg.Nodes++
		agg.TotalCost += cost
		if agg.Nodes == 2 || cost < agg.MinCost {
			agg.MinCost = cost
		}
		if cost > agg.MaxCost {
			agg.MaxCost = cost
		}
	}
	return agg, nil
}
