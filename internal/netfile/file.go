package netfile

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/btree"
	"ccam/internal/buffer"
	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/storage"
)

// Options configures a data file.
type Options struct {
	// PageSize is the disk block size in bytes (the paper sweeps 512,
	// 1k, 2k, 4k).
	PageSize int
	// PoolPages is the data buffer pool capacity in pages. Route
	// evaluation experiments use 1, as in the paper.
	PoolPages int
	// PoolShards splits the data buffer pool into this many
	// independently latched shards (0 or 1 keeps the single-latch
	// pool); buffer.AutoShards picks a value from GOMAXPROCS.
	PoolShards int
	// Prefetch enables connectivity-aware prefetching: a demand miss on
	// a data page asynchronously faults in the page's most-connected
	// PAG neighbors, recorded at build/open time.
	Prefetch bool
	// PrefetchWorkers sizes the prefetcher's worker pool (0 selects the
	// buffer package default). Ignored unless Prefetch is set.
	PrefetchWorkers int
	// Bounds is the geographic extent used for Z-order keys in the
	// spatial index. Zero value disables spatial keys (they quantize to
	// a single cell).
	Bounds geom.Rect
	// Spatial selects the secondary spatial index structure (default
	// SpatialZOrder, the paper's choice).
	Spatial SpatialKind
	// Store supplies the data page store; nil selects an in-memory
	// simulated disk.
	Store storage.Store
	// ReadLatency, when positive, charges that much wall-clock time per
	// physical data-page read of the in-memory simulated disk, so
	// throughput experiments run in the paper's disk-resident regime.
	// Ignored when Store is supplied. Index stores stay instantaneous:
	// the paper assumes index pages are memory resident.
	ReadLatency time.Duration
	// Metrics, when non-nil, instruments the file: physical I/O and
	// buffer fetch latencies are observed into histograms of this
	// registry, and index descents count pages into a registry counter.
	// Nil keeps every hot path on its zero-cost branch.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records per-operation traces of the query
	// operations (Find, Get-successor(s), route evaluation, range
	// query) with spans for index descent, buffer fetch and physical
	// read.
	Tracer *metrics.Tracer
}

// File is the shared data file: slotted data pages holding node
// records, an LRU buffer pool, a B+-tree node index (node id → data
// page) and a B+-tree spatial index (Z-order key → data page). Index
// pages live on a separate store so data-page I/O — the paper's metric
// — is metered in isolation; the paper assumes index pages are memory
// resident.
//
// Concurrency: the query operations (Find, GetASuccessor,
// GetSuccessors, EvaluateRoute, RangeQuery, Nearest, Scan and the
// read-only accessors) keep no per-call state on File — scratch
// buffers and cursors are locals, decoded records own their memory —
// so any number of them may run in parallel; the buffer pool and page
// stores carry their own latches. Mutating operations (record
// insert/update/delete, page allocation, reorganization, ResetIO,
// Flush) touch the pages/free maps and the index trees without
// internal locking and must be serialized against all other calls by
// the owner (the root ccam.Store does this with a reader-writer lock).
type File struct {
	pageSize  int
	dataStore storage.Store
	pool      *buffer.Pool
	index     *btree.Tree // uint64(node id) -> uint64(data page)
	spatial   spatialIndex
	quant     geom.Quantizer
	pages     map[storage.PageID]bool
	// free is the memory-resident free-space map (bytes available per
	// data page, assuming compaction). Like the secondary index, it is
	// treated as memory resident and consulting it costs no data-page
	// I/O; every mutation keeps it exact.
	free map[storage.PageID]int
	// pagHints records, per data page, its most-connected PAG neighbor
	// pages — computed by BulkLoad/OpenFromStoreOpts, dropped per page
	// on mutation. It feeds the pool's prefetch adjacency callback.
	pagHints map[storage.PageID][]storage.PageID
	// reg and tracer are nil unless observability is enabled; every hot
	// path branches on nil before paying anything.
	reg    *metrics.Registry
	tracer *metrics.Tracer
	// idxVisits counts index pages touched by node-index descents (nil
	// when metrics are disabled; reads via Counter.Value are nil-safe).
	idxVisits *metrics.Counter
	idxStore  storage.Store
	// wal and fstore are set by AttachWAL: mutations log logical
	// records, the pool runs no-steal, and page frees are deferred to
	// checkpoints (pendingFree, in free order).
	wal         *storage.WAL
	fstore      *storage.FileStore
	pendingFree []storage.PageID

	// Snapshot-read state (see snapshot.go). overlay is the versioned
	// node→page map snapshot readers resolve placements through without
	// touching the B+-tree index; curDelta/verActive/events are
	// writer-side batch bookkeeping. spatMu lets lock-free snapshot
	// range queries share the live spatial index with the serialized
	// writer; hintMu does the same for the PAG hint and live-page maps,
	// which the pool's prefetch callback reads from reader goroutines.
	overlay   atomic.Pointer[overlayState]
	curDelta  *overlayDelta
	verActive bool
	events    []PlaceEvent
	spatMu    sync.RWMutex
	hintMu    sync.RWMutex
}

// Create opens a fresh, empty data file.
func Create(opts Options) (*File, error) {
	if opts.PageSize < 128 {
		return nil, fmt.Errorf("netfile: page size %d too small", opts.PageSize)
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 32
	}
	st := opts.Store
	if st == nil {
		ms := storage.NewMemStore(opts.PageSize)
		if opts.ReadLatency > 0 {
			ms.SetReadLatency(opts.ReadLatency)
		}
		st = ms
	}
	if st.PageSize() != opts.PageSize {
		return nil, fmt.Errorf("netfile: store page size %d != %d", st.PageSize(), opts.PageSize)
	}
	// Index pages use their own in-memory store with a generous pool:
	// the paper treats the secondary index as memory resident.
	idxStore := storage.NewMemStore(4096)
	idxPool := buffer.NewPool(idxStore, 4096)
	index, err := btree.New(idxPool)
	if err != nil {
		return nil, fmt.Errorf("netfile: create node index: %w", err)
	}
	quant := geom.NewQuantizer(opts.Bounds)
	spatial, err := newSpatialIndex(opts.Spatial, quant)
	if err != nil {
		return nil, err
	}
	f := &File{
		pageSize:  opts.PageSize,
		dataStore: st,
		pool:      buffer.NewPoolShards(st, opts.PoolPages, opts.PoolShards),
		index:     index,
		spatial:   spatial,
		quant:     quant,
		pages:     make(map[storage.PageID]bool),
		free:      make(map[storage.PageID]int),
		pagHints:  make(map[storage.PageID][]storage.PageID),
		idxStore:  idxStore,
	}
	f.overlay.Store(&overlayState{base: make(map[graph.NodeID]storage.PageID)})
	if opts.Prefetch {
		f.pool.SetAdjacency(f.PrefetchHints)
		f.pool.EnablePrefetch(opts.PrefetchWorkers, 0)
	}
	f.EnableMetrics(opts.Metrics, opts.Tracer)
	return f, nil
}

// EnableMetrics instruments the file against registry reg and attaches
// tracer tr (either may be nil). Physical data-page I/O and buffer
// fetches observe latency histograms, and node-index descents count
// pages into ccam_index_page_visits_total. Call before sharing the file
// across goroutines; a nil registry and tracer leave every hot path on
// its zero-cost branch.
func (f *File) EnableMetrics(reg *metrics.Registry, tr *metrics.Tracer) {
	f.tracer = tr
	if reg == nil {
		return
	}
	f.reg = reg
	if in, ok := f.dataStore.(storage.Instrumentable); ok {
		in.Instrument(storage.IOInstrumentation{
			ReadNanos:  reg.Histogram("ccam_storage_read_ns"),
			WriteNanos: reg.Histogram("ccam_storage_write_ns"),
		})
	}
	// Integrity counters: checksum verification failures of a checked
	// store and injected faults of a fault-wrapped store, so
	// corruption is observable — not just fatal.
	if cs, ok := f.dataStore.(storage.ChecksumInstrumentable); ok {
		cs.InstrumentChecksums(reg.Counter("ccam_storage_checksum_failures_total"))
	}
	if fst, ok := f.dataStore.(storage.FaultInstrumentable); ok {
		fst.InstrumentFaults(reg.Counter("ccam_storage_faults_injected_total"))
	}
	f.pool.Instrument(buffer.PoolInstrumentation{
		HitNanos:        reg.Histogram("ccam_buffer_hit_ns"),
		MissNanos:       reg.Histogram("ccam_buffer_miss_ns"),
		PrefetchIssued:  reg.Counter("ccam_buffer_prefetch_issued_total"),
		PrefetchLoaded:  reg.Counter("ccam_buffer_prefetch_loaded_total"),
		PrefetchUseful:  reg.Counter("ccam_buffer_prefetch_useful_total"),
		PrefetchDropped: reg.Counter("ccam_buffer_prefetch_dropped_total"),
		PrefetchErrors:  reg.Counter("ccam_buffer_prefetch_errors_total"),
	})
	f.idxVisits = reg.Counter("ccam_index_page_visits_total")
	f.index.Instrument(f.idxVisits)
}

// Registry returns the metrics registry the file is instrumented
// against (nil when metrics are disabled).
func (f *File) Registry() *metrics.Registry { return f.reg }

// Tracer returns the file's operation tracer (nil when disabled).
func (f *File) Tracer() *metrics.Tracer { return f.tracer }

// IndexVisits returns the cumulative number of index pages touched by
// node-index descents, or 0 when metrics are disabled.
func (f *File) IndexVisits() int64 { return f.idxVisits.Value() }

// IndexIO returns the physical I/O counters of the node-index store.
// The paper treats index pages as memory resident, so these never
// contribute to the data-page metric; they are exposed for
// observability only.
func (f *File) IndexIO() storage.Stats {
	if f.idxStore == nil {
		return storage.Stats{}
	}
	return f.idxStore.Stats()
}

// PageSize returns the data page size.
func (f *File) PageSize() int { return f.pageSize }

// Pool returns the data buffer pool (for experiments that probe or
// reset buffering).
func (f *File) Pool() *buffer.Pool { return f.pool }

// NumNodes returns the number of stored records.
func (f *File) NumNodes() int { return f.index.Len() }

// NumPages returns the number of live data pages. Safe for concurrent
// use (snapshot readers consult it for planner statistics while
// mutations allocate and free pages).
func (f *File) NumPages() int {
	f.hintMu.RLock()
	defer f.hintMu.RUnlock()
	return len(f.pages)
}

// Quantizer returns the Z-order quantizer of the spatial index.
func (f *File) Quantizer() geom.Quantizer { return f.quant }

// DataIO returns the physical data-page I/O counters.
func (f *File) DataIO() storage.Stats { return f.dataStore.Stats() }

// ResetIO flushes and empties the data buffer pool and zeroes the
// physical I/O counters, so the next operation is measured cold.
func (f *File) ResetIO() error {
	if err := f.pool.Reset(); err != nil {
		return err
	}
	f.dataStore.ResetStats()
	return nil
}

// DropCaches empties the data buffer pool without touching counters.
func (f *File) DropCaches() error { return f.pool.Reset() }

// PageOf returns the data page holding node id, via the node index
// (index I/O is not charged to data-page counters).
func (f *File) PageOf(id graph.NodeID) (storage.PageID, error) {
	v, err := f.index.Get(uint64(id))
	if err != nil {
		if errors.Is(err, btree.ErrKeyNotFound) {
			return storage.InvalidPageID, fmt.Errorf("%w: %d", ErrNotFound, id)
		}
		return storage.InvalidPageID, err
	}
	return storage.PageID(v), nil
}

// Has reports whether node id is stored. It swallows index errors; use
// HasRecord when they must be surfaced.
func (f *File) Has(id graph.NodeID) bool {
	_, err := f.index.Get(uint64(id))
	return err == nil
}

// HasRecord reports whether node id is stored, distinguishing a plain
// miss (false, nil) from an index failure (false, err).
func (f *File) HasRecord(id graph.NodeID) (bool, error) {
	_, err := f.index.Get(uint64(id))
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, btree.ErrKeyNotFound):
		return false, nil
	default:
		return false, err
	}
}

// AllocatePage adds a fresh, empty data page and returns its id.
func (f *File) AllocatePage() (storage.PageID, error) {
	pid, b, err := f.pool.FetchNew()
	if err != nil {
		return storage.InvalidPageID, fmt.Errorf("netfile: allocate data page: %w", err)
	}
	sp := storage.NewSlottedPage(b)
	f.free[pid] = sp.FreeSpace()
	if err := f.pool.Unpin(pid, true); err != nil {
		return storage.InvalidPageID, err
	}
	f.hintMu.Lock()
	f.pages[pid] = true
	f.hintMu.Unlock()
	return pid, nil
}

// FreePage releases an empty data page. Under a WAL the physical free
// is deferred to the next checkpoint: the store keeps counting the
// page as live, so it cannot be recycled (and its old bytes
// overwritten) before the checkpoint that records the free is durable.
func (f *File) FreePage(pid storage.PageID) error {
	if !f.pages[pid] {
		return fmt.Errorf("netfile: free of unknown page %d", pid)
	}
	// Preserve the committed image for pinned snapshots before the
	// frame is discarded: the page id may be recycled (and its bytes
	// overwritten) while an old reader can still resolve nodes to it.
	if f.pool.VersionBatchActive() {
		if b, err := f.pool.Fetch(pid); err == nil {
			f.pool.SaveVersion(pid, b)
			f.pool.Unpin(pid, false)
		}
	}
	f.hintMu.Lock()
	delete(f.pages, pid)
	f.hintMu.Unlock()
	delete(f.free, pid)
	f.invalidatePAGHints(pid)
	f.pool.Discard(pid)
	if f.wal != nil {
		f.pendingFree = append(f.pendingFree, pid)
		return nil
	}
	if err := f.dataStore.Free(pid); err != nil {
		return fmt.Errorf("netfile: free page %d: %w", pid, err)
	}
	return nil
}

// Pages returns the live data page ids in ascending order.
func (f *File) Pages() []storage.PageID {
	f.hintMu.RLock()
	out := make([]storage.PageID, 0, len(f.pages))
	for pid := range f.pages {
		out = append(out, pid)
	}
	f.hintMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// withPage runs fn with the slotted view of a pinned page; the page is
// unpinned afterwards, marked dirty when fn reports it wrote.
func (f *File) withPage(pid storage.PageID, fn func(sp *storage.SlottedPage) (dirty bool, err error)) error {
	return f.withPageTraced(pid, nil, fn)
}

// withPageTraced is withPage under an optional operation trace: the
// fetch appears as a buffer.fetch span (and storage.read on a miss).
func (f *File) withPageTraced(pid storage.PageID, at *metrics.ActiveTrace, fn func(sp *storage.SlottedPage) (dirty bool, err error)) error {
	b, err := f.pool.FetchTraced(pid, at)
	if err != nil {
		return err
	}
	sp, err := storage.LoadSlottedPage(b)
	if err != nil {
		f.pool.Unpin(pid, false)
		return err
	}
	dirty, err := fn(sp)
	if uerr := f.pool.Unpin(pid, dirty); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// withPageWrite is withPage for mutators: before the slotted view is
// handed to fn, the page's current (committed) bytes are captured into
// the pool's version chain when a version batch is open, so pinned
// snapshot readers keep an LSN-consistent image of the page.
func (f *File) withPageWrite(pid storage.PageID, fn func(sp *storage.SlottedPage) (dirty bool, err error)) error {
	b, err := f.pool.Fetch(pid)
	if err != nil {
		return err
	}
	f.pool.SaveVersion(pid, b)
	sp, err := storage.LoadSlottedPage(b)
	if err != nil {
		f.pool.Unpin(pid, false)
		return err
	}
	dirty, err := fn(sp)
	if uerr := f.pool.Unpin(pid, dirty); uerr != nil && err == nil {
		err = uerr
	}
	return err
}

// InsertRecordAt stores rec on page pid and indexes it. It fails with
// storage.ErrPageFull when the record does not fit, leaving the file
// unchanged.
func (f *File) InsertRecordAt(rec *Record, pid storage.PageID) error {
	if f.Has(rec.ID) {
		return fmt.Errorf("%w: %d", ErrDuplicate, rec.ID)
	}
	if !f.pages[pid] {
		return fmt.Errorf("netfile: insert into unknown page %d", pid)
	}
	enc := EncodeRecord(rec)
	err := f.withPageWrite(pid, func(sp *storage.SlottedPage) (bool, error) {
		if _, err := sp.Insert(enc); err != nil {
			return false, err
		}
		f.free[pid] = sp.FreeSpace()
		return true, nil
	})
	if err != nil {
		return err
	}
	f.invalidatePAGHints(pid)
	if err := f.index.Insert(uint64(rec.ID), uint64(pid)); err != nil {
		return fmt.Errorf("netfile: index insert %d: %w", rec.ID, err)
	}
	f.spatMu.Lock()
	err = f.spatial.put(rec.Pos, rec.ID)
	f.spatMu.Unlock()
	if err != nil {
		return fmt.Errorf("netfile: spatial insert %d: %w", rec.ID, err)
	}
	f.notePlacement(rec.ID, pid)
	return nil
}

// ReadRecordFromPage scans a data page for node id, returning the
// decoded record, or ok=false when the node is not on that page.
func (f *File) ReadRecordFromPage(pid storage.PageID, id graph.NodeID) (rec *Record, ok bool, err error) {
	return f.readRecordFromPageTraced(pid, id, nil)
}

func (f *File) readRecordFromPageTraced(pid storage.PageID, id graph.NodeID, at *metrics.ActiveTrace) (rec *Record, ok bool, err error) {
	err = f.withPageTraced(pid, at, func(sp *storage.SlottedPage) (bool, error) {
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return false, err
			}
			rid, err := RecordID(raw)
			if err != nil {
				return false, err
			}
			if rid == id {
				r, err := DecodeRecord(raw)
				if err != nil {
					return false, err
				}
				rec, ok = r, true
				return false, nil
			}
		}
		return false, nil
	})
	return rec, ok, err
}

// ReadRecord fetches the record of node id (index lookup + one page
// fetch).
func (f *File) ReadRecord(id graph.NodeID) (*Record, error) {
	return f.readRecordTraced(id, nil)
}

// readRecordTraced is ReadRecord under an optional operation trace: the
// node-index descent and the data-page fetch each get a span.
func (f *File) readRecordTraced(id graph.NodeID, at *metrics.ActiveTrace) (*Record, error) {
	tok := at.BeginSpan("index.descent")
	pid, err := f.PageOf(id)
	tok.End()
	if err != nil {
		return nil, err
	}
	rec, ok, err := f.readRecordFromPageTraced(pid, id, at)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("netfile: index maps %d to page %d but record is absent: %w", id, pid, ErrCorruptRecord)
	}
	return rec, nil
}

// UpdateRecord rewrites node rec.ID's record in place on its current
// page. Grows that overflow the page return storage.ErrPageFull with
// the file unchanged.
func (f *File) UpdateRecord(rec *Record) error {
	pid, err := f.PageOf(rec.ID)
	if err != nil {
		return err
	}
	enc := EncodeRecord(rec)
	f.invalidatePAGHints(pid)
	return f.withPageWrite(pid, func(sp *storage.SlottedPage) (bool, error) {
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return false, err
			}
			rid, err := RecordID(raw)
			if err != nil {
				return false, err
			}
			if rid != rec.ID {
				continue
			}
			if err := sp.Update(slot, enc); err != nil {
				return false, err
			}
			f.free[pid] = sp.FreeSpace()
			return true, nil
		}
		return false, fmt.Errorf("netfile: record %d missing from page %d: %w", rec.ID, pid, ErrCorruptRecord)
	})
}

// DeleteRecord removes node id's record, returning its last value.
func (f *File) DeleteRecord(id graph.NodeID) (*Record, error) {
	pid, err := f.PageOf(id)
	if err != nil {
		return nil, err
	}
	var rec *Record
	err = f.withPageWrite(pid, func(sp *storage.SlottedPage) (bool, error) {
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return false, err
			}
			rid, err := RecordID(raw)
			if err != nil {
				return false, err
			}
			if rid != id {
				continue
			}
			r, err := DecodeRecord(raw)
			if err != nil {
				return false, err
			}
			if err := sp.Delete(slot); err != nil {
				return false, err
			}
			f.free[pid] = sp.FreeSpace()
			rec = r
			return true, nil
		}
		return false, fmt.Errorf("netfile: record %d missing from page %d: %w", id, pid, ErrCorruptRecord)
	})
	if err != nil {
		return nil, err
	}
	f.invalidatePAGHints(pid)
	if err := f.index.Delete(uint64(id)); err != nil {
		return nil, fmt.Errorf("netfile: index delete %d: %w", id, err)
	}
	f.spatMu.Lock()
	err = f.spatial.remove(rec.Pos, id)
	if err == nil && f.verActive {
		// Keep the spatial entry reachable for pinned snapshots: range
		// queries at an older LSN union these with the live index.
		d := f.batchDelta()
		d.removed = append(d.removed, spatialEntry{pos: rec.Pos, id: id})
	}
	f.spatMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("netfile: spatial delete %d: %w", id, err)
	}
	f.notePlacement(id, storage.InvalidPageID)
	return rec, nil
}

// MoveRecord relocates a record to page dst, updating the index. It is
// the reorganization primitive.
func (f *File) MoveRecord(id graph.NodeID, dst storage.PageID) error {
	rec, err := f.DeleteRecord(id)
	if err != nil {
		return err
	}
	if err := f.InsertRecordAt(rec, dst); err != nil {
		return fmt.Errorf("netfile: move %d to page %d: %w", id, dst, err)
	}
	return nil
}

// NodesOnPage returns the node ids stored on pid.
func (f *File) NodesOnPage(pid storage.PageID) ([]graph.NodeID, error) {
	var out []graph.NodeID
	err := f.withPage(pid, func(sp *storage.SlottedPage) (bool, error) {
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return false, err
			}
			id, err := RecordID(raw)
			if err != nil {
				return false, err
			}
			out = append(out, id)
		}
		return false, nil
	})
	return out, err
}

// RecordsOnPage returns decoded records of every node on pid.
func (f *File) RecordsOnPage(pid storage.PageID) ([]*Record, error) {
	var out []*Record
	err := f.withPage(pid, func(sp *storage.SlottedPage) (bool, error) {
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return false, err
			}
			r, err := DecodeRecord(raw)
			if err != nil {
				return false, err
			}
			out = append(out, r)
		}
		return false, nil
	})
	return out, err
}

// FreeSpaceOn returns the free bytes on page pid (assuming compaction).
func (f *File) FreeSpaceOn(pid storage.PageID) (int, error) {
	var free int
	err := f.withPage(pid, func(sp *storage.SlottedPage) (bool, error) {
		free = sp.FreeSpace()
		return false, nil
	})
	return free, err
}

// UsedBytesOn returns the live record bytes on page pid.
func (f *File) UsedBytesOn(pid storage.PageID) (int, error) {
	var used int
	err := f.withPage(pid, func(sp *storage.SlottedPage) (bool, error) {
		used = sp.UsedBytes()
		return false, nil
	})
	return used, err
}

// BulkLoad writes the given page groups of network g into the file.
// Each group becomes one data page; groups must fit.
//
// The load is staged for throughput: page images are encoded in
// parallel off to the side (graph reads are pure, so workers share g),
// then written out sequentially in group order — page ids are assigned
// in that deterministic order — and finally the node index and Z-order
// spatial index are built bottom-up from sorted runs instead of one
// descent-and-split insert per record.
func (f *File) BulkLoad(g *graph.Network, groups [][]graph.NodeID) error {
	if f.NumNodes() != 0 {
		return fmt.Errorf("netfile: bulk load into non-empty file")
	}
	// Stage 1: encode every group into a detached page image.
	type pageImage struct {
		buf  []byte
		free int
		recs []*Record
	}
	images := make([]*pageImage, len(groups))
	var firstErr error
	var errOnce sync.Once
	// failed flips on the first error; workers must keep draining work
	// (skipping it) rather than return, or the producer's unbuffered
	// send would block forever once every worker had bailed out.
	var failed atomic.Bool
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range work {
				if failed.Load() {
					continue
				}
				img := &pageImage{
					buf:  make([]byte, f.pageSize),
					recs: make([]*Record, 0, len(groups[gi])),
				}
				sp := storage.NewSlottedPage(img.buf)
				ok := true
				for _, id := range groups[gi] {
					rec, err := RecordFromNode(g, id)
					if err != nil {
						fail(fmt.Errorf("netfile: bulk load group %d: %w", gi, err))
						ok = false
						break
					}
					if _, err := sp.Insert(EncodeRecord(rec)); err != nil {
						fail(fmt.Errorf("netfile: bulk load group %d node %d: %w", gi, id, err))
						ok = false
						break
					}
					img.recs = append(img.recs, rec)
				}
				if !ok {
					continue
				}
				img.free = sp.FreeSpace()
				images[gi] = img
			}
		}()
	}
	for gi := range groups {
		work <- gi
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Stage 2: sequential write-out in group order, so group i always
	// lands on the i-th allocated page id regardless of worker count.
	total := 0
	pids := make([]storage.PageID, len(groups))
	for gi, img := range images {
		pid, b, err := f.pool.FetchNew()
		if err != nil {
			return fmt.Errorf("netfile: bulk load allocate page: %w", err)
		}
		copy(b, img.buf)
		if err := f.pool.Unpin(pid, true); err != nil {
			return err
		}
		f.hintMu.Lock()
		f.pages[pid] = true
		f.hintMu.Unlock()
		f.free[pid] = img.free
		pids[gi] = pid
		total += len(img.recs)
	}

	// Record each page's PAG neighbors for connectivity-aware prefetch
	// while the build-time placement is at hand.
	recsByPage := make(map[storage.PageID][]*Record, len(images))
	for gi, img := range images {
		recsByPage[pids[gi]] = img.recs
	}
	f.rebuildPAGHints(recsByPage)

	// Stage 3: bottom-up index builds from sorted runs.
	entries := make([]btree.Entry, 0, total)
	for gi, img := range images {
		for _, rec := range img.recs {
			entries = append(entries, btree.Entry{Key: uint64(rec.ID), Val: uint64(pids[gi])})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	for i := 1; i < len(entries); i++ {
		if entries[i].Key == entries[i-1].Key {
			return fmt.Errorf("%w: %d", ErrDuplicate, graph.NodeID(entries[i].Key))
		}
	}
	if err := f.index.BulkLoad(entries); err != nil {
		return fmt.Errorf("netfile: bulk load node index: %w", err)
	}
	spatialEntries := make([]spatialEntry, 0, total)
	for _, img := range images {
		for _, rec := range img.recs {
			spatialEntries = append(spatialEntries, spatialEntry{pos: rec.Pos, id: rec.ID})
		}
	}
	if err := f.spatial.bulkLoad(spatialEntries); err != nil {
		return fmt.Errorf("netfile: bulk load spatial index: %w", err)
	}
	base := make(map[graph.NodeID]storage.PageID, total)
	for gi, img := range images {
		for _, rec := range img.recs {
			base[rec.ID] = pids[gi]
		}
	}
	f.ResetVersions(base)
	return f.pool.FlushAll()
}

// Placement extracts node -> data page from the index, the input to
// CRR/WCRR.
func (f *File) Placement() graph.Placement {
	p := make(graph.Placement, f.index.Len())
	it := f.index.Min()
	for it.Next() {
		p[graph.NodeID(it.Key())] = storage.PageID(it.Value())
	}
	return p
}

// Flush writes all buffered dirty pages to the store.
func (f *File) Flush() error { return f.pool.FlushAll() }

// FreeSpace returns the free bytes on page pid from the memory-resident
// free-space map (no data-page I/O).
func (f *File) FreeSpace(pid storage.PageID) (int, error) {
	free, ok := f.free[pid]
	if !ok {
		return 0, fmt.Errorf("netfile: unknown page %d", pid)
	}
	return free, nil
}

// FindPageWithSpace returns the lowest-numbered data page with at least
// need free bytes, consulting only the free-space map.
func (f *File) FindPageWithSpace(need int) (storage.PageID, bool) {
	best := storage.InvalidPageID
	for pid, free := range f.free {
		if free >= need && pid < best {
			best = pid
		}
	}
	return best, best != storage.InvalidPageID
}

// ReplacePageContents rewrites page pid to hold exactly recs, updating
// the node and spatial indexes for every record written. It is the
// reorganization primitive: Reorganize() reads a set of pages,
// re-clusters their records, and replaces each page's contents. Records
// are assumed to have been removed (or about to be overwritten) from
// their previous pages by companion ReplacePageContents calls.
func (f *File) ReplacePageContents(pid storage.PageID, recs []*Record) error {
	if !f.pages[pid] {
		return fmt.Errorf("netfile: replace contents of unknown page %d", pid)
	}
	b, err := f.pool.Fetch(pid)
	if err != nil {
		return err
	}
	f.pool.SaveVersion(pid, b)
	sp := storage.NewSlottedPage(b)
	for _, rec := range recs {
		if _, err := sp.Insert(EncodeRecord(rec)); err != nil {
			f.pool.Unpin(pid, true)
			return fmt.Errorf("netfile: replace contents of page %d with %d records: %w", pid, len(recs), err)
		}
	}
	f.free[pid] = sp.FreeSpace()
	f.invalidatePAGHints(pid)
	if err := f.pool.Unpin(pid, true); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := f.index.Put(uint64(rec.ID), uint64(pid)); err != nil {
			return fmt.Errorf("netfile: reindex %d: %w", rec.ID, err)
		}
		f.spatMu.Lock()
		err = f.spatial.put(rec.Pos, rec.ID)
		f.spatMu.Unlock()
		if err != nil {
			return fmt.Errorf("netfile: spatial reindex %d: %w", rec.ID, err)
		}
		f.notePlacement(rec.ID, pid)
	}
	return nil
}

// OpenFromStore reconstructs a File over an existing page store (e.g. a
// reopened storage.FileStore). Data pages are scanned once to rebuild
// the memory-resident structures — node index, spatial index, free-space
// map and PAG prefetch hints — which matches the paper's assumption that
// index structures live in main memory. The scan's I/O is excluded from
// the returned file's counters.
func OpenFromStore(st storage.Store, poolPages int) (*File, error) {
	return OpenFromStoreOpts(st, Options{PoolPages: poolPages})
}

// OpenFromStoreOpts is OpenFromStore with the full option set — pool
// sharding, prefetch, spatial kind, metrics and tracing are honored.
// PageSize, Store and Bounds are derived from the store's contents; any
// values supplied for them are ignored.
func OpenFromStoreOpts(st storage.Store, opts Options) (*File, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 32
	}
	pageSize := st.PageSize()
	pids := st.PageIDs()

	// First pass: decode all records to establish the spatial bounds.
	buf := make([]byte, pageSize)
	type located struct {
		pid  storage.PageID
		recs []*Record
		free int
	}
	var pages []located
	var bounds geom.Rect
	first := true
	for _, pid := range pids {
		if err := st.ReadPage(pid, buf); err != nil {
			return nil, fmt.Errorf("netfile: open: read page %d: %w", pid, err)
		}
		sp, err := storage.LoadSlottedPage(buf)
		if err != nil {
			return nil, fmt.Errorf("netfile: open: page %d: %w", pid, err)
		}
		pg := located{pid: pid, free: sp.FreeSpace()}
		for _, slot := range sp.Slots() {
			raw, err := sp.Get(slot)
			if err != nil {
				return nil, fmt.Errorf("netfile: open: page %d slot %d: %w", pid, slot, err)
			}
			rec, err := DecodeRecord(raw)
			if err != nil {
				return nil, fmt.Errorf("netfile: open: page %d slot %d: %w", pid, slot, err)
			}
			pg.recs = append(pg.recs, rec)
			if first {
				bounds = geom.Rect{Min: rec.Pos, Max: rec.Pos}
				first = false
			} else {
				if rec.Pos.X < bounds.Min.X {
					bounds.Min.X = rec.Pos.X
				}
				if rec.Pos.Y < bounds.Min.Y {
					bounds.Min.Y = rec.Pos.Y
				}
				if rec.Pos.X > bounds.Max.X {
					bounds.Max.X = rec.Pos.X
				}
				if rec.Pos.Y > bounds.Max.Y {
					bounds.Max.Y = rec.Pos.Y
				}
			}
		}
		pages = append(pages, pg)
	}

	opts.PageSize = pageSize
	opts.Store = st
	opts.Bounds = bounds
	f, err := Create(opts)
	if err != nil {
		return nil, err
	}
	// Second pass: rebuild the memory-resident structures.
	base := make(map[graph.NodeID]storage.PageID)
	for _, pg := range pages {
		f.pages[pg.pid] = true
		f.free[pg.pid] = pg.free
		for _, rec := range pg.recs {
			if err := f.index.Insert(uint64(rec.ID), uint64(pg.pid)); err != nil {
				return nil, fmt.Errorf("netfile: open: reindex %d: %w", rec.ID, err)
			}
			if err := f.spatial.put(rec.Pos, rec.ID); err != nil {
				return nil, fmt.Errorf("netfile: open: spatial reindex %d: %w", rec.ID, err)
			}
			base[rec.ID] = pg.pid
		}
	}
	f.ResetVersions(base)
	recsByPage := make(map[storage.PageID][]*Record, len(pages))
	for _, pg := range pages {
		recsByPage[pg.pid] = pg.recs
	}
	f.rebuildPAGHints(recsByPage)
	st.ResetStats()
	return f, nil
}

// Scan visits every stored record, page by page in page-id order (a
// sequential scan: one physical read per data page). fn returning false
// stops the scan early.
func (f *File) Scan(fn func(rec *Record) bool) error {
	for _, pid := range f.Pages() {
		recs, err := f.RecordsOnPage(pid)
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}
