// Package netfile provides the machinery every access method in this
// repository shares: the binary node-record codec (node data plus
// successor- and predecessor-lists, as in the paper's adjacency-list
// representation), the data file built from slotted pages with a
// B+-tree node index and an LRU buffer pool, and the paper's search
// operations Find, Get-A-successor, Get-successors and route
// evaluation. Access methods (CCAM, DFS-AM, BFS-AM, WDFS-AM, Grid
// File) differ only in how they place records on pages and how they
// maintain the placement under updates.
package netfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/storage"
)

// Errors returned by record and file operations.
var (
	ErrCorruptRecord = errors.New("netfile: corrupt record")
	ErrNotFound      = errors.New("netfile: node not found")
	ErrDuplicate     = errors.New("netfile: node already exists")
	ErrNotSuccessor  = errors.New("netfile: node is not a successor")
)

// SuccEntry is one successor-list element: the edge's end node and its
// cost (e.g. current travel time).
type SuccEntry struct {
	To   graph.NodeID
	Cost float32
}

// Record is the stored form of a network node: node data (id,
// coordinates, attribute payload), the successor-list and the
// predecessor-list. Records have no fixed format — list lengths vary
// across nodes.
type Record struct {
	ID    graph.NodeID
	Pos   geom.Point
	Attrs []byte
	Succs []SuccEntry
	Preds []graph.NodeID
}

// Record wire format (little endian):
//
//	[0:4)   id
//	[4:12)  x float64
//	[12:20) y float64
//	[20:22) attr length a
//	[22:24) successor count s
//	[24:26) predecessor count p
//	[26:26+a)        attrs
//	... s × (to uint32, cost float32)
//	... p × (from uint32)
const recordHeaderSize = 26

// EncodedSize returns the number of bytes EncodeRecord will produce.
func (r *Record) EncodedSize() int {
	return recordHeaderSize + len(r.Attrs) + 8*len(r.Succs) + 4*len(r.Preds)
}

// EncodeRecord serializes r.
func EncodeRecord(r *Record) []byte {
	buf := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint32(buf[0:4], uint32(r.ID))
	binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(r.Pos.X))
	binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(r.Pos.Y))
	binary.LittleEndian.PutUint16(buf[20:22], uint16(len(r.Attrs)))
	binary.LittleEndian.PutUint16(buf[22:24], uint16(len(r.Succs)))
	binary.LittleEndian.PutUint16(buf[24:26], uint16(len(r.Preds)))
	o := recordHeaderSize
	copy(buf[o:], r.Attrs)
	o += len(r.Attrs)
	for _, s := range r.Succs {
		binary.LittleEndian.PutUint32(buf[o:], uint32(s.To))
		binary.LittleEndian.PutUint32(buf[o+4:], math.Float32bits(s.Cost))
		o += 8
	}
	for _, p := range r.Preds {
		binary.LittleEndian.PutUint32(buf[o:], uint32(p))
		o += 4
	}
	return buf
}

// DecodeRecord parses a record image. The returned record owns its
// memory (no aliasing of buf).
func DecodeRecord(buf []byte) (*Record, error) {
	if len(buf) < recordHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorruptRecord, len(buf))
	}
	a := int(binary.LittleEndian.Uint16(buf[20:22]))
	s := int(binary.LittleEndian.Uint16(buf[22:24]))
	p := int(binary.LittleEndian.Uint16(buf[24:26]))
	want := recordHeaderSize + a + 8*s + 4*p
	if len(buf) != want {
		return nil, fmt.Errorf("%w: have %d bytes, header implies %d", ErrCorruptRecord, len(buf), want)
	}
	r := &Record{
		ID: graph.NodeID(binary.LittleEndian.Uint32(buf[0:4])),
		Pos: geom.Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:12])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[12:20])),
		},
	}
	o := recordHeaderSize
	if a > 0 {
		r.Attrs = append([]byte(nil), buf[o:o+a]...)
		o += a
	}
	if s > 0 {
		r.Succs = make([]SuccEntry, s)
		for i := range r.Succs {
			r.Succs[i] = SuccEntry{
				To:   graph.NodeID(binary.LittleEndian.Uint32(buf[o:])),
				Cost: math.Float32frombits(binary.LittleEndian.Uint32(buf[o+4:])),
			}
			o += 8
		}
	}
	if p > 0 {
		r.Preds = make([]graph.NodeID, p)
		for i := range r.Preds {
			r.Preds[i] = graph.NodeID(binary.LittleEndian.Uint32(buf[o:]))
			o += 4
		}
	}
	return r, nil
}

// RecordID extracts just the node id from a record image, for cheap
// in-page scans.
func RecordID(buf []byte) (graph.NodeID, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("%w: %d bytes", ErrCorruptRecord, len(buf))
	}
	return graph.NodeID(binary.LittleEndian.Uint32(buf[0:4])), nil
}

// RecordFromNode builds the stored record of node id in g.
func RecordFromNode(g *graph.Network, id graph.NodeID) (*Record, error) {
	n, err := g.Node(id)
	if err != nil {
		return nil, err
	}
	r := &Record{ID: id, Pos: n.Pos}
	if n.Attrs != nil {
		r.Attrs = append([]byte(nil), n.Attrs...)
	}
	for _, e := range g.SuccessorEdges(id) {
		r.Succs = append(r.Succs, SuccEntry{To: e.To, Cost: float32(e.Cost)})
	}
	r.Preds = g.Predecessors(id)
	return r, nil
}

// RecordSizer returns a sizeOf function for partitioning: the encoded
// record size of each node in g.
func RecordSizer(g *graph.Network) func(graph.NodeID) int {
	return func(id graph.NodeID) int {
		r, err := RecordFromNode(g, id)
		if err != nil {
			return recordHeaderSize
		}
		return r.EncodedSize()
	}
}

// StoredSizer is RecordSizer plus the slotted-page per-record overhead;
// use it as the sizeOf function when clustering nodes into pages of
// budget PageBudget(pageSize), so that the resulting groups are
// guaranteed to physically fit.
func StoredSizer(g *graph.Network) func(graph.NodeID) int {
	base := RecordSizer(g)
	return func(id graph.NodeID) int { return base(id) + storage.PerRecordOverhead }
}

// PageBudget returns the byte budget available to StoredSizer-sized
// records on one data page of the given size.
func PageBudget(pageSize int) int {
	return pageSize - storage.SlottedHeaderOverhead - storage.PerRecordOverhead
}

// HasSucc reports whether succ appears in r's successor-list.
func (r *Record) HasSucc(succ graph.NodeID) bool {
	for _, s := range r.Succs {
		if s.To == succ {
			return true
		}
	}
	return false
}

// AddSucc appends an entry to the successor-list (no duplicate check).
func (r *Record) AddSucc(to graph.NodeID, cost float32) {
	r.Succs = append(r.Succs, SuccEntry{To: to, Cost: cost})
}

// RemoveSucc deletes the entry for 'to'; reports whether it existed.
func (r *Record) RemoveSucc(to graph.NodeID) bool {
	for i, s := range r.Succs {
		if s.To == to {
			r.Succs = append(r.Succs[:i], r.Succs[i+1:]...)
			return true
		}
	}
	return false
}

// AddPred appends an entry to the predecessor-list.
func (r *Record) AddPred(from graph.NodeID) {
	r.Preds = append(r.Preds, from)
}

// RemovePred deletes the entry for 'from'; reports whether it existed.
func (r *Record) RemovePred(from graph.NodeID) bool {
	for i, p := range r.Preds {
		if p == from {
			r.Preds = append(r.Preds[:i], r.Preds[i+1:]...)
			return true
		}
	}
	return false
}

// Neighbors returns the deduplicated neighbor-list of the record.
func (r *Record) Neighbors() []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, s := range r.Succs {
		if !seen[s.To] {
			seen[s.To] = true
			out = append(out, s.To)
		}
	}
	for _, p := range r.Preds {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	c := &Record{ID: r.ID, Pos: r.Pos}
	if r.Attrs != nil {
		c.Attrs = append([]byte(nil), r.Attrs...)
	}
	c.Succs = append([]SuccEntry(nil), r.Succs...)
	c.Preds = append([]graph.NodeID(nil), r.Preds...)
	return c
}
