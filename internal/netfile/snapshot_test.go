package netfile

import (
	"context"
	"errors"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
)

func succCost(t *testing.T, rec *Record, to graph.NodeID) float32 {
	t.Helper()
	for _, s := range rec.Succs {
		if s.To == to {
			return s.Cost
		}
	}
	t.Fatalf("node %d has no successor %d", rec.ID, to)
	return 0
}

// runBatch brackets fn in a version batch and publishes it (auto LSN).
func runBatch(t *testing.T, f *File, fn func()) uint64 {
	t.Helper()
	f.BeginVersionBatch()
	fn()
	f.TakePlacementEvents()
	return f.PublishVersionBatch(0)
}

// TestSnapshotPinsEdgeCost pins a snapshot across an edge-cost batch:
// the pinned reader keeps the old cost while live reads and a fresh
// snapshot see the new one.
func TestSnapshotPinsEdgeCost(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	var e graph.Edge
	for _, cand := range g.Edges() {
		e = cand
		break
	}

	snap := f.Snapshot()
	defer snap.Close()
	old, err := snap.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	oldCost := succCost(t, old, e.To)

	runBatch(t, f, func() {
		if err := f.SetEdgeCost(e.From, e.To, oldCost+42); err != nil {
			t.Fatal(err)
		}
	})

	pinned, err := snap.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if c := succCost(t, pinned, e.To); c != oldCost {
		t.Fatalf("pinned snapshot sees cost %v, want %v", c, oldCost)
	}
	live, err := f.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if c := succCost(t, live, e.To); c != oldCost+42 {
		t.Fatalf("live read sees cost %v, want %v", c, oldCost+42)
	}
	fresh := f.Snapshot()
	defer fresh.Close()
	rec, err := fresh.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if c := succCost(t, rec, e.To); c != oldCost+42 {
		t.Fatalf("fresh snapshot sees cost %v, want %v", c, oldCost+42)
	}
	if snap.LSN() >= fresh.LSN() {
		t.Fatalf("LSNs not ordered: pinned %d, fresh %d", snap.LSN(), fresh.LSN())
	}
}

// TestSnapshotSurvivesDelete pins a snapshot, deletes a node in a
// batch, and checks the pinned view still resolves it — including
// through the range query's removed-entry union — while the live file
// and a fresh snapshot do not.
func TestSnapshotSurvivesDelete(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	id := g.NodeIDs()[3]
	node, err := g.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	pos := node.Pos

	snap := f.Snapshot()
	defer snap.Close()

	runBatch(t, f, func() {
		rec, err := f.DeleteRecord(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.RemoveNeighborLinks(rec); err != nil {
			t.Fatal(err)
		}
	})

	if !snap.Has(id) {
		t.Fatal("pinned snapshot lost the deleted node")
	}
	rec, err := snap.Find(id)
	if err != nil {
		t.Fatalf("pinned Find after delete: %v", err)
	}
	if rec.ID != id {
		t.Fatalf("pinned Find returned %d, want %d", rec.ID, id)
	}
	if _, err := f.Find(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live Find after delete = %v, want ErrNotFound", err)
	}
	fresh := f.Snapshot()
	defer fresh.Close()
	if fresh.Has(id) {
		t.Fatal("fresh snapshot still sees the deleted node")
	}

	// The live spatial index no longer lists the node; the pinned range
	// query must resurface it via the batch's removed entries.
	rect := geom.Rect{Min: geom.Point{X: pos.X - 1e-6, Y: pos.Y - 1e-6}, Max: geom.Point{X: pos.X + 1e-6, Y: pos.Y + 1e-6}}
	got, err := snap.RangeQueryCtx(context.Background(), rect)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range got {
		if r.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("pinned range query missed the deleted node (got %d records)", len(got))
	}
	gotFresh, err := fresh.RangeQueryCtx(context.Background(), rect)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gotFresh {
		if r.ID == id {
			t.Fatal("fresh range query resurrected the deleted node")
		}
	}
}

// TestSnapshotAbortedBatchInvisible aborts a batch mid-flight: any
// pinnable LSN must keep resolving to the committed images.
func TestSnapshotAbortedBatchInvisible(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	var e graph.Edge
	for _, cand := range g.Edges() {
		e = cand
		break
	}
	before, err := f.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	oldCost := succCost(t, before, e.To)

	snap := f.Snapshot()
	defer snap.Close()
	f.BeginVersionBatch()
	if err := f.SetEdgeCost(e.From, e.To, oldCost+7); err != nil {
		t.Fatal(err)
	}
	f.AbortVersionBatch()

	pinned, err := snap.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if c := succCost(t, pinned, e.To); c != oldCost {
		t.Fatalf("pinned snapshot sees aborted cost %v, want %v", c, oldCost)
	}
	fresh := f.Snapshot()
	defer fresh.Close()
	rec, err := fresh.Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if c := succCost(t, rec, e.To); c != oldCost {
		t.Fatalf("fresh snapshot sees aborted cost %v, want %v", c, oldCost)
	}
}

// TestOverlayCompaction folds committed deltas into the base once the
// list passes the threshold, so reader lookups stay bounded.
func TestOverlayCompaction(t *testing.T) {
	g := testNetwork(t)
	f := buildFile(t, g, 1024, 16)
	ids := g.NodeIDs()
	// Delete-and-reinsert moves a placement, so every batch installs an
	// overlay delta and the list must eventually fold.
	for i := 0; i < overlayCompactThreshold+8; i++ {
		id := ids[i%16]
		runBatch(t, f, func() {
			rec, err := f.DeleteRecord(id)
			if err != nil {
				t.Fatal(err)
			}
			pid, ok := f.FindPageWithSpace(rec.EncodedSize())
			if !ok {
				var err error
				pid, err = f.AllocatePage()
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := f.InsertRecordAt(rec, pid); err != nil {
				t.Fatal(err)
			}
		})
	}
	if d := f.OverlayDepth(); d >= overlayCompactThreshold {
		t.Fatalf("overlay depth %d never compacted (threshold %d)", d, overlayCompactThreshold)
	}
	// The folded base must still resolve every node.
	for _, id := range ids[:16] {
		if _, err := f.Find(id); err != nil {
			t.Fatalf("Find(%d) after compaction: %v", id, err)
		}
	}
}
