package netfile

import (
	"fmt"

	"ccam/internal/graph"
)

// Policy selects the reorganization behaviour of maintenance
// operations (paper Table 1).
type Policy int

// Reorganization policies in increasing order of overhead.
const (
	// FirstOrder avoids or delays reorganization: only underflow and
	// overflow are handled.
	FirstOrder Policy = iota
	// SecondOrder reorganizes exactly the pages the update must touch
	// anyway: {Page(x)} ∪ PagesOfNbrs(x).
	SecondOrder
	// HigherOrder additionally reorganizes the PAG-neighbor pages of
	// Page(x).
	HigherOrder
	// Lazy is the delayed policy the paper sketches in §2.4: updates
	// behave first-order, but after a certain number of updates touch a
	// page P, {P} ∪ NbrPages(P) is reorganized and P's counter resets.
	Lazy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FirstOrder:
		return "first-order"
	case SecondOrder:
		return "second-order"
	case HigherOrder:
		return "higher-order"
	case Lazy:
		return "lazy"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// AccessMethod is the common contract of every network file
// organization in this repository. All methods share File's search
// operations (Find, Get-A-successor, Get-successors, EvaluateRoute);
// they differ in Create-time placement and in Insert/Delete
// maintenance.
type AccessMethod interface {
	// Name identifies the method in reports ("ccam-s", "dfs-am", ...).
	Name() string
	// File exposes the underlying data file for search operations and
	// I/O metering.
	File() *File
	// Build creates the file contents from a network (the paper's
	// Create()).
	Build(g *graph.Network) error
	// Insert adds a new node with its edges under the given policy.
	Insert(op *InsertOp, policy Policy) error
	// Delete removes a node and its edges under the given policy.
	Delete(id graph.NodeID, policy Policy) error
	// InsertEdge adds a directed edge between stored nodes under the
	// given policy (the paper's Insert() with an edge argument).
	InsertEdge(from, to graph.NodeID, cost float32, policy Policy) error
	// DeleteEdge removes a directed edge under the given policy.
	DeleteEdge(from, to graph.NodeID, policy Policy) error
}
