package netfile

import (
	"runtime"
	"testing"
	"time"
)

// All groups reference a node missing from the graph, so every worker
// errors out on its first group. With GOMAXPROCS=1 there is one worker;
// once it returns, the producer's unbuffered send blocks forever.
func TestBulkLoadErrorDeadlock(t *testing.T) {
	g := testNetwork(t)
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds()})
	if err != nil {
		t.Fatal(err)
	}
	var groups [][]int64
	_ = groups
	bad := make([][]typeNodeID, 0)
	_ = bad
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	done := make(chan error, 1)
	go func() {
		done <- f.BulkLoad(g, badGroups())
	}()
	select {
	case err := <-done:
		t.Logf("returned: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("BulkLoad hung (deadlock)")
	}
}
