package netfile

import (
	"runtime"
	"testing"
	"time"

	"ccam/internal/graph"
)

// All groups reference a node missing from the graph, so every worker
// errors out on its first group. With GOMAXPROCS=1 there is one worker;
// a producer that kept blocking on an unbuffered send after that worker
// returned would hang the load forever. The regression pinned here is
// that BulkLoad surfaces the error instead of deadlocking.
func TestBulkLoadErrorDeadlock(t *testing.T) {
	g := testNetwork(t)
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds()})
	if err != nil {
		t.Fatal(err)
	}
	missing := graph.NodeID(1 << 30)
	bad := make([][]graph.NodeID, 64)
	for i := range bad {
		bad[i] = []graph.NodeID{missing + graph.NodeID(i)}
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	done := make(chan error, 1)
	go func() {
		done <- f.BulkLoad(g, bad)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bulk load of missing nodes succeeded")
		}
		t.Logf("returned: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("BulkLoad hung (deadlock)")
	}
}
