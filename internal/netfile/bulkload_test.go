package netfile

import (
	"errors"
	"math/rand"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/partition"
)

// insertBuiltFile loads the same page groups via per-record
// InsertRecordAt (the old, descent-per-key path) as a reference.
func insertBuiltFile(t *testing.T, g *graph.Network, groups [][]graph.NodeID, kind SpatialKind) *File {
	t.Helper()
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds(), Spatial: kind})
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range groups {
		pid, err := f.AllocatePage()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range group {
			rec, err := RecordFromNode(g, id)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.InsertRecordAt(rec, pid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

func clusterGroups(t *testing.T, g *graph.Network, pageSize int) [][]graph.NodeID {
	t.Helper()
	groups, err := partition.ClusterNodesIntoPages(g, StoredSizer(g), PageBudget(pageSize), &partition.RatioCut{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

// TestFileBulkLoadEqualsInsertBuilt is the satellite coverage at the
// file level: the staged bulk load (parallel encode, sequential write,
// bottom-up indexes) must be observationally identical to the
// insert-at-a-time build — same placement, same point lookups, same
// range-scan results — for both spatial index kinds.
func TestFileBulkLoadEqualsInsertBuilt(t *testing.T) {
	g := testNetwork(t)
	groups := clusterGroups(t, g, 1024)
	for _, kind := range []SpatialKind{SpatialZOrder, SpatialRTree} {
		t.Run(kind.String(), func(t *testing.T) {
			bulk := buildFileSpatial(t, g, kind)
			ref := insertBuiltFile(t, g, groups, kind)

			bp, rp := bulk.Placement(), ref.Placement()
			if len(bp) != len(rp) {
				t.Fatalf("placement sizes %d vs %d", len(bp), len(rp))
			}
			for id, pid := range rp {
				if bp[id] != pid {
					t.Fatalf("node %d placed on page %d, reference %d", id, bp[id], pid)
				}
			}
			for _, id := range g.NodeIDs() {
				br, err := bulk.Find(id)
				if err != nil {
					t.Fatalf("Find(%d): %v", id, err)
				}
				rr, err := ref.Find(id)
				if err != nil {
					t.Fatal(err)
				}
				if br.ID != rr.ID || len(br.Succs) != len(rr.Succs) || br.Pos != rr.Pos {
					t.Fatalf("record %d differs between builds", id)
				}
			}
			b := g.Bounds()
			rng := rand.New(rand.NewSource(3))
			for trial := 0; trial < 10; trial++ {
				x := b.Min.X + rng.Float64()*b.Width()
				y := b.Min.Y + rng.Float64()*b.Height()
				rect := geom.NewRect(geom.Point{X: x, Y: y},
					geom.Point{X: x + rng.Float64()*b.Width()/3, Y: y + rng.Float64()*b.Height()/3})
				got, err := bulk.RangeQuery(rect)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.RangeQuery(rect)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("range query %d vs %d results", len(got), len(want))
				}
				seen := map[graph.NodeID]bool{}
				for _, r := range got {
					seen[r.ID] = true
				}
				for _, r := range want {
					if !seen[r.ID] {
						t.Fatalf("range query missing %d", r.ID)
					}
				}
			}
		})
	}
}

// TestFileBulkLoadDuplicateZValues pins the tie-break: nodes sharing a
// grid cell collapse to one Z value, and only the node id in the key's
// low bits keeps the bulk-built runs strictly ascending.
func TestFileBulkLoadDuplicateZValues(t *testing.T) {
	g := graph.NewNetwork()
	// 40 nodes on 4 distinct positions -> 10 identical Z values each.
	for i := graph.NodeID(0); i < 40; i++ {
		pos := geom.Point{X: float64(i % 4), Y: float64(i % 4)}
		if err := g.AddNode(graph.Node{ID: i, Pos: pos}); err != nil {
			t.Fatal(err)
		}
	}
	for i := graph.NodeID(0); i < 39; i++ {
		g.AddEdge(graph.Edge{From: i, To: i + 1, Cost: 1, Weight: 1})
		g.AddEdge(graph.Edge{From: i + 1, To: i, Cost: 1, Weight: 1})
	}
	f, err := Create(Options{PageSize: 1024, PoolPages: 8, Bounds: g.Bounds()})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, clusterGroups(t, g, 1024)); err != nil {
		t.Fatal(err)
	}
	// Every co-located node must be individually findable and appear in
	// a range query covering its cell.
	recs, err := f.RangeQuery(geom.NewRect(geom.Point{X: -0.5, Y: -0.5}, geom.Point{X: 0.5, Y: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("cell (0,0) returned %d records, want 10", len(recs))
	}
	for _, id := range g.NodeIDs() {
		if _, err := f.Find(id); err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
	}
}

func TestFileBulkLoadRejectsDuplicates(t *testing.T) {
	g := testNetwork(t)
	groups := clusterGroups(t, g, 1024)
	// Repeat one node in an extra group of its own.
	bad := append(append([][]graph.NodeID{}, groups...), []graph.NodeID{groups[0][0]})
	f, err := Create(Options{PageSize: 1024, PoolPages: 32, Bounds: g.Bounds()})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BulkLoad(g, bad); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate node = %v", err)
	}
	// Loading into a non-empty file must fail.
	f2 := buildFile(t, g, 1024, 32)
	if err := f2.BulkLoad(g, groups); err == nil {
		t.Fatal("bulk load into non-empty file accepted")
	}
}
