// Package exec runs planned CCAM-QL statements against a stored file.
// The executor follows the plan's chosen access path exactly — the
// same record-read sequence the planner predicted — so the measured
// data-page reads of an execution are directly comparable to the
// plan's predicted pages.
package exec

import (
	"context"
	"fmt"
	"sort"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/query"
	"ccam/internal/query/lang"
	"ccam/internal/query/plan"
)

// Source is the read surface a plan executes against: the traversal
// Reader plus the context-aware point, scan, window and route reads
// the access paths use. Both the live *netfile.File and an LSN-pinned
// *netfile.Snapshot implement it — the facade executes statements
// against a snapshot, so a running query never blocks a mutation
// batch and never sees a half-applied one.
type Source interface {
	query.Reader
	FindCtx(ctx context.Context, id graph.NodeID) (*netfile.Record, error)
	Scan(fn func(rec *netfile.Record) bool) error
	RangeQueryCtx(ctx context.Context, rect geom.Rect) ([]*netfile.Record, error)
	EvaluateRouteCtx(ctx context.Context, route graph.Route) (netfile.RouteAggregate, error)
}

var (
	_ Source = (*netfile.File)(nil)
	_ Source = (*netfile.Snapshot)(nil)
)

// MaxResultNodes caps the node rows a result carries; Count still
// reports the full match count and Truncated flags the cut.
const MaxResultNodes = 4096

// Actuals are the measured per-request I/O deltas of an execution,
// taken from the file's physical counters by the caller (the facade
// snapshots before Run and diffs after).
type Actuals struct {
	DataReads    int64 `json:"data_reads"`
	IndexPages   int64 `json:"index_pages"`
	BufferHits   int64 `json:"buffer_hits"`
	BufferMisses int64 `json:"buffer_misses"`
}

// NodeResult is one node row of a result.
type NodeResult struct {
	ID    graph.NodeID `json:"id"`
	X     float64      `json:"x"`
	Y     float64      `json:"y"`
	Succs int          `json:"succs"`
}

// AggValue is a computed aggregate.
type AggValue struct {
	Fn   string `json:"fn"`
	Attr string `json:"attr"`
	// Value is the aggregate value (for COUNT, the count as a float).
	Value float64 `json:"value"`
	// Count is the number of values aggregated over.
	Count int `json:"count"`
}

// Result is the outcome of one statement: the plan that produced it,
// the rows/aggregate/path payload of the statement kind, and — after
// execution — the measured I/O.
type Result struct {
	// Stmt is the canonical statement text; Kind its statement kind.
	Stmt string `json:"stmt"`
	Kind string `json:"kind"`
	// Explain is true when the statement was EXPLAIN-only: the plan
	// and its rendering are filled in, nothing was executed.
	Explain bool       `json:"explain,omitempty"`
	Plan    *plan.Plan `json:"plan,omitempty"`
	// Text is the human-readable EXPLAIN rendering.
	Text string `json:"text,omitempty"`

	// Nodes carries result rows (FIND, WINDOW, NEIGHBORS), capped at
	// MaxResultNodes and sorted by id; Count is the uncapped total.
	Nodes     []NodeResult `json:"nodes,omitempty"`
	Count     int          `json:"count,omitempty"`
	Truncated bool         `json:"truncated,omitempty"`
	// Agg is the AGG clause's value (NEIGHBORS, ROUTE).
	Agg *AggValue `json:"agg,omitempty"`
	// Cost and Path carry ROUTE/PATH traversal results.
	Cost float64        `json:"cost,omitempty"`
	Path []graph.NodeID `json:"path,omitempty"`

	// Actual is the measured I/O of the execution, filled by the
	// caller from physical-counter deltas; nil for EXPLAIN.
	Actual *Actuals `json:"actual,omitempty"`
}

// Explain builds the EXPLAIN-only result for a plan.
func Explain(pl *plan.Plan) *Result {
	return &Result{
		Stmt:    pl.Stmt,
		Kind:    pl.Kind,
		Explain: true,
		Plan:    pl,
		Text:    pl.Describe(),
	}
}

// Run executes the statement along the plan's chosen access path.
func Run(ctx context.Context, f Source, pl *plan.Plan, q *lang.Query) (*Result, error) {
	res := &Result{Stmt: pl.Stmt, Kind: pl.Kind, Plan: pl}
	var err error
	switch s := q.Stmt.(type) {
	case *lang.Find:
		err = runFind(ctx, f, s, res)
	case *lang.Window:
		err = runWindow(ctx, f, pl, s, res)
	case *lang.Neighbors:
		err = runNeighbors(ctx, f, pl, s, res)
	case *lang.RouteEval:
		err = runRoute(ctx, f, s, res)
	case *lang.ShortestPath:
		err = runPath(ctx, f, s, res)
	default:
		err = fmt.Errorf("%w: statement %T", plan.ErrUnsupported, q.Stmt)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

func nodeRow(rec *netfile.Record) NodeResult {
	return NodeResult{ID: rec.ID, X: rec.Pos.X, Y: rec.Pos.Y, Succs: len(rec.Succs)}
}

// fillNodes sorts rows by id and applies the result cap.
func (r *Result) fillNodes(rows []NodeResult) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	r.Count = len(rows)
	if len(rows) > MaxResultNodes {
		rows = rows[:MaxResultNodes]
		r.Truncated = true
	}
	r.Nodes = rows
}

func runFind(ctx context.Context, f Source, s *lang.Find, res *Result) error {
	rec, err := f.FindCtx(ctx, s.ID)
	if err != nil {
		return err
	}
	res.fillNodes([]NodeResult{nodeRow(rec)})
	return nil
}

func runWindow(ctx context.Context, f Source, pl *plan.Plan, s *lang.Window, res *Result) error {
	var rows []NodeResult
	if pl.Chosen.Path == plan.PathPAGScan {
		// Sequential PAG-ordered scan, filtering in memory.
		var scanErr error
		err := f.Scan(func(rec *netfile.Record) bool {
			if scanErr = ctx.Err(); scanErr != nil {
				return false
			}
			if s.Rect.Contains(rec.Pos) {
				rows = append(rows, nodeRow(rec))
			}
			return true
		})
		if err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
	} else {
		recs, err := f.RangeQueryCtx(ctx, s.Rect)
		if err != nil {
			return err
		}
		rows = make([]NodeResult, len(recs))
		for i, rec := range recs {
			rows[i] = nodeRow(rec)
		}
	}
	res.fillNodes(rows)
	return nil
}

func runNeighbors(ctx context.Context, f Source, pl *plan.Plan, s *lang.Neighbors, res *Result) error {
	var ball []*netfile.Record
	var interior []*netfile.Record
	if pl.Chosen.Path == plan.PathPAGScan {
		// Load the whole file once, sequentially, then walk in memory.
		recs := make(map[graph.NodeID]*netfile.Record)
		var scanErr error
		err := f.Scan(func(rec *netfile.Record) bool {
			if scanErr = ctx.Err(); scanErr != nil {
				return false
			}
			recs[rec.ID] = rec
			return true
		})
		if err != nil {
			return err
		}
		if scanErr != nil {
			return scanErr
		}
		start, ok := recs[s.ID]
		if !ok {
			return fmt.Errorf("%w: %d", netfile.ErrNotFound, s.ID)
		}
		ball, interior = bfs(start, s.Depth, func(id graph.NodeID) (*netfile.Record, error) {
			if r, ok := recs[id]; ok {
				return r, nil
			}
			return nil, fmt.Errorf("%w: %d", netfile.ErrNotFound, id)
		})
	} else {
		// Successor expansion through the buffer pool: every ball
		// member's record is read exactly once, matching the planner's
		// distinct-page prediction.
		start, err := f.FindCtx(ctx, s.ID)
		if err != nil {
			return err
		}
		var walkErr error
		ball, interior = bfs(start, s.Depth, func(id graph.NodeID) (*netfile.Record, error) {
			r, err := f.FindCtx(ctx, id)
			if err != nil {
				walkErr = err
			}
			return r, err
		})
		if walkErr != nil {
			return walkErr
		}
	}
	rows := make([]NodeResult, len(ball))
	for i, rec := range ball {
		rows[i] = nodeRow(rec)
	}
	res.fillNodes(rows)
	if s.Agg != nil {
		res.Agg = neighborsAgg(s.Agg, ball, interior)
	}
	return nil
}

// bfs walks successor edges breadth-first from start for depth hops,
// fetching each newly discovered node once. It returns the ball (all
// reached nodes, start included) and the interior (the expanded
// nodes). A fetch error aborts the walk; the caller detects it
// through its own closure state.
func bfs(start *netfile.Record, depth int, fetch func(graph.NodeID) (*netfile.Record, error)) (ball, interior []*netfile.Record) {
	seen := map[graph.NodeID]bool{start.ID: true}
	ball = []*netfile.Record{start}
	frontier := []*netfile.Record{start}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []*netfile.Record
		for _, u := range frontier {
			interior = append(interior, u)
			for _, s := range u.Succs {
				if seen[s.To] {
					continue
				}
				seen[s.To] = true
				r, err := fetch(s.To)
				if err != nil {
					return nil, nil
				}
				ball = append(ball, r)
				next = append(next, r)
			}
		}
		frontier = next
	}
	return ball, interior
}

// neighborsAgg computes the AGG clause over the neighborhood:
// COUNT(nodes) counts the ball; the cost aggregates run over every
// successor edge of the interior (expanded) nodes.
func neighborsAgg(a *lang.Agg, ball, interior []*netfile.Record) *AggValue {
	out := &AggValue{Fn: a.Fn.String(), Attr: a.Attr}
	if a.Attr == "nodes" {
		out.Count = len(ball)
		out.Value = float64(len(ball))
		return out
	}
	for _, u := range interior {
		for _, s := range u.Succs {
			c := float64(s.Cost)
			switch a.Fn {
			case lang.AggSum:
				out.Value += c
			case lang.AggMin:
				if out.Count == 0 || c < out.Value {
					out.Value = c
				}
			}
			out.Count++
		}
	}
	if a.Fn == lang.AggCount {
		out.Value = float64(out.Count)
	}
	return out
}

func runRoute(ctx context.Context, f Source, s *lang.RouteEval, res *Result) error {
	agg, err := f.EvaluateRouteCtx(ctx, graph.Route(s.IDs))
	if err != nil {
		return err
	}
	res.Cost = agg.TotalCost
	res.Count = agg.Nodes
	res.Path = append([]graph.NodeID(nil), s.IDs...)
	if s.Agg != nil {
		out := &AggValue{Fn: s.Agg.Fn.String(), Attr: s.Agg.Attr}
		switch {
		case s.Agg.Attr == "nodes": // COUNT(nodes)
			out.Count = agg.Nodes
			out.Value = float64(agg.Nodes)
		case s.Agg.Fn == lang.AggSum:
			out.Count = agg.Nodes - 1
			out.Value = agg.TotalCost
		case s.Agg.Fn == lang.AggMin:
			out.Count = agg.Nodes - 1
			out.Value = agg.MinCost
		case s.Agg.Fn == lang.AggCount:
			out.Count = agg.Nodes - 1
			out.Value = float64(agg.Nodes - 1)
		}
		res.Agg = out
	}
	return nil
}

func runPath(ctx context.Context, f Source, s *lang.ShortestPath, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := query.Dijkstra(f, s.Src, s.Dst)
	if err != nil {
		return err
	}
	res.Cost = p.Cost
	res.Path = p.Nodes
	res.Count = len(p.Nodes)
	return nil
}
