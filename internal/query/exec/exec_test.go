package exec

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ccam/internal/ccam"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/query/lang"
	"ccam/internal/query/plan"
)

func buildFile(t *testing.T) (*netfile.File, *plan.Catalog) {
	t.Helper()
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 12, 12
	g, err := graph.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ccam.New(ccam.Config{PageSize: 1024, PoolPages: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	f := m.File()
	c, err := plan.NewCatalog(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

func run(t *testing.T, f *netfile.File, c *plan.Catalog, src string) *Result {
	t.Helper()
	q, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	pl, err := plan.Build(c, q)
	if err != nil {
		t.Fatalf("Build(%q): %v", src, err)
	}
	res, err := Run(context.Background(), f, pl, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

// forcePath rebuilds a plan with the chosen path overridden, so both
// executor paths can be compared on the same statement.
func forcePath(t *testing.T, c *plan.Catalog, src string, path plan.AccessPath) (*plan.Plan, *lang.Query) {
	t.Helper()
	q, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(c, q)
	if err != nil {
		t.Fatal(err)
	}
	pl.Chosen.Path = path
	return pl, q
}

func TestWindowScanMatchesIndex(t *testing.T) {
	f, c := buildFile(t)
	src := "WINDOW (0, 0, 2000, 1500)"
	viaIndex := run(t, f, c, src)

	pl, q := forcePath(t, c, src, plan.PathPAGScan)
	viaScan, err := Run(context.Background(), f, pl, q)
	if err != nil {
		t.Fatal(err)
	}
	if viaIndex.Count == 0 {
		t.Fatal("window matched nothing; widen the test rect")
	}
	if !reflect.DeepEqual(viaIndex.Nodes, viaScan.Nodes) {
		t.Errorf("index path and scan path disagree: %d vs %d rows",
			len(viaIndex.Nodes), len(viaScan.Nodes))
	}
}

func TestNeighborsScanMatchesExpansion(t *testing.T) {
	f, c := buildFile(t)
	start := anyNode(t, f)
	src := "NEIGHBORS " + itoa(start) + " DEPTH 2 AGG SUM(cost)"

	plExp, qExp := forcePath(t, c, src, plan.PathSuccExpand)
	viaExpand, err := Run(context.Background(), f, plExp, qExp)
	if err != nil {
		t.Fatal(err)
	}
	plScan, qScan := forcePath(t, c, src, plan.PathPAGScan)
	viaScan, err := Run(context.Background(), f, plScan, qScan)
	if err != nil {
		t.Fatal(err)
	}
	if viaExpand.Count < 3 {
		t.Fatalf("depth-2 ball has only %d nodes", viaExpand.Count)
	}
	if !reflect.DeepEqual(viaExpand.Nodes, viaScan.Nodes) {
		t.Error("expansion and scan paths return different balls")
	}
	if viaExpand.Agg == nil || viaScan.Agg == nil {
		t.Fatal("missing aggregate")
	}
	if viaExpand.Agg.Value != viaScan.Agg.Value || viaExpand.Agg.Count != viaScan.Agg.Count {
		t.Errorf("aggregates disagree: %+v vs %+v", viaExpand.Agg, viaScan.Agg)
	}
	if viaExpand.Agg.Value <= 0 {
		t.Errorf("SUM(cost) = %v, want > 0", viaExpand.Agg.Value)
	}
}

func TestNeighborsCountNodes(t *testing.T) {
	f, c := buildFile(t)
	start := anyNode(t, f)
	res := run(t, f, c, "NEIGHBORS "+itoa(start)+" DEPTH 1 AGG COUNT(nodes)")
	if res.Agg == nil || int(res.Agg.Value) != res.Count {
		t.Errorf("COUNT(nodes) = %+v, want count %d", res.Agg, res.Count)
	}
}

func TestRouteAndPath(t *testing.T) {
	f, c := buildFile(t)
	// Find a real 2-hop route: a node, a successor, a successor's
	// successor.
	var route []graph.NodeID
	err := f.Scan(func(rec *netfile.Record) bool {
		if len(rec.Succs) == 0 {
			return true
		}
		mid, err := f.Find(rec.Succs[0].To)
		if err != nil {
			return true
		}
		// The road map is bidirectional: skip successors that lead
		// straight back, we need three distinct nodes.
		for _, s := range mid.Succs {
			if s.To != rec.ID && s.To != mid.ID {
				route = []graph.NodeID{rec.ID, mid.ID, s.To}
				return false
			}
		}
		return true
	})
	if err != nil || len(route) != 3 {
		t.Fatalf("no 2-hop route found: %v", err)
	}
	src := "ROUTE " + itoa(route[0]) + ", " + itoa(route[1]) + ", " + itoa(route[2]) + " AGG MIN(cost)"
	res := run(t, f, c, src)
	if res.Count != 3 || res.Cost <= 0 {
		t.Errorf("route result: count=%d cost=%v", res.Count, res.Cost)
	}
	if res.Agg == nil || res.Agg.Count != 2 || res.Agg.Value <= 0 || res.Agg.Value > res.Cost {
		t.Errorf("MIN(cost) = %+v (total %v)", res.Agg, res.Cost)
	}

	pres := run(t, f, c, "PATH "+itoa(route[0])+" TO "+itoa(route[2]))
	if len(pres.Path) < 2 || pres.Path[0] != route[0] || pres.Path[len(pres.Path)-1] != route[2] {
		t.Errorf("path = %v", pres.Path)
	}
	if pres.Cost <= 0 || pres.Cost > res.Cost+1e-9 {
		t.Errorf("shortest cost %v exceeds known route cost %v", pres.Cost, res.Cost)
	}
}

func TestRunErrors(t *testing.T) {
	f, c := buildFile(t)
	q, err := lang.Parse("FIND 4000000000")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), f, pl, q); !errors.Is(err, netfile.ErrNotFound) {
		t.Errorf("missing find: %v, want ErrNotFound", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q2, _ := lang.Parse("WINDOW (0, 0, 100000, 100000)")
	pl2, err := plan.Build(c, q2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, f, pl2, q2); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled window: %v, want context.Canceled", err)
	}
}

func TestExplainResult(t *testing.T) {
	_, c := buildFile(t)
	q, err := lang.Parse("EXPLAIN FIND 1")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Build(c, q)
	if err != nil {
		t.Fatal(err)
	}
	res := Explain(pl)
	if !res.Explain || res.Plan == nil || res.Text == "" {
		t.Errorf("explain result incomplete: %+v", res)
	}
	if res.Nodes != nil || res.Actual != nil {
		t.Error("explain result must not carry rows or actuals")
	}
}

func anyNode(t *testing.T, f *netfile.File) graph.NodeID {
	t.Helper()
	var id graph.NodeID
	found := false
	if err := f.Scan(func(rec *netfile.Record) bool {
		if len(rec.Succs) > 0 {
			id, found = rec.ID, true
			return false
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("no node with successors")
	}
	return id
}

func itoa(id graph.NodeID) string {
	return (&lang.Find{ID: id}).String()[len("FIND "):]
}
