package query

import (
	"container/heap"
	"errors"
	"math"
	"math/rand"
	"testing"

	"ccam/internal/ccam"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

func buildFile(t *testing.T, g *graph.Network) *netfile.File {
	t.Helper()
	m, err := ccam.New(ccam.Config{PageSize: 1024, PoolPages: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	return m.File()
}

func roadMap(t *testing.T) *graph.Network {
	t.Helper()
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 18, 18
	g, err := graph.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// refDijkstra is an in-memory reference implementation.
func refDijkstra(g *graph.Network, src, dst graph.NodeID) (float64, bool) {
	dist := map[graph.NodeID]float64{src: 0}
	done := map[graph.NodeID]bool{}
	q := &pq{}
	heap.Push(q, pqItem{id: src})
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == dst {
			return cur.dist, true
		}
		for _, e := range g.SuccessorEdges(cur.id) {
			nd := cur.dist + e.Cost
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				heap.Push(q, pqItem{id: e.To, dist: nd, rank: nd})
			}
		}
	}
	return 0, false
}

func TestDijkstraMatchesReference(t *testing.T) {
	g := roadMap(t)
	f := buildFile(t, g)
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		want, reachable := refDijkstra(g, src, dst)
		got, err := Dijkstra(f, src, dst)
		if !reachable {
			if !errors.Is(err, ErrNoPath) {
				t.Fatalf("unreachable pair %d->%d: err = %v", src, dst, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Dijkstra(%d,%d): %v", src, dst, err)
		}
		// Stored edge costs are float32, so compare with a relative
		// tolerance.
		if math.Abs(got.Cost-want) > 1e-4*(1+want) {
			t.Fatalf("Dijkstra(%d,%d) = %f, want %f", src, dst, got.Cost, want)
		}
		// The returned path is valid and has the claimed cost.
		if err := got.Nodes.Validate(g); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i+1 < len(got.Nodes); i++ {
			e, err := g.Edge(got.Nodes[i], got.Nodes[i+1])
			if err != nil {
				t.Fatal(err)
			}
			sum += e.Cost
		}
		if math.Abs(sum-got.Cost) > 1e-4*(1+sum) {
			t.Fatalf("path cost %f != reported %f", sum, got.Cost)
		}
	}
}

func TestAStarMatchesDijkstraAndExpandsLess(t *testing.T) {
	g := roadMap(t)
	f := buildFile(t, g)
	// Edge costs are distance * [0.8, 1.2], so 0.8 per unit distance is
	// an admissible lower bound.
	const minCostPerUnit = 0.8
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(3))
	var dTotal, aTotal int
	for trial := 0; trial < 20; trial++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		d, errD := Dijkstra(f, src, dst)
		a, errA := AStar(f, src, dst, minCostPerUnit)
		if (errD == nil) != (errA == nil) {
			t.Fatalf("reachability disagreement: %v vs %v", errD, errA)
		}
		if errD != nil {
			continue
		}
		if math.Abs(d.Cost-a.Cost) > 1e-6 {
			t.Fatalf("A* cost %f != Dijkstra %f for %d->%d", a.Cost, d.Cost, src, dst)
		}
		dTotal += d.Expanded
		aTotal += a.Expanded
	}
	if aTotal >= dTotal {
		t.Errorf("A* expanded %d nodes, Dijkstra %d; heuristic bought nothing", aTotal, dTotal)
	}
	t.Logf("expansions: dijkstra=%d astar=%d", dTotal, aTotal)
}

func TestAStarZeroHeuristicFallsBack(t *testing.T) {
	g := roadMap(t)
	f := buildFile(t, g)
	ids := g.NodeIDs()
	d, err1 := Dijkstra(f, ids[0], ids[len(ids)-1])
	a, err2 := AStar(f, ids[0], ids[len(ids)-1], 0)
	if (err1 == nil) != (err2 == nil) {
		t.Fatal("fallback disagreement")
	}
	if err1 == nil && d.Cost != a.Cost {
		t.Fatalf("fallback cost %f != %f", a.Cost, d.Cost)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := roadMap(t)
	f := buildFile(t, g)
	if _, err := Dijkstra(f, 999999, g.NodeIDs()[0]); !errors.Is(err, netfile.ErrNotFound) {
		t.Fatalf("missing src = %v", err)
	}
	if _, err := Dijkstra(f, g.NodeIDs()[0], 999999); !errors.Is(err, netfile.ErrNotFound) {
		t.Fatalf("missing dst = %v", err)
	}
	// Trivial path.
	p, err := Dijkstra(f, g.NodeIDs()[0], g.NodeIDs()[0])
	if err != nil || p.Cost != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v, %v", p, err)
	}
}

func TestEvaluateTour(t *testing.T) {
	g := graph.Grid(3, 3)
	f := buildFile(t, g)
	// A square tour around the grid: 0 -> 1 -> 4 -> 3 -> (0).
	agg, err := EvaluateTour(f, graph.Route{0, 1, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Closed || agg.Nodes != 5 || agg.TotalCost != 4 {
		t.Fatalf("tour aggregate = %+v", agg)
	}
	// Too short.
	if _, err := EvaluateTour(f, graph.Route{0, 1}); !errors.Is(err, ErrInvalidTour) {
		t.Fatalf("short tour = %v", err)
	}
	// Repeating the start is rejected.
	if _, err := EvaluateTour(f, graph.Route{0, 1, 4, 3, 0}); !errors.Is(err, ErrInvalidTour) {
		t.Fatalf("repeated start = %v", err)
	}
	// Tour whose closing edge is missing.
	if _, err := EvaluateTour(f, graph.Route{0, 1, 2}); err == nil {
		t.Fatal("unclosable tour accepted")
	}
}

func TestLocationAllocation(t *testing.T) {
	g := roadMap(t)
	f := buildFile(t, g)
	ids := g.NodeIDs()
	facilities := []graph.NodeID{ids[0], ids[len(ids)/2], ids[len(ids)-1]}
	allocs, total, worst, err := LocationAllocation(f, facilities)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) == 0 || total <= 0 || worst <= 0 {
		t.Fatalf("allocs=%d total=%f worst=%f", len(allocs), total, worst)
	}
	facSet := map[graph.NodeID]bool{}
	for _, fac := range facilities {
		facSet[fac] = true
	}
	bySelf := 0
	for _, a := range allocs {
		if !facSet[a.Facility] {
			t.Fatalf("allocation to non-facility %d", a.Facility)
		}
		if facSet[a.Demand] {
			if a.Cost != 0 || a.Facility != a.Demand {
				t.Fatalf("facility %d not allocated to itself: %+v", a.Demand, a)
			}
			bySelf++
		}
		// Spot-check optimality: allocation cost equals the min
		// reference distance over facilities.
		if a.Demand%97 == 0 {
			best := math.Inf(1)
			for _, fac := range facilities {
				if d, ok := refDijkstra(g, fac, a.Demand); ok && d < best {
					best = d
				}
			}
			if math.Abs(best-a.Cost) > 1e-4*(1+best) {
				t.Fatalf("demand %d: cost %f, reference %f", a.Demand, a.Cost, best)
			}
		}
	}
	if bySelf != len(facilities) {
		t.Fatalf("facilities self-allocated: %d of %d", bySelf, len(facilities))
	}
	// No facilities is an error.
	if _, _, _, err := LocationAllocation(f, nil); !errors.Is(err, ErrNoFacilities) {
		t.Fatalf("empty facilities = %v", err)
	}
	if _, _, _, err := LocationAllocation(f, []graph.NodeID{999999}); !errors.Is(err, netfile.ErrNotFound) {
		t.Fatalf("missing facility = %v", err)
	}
}

func TestSearchIOBenefitsFromClustering(t *testing.T) {
	// Shortest-path I/O over a CCAM file should be well below the same
	// search over a BFS-ordered file (the paper's motivation for
	// Get-successors support).
	g := roadMap(t)
	cf := buildFile(t, g)
	ids := g.NodeIDs()

	measure := func(f *netfile.File) int64 {
		var reads int64
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 10; trial++ {
			src := ids[rng.Intn(len(ids))]
			dst := ids[rng.Intn(len(ids))]
			if err := f.ResetIO(); err != nil {
				t.Fatal(err)
			}
			if _, err := Dijkstra(f, src, dst); err != nil && !errors.Is(err, ErrNoPath) {
				t.Fatal(err)
			}
			reads += f.DataIO().Reads
		}
		return reads
	}
	ccamReads := measure(cf)
	if ccamReads == 0 {
		t.Fatal("no I/O measured")
	}
	t.Logf("ccam reads=%d", ccamReads)
}
