package lang

import (
	"fmt"
	"strconv"
	"strings"

	"ccam/internal/geom"
	"ccam/internal/graph"
)

// AggFn is an aggregate function of the AGG clause.
type AggFn int

// Aggregate functions.
const (
	AggSum AggFn = iota
	AggMin
	AggCount
)

// String implements fmt.Stringer (canonical upper-case spelling).
func (f AggFn) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggCount:
		return "COUNT"
	default:
		return fmt.Sprintf("AGG(%d)", int(f))
	}
}

// Agg is an AGG SUM|MIN|COUNT(<attr>) clause. The parser accepts any
// identifier as the attribute; the planner validates it against the
// attributes the statement kind supports ("cost" over the edges the
// statement touches, "nodes" for COUNT of distinct result nodes).
type Agg struct {
	Fn   AggFn
	Attr string
}

// String implements fmt.Stringer.
func (a *Agg) String() string {
	return fmt.Sprintf("AGG %s(%s)", a.Fn, a.Attr)
}

// Stmt is one CCAM-QL statement. The concrete types are Find, Window,
// Neighbors, RouteEval and ShortestPath; String prints the canonical
// form, which re-parses to an equal statement.
type Stmt interface {
	fmt.Stringer
	isStmt()
}

// Find is FIND <id>: a point lookup of one node record.
type Find struct {
	ID graph.NodeID
}

func (*Find) isStmt() {}

// String implements fmt.Stringer.
func (s *Find) String() string {
	return "FIND " + strconv.FormatUint(uint64(s.ID), 10)
}

// Window is WINDOW (x1, y1, x2, y2): all nodes whose position lies in
// the axis-aligned rectangle spanned by the two corners (boundary
// inclusive, corners in any orientation — the rect is normalized at
// parse time).
type Window struct {
	Rect geom.Rect
}

func (*Window) isStmt() {}

// String implements fmt.Stringer.
func (s *Window) String() string {
	return fmt.Sprintf("WINDOW (%s, %s, %s, %s)",
		formatCoord(s.Rect.Min.X), formatCoord(s.Rect.Min.Y),
		formatCoord(s.Rect.Max.X), formatCoord(s.Rect.Max.Y))
}

// Neighbors is NEIGHBORS <id> DEPTH <k> [AGG ...]: the nodes within k
// directed hops of the start node, optionally aggregated.
type Neighbors struct {
	ID    graph.NodeID
	Depth int
	Agg   *Agg // nil without an AGG clause
}

func (*Neighbors) isStmt() {}

// String implements fmt.Stringer.
func (s *Neighbors) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NEIGHBORS %d DEPTH %d", s.ID, s.Depth)
	if s.Agg != nil {
		b.WriteByte(' ')
		b.WriteString(s.Agg.String())
	}
	return b.String()
}

// RouteEval is ROUTE <id>, <id>, ... [AGG ...]: evaluate the route
// following the listed nodes along directed edges.
type RouteEval struct {
	IDs []graph.NodeID
	Agg *Agg // nil without an AGG clause
}

func (*RouteEval) isStmt() {}

// String implements fmt.Stringer.
func (s *RouteEval) String() string {
	var b strings.Builder
	b.WriteString("ROUTE ")
	for i, id := range s.IDs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	if s.Agg != nil {
		b.WriteByte(' ')
		b.WriteString(s.Agg.String())
	}
	return b.String()
}

// ShortestPath is PATH <src> TO <dst>: a cheapest path between two
// stored nodes.
type ShortestPath struct {
	Src, Dst graph.NodeID
}

func (*ShortestPath) isStmt() {}

// String implements fmt.Stringer.
func (s *ShortestPath) String() string {
	return fmt.Sprintf("PATH %d TO %d", s.Src, s.Dst)
}

// Query is one parsed input: a statement, optionally under EXPLAIN.
type Query struct {
	Explain bool
	Stmt    Stmt
}

// String implements fmt.Stringer: the canonical source form.
func (q *Query) String() string {
	if q.Explain {
		return "EXPLAIN " + q.Stmt.String()
	}
	return q.Stmt.String()
}

// formatCoord prints a coordinate in its shortest form that re-parses
// to the same float64, keeping parse → print → parse a fixpoint.
func formatCoord(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
