package lang

import (
	"errors"
	"strings"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"FIND 7", "FIND 7"},
		{"find   0007", "FIND 7"},
		{"explain find 1", "EXPLAIN FIND 1"},
		{"WINDOW (0, 0, 10, 5)", "WINDOW (0, 0, 10, 5)"},
		{"window(10,5,0,0)", "WINDOW (0, 0, 10, 5)"}, // corners normalize
		{"WINDOW (-1.5, 2e3, 4.25, -0.5)", "WINDOW (-1.5, -0.5, 4.25, 2000)"},
		{"NEIGHBORS 17 DEPTH 2", "NEIGHBORS 17 DEPTH 2"},
		{"neighbors 17 depth 2 agg sum(COST)", "NEIGHBORS 17 DEPTH 2 AGG SUM(cost)"},
		{"NEIGHBORS 3 DEPTH 1 AGG COUNT(nodes)", "NEIGHBORS 3 DEPTH 1 AGG COUNT(nodes)"},
		{"ROUTE 1, 2, 3", "ROUTE 1, 2, 3"},
		{"route 1,2", "ROUTE 1, 2"},
		{"ROUTE 9, 8, 7 AGG MIN(cost)", "ROUTE 9, 8, 7 AGG MIN(cost)"},
		{"PATH 4 TO 40", "PATH 4 TO 40"},
		{"path 4 to 40", "PATH 4 TO 40"},
		{"EXPLAIN WINDOW (1, 2, 3, 4)", "EXPLAIN WINDOW (1, 2, 3, 4)"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
		// Canonical form is a fixpoint.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse %q: %v", q.String(), err)
			continue
		}
		if got := q2.String(); got != c.want {
			t.Errorf("reparse fixpoint broken: %q -> %q", c.want, got)
		}
	}
}

func TestParseAST(t *testing.T) {
	q, err := Parse("EXPLAIN NEIGHBORS 17 DEPTH 2 AGG SUM(cost)")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Error("Explain not set")
	}
	n, ok := q.Stmt.(*Neighbors)
	if !ok {
		t.Fatalf("statement is %T, want *Neighbors", q.Stmt)
	}
	if n.ID != 17 || n.Depth != 2 {
		t.Errorf("got id=%d depth=%d", n.ID, n.Depth)
	}
	if n.Agg == nil || n.Agg.Fn != AggSum || n.Agg.Attr != "cost" {
		t.Errorf("agg = %+v", n.Agg)
	}

	q, err = Parse("WINDOW (3, 4, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	w := q.Stmt.(*Window)
	want := geom.Rect{Min: geom.Point{X: 1, Y: 2}, Max: geom.Point{X: 3, Y: 4}}
	if w.Rect != want {
		t.Errorf("rect = %+v, want %+v", w.Rect, want)
	}

	q, err = Parse("ROUTE 5, 6, 7, 8")
	if err != nil {
		t.Fatal(err)
	}
	r := q.Stmt.(*RouteEval)
	if len(r.IDs) != 4 || r.IDs[0] != 5 || r.IDs[3] != 8 {
		t.Errorf("route ids = %v", r.IDs)
	}

	q, err = Parse("PATH 1 TO 2")
	if err != nil {
		t.Fatal(err)
	}
	sp := q.Stmt.(*ShortestPath)
	if sp.Src != 1 || sp.Dst != 2 {
		t.Errorf("path = %+v", sp)
	}

	q, err = Parse("FIND 4294967295") // max uint32
	if err != nil {
		t.Fatal(err)
	}
	if q.Stmt.(*Find).ID != graph.NodeID(4294967295) {
		t.Errorf("id = %d", q.Stmt.(*Find).ID)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected a statement"},
		{"SELECT 1", "unknown statement"},
		{"FIND", "expected number"},
		{"FIND x", "expected number"},
		{"FIND -1", "unsigned 32-bit"},
		{"FIND 1.5", "unsigned 32-bit"},
		{"FIND 4294967296", "unsigned 32-bit"},
		{"FIND 1 2", "after statement"},
		{"WINDOW 1, 2, 3, 4", "expected '('"},
		{"WINDOW (1, 2, 3)", "expected ','"},
		{"WINDOW (1, 2, 3, 1e999)", "bad coordinate"},
		{"WINDOW (1, 2, 3, 4", "expected ')'"},
		{"NEIGHBORS 1 DEPTH 0", "positive integer"},
		{"NEIGHBORS 1 DEPTH -3", "positive integer"},
		{"NEIGHBORS 1 DEPTH x", "expected number"},
		{"NEIGHBORS 1", "expected DEPTH"},
		{"ROUTE 1", "at least 2 nodes"},
		{"ROUTE 1, 2 AGG AVG(cost)", "unknown aggregate"},
		{"ROUTE 1, 2 AGG SUM cost", "expected '('"},
		{"ROUTE 1, 2 AGG SUM(cost", "expected ')'"},
		{"PATH 1 2", "expected TO"},
		{"FIND 1; FIND 2", "unexpected character"},
		{"FIND --1", "'-' must start a number"},
		{"EXPLAIN", "expected a statement"},
		{"EXPLAIN EXPLAIN FIND 1", "unknown statement"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) = %v, want error", c.src, q)
			continue
		}
		if !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) error %v does not unwrap to ErrParse", c.src, err)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %T is not *ParseError", c.src, err)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseSourceTooLong(t *testing.T) {
	src := "FIND " + strings.Repeat(" ", maxSourceLen)
	if _, err := Parse(src + "1"); !errors.Is(err, ErrParse) {
		t.Errorf("oversized source: got %v, want ErrParse", err)
	}
}
