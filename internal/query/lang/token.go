// Package lang implements CCAM-QL, the small declarative statement
// language over a stored network:
//
//	FIND <id>
//	WINDOW (x1, y1, x2, y2)
//	NEIGHBORS <id> DEPTH <k> [AGG SUM|MIN|COUNT(<attr>)]
//	ROUTE <id>, <id>, ... [AGG SUM|MIN|COUNT(<attr>)]
//	PATH <src> TO <dst>
//
// each optionally prefixed with EXPLAIN. The package is the front end
// only — a lexer, a recursive-descent parser and a typed AST whose
// String methods print the canonical form (parse → print → parse is a
// fixpoint, fuzz-asserted). Planning and execution live in the sibling
// plan and exec packages.
package lang

// tokKind classifies a lexical token.
type tokKind int

const (
	tokEOF tokKind = iota
	// tokIdent is a bare word: keywords and aggregate attribute names.
	tokIdent
	// tokNumber is a numeric literal (integer or float, optional
	// leading minus, optional exponent). The parser decides whether an
	// integer is required.
	tokNumber
	tokLParen
	tokRParen
	tokComma
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	default:
		return "unknown token"
	}
}

// token is one lexical token with its byte position in the source.
type token struct {
	kind tokKind
	text string
	pos  int
}
