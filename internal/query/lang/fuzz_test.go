package lang

import "testing"

// FuzzParse asserts the two safety properties of the front end on
// arbitrary input: the parser never panics, and on any accepted input
// the canonical printed form is a fixpoint — it re-parses, and
// printing the reparse reproduces it byte for byte.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"FIND 7",
		"EXPLAIN FIND 0",
		"WINDOW (0, 0, 10, 5)",
		"WINDOW (-1.5e-3, 2E3, .25, -0)",
		"NEIGHBORS 17 DEPTH 2 AGG SUM(cost)",
		"NEIGHBORS 3 DEPTH 1 AGG COUNT(nodes)",
		"ROUTE 1, 2, 3 AGG MIN(cost)",
		"PATH 4 TO 40",
		"explain neighbors 0 depth 999 agg count(COST)",
		"FIND 4294967295",
		"WINDOW(1,1,1,1)",
		"ROUTE 1,2",
		"FIND 1; DROP",
		"WINDOW (1e309, 0, 0, 0)",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form of %q does not reparse: %q: %v", src, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("print/parse fixpoint broken for %q: %q -> %q", src, s1, s2)
		}
	})
}
