package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"ccam/internal/geom"
	"ccam/internal/graph"
)

// ErrParse is the sentinel every parse failure wraps, so callers (and
// the wire layer's sentinel↔code table) can classify syntax errors
// with errors.Is without depending on the concrete *ParseError.
var ErrParse = errors.New("ccamql: parse error")

// ParseError is a syntax error with its byte position in the source.
// It unwraps to ErrParse.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("ccamql: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Unwrap makes errors.Is(err, ErrParse) hold.
func (e *ParseError) Unwrap() error { return ErrParse }

func errorf(pos int, format string, args ...interface{}) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// maxSourceLen bounds the accepted source size; a statement is a few
// hundred bytes, and the bound keeps a hostile client from feeding the
// parser megabytes through the wire.
const maxSourceLen = 1 << 20

// maxRouteNodes bounds the node list of a ROUTE statement.
const maxRouteNodes = 1 << 16

// Parse parses one CCAM-QL statement, optionally prefixed with
// EXPLAIN. Every failure unwraps to ErrParse.
func Parse(src string) (*Query, error) {
	if len(src) > maxSourceLen {
		return nil, errorf(maxSourceLen, "source exceeds %d bytes", maxSourceLen)
	}
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.tok.kind == tokIdent && keywordEq(p.tok.text, "EXPLAIN") {
		q.Explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errorf(p.tok.pos, "unexpected %s %q after statement", p.tok.kind, p.tok.text)
	}
	q.Stmt = stmt
	return q, nil
}

// parser is the one-token-lookahead recursive-descent parser.
type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// keywordEq compares an identifier to a keyword, case-insensitively.
// Keywords are pure ASCII, so strings.EqualFold is exact.
func keywordEq(text, kw string) bool { return strings.EqualFold(text, kw) }

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokIdent || !keywordEq(p.tok.text, kw) {
		return errorf(p.tok.pos, "expected %s, got %s %q", kw, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

// expect consumes a token of the given kind, returning it.
func (p *parser) expect(kind tokKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, errorf(p.tok.pos, "expected %s, got %s %q", kind, p.tok.kind, p.tok.text)
	}
	tok := p.tok
	return tok, p.advance()
}

func (p *parser) statement() (Stmt, error) {
	if p.tok.kind != tokIdent {
		return nil, errorf(p.tok.pos, "expected a statement keyword (FIND, WINDOW, NEIGHBORS, ROUTE, PATH), got %s %q", p.tok.kind, p.tok.text)
	}
	kw := p.tok.text
	switch {
	case keywordEq(kw, "FIND"):
		return p.findStmt()
	case keywordEq(kw, "WINDOW"):
		return p.windowStmt()
	case keywordEq(kw, "NEIGHBORS"):
		return p.neighborsStmt()
	case keywordEq(kw, "ROUTE"):
		return p.routeStmt()
	case keywordEq(kw, "PATH"):
		return p.pathStmt()
	default:
		return nil, errorf(p.tok.pos, "unknown statement %q (want FIND, WINDOW, NEIGHBORS, ROUTE or PATH)", kw)
	}
}

func (p *parser) findStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // FIND
		return nil, err
	}
	id, err := p.nodeID()
	if err != nil {
		return nil, err
	}
	return &Find{ID: id}, nil
}

func (p *parser) windowStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // WINDOW
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var c [4]float64
	for i := range c {
		if i > 0 {
			if _, err := p.expect(tokComma); err != nil {
				return nil, err
			}
		}
		v, err := p.coord()
		if err != nil {
			return nil, err
		}
		c[i] = v
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	rect := geom.NewRect(geom.Point{X: c[0], Y: c[1]}, geom.Point{X: c[2], Y: c[3]})
	return &Window{Rect: rect}, nil
}

func (p *parser) neighborsStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // NEIGHBORS
		return nil, err
	}
	id, err := p.nodeID()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("DEPTH"); err != nil {
		return nil, err
	}
	tok, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	depth, err := strconv.Atoi(tok.text)
	if err != nil || depth < 1 {
		return nil, errorf(tok.pos, "DEPTH must be a positive integer, got %q", tok.text)
	}
	agg, err := p.optionalAgg()
	if err != nil {
		return nil, err
	}
	return &Neighbors{ID: id, Depth: depth, Agg: agg}, nil
}

func (p *parser) routeStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // ROUTE
		return nil, err
	}
	var ids []graph.NodeID
	for {
		id, err := p.nodeID()
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		if len(ids) > maxRouteNodes {
			return nil, errorf(p.tok.pos, "ROUTE exceeds %d nodes", maxRouteNodes)
		}
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if len(ids) < 2 {
		return nil, errorf(p.tok.pos, "ROUTE needs at least 2 nodes, got %d", len(ids))
	}
	agg, err := p.optionalAgg()
	if err != nil {
		return nil, err
	}
	return &RouteEval{IDs: ids, Agg: agg}, nil
}

func (p *parser) pathStmt() (Stmt, error) {
	if err := p.advance(); err != nil { // PATH
		return nil, err
	}
	src, err := p.nodeID()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	dst, err := p.nodeID()
	if err != nil {
		return nil, err
	}
	return &ShortestPath{Src: src, Dst: dst}, nil
}

// optionalAgg parses a trailing AGG clause when present.
func (p *parser) optionalAgg() (*Agg, error) {
	if p.tok.kind != tokIdent || !keywordEq(p.tok.text, "AGG") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	fnTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	var fn AggFn
	switch {
	case keywordEq(fnTok.text, "SUM"):
		fn = AggSum
	case keywordEq(fnTok.text, "MIN"):
		fn = AggMin
	case keywordEq(fnTok.text, "COUNT"):
		fn = AggCount
	default:
		return nil, errorf(fnTok.pos, "unknown aggregate %q (want SUM, MIN or COUNT)", fnTok.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	attrTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	// The attribute is stored lower-cased: attribute names are not
	// user-defined identifiers but members of a small fixed vocabulary
	// ("cost", "nodes"), and canonicalizing here keeps the printed form
	// stable. Validation against the statement kind happens in the
	// planner, which reports plan.ErrUnsupported with the statement
	// context in hand.
	return &Agg{Fn: fn, Attr: strings.ToLower(attrTok.text)}, nil
}

// nodeID parses a node id: a bare non-negative integer fitting
// graph.NodeID.
func (p *parser) nodeID() (graph.NodeID, error) {
	tok, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseUint(tok.text, 10, 32)
	if perr != nil {
		return 0, errorf(tok.pos, "node id must be an unsigned 32-bit integer, got %q", tok.text)
	}
	return graph.NodeID(v), nil
}

// coord parses one window coordinate. Literals that overflow float64
// are rejected so the canonical printed form always re-parses.
func (p *parser) coord() (float64, error) {
	tok, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	v, perr := strconv.ParseFloat(tok.text, 64)
	if perr != nil {
		return 0, errorf(tok.pos, "bad coordinate %q", tok.text)
	}
	return v, nil
}
