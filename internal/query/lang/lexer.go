package lang

// lexer scans a CCAM-QL source string into tokens. It is
// deliberately byte-oriented: the language's alphabet is ASCII, and
// any other byte is a lex error with its position.
type lexer struct {
	src string
	pos int
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentCont(b byte) bool { return isIdentStart(b) || isDigit(b) }

// next returns the next token, advancing the lexer. Invalid input
// returns a *ParseError.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	b := l.src[l.pos]
	switch {
	case b == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case b == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case b == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case isIdentStart(b):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case b == '-' || b == '.' || isDigit(b):
		return l.number(start)
	default:
		return token{}, errorf(start, "unexpected character %q", b)
	}
}

// number scans a numeric literal: '-'? digits ['.' digits] [('e'|'E')
// ('+'|'-')? digits]. The scanner is permissive about shape (e.g.
// "1.2.3" is consumed whole); strconv in the parser is the validator,
// so malformed literals fail with a position instead of splitting into
// surprising token pairs.
func (l *lexer) number(start int) (token, error) {
	if l.src[l.pos] == '-' {
		l.pos++
		if l.pos >= len(l.src) || !(isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			return token{}, errorf(start, "'-' must start a number")
		}
	}
	sawExp := false
	for l.pos < len(l.src) {
		b := l.src[l.pos]
		switch {
		case isDigit(b) || b == '.':
			l.pos++
		case (b == 'e' || b == 'E') && !sawExp:
			sawExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}
