package plan

import (
	"container/heap"
	"errors"
	"fmt"
	"strings"

	"ccam/internal/costmodel"
	"ccam/internal/graph"
	"ccam/internal/query/lang"
	"ccam/internal/storage"
)

// ErrUnsupported reports a statement that parses but that the planner
// cannot execute — e.g. an aggregate attribute the statement kind does
// not define. It crosses the wire as its own error code.
var ErrUnsupported = errors.New("plan: unsupported query")

// AccessPath names a physical access path the planner can choose.
type AccessPath string

// Access paths.
const (
	// PathBTreePoint is a primary-index point lookup: one B+-tree
	// descent to the record's data page.
	PathBTreePoint AccessPath = "btree-point"
	// PathZRange drives a window query through the Z-order B+-tree
	// with BIGMIN jumps, fetching each candidate record.
	PathZRange AccessPath = "zrange"
	// PathRTreeWindow drives a window query through the R-tree.
	PathRTreeWindow AccessPath = "rtree-window"
	// PathPAGScan reads every data page once, sequentially in PAG
	// order, filtering records in memory.
	PathPAGScan AccessPath = "pag-scan"
	// PathSuccExpand expands successor lists through the buffer pool
	// (breadth-first for NEIGHBORS, best-first for PATH).
	PathSuccExpand AccessPath = "successor-expansion"
	// PathSuccChain follows a given route hop by hop, verifying each
	// hop against the predecessor's successor list.
	PathSuccChain AccessPath = "successor-chain"
)

// scanAdvantage is the sequential-over-random advantage the planner
// grants the PAG-ordered page scan: sequential page reads are counted
// at 1/scanAdvantage of a random read when comparing against an
// index-driven path. A scan therefore wins when the index path would
// touch more than Pages/scanAdvantage distinct pages.
const scanAdvantage = 2

// Estimate is one costed access path.
type Estimate struct {
	Path AccessPath `json:"path"`
	// Pages is the predicted number of data-page reads against a cold
	// buffer pool — distinct pages, resolved exactly from the
	// memory-resident structures. Execution validates this figure
	// against the measured ReqStats delta.
	Pages int `json:"pages"`
	// ModelPages is the §3 cost-model estimate for the path (the
	// formula value, fed with the live α/|A|/λ/γ statistics), or the
	// effective sequential cost for a scan.
	ModelPages float64 `json:"model_pages"`
	// Detail explains the estimate: which formula, with which inputs.
	Detail string `json:"detail,omitempty"`
}

// Plan is the planner's output for one statement.
type Plan struct {
	// Stmt is the canonical statement text.
	Stmt string `json:"stmt"`
	// Kind is the statement kind: find, window, neighbors, route, path.
	Kind string `json:"kind"`
	// Chosen is the selected access path.
	Chosen Estimate `json:"chosen"`
	// Alternatives are the rejected paths, costed.
	Alternatives []Estimate `json:"alternatives,omitempty"`
	// Stats is the catalog snapshot the plan was costed against.
	Stats Stats `json:"stats"`
}

// Build plans one parsed statement against the catalog.
func Build(c *Catalog, q *lang.Query) (*Plan, error) {
	p := &Plan{Stmt: q.Stmt.String(), Stats: c.Stats}
	params := costmodel.Params{
		Alpha:  c.Stats.Alpha,
		AvgA:   c.Stats.AvgA,
		Lambda: c.Stats.Lambda,
		Gamma:  c.Stats.Gamma,
	}
	switch s := q.Stmt.(type) {
	case *lang.Find:
		p.Kind = "find"
		c.planFind(p, s)
	case *lang.Window:
		p.Kind = "window"
		if err := c.planWindow(p, s); err != nil {
			return nil, err
		}
	case *lang.Neighbors:
		p.Kind = "neighbors"
		if err := validateAgg(s.Agg); err != nil {
			return nil, err
		}
		c.planNeighbors(p, s, params)
	case *lang.RouteEval:
		p.Kind = "route"
		if err := validateAgg(s.Agg); err != nil {
			return nil, err
		}
		c.planRoute(p, s, params)
	case *lang.ShortestPath:
		p.Kind = "path"
		c.planPath(p, s, params)
	default:
		return nil, fmt.Errorf("%w: statement %T", ErrUnsupported, q.Stmt)
	}
	return p, nil
}

// validateAgg checks the aggregate attribute against the fixed
// vocabulary: every function takes "cost" (the traversed edges'
// costs); COUNT alone also takes "nodes".
func validateAgg(a *lang.Agg) error {
	if a == nil {
		return nil
	}
	switch a.Attr {
	case "cost":
		return nil
	case "nodes":
		if a.Fn == lang.AggCount {
			return nil
		}
		return fmt.Errorf("%w: %s(nodes) — attribute \"nodes\" only supports COUNT", ErrUnsupported, a.Fn)
	default:
		return fmt.Errorf("%w: unknown aggregate attribute %q (want cost or nodes)", ErrUnsupported, a.Attr)
	}
}

// scanEstimate costs the PAG-ordered sequential scan: every data page
// exactly once, discounted by the sequential advantage for comparison.
func (c *Catalog) scanEstimate() Estimate {
	return Estimate{
		Path:       PathPAGScan,
		Pages:      c.Stats.Pages,
		ModelPages: float64(c.Stats.Pages) / scanAdvantage,
		Detail: fmt.Sprintf("sequential scan of all %d data pages in PAG order, counted at 1/%d per page",
			c.Stats.Pages, scanAdvantage),
	}
}

// pickOrScan installs est as the chosen path unless the sequential
// scan's effective cost beats it, in which case the scan wins and est
// becomes the rejected alternative.
func (c *Catalog) pickOrScan(p *Plan, est Estimate) {
	scan := c.scanEstimate()
	if float64(est.Pages) <= scan.ModelPages {
		p.Chosen, p.Alternatives = est, []Estimate{scan}
	} else {
		p.Chosen, p.Alternatives = scan, []Estimate{est}
	}
}

func (c *Catalog) planFind(p *Plan, s *lang.Find) {
	pages := 0
	if c.Has(s.ID) {
		pages = 1
	}
	p.Chosen = Estimate{
		Path:       PathBTreePoint,
		Pages:      pages,
		ModelPages: 1,
		Detail:     "one B+-tree descent to the record's data page (§2.2)",
	}
	p.Alternatives = []Estimate{c.scanEstimate()}
}

func (c *Catalog) planWindow(p *Plan, s *lang.Window) error {
	// Probe the spatial index for its candidate set — the records a
	// window query actually fetches, false positives included.
	cand := make(map[graph.NodeID]bool)
	if err := c.probe(s.Rect, func(id graph.NodeID) bool {
		cand[id] = true
		return true
	}); err != nil {
		return fmt.Errorf("plan: window probe: %w", err)
	}
	path := PathZRange
	if c.Stats.Spatial == "rtree" {
		path = PathRTreeWindow
	}
	pages := c.pagesOf(cand)
	model := float64(pages)
	if c.Stats.Gamma > 0 {
		model = float64(len(cand)) / c.Stats.Gamma
	}
	c.pickOrScan(p, Estimate{
		Path:       path,
		Pages:      pages,
		ModelPages: model,
		Detail: fmt.Sprintf("%d index candidate(s) on %d distinct page(s); γ-packed lower bound %.2f pages",
			len(cand), pages, model),
	})
	return nil
}

func (c *Catalog) planNeighbors(p *Plan, s *lang.Neighbors, params costmodel.Params) {
	ball, interior := c.neighborhood(s.ID, s.Depth)
	model := 1 + float64(interior)*costmodel.GetSuccessors(params)
	c.pickOrScan(p, Estimate{
		Path:       PathSuccExpand,
		Pages:      c.pagesOf(ball),
		ModelPages: model,
		Detail: fmt.Sprintf("§3 get-successors over %d expansion(s): 1 + %d·(1-α)·|A| = %.2f",
			interior, interior, model),
	})
}

func (c *Catalog) planRoute(p *Plan, s *lang.RouteEval, params costmodel.Params) {
	// Mirror EvaluateRoute's reads: the first node, then each verified
	// hop; a missing node or edge stops the evaluation (and the reads).
	read := make(map[graph.NodeID]bool)
	if c.Has(s.IDs[0]) {
		read[s.IDs[0]] = true
		for i := 1; i < len(s.IDs); i++ {
			if !c.hasEdge(s.IDs[i-1], s.IDs[i]) {
				break
			}
			read[s.IDs[i]] = true
		}
	}
	model := costmodel.RouteEvaluation(params, len(s.IDs))
	p.Chosen = Estimate{
		Path:       PathSuccChain,
		Pages:      c.pagesOf(read),
		ModelPages: model,
		Detail: fmt.Sprintf("§3 route evaluation, L=%d: 1 + (L-1)·(1-α) = %.2f",
			len(s.IDs), model),
	}
}

func (c *Catalog) planPath(p *Plan, s *lang.ShortestPath, params costmodel.Params) {
	read := c.dijkstraReads(s.Src, s.Dst)
	model := costmodel.RouteEvaluation(params, len(read))
	p.Chosen = Estimate{
		Path:       PathSuccExpand,
		Pages:      c.pagesOf(read),
		ModelPages: model,
		Detail: fmt.Sprintf("§3 route-evaluation form over %d expanded node(s): 1 + (n-1)·(1-α) = %.2f",
			len(read), model),
	}
}

func (c *Catalog) hasEdge(from, to graph.NodeID) bool {
	for _, e := range c.succs[from] {
		if e.to == to {
			return true
		}
	}
	return false
}

// neighborhood computes the ball of nodes within depth hops of id
// (following successor edges, as the executor's BFS does) and the
// number of expansions — interior nodes whose successor lists are
// followed. Every ball member's record is read exactly once.
func (c *Catalog) neighborhood(id graph.NodeID, depth int) (ball map[graph.NodeID]bool, interior int) {
	ball = make(map[graph.NodeID]bool)
	if !c.Has(id) {
		return ball, 0
	}
	ball[id] = true
	frontier := []graph.NodeID{id}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, u := range frontier {
			interior++
			for _, e := range c.succs[u] {
				if !ball[e.to] {
					ball[e.to] = true
					next = append(next, e.to)
				}
			}
		}
		frontier = next
	}
	return ball, interior
}

// --- Dijkstra mirror ---

// pqItem / pqMirror replicate query.Dijkstra's priority queue exactly
// (same Less, same container/heap), so the mirror settles the same
// node set in the same order and the predicted page set matches the
// executor's reads node for node.
type pqItem struct {
	id   graph.NodeID
	dist float64
}

type pqMirror []pqItem

func (q pqMirror) Len() int            { return len(q) }
func (q pqMirror) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pqMirror) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqMirror) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqMirror) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// dijkstraReads mirrors query.Dijkstra over the catalog's adjacency
// and returns the set of node records the executor will read: the
// source plus every expanded node. The destination's record is not
// read — Dijkstra returns the moment it settles. Costs accumulate
// from the stored float32 values exactly as the executor does.
func (c *Catalog) dijkstraReads(src, dst graph.NodeID) map[graph.NodeID]bool {
	read := make(map[graph.NodeID]bool)
	if !c.Has(src) {
		return read
	}
	read[src] = true
	if !c.Has(dst) {
		return read
	}
	dist := map[graph.NodeID]float64{src: 0}
	done := map[graph.NodeID]bool{}
	q := &pqMirror{}
	heap.Push(q, pqItem{id: src, dist: 0})
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == dst {
			return read
		}
		read[cur.id] = true
		for _, e := range c.succs[cur.id] {
			if done[e.to] {
				continue
			}
			nd := cur.dist + float64(e.cost)
			if old, ok := dist[e.to]; !ok || nd < old {
				dist[e.to] = nd
				heap.Push(q, pqItem{id: e.to, dist: nd})
			}
		}
	}
	return read
}

// Describe renders the plan as EXPLAIN's text output.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", p.Stmt)
	fmt.Fprintf(&b, "  access path: %s\n", p.Chosen.Path)
	fmt.Fprintf(&b, "  predicted data pages: %d\n", p.Chosen.Pages)
	if p.Chosen.Detail != "" {
		fmt.Fprintf(&b, "  model: %s\n", p.Chosen.Detail)
	}
	fmt.Fprintf(&b, "  stats: alpha=%.3f |A|=%.2f lambda=%.2f gamma=%.2f nodes=%d pages=%d spatial=%s\n",
		p.Stats.Alpha, p.Stats.AvgA, p.Stats.Lambda, p.Stats.Gamma,
		p.Stats.Nodes, p.Stats.Pages, p.Stats.Spatial)
	for _, alt := range p.Alternatives {
		fmt.Fprintf(&b, "  rejected: %s — %d page(s), model %.2f\n", alt.Path, alt.Pages, alt.ModelPages)
	}
	return b.String()
}

// PagesOfNodes counts the distinct data pages of a node list; the
// executor uses it when it needs page math for result annotations.
func (c *Catalog) PagesOfNodes(ids []graph.NodeID) int {
	set := make(map[graph.NodeID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return c.pagesOf(set)
}

// PageOf exposes the placement mirror for a single node.
func (c *Catalog) PageOf(id graph.NodeID) (storage.PageID, bool) {
	pid, ok := c.pageOf[id]
	return pid, ok
}
