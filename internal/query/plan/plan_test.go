package plan

import (
	"errors"
	"testing"

	"ccam/internal/ccam"
	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/query/lang"
	"ccam/internal/storage"
)

// buildTestFile builds a real stored file over a synthetic road map,
// for the catalog-from-file test.
func buildTestFile(t *testing.T) *netfile.File {
	t.Helper()
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 10, 10
	g, err := graph.RoadMap(opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ccam.New(ccam.Config{PageSize: 1024, PoolPages: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	return m.File()
}

// testCatalog hand-builds a catalog over a small chain network:
// 8 nodes, nodes 1-4 on page 0 and 5-8 on page 1, node i at (i, 0),
// edges 1→2, 1→3, 2→3, 3→4, 4→5, ..., 7→8. The spatial probe filters
// by true position (no false positives), so window candidate sets are
// easy to reason about. Stats are pinned, not derived.
func testCatalog() *Catalog {
	pos := map[graph.NodeID]geom.Point{}
	pageOf := map[graph.NodeID]storage.PageID{}
	for i := graph.NodeID(1); i <= 8; i++ {
		pos[i] = geom.Point{X: float64(i), Y: 0}
		if i <= 4 {
			pageOf[i] = 0
		} else {
			pageOf[i] = 1
		}
	}
	succs := map[graph.NodeID][]catalogEdge{
		1: {{to: 2, cost: 1}, {to: 3, cost: 2}},
		2: {{to: 3, cost: 1}},
		3: {{to: 4, cost: 1}},
		4: {{to: 5, cost: 1}},
		5: {{to: 6, cost: 1}},
		6: {{to: 7, cost: 1}},
		7: {{to: 8, cost: 1}},
		8: {},
	}
	return &Catalog{
		Stats: Stats{
			Alpha: 0.5, AvgA: 2, Lambda: 4, Gamma: 4,
			Nodes: 8, Pages: 2, Spatial: "zorder",
		},
		pageOf: pageOf,
		succs:  succs,
		probe: func(rect geom.Rect, fn func(graph.NodeID) bool) error {
			for i := graph.NodeID(1); i <= 8; i++ {
				if rect.Contains(pos[i]) {
					if !fn(i) {
						return nil
					}
				}
			}
			return nil
		},
	}
}

func mustPlan(t *testing.T, c *Catalog, src string) *Plan {
	t.Helper()
	q, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p, err := Build(c, q)
	if err != nil {
		t.Fatalf("Build(%q): %v", src, err)
	}
	return p
}

func TestPlanPicksDistinctPaths(t *testing.T) {
	c := testCatalog()
	cases := []struct {
		src       string
		wantPath  AccessPath
		wantPages int
	}{
		{"FIND 7", PathBTreePoint, 1},
		{"FIND 999", PathBTreePoint, 0},
		// Candidates {1,2,3}, all on page 0: index path wins.
		{"WINDOW (0.5, -1, 3.5, 1)", PathZRange, 1},
		// Candidates are every node, both pages: the sequential scan
		// is effectively cheaper.
		{"WINDOW (0, -1, 9, 1)", PathPAGScan, 2},
		// Depth-1 ball {1,2,3} stays on page 0.
		{"NEIGHBORS 1 DEPTH 1", PathSuccExpand, 1},
		// Depth-4 ball {1..6} spans both pages: scan wins.
		{"NEIGHBORS 1 DEPTH 4", PathPAGScan, 2},
		{"ROUTE 1, 2, 3", PathSuccChain, 1},
		{"ROUTE 1, 2, 3, 4, 5, 6", PathSuccChain, 2},
		// Dijkstra settles {1,2,3} before reaching 4; dst is not read.
		{"PATH 1 TO 4", PathSuccExpand, 1},
	}
	for _, tc := range cases {
		p := mustPlan(t, c, tc.src)
		if p.Chosen.Path != tc.wantPath {
			t.Errorf("%q: chose %s, want %s", tc.src, p.Chosen.Path, tc.wantPath)
		}
		if p.Chosen.Pages != tc.wantPages {
			t.Errorf("%q: predicted %d pages, want %d", tc.src, p.Chosen.Pages, tc.wantPages)
		}
	}
}

func TestPlanRouteStopsAtBrokenHop(t *testing.T) {
	c := testCatalog()
	// 1→3 is an edge, 3→2 is not: the executor reads {1, 3} and then
	// fails, so the prediction covers only page 0.
	p := mustPlan(t, c, "ROUTE 1, 3, 2, 5")
	if p.Chosen.Pages != 1 {
		t.Errorf("broken route predicted %d pages, want 1", p.Chosen.Pages)
	}
	// A missing first node is never read.
	p = mustPlan(t, c, "ROUTE 99, 1")
	if p.Chosen.Pages != 0 {
		t.Errorf("missing-head route predicted %d pages, want 0", p.Chosen.Pages)
	}
}

func TestPlanPathMirror(t *testing.T) {
	c := testCatalog()
	// Unreachable destination: Dijkstra settles the whole reachable
	// component (both pages) before giving up. Make 8 unreachable by
	// pathing backwards: nothing points at 1 except nothing — use
	// PATH 8 TO 1 (8 has no successors, so only 8 itself is read).
	p := mustPlan(t, c, "PATH 8 TO 1")
	if p.Chosen.Pages != 1 {
		t.Errorf("PATH 8 TO 1 predicted %d pages, want 1 (only src read)", p.Chosen.Pages)
	}
	// Missing endpoints.
	if p := mustPlan(t, c, "PATH 99 TO 1"); p.Chosen.Pages != 0 {
		t.Errorf("missing src predicted %d pages, want 0", p.Chosen.Pages)
	}
	if p := mustPlan(t, c, "PATH 1 TO 99"); p.Chosen.Pages != 1 {
		t.Errorf("missing dst predicted %d pages, want 1 (src read first)", p.Chosen.Pages)
	}
	// src == dst settles immediately after the initial read.
	if p := mustPlan(t, c, "PATH 3 TO 3"); p.Chosen.Pages != 1 {
		t.Errorf("self path predicted %d pages, want 1", p.Chosen.Pages)
	}
}

func TestPlanAggValidation(t *testing.T) {
	c := testCatalog()
	bad := []string{
		"NEIGHBORS 1 DEPTH 1 AGG SUM(nodes)",
		"NEIGHBORS 1 DEPTH 1 AGG MIN(nodes)",
		"ROUTE 1, 2 AGG SUM(weight)",
		"ROUTE 1, 2 AGG COUNT(hops)",
	}
	for _, src := range bad {
		q, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Build(c, q); !errors.Is(err, ErrUnsupported) {
			t.Errorf("Build(%q) = %v, want ErrUnsupported", src, err)
		}
	}
	good := []string{
		"NEIGHBORS 1 DEPTH 1 AGG COUNT(nodes)",
		"NEIGHBORS 1 DEPTH 1 AGG SUM(cost)",
		"ROUTE 1, 2 AGG MIN(cost)",
		"ROUTE 1, 2 AGG COUNT(cost)",
	}
	for _, src := range good {
		mustPlan(t, c, src)
	}
}

// TestDescribeGolden pins EXPLAIN's text output for each access-path
// choice.
func TestDescribeGolden(t *testing.T) {
	c := testCatalog()
	stats := "  stats: alpha=0.500 |A|=2.00 lambda=4.00 gamma=4.00 nodes=8 pages=2 spatial=zorder\n"
	cases := []struct {
		src  string
		want string
	}{
		{
			"FIND 7",
			"plan: FIND 7\n" +
				"  access path: btree-point\n" +
				"  predicted data pages: 1\n" +
				"  model: one B+-tree descent to the record's data page (§2.2)\n" +
				stats +
				"  rejected: pag-scan — 2 page(s), model 1.00\n",
		},
		{
			"WINDOW (0.5, -1, 3.5, 1)",
			"plan: WINDOW (0.5, -1, 3.5, 1)\n" +
				"  access path: zrange\n" +
				"  predicted data pages: 1\n" +
				"  model: 3 index candidate(s) on 1 distinct page(s); γ-packed lower bound 0.75 pages\n" +
				stats +
				"  rejected: pag-scan — 2 page(s), model 1.00\n",
		},
		{
			"NEIGHBORS 1 DEPTH 1",
			"plan: NEIGHBORS 1 DEPTH 1\n" +
				"  access path: successor-expansion\n" +
				"  predicted data pages: 1\n" +
				"  model: §3 get-successors over 1 expansion(s): 1 + 1·(1-α)·|A| = 2.00\n" +
				stats +
				"  rejected: pag-scan — 2 page(s), model 1.00\n",
		},
		{
			"NEIGHBORS 1 DEPTH 4",
			"plan: NEIGHBORS 1 DEPTH 4\n" +
				"  access path: pag-scan\n" +
				"  predicted data pages: 2\n" +
				"  model: sequential scan of all 2 data pages in PAG order, counted at 1/2 per page\n" +
				stats +
				"  rejected: successor-expansion — 2 page(s), model 6.00\n",
		},
		{
			"ROUTE 1, 2, 3",
			"plan: ROUTE 1, 2, 3\n" +
				"  access path: successor-chain\n" +
				"  predicted data pages: 1\n" +
				"  model: §3 route evaluation, L=3: 1 + (L-1)·(1-α) = 2.00\n" +
				stats,
		},
		{
			"PATH 1 TO 4",
			"plan: PATH 1 TO 4\n" +
				"  access path: successor-expansion\n" +
				"  predicted data pages: 1\n" +
				"  model: §3 route-evaluation form over 3 expanded node(s): 1 + (n-1)·(1-α) = 2.00\n" +
				stats,
		},
	}
	for _, tc := range cases {
		p := mustPlan(t, c, tc.src)
		if got := p.Describe(); got != tc.want {
			t.Errorf("Describe(%q):\n got:\n%s\nwant:\n%s\n(diff at byte %d)",
				tc.src, got, tc.want, diffAt(got, tc.want))
		}
	}
}

func diffAt(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestNewCatalogFromFile(t *testing.T) {
	f := buildTestFile(t)
	c, err := NewCatalog(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Nodes != f.NumNodes() || c.Stats.Pages != f.NumPages() {
		t.Errorf("stats shape %d/%d, want %d/%d",
			c.Stats.Nodes, c.Stats.Pages, f.NumNodes(), f.NumPages())
	}
	if c.Stats.Alpha < 0 || c.Stats.Alpha > 1 {
		t.Errorf("alpha = %v out of range", c.Stats.Alpha)
	}
	if c.Stats.AvgA <= 0 || c.Stats.Gamma <= 0 {
		t.Errorf("degenerate stats: %+v", c.Stats)
	}
	// The probe must be wired to the file's spatial index.
	seen := 0
	err = c.probe(geom.Rect{Min: geom.Point{X: -1e9, Y: -1e9}, Max: geom.Point{X: 1e9, Y: 1e9}},
		func(graph.NodeID) bool { seen++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if seen != f.NumNodes() {
		t.Errorf("probe saw %d candidates, want %d", seen, f.NumNodes())
	}
	// Page placement mirror agrees with the file.
	for id, pid := range c.pageOf {
		got, err := f.PageOf(id)
		if err != nil {
			t.Fatalf("PageOf(%d): %v", id, err)
		}
		if got != pid {
			t.Errorf("placement mirror disagrees for %d: %d vs %d", id, pid, got)
		}
	}
}
