// Package plan turns a parsed CCAM-QL statement (internal/query/lang)
// into an executable access plan. The planner enumerates the access
// paths the file supports — B+-tree point lookup, spatial-index window
// (Z-range with BIGMIN jumps or R-tree), PAG-ordered sequential page
// scan, and successor expansion — and picks the cheapest by predicted
// data-page accesses.
//
// Predictions come in two strengths, both reported by EXPLAIN. The
// paper's §3 formulas (internal/costmodel), fed with the live CRR/γ/λ
// statistics, give the model cost of the traversal operators. On top
// of that, every structure the prediction needs — node index,
// placement, spatial index, adjacency — is memory resident (the
// paper's assumption), so the planner also resolves the chosen path's
// page set exactly: the headline "predicted data pages" is the number
// of distinct data pages a cold buffer pool would read, which
// execution then validates against the measured ReqStats deltas.
package plan

import (
	"fmt"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// catalogEdge is one directed edge of the catalog's adjacency mirror.
// The cost stays float32 — the stored precision — so the planner's
// Dijkstra mirror accumulates distances exactly like the executor.
type catalogEdge struct {
	to   graph.NodeID
	cost float32
}

// Stats is the statistics block of a catalog: the paper's cost-model
// parameters plus the file's shape. It appears verbatim in every plan.
type Stats struct {
	// Alpha is α, the CRR: Pr[Page(i) == Page(j)] for an edge (i, j).
	Alpha float64 `json:"alpha"`
	// AvgA is |A|, the mean successor-list length.
	AvgA float64 `json:"avg_a"`
	// Lambda is λ, the mean neighbor-list length (succs + preds).
	Lambda float64 `json:"lambda"`
	// Gamma is γ, the blocking factor (records per data page).
	Gamma float64 `json:"gamma"`
	// Nodes and Pages are the file's record and data-page counts.
	Nodes int `json:"nodes"`
	Pages int `json:"pages"`
	// Spatial names the secondary spatial index ("zorder", "rtree").
	Spatial string `json:"spatial"`
}

// Source is the consistent read view NewCatalog scans: the live
// *netfile.File (exclusively held at build/open time) or an LSN-pinned
// *netfile.Snapshot (so a lazy catalog build never blocks, and is
// never torn by, a concurrent mutation batch).
type Source interface {
	Placement() graph.Placement
	Scan(fn func(rec *netfile.Record) bool) error
	NumPages() int
	SpatialIndexKind() netfile.SpatialKind
	SpatialCandidates(rect geom.Rect, fn func(id graph.NodeID) bool) error
}

var (
	_ Source = (*netfile.File)(nil)
	_ Source = (*netfile.Snapshot)(nil)
)

// Catalog is the planner's view of a stored file: cost-model
// statistics plus mirrors of the memory-resident structures (placement
// and adjacency) and a probe into the spatial index. Building one
// costs a sequential scan of the data file; after that the facade
// keeps it current incrementally — every committed batch operation is
// applied to the mirrors and counters in place (AddEdge, InsertNode,
// MoveNode, ...), and only Build rebuilds from scratch.
type Catalog struct {
	Stats Stats

	pageOf map[graph.NodeID]storage.PageID
	succs  map[graph.NodeID][]catalogEdge
	preds  map[graph.NodeID][]graph.NodeID
	// probe visits the spatial index's candidate ids for a window, with
	// zero data-page I/O (netfile SpatialCandidates).
	probe func(rect geom.Rect, fn func(graph.NodeID) bool) error

	// Running counters behind Stats, maintained by the incremental
	// mutators and re-divided by RefreshStats.
	edges, samePage, neighborLen int64
}

// NewCatalog builds a catalog from a read view with one sequential
// scan (the scan's page reads are the build cost; they happen here,
// not inside any planned query). The statistics match the store's live
// gauges: Alpha is the unweighted CRR of the scanned placement.
func NewCatalog(src Source) (*Catalog, error) {
	place := src.Placement()
	c := &Catalog{
		pageOf: place,
		succs:  make(map[graph.NodeID][]catalogEdge, len(place)),
		preds:  make(map[graph.NodeID][]graph.NodeID, len(place)),
		probe:  src.SpatialCandidates,
	}
	err := src.Scan(func(rec *netfile.Record) bool {
		es := make([]catalogEdge, len(rec.Succs))
		myPage := place[rec.ID]
		for i, s := range rec.Succs {
			es[i] = catalogEdge{to: s.To, cost: s.Cost}
			c.edges++
			if pt, ok := place[s.To]; ok && pt == myPage {
				c.samePage++
			}
		}
		c.succs[rec.ID] = es
		if len(rec.Preds) > 0 {
			c.preds[rec.ID] = append([]graph.NodeID(nil), rec.Preds...)
		}
		c.neighborLen += int64(len(rec.Succs) + len(rec.Preds))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("plan: catalog scan: %w", err)
	}
	c.Stats.Spatial = src.SpatialIndexKind().String()
	c.RefreshStats(src.NumPages())
	return c, nil
}

// SetAlpha overrides the catalog's CRR with a live gauge value (the
// store's ccam_crr, refreshed after every mutation), so plans quote
// the same α the operator sees on /metrics.
func (c *Catalog) SetAlpha(alpha float64) { c.Stats.Alpha = alpha }

// RefreshStats re-derives the Stats block from the running counters
// and the given live page count. The facade calls it once per applied
// batch — a handful of divisions, not a scan.
func (c *Catalog) RefreshStats(pages int) {
	n := len(c.pageOf)
	c.Stats.Nodes = n
	c.Stats.Pages = pages
	c.Stats.Alpha = 0
	if c.edges > 0 {
		c.Stats.Alpha = float64(c.samePage) / float64(c.edges)
	}
	c.Stats.AvgA, c.Stats.Lambda, c.Stats.Gamma = 0, 0, 0
	if n > 0 {
		c.Stats.AvgA = float64(c.edges) / float64(n)
		c.Stats.Lambda = float64(c.neighborLen) / float64(n)
	}
	if pages > 0 {
		c.Stats.Gamma = float64(n) / float64(pages)
	}
}

// samePageDelta reports 1 if the edge (u, v) lies on one page under
// the current placement, else 0.
func (c *Catalog) samePageDelta(u, v graph.NodeID) int64 {
	pu, okU := c.pageOf[u]
	pv, okV := c.pageOf[v]
	if okU && okV && pu == pv {
		return 1
	}
	return 0
}

// MoveNode applies one placement event: node id now lives on page pid.
// The same-page tally of every incident edge is recomputed across the
// move (new nodes, with no mirrored edges yet, just gain a placement).
func (c *Catalog) MoveNode(id graph.NodeID, pid storage.PageID) {
	if old, ok := c.pageOf[id]; ok && old == pid {
		return
	}
	for _, e := range c.succs[id] {
		c.samePage -= c.samePageDelta(id, e.to)
	}
	for _, p := range c.preds[id] {
		c.samePage -= c.samePageDelta(p, id)
	}
	c.pageOf[id] = pid
	for _, e := range c.succs[id] {
		c.samePage += c.samePageDelta(id, e.to)
	}
	for _, p := range c.preds[id] {
		c.samePage += c.samePageDelta(p, id)
	}
}

// AddEdge applies an edge insertion (from → to, cost).
func (c *Catalog) AddEdge(from, to graph.NodeID, cost float32) {
	c.succs[from] = append(c.succs[from], catalogEdge{to: to, cost: cost})
	c.preds[to] = append(c.preds[to], from)
	c.edges++
	c.samePage += c.samePageDelta(from, to)
	c.neighborLen += 2
}

// RemoveEdge applies an edge deletion.
func (c *Catalog) RemoveEdge(from, to graph.NodeID) {
	list := c.succs[from]
	for i := range list {
		if list[i].to == to {
			c.succs[from] = append(list[:i], list[i+1:]...)
			c.edges--
			c.samePage -= c.samePageDelta(from, to)
			c.neighborLen -= 2
			break
		}
	}
	plist := c.preds[to]
	for i := range plist {
		if plist[i] == from {
			c.preds[to] = append(plist[:i], plist[i+1:]...)
			break
		}
	}
}

// SetEdgeCost applies an in-place cost update.
func (c *Catalog) SetEdgeCost(from, to graph.NodeID, cost float32) {
	list := c.succs[from]
	for i := range list {
		if list[i].to == to {
			list[i].cost = cost
			return
		}
	}
}

// InsertNode applies a node insertion with its edges. The node's
// placement arrives separately as a MoveNode event (the facade applies
// events first), so only the adjacency mirrors change here.
func (c *Catalog) InsertNode(op *netfile.InsertOp) {
	if _, ok := c.succs[op.Rec.ID]; !ok {
		c.succs[op.Rec.ID] = nil
	}
	for _, s := range op.Rec.Succs {
		c.AddEdge(op.Rec.ID, s.To, s.Cost)
	}
	for i, p := range op.Rec.Preds {
		c.AddEdge(p, op.Rec.ID, op.PredCosts[i])
	}
}

// DeleteNode applies a node deletion: every incident edge is removed
// first (while the node's placement is still known, so the same-page
// tally unwinds exactly), then the node itself.
func (c *Catalog) DeleteNode(id graph.NodeID) {
	for _, e := range append([]catalogEdge(nil), c.succs[id]...) {
		c.RemoveEdge(id, e.to)
	}
	for _, p := range append([]graph.NodeID(nil), c.preds[id]...) {
		c.RemoveEdge(p, id)
	}
	delete(c.succs, id)
	delete(c.preds, id)
	delete(c.pageOf, id)
}

// Has reports whether the catalog knows node id.
func (c *Catalog) Has(id graph.NodeID) bool {
	_, ok := c.pageOf[id]
	return ok
}

// pagesOf counts the distinct data pages of a node set.
func (c *Catalog) pagesOf(ids map[graph.NodeID]bool) int {
	pages := make(map[storage.PageID]bool, len(ids))
	for id := range ids {
		if pid, ok := c.pageOf[id]; ok {
			pages[pid] = true
		}
	}
	return len(pages)
}

// DebugDiff compares the catalog's mirrors against a fresh scan of
// src and returns human-readable divergences (test hook).
func (c *Catalog) DebugDiff(src Source) []string {
	var out []string
	seen := map[graph.NodeID]bool{}
	src.Scan(func(rec *netfile.Record) bool {
		seen[rec.ID] = true
		mir := c.succs[rec.ID]
		if len(mir) != len(rec.Succs) {
			out = append(out, fmt.Sprintf("node %d: mirror succs %v != file %v", rec.ID, mir, rec.Succs))
		} else {
			for i := range mir {
				if mir[i].to != rec.Succs[i].To || mir[i].cost != rec.Succs[i].Cost {
					out = append(out, fmt.Sprintf("node %d: mirror succs %v != file %v", rec.ID, mir, rec.Succs))
					break
				}
			}
		}
		mp := append([]graph.NodeID(nil), c.preds[rec.ID]...)
		if len(mp) != len(rec.Preds) {
			out = append(out, fmt.Sprintf("node %d: mirror preds %v != file %v", rec.ID, mp, rec.Preds))
		}
		return true
	})
	for id := range c.succs {
		if !seen[id] {
			out = append(out, fmt.Sprintf("node %d: in mirror succs but not in file", id))
		}
	}
	return out
}
