// Package plan turns a parsed CCAM-QL statement (internal/query/lang)
// into an executable access plan. The planner enumerates the access
// paths the file supports — B+-tree point lookup, spatial-index window
// (Z-range with BIGMIN jumps or R-tree), PAG-ordered sequential page
// scan, and successor expansion — and picks the cheapest by predicted
// data-page accesses.
//
// Predictions come in two strengths, both reported by EXPLAIN. The
// paper's §3 formulas (internal/costmodel), fed with the live CRR/γ/λ
// statistics, give the model cost of the traversal operators. On top
// of that, every structure the prediction needs — node index,
// placement, spatial index, adjacency — is memory resident (the
// paper's assumption), so the planner also resolves the chosen path's
// page set exactly: the headline "predicted data pages" is the number
// of distinct data pages a cold buffer pool would read, which
// execution then validates against the measured ReqStats deltas.
package plan

import (
	"fmt"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// catalogEdge is one directed edge of the catalog's adjacency mirror.
// The cost stays float32 — the stored precision — so the planner's
// Dijkstra mirror accumulates distances exactly like the executor.
type catalogEdge struct {
	to   graph.NodeID
	cost float32
}

// Stats is the statistics block of a catalog: the paper's cost-model
// parameters plus the file's shape. It appears verbatim in every plan.
type Stats struct {
	// Alpha is α, the CRR: Pr[Page(i) == Page(j)] for an edge (i, j).
	Alpha float64 `json:"alpha"`
	// AvgA is |A|, the mean successor-list length.
	AvgA float64 `json:"avg_a"`
	// Lambda is λ, the mean neighbor-list length (succs + preds).
	Lambda float64 `json:"lambda"`
	// Gamma is γ, the blocking factor (records per data page).
	Gamma float64 `json:"gamma"`
	// Nodes and Pages are the file's record and data-page counts.
	Nodes int `json:"nodes"`
	Pages int `json:"pages"`
	// Spatial names the secondary spatial index ("zorder", "rtree").
	Spatial string `json:"spatial"`
}

// Catalog is the planner's view of a stored file: cost-model
// statistics plus mirrors of the memory-resident structures (placement
// and adjacency) and a probe into the spatial index. Building one
// costs a sequential scan of the data file; the root facade caches it
// per store and invalidates on mutation.
type Catalog struct {
	Stats Stats

	pageOf map[graph.NodeID]storage.PageID
	succs  map[graph.NodeID][]catalogEdge
	// probe visits the spatial index's candidate ids for a window, with
	// zero data-page I/O (netfile.(*File).SpatialCandidates).
	probe func(rect geom.Rect, fn func(graph.NodeID) bool) error
}

// NewCatalog builds a catalog from the file with one sequential scan
// (the scan's page reads are the build cost; they happen here, not
// inside any planned query). The statistics match the store's live
// gauges: Alpha is the unweighted CRR of the current placement.
func NewCatalog(f *netfile.File) (*Catalog, error) {
	place := f.Placement()
	c := &Catalog{
		pageOf: place,
		succs:  make(map[graph.NodeID][]catalogEdge, len(place)),
		probe:  f.SpatialCandidates,
	}
	var edges, samePage, neighborLen int64
	err := f.Scan(func(rec *netfile.Record) bool {
		es := make([]catalogEdge, len(rec.Succs))
		myPage := place[rec.ID]
		for i, s := range rec.Succs {
			es[i] = catalogEdge{to: s.To, cost: s.Cost}
			edges++
			if pt, ok := place[s.To]; ok && pt == myPage {
				samePage++
			}
		}
		c.succs[rec.ID] = es
		neighborLen += int64(len(rec.Succs) + len(rec.Preds))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("plan: catalog scan: %w", err)
	}
	n := len(place)
	c.Stats = Stats{
		Nodes:   n,
		Pages:   f.NumPages(),
		Spatial: f.SpatialIndexKind().String(),
	}
	if edges > 0 {
		c.Stats.Alpha = float64(samePage) / float64(edges)
	}
	if n > 0 {
		c.Stats.AvgA = float64(edges) / float64(n)
		c.Stats.Lambda = float64(neighborLen) / float64(n)
	}
	if c.Stats.Pages > 0 {
		c.Stats.Gamma = float64(n) / float64(c.Stats.Pages)
	}
	return c, nil
}

// SetAlpha overrides the catalog's CRR with a live gauge value (the
// store's ccam_crr, refreshed after every mutation), so plans quote
// the same α the operator sees on /metrics.
func (c *Catalog) SetAlpha(alpha float64) { c.Stats.Alpha = alpha }

// Has reports whether the catalog knows node id.
func (c *Catalog) Has(id graph.NodeID) bool {
	_, ok := c.pageOf[id]
	return ok
}

// pagesOf counts the distinct data pages of a node set.
func (c *Catalog) pagesOf(ids map[graph.NodeID]bool) int {
	pages := make(map[storage.PageID]bool, len(ids))
	for id := range ids {
		if pid, ok := c.pageOf[id]; ok {
			pages[pid] = true
		}
	}
	return len(pages)
}
