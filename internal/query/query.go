// Package query implements the aggregate network computations the
// paper motivates on top of the stored file: shortest paths (Dijkstra
// and A*, both built on Get-successors as the paper describes), tour
// evaluation, and location-allocation evaluation (both named in the
// paper's future work). Every computation reads node records through a
// netfile.File, so its data-page I/O reflects the access method's
// clustering quality.
package query

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

// Errors returned by query evaluation.
var (
	ErrNoPath       = errors.New("query: no path")
	ErrInvalidTour  = errors.New("query: invalid tour")
	ErrNoFacilities = errors.New("query: no facilities")
)

// Reader is the record-access surface the aggregate computations
// traverse: the paper's Find / Get-A-successor operations plus route
// evaluation. Both the live *netfile.File and an LSN-pinned
// *netfile.Snapshot implement it, so a search can run either
// exclusively latched or against a consistent snapshot while mutation
// batches commit concurrently.
type Reader interface {
	Find(id graph.NodeID) (*netfile.Record, error)
	Has(id graph.NodeID) bool
	GetASuccessor(cur *netfile.Record, succ graph.NodeID) (*netfile.Record, error)
	EvaluateRoute(route graph.Route) (netfile.RouteAggregate, error)
}

var (
	_ Reader = (*netfile.File)(nil)
	_ Reader = (*netfile.Snapshot)(nil)
)

// Path is a shortest-path result.
type Path struct {
	Nodes graph.Route
	Cost  float64
	// Expanded is the number of Get-successors expansions performed.
	Expanded int
}

// pqItem is a priority-queue entry for the searches.
type pqItem struct {
	id   graph.NodeID
	dist float64
	rank float64 // dist + heuristic (equals dist for Dijkstra)
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].rank < q[j].rank }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Dijkstra computes a cheapest path from src to dst over the stored
// network, expanding nodes with Get-successors.
func Dijkstra(f Reader, src, dst graph.NodeID) (Path, error) {
	return shortestPath(f, src, dst, nil)
}

// AStar computes a cheapest path from src to dst using a consistent
// Euclidean-distance heuristic scaled by minCostPerUnit: a lower bound
// on the edge cost per unit of straight-line distance. Pass 0 to fall
// back to Dijkstra.
func AStar(f Reader, src, dst graph.NodeID, minCostPerUnit float64) (Path, error) {
	if minCostPerUnit <= 0 {
		return shortestPath(f, src, dst, nil)
	}
	dstRec, err := f.Find(dst)
	if err != nil {
		return Path{}, err
	}
	h := func(p geom.Point) float64 {
		return math.Hypot(p.X-dstRec.Pos.X, p.Y-dstRec.Pos.Y) * minCostPerUnit
	}
	return shortestPath(f, src, dst, h)
}

func shortestPath(f Reader, src, dst graph.NodeID, h func(geom.Point) float64) (Path, error) {
	srcRec, err := f.Find(src)
	if err != nil {
		return Path{}, err
	}
	if !f.Has(dst) {
		return Path{}, fmt.Errorf("%w: %d", netfile.ErrNotFound, dst)
	}
	dist := map[graph.NodeID]float64{src: 0}
	prev := map[graph.NodeID]graph.NodeID{}
	done := map[graph.NodeID]bool{}
	q := &pq{}
	rank := 0.0
	if h != nil {
		rank = h(srcRec.Pos)
	}
	heap.Push(q, pqItem{id: src, dist: 0, rank: rank})
	expanded := 0

	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == dst {
			return Path{Nodes: reconstruct(prev, src, dst), Cost: cur.dist, Expanded: expanded}, nil
		}
		// Expand via Get-successors: the dominant I/O of graph search,
		// as the paper observes.
		rec, err := f.Find(cur.id)
		if err != nil {
			return Path{}, err
		}
		expanded++
		for _, s := range rec.Succs {
			if done[s.To] {
				continue
			}
			nd := cur.dist + float64(s.Cost)
			if old, ok := dist[s.To]; !ok || nd < old {
				dist[s.To] = nd
				prev[s.To] = cur.id
				r := nd
				if h != nil {
					sr, err := f.GetASuccessor(rec, s.To)
					if err != nil {
						return Path{}, err
					}
					r = nd + h(sr.Pos)
				}
				heap.Push(q, pqItem{id: s.To, dist: nd, rank: r})
			}
		}
	}
	return Path{}, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
}

func reconstruct(prev map[graph.NodeID]graph.NodeID, src, dst graph.NodeID) graph.Route {
	var rev graph.Route
	for cur := dst; ; {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		cur = prev[cur]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TourAggregate is the result of a tour evaluation query: a route that
// returns to its starting node.
type TourAggregate struct {
	netfile.RouteAggregate
	// Closed confirms the tour returned to its start.
	Closed bool
}

// EvaluateTour evaluates a closed tour n1, n2, ..., nk, n1 (tour
// evaluation, named in the paper's future work). The input lists each
// node once; the closing edge nk -> n1 must exist.
func EvaluateTour(f Reader, tour graph.Route) (TourAggregate, error) {
	if len(tour) < 3 {
		return TourAggregate{}, fmt.Errorf("%w: need at least 3 nodes, got %d", ErrInvalidTour, len(tour))
	}
	if tour[0] == tour[len(tour)-1] {
		return TourAggregate{}, fmt.Errorf("%w: do not repeat the starting node", ErrInvalidTour)
	}
	closed := append(append(graph.Route{}, tour...), tour[0])
	agg, err := f.EvaluateRoute(closed)
	if err != nil {
		return TourAggregate{}, err
	}
	return TourAggregate{RouteAggregate: agg, Closed: true}, nil
}

// Allocation assigns one demand node to its nearest facility.
type Allocation struct {
	Demand   graph.NodeID
	Facility graph.NodeID
	Cost     float64
}

// LocationAllocation evaluates a location-allocation configuration
// (the paper's future work): given a set of facility nodes, every
// reachable node of the network is allocated to its cheapest facility
// by network distance (a multi-source Dijkstra over the stored file).
// It returns the allocations in unspecified order together with the
// total and maximum assignment costs.
func LocationAllocation(f Reader, facilities []graph.NodeID) ([]Allocation, float64, float64, error) {
	if len(facilities) == 0 {
		return nil, 0, 0, ErrNoFacilities
	}
	dist := map[graph.NodeID]float64{}
	owner := map[graph.NodeID]graph.NodeID{}
	done := map[graph.NodeID]bool{}
	q := &pq{}
	for _, fac := range facilities {
		if !f.Has(fac) {
			return nil, 0, 0, fmt.Errorf("%w: facility %d", netfile.ErrNotFound, fac)
		}
		dist[fac] = 0
		owner[fac] = fac
		heap.Push(q, pqItem{id: fac, dist: 0, rank: 0})
	}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		rec, err := f.Find(cur.id)
		if err != nil {
			return nil, 0, 0, err
		}
		for _, s := range rec.Succs {
			if done[s.To] {
				continue
			}
			nd := cur.dist + float64(s.Cost)
			if old, ok := dist[s.To]; !ok || nd < old {
				dist[s.To] = nd
				owner[s.To] = owner[cur.id]
				heap.Push(q, pqItem{id: s.To, dist: nd, rank: nd})
			}
		}
	}
	var out []Allocation
	var total, worst float64
	for id, d := range dist {
		out = append(out, Allocation{Demand: id, Facility: owner[id], Cost: d})
		total += d
		if d > worst {
			worst = d
		}
	}
	return out, total, worst, nil
}
