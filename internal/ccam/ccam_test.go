package ccam

import (
	"math/rand"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/storage"
)

func roadMap(t *testing.T) *graph.Network {
	t.Helper()
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func build(t *testing.T, g *graph.Network, cfg Config) *Method {
	t.Helper()
	if cfg.PageSize == 0 {
		cfg.PageSize = 1024
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 64
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkConsistency verifies the file matches the network exactly.
func checkConsistency(t *testing.T, m *Method, g *graph.Network) {
	t.Helper()
	f := m.File()
	if f.NumNodes() != g.NumNodes() {
		t.Fatalf("file has %d nodes, network %d", f.NumNodes(), g.NumNodes())
	}
	for _, id := range g.NodeIDs() {
		rec, err := f.Find(id)
		if err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
		wantSucc := g.Successors(id)
		if len(rec.Succs) != len(wantSucc) {
			t.Fatalf("node %d: file has %d succs, network %d", id, len(rec.Succs), len(wantSucc))
		}
		succSet := map[graph.NodeID]bool{}
		for _, s := range rec.Succs {
			succSet[s.To] = true
		}
		for _, s := range wantSucc {
			if !succSet[s] {
				t.Fatalf("node %d: succ %d missing from record", id, s)
			}
		}
		wantPred := g.Predecessors(id)
		if len(rec.Preds) != len(wantPred) {
			t.Fatalf("node %d: file has %d preds, network %d", id, len(rec.Preds), len(wantPred))
		}
	}
	// Free-space map agrees with physical pages.
	for _, pid := range f.Pages() {
		fsm, err := f.FreeSpace(pid)
		if err != nil {
			t.Fatal(err)
		}
		phys, err := f.FreeSpaceOn(pid)
		if err != nil {
			t.Fatal(err)
		}
		if fsm != phys {
			t.Fatalf("page %d: FSM says %d free, page says %d", pid, fsm, phys)
		}
	}
	if err := graph.ValidatePlacement(g, f.Placement()); err != nil {
		t.Fatal(err)
	}
}

func TestStaticBuildCRR(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 1})
	checkConsistency(t, m, g)
	crr := m.CRR(g)
	if crr < 0.6 {
		t.Fatalf("CCAM-S CRR = %f, expected > 0.6 at 1k pages", crr)
	}
	if m.Name() != "ccam-s" {
		t.Fatalf("Name = %q", m.Name())
	}
	t.Logf("CCAM-S: CRR=%.4f pages=%d", crr, m.File().NumPages())
}

func TestDynamicBuildCRR(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 1, Dynamic: true})
	checkConsistency(t, m, g)
	crr := m.CRR(g)
	if crr < 0.45 {
		t.Fatalf("CCAM-D CRR = %f, expected > 0.45 at 1k pages", crr)
	}
	if m.Name() != "ccam-d" {
		t.Fatalf("Name = %q", m.Name())
	}
	t.Logf("CCAM-D: CRR=%.4f pages=%d", crr, m.File().NumPages())
}

func TestStaticBeatsDynamic(t *testing.T) {
	g := roadMap(t)
	s := build(t, g, Config{Seed: 1})
	d := build(t, g, Config{Seed: 1, Dynamic: true})
	if s.CRR(g) <= d.CRR(g)*0.95 {
		t.Fatalf("CCAM-S (%.4f) should not lose clearly to CCAM-D (%.4f)", s.CRR(g), d.CRR(g))
	}
}

func TestDeleteThenReinsertAllPolicies(t *testing.T) {
	for _, policy := range []netfile.Policy{netfile.FirstOrder, netfile.SecondOrder, netfile.HigherOrder} {
		t.Run(policy.String(), func(t *testing.T) {
			g := roadMap(t)
			m := build(t, g, Config{Seed: 2})
			ids := g.NodeIDs()
			rng := rand.New(rand.NewSource(3))
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			victims := ids[:40]

			// Delete from both file and reference network.
			ops := map[graph.NodeID]*netfile.InsertOp{}
			for _, id := range victims {
				op, err := netfile.InsertOpFromNode(g, id)
				if err != nil {
					t.Fatal(err)
				}
				ops[id] = op
			}
			for _, id := range victims {
				if err := m.Delete(id, policy); err != nil {
					t.Fatalf("Delete(%d, %s): %v", id, policy, err)
				}
				if err := g.RemoveNode(id); err != nil {
					t.Fatal(err)
				}
			}
			checkConsistency(t, m, g)

			// Re-insert, restoring edges that still have both endpoints.
			for _, id := range victims {
				op := ops[id]
				rec := op.Rec.Clone()
				var succs []netfile.SuccEntry
				for _, s := range rec.Succs {
					if g.HasNode(s.To) {
						succs = append(succs, s)
					}
				}
				rec.Succs = succs
				var preds []graph.NodeID
				var costs []float32
				for i, p := range rec.Preds {
					if g.HasNode(p) {
						preds = append(preds, p)
						costs = append(costs, op.PredCosts[i])
					}
				}
				rec.Preds = preds
				newOp := &netfile.InsertOp{Rec: rec, PredCosts: costs}
				if err := m.Insert(newOp, policy); err != nil {
					t.Fatalf("Insert(%d, %s): %v", id, policy, err)
				}
				// Mirror in the reference network.
				n := graph.Node{ID: id, Pos: rec.Pos, Attrs: rec.Attrs}
				if err := g.AddNode(n); err != nil {
					t.Fatal(err)
				}
				for _, s := range rec.Succs {
					if err := g.AddEdge(graph.Edge{From: id, To: s.To, Cost: float64(s.Cost), Weight: 1}); err != nil {
						t.Fatal(err)
					}
				}
				for i, p := range rec.Preds {
					if err := g.AddEdge(graph.Edge{From: p, To: id, Cost: float64(costs[i]), Weight: 1}); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkConsistency(t, m, g)
		})
	}
}

func TestInsertIntoEmptyFile(t *testing.T) {
	m, err := New(Config{PageSize: 512, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	empty := graph.NewNetwork()
	if err := m.Build(empty); err == nil {
		// Static build of an empty network errors inside the
		// partitioner; dynamic build succeeds trivially. Accept both,
		// but the file must exist for dynamic.
		t.Log("static build of empty network succeeded")
	}
	m, _ = New(Config{PageSize: 512, PoolPages: 8, Dynamic: true})
	if err := m.Build(empty); err != nil {
		t.Fatalf("dynamic build of empty network: %v", err)
	}
	// First insert goes to a fresh page.
	op := &netfile.InsertOp{Rec: &netfile.Record{ID: 1}}
	if err := m.Insert(op, netfile.FirstOrder); err != nil {
		t.Fatal(err)
	}
	// Second insert with an edge to the first lands on the same page.
	rec2 := &netfile.Record{ID: 2, Succs: []netfile.SuccEntry{{To: 1, Cost: 1}}}
	if err := m.Insert(&netfile.InsertOp{Rec: rec2}, netfile.FirstOrder); err != nil {
		t.Fatal(err)
	}
	p1, _ := m.File().PageOf(1)
	p2, _ := m.File().PageOf(2)
	if p1 != p2 {
		t.Fatalf("connected nodes on different pages: %d vs %d", p1, p2)
	}
	r1, err := m.File().Find(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Preds) != 1 || r1.Preds[0] != 2 {
		t.Fatalf("node 1 preds = %v", r1.Preds)
	}
}

func TestHigherOrderImprovesCRROverFirstOrder(t *testing.T) {
	// Build on 80% of nodes, insert the rest; reorganizing policies
	// should end with CRR(first) <= CRR(second~higher) roughly.
	crrByPolicy := map[netfile.Policy]float64{}
	for _, policy := range []netfile.Policy{netfile.FirstOrder, netfile.SecondOrder, netfile.HigherOrder} {
		full := roadMap(t)
		ids := full.NodeIDs()
		rng := rand.New(rand.NewSource(11))
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		late := map[graph.NodeID]bool{}
		for _, id := range ids[:len(ids)/5] {
			late[id] = true
		}
		base := full.Clone()
		for id := range late {
			base.RemoveNode(id)
		}
		m := build(t, base, Config{Seed: 5})
		cur := base.Clone()
		for _, id := range ids[:len(ids)/5] {
			op := insertOpRestricted(t, full, cur, id)
			if err := m.Insert(op, policy); err != nil {
				t.Fatalf("%s insert %d: %v", policy, id, err)
			}
			mirrorInsert(t, cur, op)
		}
		crrByPolicy[policy] = m.CRR(cur)
		checkConsistency(t, m, cur)
	}
	t.Logf("CRR first=%.4f second=%.4f higher=%.4f",
		crrByPolicy[netfile.FirstOrder], crrByPolicy[netfile.SecondOrder], crrByPolicy[netfile.HigherOrder])
	if crrByPolicy[netfile.SecondOrder] < crrByPolicy[netfile.FirstOrder]-0.02 {
		t.Errorf("second-order CRR %.4f below first-order %.4f",
			crrByPolicy[netfile.SecondOrder], crrByPolicy[netfile.FirstOrder])
	}
}

// insertOpRestricted builds the insert op for node id of full, keeping
// only edges whose other endpoint is already in cur.
func insertOpRestricted(t *testing.T, full, cur *graph.Network, id graph.NodeID) *netfile.InsertOp {
	t.Helper()
	n, err := full.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	rec := &netfile.Record{ID: id, Pos: n.Pos}
	if n.Attrs != nil {
		rec.Attrs = append([]byte(nil), n.Attrs...)
	}
	for _, e := range full.SuccessorEdges(id) {
		if cur.HasNode(e.To) {
			rec.Succs = append(rec.Succs, netfile.SuccEntry{To: e.To, Cost: float32(e.Cost)})
		}
	}
	var costs []float32
	for _, p := range full.Predecessors(id) {
		if cur.HasNode(p) {
			e, err := full.Edge(p, id)
			if err != nil {
				t.Fatal(err)
			}
			rec.Preds = append(rec.Preds, p)
			costs = append(costs, float32(e.Cost))
		}
	}
	return &netfile.InsertOp{Rec: rec, PredCosts: costs}
}

// mirrorInsert applies op to the reference network.
func mirrorInsert(t *testing.T, g *graph.Network, op *netfile.InsertOp) {
	t.Helper()
	rec := op.Rec
	if err := g.AddNode(graph.Node{ID: rec.ID, Pos: rec.Pos, Attrs: rec.Attrs}); err != nil {
		t.Fatal(err)
	}
	for _, s := range rec.Succs {
		if err := g.AddEdge(graph.Edge{From: rec.ID, To: s.To, Cost: float64(s.Cost), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range rec.Preds {
		if err := g.AddEdge(graph.Edge{From: p, To: rec.ID, Cost: float64(op.PredCosts[i]), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteUnderflowMerges(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 7})
	before := m.File().NumPages()
	// Delete many nodes first-order; pages should merge/free over time.
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(8))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:len(ids)/2] {
		if err := m.Delete(id, netfile.FirstOrder); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		g.RemoveNode(id)
	}
	after := m.File().NumPages()
	if after >= before {
		t.Fatalf("pages did not shrink after deleting half the nodes: %d -> %d", before, after)
	}
	checkConsistency(t, m, g)
}

func TestSplitPageDirectly(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 9})
	pid := m.File().Pages()[0]
	idsBefore, err := m.File().NodesOnPage(pid)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsBefore) < 2 {
		t.Skip("first page too small to split")
	}
	pagesBefore := m.File().NumPages()
	if err := m.SplitPage(pid); err != nil {
		t.Fatal(err)
	}
	if m.File().NumPages() != pagesBefore+1 {
		t.Fatalf("split did not add a page: %d -> %d", pagesBefore, m.File().NumPages())
	}
	checkConsistency(t, m, g)
}

func TestCCAMWithKLPartitioner(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 3, Partitioner: &partition.FM{}})
	checkConsistency(t, m, g)
	if crr := m.CRR(g); crr < 0.55 {
		t.Fatalf("CCAM with FM partitioner CRR = %f", crr)
	}
}

func TestNbrPages(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 4})
	pag := graph.BuildPAG(g, m.File().Placement())
	for _, pid := range m.File().Pages()[:5] {
		got, err := m.NbrPages(pid)
		if err != nil {
			t.Fatal(err)
		}
		want := pag.NbrPages(pid)
		if len(got) != len(want) {
			t.Fatalf("page %d: NbrPages = %d pages, PAG says %d", pid, len(got), len(want))
		}
		wantSet := map[storage.PageID]bool{}
		for _, q := range want {
			wantSet[q] = true
		}
		for _, q := range got {
			if !wantSet[q] {
				t.Fatalf("page %d: unexpected PAG neighbor %d", pid, q)
			}
		}
	}
}

func TestEdgeInsertDelete(t *testing.T) {
	for _, policy := range []netfile.Policy{netfile.FirstOrder, netfile.SecondOrder, netfile.HigherOrder} {
		t.Run(policy.String(), func(t *testing.T) {
			g := roadMap(t)
			m := build(t, g, Config{Seed: 21})
			// Pick existing edges to delete and non-edges to insert.
			edges := g.Edges()
			rng := rand.New(rand.NewSource(22))
			for trial := 0; trial < 15; trial++ {
				e := edges[rng.Intn(len(edges))]
				if err := m.DeleteEdge(e.From, e.To, policy); err != nil {
					t.Fatalf("DeleteEdge(%d,%d): %v", e.From, e.To, err)
				}
				if err := g.RemoveEdge(e.From, e.To); err != nil {
					t.Fatal(err)
				}
				// Double delete fails.
				if err := m.DeleteEdge(e.From, e.To, policy); err == nil {
					t.Fatal("double edge delete accepted")
				}
				// Re-insert.
				if err := m.InsertEdge(e.From, e.To, float32(e.Cost), policy); err != nil {
					t.Fatalf("InsertEdge: %v", err)
				}
				if err := g.AddEdge(graph.Edge{From: e.From, To: e.To, Cost: e.Cost, Weight: 1}); err != nil {
					t.Fatal(err)
				}
				// Duplicate insert fails.
				if err := m.InsertEdge(e.From, e.To, float32(e.Cost), policy); err == nil {
					t.Fatal("duplicate edge insert accepted")
				}
			}
			checkConsistency(t, m, g)
		})
	}
}

func TestEdgeInsertToMissingNode(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 23})
	if err := m.InsertEdge(g.NodeIDs()[0], 999999, 1, netfile.FirstOrder); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := m.InsertEdge(5, 5, 1, netfile.FirstOrder); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestLazyPolicy(t *testing.T) {
	full := roadMap(t)
	ids := full.NodeIDs()
	rng := rand.New(rand.NewSource(31))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	late := ids[:len(ids)/5]
	base := full.Clone()
	for _, id := range late {
		base.RemoveNode(id)
	}

	run := func(policy netfile.Policy) (float64, float64) {
		m := build(t, base, Config{Seed: 33, LazyEvery: 6})
		cur := base.Clone()
		var io int64
		for _, id := range late {
			op := insertOpRestricted(t, full, cur, id)
			if err := m.File().ResetIO(); err != nil {
				t.Fatal(err)
			}
			if err := m.Insert(op, policy); err != nil {
				t.Fatalf("%s insert %d: %v", policy, id, err)
			}
			if err := m.File().Flush(); err != nil {
				t.Fatal(err)
			}
			st := m.File().DataIO()
			io += st.Reads + st.Writes
			mirrorInsert(t, cur, op)
		}
		checkConsistency(t, m, cur)
		return float64(io) / float64(len(late)), m.CRR(cur)
	}

	firstIO, firstCRR := run(netfile.FirstOrder)
	lazyIO, lazyCRR := run(netfile.Lazy)
	higherIO, _ := run(netfile.HigherOrder)
	t.Logf("first: io=%.2f crr=%.4f | lazy: io=%.2f crr=%.4f | higher io=%.2f",
		firstIO, firstCRR, lazyIO, lazyCRR, higherIO)
	// Lazy pays more than first-order but much less than higher-order,
	// and recovers CRR relative to first-order.
	if lazyIO <= firstIO {
		t.Errorf("lazy I/O %.2f should exceed first-order %.2f", lazyIO, firstIO)
	}
	if lazyIO >= higherIO {
		t.Errorf("lazy I/O %.2f should stay below higher-order %.2f", lazyIO, higherIO)
	}
	if lazyCRR < firstCRR-0.01 {
		t.Errorf("lazy CRR %.4f fell below first-order %.4f", lazyCRR, firstCRR)
	}
}

// TestFigureOneStyleClustering reproduces the structure of the paper's
// Figure 1: a small network with three natural clusters must be stored
// on three data pages, one cluster per page, with only the cut edges
// split.
func TestFigureOneStyleClustering(t *testing.T) {
	g := graph.NewNetwork()
	clusters := [][]graph.NodeID{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	for ci, cluster := range clusters {
		for i, id := range cluster {
			if err := g.AddNode(graph.Node{ID: id, Pos: geom.Point{X: float64(ci*100 + i*10), Y: float64(ci * 50)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	biEdge := func(a, b graph.NodeID) {
		g.AddEdge(graph.Edge{From: a, To: b, Cost: 1, Weight: 1})
		g.AddEdge(graph.Edge{From: b, To: a, Cost: 1, Weight: 1})
	}
	// Dense inside clusters.
	for _, cluster := range clusters {
		for i := 0; i < len(cluster); i++ {
			for j := i + 1; j < len(cluster); j++ {
				biEdge(cluster[i], cluster[j])
			}
		}
	}
	// Single bridges between clusters (the dashed cut of Figure 1).
	biEdge(4, 5)
	biEdge(8, 9)

	// Page size fits exactly one cluster.
	sizer := netfile.StoredSizer(g)
	clusterBytes := 0
	for _, id := range clusters[0] {
		clusterBytes += sizer(id)
	}
	pageSize := clusterBytes + 64 // room for one cluster, not two

	m := build(t, g, Config{PageSize: pageSize, PoolPages: 16, Seed: 7})
	if m.File().NumPages() != 3 {
		t.Fatalf("pages = %d, want 3", m.File().NumPages())
	}
	p := m.File().Placement()
	for _, cluster := range clusters {
		page := p[cluster[0]]
		for _, id := range cluster[1:] {
			if p[id] != page {
				t.Fatalf("cluster containing %d split across pages", id)
			}
		}
	}
	// CRR: only the 4 directed bridge edges are split: 1 - 4/40.
	if crr := m.CRR(g); crr < 0.89 || crr > 0.91 {
		t.Fatalf("CRR = %.4f, want 0.90", crr)
	}
}

func TestAttachValidations(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 41})
	other, err := New(Config{PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Page size mismatch rejected.
	if err := other.Attach(m.File()); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
	ok, err := New(Config{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Attach(m.File()); err != nil {
		t.Fatal(err)
	}
	// Double attach rejected.
	if err := ok.Attach(m.File()); err == nil {
		t.Fatal("double attach accepted")
	}
	// The attached method serves operations.
	if _, err := ok.File().Find(g.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceConfigImprovesBlockingFactor(t *testing.T) {
	g := roadMap(t)
	plain := build(t, g, Config{Seed: 44})
	coalesced := build(t, g, Config{Seed: 44, Coalesce: true})
	if coalesced.File().NumPages() > plain.File().NumPages() {
		t.Fatalf("coalescing grew the file: %d -> %d pages",
			plain.File().NumPages(), coalesced.File().NumPages())
	}
	if coalesced.CRR(g) < plain.CRR(g)-1e-9 {
		t.Fatalf("coalescing reduced CRR: %.4f -> %.4f", plain.CRR(g), coalesced.CRR(g))
	}
	checkConsistency(t, coalesced, g)
}

func TestNbrPagesOfFreedPage(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, Config{Seed: 45})
	// A page id that was never allocated.
	got, err := m.NbrPages(storage.PageID(999999))
	if err != nil || got != nil {
		t.Fatalf("NbrPages(unknown) = %v, %v", got, err)
	}
}
