// Package ccam implements the paper's contribution: the
// Connectivity-Clustered Access Method. Nodes are assigned to data
// pages by graph partitioning (Cheng–Wei ratio cut by default) to
// maximize the connectivity residue ratio; Insert() and Delete()
// maintain the clustering with the reorganization policies of the
// paper's Table 1 (first-order, second-order, higher-order), defined
// over the page access graph, which is never materialized — neighbor
// pages are discovered through the secondary index on demand.
//
// Two create operations are provided, as in the paper: CCAM-S
// (Static-Create: cluster the whole network at once) and CCAM-D
// (incremental create as a sequence of Add-node operations with
// incremental reclustering, for networks too large to partition in
// main memory).
package ccam

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ccam/internal/graph"
	"ccam/internal/metrics"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/storage"
)

// Config parameterizes a CCAM instance.
type Config struct {
	// PageSize is the disk block size in bytes.
	PageSize int
	// PoolPages is the data buffer pool capacity (default 32).
	PoolPages int
	// PoolShards splits the data buffer pool into independently latched
	// shards (0 or 1 = single latch; see netfile.Options.PoolShards).
	PoolShards int
	// Prefetch enables connectivity-aware PAG prefetch (see
	// netfile.Options.Prefetch).
	Prefetch bool
	// PrefetchWorkers sizes the prefetcher's worker pool (0 = default).
	PrefetchWorkers int
	// Partitioner is the two-way partitioning heuristic used for
	// clustering and reclustering (default Cheng–Wei ratio cut).
	Partitioner partition.Bipartitioner
	// Seed drives the partitioner's randomized restarts.
	Seed int64
	// BuildWorkers bounds the number of clustering subproblems Build
	// partitions concurrently during a static create (0 = GOMAXPROCS,
	// 1 = serial). For a fixed Seed the resulting placement is
	// identical at every worker count.
	BuildWorkers int
	// Dynamic selects CCAM-D: Build runs as a sequence of Add-node
	// operations with incremental reclustering instead of one static
	// clustering pass.
	Dynamic bool
	// BuildPolicy is the reorganization policy Add-node applies during
	// a CCAM-D build (default SecondOrder, as in the paper's
	// experiments).
	BuildPolicy netfile.Policy
	// Spatial selects the secondary spatial index structure (default
	// the paper's Z-ordered B+-tree; netfile.SpatialRTree selects an
	// R-tree).
	Spatial netfile.SpatialKind
	// Coalesce enables a post-clustering pass that merges pairs of
	// PAG-adjacent pages whose combined contents fit in one page,
	// raising the blocking factor (and usually the CRR) above what
	// plain top-down splitting achieves. Off by default, matching the
	// paper's Figure 2 exactly.
	Coalesce bool
	// LazyEvery is the update count after which the Lazy policy
	// reorganizes a touched page and its PAG neighbors (default 8).
	LazyEvery int
	// Store optionally supplies the data page store (nil = in-memory).
	Store storage.Store
	// ReadLatency charges simulated wall-clock time per physical
	// data-page read of the in-memory store (see netfile.Options).
	ReadLatency time.Duration
	// Metrics, when non-nil, instruments the file built by Build
	// against this registry (see netfile.Options.Metrics).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records per-operation traces (see
	// netfile.Options.Tracer).
	Tracer *metrics.Tracer
}

// Method is a CCAM file. It implements netfile.AccessMethod.
//
// Concurrency: Method adds no per-query state of its own — queries go
// straight to the File, whose read operations are reentrant. The
// mutable fields here (rng, updates) are touched only by Build,
// Insert, Delete and the edge maintenance operations, which the owner
// must serialize against everything else (the root ccam.Store holds a
// write lock around them).
type Method struct {
	cfg  Config
	f    *netfile.File
	part partition.Bipartitioner
	rng  *rand.Rand
	// updates counts maintenance operations that touched each page,
	// driving the Lazy policy; counters reset when a page is
	// reorganized.
	updates map[storage.PageID]int
}

var _ netfile.AccessMethod = (*Method)(nil)

// New returns an unbuilt CCAM instance. Call Build to load a network,
// or insert nodes one at a time into the empty file.
func New(cfg Config) (*Method, error) {
	if cfg.Partitioner == nil {
		cfg.Partitioner = &partition.RatioCut{}
	}
	if cfg.BuildPolicy == 0 && cfg.Dynamic {
		cfg.BuildPolicy = netfile.SecondOrder
	}
	if cfg.LazyEvery <= 0 {
		cfg.LazyEvery = 8
	}
	m := &Method{
		cfg:     cfg,
		part:    cfg.Partitioner,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		updates: make(map[storage.PageID]int),
	}
	return m, nil
}

// Name implements netfile.AccessMethod.
func (m *Method) Name() string {
	if m.cfg.Dynamic {
		return "ccam-d"
	}
	return "ccam-s"
}

// File implements netfile.AccessMethod.
func (m *Method) File() *netfile.File { return m.f }

// Build implements netfile.AccessMethod: the paper's Create().
func (m *Method) Build(g *graph.Network) error {
	f, err := netfile.Create(netfile.Options{
		PageSize:        m.cfg.PageSize,
		PoolPages:       m.cfg.PoolPages,
		PoolShards:      m.cfg.PoolShards,
		Prefetch:        m.cfg.Prefetch,
		PrefetchWorkers: m.cfg.PrefetchWorkers,
		Bounds:          g.Bounds(),
		Store:           m.cfg.Store,
		Spatial:         m.cfg.Spatial,
		ReadLatency:     m.cfg.ReadLatency,
		Metrics:         m.cfg.Metrics,
		Tracer:          m.cfg.Tracer,
	})
	if err != nil {
		return err
	}
	m.f = f
	if m.cfg.Dynamic {
		return m.buildDynamic(g)
	}
	return m.buildStatic(g)
}

// buildStatic is Static-Create: cluster-nodes-into-pages over the whole
// network, then bulk load. The recursion runs on a bounded worker pool
// (Config.BuildWorkers); the subset seed is drawn from m.rng exactly
// like the serial path draws its stream, so results stay reproducible
// per Config.Seed.
func (m *Method) buildStatic(g *graph.Network) error {
	sizeOf := netfile.StoredSizer(g)
	budget := netfile.PageBudget(m.cfg.PageSize)
	groups, err := partition.ClusterNodesIntoPagesOpts(g, sizeOf, budget, m.part,
		partition.ClusterOptions{Workers: m.cfg.BuildWorkers, Seed: m.rng.Int63()})
	if err != nil {
		return fmt.Errorf("ccam: static create: %w", err)
	}
	if m.cfg.Coalesce {
		groups, _ = partition.CoalescePages(g, groups, sizeOf, budget, 10)
	}
	return m.f.BulkLoad(g, groups)
}

// buildDynamic is the incremental Create(): a sequence of Add-node
// operations. Add-node places each record like Insert() but skips the
// successor/predecessor list updates (records already carry their full
// lists), applying incremental reclustering per the build policy.
func (m *Method) buildDynamic(g *graph.Network) error {
	for _, id := range g.NodeIDs() {
		rec, err := netfile.RecordFromNode(g, id)
		if err != nil {
			return err
		}
		if err := m.addNode(rec, m.cfg.BuildPolicy); err != nil {
			return fmt.Errorf("ccam: incremental create at node %d: %w", id, err)
		}
	}
	return m.f.Flush()
}

// placeRecord selects a data page for rec per the paper's insertion
// rule — the page holding the most neighbors of rec that has space —
// and stores the record there. With no eligible neighbor page it falls
// back to any page with space, then to a fresh page.
func (m *Method) placeRecord(rec *netfile.Record) (storage.PageID, error) {
	need := rec.EncodedSize() + storage.PerRecordOverhead
	pid, ok, err := m.f.SelectPageWithMostNeighbors(rec.Neighbors(), need)
	if err != nil {
		return storage.InvalidPageID, err
	}
	if !ok {
		pid, ok = m.f.FindPageWithSpace(need)
		if !ok {
			pid, err = m.f.AllocatePage()
			if err != nil {
				return storage.InvalidPageID, err
			}
		}
	}
	if err := m.f.InsertRecordAt(rec, pid); err != nil {
		return storage.InvalidPageID, err
	}
	return pid, nil
}

// addNode is the Add-node() of the incremental create.
func (m *Method) addNode(rec *netfile.Record, policy netfile.Policy) error {
	pid, err := m.placeRecord(rec)
	if err != nil {
		return err
	}
	if policy == netfile.FirstOrder {
		return nil
	}
	return m.ReorganizeAround(rec.ID, pid, rec.Neighbors(), policy)
}

// Insert implements netfile.AccessMethod: the paper's Figure 3.
func (m *Method) Insert(op *netfile.InsertOp, policy netfile.Policy) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if m.f == nil {
		return errors.New("ccam: insert before Build")
	}
	rec := op.Rec
	pid, err := m.placeRecord(rec)
	if err != nil {
		return err
	}
	// Update succ-list and pred-list of neighbors(x); splits handle
	// overflow of updated pages under every policy.
	if err := m.f.UpdateNeighborLinks(op, m.SplitPage); err != nil {
		return err
	}
	switch policy {
	case netfile.FirstOrder:
		return nil
	case netfile.Lazy:
		return m.lazyTick(pid, rec.Neighbors())
	}
	return m.ReorganizeAround(rec.ID, pid, rec.Neighbors(), policy)
}

// Delete implements netfile.AccessMethod: the paper's Figure 4.
func (m *Method) Delete(id graph.NodeID, policy netfile.Policy) error {
	if m.f == nil {
		return errors.New("ccam: delete before Build")
	}
	pid, err := m.f.PageOf(id)
	if err != nil {
		return err
	}
	rec, err := m.f.DeleteRecord(id)
	if err != nil {
		return err
	}
	if err := m.f.RemoveNeighborLinks(rec); err != nil {
		return err
	}
	switch policy {
	case netfile.FirstOrder:
		return m.mergeIfUnderflow(pid, rec.Neighbors())
	case netfile.Lazy:
		if err := m.mergeIfUnderflow(pid, rec.Neighbors()); err != nil {
			return err
		}
		return m.lazyTick(pid, rec.Neighbors())
	}
	return m.ReorganizeAround(id, pid, rec.Neighbors(), policy)
}

// lazyTick implements the delayed reorganization policy of paper §2.4:
// every page touched by the update accrues a counter; a page whose
// counter reaches LazyEvery is reorganized together with its PAG
// neighbors, and the counters of all reorganized pages reset.
func (m *Method) lazyTick(pagex storage.PageID, neighbors []graph.NodeID) error {
	touched := map[storage.PageID]bool{}
	if _, err := m.f.FreeSpace(pagex); err == nil {
		touched[pagex] = true
	}
	nbrPages, err := m.f.PagesOfNeighbors(neighbors)
	if err != nil {
		return err
	}
	for _, q := range nbrPages {
		touched[q] = true
	}
	var due []storage.PageID
	for q := range touched {
		m.updates[q]++
		if m.updates[q] >= m.cfg.LazyEvery {
			due = append(due, q)
		}
	}
	sortPIDs(due)
	for _, p := range due {
		if _, err := m.f.FreeSpace(p); err != nil {
			delete(m.updates, p)
			continue // freed by an earlier reorganization this tick
		}
		set := map[storage.PageID]bool{p: true}
		nbrs, err := m.NbrPages(p)
		if err != nil {
			return err
		}
		for _, q := range nbrs {
			set[q] = true
		}
		pids := make([]storage.PageID, 0, len(set))
		for q := range set {
			pids = append(pids, q)
		}
		sortPIDs(pids)
		if len(pids) >= 2 {
			if err := m.reorganizePages(pids, false); err != nil {
				return err
			}
		}
		for _, q := range pids {
			delete(m.updates, q)
		}
	}
	return nil
}

// mergeIfUnderflow performs the first-order policy's underflow
// handling: if page pid fell below half full, merge it into a neighbor
// page when the combined contents fit.
func (m *Method) mergeIfUnderflow(pid storage.PageID, neighbors []graph.NodeID) error {
	used, err := m.f.UsedBytesOn(pid)
	if err != nil {
		return err
	}
	if used == 0 {
		if err := m.f.LogReorg(netfile.MutMergePages, []storage.PageID{pid}); err != nil {
			return err
		}
		return m.f.FreePage(pid)
	}
	if used >= m.cfg.PageSize/2 {
		return nil
	}
	cands, err := m.f.PagesOfNeighbors(neighbors)
	if err != nil {
		return err
	}
	for _, q := range cands {
		if q == pid {
			continue
		}
		free, err := m.f.FreeSpace(q)
		if err != nil {
			return err
		}
		ids, err := m.f.NodesOnPage(pid)
		if err != nil {
			return err
		}
		needed := used + storage.PerRecordOverhead*len(ids)
		if free < needed {
			continue
		}
		if err := m.f.LogReorg(netfile.MutMergePages, []storage.PageID{pid, q}); err != nil {
			return err
		}
		for _, nid := range ids {
			if err := m.f.MoveRecord(nid, q); err != nil {
				return fmt.Errorf("ccam: merge page %d into %d: %w", pid, q, err)
			}
		}
		return m.f.FreePage(pid)
	}
	return nil
}

// SplitPage splits an overflowing (or full) page into two by
// re-clustering its records with the configured partitioner; it is
// CCAM's overflow handler.
func (m *Method) SplitPage(pid storage.PageID) error {
	if err := m.f.LogReorg(netfile.MutSplitPage, []storage.PageID{pid}); err != nil {
		return err
	}
	return m.reorganizePages([]storage.PageID{pid}, true)
}

// ReorganizeAround applies a second- or higher-order reorganization
// centred on node x, which lives on (or was just placed on / deleted
// from) page pagex and has the given neighbor-list (paper Table 1):
//
//	second order: {Page(x)} ∪ PagesOfNbrs(x)
//	higher order: {Page(x)} ∪ PagesOfNbrs(x) ∪ NbrPages(Page(x))
func (m *Method) ReorganizeAround(x graph.NodeID, pagex storage.PageID, neighbors []graph.NodeID, policy netfile.Policy) error {
	set := map[storage.PageID]bool{}
	if _, err := m.f.FreeSpace(pagex); err == nil {
		set[pagex] = true
	}
	nbrPages, err := m.f.PagesOfNeighbors(neighbors)
	if err != nil {
		return err
	}
	for _, q := range nbrPages {
		set[q] = true
	}
	if policy == netfile.HigherOrder {
		pagPages, err := m.NbrPages(pagex)
		if err != nil {
			return err
		}
		for _, q := range pagPages {
			set[q] = true
		}
	}
	if len(set) < 2 {
		return nil
	}
	pids := make([]storage.PageID, 0, len(set))
	for q := range set {
		pids = append(pids, q)
	}
	sortPIDs(pids)
	return m.reorganizePages(pids, false)
}

// NbrPages returns the PAG neighbors of page pid: every page holding a
// neighbor of some record stored on pid. The PAG is not materialized
// (paper §2.4); discovery reads the page and probes the index.
func (m *Method) NbrPages(pid storage.PageID) ([]storage.PageID, error) {
	if _, err := m.f.FreeSpace(pid); err != nil {
		return nil, nil // page was freed (e.g. by a merge); no neighbors
	}
	recs, err := m.f.RecordsOnPage(pid)
	if err != nil {
		return nil, err
	}
	seen := map[storage.PageID]bool{}
	var out []storage.PageID
	for _, rec := range recs {
		pages, err := m.f.PagesOfNeighbors(rec.Neighbors())
		if err != nil {
			return nil, err
		}
		for _, q := range pages {
			if q != pid && !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	sortPIDs(out)
	return out, nil
}

// ReclusterPages re-clusters the records of the given pages with
// cluster-nodes-into-pages, logging the reorganization to the WAL as a
// merge record (replay skips it — reorganization is a clustering
// optimization, not a content change). It is the entry point of the
// facade's background incremental reorganizer: one bounded
// neighborhood per call, never the whole file.
func (m *Method) ReclusterPages(pids []storage.PageID) error {
	if len(pids) == 0 {
		return nil
	}
	if err := m.f.LogReorg(netfile.MutMergePages, pids); err != nil {
		return err
	}
	return m.reorganizePages(pids, false)
}

// reorganizePages re-clusters the records of the given pages with
// cluster-nodes-into-pages and rewrites the pages. When forceSplit is
// set (overflow handling) the target is two pages even if the records
// would fit in one.
func (m *Method) reorganizePages(pids []storage.PageID, forceSplit bool) error {
	var recs []*netfile.Record
	for _, pid := range pids {
		rs, err := m.f.RecordsOnPage(pid)
		if err != nil {
			return err
		}
		recs = append(recs, rs...)
	}
	if len(recs) == 0 {
		return nil
	}
	groups, err := m.clusterRecords(recs, forceSplit)
	if err != nil {
		return err
	}
	// Map groups onto pages: reuse the reorganized pages first, then
	// allocate; free leftovers.
	for i, group := range groups {
		var pid storage.PageID
		if i < len(pids) {
			pid = pids[i]
		} else {
			pid, err = m.f.AllocatePage()
			if err != nil {
				return err
			}
		}
		if err := m.f.ReplacePageContents(pid, group); err != nil {
			return fmt.Errorf("ccam: reorganize: %w", err)
		}
	}
	for i := len(groups); i < len(pids); i++ {
		if err := m.f.FreePage(pids[i]); err != nil {
			return err
		}
	}
	return nil
}

// clusterRecords runs cluster-nodes-into-pages over the subnetwork
// induced by recs. Edge weights are uniform; record sizes come from the
// records themselves (their lists may reference nodes outside the
// subnetwork).
func (m *Method) clusterRecords(recs []*netfile.Record, forceSplit bool) ([][]*netfile.Record, error) {
	byID := make(map[graph.NodeID]*netfile.Record, len(recs))
	sub := graph.NewNetwork()
	for _, r := range recs {
		byID[r.ID] = r
		if err := sub.AddNode(graph.Node{ID: r.ID, Pos: r.Pos}); err != nil {
			return nil, err
		}
	}
	for _, r := range recs {
		for _, s := range r.Succs {
			if _, ok := byID[s.To]; ok {
				_ = sub.AddEdge(graph.Edge{From: r.ID, To: s.To, Cost: float64(s.Cost), Weight: 1})
			}
		}
	}
	sizeOf := func(id graph.NodeID) int {
		return byID[id].EncodedSize() + storage.PerRecordOverhead
	}
	budget := netfile.PageBudget(m.cfg.PageSize)
	var idGroups [][]graph.NodeID
	var err error
	if forceSplit && len(recs) >= 2 {
		w := partition.BuildWeighted(sub, sizeOf)
		a, b, perr := m.part.Bipartition(w, budget/2, m.rng)
		if perr != nil {
			return nil, fmt.Errorf("ccam: split: %w", perr)
		}
		idGroups = [][]graph.NodeID{a, b}
	} else {
		idGroups, err = partition.ClusterNodesIntoPages(sub, sizeOf, budget, m.part, m.rng)
		if err != nil {
			return nil, fmt.Errorf("ccam: recluster: %w", err)
		}
	}
	groups := make([][]*netfile.Record, len(idGroups))
	for i, ids := range idGroups {
		for _, id := range ids {
			groups[i] = append(groups[i], byID[id])
		}
	}
	return groups, nil
}

func sortPIDs(s []storage.PageID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CRR returns the file's current connectivity residue ratio measured
// against network g.
func (m *Method) CRR(g *graph.Network) float64 {
	return graph.CRR(g, m.f.Placement())
}

// WCRR returns the file's current weighted connectivity residue ratio
// measured against network g.
func (m *Method) WCRR(g *graph.Network) float64 {
	return graph.WCRR(g, m.f.Placement())
}

// InsertEdge implements netfile.AccessMethod: the paper's Insert() with
// an edge argument. Under the second-order policy the reorganized set
// is {Page(u), Page(v)}; the higher-order policy additionally
// reorganizes the PAG neighbors of both pages (Table 1).
func (m *Method) InsertEdge(from, to graph.NodeID, cost float32, policy netfile.Policy) error {
	if m.f == nil {
		return errors.New("ccam: insert edge before Build")
	}
	if err := m.f.AddEdgeRecords(from, to, cost, m.SplitPage); err != nil {
		return err
	}
	if policy == netfile.FirstOrder {
		return nil
	}
	return m.reorganizeEdgePages(from, to, policy)
}

// DeleteEdge implements netfile.AccessMethod: the paper's Delete() with
// an edge argument.
func (m *Method) DeleteEdge(from, to graph.NodeID, policy netfile.Policy) error {
	if m.f == nil {
		return errors.New("ccam: delete edge before Build")
	}
	if err := m.f.RemoveEdgeRecords(from, to); err != nil {
		return err
	}
	if policy == netfile.FirstOrder {
		// Handle underflow of either endpoint page.
		for _, x := range []graph.NodeID{from, to} {
			pid, err := m.f.PageOf(x)
			if err != nil {
				return err
			}
			rec, err := m.f.ReadRecord(x)
			if err != nil {
				return err
			}
			if err := m.mergeIfUnderflow(pid, rec.Neighbors()); err != nil {
				return err
			}
		}
		return nil
	}
	return m.reorganizeEdgePages(from, to, policy)
}

// reorganizeEdgePages applies the edge-argument rows of the paper's
// Table 1: second order reorganizes {Page(u), Page(v)}; higher order
// adds NbrPages(Page(u)) ∪ NbrPages(Page(v)).
func (m *Method) reorganizeEdgePages(u, v graph.NodeID, policy netfile.Policy) error {
	pu, err := m.f.PageOf(u)
	if err != nil {
		return err
	}
	pv, err := m.f.PageOf(v)
	if err != nil {
		return err
	}
	set := map[storage.PageID]bool{pu: true, pv: true}
	if policy == netfile.HigherOrder {
		for _, p := range []storage.PageID{pu, pv} {
			nbrs, err := m.NbrPages(p)
			if err != nil {
				return err
			}
			for _, q := range nbrs {
				set[q] = true
			}
		}
	}
	if len(set) < 2 {
		return nil
	}
	pids := make([]storage.PageID, 0, len(set))
	for q := range set {
		pids = append(pids, q)
	}
	sortPIDs(pids)
	return m.reorganizePages(pids, false)
}

// Attach adopts an existing data file (e.g. one reconstructed from a
// reopened page store) as this method's file. The method must not have
// been built.
func (m *Method) Attach(f *netfile.File) error {
	if m.f != nil {
		return errors.New("ccam: method already has a file")
	}
	if f.PageSize() != m.cfg.PageSize {
		return fmt.Errorf("ccam: file page size %d != configured %d", f.PageSize(), m.cfg.PageSize)
	}
	m.f = f
	return nil
}
