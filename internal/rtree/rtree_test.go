package rtree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ccam/internal/geom"
)

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Fatal("fresh tree not empty")
	}
	found := 0
	tr.Search(geom.NewRect(geom.Point{X: -1e9, Y: -1e9}, geom.Point{X: 1e9, Y: 1e9}),
		func(geom.Point, uint64) bool { found++; return true })
	if found != 0 {
		t.Fatal("search on empty tree yields entries")
	}
	if err := tr.Delete(geom.Point{}, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete on empty = %v", err)
	}
	if nn := tr.Nearest(geom.Point{}, 3); nn != nil {
		t.Fatalf("Nearest on empty = %v", nn)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New(4)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 5, Y: 5}, {X: 9, Y: 9}}
	for i, p := range pts {
		tr.Insert(p, uint64(i))
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	tr.Search(geom.NewRect(geom.Point{X: 0.5, Y: 0.5}, geom.Point{X: 6, Y: 6}),
		func(_ geom.Point, ref uint64) bool { got[ref] = true; return true })
	if len(got) != 3 || !got[1] || !got[2] || !got[3] {
		t.Fatalf("search result = %v", got)
	}
	// Early-stop works.
	n := 0
	tr.Search(geom.NewRect(geom.Point{X: -1, Y: -1}, geom.Point{X: 10, Y: 10}),
		func(geom.Point, uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New(8)
	type pt struct {
		p   geom.Point
		ref uint64
	}
	var live []pt
	nextRef := uint64(0)

	for op := 0; op < 4000; op++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.6:
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			tr.Insert(p, nextRef)
			live = append(live, pt{p, nextRef})
			nextRef++
		default:
			i := rng.Intn(len(live))
			if err := tr.Delete(live[i].p, live[i].ref); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if op%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Range queries match brute force.
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		rect := geom.NewRect(geom.Point{X: x, Y: y},
			geom.Point{X: x + rng.Float64()*40, Y: y + rng.Float64()*40})
		want := map[uint64]bool{}
		for _, e := range live {
			if rect.Contains(e.p) {
				want[e.ref] = true
			}
		}
		got := map[uint64]bool{}
		tr.Search(rect, func(_ geom.Point, ref uint64) bool { got[ref] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for ref := range got {
			if !want[ref] {
				t.Fatalf("trial %d: unexpected ref %d", trial, ref)
			}
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := New(8)
	type pt struct {
		p   geom.Point
		ref uint64
	}
	var pts []pt
	for i := 0; i < 500; i++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tr.Insert(p, uint64(i))
		pts = append(pts, pt{p, uint64(i)})
	}
	for trial := 0; trial < 25; trial++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		k := 1 + rng.Intn(10)
		got := tr.Nearest(q, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Brute force.
		dists := make([]float64, len(pts))
		for i, e := range pts {
			dists[i] = math.Hypot(e.p.X-q.X, e.p.Y-q.Y)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist %f, want %f", trial, i, nb.Dist, dists[i])
			}
			if i > 0 && got[i].Dist < got[i-1].Dist {
				t.Fatal("results not sorted")
			}
		}
	}
	// k larger than tree size returns everything.
	all := tr.Nearest(geom.Point{X: 50, Y: 50}, 10000)
	if len(all) != 500 {
		t.Fatalf("Nearest(all) = %d", len(all))
	}
}

func TestDuplicatePointsDistinctRefs(t *testing.T) {
	tr := New(4)
	p := geom.Point{X: 3, Y: 3}
	for i := uint64(0); i < 10; i++ {
		tr.Insert(p, i)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(p, 7); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(p, 7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	got := map[uint64]bool{}
	tr.Search(geom.NewRect(p, p), func(_ geom.Point, ref uint64) bool { got[ref] = true; return true })
	if len(got) != 9 || got[7] {
		t.Fatalf("search = %v", got)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New(4)
	rng := rand.New(rand.NewSource(2))
	var pts []geom.Point
	for i := 0; i < 200; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		pts = append(pts, p)
		tr.Insert(p, uint64(i))
	}
	for i, p := range pts {
		if err := tr.Delete(p, uint64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Insert(geom.Point{X: 1, Y: 1}, 42)
	nn := tr.Nearest(geom.Point{X: 0, Y: 0}, 1)
	if len(nn) != 1 || nn[0].Ref != 42 {
		t.Fatalf("reuse failed: %v", nn)
	}
}
