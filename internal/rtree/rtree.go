// Package rtree implements Guttman's R-tree with quadratic splitting —
// the alternative secondary index the paper names for CCAM ("Other
// access methods such as R-tree [11] and Grid File [21], etc. can
// alternatively be created on top of the data file as secondary
// indices"). The tree indexes points (degenerate rectangles) carrying a
// uint64 reference; like the B+-tree node index, it is treated as
// memory resident.
package rtree

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"ccam/internal/geom"
)

// ErrNotFound reports a delete of an absent entry.
var ErrNotFound = errors.New("rtree: entry not found")

// entry is either a leaf entry (ref) or a branch entry (child).
type entry struct {
	mbr   geom.Rect
	child *node
	ref   uint64
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree over point data. Not safe for concurrent use.
type Tree struct {
	root *node
	max  int // max entries per node
	min  int // min entries per node (after underflow handling)
	size int
}

// New returns an empty tree with the given node capacity (defaults to
// 16 when maxEntries < 4).
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 16
	}
	return &Tree{
		root: &node{leaf: true},
		max:  maxEntries,
		min:  maxEntries * 2 / 5, // Guttman suggests m ≈ 40% of M
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

func pointRect(p geom.Point) geom.Rect { return geom.Rect{Min: p, Max: p} }

func union(a, b geom.Rect) geom.Rect {
	if a.Min.X > b.Min.X {
		a.Min.X = b.Min.X
	}
	if a.Min.Y > b.Min.Y {
		a.Min.Y = b.Min.Y
	}
	if a.Max.X < b.Max.X {
		a.Max.X = b.Max.X
	}
	if a.Max.Y < b.Max.Y {
		a.Max.Y = b.Max.Y
	}
	return a
}

func area(r geom.Rect) float64 { return r.Width() * r.Height() }

// enlargement returns how much r must grow to cover x.
func enlargement(r, x geom.Rect) float64 { return area(union(r, x)) - area(r) }

// Insert adds a point entry.
func (t *Tree) Insert(p geom.Point, ref uint64) {
	r := pointRect(p)
	leaf := t.chooseLeaf(t.root, r, nil)
	leaf.node.entries = append(leaf.node.entries, entry{mbr: r, ref: ref})
	t.size++
	t.adjustUpward(leaf)
}

// path records the descent for upward adjustment.
type pathElem struct {
	node   *node
	parent *pathElem
	// index of this node's entry within the parent
	parentIdx int
}

// chooseLeaf descends to the leaf needing least enlargement.
func (t *Tree) chooseLeaf(n *node, r geom.Rect, parent *pathElem) *pathElem {
	return t.descend(&pathElem{node: n, parent: parent}, r)
}

// descend continues chooseLeaf from an element of the path.
func (t *Tree) descend(pe *pathElem, r geom.Rect) *pathElem {
	n := pe.node
	if n.leaf {
		return pe
	}
	best, bestIdx := math.Inf(1), 0
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enl := enlargement(e.mbr, r)
		a := area(e.mbr)
		if enl < best || (enl == best && a < bestArea) {
			best, bestIdx, bestArea = enl, i, a
		}
	}
	child := &pathElem{node: n.entries[bestIdx].child, parent: pe, parentIdx: bestIdx}
	return t.descend(child, r)
}

// adjustUpward recomputes MBRs along the path and splits overflowing
// nodes.
func (t *Tree) adjustUpward(pe *pathElem) {
	for pe != nil {
		n := pe.node
		if len(n.entries) > t.max {
			left, right := t.splitNode(n)
			if pe.parent == nil {
				// Grow a new root.
				t.root = &node{
					leaf: false,
					entries: []entry{
						{mbr: mbrOf(left), child: left},
						{mbr: mbrOf(right), child: right},
					},
				}
			} else {
				parent := pe.parent.node
				parent.entries[pe.parentIdx] = entry{mbr: mbrOf(left), child: left}
				parent.entries = append(parent.entries, entry{mbr: mbrOf(right), child: right})
			}
		} else if pe.parent != nil {
			pe.parent.node.entries[pe.parentIdx].mbr = mbrOf(n)
		}
		pe = pe.parent
	}
}

func mbrOf(n *node) geom.Rect {
	r := n.entries[0].mbr
	for _, e := range n.entries[1:] {
		r = union(r, e.mbr)
	}
	return r
}

// splitNode performs Guttman's quadratic split, reusing n as the left
// node and returning both halves.
func (t *Tree) splitNode(n *node) (*node, *node) {
	entries := n.entries
	// Pick seeds: the pair wasting the most area together.
	worst := -math.Inf(1)
	s1, s2 := 0, 1
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := area(union(entries[i].mbr, entries[j].mbr)) - area(entries[i].mbr) - area(entries[j].mbr)
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	left := &node{leaf: n.leaf, entries: []entry{entries[s1]}}
	right := &node{leaf: n.leaf, entries: []entry{entries[s2]}}
	lm, rm := entries[s1].mbr, entries[s2].mbr

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment when one side must take all remaining
		// entries to reach the minimum.
		if len(left.entries)+len(rest) == t.min {
			left.entries = append(left.entries, rest...)
			for _, e := range rest {
				lm = union(lm, e.mbr)
			}
			break
		}
		if len(right.entries)+len(rest) == t.min {
			right.entries = append(right.entries, rest...)
			for _, e := range rest {
				rm = union(rm, e.mbr)
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff := 0, -math.Inf(1)
		for i, e := range rest {
			d1 := enlargement(lm, e.mbr)
			d2 := enlargement(rm, e.mbr)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx = diff, i
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := enlargement(lm, e.mbr)
		d2 := enlargement(rm, e.mbr)
		switch {
		case d1 < d2 || (d1 == d2 && len(left.entries) <= len(right.entries)):
			left.entries = append(left.entries, e)
			lm = union(lm, e.mbr)
		default:
			right.entries = append(right.entries, e)
			rm = union(rm, e.mbr)
		}
	}
	*n = *left
	return n, right
}

// Search visits every entry whose point lies inside rect; fn returning
// false stops the search.
func (t *Tree) Search(rect geom.Rect, fn func(p geom.Point, ref uint64) bool) {
	t.search(t.root, rect, fn)
}

func (t *Tree) search(n *node, rect geom.Rect, fn func(geom.Point, uint64) bool) bool {
	for _, e := range n.entries {
		if !rect.Intersects(e.mbr) {
			continue
		}
		if n.leaf {
			if !fn(e.mbr.Min, e.ref) {
				return false
			}
		} else if !t.search(e.child, rect, fn) {
			return false
		}
	}
	return true
}

// Delete removes the entry at point p with the given ref.
func (t *Tree) Delete(p geom.Point, ref uint64) error {
	leaf, idx := t.findLeaf(t.root, p, ref, nil)
	if leaf == nil {
		return fmt.Errorf("%w: %v ref %d", ErrNotFound, p, ref)
	}
	n := leaf.node
	n.entries = append(n.entries[:idx], n.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return nil
}

func (t *Tree) findLeaf(n *node, p geom.Point, ref uint64, parent *pathElem) (*pathElem, int) {
	return t.findLeafFrom(&pathElem{node: n, parent: parent}, p, ref)
}

func (t *Tree) findLeafFrom(pe *pathElem, p geom.Point, ref uint64) (*pathElem, int) {
	n := pe.node
	if n.leaf {
		for i, e := range n.entries {
			if e.ref == ref && e.mbr.Min == p {
				return pe, i
			}
		}
		return nil, 0
	}
	for i, e := range n.entries {
		if !e.mbr.Contains(p) {
			continue
		}
		child := &pathElem{node: e.child, parent: pe, parentIdx: i}
		if found, idx := t.findLeafFrom(child, p, ref); found != nil {
			return found, idx
		}
	}
	return nil, 0
}

// condense handles underflow after a delete: underfull nodes are
// removed from their parents and their surviving entries reinserted.
func (t *Tree) condense(pe *pathElem) {
	var orphans []entry
	for pe.parent != nil {
		n := pe.node
		parent := pe.parent.node
		if len(n.entries) < t.min {
			// Remove this node from its parent and queue its entries.
			orphans = append(orphans, collectLeafEntries(n)...)
			parent.entries = append(parent.entries[:pe.parentIdx], parent.entries[pe.parentIdx+1:]...)
			// Parent indexes of siblings after pe shift; recompute on
			// the fly by re-finding during reinsert (safe because we
			// only walk up from here).
			fixChildIndexes(pe.parent)
		} else if len(n.entries) > 0 {
			parent.entries[pe.parentIdx].mbr = mbrOf(n)
		}
		pe = pe.parent
	}
	for _, e := range orphans {
		t.size--
		t.Insert(e.mbr.Min, e.ref)
	}
}

// fixChildIndexes is a no-op placeholder: parent indexes are recomputed
// lazily because condense walks strictly upward and reinsert starts
// from the root.
func fixChildIndexes(*pathElem) {}

func collectLeafEntries(n *node) []entry {
	if n.leaf {
		return append([]entry(nil), n.entries...)
	}
	var out []entry
	for _, e := range n.entries {
		out = append(out, collectLeafEntries(e.child)...)
	}
	return out
}

// nnItem is a branch-and-bound queue element for Nearest.
type nnItem struct {
	dist  float64
	n     *node
	leafE *entry
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// minDist returns the minimum distance from p to rect.
func minDist(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// Neighbor is one Nearest result.
type Neighbor struct {
	Pos  geom.Point
	Ref  uint64
	Dist float64
}

// Nearest returns the k entries closest to p (Euclidean), nearest
// first, using best-first branch-and-bound traversal.
func (t *Tree) Nearest(p geom.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	q := &nnQueue{}
	heap.Push(q, nnItem{dist: 0, n: t.root})
	var out []Neighbor
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(q).(nnItem)
		switch {
		case it.leafE != nil:
			out = append(out, Neighbor{Pos: it.leafE.mbr.Min, Ref: it.leafE.ref, Dist: it.dist})
		case it.n.leaf:
			for i := range it.n.entries {
				e := &it.n.entries[i]
				heap.Push(q, nnItem{dist: minDist(p, e.mbr), leafE: e})
			}
		default:
			for _, e := range it.n.entries {
				heap.Push(q, nnItem{dist: minDist(p, e.mbr), n: e.child})
			}
		}
	}
	return out
}

// Validate checks structural invariants: MBR containment, occupancy
// bounds and entry count. Intended for tests.
func (t *Tree) Validate() error {
	n, err := t.validate(t.root, nil, true)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("rtree: size %d but %d entries reachable", t.size, n)
	}
	return nil
}

func (t *Tree) validate(n *node, within *geom.Rect, isRoot bool) (int, error) {
	if !isRoot && (len(n.entries) < t.min || len(n.entries) > t.max) {
		return 0, fmt.Errorf("rtree: node occupancy %d outside [%d,%d]", len(n.entries), t.min, t.max)
	}
	if len(n.entries) > t.max {
		return 0, fmt.Errorf("rtree: root overflow: %d", len(n.entries))
	}
	total := 0
	for _, e := range n.entries {
		if within != nil {
			if !within.Intersects(e.mbr) || union(*within, e.mbr) != *within {
				return 0, fmt.Errorf("rtree: entry MBR %v escapes parent %v", e.mbr, *within)
			}
		}
		if n.leaf {
			total++
			continue
		}
		if e.child == nil {
			return 0, fmt.Errorf("rtree: nil child in internal node")
		}
		if got := mbrOf(e.child); got != e.mbr {
			return 0, fmt.Errorf("rtree: stale MBR: stored %v, actual %v", e.mbr, got)
		}
		mbr := e.mbr
		c, err := t.validate(e.child, &mbr, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
