package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func walPayload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestWALAppendCommitReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20; i++ {
		lsn, err := w.Append(WALRecMutation, walPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		last = lsn
	}
	if err := w.Commit(last); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != last {
		t.Fatalf("durable = %d, want %d", got, last)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(recs) != 20 {
		t.Fatalf("%d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Type != WALRecMutation || string(r.Payload) != string(walPayload(i)) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}

	w2, err := OpenWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	lsn, err := w2.Append(WALRecCommit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 21 {
		t.Fatalf("lsn after reopen = %d, want 21", lsn)
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(WALRecMutation, walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: chop a few bytes off the segment.
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 4 {
		t.Fatalf("after tear: %d records, torn=%v; want 4, true", len(recs), torn)
	}

	w2, err := OpenWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	lsn, err := w2.Append(WALRecMutation, walPayload(99))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("lsn after torn-tail open = %d, want 5 (torn record discarded)", lsn)
	}
	recs, torn, err = ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(recs) != 5 {
		t.Fatalf("after reopen+append: %d records, torn=%v", len(recs), torn)
	}
}

func TestWALCorruptTailTruncatedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(WALRecMutation, walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ends := WALRecordEnds(data)
	if len(ends) != 5 {
		t.Fatalf("%d record ends, want 5", len(ends))
	}
	// Flip a payload byte inside record 4 (0-based 3): records 1-3
	// survive, 4 and 5 are cut.
	data[ends[2]+walRecHeaderLen] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs, _, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records survive CRC corruption, want 3", len(recs))
	}
	if lsn, _ := w2.Append(WALRecMutation, nil); lsn != 4 {
		t.Fatalf("next lsn = %d, want 4", lsn)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	// Tiny segments force a rotation every couple of records.
	w, err := CreateWAL(dir, SyncEveryCommit, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var last uint64
	for i := 0; i < 30; i++ {
		last, err = w.Append(WALRecMutation, walPayload(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(last); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected several segments, got %d", len(entries))
	}
	recs, _, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 30 {
		t.Fatalf("%d records across segments, want 30", len(recs))
	}

	// Prune everything before LSN 20: whole segments only, so records
	// >= 20 must all survive and some earlier ones may.
	if err := w.Prune(20); err != nil {
		t.Fatal(err)
	}
	recs, _, err = ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].LSN > 20 {
		t.Fatalf("prune cut too deep: first surviving lsn %d", recs[0].LSN)
	}
	if recs[len(recs)-1].LSN != 30 {
		t.Fatalf("prune lost the tail: last lsn %d", recs[len(recs)-1].LSN)
	}
	// Appends continue with the same LSN sequence.
	if lsn, _ := w.Append(WALRecMutation, nil); lsn != 31 {
		t.Fatalf("lsn after prune = %d, want 31", lsn)
	}
}

func TestWALResetAdvancesLSN(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 7; i++ {
		if _, err := w.Append(WALRecMutation, walPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("%d records survive Reset", len(recs))
	}
	lsn, err := w.Append(WALRecMutation, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("lsn after Reset = %d, want 8 (monotonic across reset)", lsn)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncGroupCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				lsn, err := w.Append(WALRecCommit, walPayload(id*1000+j))
				if err != nil {
					errs <- err
					return
				}
				if err := w.Commit(lsn); err != nil {
					errs <- err
					return
				}
				if w.DurableLSN() < lsn {
					errs <- fmt.Errorf("commit acked before durable: %d < %d", w.DurableLSN(), lsn)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	recs, torn, err := ScanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(recs) != writers*perWriter {
		t.Fatalf("%d records, torn=%v; want %d", len(recs), torn, writers*perWriter)
	}
}

func TestCheckWALDirReportsCommits(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "log.wal")
	w, err := CreateWAL(dir, SyncEveryCommit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(WALRecBegin, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(WALRecMutation, walPayload(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(WALRecCommit, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 || rep.Records != 9 || rep.Committed != 3 || rep.Torn {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LastLSN != 9 {
		t.Fatalf("last lsn = %d, want 9", rep.LastLSN)
	}
}
