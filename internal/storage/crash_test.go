package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// This file tests the durability story end to end at the storage
// layer: the chained free list across close/reopen, the checksummed
// header, CheckedStore corruption detection, FaultStore injection
// semantics, and the fsck check/repair cycle over crash-shaped damage.

// TestFileStoreFreeListLarge is the regression test for the free-list
// truncation bug: the old header-resident free list silently dropped
// entries past the header capacity ((pageSize-header)/4 ≈ 54 ids at
// 256-byte pages). The chained list must round-trip any count exactly.
func TestFileStoreFreeListLarge(t *testing.T) {
	const (
		pageSize = 256
		total    = 1200 // allocate this many pages...
		keep     = 100  // ...and keep only every 12th: 1100 freed
	)
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}

	payload := func(id PageID) []byte {
		b := make([]byte, pageSize)
		binary.LittleEndian.PutUint32(b, uint32(id))
		copy(b[4:], "surviving payload")
		return b
	}
	var freed, kept []PageID
	for i := 0; i < total; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if i%12 == 0 {
			kept = append(kept, id)
			if err := s.WritePage(id, payload(id)); err != nil {
				t.Fatal(err)
			}
		} else {
			freed = append(freed, id)
		}
	}
	if len(kept) != keep || len(freed) != total-keep {
		t.Fatalf("setup broken: kept %d freed %d", len(kept), len(freed))
	}
	for _, id := range freed {
		if err := s.Free(id); err != nil {
			t.Fatalf("Free(%d): %v", id, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen after %d frees: %v", len(freed), err)
	}
	defer s2.Close()
	if got := s2.NumPages(); got != keep {
		t.Fatalf("NumPages = %d, want %d", got, keep)
	}
	ids := s2.PageIDs()
	if len(ids) != keep {
		t.Fatalf("PageIDs len = %d, want %d", len(ids), keep)
	}
	for i, id := range ids {
		if id != kept[i] {
			t.Fatalf("PageIDs[%d] = %d, want %d", i, id, kept[i])
		}
	}
	// Every surviving payload is intact.
	buf := make([]byte, pageSize)
	for _, id := range kept {
		if err := s2.ReadPage(id, buf); err != nil {
			t.Fatalf("ReadPage(%d): %v", id, err)
		}
		if !bytes.Equal(buf, payload(id)) {
			t.Fatalf("page %d payload corrupted across reopen", id)
		}
	}
	// Allocation reuse is exact: the next len(freed) allocations drain
	// the free list (no fresh pages), and the one after extends the
	// file.
	reused := make(map[PageID]bool, len(freed))
	for i := 0; i < len(freed); i++ {
		id, err := s2.Allocate()
		if err != nil {
			t.Fatalf("Allocate #%d from free list: %v", i, err)
		}
		if id >= PageID(total) {
			t.Fatalf("Allocate #%d = %d: fresh page while %d freed pages remain", i, id, len(freed)-i)
		}
		if reused[id] {
			t.Fatalf("page %d handed out twice", id)
		}
		reused[id] = true
	}
	fresh, err := s2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if fresh != PageID(total) {
		t.Fatalf("post-drain Allocate = %d, want fresh page %d", fresh, total)
	}
}

func TestCheckedMemStoreConformance(t *testing.T) {
	cs, err := NewCheckedStore(NewMemStore(512))
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	storeConformance(t, cs)
}

func TestCheckedFileStoreConformance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	cs, _, err := CreateCheckedFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	storeConformance(t, cs)
}

// TestCheckedFileStoreReopen verifies that OpenPageFile honors the
// FlagCheckedPages header flag: a checked file comes back wrapped, with
// the same logical page size, and its payloads verify.
func TestCheckedFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	cs, _, err := CreateCheckedFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, err := cs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	w := make([]byte, cs.PageSize())
	copy(w, "checked payload")
	if err := cs.WritePage(id, w); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	st, fs, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, ok := st.(*CheckedStore); !ok {
		t.Fatalf("OpenPageFile returned %T, want *CheckedStore", st)
	}
	if st.PageSize() != 512-ChecksumTrailerLen {
		t.Fatalf("logical page size = %d, want %d", st.PageSize(), 512-ChecksumTrailerLen)
	}
	r := make([]byte, st.PageSize())
	if err := st.ReadPage(id, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("payload corrupted across checked reopen")
	}

	// A plain file stays unwrapped.
	plain := filepath.Join(t.TempDir(), "plain.db")
	ps, err := CreateFileStore(plain, 512)
	if err != nil {
		t.Fatal(err)
	}
	ps.Close()
	st2, fs2, err := OpenPageFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if _, ok := st2.(*FileStore); !ok {
		t.Fatalf("OpenPageFile on plain file returned %T, want *FileStore", st2)
	}
}

// TestClosedStoreSnapshot pins the documented close-snapshot semantics:
// NumPages and PageIDs keep answering on a closed store from the state
// at Close, while page I/O fails with ErrStoreClosed.
func TestClosedStoreSnapshot(t *testing.T) {
	stores := []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"MemStore", func(t *testing.T) Store { return NewMemStore(128) }},
		{"FileStore", func(t *testing.T) Store {
			s, err := CreateFileStore(filepath.Join(t.TempDir(), "p.db"), 128)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, tc := range stores {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			var ids []PageID
			for i := 0; i < 3; i++ {
				id, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			if err := s.Free(ids[1]); err != nil {
				t.Fatal(err)
			}
			want := []PageID{ids[0], ids[2]}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if got := s.NumPages(); got != len(want) {
				t.Fatalf("NumPages after Close = %d, want %d", got, len(want))
			}
			got := s.PageIDs()
			if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("PageIDs after Close = %v, want %v", got, want)
			}
			buf := make([]byte, 128)
			if err := s.ReadPage(ids[0], buf); !errors.Is(err, ErrStoreClosed) {
				t.Fatalf("ReadPage after Close = %v, want ErrStoreClosed", err)
			}
			// Close is idempotent and the snapshot survives.
			if err := s.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if got := s.NumPages(); got != len(want) {
				t.Fatalf("NumPages after second Close = %d", got)
			}
		})
	}
}

// TestFileStoreGenerationMonotonic: every allocator mutation bumps the
// header generation, and the generation survives reopen — it orders
// file versions for fsck.
func TestFileStoreGenerationMonotonic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	gen := s.Generation()
	if gen == 0 {
		t.Fatal("fresh store has zero generation")
	}
	id, _ := s.Allocate()
	if g := s.Generation(); g <= gen {
		t.Fatalf("Allocate did not bump generation: %d -> %d", gen, g)
	} else {
		gen = g
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g <= gen {
		t.Fatalf("Free did not bump generation: %d -> %d", gen, g)
	} else {
		gen = g
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if g := s2.Generation(); g <= gen {
		t.Fatalf("generation went backwards across reopen: %d -> %d", gen, g)
	}
}

// TestCheckedStoreDetectsBitFlip drives silent single-bit corruption
// through FaultStore on both the read and the write path; the checksum
// layer must surface ErrChecksum either way, and a transient read fault
// must not poison later reads.
func TestCheckedStoreDetectsBitFlip(t *testing.T) {
	fst := NewFaultStore(NewMemStore(256), 1)
	cs, err := NewCheckedStore(fst)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	w := make([]byte, cs.PageSize())
	copy(w, "bit flip victim")
	r := make([]byte, cs.PageSize())

	// Read-side flip: corruption on the wire, media intact.
	id1, _ := cs.Allocate()
	if err := cs.WritePage(id1, w); err != nil {
		t.Fatal(err)
	}
	fst.Inject(Fault{Op: FaultRead, Page: id1, Mode: FaultBitFlip, Count: 1})
	if err := cs.ReadPage(id1, r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped read = %v, want ErrChecksum", err)
	}
	if err := cs.ReadPage(id1, r); err != nil || !bytes.Equal(r, w) {
		t.Fatalf("read after transient flip = %v (payload ok: %v)", err, bytes.Equal(r, w))
	}

	// Write-side flip: the corruption lands on the media silently; the
	// next read must detect it.
	id2, _ := cs.Allocate()
	fst.Inject(Fault{Op: FaultWrite, Page: id2, Mode: FaultBitFlip, Count: 1})
	if err := cs.WritePage(id2, w); err != nil {
		t.Fatalf("bit-flipped write should report success, got %v", err)
	}
	if err := cs.ReadPage(id2, r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of silently corrupted page = %v, want ErrChecksum", err)
	}
	if fst.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", fst.Injected())
	}
}

// TestCheckedStoreDetectsTornWrite simulates a crash mid-write: the
// spliced half-old/half-new image must fail verification on the next
// read. Seed 2 puts the deterministic cut mid-payload.
func TestCheckedStoreDetectsTornWrite(t *testing.T) {
	fst := NewFaultStore(NewMemStore(256), 2)
	cs, err := NewCheckedStore(fst)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	id, _ := cs.Allocate()
	old := bytes.Repeat([]byte{0xAA}, cs.PageSize())
	if err := cs.WritePage(id, old); err != nil {
		t.Fatal(err)
	}
	fst.Inject(Fault{Op: FaultWrite, Page: id, Mode: FaultTornWrite, Count: 1})
	upd := bytes.Repeat([]byte{0x55}, cs.PageSize())
	if err := cs.WritePage(id, upd); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("torn write = %v, want ErrFaultInjected", err)
	}
	r := make([]byte, cs.PageSize())
	if err := cs.ReadPage(id, r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of torn page = %v, want ErrChecksum", err)
	}
}

// TestCheckedStoreDetectsMisdirectedWrite: an intact page image written
// to the wrong offset carries a valid CRC for the wrong id. Folding the
// page id into the checksum must catch it.
func TestCheckedStoreDetectsMisdirectedWrite(t *testing.T) {
	const pageSize = 256
	path := filepath.Join(t.TempDir(), "p.db")
	cs, _, err := CreateCheckedFile(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	id0, _ := cs.Allocate()
	id1, _ := cs.Allocate()
	w := make([]byte, cs.PageSize())
	copy(w, "page zero")
	if err := cs.WritePage(id0, w); err != nil {
		t.Fatal(err)
	}
	copy(w, "page one!")
	if err := cs.WritePage(id1, w); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	// Copy page 1's physical image over page 0: a perfectly intact page
	// at the wrong address.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, pageSize)
	if _, err := f.ReadAt(img, int64(pageSize)*(int64(id1)+1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(img, int64(pageSize)*(int64(id0)+1)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, fs, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	r := make([]byte, st.PageSize())
	if err := st.ReadPage(id0, r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("misdirected page read = %v, want ErrChecksum", err)
	}
	if err := st.ReadPage(id1, r); err != nil {
		t.Fatalf("untouched page unreadable: %v", err)
	}
}

// TestOpenFileStoreDetectsTornHeader: a bit flipped in the header (here
// in the generation field, leaving the geometry plausible) must fail
// the header CRC on open, and RepairFile must rebuild it from the file.
func TestOpenFileStoreDetectsTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.db")
	s, err := CreateFileStore(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	w := make([]byte, 128)
	for i := 0; i < 4; i++ {
		id, _ := s.Allocate()
		ids = append(ids, id)
		sp := NewSlottedPage(w)
		if _, err := sp.Insert([]byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(id, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the header: flip one bit of the generation field (byte 30).
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 30); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], 30); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := OpenFileStore(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("open with torn header = %v, want ErrChecksum", err)
	}
	rep, err := CheckFile(path, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeaderErr == nil || !errors.Is(rep.HeaderErr, ErrChecksum) {
		t.Fatalf("fsck HeaderErr = %v, want ErrChecksum", rep.HeaderErr)
	}

	rep, err = RepairFile(path, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repair left damage: header=%v freelist=%v damaged=%v",
			rep.HeaderErr, rep.FreeListErr, rep.Damaged)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("open after header repair: %v", err)
	}
	defer s2.Close()
	if got := s2.NumPages(); got != 3 {
		t.Fatalf("NumPages after repair = %d, want 3", got)
	}
	// The freed page was recovered from its on-page marker.
	if err := s2.ReadPage(ids[2], w); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("freed page resurrected by repair: %v", err)
	}
}

// TestFaultStoreRules pins the injection semantics: After skips, Count
// limits, first-match ordering, custom error wrapping and Clear.
func TestFaultStoreRules(t *testing.T) {
	fst := NewFaultStore(NewMemStore(128), 1)
	defer fst.Close()
	id, err := fst.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)

	// After: the first two reads pass, the third fails.
	fst.FailAfter(FaultRead, 2)
	for i := 0; i < 2; i++ {
		if err := fst.ReadPage(id, buf); err != nil {
			t.Fatalf("read %d before arming point: %v", i, err)
		}
	}
	if err := fst.ReadPage(id, buf); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("read past arming point = %v, want ErrFaultInjected", err)
	}
	fst.Clear()
	if err := fst.ReadPage(id, buf); err != nil {
		t.Fatalf("read after Clear: %v", err)
	}

	// Count: exactly two writes fail, then the rule is exhausted.
	errDisk := errors.New("disk on fire")
	fst.Inject(Fault{Op: FaultWrite, Page: AnyPage, Count: 2, Err: errDisk})
	for i := 0; i < 2; i++ {
		err := fst.WritePage(id, buf)
		if !errors.Is(err, errDisk) || !errors.Is(err, ErrFaultInjected) {
			t.Fatalf("write %d = %v, want both errDisk and ErrFaultInjected", i, err)
		}
	}
	if err := fst.WritePage(id, buf); err != nil {
		t.Fatalf("write after Count exhausted: %v", err)
	}

	// Page targeting: faults on another page leave this one alone.
	id2, _ := fst.Allocate()
	fst.Inject(Fault{Op: FaultFree, Page: id2})
	if err := fst.Free(id2); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("free of targeted page = %v", err)
	}
	if err := fst.Free(id); err != nil {
		t.Fatalf("free of untargeted page: %v", err)
	}

	if got := fst.Injected(); got != 4 {
		t.Fatalf("Injected = %d, want 4", got)
	}
}

// TestFaultStoreDeterministic: equal seeds and operation sequences
// produce bit-identical corruption, so a failing sequence replays.
func TestFaultStoreDeterministic(t *testing.T) {
	run := func() []byte {
		ms := NewMemStore(128)
		fst := NewFaultStore(ms, 42)
		id, _ := fst.Allocate()
		fst.Inject(Fault{Op: FaultWrite, Page: id, Mode: FaultBitFlip, Count: 1})
		w := bytes.Repeat([]byte{0x5A}, 128)
		if err := fst.WritePage(id, w); err != nil {
			t.Fatal(err)
		}
		raw := make([]byte, 128)
		if err := ms.ReadPage(id, raw); err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, bytes.Repeat([]byte{0x5A}, 128)) {
		t.Fatal("bit flip did not corrupt the image")
	}
}

// TestCrashSimulation is the full crash drill: a torn write kills the
// "process" mid-update, the file is reopened cold, fsck locates exactly
// the torn page, repair quarantines it, and the store serves the
// surviving pages.
func TestCrashSimulation(t *testing.T) {
	const pageSize = 256
	path := filepath.Join(t.TempDir(), "crash.db")
	inner, err := createFileStore(path, pageSize, FlagCheckedPages)
	if err != nil {
		t.Fatal(err)
	}
	fst := NewFaultStore(inner, 2) // seed 2: deterministic mid-payload cut
	cs, err := NewCheckedStore(fst)
	if err != nil {
		t.Fatal(err)
	}

	payload := func(id PageID, fill byte) []byte {
		b := bytes.Repeat([]byte{fill}, cs.PageSize())
		binary.LittleEndian.PutUint32(b, uint32(id))
		return b
	}
	var ids []PageID
	for i := 0; i < 6; i++ {
		id, err := cs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := cs.WritePage(id, payload(id, 0xAA)); err != nil {
			t.Fatal(err)
		}
	}

	// The device dies mid-write of page 3; then the process "crashes":
	// the file is abandoned without Close (no header rewrite, no sync).
	victim := ids[3]
	fst.Inject(Fault{Op: FaultWrite, Page: victim, Mode: FaultTornWrite, Count: 1})
	if err := cs.WritePage(victim, payload(victim, 0x55)); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("torn write = %v, want ErrFaultInjected", err)
	}
	if err := inner.f.Close(); err != nil { // simulated crash, not Close()
		t.Fatal(err)
	}

	// Cold restart: fsck must locate exactly the torn page.
	rep, err := CheckFile(path, FsckOptions{SkipSlotted: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HeaderErr != nil || rep.FreeListErr != nil {
		t.Fatalf("crash broke file structure: header=%v freelist=%v", rep.HeaderErr, rep.FreeListErr)
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0].ID != victim {
		t.Fatalf("damaged = %v, want exactly page %d", rep.Damaged, victim)
	}
	if !errors.Is(rep.Damaged[0].Err, ErrChecksum) {
		t.Fatalf("damage = %v, want ErrChecksum", rep.Damaged[0].Err)
	}

	// The store itself refuses the torn page but serves the rest.
	st, fs2, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]byte, st.PageSize())
	if err := st.ReadPage(victim, r); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of torn page = %v, want ErrChecksum", err)
	}
	fs2.Close()

	// Repair quarantines the page; afterwards the file is clean, the
	// victim is gone, the survivors are intact, and the quarantined
	// page is recycled by the next allocation.
	rep, err = RepairFile(path, FsckOptions{SkipSlotted: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("file still damaged after repair: %v", rep.Damaged)
	}
	st, fs2, err = OpenPageFile(path)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer fs2.Close()
	if err := st.ReadPage(victim, r); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("quarantined page = %v, want ErrPageNotFound", err)
	}
	for _, id := range ids {
		if id == victim {
			continue
		}
		if err := st.ReadPage(id, r); err != nil {
			t.Fatalf("survivor page %d: %v", id, err)
		}
		if !bytes.Equal(r, payload(id, 0xAA)) {
			t.Fatalf("survivor page %d corrupted by repair", id)
		}
	}
	got, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if got != victim {
		t.Fatalf("Allocate after repair = %d, want recycled quarantine page %d", got, victim)
	}
}

// TestSlottedPageCorruptImages is the table test over hand-corrupted
// page images: LoadSlottedPage, Get and Validate must reject each
// specific invariant violation with ErrCorruptedPage.
func TestSlottedPageCorruptImages(t *testing.T) {
	const pageSize = 128
	// makeImage lays out a raw page image: header fields plus explicit
	// slot directory entries, bypassing the safe Insert path.
	makeImage := func(slots [][2]uint16, heapEnd, live uint16) []byte {
		buf := make([]byte, pageSize)
		binary.LittleEndian.PutUint16(buf[0:2], uint16(len(slots)))
		binary.LittleEndian.PutUint16(buf[2:4], heapEnd)
		binary.LittleEndian.PutUint16(buf[4:6], live)
		for i, s := range slots {
			pos := pageSize - (i+1)*slotSize
			binary.LittleEndian.PutUint16(buf[pos:], s[0])
			binary.LittleEndian.PutUint16(buf[pos+2:], s[1])
		}
		return buf
	}

	cases := []struct {
		name     string
		img      []byte
		loadErr  bool // LoadSlottedPage must fail
		getSlot  int  // when ≥ 0 and load succeeds: Get must fail
		validErr bool // when load succeeds: Validate must fail
	}{
		{
			name:    "heap overlaps slot directory",
			img:     makeImage([][2]uint16{{12, 4}, {16, 4}, {20, 4}, {24, 4}}, pageSize-4*slotSize+2, 4),
			loadErr: true,
			getSlot: -1,
		},
		{
			name:    "heap end below header",
			img:     makeImage([][2]uint16{{12, 4}}, slottedHeaderSize-4, 1),
			loadErr: true,
			getSlot: -1,
		},
		{
			name:    "slot count larger than page",
			img:     makeImage(nil, 40, 0),
			loadErr: true,
			getSlot: -1,
		},
		{
			name:     "slot offset below header",
			img:      makeImage([][2]uint16{{6, 4}}, 40, 1),
			getSlot:  0,
			validErr: true,
		},
		{
			name:     "slot end past heap end",
			img:      makeImage([][2]uint16{{20, 40}}, 40, 1),
			getSlot:  0,
			validErr: true,
		},
		{
			name:     "overlapping records",
			img:      makeImage([][2]uint16{{12, 10}, {16, 10}}, 40, 2),
			getSlot:  -1, // each record is individually in bounds
			validErr: true,
		},
		{
			name:     "live count disagrees with directory",
			img:      makeImage([][2]uint16{{12, 4}}, 40, 3),
			getSlot:  -1,
			validErr: true,
		},
		{
			name:    "valid image",
			img:     makeImage([][2]uint16{{12, 4}, {16, 8}}, 40, 2),
			getSlot: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "slot count larger than page" {
				// Overwrite the count after makeImage (which clamps to
				// the provided slots).
				binary.LittleEndian.PutUint16(tc.img[0:2], 1000)
			}
			p, err := LoadSlottedPage(tc.img)
			if tc.loadErr {
				if !errors.Is(err, ErrCorruptedPage) {
					t.Fatalf("LoadSlottedPage = %v, want ErrCorruptedPage", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("LoadSlottedPage: %v", err)
			}
			if tc.getSlot >= 0 {
				if _, err := p.Get(tc.getSlot); !errors.Is(err, ErrCorruptedPage) {
					t.Fatalf("Get(%d) = %v, want ErrCorruptedPage", tc.getSlot, err)
				}
			}
			if err := p.Validate(); (err != nil) != tc.validErr {
				t.Fatalf("Validate = %v, want error: %v", err, tc.validErr)
			}
			if tc.validErr && !errors.Is(p.Validate(), ErrCorruptedPage) {
				t.Fatalf("Validate error does not wrap ErrCorruptedPage: %v", p.Validate())
			}
		})
	}
}

// TestFsckCleanFile: a pristine checked file full of real slotted pages
// passes the full (non-SkipSlotted) verification.
func TestFsckCleanFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.db")
	cs, _, err := CreateCheckedFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cs.PageSize())
	for i := 0; i < 5; i++ {
		id, err := cs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		sp := NewSlottedPage(buf)
		for j := 0; j < 3; j++ {
			if _, err := sp.Insert([]byte(fmt.Sprintf("rec %d/%d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
		if err := cs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckFile(path, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pristine file flagged: header=%v freelist=%v damaged=%v",
			rep.HeaderErr, rep.FreeListErr, rep.Damaged)
	}
	if rep.LivePages != 5 || !rep.Checked {
		t.Fatalf("report = %+v", rep)
	}

	// CorruptPage + CheckFile: the helper's bit lands where it says.
	if err := CorruptPage(path, 2, 100*8); err != nil {
		t.Fatal(err)
	}
	rep, err = CheckFile(path, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damaged) != 1 || rep.Damaged[0].ID != 2 {
		t.Fatalf("damaged = %v, want exactly page 2", rep.Damaged)
	}
}
